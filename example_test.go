package failatomic_test

import (
	"context"
	"fmt"

	"failatomic"
)

// wallet is the documentation example subject: Spend commits before
// validating, the textbook failure non-atomic pattern.
type wallet struct {
	Balance int
}

func (w *wallet) Spend(n int) {
	defer failatomic.Enter(w, "wallet.Spend")()
	w.Balance -= n
	w.check()
}

func (w *wallet) check() {
	defer failatomic.Enter(w, "wallet.check")()
	if w.Balance < 0 {
		failatomic.Throw(failatomic.IllegalState, "wallet.check", "overdrawn")
	}
}

// ExampleDetect runs the detection phase over a tiny program and prints
// the classification of the flawed method.
func ExampleDetect() {
	reg := failatomic.NewRegistry().
		Method("wallet", "Spend").
		Method("wallet", "check", failatomic.IllegalState)
	result, err := failatomic.Detect(context.Background(), &failatomic.Program{
		Name:     "wallet",
		Registry: reg,
		Run: func() {
			w := &wallet{Balance: 10}
			w.Spend(3)
			w.Spend(2)
		},
	}, failatomic.DetectOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(result.Methods["wallet.Spend"].Classification)
	fmt.Println(result.Methods["wallet.check"].Classification)
	fmt.Println(result.NonAtomicMethods())
	// Output:
	// pure failure non-atomic
	// failure atomic
	// [wallet.Spend]
}

// ExampleProtect masks a failure non-atomic method and shows the rollback.
func ExampleProtect() {
	p, err := failatomic.Protect([]string{"wallet.Spend"}, failatomic.ProtectOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer p.Close()

	w := &wallet{Balance: 5}
	func() {
		defer func() { _ = recover() }() // catch the re-thrown exception
		w.Spend(8)                       // would overdraw
	}()
	fmt.Println("balance after masked failure:", w.Balance)
	fmt.Println("rollbacks:", p.Rollbacks())
	// Output:
	// balance after masked failure: 5
	// rollbacks: 1
}

// ExampleCaptureGraph compares object graphs directly (Definition 2's
// atomicity test as a standalone utility).
func ExampleCaptureGraph() {
	w := &wallet{Balance: 7}
	before := failatomic.CaptureGraph(w)
	w.Balance = 3
	after := failatomic.CaptureGraph(w)
	fmt.Println(failatomic.GraphsEqual(before, after))
	fmt.Println(failatomic.GraphDiff(before, after))
	// Output:
	// false
	// recv.*.Balance: int 7 != 3
}
