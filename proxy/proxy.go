// Package proxy exposes the reflection-based wrapper generator (the
// paper's Java Wrapper Generator analog, §5.2) for types that cannot be
// source-woven: wrap any object at runtime and attach generic pre/post
// filters — injection, detection, masking, tracing — at application,
// class, instance, or method level.
//
// Proxied interposition sees only the wrapped boundary: a method's
// internal calls bypass the filters, so detection over proxies is
// top-level only (the same limitation the paper notes for classes the JWG
// cannot instrument).
package proxy

import (
	"failatomic/internal/checkpoint"
	"failatomic/internal/fault"
	"failatomic/internal/jwg"
)

// Invocation describes one intercepted call.
type Invocation = jwg.Invocation

// Outcome describes a completed call.
type Outcome = jwg.Outcome

// Filter intercepts invocations around the wrapped method.
type Filter = jwg.Filter

// FilterFuncs adapts closures to Filter.
type FilterFuncs = jwg.FilterFuncs

// Generator wraps objects and owns the filter tables.
type Generator = jwg.Generator

// Proxy interposes on one wrapped object.
type Proxy = jwg.Proxy

// NewGenerator returns an empty generator.
func NewGenerator() *Generator { return jwg.NewGenerator() }

// InjectionFilter implements the detection phase's exception injection for
// proxied objects.
type InjectionFilter = jwg.InjectionFilter

// DetectionFilter snapshots the target before each call and compares after
// exceptional returns.
type DetectionFilter = jwg.DetectionFilter

// DetectionMark is one proxied atomicity observation.
type DetectionMark = jwg.DetectionMark

// MaskingFilter checkpoints the target and rolls back on exceptions
// (Listing 2 as a filter).
type MaskingFilter = jwg.MaskingFilter

// TraceFilter records invocation order.
type TraceFilter = jwg.TraceFilter

// Kinds builds an InjectionFilter kind source from a static table.
func Kinds(table map[string][]fault.Kind) func(method string) []fault.Kind {
	return func(method string) []fault.Kind { return table[method] }
}

// UndoLogStrategy returns the journal-based checkpoint strategy for
// masking filters over Journaled targets.
func UndoLogStrategy() checkpoint.Strategy { return checkpoint.UndoLog() }
