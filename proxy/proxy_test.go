package proxy_test

import (
	"testing"

	"failatomic"
	"failatomic/proxy"
)

// turnstile is an uninstrumented subject: Pass is failure non-atomic.
type turnstile struct {
	Count  int
	Locked bool
}

func (t *turnstile) Pass() int {
	t.Count++
	if t.Locked {
		failatomic.Throw(failatomic.IllegalState, "turnstile.Pass", "locked")
	}
	return t.Count
}

func (t *turnstile) Lock()   { t.Locked = true }
func (t *turnstile) Unlock() { t.Locked = false }

func TestPublicProxyWorkflow(t *testing.T) {
	gen := proxy.NewGenerator()
	det := &proxy.DetectionFilter{}
	gen.AddClassFilter("turnstile", det)

	ts := &turnstile{Locked: true}
	p, err := gen.Wrap(ts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("Pass"); err == nil {
		t.Fatal("locked turnstile must throw")
	}
	na := det.NonAtomicMethods()
	if len(na) != 1 || na[0] != "turnstile.Pass" {
		t.Fatalf("detection over proxy failed: %v", na)
	}

	gen2 := proxy.NewGenerator()
	mask := &proxy.MaskingFilter{}
	gen2.AddMethodFilter("turnstile.Pass", mask)
	ts2 := &turnstile{Locked: true}
	p2, err := gen2.Wrap(ts2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Invoke("Pass"); err == nil {
		t.Fatal("masked method must still re-throw")
	}
	if ts2.Count != 0 {
		t.Fatalf("rollback failed: count=%d", ts2.Count)
	}
	if _, err := p2.Invoke("Unlock"); err != nil {
		t.Fatal(err)
	}
	results, err := p2.Invoke("Pass")
	if err != nil || results[0] != 1 {
		t.Fatalf("post-unlock pass: %v %v", results, err)
	}
	if mask.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d", mask.Rollbacks)
	}
}

func TestKindsTable(t *testing.T) {
	kinds := proxy.Kinds(map[string][]failatomic.Kind{
		"turnstile.Pass": {failatomic.IllegalState},
	})
	if got := kinds("turnstile.Pass"); len(got) != 1 || got[0] != failatomic.IllegalState {
		t.Fatalf("Kinds lookup = %v", got)
	}
	if got := kinds("other.Method"); got != nil {
		t.Fatalf("unknown method must map to nil, got %v", got)
	}
}

func TestInjectionCampaignOverProxy(t *testing.T) {
	// Full proxied detection loop with declared kinds.
	kinds := proxy.Kinds(map[string][]failatomic.Kind{
		"turnstile.Pass": {failatomic.IllegalState},
	})
	clean := &proxy.InjectionFilter{Kinds: kinds}
	gen := proxy.NewGenerator()
	gen.AddFilter(clean)
	p, _ := gen.Wrap(&turnstile{})
	for i := 0; i < 4; i++ {
		if _, err := p.Invoke("Pass"); err != nil {
			t.Fatal(err)
		}
	}
	total := clean.Point
	if total != 4*3 { // 1 declared + 2 runtime kinds per call
		t.Fatalf("points = %d, want 12", total)
	}
	fired := 0
	for ip := 1; ip <= total; ip++ {
		inj := &proxy.InjectionFilter{Kinds: kinds, InjectionPoint: ip}
		g := proxy.NewGenerator()
		g.AddFilter(inj)
		pp, _ := g.Wrap(&turnstile{})
		for i := 0; i < 4; i++ {
			if _, err := pp.Invoke("Pass"); err != nil {
				break
			}
		}
		if inj.Injected != nil {
			fired++
		}
	}
	if fired != total {
		t.Fatalf("fired %d of %d points", fired, total)
	}
}

func TestUndoLogStrategyExported(t *testing.T) {
	if proxy.UndoLogStrategy().Name() != "undolog" {
		t.Fatal("strategy name mismatch")
	}
}
