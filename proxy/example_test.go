package proxy_test

import (
	"fmt"

	"failatomic"
	"failatomic/proxy"
)

// meter is "compiled third-party code" with a count-before-validate bug.
type meter struct {
	Reading int
}

// Advance commits before validating.
func (m *meter) Advance(by int) {
	m.Reading += by
	if by < 0 {
		failatomic.Throw(failatomic.IllegalArgument, "meter.Advance", "negative step")
	}
}

// Example shows the no-source-access workflow: wrap, detect, mask.
func Example() {
	// Detect over a proxy.
	gen := proxy.NewGenerator()
	det := &proxy.DetectionFilter{}
	gen.AddClassFilter("meter", det)
	p, _ := gen.Wrap(&meter{})
	_, _ = p.Invoke("Advance", -3)
	fmt.Println("non-atomic:", det.NonAtomicMethods())

	// Mask exactly what was found.
	gen2 := proxy.NewGenerator()
	for _, name := range det.NonAtomicMethods() {
		gen2.AddMethodFilter(name, &proxy.MaskingFilter{})
	}
	m := &meter{Reading: 10}
	p2, _ := gen2.Wrap(m)
	_, err := p2.Invoke("Advance", -3)
	fmt.Println("masked call error:", err != nil)
	fmt.Println("reading after rollback:", m.Reading)
	// Output:
	// non-atomic: [meter.Advance]
	// masked call error: true
	// reading after rollback: 10
}
