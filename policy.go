package failatomic

import (
	"failatomic/internal/detect"
	"failatomic/internal/mask"
)

// Policy is the §4.3 "to wrap or not to wrap" input: which detected
// failure non-atomic methods the masking phase should leave alone, and
// why.
type Policy struct {
	// Intended methods are non-atomic by design: never wrapped.
	Intended []string
	// ManualFix methods will be repaired by hand: excluded from the wrap
	// set but reported for follow-up.
	ManualFix []string
	// ExceptionFree methods are asserted never to throw; methods that were
	// non-atomic solely because of injections into them reclassify atomic.
	ExceptionFree []string
	// WrapConditional also wraps conditional failure non-atomic methods,
	// disabling the Definition 3 optimization.
	WrapConditional bool
}

// MaskingPlan is the masking phase's work order: the wrap set plus the
// per-method skip reasons.
type MaskingPlan = mask.Plan

// PlanMasking applies a policy to a detection result and returns the
// methods the corrected program should wrap. Use the plan's Wrap list with
// Protect:
//
//	plan := failatomic.PlanMasking(result, failatomic.Policy{})
//	p, err := failatomic.Protect(plan.Wrap, failatomic.ProtectOptions{})
func PlanMasking(result *Result, policy Policy) *MaskingPlan {
	toSet := func(names []string) map[string]bool {
		if len(names) == 0 {
			return nil
		}
		set := make(map[string]bool, len(names))
		for _, n := range names {
			set[n] = true
		}
		return set
	}
	exceptionFree := toSet(policy.ExceptionFree)
	hinted := result.Classification
	if exceptionFree != nil {
		hinted = detect.Classify(result.Campaign, detect.Options{ExceptionFree: exceptionFree})
	}
	return mask.Build(result.Classification, hinted, mask.Policy{
		Intended:        toSet(policy.Intended),
		ManualFix:       toSet(policy.ManualFix),
		ExceptionFree:   exceptionFree,
		WrapConditional: policy.WrapConditional,
	})
}
