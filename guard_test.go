package failatomic_test

import (
	"testing"

	"failatomic"
)

type guardedPair struct {
	A, B int
	Next *guardedPair
}

func TestGuardRollsBackOnPanic(t *testing.T) {
	p := &guardedPair{A: 1, B: 2, Next: &guardedPair{A: 10}}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("panic did not propagate through Guard")
			}
		}()
		defer failatomic.Guard(p)()
		p.A = 99
		p.Next.A = 77
		panic("boom")
	}()
	if p.A != 1 || p.B != 2 || p.Next.A != 10 {
		t.Errorf("Guard did not roll back: %+v next %+v", p, p.Next)
	}
}

func TestGuardCommitsOnReturn(t *testing.T) {
	p := &guardedPair{A: 1}
	func() {
		defer failatomic.Guard(p)()
		p.A = 5
	}()
	if p.A != 5 {
		t.Errorf("Guard rolled back a normal return: %+v", p)
	}
}

// journaledBox exercises Guard's auto strategy selection: a Journaled root
// must be captured by undo log, not deep copy.
type journaledBox struct {
	N       int
	journal *failatomic.Journal
}

func (b *journaledBox) BeginJournal(j *failatomic.Journal) *failatomic.Journal {
	prev := b.journal
	b.journal = j
	return prev
}

func (b *journaledBox) EndJournal(prev *failatomic.Journal) { b.journal = prev }

func (b *journaledBox) set(n int) {
	old := b.N
	b.journal.Record(8, func() { b.N = old })
	b.N = n
}

func TestGuardUsesUndoLogForJournaled(t *testing.T) {
	b := &journaledBox{N: 1}
	func() {
		defer func() { _ = recover() }()
		defer failatomic.Guard(b)()
		if b.journal == nil {
			t.Error("Guard did not arm the journal of a Journaled root")
		}
		b.set(42)
		panic("boom")
	}()
	if b.N != 1 {
		t.Errorf("undo-log rollback failed: N = %d", b.N)
	}
	if b.journal != nil {
		t.Error("journal still armed after rollback")
	}
}
