// The quickstart example walks the paper's whole loop on a ten-line type:
// instrument, detect failure non-atomic methods via exception injection,
// and mask them with automatic checkpoint/rollback.
package main

import (
	"context"
	"fmt"
	"log"

	"failatomic"
)

// Inventory tracks stock levels. Reserve is written in the classic broken
// style: it decrements stock *before* validating the order, so a rejected
// order corrupts the count.
type Inventory struct {
	Stock    map[string]int
	Reserved int
}

// NewInventory returns a stocked inventory.
func NewInventory() *Inventory {
	defer failatomic.Enter(nil, "Inventory.New")()
	return &Inventory{Stock: map[string]int{"widget": 10, "gadget": 4}}
}

// Reserve takes n units of item out of stock. BUG: the mutation precedes
// the validation.
func (inv *Inventory) Reserve(item string, n int) {
	defer failatomic.Enter(inv, "Inventory.Reserve")()
	inv.Stock[item] -= n
	inv.Reserved += n
	inv.validate(item)
}

// ReserveSafe is the repaired variant: validate, then commit.
func (inv *Inventory) ReserveSafe(item string, n int) {
	defer failatomic.Enter(inv, "Inventory.ReserveSafe")()
	inv.validate(item)
	if inv.Stock[item] < n {
		failatomic.Throw(failatomic.IllegalArgument, "Inventory.ReserveSafe",
			"only %d %s left", inv.Stock[item], item)
	}
	inv.Stock[item] -= n
	inv.Reserved += n
}

// validate throws for unknown items and oversold stock.
func (inv *Inventory) validate(item string) {
	defer failatomic.Enter(inv, "Inventory.validate")()
	stock, ok := inv.Stock[item]
	if !ok {
		failatomic.Throw(failatomic.NoSuchElement, "Inventory.validate", "unknown item %q", item)
	}
	if stock < 0 {
		failatomic.Throw(failatomic.IllegalState, "Inventory.validate", "oversold %q", item)
	}
}

func main() {
	// Step 1: the Analyzer's knowledge — which methods exist, what they
	// throw.
	registry := failatomic.NewRegistry().
		Method("Inventory", "Reserve", failatomic.NoSuchElement, failatomic.IllegalState).
		Method("Inventory", "ReserveSafe", failatomic.IllegalArgument).
		Method("Inventory", "validate", failatomic.NoSuchElement, failatomic.IllegalState).
		Ctor("Inventory", "Inventory.New")

	// Steps 2-3: run the exception injection campaign over a test program.
	result, err := failatomic.Detect(context.Background(), &failatomic.Program{
		Name:     "quickstart",
		Registry: registry,
		Run: func() {
			inv := NewInventory()
			inv.Reserve("widget", 3)
			inv.ReserveSafe("gadget", 1)
			inv.Reserve("widget", 2)
		},
	}, failatomic.DetectOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("detection: %d injections over %d methods\n",
		result.Injections(), len(result.Methods))
	for _, name := range result.Names() {
		rep := result.Methods[name]
		fmt.Printf("  %-24s %v", name, rep.Classification)
		if rep.SampleDiff != "" {
			fmt.Printf("  (first difference: %s)", rep.SampleDiff)
		}
		fmt.Println()
	}

	// Steps 4-5: wrap the failure non-atomic methods with atomicity
	// wrappers and show the rollback in action.
	nonAtomic := result.NonAtomicMethods()
	fmt.Printf("\nmasking %v\n", nonAtomic)
	protection, err := failatomic.Protect(nonAtomic, failatomic.ProtectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer protection.Close()

	inv := NewInventory()
	func() {
		defer func() {
			if r := recover(); r != nil {
				fmt.Printf("caught: %v\n", failatomic.ExceptionFrom(r))
			}
		}()
		inv.Reserve("nonexistent", 5) // throws after mutating
	}()
	fmt.Printf("after masked failure: stock=%v reserved=%d (consistent!)\n",
		inv.Stock, inv.Reserved)
	fmt.Printf("rollbacks performed: %d\n", protection.Rollbacks())
}
