// The pipeline example mirrors the paper's C++ evaluation setting: a
// Self*-style data-flow pipeline (parser stage feeding a bounded queue)
// whose components must stay consistent across failures so the pipeline
// can skip bad records and keep going.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"failatomic"
)

// Record is one parsed input line.
type Record struct {
	Key   string
	Value string
}

// ParserStage parses "key=value" lines and tracks throughput. Parse
// commits its counters as it goes — failure non-atomic in the face of bad
// input *after* a partial batch.
type ParserStage struct {
	Lines   int
	BadSeen int
}

// ParseBatch parses a batch of lines; a malformed line aborts the batch
// mid-way, leaving Lines counting records that never reached the queue.
func (p *ParserStage) ParseBatch(lines []string) []*Record {
	defer failatomic.Enter(p, "ParserStage.ParseBatch")()
	out := make([]*Record, 0, len(lines))
	for _, line := range lines {
		out = append(out, p.parseOne(line))
		p.Lines++
	}
	return out
}

func (p *ParserStage) parseOne(line string) *Record {
	defer failatomic.Enter(p, "ParserStage.parseOne")()
	key, value, ok := strings.Cut(line, "=")
	if !ok || key == "" {
		failatomic.Throw(failatomic.ParseError, "ParserStage.parseOne", "bad line %q", line)
	}
	return &Record{Key: key, Value: value}
}

// BoundedQueue buffers records between stages, validate-first style.
type BoundedQueue struct {
	Items []*Record
	Max   int
}

// PushAll enqueues a batch; overflow mid-batch strands earlier records.
func (q *BoundedQueue) PushAll(records []*Record) {
	defer failatomic.Enter(q, "BoundedQueue.PushAll")()
	for _, r := range records {
		if len(q.Items) >= q.Max {
			failatomic.Throw(failatomic.CapacityExceeded, "BoundedQueue.PushAll",
				"queue full at %d", q.Max)
		}
		q.Items = append(q.Items, r)
	}
}

// Pop removes the oldest record.
func (q *BoundedQueue) Pop() *Record {
	defer failatomic.Enter(q, "BoundedQueue.Pop")()
	if len(q.Items) == 0 {
		failatomic.Throw(failatomic.NoSuchElement, "BoundedQueue.Pop", "empty queue")
	}
	r := q.Items[0]
	q.Items = q.Items[1:]
	return r
}

func registry() *failatomic.Registry {
	return failatomic.NewRegistry().
		Method("ParserStage", "ParseBatch", failatomic.ParseError).
		Method("ParserStage", "parseOne", failatomic.ParseError).
		Method("BoundedQueue", "PushAll", failatomic.CapacityExceeded).
		Method("BoundedQueue", "Pop", failatomic.NoSuchElement)
}

func main() {
	// Detection: which pipeline methods would corrupt state on failure?
	result, err := failatomic.Detect(context.Background(), &failatomic.Program{
		Name:     "pipeline",
		Registry: registry(),
		Run: func() {
			parser := &ParserStage{}
			queue := &BoundedQueue{Max: 8}
			records := parser.ParseBatch([]string{"a=1", "b=2"})
			queue.PushAll(records)
			_ = queue.Pop()
		},
	}, failatomic.DetectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range result.Names() {
		fmt.Printf("%-26s %v\n", name, result.Methods[name].Classification)
	}

	// Masking: make the batch operations transactional, then drive the
	// pipeline over mixed input — bad batches are skipped wholesale, good
	// batches flow, and the stage counters stay exact.
	protection, err := failatomic.Protect(result.NonAtomicMethods(), failatomic.ProtectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer protection.Close()

	parser := &ParserStage{}
	queue := &BoundedQueue{Max: 8}
	batches := [][]string{
		{"host=web1", "port=80"},
		{"host=web2", "oops-no-equals"}, // fails mid-batch
		{"host=web3", "port=81"},
	}
	for i, batch := range batches {
		func() {
			defer func() {
				if r := recover(); r != nil {
					parser.BadSeen++
					fmt.Printf("batch %d skipped: %v\n", i, failatomic.ExceptionFrom(r))
				}
			}()
			queue.PushAll(parser.ParseBatch(batch))
		}()
	}
	fmt.Printf("\nqueued %d records from %d good batches; Lines=%d (exact), BadSeen=%d\n",
		len(queue.Items), 2, parser.Lines, parser.BadSeen)
	if parser.Lines != len(queue.Items) {
		fmt.Println("INCONSISTENT: parser count disagrees with queue depth")
	} else {
		fmt.Println("consistent: parser count matches queue depth")
	}
	fmt.Printf("rollbacks performed: %d\n", protection.Rollbacks())
}
