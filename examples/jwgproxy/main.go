// The jwgproxy example is the paper's "no source access" scenario (§5.2):
// a third-party type with no instrumentation at all is wrapped with
// runtime reflection proxies; generic filters then inject exceptions,
// detect non-atomic methods, and mask them — the Java Wrapper Generator
// workflow, in Go.
package main

import (
	"fmt"

	"failatomic"
	"failatomic/proxy"
)

// RateLimiter is "compiled third-party code": no prologues, plain methods.
// Take is failure non-atomic — it spends a token before checking the
// burst budget.
type RateLimiter struct {
	Tokens int
	Burst  int
	Taken  int
}

// Take consumes n tokens. BUG: spend, then validate.
func (rl *RateLimiter) Take(n int) int {
	rl.Tokens -= n
	rl.Taken += n
	if n > rl.Burst {
		failatomic.Throw(failatomic.IllegalArgument, "RateLimiter.Take",
			"burst %d exceeds limit %d", n, rl.Burst)
	}
	if rl.Tokens < 0 {
		failatomic.Throw(failatomic.IllegalState, "RateLimiter.Take", "out of tokens")
	}
	return rl.Tokens
}

// Refill adds tokens, validate-first (failure atomic).
func (rl *RateLimiter) Refill(n int) {
	if n <= 0 {
		failatomic.Throw(failatomic.IllegalArgument, "RateLimiter.Refill", "bad refill %d", n)
	}
	rl.Tokens += n
}

func main() {
	// Phase 1 — detection over the proxy: a tracing filter shows the
	// interposition, a detection filter compares object graphs around
	// every exceptional return.
	gen := proxy.NewGenerator()
	var events []string
	gen.AddFilter(proxy.TraceFilter{Label: "app", Events: &events})
	det := &proxy.DetectionFilter{}
	gen.AddClassFilter("RateLimiter", det)

	rl := &RateLimiter{Tokens: 10, Burst: 5}
	p, err := gen.Wrap(rl)
	if err != nil {
		panic(err)
	}
	_, _ = p.Invoke("Take", 3)
	_, _ = p.Invoke("Refill", 2)
	if _, err := p.Invoke("Take", 9); err != nil { // exceeds burst after spending
		fmt.Printf("observed: %v\n", err)
	}
	fmt.Printf("trace: %d filter events, first %q\n", len(events), events[0])
	fmt.Printf("detected failure non-atomic: %v\n", det.NonAtomicMethods())
	for _, m := range det.Marks {
		if !m.Atomic {
			fmt.Printf("  evidence: %s\n", m.Diff)
		}
	}

	// Phase 2 — masking via filters: fresh generator, atomicity wrapper
	// on exactly the flagged methods.
	gen2 := proxy.NewGenerator()
	mask := &proxy.MaskingFilter{}
	for _, m := range det.NonAtomicMethods() {
		gen2.AddMethodFilter(m, mask)
	}
	rl2 := &RateLimiter{Tokens: 10, Burst: 5}
	p2, err := gen2.Wrap(rl2)
	if err != nil {
		panic(err)
	}
	if _, err := p2.Invoke("Take", 9); err != nil {
		fmt.Printf("\nmasked call failed cleanly: %v\n", err)
	}
	fmt.Printf("state after masked failure: tokens=%d taken=%d (consistent!)\n",
		rl2.Tokens, rl2.Taken)
	results, err := p2.Invoke("Take", 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("subsequent valid call: tokens left = %v, rollbacks = %d\n",
		results[0], mask.Rollbacks)
}
