// The orderretry example demonstrates *why* failure atomicity matters for
// the recovery pattern the paper's introduction motivates: "recovery is
// often based on retrying failed methods ... for a retry to succeed, a
// failed method also has to leave changed objects in a consistent state."
//
// An order processor talks to a flaky payment gateway and retries failed
// submissions. Without masking, every failed attempt double-charges the
// running total and the retry loop commits corrupted state. With the
// failure non-atomic method masked, the same retry loop produces the
// correct result.
package main

import (
	"context"
	"fmt"
	"log"

	"failatomic"
)

// Gateway simulates a payment service that fails transiently: every
// attempt for an amount tagged flaky fails until Attempts reaches the
// configured reliability threshold.
type Gateway struct {
	Attempts   int
	FailsFirst int
}

// Charge throws IOError for the first FailsFirst attempts.
func (g *Gateway) Charge(amount int) {
	defer failatomic.Enter(g, "Gateway.Charge")()
	g.Attempts++
	if g.Attempts <= g.FailsFirst {
		failatomic.Throw(failatomic.IOError, "Gateway.Charge",
			"gateway unavailable (attempt %d)", g.Attempts)
	}
}

// Order is one customer order being processed.
type Order struct {
	Items   []string
	Total   int
	Charged bool
}

// Processor accumulates daily totals while submitting orders. Submit is
// failure non-atomic: the revenue counters are updated before the charge
// succeeds, so a failed (and later retried) submission double-counts.
//
// The gateway is held as a function value, not an object reference:
// function values are opaque to checkpointing, which models the paper's
// §4.4 boundary — the external world (the real payment network) is not
// part of the object graph and is never rolled back.
type Processor struct {
	Charge  func(amount int)
	Revenue int
	Orders  int
}

// Submit charges an order and records the revenue. BUG: commit before
// charge.
func (p *Processor) Submit(o *Order) {
	defer failatomic.Enter(p, "Processor.Submit", o)()
	p.Revenue += o.Total
	p.Orders++
	p.Charge(o.Total)
	o.Charged = true
}

// SubmitWithRetry is the recovery seam: catch, retry up to three times.
// Its correctness depends entirely on Submit being failure atomic.
func (p *Processor) SubmitWithRetry(o *Order) (err error) {
	defer failatomic.Enter(p, "Processor.SubmitWithRetry", o)()
	for attempt := 0; attempt < 3; attempt++ {
		err = p.trySubmit(o)
		if err == nil {
			return nil
		}
	}
	return err
}

func (p *Processor) trySubmit(o *Order) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = failatomic.ExceptionFrom(r)
		}
	}()
	p.Submit(o)
	return nil
}

func registry() *failatomic.Registry {
	return failatomic.NewRegistry().
		Method("Gateway", "Charge", failatomic.IOError).
		Method("Processor", "Submit", failatomic.IOError).
		Method("Processor", "SubmitWithRetry")
}

func processDay(label string) {
	gateway := &Gateway{FailsFirst: 2} // first two attempts fail
	p := &Processor{Charge: gateway.Charge}
	orders := []*Order{
		{Items: []string{"book"}, Total: 30},
		{Items: []string{"pen", "ink"}, Total: 12},
	}
	for _, o := range orders {
		if err := p.SubmitWithRetry(o); err != nil {
			fmt.Printf("%s: order permanently failed: %v\n", label, err)
		}
	}
	fmt.Printf("%s: revenue=%d orders=%d (correct: 42 and 2)\n", label, p.Revenue, p.Orders)
}

func main() {
	// Detection phase: the injector finds Submit's non-atomicity without
	// needing the gateway to actually misbehave.
	result, err := failatomic.Detect(context.Background(), &failatomic.Program{
		Name:     "orderretry",
		Registry: registry(),
		Run: func() {
			gateway := &Gateway{}
			p := &Processor{Charge: gateway.Charge}
			_ = p.SubmitWithRetry(&Order{Items: []string{"x"}, Total: 5})
		},
	}, failatomic.DetectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected failure non-atomic: %v\n\n", result.NonAtomicMethods())

	// Without masking, the retry loop corrupts the totals.
	processDay("unmasked")

	// With the atomicity wrapper installed, the same code is correct.
	protection, err := failatomic.Protect(result.NonAtomicMethods(), failatomic.ProtectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer protection.Close()
	processDay("masked  ")
	fmt.Printf("\nmasked calls=%d rollbacks=%d\n",
		protection.MaskedCalls(), protection.Rollbacks())
}
