// Package failatomic detects and masks non-atomic exception handling in Go
// programs, reproducing "Automatic Detection and Masking of Non-Atomic
// Exception Handling" (Fetzer, Högstedt, Felber — DSN 2003) on top of
// panic/recover.
//
// A method is failure atomic if, whenever it terminates by panicking, the
// object graph reachable from its receiver (and by-reference arguments) is
// identical before the call and after the exceptional return. Methods that
// violate this leave objects in inconsistent states that defeat
// catch-and-retry recovery.
//
// # Instrumenting
//
// Every method to be analyzed carries a one-line prologue (inserted by
// hand or by the faweave source weaver):
//
//	func (l *List) Insert(v int) {
//		defer failatomic.Enter(l, "List.Insert")()
//		...
//	}
//
// With no session installed the prologue is a cheap no-op.
//
// # Detecting
//
// Describe the program under test and run a Campaign. The campaign
// executes the workload once per potential injection point, raising one
// exception per run, and classifies every method as failure atomic,
// conditional failure non-atomic, or pure failure non-atomic:
//
//	program := &failatomic.Program{
//		Name:     "myapp",
//		Registry: reg,
//		Run:      func() { ... fresh objects, deterministic workload ... },
//	}
//	result, err := failatomic.Detect(ctx, program, failatomic.DetectOptions{})
//	for _, m := range result.NonAtomicMethods() { ... }
//
// # Masking
//
// Protect installs the masking runtime (Listing 2 of the paper): every
// listed method is wrapped with checkpoint/rollback so its callers observe
// failure atomic behavior:
//
//	p, err := failatomic.Protect(result.NonAtomicMethods())
//	defer p.Close()
package failatomic

import (
	"context"
	"fmt"
	"time"

	"failatomic/internal/checkpoint"
	"failatomic/internal/core"
	"failatomic/internal/detect"
	"failatomic/internal/fault"
	"failatomic/internal/inject"
	"failatomic/internal/objgraph"
	"failatomic/internal/repair"
)

// Enter is the woven method prologue. recv is the receiver (nil for
// constructors and free functions), name the "Class.Method" label, extra
// any by-reference arguments that belong to the compared object graph. The
// returned closure must be deferred immediately.
func Enter(recv any, name string, extra ...any) func() {
	return core.Enter(recv, name, extra...)
}

// Kind names an exception type.
type Kind = fault.Kind

// Exception is the value carried by a panic that models a thrown
// exception.
type Exception = fault.Exception

// Generic runtime kinds (injected into every method) and the declared
// kinds shared by the bundled applications.
const (
	RuntimeError     = fault.RuntimeError
	OutOfMemory      = fault.OutOfMemory
	IndexOutOfBounds = fault.IndexOutOfBounds
	IllegalElement   = fault.IllegalElement
	NoSuchElement    = fault.NoSuchElement
	IllegalArgument  = fault.IllegalArgument
	IllegalState     = fault.IllegalState
	CapacityExceeded = fault.CapacityExceeded
	ParseError       = fault.ParseError
	IOError          = fault.IOError
)

// Throw panics with an organic (non-injected) Exception of the given kind.
func Throw(kind Kind, method, format string, args ...any) {
	fault.Throw(kind, method, format, args...)
}

// ExceptionFrom converts a recovered panic value into an *Exception.
func ExceptionFrom(r any) *Exception { return fault.From(r) }

// Registry maps instrumentation names to method metadata — which methods
// exist and which exception kinds each declares (the Analyzer output of
// the paper's Step 1).
type Registry = core.Registry

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return core.NewRegistry() }

// Program is one instrumented application under test.
type Program = inject.Program

// Mark records one atomicity observation of the detection phase.
type Mark = core.Mark

// MethodClass is a method's classification.
type MethodClass = detect.MethodClass

// Classification values.
const (
	ClassAtomic      = detect.ClassAtomic
	ClassConditional = detect.ClassConditional
	ClassPure        = detect.ClassPure
)

// MethodReport is the per-method detection output.
type MethodReport = detect.MethodReport

// Result is the outcome of a detection campaign.
type Result struct {
	// Campaign holds the raw injection runs.
	Campaign *inject.Result
	// Classification holds the per-method verdicts.
	*detect.Classification
}

// DetectOptions tunes a detection campaign.
type DetectOptions struct {
	// MaxRuns caps the number of injector executions (0 = default).
	MaxRuns int
	// Repeats runs the workload this many times per execution, scaling the
	// injection space (campaign cost grows quadratically).
	Repeats int
	// ExceptionFree lists methods asserted never to throw (§4.3); they
	// receive no injection points.
	ExceptionFree map[string]bool
	// Mask additionally wraps the listed methods during the campaign —
	// the masking-phase verification loop.
	Mask map[string]bool
	// Serialize holds a session-global lock across each instrumented call,
	// for workloads that spawn goroutines (the paper's §4.4 mitigation:
	// "restricting the amount of parallelism").
	Serialize bool
	// Parallelism explores the injection-point space with this many worker
	// goroutines (0 or 1 = sequential). Each worker runs its own
	// goroutine-scoped session, and runs are merged in point order, so a
	// deterministic single-goroutine workload classifies identically to a
	// sequential campaign — only faster. Workloads that spawn goroutines
	// must stay sequential (scoped sessions do not follow child
	// goroutines).
	Parallelism int
	// RunTimeout bounds each injection run; a run that exceeds it is
	// abandoned and the point retried or quarantined instead of hanging
	// the campaign (0 disables the watchdog). Setting RunTimeout or
	// MaxRetries enables per-run supervision.
	RunTimeout time.Duration
	// MaxRetries re-attempts hung or crashed (foreign-panic) runs this
	// many extra times before quarantining the point.
	MaxRetries int
	// MaxQuarantined fails the campaign once more than this many points
	// are quarantined; <= 0 tolerates any number, completing the campaign
	// and reporting the quarantined points on the Result.
	MaxQuarantined int
	// Snapshot selects the snapshot engine: SnapshotFingerprint (the
	// default) hashes object graphs on the hot path and recovers diffs by
	// deterministic replay; SnapshotCapture materializes full graphs on
	// every wrapped call (the escape hatch for nondeterministic
	// workloads). Results are byte-identical either way.
	Snapshot SnapshotMode
	// Perturb selects extra fault strategies on top of the default
	// first-activation sweep, in fadetect's -perturb grammar: a
	// comma-separated list of "nth[=N]", "burst[=budget]", "defer" and
	// "oblivious" (e.g. "nth=3,burst,oblivious"). Their runs are
	// classified per strategy via StrategyClassification; the baseline
	// Classification is unchanged by adding strategies.
	Perturb string
}

// SnapshotMode selects how detection sessions summarize before-states.
type SnapshotMode = core.SnapshotMode

// Snapshot modes.
const (
	// SnapshotFingerprint streams a 128-bit graph hash (zero allocations)
	// and replays non-atomic runs in capture mode to recover diffs.
	SnapshotFingerprint = core.SnapshotFingerprint
	// SnapshotCapture materializes full object graphs on every call.
	SnapshotCapture = core.SnapshotCapture
)

// Quarantine summarizes one injection point the campaign supervisor gave
// up on after its retries.
type Quarantine = inject.Quarantine

// Detect runs the full detection phase for a program: one clean run to
// size the injection space, one run per injection point, then offline
// classification. The context cancels the campaign between runs (mid-run
// when a RunTimeout supervisor is active).
func Detect(ctx context.Context, p *Program, opts DetectOptions) (*Result, error) {
	perturbations, err := inject.ParsePerturbations(opts.Perturb)
	if err != nil {
		return nil, err
	}
	res, err := inject.Campaign(ctx, p, inject.Options{
		MaxRuns:        opts.MaxRuns,
		Repeats:        opts.Repeats,
		ExceptionFree:  opts.ExceptionFree,
		Mask:           opts.Mask,
		Serialize:      opts.Serialize,
		Parallelism:    opts.Parallelism,
		RunTimeout:     opts.RunTimeout,
		MaxRetries:     opts.MaxRetries,
		MaxQuarantined: opts.MaxQuarantined,
		Snapshot:       opts.Snapshot,
		Perturbations:  perturbations,
	})
	if err != nil {
		return nil, err
	}
	cls := detect.Classify(res, detect.Options{ExceptionFree: opts.ExceptionFree})
	return &Result{Campaign: res, Classification: cls}, nil
}

// Strategies lists the perturbation strategies that contributed runs to
// the campaign, sorted; empty when Detect ran without Perturb.
func (r *Result) Strategies() []string { return detect.Strategies(r.Campaign) }

// StrategyClassification classifies only the runs one perturbation
// strategy planned — compare against the embedded baseline Classification
// to see which methods the richer fault model flips.
func (r *Result) StrategyClassification(strategy string) *detect.Classification {
	return detect.ClassifyStrategy(r.Campaign, detect.Options{}, strategy)
}

// Injections returns the number of runs in which an exception fired.
func (r *Result) Injections() int { return r.Campaign.Injections }

// Quarantined returns the injection points the supervisor quarantined
// (hung or crashed after retries), in point order; empty for a healthy
// campaign.
func (r *Result) Quarantined() []Quarantine { return r.Campaign.Quarantined }

// Calls returns the clean-run per-method call counts.
func (r *Result) Calls() map[string]int64 { return r.Campaign.CleanCalls }

// Strategy abstracts how masking checkpoints an object.
type Strategy = checkpoint.Strategy

// DeepCopy returns the eager deep-copy checkpoint strategy (Listing 2).
func DeepCopy() Strategy { return checkpoint.DeepCopy() }

// UndoLog returns the journal-based strategy for types implementing
// Journaled — the paper's copy-on-write suggestion.
func UndoLog() Strategy { return checkpoint.UndoLog() }

// Auto returns the strategy that picks per root: the undo log when the
// root implements Journaled, a deep copy otherwise.
func Auto() Strategy { return checkpoint.Auto() }

// Guard checkpoints the given roots and returns a closure to defer: on
// panic it rolls the roots back and re-panics, making the guarded region
// failure atomic; on normal return it commits (detaching any journal).
// This is the checkpoint rung of the repair pipeline's Item-76 ladder —
// the form farepair weaves into methods that cannot be fixed by
// reordering or a temp-copy swap:
//
//	defer failatomic.Guard(l)()
//
// A capture failure is reported by leaving the roots unguarded (the
// closure is a no-op); the alternative — panicking inside the prologue —
// would turn a diagnostic limitation into a new failure mode.
func Guard(roots ...any) func() {
	handle, err := checkpoint.Auto().Capture(roots...)
	if err != nil {
		return func() {}
	}
	return func() {
		if r := recover(); r != nil {
			_ = handle.Rollback()
			panic(r)
		}
		if c, ok := handle.(checkpoint.Committer); ok {
			c.Commit()
		}
	}
}

// RepairConfig tunes a Repair workflow: the application, where to
// materialize its trees, and the phase-1 campaign options.
type RepairConfig = repair.Config

// RepairReport is the outcome of a Repair workflow; Render prints it and
// Succeeded reports whether the repaired tree verified clean.
type RepairReport = repair.Report

// Repair closes the paper's detect → mask → verify loop for a bundled
// application with an embedded source tree: run the detection campaign,
// derive the §4.3 masking plan with an Item-76 strategy rung per method,
// rewrite a copy of the source tree per rung, rebuild both trees and
// re-run detection in child processes, then verify the masking plan
// in-process, collecting per-strategy overhead. This is the programmatic
// form of the farepair command.
func Repair(ctx context.Context, cfg RepairConfig) (*RepairReport, error) {
	return repair.Run(ctx, cfg)
}

// Journaled is implemented by types that record undo actions while they
// mutate (see UndoLog).
type Journaled = checkpoint.Journaled

// Journal accumulates undo actions for the UndoLog strategy.
type Journal = checkpoint.Journal

// Snapshotter lets a type with unexported state participate in
// checkpointing by providing its own deep copy.
type Snapshotter = checkpoint.Snapshotter

// Protection is an installed masking runtime.
type Protection struct {
	session *core.Session
}

// ProtectOptions tunes Protect.
type ProtectOptions struct {
	// Strategy overrides the checkpoint strategy (nil = DeepCopy).
	Strategy Strategy
	// All masks every instrumented method instead of a listed set.
	All bool
	// Serialize holds a session-global lock across each instrumented call,
	// making checkpoint/rollback safe for concurrent callers at the price
	// of serializing them (§4.4).
	Serialize bool
}

// Protect installs the masking runtime for production use: each listed
// method is wrapped with checkpoint-on-entry / rollback-on-panic, making
// it failure atomic to its callers. Exactly one global session (Protect,
// or a sequential Detect) can be installed at a time; Close releases it.
// Parallel campaigns use goroutine-scoped sessions and are not subject to
// the exclusivity.
func Protect(methods []string, opts ProtectOptions) (*Protection, error) {
	if len(methods) == 0 && !opts.All {
		return nil, fmt.Errorf("failatomic: Protect needs methods or All")
	}
	set := make(map[string]bool, len(methods))
	for _, m := range methods {
		set[m] = true
	}
	session := core.NewSession(core.Config{
		Mask:        true,
		MaskAll:     opts.All,
		MaskMethods: set,
		Strategy:    opts.Strategy,
		Serialize:   opts.Serialize,
	})
	if err := core.Install(session); err != nil {
		return nil, err
	}
	return &Protection{session: session}, nil
}

// Close uninstalls the masking runtime.
func (p *Protection) Close() { core.Uninstall(p.session) }

// MaskedCalls returns how many calls were checkpointed so far.
func (p *Protection) MaskedCalls() int64 { return p.session.MaskedCalls() }

// Rollbacks returns how many exceptions were masked by rollback.
func (p *Protection) Rollbacks() int64 { return p.session.Rollbacks() }

// Skips returns the methods whose checkpoints failed (they ran unmasked).
func (p *Protection) Skips() []core.MaskSkip { return p.session.MaskSkips() }

// Graph is an immutable encoded object graph (Definition 1).
type Graph = objgraph.Graph

// CaptureGraph encodes the object graphs rooted at the given values.
func CaptureGraph(roots ...any) *Graph { return objgraph.Capture(roots...) }

// GraphsEqual reports whether two captured graphs are isomorphic — the
// atomicity test of Definition 2.
func GraphsEqual(a, b *Graph) bool { return objgraph.Equal(a, b) }

// GraphDiff returns the path to the first difference between two graphs,
// or "" if they are equal.
func GraphDiff(a, b *Graph) string { return objgraph.Diff(a, b) }
