// Package fault defines the exception values that flow through the
// failatomic runtime.
//
// Go has no exceptions; the reproduction models them as panics carrying
// *Exception values. A method "throws" by calling Throw (or panicking with
// an *Exception), and "declares" its exceptions by registering the Kinds it
// may raise. The injection engine additionally raises generic runtime kinds
// (RuntimeError, OutOfMemory) in any method, mirroring the paper's
// undeclared runtime exceptions.
package fault

import "fmt"

// Kind names an exception type. Applications define their own kinds; the
// runtime kinds below can be raised by any method.
type Kind string

// Generic runtime kinds, injectable into every method (the analog of Java's
// undeclared RuntimeException/Error hierarchy).
const (
	RuntimeError Kind = "RuntimeError"
	OutOfMemory  Kind = "OutOfMemory"
)

// Common declared kinds shared by the bundled applications.
const (
	IndexOutOfBounds Kind = "IndexOutOfBounds"
	IllegalElement   Kind = "IllegalElement"
	NoSuchElement    Kind = "NoSuchElement"
	IllegalArgument  Kind = "IllegalArgument"
	IllegalState     Kind = "IllegalState"
	CapacityExceeded Kind = "CapacityExceeded"
	ParseError       Kind = "ParseError"
	IOError          Kind = "IOError"
)

// RuntimeKinds is the default set of undeclared kinds the injector raises in
// every method on top of the method's declared kinds.
func RuntimeKinds() []Kind {
	return []Kind{RuntimeError, OutOfMemory}
}

// Exception is the value carried by a panic that models a thrown exception.
type Exception struct {
	// Kind is the exception type.
	Kind Kind
	// Method is the "Class.Method" name the exception originated in.
	Method string
	// Msg is the human-readable detail message.
	Msg string
	// Injected reports whether the exception was raised by the injection
	// engine rather than by application logic.
	Injected bool
	// Point is the global injection-point counter value at which the
	// exception was injected (0 for organic exceptions).
	Point int
}

var _ error = (*Exception)(nil)

// Error implements the error interface.
func (e *Exception) Error() string {
	origin := e.Method
	if origin == "" {
		origin = "?"
	}
	tag := ""
	if e.Injected {
		tag = fmt.Sprintf(" [injected@%d]", e.Point)
	}
	if e.Msg == "" {
		return fmt.Sprintf("%s in %s%s", e.Kind, origin, tag)
	}
	return fmt.Sprintf("%s in %s: %s%s", e.Kind, origin, e.Msg, tag)
}

// Throw panics with a new organic (non-injected) Exception.
func Throw(kind Kind, method, format string, args ...any) {
	panic(&Exception{
		Kind:   kind,
		Method: method,
		Msg:    fmt.Sprintf(format, args...),
	})
}

// New returns an injected Exception for the given injection point.
func New(kind Kind, method string, point int) *Exception {
	return &Exception{
		Kind:     kind,
		Method:   method,
		Injected: true,
		Point:    point,
	}
}

// From converts an arbitrary recovered panic value into an *Exception.
// Foreign panics (index out of range, nil dereference, explicit panics with
// non-Exception values) are wrapped as RuntimeError, mirroring how the paper
// treats undeclared runtime exceptions.
func From(r any) *Exception {
	switch v := r.(type) {
	case *Exception:
		return v
	case error:
		return &Exception{Kind: RuntimeError, Msg: v.Error()}
	default:
		return &Exception{Kind: RuntimeError, Msg: fmt.Sprint(v)}
	}
}

// AsError recovers a panic value as an error. It is used by application
// entry points that convert exceptional termination into an error return
// ("exceptions should not cross package boundaries").
func AsError(r any) error {
	if r == nil {
		return nil
	}
	return From(r)
}
