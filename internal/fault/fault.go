// Package fault defines the exception values that flow through the
// failatomic runtime.
//
// Go has no exceptions; the reproduction models them as panics carrying
// *Exception values. A method "throws" by calling Throw (or panicking with
// an *Exception), and "declares" its exceptions by registering the Kinds it
// may raise. The injection engine additionally raises generic runtime kinds
// (RuntimeError, OutOfMemory) in any method, mirroring the paper's
// undeclared runtime exceptions.
package fault

import (
	"fmt"
	"runtime"
	"strings"
)

// Kind names an exception type. Applications define their own kinds; the
// runtime kinds below can be raised by any method.
type Kind string

// Generic runtime kinds, injectable into every method (the analog of Java's
// undeclared RuntimeException/Error hierarchy).
const (
	RuntimeError Kind = "RuntimeError"
	OutOfMemory  Kind = "OutOfMemory"
)

// Common declared kinds shared by the bundled applications.
const (
	IndexOutOfBounds Kind = "IndexOutOfBounds"
	IllegalElement   Kind = "IllegalElement"
	NoSuchElement    Kind = "NoSuchElement"
	IllegalArgument  Kind = "IllegalArgument"
	IllegalState     Kind = "IllegalState"
	CapacityExceeded Kind = "CapacityExceeded"
	ParseError       Kind = "ParseError"
	IOError          Kind = "IOError"
)

// RuntimeKinds is the default set of undeclared kinds the injector raises in
// every method on top of the method's declared kinds.
func RuntimeKinds() []Kind {
	return []Kind{RuntimeError, OutOfMemory}
}

// Exception is the value carried by a panic that models a thrown exception.
type Exception struct {
	// Kind is the exception type.
	Kind Kind
	// Method is the "Class.Method" name the exception originated in.
	Method string
	// Msg is the human-readable detail message.
	Msg string
	// Injected reports whether the exception was raised by the injection
	// engine rather than by application logic.
	Injected bool
	// Point is the global injection-point counter value at which the
	// exception was injected (0 for organic exceptions).
	Point int
	// Foreign reports that the recovered panic value was not an
	// *Exception — a crash (nil dereference, index out of range, an
	// explicit panic with a foreign value) wrapped for uniform handling.
	// The campaign supervisor treats foreign escapes as crashes to retry
	// and quarantine rather than as modeled exceptions.
	Foreign bool
	// Stack is a truncated, normalized stack captured when a foreign
	// panic was wrapped (empty otherwise): function names and file:line
	// only, newest frame first, so hung/quarantined-point reports are
	// triageable and deterministic workloads produce identical stacks
	// across processes (resume logs rely on that).
	Stack string
}

var _ error = (*Exception)(nil)

// Error implements the error interface.
func (e *Exception) Error() string {
	origin := e.Method
	if origin == "" {
		origin = "?"
	}
	tag := ""
	if e.Injected {
		tag = fmt.Sprintf(" [injected@%d]", e.Point)
	}
	if e.Msg == "" {
		return fmt.Sprintf("%s in %s%s", e.Kind, origin, tag)
	}
	return fmt.Sprintf("%s in %s: %s%s", e.Kind, origin, e.Msg, tag)
}

// Throw panics with a new organic (non-injected) Exception.
func Throw(kind Kind, method, format string, args ...any) {
	panic(&Exception{
		Kind:   kind,
		Method: method,
		Msg:    fmt.Sprintf(format, args...),
	})
}

// New returns an injected Exception for the given injection point.
func New(kind Kind, method string, point int) *Exception {
	return &Exception{
		Kind:     kind,
		Method:   method,
		Injected: true,
		Point:    point,
	}
}

// From converts an arbitrary recovered panic value into an *Exception.
// Foreign panics (index out of range, nil dereference, explicit panics with
// non-Exception values) are wrapped as RuntimeError, mirroring how the paper
// treats undeclared runtime exceptions; the wrapped Exception is marked
// Foreign and carries a truncated stack of the panic site for triage.
func From(r any) *Exception {
	if e, ok := r.(*Exception); ok {
		return e
	}
	msg := ""
	if err, ok := r.(error); ok {
		msg = err.Error()
	} else {
		msg = fmt.Sprint(r)
	}
	return &Exception{Kind: RuntimeError, Msg: msg, Foreign: true, Stack: capturedStack()}
}

// maxStackFrames bounds the stack captured for a foreign panic.
const maxStackFrames = 12

// capturedStack renders the current goroutine's stack for foreign-panic
// triage. It is called from inside a recover() while the panicked frames
// are still live, so the panic site is visible. Normalization keeps one
// "func (file:line)" entry per frame — goroutine ids, argument values and
// pc offsets are dropped — so a deterministic workload yields a
// byte-identical stack in every process, which crash-safe resume logs
// depend on.
func capturedStack() string {
	buf := make([]byte, 32<<10)
	n := runtime.Stack(buf, false)
	lines := strings.Split(strings.TrimRight(string(buf[:n]), "\n"), "\n")
	// lines[0] is "goroutine N [running]:"; frames follow as pairs of a
	// function line and an indented "file:line +0x..." location line.
	type frame struct{ fn, loc string }
	var frames []frame
	for i := 1; i+1 < len(lines); i += 2 {
		fn := lines[i]
		if strings.HasPrefix(fn, "created by ") {
			if j := strings.Index(fn, " in goroutine"); j > 0 {
				fn = fn[:j]
			}
		} else if j := strings.LastIndexByte(fn, '('); j > 0 {
			fn = fn[:j]
		}
		loc := strings.TrimSpace(lines[i+1])
		if j := strings.IndexByte(loc, ' '); j > 0 {
			loc = loc[:j]
		}
		if j := strings.LastIndexByte(loc, '/'); j >= 0 {
			loc = loc[j+1:]
		}
		frames = append(frames, frame{fn, loc})
	}
	// Start after the first panic marker (the most recent panic in
	// flight): everything above it — this function, From, the deferred
	// catcher, runtime.gopanic — is recovery plumbing, not the crash.
	start := 0
	for i, f := range frames {
		if f.fn == "panic" || f.fn == "runtime.gopanic" || f.fn == "runtime.sigpanic" {
			start = i + 1
			break
		}
	}
	// Runtime panics put panicmem/sigpanic between gopanic and the
	// faulting frame; skip past them to the crash site.
	for start < len(frames) && strings.HasPrefix(frames[start].fn, "runtime.") {
		start++
	}
	if start >= len(frames) {
		start = 0
	}
	if start == 0 {
		// Not called during a panic: skip our own frames instead.
		for start < len(frames) && strings.HasPrefix(frames[start].fn, "failatomic/internal/fault.") {
			start++
		}
	}
	frames = frames[start:]
	if len(frames) > maxStackFrames {
		frames = frames[:maxStackFrames]
	}
	var b strings.Builder
	for i, f := range frames {
		if i > 0 {
			b.WriteString(" <- ")
		}
		b.WriteString(f.fn)
		b.WriteString(" (")
		b.WriteString(f.loc)
		b.WriteString(")")
	}
	return b.String()
}

// AsError recovers a panic value as an error. It is used by application
// entry points that convert exceptional termination into an error return
// ("exceptions should not cross package boundaries").
func AsError(r any) error {
	if r == nil {
		return nil
	}
	return From(r)
}
