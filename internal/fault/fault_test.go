package fault

import (
	"errors"
	"strings"
	"testing"
)

func TestFromPassesExceptionsThrough(t *testing.T) {
	e := &Exception{Kind: IllegalState, Method: "List.Insert"}
	if got := From(e); got != e {
		t.Fatalf("From(*Exception) = %p, want the same pointer %p", got, e)
	}
	if e.Foreign || e.Stack != "" {
		t.Fatal("modeled exceptions must not be marked foreign")
	}
}

// boomAt panics with a foreign value from a recognizable frame.
func boomAt(v any) (e *Exception) {
	defer func() {
		e = From(recover())
	}()
	panic(v)
}

func TestFromWrapsForeignPanicsWithStack(t *testing.T) {
	e := boomAt("kaboom")
	if e.Kind != RuntimeError || e.Msg != "kaboom" {
		t.Fatalf("foreign panic wrapped as %+v", e)
	}
	if !e.Foreign {
		t.Fatal("foreign panic must be marked Foreign")
	}
	if !strings.Contains(e.Stack, "boomAt") || !strings.Contains(e.Stack, "fault_test.go:") {
		t.Fatalf("stack must name the panic site: %q", e.Stack)
	}
	if strings.Contains(e.Stack, "0x") || strings.Contains(e.Stack, "goroutine") {
		t.Fatalf("stack must be normalized (no addresses, no goroutine ids): %q", e.Stack)
	}
}

func TestFromStackIsDeterministic(t *testing.T) {
	var stacks []*Exception
	for i := 0; i < 2; i++ {
		stacks = append(stacks, boomAt(errors.New("same site")))
	}
	a, b := stacks[0], stacks[1]
	if a.Stack == "" || a.Stack != b.Stack {
		t.Fatalf("stacks from the same site must be identical:\n%q\nvs\n%q", a.Stack, b.Stack)
	}
}

func TestFromRuntimePanicStack(t *testing.T) {
	var m map[string]int
	e := func() (e *Exception) {
		defer func() { e = From(recover()) }()
		m["write"] = 1 // nil map write: a runtime panic
		return nil
	}()
	if e == nil || !e.Foreign {
		t.Fatalf("runtime panic must wrap foreign: %+v", e)
	}
	if !strings.Contains(e.Stack, "fault_test.go:") {
		t.Fatalf("runtime panic stack must reach the faulting frame: %q", e.Stack)
	}
}

func TestFromOutsidePanicStillSafe(t *testing.T) {
	e := From("not panicking")
	if !e.Foreign || e.Msg != "not panicking" {
		t.Fatalf("From outside a panic: %+v", e)
	}
}
