package weave

import (
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStrategyLinkedList pins the Item-76 rung assignments for the seed
// LinkedList: the leading Version/Count bumps make most mutators
// reorderable, while methods that write interior cells (or compensate
// inside the risky region) need the full checkpoint.
func TestStrategyLinkedList(t *testing.T) {
	inv, err := AnalyzeDir(filepath.Join("..", "collections"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"LinkedList.InsertFirst": StrategyReorder,
		"LinkedList.InsertLast":  StrategyReorder,
		"LinkedList.RemoveFirst": StrategyReorder,
		"LinkedList.RemoveAt":    StrategyReorder,
		"LinkedList.RemoveOne":   StrategyReorder,
		"LinkedList.ReplaceAt":   StrategyReorder,
		"LinkedList.InsertAt":    StrategyCheckpoint,
		"LinkedList.RemoveLast":  StrategyCheckpoint,
		"LinkedList.RemoveAll":   StrategyCheckpoint,
		"LinkedList.ReplaceAll":  StrategyCheckpoint,
		"LinkedList.At":          StrategyNone,
		"LinkedList.Clear":       StrategyNone,
		"LinkedList.New":         StrategyNone,
		"LinkedList.checkIndex":  StrategyNone,
		"LLIterator.Next":        StrategyNone,
	}
	for name, rung := range want {
		facts := inv.Methods[name]
		if facts == nil {
			t.Fatalf("method %s not inventoried", name)
		}
		if facts.Strategy != rung {
			t.Errorf("%s: strategy = %s (%s), want %s", name, facts.Strategy, facts.StrategyReason, rung)
		}
	}
	// The fixed list has validate-before-mutate bodies: the rewrite target
	// state must analyze to "none".
	for _, name := range []string{"LinkedListFixed.InsertLast", "LinkedListFixed.RemoveAt"} {
		if facts := inv.Methods[name]; facts == nil || facts.Strategy != StrategyNone {
			t.Errorf("%s: want none after manual fix, got %+v", name, facts)
		}
	}
}

// strategyFixture is a package exercising all three rewrite rungs.
const strategyFixture = `package subject

import "failatomic/internal/fault"

type Node struct {
	Next *Node
}

type Counter struct {
	N       int
	Version int
	Head    *Node
	Items   []int
}

// Add leads with a bump, then validates: reorderable.
func (c *Counter) Add(v int) {
	c.Version++
	c.check(v)
	c.Items = append(c.Items, v)
	c.N++
}

// Set writes only direct fields with a throw site after the first
// mutation: temp-copy-then-swap.
func (c *Counter) Set(a, b int) {
	c.N = a
	c.Version = b
	c.check(a)
}

// Link mutates an interior node: checkpoint.
func (c *Counter) Link(n *Node) {
	n.Next = c.Head
	c.Head = n
	c.check(0)
}

func (c *Counter) check(v int) {
	if v < 0 {
		fault.Throw(fault.IllegalArgument, "Counter.check", "negative")
	}
}
`

func writeFixtureDir(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "subject.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestStrategyFixtureRungs(t *testing.T) {
	dir := writeFixtureDir(t, strategyFixture)
	inv, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"Counter.Add":   StrategyReorder,
		"Counter.Set":   StrategyTempSwap,
		"Counter.Link":  StrategyCheckpoint,
		"Counter.check": StrategyNone,
	}
	for name, rung := range want {
		facts := inv.Methods[name]
		if facts == nil {
			t.Fatalf("method %s not inventoried", name)
		}
		if facts.Strategy != rung {
			t.Errorf("%s: strategy = %s (%s), want %s", name, facts.Strategy, facts.StrategyReason, rung)
		}
	}
}

// rewriteFixture applies the recommended rungs to a fresh fixture copy and
// returns the rewritten source.
func rewriteFixture(t *testing.T) (string, []RewriteResult) {
	t.Helper()
	dir := writeFixtureDir(t, strategyFixture)
	strategies := map[string]string{
		"Counter.Add":  StrategyReorder,
		"Counter.Set":  StrategyTempSwap,
		"Counter.Link": StrategyCheckpoint,
	}
	results, err := RewriteDir(dir, Options{}, strategies)
	if err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(filepath.Join(dir, "subject.go"))
	if err != nil {
		t.Fatal(err)
	}
	return string(out), results
}

func TestRewriteDirAppliesRungs(t *testing.T) {
	out, results := rewriteFixture(t)
	for _, r := range results {
		if !r.Applied {
			t.Errorf("%s (%s): rewrite not applied", r.Method, r.Strategy)
		}
	}
	// Reorder: the bump moved after the validation call.
	if idx := strings.Index(out, "c.check(v)"); idx < 0 || strings.Index(out, "c.Version++") < idx {
		t.Errorf("reorder did not move the bump after the throw site:\n%s", out)
	}
	// TempSwap: saved locals and restore-on-panic defer.
	if !strings.Contains(out, "faSavedN, faSavedVersion := c.N, c.Version") {
		t.Errorf("tempswap save missing:\n%s", out)
	}
	if !strings.Contains(out, "c.N, c.Version = faSavedN, faSavedVersion") {
		t.Errorf("tempswap restore missing:\n%s", out)
	}
	// Checkpoint: a Guard defer on the facade.
	if !strings.Contains(out, "defer failatomic.Guard(c)()") {
		t.Errorf("checkpoint guard missing:\n%s", out)
	}
	if !strings.Contains(out, `import (`) && !strings.Contains(out, `"failatomic"`) {
		t.Errorf("facade import missing:\n%s", out)
	}
}

// TestRewriteDirIdempotent re-runs the rewriter over its own output: the
// second pass must make no edits and leave the bytes unchanged.
func TestRewriteDirIdempotent(t *testing.T) {
	first, _ := rewriteFixture(t)

	dir := writeFixtureDir(t, first)
	strategies := map[string]string{
		"Counter.Add":  StrategyReorder,
		"Counter.Set":  StrategyTempSwap,
		"Counter.Link": StrategyCheckpoint,
	}
	results, err := RewriteDir(dir, Options{}, strategies)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Applied {
			t.Errorf("%s (%s): second pass re-applied the rewrite", r.Method, r.Strategy)
		}
	}
	out, err := os.ReadFile(filepath.Join(dir, "subject.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != first {
		t.Errorf("second rewrite changed bytes:\n--- first ---\n%s\n--- second ---\n%s", first, out)
	}
}

// TestRewriteThenWeaveRoundTrip checks the strategy-rewritten output
// survives the prologue weaver's round-trip guarantees: weave is
// idempotent over it, and strip(weave(x)) == gofmt(x).
func TestRewriteThenWeaveRoundTrip(t *testing.T) {
	rewritten, _ := rewriteFixture(t)
	formatted, err := format.Source([]byte(rewritten))
	if err != nil {
		t.Fatal(err)
	}

	woven, changed, err := InstrumentFile("subject.go", formatted, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("weave made no change to the rewritten fixture")
	}
	again, changed, err := InstrumentFile("subject.go", woven, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if changed || string(again) != string(woven) {
		t.Errorf("weave not idempotent over rewritten source")
	}
	stripped, _, err := InstrumentFile("subject.go", woven, Options{Strip: true})
	if err != nil {
		t.Fatal(err)
	}
	if string(stripped) != string(formatted) {
		t.Errorf("strip(weave(x)) != x:\n--- want ---\n%s\n--- got ---\n%s", formatted, stripped)
	}
}
