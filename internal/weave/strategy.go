package weave

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

// The masking phase does not have to pay for a full checkpoint on every
// wrapped method: Effective Java's Item 76 ("strive for failure
// atomicity") lists cheaper remedies that suffice for common shapes, and
// the Analyzer has enough syntactic information to pick the cheapest
// sufficient one per method. The ladder, cheapest first:
//
//	none        the method never mutates its receiver, or cannot be
//	            interrupted mid-mutation — already failure atomic.
//	reorder     the method's only pre-validation mutations are leading
//	            counter bumps (l.Version++, l.Count--); moving them after
//	            the last throw site makes every throw site precede the
//	            first mutation. Zero runtime cost.
//	tempswap    every mutation is a direct write to a receiver field; a
//	            save-fields prologue plus a restore-on-panic defer makes
//	            the method atomic without copying reachable state.
//	checkpoint  anything else (interior-node writes, mutating callees):
//	            full checkpoint/rollback via failatomic.Guard.
//
// The analysis is conservative in the safe direction: whenever a cheaper
// rung cannot be proven sufficient, the method falls through to the next
// one, ending at checkpoint, which is always sufficient.
const (
	StrategyNone       = "none"
	StrategyReorder    = "reorder"
	StrategyTempSwap   = "tempswap"
	StrategyCheckpoint = "checkpoint"
)

// methodStrategy is the analysis detail behind one method's recommendation,
// retained so the rewriter can apply the transformation it implies.
type methodStrategy struct {
	name     string
	strategy string
	reason   string
	fn       *ast.FuncDecl
	path     string
	recv     string
	// stmts is the body without the instrumentation prologue.
	stmts []ast.Stmt
	// bumpCount is the length of the leading receiver-field bump prefix.
	bumpCount int
	// lastRisky indexes the last statement (in stmts) that can raise an
	// exception; -1 when none can.
	lastRisky int
	// fields lists the directly written receiver fields, sorted — the
	// tempswap save/restore set.
	fields []string
	// allDirect reports whether every mutation is a direct receiver-field
	// write (the tempswap applicability condition).
	allDirect bool
}

// strategyAnalysis is the package-wide strategy view: per-method
// recommendations plus the parse artifacts the rewriter edits.
type strategyAnalysis struct {
	fset    *token.FileSet
	files   map[string]*ast.File
	srcs    map[string][]byte
	methods map[string]*methodStrategy
}

// fnInfo is one propagation vertex of the strategy analysis.
type fnInfo struct {
	fn           *ast.FuncDecl
	path         string
	name         string // instrumentation name; "" for helpers
	recv         string // pointer-receiver identifier; "" otherwise
	instrumented bool
	throws       bool
	selfMutates  bool
	fieldsRead   map[string]bool
}

// analyzeStrategyFiles computes the Item-76 strategy recommendation for
// every instrumentable method of the given package files.
func analyzeStrategyFiles(paths []string) (*strategyAnalysis, error) {
	sa := &strategyAnalysis{
		fset:    token.NewFileSet(),
		files:   make(map[string]*ast.File),
		srcs:    make(map[string][]byte),
		methods: make(map[string]*methodStrategy),
	}
	infos := make(map[string]*fnInfo)
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("weave: %w", err)
		}
		file, err := parser.ParseFile(sa.fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("weave: parse %s: %w", path, err)
		}
		sa.files[path] = file
		sa.srcs[path] = src
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name, _ := instrumentationName(fn)
			key := name
			if key == "" {
				key = "func:" + fn.Name.Name
			}
			infos[key] = &fnInfo{
				fn:           fn,
				path:         path,
				name:         name,
				recv:         pointerReceiverName(fn),
				instrumented: name != "",
				throws:       hasRiskyCallSyntax(fn.Body),
			}
		}
	}

	// Same bare-name call graph as AnalyzeFiles (§4.3's conservative
	// approximation).
	byBare := make(map[string][]string)
	for key := range infos {
		byBare[bareName(key)] = append(byBare[bareName(key)], key)
	}
	callees := make(map[string][]string, len(infos))
	for key, info := range infos {
		callees[key] = calleesOfBody(stripPrologueView(info.fn), byBare)
	}

	// Per-function local facts: direct mutation and receiver-field reads.
	for _, info := range infos {
		body := stripPrologueView(info.fn)
		info.selfMutates = bodyMutatesNonLocal(body, info.recv)
		info.fieldsRead = receiverFieldReads(body, info.recv)
	}

	// risky: the function can raise an exception once entered — it is
	// instrumented (every instrumented entry is an injection site), throws
	// directly, or calls something risky.
	risky := make(map[string]bool, len(infos))
	for key, info := range infos {
		risky[key] = info.instrumented || info.throws
	}
	fixpoint(infos, callees, func(key, callee string) bool {
		if risky[callee] && !risky[key] {
			risky[key] = true
			return true
		}
		return false
	})

	// mutates: the function can mutate non-local state, directly or through
	// a same-package callee.
	mutates := make(map[string]bool, len(infos))
	for key, info := range infos {
		mutates[key] = info.selfMutates
	}
	fixpoint(infos, callees, func(key, callee string) bool {
		if mutates[callee] && !mutates[key] {
			mutates[key] = true
			return true
		}
		return false
	})

	// fieldsRead: receiver fields read transitively (bare-name matched, so
	// an over-approximation across classes — safe: extra reads only
	// disqualify the reorder rung).
	fieldsRead := make(map[string]map[string]bool, len(infos))
	for key, info := range infos {
		set := make(map[string]bool, len(info.fieldsRead))
		for f := range info.fieldsRead {
			set[f] = true
		}
		fieldsRead[key] = set
	}
	fixpoint(infos, callees, func(key, callee string) bool {
		changed := false
		for f := range fieldsRead[callee] {
			if !fieldsRead[key][f] {
				fieldsRead[key][f] = true
				changed = true
			}
		}
		return changed
	})

	env := &strategyEnv{
		infos:      infos,
		byBare:     byBare,
		risky:      risky,
		mutates:    mutates,
		fieldsRead: fieldsRead,
	}
	for key, info := range infos {
		if !info.instrumented {
			continue
		}
		sa.methods[key] = env.recommend(key, info)
	}
	return sa, nil
}

// fixpoint propagates a relation over the call graph until stable.
func fixpoint(infos map[string]*fnInfo, callees map[string][]string, step func(key, callee string) bool) {
	for changed := true; changed; {
		changed = false
		for key := range infos {
			for _, callee := range callees[key] {
				if step(key, callee) {
					changed = true
				}
			}
		}
	}
}

// strategyEnv bundles the package-wide facts the per-method recommender
// consults.
type strategyEnv struct {
	infos      map[string]*fnInfo
	byBare     map[string][]string
	risky      map[string]bool
	mutates    map[string]bool
	fieldsRead map[string]map[string]bool
}

// recommend picks the cheapest sufficient rung for one method.
func (e *strategyEnv) recommend(key string, info *fnInfo) *methodStrategy {
	ms := &methodStrategy{
		name:      key,
		fn:        info.fn,
		path:      info.path,
		recv:      info.recv,
		lastRisky: -1,
	}
	if info.fn.Recv == nil {
		ms.strategy, ms.reason = StrategyNone, "constructor builds fresh state"
		return ms
	}
	if info.recv == "" {
		ms.strategy, ms.reason = StrategyNone, "no pointer receiver to mutate"
		return ms
	}
	ms.stmts = stripPrologueView(info.fn).List

	// Per-statement classification.
	type stmtFacts struct {
		mut        mutation
		risky      bool
		reads      map[string]bool
		hasControl bool // return/branch/defer — disqualifies the reorder region
	}
	facts := make([]stmtFacts, len(ms.stmts))
	anyMutation := false
	allDirect := true
	directFields := make(map[string]bool)
	for i, st := range ms.stmts {
		f := stmtFacts{
			mut:        e.classifyMutation(st, info.recv),
			risky:      e.stmtRisky(st),
			reads:      e.stmtFieldReads(st, info.recv),
			hasControl: containsControlTransfer(st),
		}
		facts[i] = f
		if f.mut.any() {
			anyMutation = true
		}
		if f.risky {
			ms.lastRisky = i
		}
		if f.mut.indirect {
			allDirect = false
		}
		for fd := range f.mut.direct {
			directFields[fd] = true
		}
	}
	ms.allDirect = allDirect && anyMutation
	ms.fields = sortedKeys(directFields)

	if !anyMutation {
		ms.strategy, ms.reason = StrategyNone, "does not mutate the receiver"
		return ms
	}
	if ms.lastRisky < 0 {
		ms.strategy, ms.reason = StrategyNone, "no throw sites in the body"
		return ms
	}
	firstMut := -1
	for i := range facts {
		if facts[i].mut.any() {
			firstMut = i
			break
		}
	}
	if ms.lastRisky < firstMut {
		ms.strategy, ms.reason = StrategyNone, "every throw site already precedes the first mutation"
		return ms
	}

	// reorder: a leading prefix of receiver-field bumps whose move past the
	// last throw site is provably behavior-preserving.
	bumped := make(map[string]bool)
	for _, st := range ms.stmts {
		field, ok := bumpField(st, info.recv)
		if !ok {
			break
		}
		bumped[field] = true
		ms.bumpCount++
	}
	// Moving the bumps past the region (the statements between the bump
	// prefix and the last throw site, inclusive) is safe only if nothing in
	// the region mutates the receiver, transfers control, or observes a
	// bumped field.
	regionOK := ms.bumpCount > 0 && ms.lastRisky >= ms.bumpCount
	for i := ms.bumpCount; regionOK && i <= ms.lastRisky; i++ {
		if facts[i].mut.any() || facts[i].hasControl {
			regionOK = false
			break
		}
		for f := range facts[i].reads {
			if bumped[f] {
				regionOK = false
				break
			}
		}
	}
	if regionOK {
		ms.strategy = StrategyReorder
		ms.reason = fmt.Sprintf("leading bumps of %s can move after the last throw site",
			strings.Join(sortedKeys(bumped), ", "))
		return ms
	}

	if ms.allDirect {
		ms.strategy = StrategyTempSwap
		ms.reason = fmt.Sprintf("all mutations are direct writes to %s",
			strings.Join(ms.fields, ", "))
		return ms
	}

	ms.strategy = StrategyCheckpoint
	ms.reason = "mutations reach interior nodes or callees; full checkpoint/rollback"
	return ms
}

// mutation classifies how one statement writes receiver state.
type mutation struct {
	// direct holds receiver fields written through recv.Field.
	direct map[string]bool
	// indirect marks interior writes (cur.Next = …), receiver rebinding,
	// calls to mutating same-package functions, or unresolved calls that
	// could mutate the receiver.
	indirect bool
}

func (m mutation) any() bool { return m.indirect || len(m.direct) > 0 }

// classifyMutation inspects every write and call in one statement.
func (e *strategyEnv) classifyMutation(stmt ast.Stmt, recv string) mutation {
	m := mutation{direct: make(map[string]bool)}
	classifyLHS := func(lhs ast.Expr) {
		switch t := lhs.(type) {
		case *ast.Ident:
			if t.Name == recv {
				m.indirect = true // receiver rebinding
			}
		case *ast.SelectorExpr:
			if id, ok := t.X.(*ast.Ident); ok && id.Name == recv {
				m.direct[t.Sel.Name] = true
			} else {
				m.indirect = true
			}
		default:
			m.indirect = true
		}
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				classifyLHS(lhs)
			}
		case *ast.IncDecStmt:
			classifyLHS(node.X)
		case *ast.RangeStmt:
			if node.Key != nil {
				classifyLHS(node.Key)
			}
			if node.Value != nil {
				classifyLHS(node.Value)
			}
		case *ast.CallExpr:
			if e.callMayMutate(node, recv) {
				m.indirect = true
			}
		}
		return true
	})
	return m
}

// callMayMutate reports whether a call could mutate the receiver: a
// resolved same-package callee that mutates, an unresolved method call on
// the receiver, or the receiver passed (or aliased) as an argument to an
// unresolved function.
func (e *strategyEnv) callMayMutate(call *ast.CallExpr, recv string) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if !isSafeBuiltin(fun.Name) {
			for _, key := range e.byBare[fun.Name] {
				if e.mutates[key] {
					return true
				}
			}
		}
	case *ast.SelectorExpr:
		targets := e.byBare[fun.Sel.Name]
		for _, key := range targets {
			if e.mutates[key] {
				return true
			}
		}
		if len(targets) == 0 {
			// Unresolved method call: dangerous only when invoked on the
			// receiver itself.
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == recv {
				return true
			}
		}
	}
	// Calls through function values or unresolved functions can reach the
	// receiver only when it is handed out as an argument.
	for _, arg := range call.Args {
		if exprIsReceiverAlias(arg, recv) {
			return true
		}
	}
	return false
}

// exprIsReceiverAlias reports whether an argument hands out the receiver
// pointer itself (or an address rooted in it).
func exprIsReceiverAlias(expr ast.Expr, recv string) bool {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name == recv
	case *ast.UnaryExpr:
		if t.Op == token.AND {
			return exprRootedInReceiver(t.X, recv)
		}
	}
	return false
}

func exprRootedInReceiver(expr ast.Expr, recv string) bool {
	for {
		switch t := expr.(type) {
		case *ast.Ident:
			return t.Name == recv
		case *ast.SelectorExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.ParenExpr:
			expr = t.X
		default:
			return false
		}
	}
}

func isSafeBuiltin(name string) bool {
	switch name {
	case "len", "cap", "append", "copy", "min", "max", "make", "new", "delete", "clear", "print", "println":
		return true
	}
	return false
}

// stmtRisky reports whether a statement can raise an exception: a direct
// Throw or panic, or a call into a risky same-package function (every
// instrumented entry is an injection site).
func (e *strategyEnv) stmtRisky(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Throw" {
				found = true
				return false
			}
			for _, key := range e.byBare[fun.Sel.Name] {
				if e.risky[key] {
					found = true
					return false
				}
			}
		case *ast.Ident:
			if fun.Name == "panic" {
				found = true
				return false
			}
			for _, key := range e.byBare[fun.Name] {
				if e.risky[key] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// stmtFieldReads collects the receiver fields a statement observes,
// including transitively through same-package callees.
func (e *strategyEnv) stmtFieldReads(stmt ast.Stmt, recv string) map[string]bool {
	reads := receiverFieldReads(&ast.BlockStmt{List: []ast.Stmt{stmt}}, recv)
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var bare string
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			bare = fun.Sel.Name
		case *ast.Ident:
			bare = fun.Name
		default:
			return true
		}
		for _, key := range e.byBare[bare] {
			for f := range e.fieldsRead[key] {
				reads[f] = true
			}
		}
		return true
	})
	return reads
}

// receiverFieldReads collects recv.Field selector uses that are not call
// targets (method calls are accounted for via the callee's own read set).
func receiverFieldReads(body *ast.BlockStmt, recv string) map[string]bool {
	reads := make(map[string]bool)
	if recv == "" {
		return reads
	}
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[call.Fun] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || callFuns[sel] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			reads[sel.Sel.Name] = true
		}
		return true
	})
	return reads
}

// bodyMutatesNonLocal reports whether a body writes anything that is not a
// plain local variable — the conservative "can this function mutate shared
// state" bit used for callee propagation.
func bodyMutatesNonLocal(body *ast.BlockStmt, recv string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		check := func(lhs ast.Expr) {
			switch t := lhs.(type) {
			case *ast.Ident:
				if recv != "" && t.Name == recv {
					found = true
				}
			default:
				found = true
			}
		}
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(node.X)
		}
		return true
	})
	return found
}

// hasRiskyCallSyntax reports direct Throw/panic calls anywhere in a body.
func hasRiskyCallSyntax(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Throw" {
				found = true
			}
		case *ast.Ident:
			if fun.Name == "panic" {
				found = true
			}
		}
		return true
	})
	return found
}

// containsControlTransfer reports return/branch/defer statements outside
// nested function literals — any of them makes the reorder region unsafe.
func containsControlTransfer(stmt ast.Stmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit:
			return false // returns inside a literal do not exit the method
		case *ast.ReturnStmt, *ast.BranchStmt, *ast.DeferStmt:
			found = true
			return false
		}
		return true
	}
	ast.Inspect(stmt, walk)
	return found
}

// bumpField recognizes a leading counter-bump statement: recv.Field++/--
// or recv.Field +=/-= <literal>. Bumps read nothing but their own field,
// so a maximal prefix of them can move as a unit.
func bumpField(stmt ast.Stmt, recv string) (string, bool) {
	fieldOf := func(expr ast.Expr) (string, bool) {
		sel, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			return sel.Sel.Name, true
		}
		return "", false
	}
	switch node := stmt.(type) {
	case *ast.IncDecStmt:
		return fieldOf(node.X)
	case *ast.AssignStmt:
		if len(node.Lhs) != 1 || len(node.Rhs) != 1 {
			return "", false
		}
		if node.Tok != token.ADD_ASSIGN && node.Tok != token.SUB_ASSIGN {
			return "", false
		}
		if _, ok := node.Rhs[0].(*ast.BasicLit); !ok {
			return "", false
		}
		return fieldOf(node.Lhs[0])
	}
	return "", false
}

// pointerReceiverName returns the named pointer-receiver identifier, or "".
func pointerReceiverName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return ""
	}
	field := fn.Recv.List[0]
	if _, isPtr := field.Type.(*ast.StarExpr); !isPtr {
		return ""
	}
	if len(field.Names) != 1 || field.Names[0].Name == "_" {
		return ""
	}
	return field.Names[0].Name
}

// calleesOfBody resolves a body's calls to package function keys.
func calleesOfBody(body *ast.BlockStmt, byBare map[string][]string) []string {
	set := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			for _, key := range byBare[fun.Sel.Name] {
				set[key] = true
			}
		case *ast.Ident:
			for _, key := range byBare[fun.Name] {
				set[key] = true
			}
		}
		return true
	})
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
