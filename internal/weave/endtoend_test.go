package weave

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestWovenProgramDetectsEndToEnd is the full Step 1→3 pipeline across a
// process boundary: take clean (uninstrumented) source, weave it
// mechanically, generate its registry, compile the result against this
// module, and run a real detection campaign in the child process. The
// woven program must find the planted failure non-atomic method.
func TestWovenProgramDetectsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs a child Go program")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// The subject: clean source with a planted count-before-validate bug.
	subject := `package main

import "failatomic"

// Tank is the subject type.
type Tank struct {
	Level int
}

// Fill commits before validating (failure non-atomic).
func (tk *Tank) Fill(n int) {
	tk.Level += n
	tk.validate()
}

func (tk *Tank) validate() {
	if tk.Level > 100 {
		failatomic.Throw(failatomic.IllegalState, "Tank.validate", "overflow")
	}
}
`
	writeFile("tank.go", subject)

	// Weave it mechanically.
	woven, changed, err := InstrumentFile("tank.go", []byte(subject), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !changed || !strings.Contains(string(woven), `defer failatomic.Enter(tk, "Tank.Fill")()`) {
		t.Fatalf("weave failed:\n%s", woven)
	}
	writeFile("tank.go", string(woven))

	// Driver: build the registry from the Analyzer's knowledge and run a
	// campaign through the public API.
	driver := `package main

import (
	"context"
	"fmt"

	"failatomic"
)

func main() {
	reg := failatomic.NewRegistry().
		Method("Tank", "Fill").
		Method("Tank", "validate", failatomic.IllegalState)
	result, err := failatomic.Detect(context.Background(), &failatomic.Program{
		Name:     "tank",
		Registry: reg,
		Run: func() {
			tk := &Tank{}
			tk.Fill(30)
			tk.Fill(40)
		},
	}, failatomic.DetectOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("nonatomic:", result.NonAtomicMethods())
}
`
	writeFile("main.go", driver)
	writeFile("go.mod", "module tankcheck\n\ngo 1.22\n\nrequire failatomic v0.0.0\n\nreplace failatomic => "+repoRoot+"\n")

	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child program failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "nonatomic: [Tank.Fill]") {
		t.Fatalf("woven campaign output: %s", out)
	}
}
