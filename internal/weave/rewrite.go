package weave

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"os"
	"sort"
	"strings"
)

// The strategy rewriter applies the Item-76 repair a method's recommended
// rung implies, editing source text at AST-derived positions exactly like
// the prologue weaver:
//
//	reorder     delete the leading bump statements and re-insert them
//	            immediately after the last throw site.
//	tempswap    save the directly written fields into faSaved* locals and
//	            add a restore-on-panic defer.
//	checkpoint  add "defer failatomic.Guard(recv)()" after the prologue.
//
// Every rewrite is idempotent: re-running the rewriter over its own output
// makes no further edits (reorder leaves nothing to move; tempswap and
// checkpoint detect their own markers).

// RewriteResult reports one method's strategy rewrite.
type RewriteResult struct {
	// Method is the instrumentation name.
	Method string
	// Strategy is the rung that was requested.
	Strategy string
	// Path is the file holding the method.
	Path string
	// Applied reports whether an edit was made (false when the rewrite was
	// already present, or the rung needs none).
	Applied bool
}

// RewriteDir applies per-method strategy rewrites to a package directory
// in place. strategies maps instrumentation names to rungs (usually the
// masking plan's assignments fed by MethodFacts.Strategy).
func RewriteDir(dir string, opts Options, strategies map[string]string) ([]RewriteResult, error) {
	opts.fill()
	paths, err := packageFiles(dir)
	if err != nil {
		return nil, err
	}
	sa, err := analyzeStrategyFiles(paths)
	if err != nil {
		return nil, err
	}

	methods := make([]string, 0, len(strategies))
	for m := range strategies {
		methods = append(methods, m)
	}
	sort.Strings(methods)

	var results []RewriteResult
	editsByPath := make(map[string][]edit)
	guardedPaths := make(map[string]bool) // need the facade import for Guard
	for _, method := range methods {
		rung := strategies[method]
		ms := sa.methods[method]
		if ms == nil {
			return nil, fmt.Errorf("weave: rewrite: method %s not found in %s", method, dir)
		}
		res := RewriteResult{Method: method, Strategy: rung, Path: ms.path}
		switch rung {
		case StrategyNone, "":
			// Nothing to do.
		case StrategyReorder:
			e, applied, err := reorderEdits(sa, ms)
			if err != nil {
				return nil, err
			}
			res.Applied = applied
			editsByPath[ms.path] = append(editsByPath[ms.path], e...)
		case StrategyTempSwap:
			e, applied, err := tempSwapEdit(sa, ms)
			if err != nil {
				return nil, err
			}
			res.Applied = applied
			editsByPath[ms.path] = append(editsByPath[ms.path], e...)
		case StrategyCheckpoint:
			e, applied := guardEdit(sa, ms, opts)
			res.Applied = applied
			if applied {
				editsByPath[ms.path] = append(editsByPath[ms.path], e...)
				guardedPaths[ms.path] = true
			}
		default:
			return nil, fmt.Errorf("weave: rewrite: unknown strategy %q for %s", rung, method)
		}
		results = append(results, res)
	}

	for path, edits := range editsByPath {
		if len(edits) == 0 {
			continue
		}
		src := sa.srcs[path]
		if guardedPaths[path] {
			if e, ok := importEdit(sa.fset, sa.files[path], src, opts); ok {
				edits = append(edits, e)
			}
		}
		out := applyEdits(src, edits)
		formatted, err := format.Source(out)
		if err != nil {
			return nil, fmt.Errorf("weave: rewritten %s does not format: %w", path, err)
		}
		if err := os.WriteFile(path, formatted, 0o644); err != nil {
			return nil, fmt.Errorf("weave: %w", err)
		}
	}
	return results, nil
}

// reorderEdits moves the bump prefix after the last throw site.
func reorderEdits(sa *strategyAnalysis, ms *methodStrategy) ([]edit, bool, error) {
	if ms.strategy == StrategyNone {
		// Already validates before mutating (the rewrite's own output
		// re-analyzes to this) — nothing to move.
		return nil, false, nil
	}
	if ms.strategy != StrategyReorder || ms.bumpCount == 0 || ms.lastRisky < ms.bumpCount {
		return nil, false, fmt.Errorf("weave: rewrite: reorder not applicable to %s (%s)", ms.name, ms.reason)
	}
	src := sa.srcs[ms.path]
	var edits []edit
	texts := make([]string, 0, ms.bumpCount)
	for i := 0; i < ms.bumpCount; i++ {
		stmt := ms.stmts[i]
		start := sa.fset.Position(stmt.Pos()).Offset
		end := sa.fset.Position(stmt.End()).Offset
		texts = append(texts, string(src[start:end]))
		// Delete the statement's whole line, like stripEdit.
		for start > 0 && (src[start-1] == ' ' || src[start-1] == '\t') {
			start--
		}
		if end < len(src) && src[end] == '\n' {
			end++
		}
		edits = append(edits, edit{Start: start, End: end})
	}
	insert := sa.fset.Position(ms.stmts[ms.lastRisky].End()).Offset
	edits = append(edits, edit{
		Start: insert,
		End:   insert,
		Text:  "\n\t" + strings.Join(texts, "\n\t"),
	})
	return edits, true, nil
}

// tempSwapPrefix marks the saved-field locals the tempswap rewrite emits;
// its presence makes the rewrite idempotent.
const tempSwapPrefix = "faSaved"

// tempSwapEdit inserts the save-fields prologue and restore-on-panic defer.
func tempSwapEdit(sa *strategyAnalysis, ms *methodStrategy) ([]edit, bool, error) {
	if hasTempSwapMarker(ms) {
		return nil, false, nil
	}
	if !ms.allDirect || len(ms.fields) == 0 {
		return nil, false, fmt.Errorf("weave: rewrite: tempswap not applicable to %s (%s)", ms.name, ms.reason)
	}
	saved := make([]string, len(ms.fields))
	fields := make([]string, len(ms.fields))
	for i, f := range ms.fields {
		saved[i] = tempSwapPrefix + f
		fields[i] = ms.recv + "." + f
	}
	text := fmt.Sprintf("\n\t%s := %s\n\tdefer func() {\n\t\tif r := recover(); r != nil {\n\t\t\t%s = %s\n\t\t\tpanic(r)\n\t\t}\n\t}()",
		strings.Join(saved, ", "), strings.Join(fields, ", "),
		strings.Join(fields, ", "), strings.Join(saved, ", "))
	offset := afterPrologueOffset(sa.fset, ms.fn)
	return []edit{{Start: offset, End: offset, Text: text}}, true, nil
}

// guardEdit inserts the checkpoint/rollback defer.
func guardEdit(sa *strategyAnalysis, ms *methodStrategy, opts Options) ([]edit, bool) {
	if hasGuardDefer(ms.fn) {
		return nil, false
	}
	offset := afterPrologueOffset(sa.fset, ms.fn)
	text := fmt.Sprintf("\n\tdefer %s.Guard(%s)()", opts.FacadeName, ms.recv)
	return []edit{{Start: offset, End: offset, Text: text}}, true
}

// afterPrologueOffset is the insertion point for masking defers: after the
// Enter prologue when present (deferred functions run LIFO, so the masking
// defer then executes *first* on panic, rolling back before Enter's graph
// comparison), else right after the opening brace.
func afterPrologueOffset(fset *token.FileSet, fn *ast.FuncDecl) int {
	if hasPrologue(fn) {
		return fset.Position(fn.Body.List[0].End()).Offset
	}
	return fset.Position(fn.Body.Lbrace).Offset + 1
}

// hasTempSwapMarker detects a prior tempswap rewrite by its saved-field
// locals.
func hasTempSwapMarker(ms *methodStrategy) bool {
	for _, stmt := range ms.stmts {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE || len(assign.Lhs) == 0 {
			continue
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok && strings.HasPrefix(id.Name, tempSwapPrefix) {
			return true
		}
	}
	return false
}

// hasGuardDefer detects a prior checkpoint rewrite: a deferred
// facade.Guard(...)() call anywhere in the top-level statement list.
func hasGuardDefer(fn *ast.FuncDecl) bool {
	for _, stmt := range fn.Body.List {
		def, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		inner, ok := def.Call.Fun.(*ast.CallExpr)
		if !ok {
			continue
		}
		switch fun := inner.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Guard" {
				return true
			}
		case *ast.Ident:
			if fun.Name == "Guard" {
				return true
			}
		}
	}
	return false
}
