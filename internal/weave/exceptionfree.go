package weave

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The paper's §4.3 notes that its Analyzer "does not attempt to determine
// whether it is possible for a runtime exception to occur in a given
// method. We plan to address this issue in the future" — programmers had
// to assert exception-free methods by hand through a web interface. This
// file implements that future work as a conservative syntactic analysis:
// a method is *provably* exception-free when its body contains no
// construct that can panic and every same-package callee is provably
// exception-free. Anything the analysis cannot see (calls into other
// packages, indexing, division, assertions, conversions…) disqualifies
// the method, so a suggestion is always safe to feed into
// DetectOptions.ExceptionFree.

// riskyConstructs returns human-readable reasons a body could panic,
// ignoring same-package calls (those are resolved transitively by
// SuggestExceptionFree). It returns nil when no risky construct is found.
func riskyConstructs(body *ast.BlockStmt, samePackage func(callee string) bool) []string {
	reasons := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.IndexExpr:
			reasons["indexing can panic"] = true
		case *ast.SliceExpr:
			reasons["slicing can panic"] = true
		case *ast.TypeAssertExpr:
			// The two-value form is safe, but distinguishing it needs the
			// parent; stay conservative.
			reasons["type assertion can panic"] = true
		case *ast.StarExpr:
			reasons["pointer dereference can panic"] = true
		case *ast.BinaryExpr:
			if node.Op == token.QUO || node.Op == token.REM {
				reasons["division can panic"] = true
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				reasons["channel receive can block or panic"] = true
			}
		case *ast.SendStmt:
			reasons["channel send can panic"] = true
		case *ast.GoStmt:
			reasons["spawns a goroutine"] = true
		case *ast.SelectorExpr:
			// Field access through a pointer can nil-panic; allow only
			// selectors used as call targets resolved below.
			return true
		case *ast.CallExpr:
			switch fun := node.Fun.(type) {
			case *ast.Ident:
				switch fun.Name {
				case "panic":
					reasons["panics explicitly"] = true
				case "len", "cap", "append", "copy", "min", "max", "make", "new", "delete":
					// Safe builtins.
				default:
					if !samePackage(fun.Name) {
						reasons["calls unknown function "+fun.Name] = true
					}
				}
			case *ast.SelectorExpr:
				callee := fun.Sel.Name
				if !samePackage(callee) {
					reasons["calls unknown method "+callee] = true
				}
			default:
				reasons["calls through a function value"] = true
			}
		case *ast.IndexListExpr:
			reasons["generic instantiation"] = true
		}
		return true
	})
	if len(reasons) == 0 {
		return nil
	}
	out := make([]string, 0, len(reasons))
	for r := range reasons {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// ExceptionFreeReport is the inference outcome for the inventory.
type ExceptionFreeReport struct {
	// Safe lists the provably exception-free instrumentation names.
	Safe []string
	// Reasons explains, per unsafe method, why it was disqualified.
	Reasons map[string][]string
}

// SuggestExceptionFree computes the provably exception-free methods of a
// package directory: no risky construct in the body, no Throw, and every
// same-package callee provably exception-free (greatest fixpoint).
func SuggestExceptionFree(dir string) (*ExceptionFreeReport, error) {
	paths, err := packageFiles(dir)
	if err != nil {
		return nil, err
	}
	return suggestExceptionFree(paths)
}

func suggestExceptionFree(paths []string) (*ExceptionFreeReport, error) {
	funcs, err := parseFuncs(paths)
	if err != nil {
		return nil, err
	}

	bareNames := make(map[string]bool, len(funcs))
	for key := range funcs {
		bareNames[bareName(key)] = true
	}
	samePackage := func(callee string) bool { return bareNames[callee] }

	// Start by assuming every method safe, then strip the syntactically
	// risky ones and propagate unsafety through the call graph (greatest
	// fixpoint: only methods whose whole same-package call closure is
	// clean survive).
	unsafe := make(map[string][]string)
	calleesOf := make(map[string][]string)
	for key, fn := range funcs {
		if reasons := riskyConstructs(fn.Body, samePackage); reasons != nil {
			unsafe[key] = reasons
		}
		if len(fn.Direct) > 0 {
			unsafe[key] = append(unsafe[key], "throws "+strings.Join(fn.Direct, ", "))
		}
		calleesOf[key] = calleeKeys(fn.Body, funcs)
	}
	for changed := true; changed; {
		changed = false
		for key := range funcs {
			if _, bad := unsafe[key]; bad {
				continue
			}
			for _, callee := range calleesOf[key] {
				if _, bad := unsafe[callee]; bad {
					unsafe[key] = []string{"calls unsafe " + callee}
					changed = true
					break
				}
			}
		}
	}

	report := &ExceptionFreeReport{Reasons: make(map[string][]string)}
	for key, fn := range funcs {
		if !fn.Instrumentable {
			continue
		}
		if reasons, bad := unsafe[key]; bad {
			report.Reasons[key] = reasons
			continue
		}
		report.Safe = append(report.Safe, key)
	}
	sort.Strings(report.Safe)
	return report, nil
}

// parsedFunc is the exception-free analysis's view of one function.
type parsedFunc struct {
	Body           *ast.BlockStmt
	Direct         []string
	Instrumentable bool
}

// parseFuncs loads every function of the package, keyed by
// instrumentation name for methods/ctors and "func:Name" for helpers.
func parseFuncs(paths []string) (map[string]*parsedFunc, error) {
	inv, err := AnalyzeFiles(paths)
	if err != nil {
		return nil, err
	}
	_ = inv // the inventory validates parseability; bodies re-parse below

	funcs := make(map[string]*parsedFunc)
	if err := eachFunc(paths, func(fn *ast.FuncDecl) {
		name, _ := instrumentationName(fn)
		key := name
		instrumentable := true
		if key == "" {
			key = "func:" + fn.Name.Name
			instrumentable = false
		}
		funcs[key] = &parsedFunc{
			Body:           stripPrologueView(fn),
			Direct:         directKinds(fn.Body),
			Instrumentable: instrumentable,
		}
	}); err != nil {
		return nil, err
	}
	return funcs, nil
}

// stripPrologueView returns the body without a leading Enter prologue (the
// prologue's defer call must not count as a risky construct).
func stripPrologueView(fn *ast.FuncDecl) *ast.BlockStmt {
	if !hasPrologue(fn) {
		return fn.Body
	}
	return &ast.BlockStmt{List: fn.Body.List[1:]}
}

// calleeKeys resolves a body's same-package calls to function keys.
func calleeKeys(body *ast.BlockStmt, funcs map[string]*parsedFunc) []string {
	byBare := make(map[string][]string)
	for key := range funcs {
		byBare[bareName(key)] = append(byBare[bareName(key)], key)
	}
	set := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			for _, key := range byBare[fun.Sel.Name] {
				set[key] = true
			}
		case *ast.Ident:
			for _, key := range byBare[fun.Name] {
				set[key] = true
			}
		}
		return true
	})
	return sortedKeys(set)
}

func bareName(key string) string {
	key = strings.TrimPrefix(key, "func:")
	if i := strings.IndexByte(key, '.'); i >= 0 {
		return key[i+1:]
	}
	return key
}
