package weave

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// MethodFacts is the Analyzer's knowledge about one method (Step 1).
type MethodFacts struct {
	// Name is the instrumentation name ("Type.Method" or "Type.New").
	Name string
	// Class is the owning type.
	Class string
	// Ctor marks constructor functions.
	Ctor bool
	// Declared lists the exception kind identifiers the method can raise,
	// directly or through same-package callees (transitive closure).
	Declared []string
	// Direct lists only the kinds thrown directly in the body.
	Direct []string
	// Woven reports whether the method already carries a prologue.
	Woven bool
	// HasDefer reports whether the body contains a defer statement — the
	// cleanup regions the deferred-cleanup perturbation model targets
	// (inject.DeferredCleanup seeds its grid from this fact via
	// Program.DeferMethods).
	HasDefer bool
	// File is the source file the method was found in.
	File string
	// Strategy is the cheapest sufficient masking rung from the Item-76
	// ladder: StrategyNone, StrategyReorder, StrategyTempSwap or
	// StrategyCheckpoint (see strategy.go for the selection rules).
	Strategy string
	// StrategyReason explains the recommendation.
	StrategyReason string
}

// Inventory is the Analyzer output for one package.
type Inventory struct {
	// Package is the package name.
	Package string
	// Methods maps instrumentation names to facts.
	Methods map[string]*MethodFacts
}

// AnalyzeDir parses every non-test Go file in dir and inventories its
// methods.
func AnalyzeDir(dir string) (*Inventory, error) {
	files, err := packageFiles(dir)
	if err != nil {
		return nil, err
	}
	return AnalyzeFiles(files)
}

// packageFiles lists the non-test Go sources of a package directory.
func packageFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("weave: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// eachFunc parses the given files (with comments, so ignore directives are
// visible) and visits every function declaration with a body.
func eachFunc(paths []string, visit func(fn *ast.FuncDecl)) error {
	fset := token.NewFileSet()
	for _, path := range paths {
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("weave: parse %s: %w", path, err)
		}
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				visit(fn)
			}
		}
	}
	return nil
}

// AnalyzeFiles inventories the given source files (one package).
func AnalyzeFiles(paths []string) (*Inventory, error) {
	inv := &Inventory{Methods: make(map[string]*MethodFacts)}
	fset := token.NewFileSet()
	// node is a vertex of the propagation graph: every function in the
	// package participates (instrumented methods, constructors, and plain
	// helper functions like element screeners), but only methods and
	// constructors appear in the inventory.
	type node struct {
		facts *MethodFacts // nil for plain helper functions
		body  *ast.BlockStmt
	}
	nodes := make(map[string]*node)
	for _, path := range paths {
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("weave: parse %s: %w", path, err)
		}
		if inv.Package == "" {
			inv.Package = file.Name.Name
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name, _ := instrumentationName(fn)
			if name == "" {
				// Plain function: a hidden propagation vertex keyed by its
				// bare name.
				nodes["func:"+fn.Name.Name] = &node{body: fn.Body}
				continue
			}
			class := name[:strings.IndexByte(name, '.')]
			facts := &MethodFacts{
				Name:     name,
				Class:    class,
				Ctor:     fn.Recv == nil,
				Woven:    hasPrologue(fn),
				HasDefer: hasDefer(fn.Body),
				File:     filepath.Base(path),
			}
			facts.Direct = directKinds(fn.Body)
			inv.Methods[name] = facts
			nodes[name] = &node{facts: facts, body: fn.Body}
		}
	}

	// Build the intra-package call graph by name matching (the same
	// approximation the paper's CINT-based Analyzer used: no full type
	// resolution; conservative over-approximation is acceptable because
	// false injection points only cost performance, never correctness,
	// §4.3).
	byBareName := make(map[string][]string)
	for key := range nodes {
		bare := key
		if i := strings.IndexByte(key, '.'); i >= 0 {
			bare = key[i+1:]
		}
		bare = strings.TrimPrefix(bare, "func:")
		byBareName[bare] = append(byBareName[bare], key)
	}
	callees := make(map[string]map[string]bool, len(nodes))
	for key, nd := range nodes {
		set := make(map[string]bool)
		ast.Inspect(nd.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				for _, target := range byBareName[fun.Sel.Name] {
					set[target] = true
				}
			case *ast.Ident:
				for _, target := range byBareName[fun.Name] {
					set[target] = true
				}
			}
			return true
		})
		callees[key] = set
	}

	// Fixpoint: every function raises its direct kinds plus everything
	// its same-package callees raise.
	declared := make(map[string]map[string]bool, len(nodes))
	for key, nd := range nodes {
		set := make(map[string]bool)
		for _, k := range directKinds(nd.body) {
			set[k] = true
		}
		declared[key] = set
	}
	for changed := true; changed; {
		changed = false
		for key := range nodes {
			for callee := range callees[key] {
				for kind := range declared[callee] {
					if !declared[key][kind] {
						declared[key][kind] = true
						changed = true
					}
				}
			}
		}
	}
	for name, facts := range inv.Methods {
		facts.Declared = sortedKeys(declared[name])
	}

	// Second pass: the Item-76 strategy recommendation per method.
	sa, err := analyzeStrategyFiles(paths)
	if err != nil {
		return nil, err
	}
	for name, facts := range inv.Methods {
		if ms := sa.methods[name]; ms != nil {
			facts.Strategy = ms.strategy
			facts.StrategyReason = ms.reason
		}
	}
	return inv, nil
}

// hasDefer reports whether a body contains any defer statement.
func hasDefer(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.DeferStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// directKinds extracts the kind identifiers of fault.Throw / Throw calls
// in a body.
func directKinds(body *ast.BlockStmt) []string {
	set := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Throw" {
			return true
		}
		switch arg := call.Args[0].(type) {
		case *ast.SelectorExpr:
			set[arg.Sel.Name] = true
		case *ast.Ident:
			set[arg.Name] = true
		}
		return true
	})
	return sortedKeys(set)
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Names returns the inventoried instrumentation names, sorted.
func (inv *Inventory) Names() []string {
	names := make([]string, 0, len(inv.Methods))
	for name := range inv.Methods {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// GenerateRegistry renders the inventory as a Go source file defining a
// registry-builder function — the machine-written version of the
// hand-written Register* functions the bundled applications use.
func (inv *Inventory) GenerateRegistry(pkg, funcName, faultPkg string) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "// Code generated by faweave; DO NOT EDIT.\n\npackage %s\n\n", pkg)
	fmt.Fprintf(&b, "import (\n\t\"failatomic/internal/core\"\n\t\"failatomic/internal/fault\"\n)\n\n")
	fmt.Fprintf(&b, "// %s registers the package's instrumented methods.\nfunc %s(r *core.Registry) {\n", funcName, funcName)
	for _, name := range inv.Names() {
		facts := inv.Methods[name]
		kinds := ""
		for _, k := range facts.Declared {
			kinds += ", " + faultPkg + "." + k
		}
		if facts.Ctor {
			fmt.Fprintf(&b, "\tr.Ctor(%q, %q%s)\n", facts.Class, facts.Name, kinds)
		} else {
			bare := facts.Name[strings.IndexByte(facts.Name, '.')+1:]
			fmt.Fprintf(&b, "\tr.Method(%q, %q%s)\n", facts.Class, bare, kinds)
		}
	}
	b.WriteString("}\n")
	return []byte(b.String())
}

// GenerateRegistryFacade renders the inventory as a registry builder
// against the public facade instead of the internal packages — the form
// the repair pipeline's child verification programs compile, which live
// outside this module and can only import the facade.
func (inv *Inventory) GenerateRegistryFacade(funcName string, opts Options) []byte {
	opts.fill()
	var b strings.Builder
	fmt.Fprintf(&b, "// Code generated by farepair; DO NOT EDIT.\n\npackage %s\n\n", inv.Package)
	fmt.Fprintf(&b, "import %q\n\n", opts.FacadeImport)
	fmt.Fprintf(&b, "// %s registers the package's instrumented methods.\nfunc %s() *%s.Registry {\n\tr := %s.NewRegistry()\n",
		funcName, funcName, opts.FacadeName, opts.FacadeName)
	for _, name := range inv.Names() {
		facts := inv.Methods[name]
		kinds := ""
		for _, k := range facts.Declared {
			kinds += ", " + opts.FacadeName + "." + k
		}
		if facts.Ctor {
			fmt.Fprintf(&b, "\tr.Ctor(%q, %q%s)\n", facts.Class, facts.Name, kinds)
		} else {
			bare := facts.Name[strings.IndexByte(facts.Name, '.')+1:]
			fmt.Fprintf(&b, "\tr.Method(%q, %q%s)\n", facts.Class, bare, kinds)
		}
	}
	b.WriteString("\treturn r\n}\n")
	return []byte(b.String())
}
