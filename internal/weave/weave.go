// Package weave implements the paper's source-code transformation flavor
// (§5.1) on go/ast: the Analyzer parses a package, inventories its methods
// and constructors, and infers which exception kinds each can raise; the
// Code Weaver inserts the one-line instrumentation prologue
//
//	defer failatomic.Enter(recv, "Type.Method")()
//
// into every method, which is the Go equivalent of AspectC++ redirecting
// call sites to injection/atomicity wrappers — the prologue *is* the
// wrapper, so no call-site rewriting is needed.
//
// The weaver edits source text at AST-derived positions (preserving all
// comments), is idempotent, can strip its own instrumentation, and can
// generate the method registry (Step 1's Analyzer output) as Go source.
package weave

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Options configures the weaver.
type Options struct {
	// FacadeImport is the import path of the instrumentation runtime
	// (default "failatomic").
	FacadeImport string
	// FacadeName is the package identifier used in the prologue (default:
	// last element of FacadeImport).
	FacadeName string
	// Strip removes instrumentation instead of adding it.
	Strip bool
}

func (o *Options) fill() {
	if o.FacadeImport == "" {
		o.FacadeImport = "failatomic"
	}
	if o.FacadeName == "" {
		o.FacadeName = o.FacadeImport[strings.LastIndexByte(o.FacadeImport, '/')+1:]
	}
}

// edit is one textual change: replace src[Start:End] with Text.
type edit struct {
	Start int
	End   int
	Text  string
}

// InstrumentFile weaves (or strips) one Go source file. It returns the
// gofmt-formatted transformed source and whether anything changed.
func InstrumentFile(filename string, src []byte, opts Options) ([]byte, bool, error) {
	opts.fill()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, false, fmt.Errorf("weave: parse %s: %w", filename, err)
	}

	var edits []edit
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		name, recv := instrumentationName(fn)
		if name == "" {
			continue
		}
		if opts.Strip {
			if e, ok := stripEdit(fset, src, fn); ok {
				edits = append(edits, e)
			}
			continue
		}
		if hasPrologue(fn) {
			continue
		}
		offset := fset.Position(fn.Body.Lbrace).Offset + 1
		line := fmt.Sprintf("\n\tdefer %s.Enter(%s, %s)()",
			opts.FacadeName, recv, strconv.Quote(name))
		edits = append(edits, edit{Start: offset, End: offset, Text: line})
	}

	if len(edits) == 0 {
		formatted, err := format.Source(src)
		if err != nil {
			return nil, false, fmt.Errorf("weave: format %s: %w", filename, err)
		}
		return formatted, false, nil
	}

	if !opts.Strip {
		if e, ok := importEdit(fset, file, src, opts); ok {
			edits = append(edits, e)
		}
	}

	out := applyEdits(src, edits)
	if opts.Strip {
		// Second pass: drop the facade import if stripping left it unused.
		trimmed, err := dropUnusedImport(filename, out, opts)
		if err != nil {
			return nil, false, err
		}
		out = trimmed
	}
	formatted, err := format.Source(out)
	if err != nil {
		return nil, false, fmt.Errorf("weave: woven %s does not format: %w", filename, err)
	}
	return formatted, true, nil
}

// FileResult reports one file of an InstrumentDir run.
type FileResult struct {
	// Path is the file's location on disk.
	Path string
	// Changed reports whether the file was rewritten.
	Changed bool
}

// InstrumentDir weaves (or strips) every non-test Go file of a package
// directory in place and reports which files changed. With dryRun set no
// file is written.
func InstrumentDir(dir string, opts Options, dryRun bool) ([]FileResult, error) {
	paths, err := packageFiles(dir)
	if err != nil {
		return nil, err
	}
	results := make([]FileResult, 0, len(paths))
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("weave: %w", err)
		}
		out, changed, err := InstrumentFile(filepath.Base(path), src, opts)
		if err != nil {
			return nil, err
		}
		results = append(results, FileResult{Path: path, Changed: changed})
		if changed && !dryRun {
			if err := os.WriteFile(path, out, 0o644); err != nil {
				return nil, fmt.Errorf("weave: %w", err)
			}
		}
	}
	return results, nil
}

// CheckDir verifies a package is fully woven: it returns the
// instrumentation names of every method that lacks a prologue (empty =
// fully instrumented). Intended for CI gates after refactors.
func CheckDir(dir string) ([]string, error) {
	paths, err := packageFiles(dir)
	if err != nil {
		return nil, err
	}
	var missing []string
	if err := eachFunc(paths, func(fn *ast.FuncDecl) {
		name, _ := instrumentationName(fn)
		if name == "" || hasPrologue(fn) {
			return
		}
		missing = append(missing, name)
	}); err != nil {
		return nil, err
	}
	sort.Strings(missing)
	return missing, nil
}

// dropUnusedImport re-parses stripped source and removes the facade import
// if no reference to the facade identifier remains.
func dropUnusedImport(filename string, src []byte, opts Options) ([]byte, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("weave: reparse %s after strip: %w", filename, err)
	}
	if usesCount(file, opts.FacadeName) > 0 {
		return src, nil
	}
	e, ok := removeImportEdit(fset, file, src, opts)
	if !ok {
		return src, nil
	}
	return applyEdits(src, []edit{e}), nil
}

// applyEdits applies non-overlapping edits back to front.
func applyEdits(src []byte, edits []edit) []byte {
	sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
	out := append([]byte(nil), src...)
	for _, e := range edits {
		out = append(out[:e.Start], append([]byte(e.Text), out[e.End:]...)...)
	}
	return out
}

// IgnoreDirective exempts a method from weaving and from CheckDir when it
// appears in the method's doc comment. Use it for hot navigation helpers
// whose instrumentation cost the programmer has consciously declined (the
// method is then invisible to injection — the same trade as the paper's
// uninstrumentable core classes, §5.2).
const IgnoreDirective = "//failatomic:ignore"

// hasIgnoreDirective reports whether the function's doc comment opts out.
func hasIgnoreDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, IgnoreDirective) {
			return true
		}
	}
	return false
}

// instrumentationName derives the "Class.Method" label and the receiver
// expression for a function declaration. Constructors (New* functions) get
// "Type.New"-style names with a nil receiver; plain functions and methods
// carrying the ignore directive are skipped.
func instrumentationName(fn *ast.FuncDecl) (name, recv string) {
	if hasIgnoreDirective(fn) {
		return "", ""
	}
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		field := fn.Recv.List[0]
		class := receiverClass(field.Type)
		if class == "" {
			return "", ""
		}
		// Only pointer receivers can exhibit (or mask) non-atomicity;
		// value receivers get injection-only prologues.
		recvExpr := "nil"
		if _, isPtr := field.Type.(*ast.StarExpr); isPtr && len(field.Names) == 1 && field.Names[0].Name != "_" {
			recvExpr = field.Names[0].Name
		}
		return class + "." + fn.Name.Name, recvExpr
	}
	if strings.HasPrefix(fn.Name.Name, "New") && len(fn.Name.Name) > 3 {
		return strings.TrimPrefix(fn.Name.Name, "New") + ".New", "nil"
	}
	return "", ""
}

func receiverClass(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return receiverClass(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return receiverClass(t.X)
	case *ast.IndexListExpr:
		return receiverClass(t.X)
	default:
		return ""
	}
}

// hasPrologue reports whether the function already starts with an Enter
// prologue: either facade.Enter(...) or a package-local enter(...) alias.
func hasPrologue(fn *ast.FuncDecl) bool {
	return len(fn.Body.List) > 0 && isPrologue(fn.Body.List[0])
}

func isPrologue(stmt ast.Stmt) bool {
	def, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	inner, ok := def.Call.Fun.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := inner.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Enter"
	case *ast.Ident:
		return fun.Name == "enter" || fun.Name == "Enter"
	default:
		return false
	}
}

// stripEdit deletes a leading prologue line (including its newline).
func stripEdit(fset *token.FileSet, src []byte, fn *ast.FuncDecl) (edit, bool) {
	if !hasPrologue(fn) {
		return edit{}, false
	}
	stmt := fn.Body.List[0]
	start := fset.Position(stmt.Pos()).Offset
	end := fset.Position(stmt.End()).Offset
	// Extend backwards over the line's indentation.
	for start > 0 && (src[start-1] == ' ' || src[start-1] == '\t') {
		start--
	}
	// Extend forward over the trailing newline.
	if end < len(src) && src[end] == '\n' {
		end++
	}
	return edit{Start: start, End: end}, true
}

// importEdit ensures the facade import is present.
func importEdit(fset *token.FileSet, file *ast.File, src []byte, opts Options) (edit, bool) {
	quoted := strconv.Quote(opts.FacadeImport)
	for _, imp := range file.Imports {
		if imp.Path.Value == quoted {
			return edit{}, false
		}
	}
	spec := quoted
	if base := opts.FacadeImport[strings.LastIndexByte(opts.FacadeImport, '/')+1:]; base != opts.FacadeName {
		spec = opts.FacadeName + " " + quoted
	}
	for _, decl := range file.Decls {
		gen, ok := decl.(*ast.GenDecl)
		if !ok || gen.Tok != token.IMPORT {
			continue
		}
		if gen.Lparen.IsValid() {
			offset := fset.Position(gen.Lparen).Offset + 1
			return edit{Start: offset, End: offset, Text: "\n\t" + spec}, true
		}
		// Single non-parenthesized import: add another import decl after.
		offset := fset.Position(gen.End()).Offset
		return edit{Start: offset, End: offset, Text: "\nimport " + spec}, true
	}
	// No imports at all: insert after the package clause.
	offset := fset.Position(file.Name.End()).Offset
	return edit{Start: offset, End: offset, Text: "\n\nimport " + spec}, true
}

// removeImportEdit locates the facade import for deletion: the whole
// declaration when it is a sole non-parenthesized import, otherwise just
// the spec's line.
func removeImportEdit(fset *token.FileSet, file *ast.File, src []byte, opts Options) (edit, bool) {
	quoted := strconv.Quote(opts.FacadeImport)
	for _, decl := range file.Decls {
		gen, ok := decl.(*ast.GenDecl)
		if !ok || gen.Tok != token.IMPORT {
			continue
		}
		for _, spec := range gen.Specs {
			imp, ok := spec.(*ast.ImportSpec)
			if !ok || imp.Path.Value != quoted {
				continue
			}
			var start, end int
			if len(gen.Specs) == 1 {
				start = fset.Position(gen.Pos()).Offset
				end = fset.Position(gen.End()).Offset
			} else {
				start = fset.Position(imp.Pos()).Offset
				end = fset.Position(imp.End()).Offset
			}
			for start > 0 && (src[start-1] == ' ' || src[start-1] == '\t') {
				start--
			}
			if end < len(src) && src[end] == '\n' {
				end++
			}
			return edit{Start: start, End: end}, true
		}
	}
	return edit{}, false
}

// usesCount counts selector references to the facade identifier.
func usesCount(file *ast.File, name string) int {
	n := 0
	ast.Inspect(file, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == name {
			n++
		}
		return true
	})
	return n
}
