package inject

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// TestParallelCampaignMatchesSequential is the scheduler's determinism
// contract: over a deterministic workload, any Parallelism produces the
// exact Result of the sequential campaign — same runs, same order, same
// marks, same warnings. Run under -race.
func TestParallelCampaignMatchesSequential(t *testing.T) {
	seq, err := Campaign(context.Background(), testProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := Campaign(context.Background(), testProgram(), Options{Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.TotalPoints != seq.TotalPoints || par.Injections != seq.Injections {
			t.Fatalf("workers=%d: totals differ: %d/%d vs %d/%d", workers,
				par.TotalPoints, par.Injections, seq.TotalPoints, seq.Injections)
		}
		if !reflect.DeepEqual(par.CleanCalls, seq.CleanCalls) {
			t.Fatalf("workers=%d: clean calls differ", workers)
		}
		if !reflect.DeepEqual(par.Warnings, seq.Warnings) {
			t.Fatalf("workers=%d: warnings differ: %v vs %v", workers, par.Warnings, seq.Warnings)
		}
		if len(par.Runs) != len(seq.Runs) {
			t.Fatalf("workers=%d: run counts differ", workers)
		}
		for i := range seq.Runs {
			a, b := seq.Runs[i], par.Runs[i]
			if a.InjectionPoint != b.InjectionPoint {
				t.Fatalf("workers=%d run %d: point order differs", workers, i)
			}
			if !reflect.DeepEqual(a.Injected, b.Injected) || !reflect.DeepEqual(a.Escaped, b.Escaped) {
				t.Fatalf("workers=%d run %d: exceptions differ", workers, i)
			}
			if !reflect.DeepEqual(a.Marks, b.Marks) {
				t.Fatalf("workers=%d run %d: marks differ:\n%+v\nvs\n%+v", workers, i, a.Marks, b.Marks)
			}
		}
	}
}

// TestScopedCampaignMatchesSequential: Options.Scoped moves a sequential
// campaign off the exclusive global session without changing its Result —
// the property faserve's concurrent worker pool relies on.
func TestScopedCampaignMatchesSequential(t *testing.T) {
	seq, err := Campaign(context.Background(), testProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	scoped, err := Campaign(context.Background(), testProgram(), Options{Scoped: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scoped.Runs, seq.Runs) || !reflect.DeepEqual(scoped.Warnings, seq.Warnings) {
		t.Fatal("scoped campaign must reproduce the sequential Result exactly")
	}
	if core.Active() != nil {
		t.Fatal("no global session may leak from a scoped campaign")
	}
}

// TestScopedCampaignsRunConcurrently: two sequential-but-scoped campaigns
// in flight at once must not contend for the global slot — the exact
// failure mode of two faserve jobs on one process.
func TestScopedCampaignsRunConcurrently(t *testing.T) {
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Campaign(context.Background(), testProgram(), Options{Scoped: true})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("campaign %d: %v", i, err)
		}
	}
}

func TestParallelCampaignWithMasking(t *testing.T) {
	res, err := Campaign(context.Background(), testProgram(), Options{
		Parallelism: 4,
		Mask:        map[string]bool{"stack.Push": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range res.Runs {
		for _, m := range run.Marks {
			if m.Method == "stack.Push" && !m.Atomic {
				t.Fatalf("masked Push marked non-atomic at point %d", run.InjectionPoint)
			}
		}
	}
}

func TestParallelCampaignBudget(t *testing.T) {
	_, err := Campaign(context.Background(), testProgram(), Options{Parallelism: 4, MaxRuns: 3})
	if !errors.Is(err, ErrTooManyRuns) {
		t.Fatalf("err = %v, want ErrTooManyRuns", err)
	}
}

// TestBudgetCountsCleanRun pins the accounting fix: a campaign needs
// TotalPoints+1 executions, so MaxRuns == TotalPoints must be rejected and
// MaxRuns == TotalPoints+1 accepted — on both paths.
func TestBudgetCountsCleanRun(t *testing.T) {
	probe, err := Campaign(context.Background(), testProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := probe.TotalPoints
	for _, workers := range []int{1, 4} {
		if _, err := Campaign(context.Background(), testProgram(), Options{Parallelism: workers, MaxRuns: total}); !errors.Is(err, ErrTooManyRuns) {
			t.Errorf("workers=%d MaxRuns=%d: err = %v, want ErrTooManyRuns (clean run uncounted?)", workers, total, err)
		}
		if _, err := Campaign(context.Background(), testProgram(), Options{Parallelism: workers, MaxRuns: total + 1}); err != nil {
			t.Errorf("workers=%d MaxRuns=%d: unexpected error %v", workers, total+1, err)
		}
	}
}

// TestConcurrentCampaigns runs several whole campaigns at once — the
// global-session bottleneck the scoped registry removes. Run under -race.
func TestConcurrentCampaigns(t *testing.T) {
	const campaigns = 4
	results := make([]*Result, campaigns)
	errs := make([]error, campaigns)
	var wg sync.WaitGroup
	for i := 0; i < campaigns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Campaign(context.Background(), testProgram(), Options{Parallelism: 2})
		}(i)
	}
	wg.Wait()
	for i := 0; i < campaigns; i++ {
		if errs[i] != nil {
			t.Fatalf("campaign %d: %v", i, errs[i])
		}
		if results[i].TotalPoints != results[0].TotalPoints ||
			results[i].Injections != results[0].Injections {
			t.Fatalf("campaign %d disagrees with campaign 0", i)
		}
	}
	if core.Active() != nil {
		t.Fatal("no global session may leak from scoped campaigns")
	}
}

// deadPointProgram builds a workload whose clean run is much longer than
// every later run, leaving n dead injection points.
func deadPointProgram(extra int) *Program {
	calls := 0
	reg := core.NewRegistry().Method("stack", "Push").
		Method("stack", "PushSafe").
		Method("stack", "ensure", fault.CapacityExceeded)
	return &Program{
		Name:     "flaky",
		Registry: reg,
		Run: func() {
			calls++
			s := &stack{}
			s.Push(1)
			if calls == 1 {
				for i := 0; i < extra; i++ {
					s.Push(i)
				}
			}
		},
	}
}

func TestWarningsCappedAndSummarized(t *testing.T) {
	res, err := Campaign(context.Background(), deadPointProgram(20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("dead points must warn")
	}
	if len(res.Warnings) > MaxDeadPointWarnings+1 {
		t.Fatalf("%d warnings, want at most %d + summary", len(res.Warnings), MaxDeadPointWarnings)
	}
	last := res.Warnings[len(res.Warnings)-1]
	if len(res.Warnings) == MaxDeadPointWarnings+1 && !strings.Contains(last, "more points never fired") {
		t.Fatalf("final warning must summarize the overflow, got %q", last)
	}
}

func TestWarningsBelowCapAreKeptVerbatim(t *testing.T) {
	// Few dead points: every warning is kept, no summary appended.
	res, err := Campaign(context.Background(), deadPointProgram(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 || len(res.Warnings) > MaxDeadPointWarnings {
		t.Fatalf("small campaigns keep all warnings: %v", res.Warnings)
	}
	for _, w := range res.Warnings {
		if !strings.Contains(w, "never fired:") {
			t.Fatalf("unexpected summary below the cap: %q", w)
		}
	}
}
