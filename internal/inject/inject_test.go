package inject

import (
	"context"
	"testing"

	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// stack is the synthetic benchmark shape from §6: Push is pure failure
// non-atomic (it bumps Count before calling a helper that may throw),
// PushSafe is failure atomic.
type stack struct {
	Items []int
	Count int
}

func (s *stack) Push(v int) {
	defer core.Enter(s, "stack.Push")()
	s.Count++
	s.ensure()
	s.Items = append(s.Items, v)
}

func (s *stack) PushSafe(v int) {
	defer core.Enter(s, "stack.PushSafe")()
	s.ensure()
	items := append(s.Items, v)
	s.Items = items
	s.Count++
}

func (s *stack) ensure() {
	defer core.Enter(s, "stack.ensure")()
	if s.Count > 1<<20 {
		fault.Throw(fault.CapacityExceeded, "stack.ensure", "too large")
	}
}

// driver wraps a stack; its Fill is conditional failure non-atomic: it
// would be atomic if stack.Push were atomic.
type driver struct {
	S    *stack
	Runs int
}

func (d *driver) Fill(n int) {
	defer core.Enter(d, "driver.Fill")()
	for i := 0; i < n; i++ {
		d.S.Push(i)
	}
	d.Runs++
}

func testProgram() *Program {
	reg := core.NewRegistry().
		Method("stack", "Push").
		Method("stack", "PushSafe").
		Method("stack", "ensure", fault.CapacityExceeded).
		Method("driver", "Fill")
	return &Program{
		Name:     "stack-test",
		Lang:     "java",
		Registry: reg,
		Run: func() {
			d := &driver{S: &stack{}}
			d.Fill(3)
			d.S.PushSafe(99)
		},
	}
}

func TestCampaignCountsPoints(t *testing.T) {
	res, err := Campaign(context.Background(), testProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fill: 2 points. Push ×3: 2 each. ensure ×4: (1 declared + 2 runtime)
	// each. PushSafe: 2. Total = 2 + 6 + 12 + 2 = 22.
	if res.TotalPoints != 22 {
		t.Fatalf("TotalPoints = %d, want 22", res.TotalPoints)
	}
	if res.Injections != 22 {
		t.Fatalf("Injections = %d, want 22 (every point reachable)", res.Injections)
	}
	if len(res.Runs) != 23 { // clean run + one per point
		t.Fatalf("Runs = %d, want 23", len(res.Runs))
	}
	if res.Runs[0].InjectionPoint != 0 || res.Runs[0].Injected != nil {
		t.Fatal("first run must be the clean run")
	}
}

func TestCampaignCleanCalls(t *testing.T) {
	res, err := Campaign(context.Background(), testProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"driver.Fill":    1,
		"stack.Push":     3,
		"stack.PushSafe": 1,
		"stack.ensure":   4,
	}
	for name, n := range want {
		if got := res.CleanCalls[name]; got != n {
			t.Errorf("CleanCalls[%s] = %d, want %d", name, got, n)
		}
	}
}

func TestCampaignEveryInjectedRunEscapes(t *testing.T) {
	res, err := Campaign(context.Background(), testProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range res.Runs[1:] {
		if run.Injected == nil {
			t.Fatalf("run at point %d did not inject", run.InjectionPoint)
		}
		if run.Escaped == nil {
			t.Fatalf("run at point %d: injected exception did not escape", run.InjectionPoint)
		}
		if run.Injected.Point != run.InjectionPoint {
			t.Fatalf("exception point %d != threshold %d", run.Injected.Point, run.InjectionPoint)
		}
	}
}

func TestCampaignIsDeterministic(t *testing.T) {
	a, err := Campaign(context.Background(), testProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign(context.Background(), testProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalPoints != b.TotalPoints || a.Injections != b.Injections {
		t.Fatal("campaigns over a deterministic program must agree")
	}
	for i := range a.Runs {
		am, bm := a.Runs[i].Marks, b.Runs[i].Marks
		if len(am) != len(bm) {
			t.Fatalf("run %d: mark counts differ", i)
		}
		for j := range am {
			if am[j].Method != bm[j].Method || am[j].Atomic != bm[j].Atomic {
				t.Fatalf("run %d mark %d differs: %+v vs %+v", i, j, am[j], bm[j])
			}
		}
	}
}

func TestCampaignRejectsNilProgram(t *testing.T) {
	if _, err := Campaign(context.Background(), nil, Options{}); err == nil {
		t.Fatal("nil program must be rejected")
	}
	if _, err := Campaign(context.Background(), &Program{Name: "x"}, Options{}); err == nil {
		t.Fatal("program without Run must be rejected")
	}
}

func TestCampaignMaxRuns(t *testing.T) {
	p := testProgram()
	if _, err := Campaign(context.Background(), p, Options{MaxRuns: 3}); err == nil {
		t.Fatal("campaign beyond MaxRuns must fail")
	}
}

func TestCampaignExceptionFree(t *testing.T) {
	res, err := Campaign(context.Background(), testProgram(), Options{
		ExceptionFree: map[string]bool{"stack.ensure": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// ensure's 12 points disappear.
	if res.TotalPoints != 10 {
		t.Fatalf("TotalPoints = %d, want 10", res.TotalPoints)
	}
	for _, run := range res.Runs[1:] {
		if run.Injected != nil && run.Injected.Method == "stack.ensure" {
			t.Fatal("exception-free method must receive no injections")
		}
	}
}

func TestCampaignWithMasking(t *testing.T) {
	res, err := Campaign(context.Background(), testProgram(), Options{
		Mask: map[string]bool{"stack.Push": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// With Push masked, no run may mark Push non-atomic.
	for _, run := range res.Runs {
		for _, m := range run.Marks {
			if m.Method == "stack.Push" && !m.Atomic {
				t.Fatalf("masked Push marked non-atomic at point %d: %s",
					run.InjectionPoint, m.Diff)
			}
		}
	}
}

func TestCampaignLeavesNoSession(t *testing.T) {
	if _, err := Campaign(context.Background(), testProgram(), Options{}); err != nil {
		t.Fatal(err)
	}
	if core.Active() != nil {
		t.Fatal("campaign must uninstall its sessions")
	}
}

func TestCampaignWarnsOnNondeterminism(t *testing.T) {
	// A workload whose behavior depends on mutable state outside the run
	// (here: a captured counter) makes later injection points unreachable;
	// the campaign must flag those runs instead of silently recording
	// nothing.
	calls := 0
	reg := core.NewRegistry().Method("stack", "Push").
		Method("stack", "PushSafe").
		Method("stack", "ensure", fault.CapacityExceeded)
	p := &Program{
		Name:     "flaky",
		Registry: reg,
		Run: func() {
			calls++
			s := &stack{}
			s.Push(1)
			if calls == 1 { // only the clean run does extra work
				s.Push(2)
				s.Push(3)
			}
		},
	}
	res, err := Campaign(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("nondeterministic workload must produce warnings")
	}
}

func TestCampaignNoWarningsWhenDeterministic(t *testing.T) {
	res, err := Campaign(context.Background(), testProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", res.Warnings)
	}
}

func TestCampaignRepeatsScaleThePointSpace(t *testing.T) {
	base, err := Campaign(context.Background(), testProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Campaign(context.Background(), testProgram(), Options{Repeats: 3})
	if err != nil {
		t.Fatal(err)
	}
	if scaled.TotalPoints != 3*base.TotalPoints {
		t.Fatalf("scaled points = %d, want %d", scaled.TotalPoints, 3*base.TotalPoints)
	}
	if scaled.Injections != scaled.TotalPoints {
		t.Fatalf("every scaled point must fire: %d/%d", scaled.Injections, scaled.TotalPoints)
	}
	if len(scaled.Warnings) != 0 {
		t.Fatalf("repeated runs stay deterministic: %v", scaled.Warnings)
	}
}
