// Concurrent-campaign run data. The concurrent driver (internal/concur)
// produces these; they live here — next to Run and RunKey — because they
// are part of the run's wire identity: journals, resume splicing, chunk
// shipping and the content-addressed store all carry them through the
// same runLine pipeline the single-threaded campaigns use. The types are
// pure data; the schedule execution and the linearization checker stay in
// internal/concur.
package inject

// ConcurStrategy is the Run.Strategy of concurrent-campaign runs. Like
// the perturbation strategies, it keeps concurrent runs out of the
// baseline classification sweep.
const ConcurStrategy = "concur"

// ConcurOp is one operation of a concurrent schedule's history: which
// worker issued it, what it was, what it returned (or threw), and the
// scheduler-step interval it occupied. Interval order is what the
// linearization checker preserves: op A precedes op B iff A.End < B.Start.
type ConcurOp struct {
	// Worker is the issuing worker's index (0-based).
	Worker int `json:"worker"`
	// Name renders the operation with its arguments, e.g.
	// "InsertPair(101,102)".
	Name string `json:"name"`
	// Resp renders the response: a value, "ok", or "throw:<Kind>".
	Resp string `json:"resp,omitempty"`
	// Faulted marks the operation the injected exception escaped from.
	Faulted bool `json:"faulted,omitempty"`
	// Start/End are the scheduler steps at which the operation was first
	// granted and at which it completed.
	Start int `json:"start"`
	End   int `json:"end"`
}

// ConcurOutcome records what one concurrent schedule observed: the
// complete per-worker history, the final abstract state of the shared
// object, and the linearization verdict. It rides on Run.Concur through
// journals and logs; the classifier (detect.SummarizeConcur) aggregates
// the stored verdicts without re-running the checker.
type ConcurOutcome struct {
	// Workers is the driver's worker count.
	Workers int `json:"workers"`
	// FaultWorker is the worker designated to receive the injected fault;
	// -1 for the clean pass.
	FaultWorker int `json:"faultWorker"`
	// FaultOp names the operation the fault escaped from ("" when the
	// designated point was never reached).
	FaultOp string `json:"faultOp,omitempty"`
	// Verdict is the linearization verdict string
	// (detect.ConcurVerdict.String()).
	Verdict string `json:"verdict"`
	// Final renders the shared object's abstract state after every worker
	// finished.
	Final string `json:"final"`
	// Witness renders the matching linearization order when one exists.
	Witness string `json:"witness,omitempty"`
	// History is the merged operation history in start-step order.
	History []ConcurOp `json:"history"`
}

// Section is one named free-form report block carried on a Result and in
// its log. Unknown section names must be rendered verbatim by readers.
type Section struct {
	// Name identifies the producer ("concur").
	Name string `json:"section"`
	// Text is the rendered block.
	Text string `json:"text"`
}
