// Package inject drives the detection phase's automated experiments
// (Step 3, §4.1): it executes an instrumented program once per injection
// point, raising exactly one exception per run, and collects the atomicity
// marks the wrappers record while the exception unwinds.
package inject

import (
	"errors"
	"fmt"

	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// Program is one instrumented application under test: a fresh, isolated
// workload execution plus the Analyzer's method registry.
type Program struct {
	// Name identifies the application (a Table 1 row).
	Name string
	// Lang tags the evaluation group ("cpp" or "java") for the figures.
	Lang string
	// Registry supplies declared exception kinds per method.
	Registry *core.Registry
	// Run executes the workload against freshly constructed objects. It is
	// invoked once per injection point; injected exceptions that the
	// workload does not handle propagate out and are caught by the
	// campaign.
	Run func()
}

// Run records one execution of the exception injector program.
type Run struct {
	// InjectionPoint is the threshold used (0 for the clean run).
	InjectionPoint int
	// Injected is the exception raised in this run, or nil if the counter
	// never reached the threshold (e.g. an earlier organic exception
	// terminated the workload).
	Injected *fault.Exception
	// Escaped is the exception that propagated out of the workload's top
	// level, or nil if the workload completed (or handled it).
	Escaped *fault.Exception
	// Marks are the atomicity observations, in callee-first order.
	Marks []core.Mark
}

// Result aggregates a full campaign over one program.
type Result struct {
	// Program points back to the subject.
	Program *Program
	// CleanCalls is the per-method call count of the clean run — the
	// weights of Figures 2(b)/3(b).
	CleanCalls map[string]int64
	// TotalPoints is the number of potential injection points in one clean
	// execution.
	TotalPoints int
	// Injections is the number of runs in which an exception actually
	// fired — the Table 1 "#Injections" column.
	Injections int
	// Runs holds every execution, clean run first.
	Runs []Run
	// Warnings flags runs that did not behave as the clean run predicted —
	// usually a nondeterministic workload (which makes point numbering
	// meaningless) or a workload terminated early by an organic failure.
	Warnings []string
}

// Options tunes a campaign.
type Options struct {
	// MaxRuns caps the number of injector executions (0 = DefaultMaxRuns).
	MaxRuns int
	// Repeats runs the workload this many times per execution (0/1 = once),
	// scaling the injection space toward the paper's thousands of points.
	// Campaign cost grows quadratically with Repeats. An exception that
	// escapes one iteration ends the whole execution, exactly as a longer
	// test program would.
	Repeats int
	// ExceptionFree methods get no injection points (§4.3).
	ExceptionFree map[string]bool
	// Mask additionally enables masking for the listed methods during the
	// campaign, which is how the masking phase is verified: a masked
	// campaign must classify every masked method failure atomic.
	Mask map[string]bool
	// Serialize holds a session-global lock across each instrumented call
	// (§4.4's concurrency mitigation) for workloads that spawn goroutines.
	Serialize bool
	// Parallelism is the number of worker goroutines exploring injection
	// points concurrently (0 or 1 = sequential, the legacy behavior).
	// Each worker binds its own session to its goroutine
	// (core.Session.Bind), so parallel campaigns never contend for the
	// global session slot; Runs are merged deterministically in point
	// order, making the result identical to a sequential campaign over a
	// deterministic workload. Workloads that spawn goroutines must stay
	// sequential: a scoped session does not follow child goroutines.
	Parallelism int
}

// DefaultMaxRuns bounds campaigns against runaway workloads.
const DefaultMaxRuns = 250_000

// MaxDeadPointWarnings caps the per-point "never fired" warnings kept on a
// Result. A large nondeterministic campaign can have hundreds of thousands
// of dead points; beyond this many, the remainder is summarized in one
// final warning instead of one string per point.
const MaxDeadPointWarnings = 10

// ErrTooManyRuns reports a campaign that exceeded its run budget.
var ErrTooManyRuns = errors.New("inject: campaign exceeded MaxRuns")

// Campaign runs the full detection experiment for p: one clean run to size
// the injection space, then one run per injection point, incrementing the
// threshold each time exactly as in Step 3.
func Campaign(p *Program, opts Options) (*Result, error) {
	if p == nil || p.Run == nil {
		return nil, errors.New("inject: program must have a Run function")
	}
	maxRuns := opts.MaxRuns
	if maxRuns <= 0 {
		maxRuns = DefaultMaxRuns
	}
	if opts.Parallelism > 1 {
		return parallelCampaign(p, opts, maxRuns)
	}

	clean, err := execute(p, 0, opts)
	if err != nil {
		return nil, fmt.Errorf("clean run: %w", err)
	}
	res := &Result{
		Program:     p,
		CleanCalls:  clean.calls,
		TotalPoints: clean.points,
		Runs:        []Run{clean.run},
	}
	if err := checkBudget(res.TotalPoints, maxRuns); err != nil {
		return nil, err
	}

	var dead deadPointWarnings
	for ip := 1; ip <= res.TotalPoints; ip++ {
		out, err := execute(p, ip, opts)
		if err != nil {
			return nil, fmt.Errorf("injection point %d: %w", ip, err)
		}
		if out.run.Injected != nil {
			res.Injections++
		} else {
			dead.add(ip)
		}
		res.Runs = append(res.Runs, out.run)
	}
	res.Warnings = dead.list()
	return res, nil
}

// checkBudget enforces the run budget over every execution the campaign
// will perform: the uncounted-by-points clean run plus one run per point.
func checkBudget(totalPoints, maxRuns int) error {
	if totalPoints+1 > maxRuns {
		return fmt.Errorf("%w: %d points + 1 clean run > %d", ErrTooManyRuns, totalPoints, maxRuns)
	}
	return nil
}

// deadPointWarnings accumulates "point never fired" warnings, keeping the
// first MaxDeadPointWarnings verbatim and summarizing the rest.
type deadPointWarnings struct {
	kept  []string
	total int
}

func (w *deadPointWarnings) add(ip int) {
	w.total++
	if len(w.kept) < MaxDeadPointWarnings {
		w.kept = append(w.kept, fmt.Sprintf(
			"point %d never fired: workload is nondeterministic or an earlier organic failure cut the run short",
			ip))
	}
}

func (w *deadPointWarnings) list() []string {
	if w.total > len(w.kept) {
		return append(w.kept, fmt.Sprintf(
			"...and %d more points never fired (%d dead points in total)",
			w.total-len(w.kept), w.total))
	}
	return w.kept
}

type execution struct {
	run    Run
	calls  map[string]int64
	points int
}

// newSession builds the injector session for one run at the given
// threshold.
func newSession(p *Program, injectionPoint int, opts Options) *core.Session {
	return core.NewSession(core.Config{
		Registry:       p.Registry,
		Inject:         true,
		InjectionPoint: injectionPoint,
		Detect:         true,
		Mask:           len(opts.Mask) > 0,
		MaskMethods:    opts.Mask,
		ExceptionFree:  opts.ExceptionFree,
		Serialize:      opts.Serialize,
	})
}

// workload returns the (possibly repeated) body of one injector run.
func workload(p *Program, opts Options) func() {
	repeats := opts.Repeats
	if repeats < 1 {
		repeats = 1
	}
	return func() {
		for i := 0; i < repeats; i++ {
			p.Run()
		}
	}
}

// collect packages what one finished session observed.
func collect(session *core.Session, injectionPoint int, escaped *fault.Exception) execution {
	return execution{
		run: Run{
			InjectionPoint: injectionPoint,
			Injected:       session.Injected(),
			Escaped:        escaped,
			Marks:          session.Marks(),
		},
		calls:  session.Calls(),
		points: session.Point(),
	}
}

// execute performs one injector run with the given threshold on the legacy
// exclusive global session, catching the exception that escapes the
// workload's top level.
func execute(p *Program, injectionPoint int, opts Options) (execution, error) {
	session := newSession(p, injectionPoint, opts)
	if err := core.Install(session); err != nil {
		return execution{}, err
	}
	defer core.Uninstall(session)
	escaped := runGuarded(workload(p, opts))
	return collect(session, injectionPoint, escaped), nil
}

// executeScoped performs one injector run on a session bound to the
// calling goroutine, so any number of runs may proceed concurrently on
// different goroutines. Unlike execute it cannot fail: scoped sessions
// need no exclusive slot.
func executeScoped(p *Program, injectionPoint int, opts Options) execution {
	session := newSession(p, injectionPoint, opts)
	var escaped *fault.Exception
	session.Bind(func() {
		escaped = runGuarded(workload(p, opts))
	})
	return collect(session, injectionPoint, escaped)
}

// runGuarded invokes the workload and converts an escaping panic into the
// exception it carries.
func runGuarded(run func()) (escaped *fault.Exception) {
	defer func() {
		if r := recover(); r != nil {
			escaped = fault.From(r)
		}
	}()
	run()
	return nil
}
