// Package inject drives the detection phase's automated experiments
// (Step 3, §4.1): it executes an instrumented program once per injection
// point, raising exactly one exception per run, and collects the atomicity
// marks the wrappers record while the exception unwinds.
package inject

import (
	"context"
	"errors"
	"fmt"
	"time"

	"failatomic/internal/checkpoint"
	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// Program is one instrumented application under test: a fresh, isolated
// workload execution plus the Analyzer's method registry.
type Program struct {
	// Name identifies the application (a Table 1 row).
	Name string
	// Lang tags the evaluation group ("cpp" or "java") for the figures.
	Lang string
	// Registry supplies declared exception kinds per method.
	Registry *core.Registry
	// Run executes the workload against freshly constructed objects. It is
	// invoked once per injection point; injected exceptions that the
	// workload does not handle propagate out and are caught by the
	// campaign.
	Run func()
	// DeferMethods names the methods whose source carries a defer
	// statement (the weaver's MethodFacts.HasDefer); the deferred-cleanup
	// perturbation targets exactly these. Nil means unknown — the strategy
	// then falls back to every non-constructor method.
	DeferMethods map[string]bool
}

// RunStatus classifies the fate of one injector execution.
type RunStatus int

const (
	// RunOK is a normal execution (the zero value).
	RunOK RunStatus = iota
	// RunHung marks a quarantined point whose run exceeded RunTimeout on
	// every attempt; its goroutine was abandoned, so the run carries no
	// session observations.
	RunHung
	// RunUndetermined marks a quarantined point whose run crashed with a
	// foreign (non-*fault.Exception) panic on every attempt; its marks are
	// kept for triage but excluded from classification.
	RunUndetermined
)

// String returns the status name used in reports and logs.
func (s RunStatus) String() string {
	switch s {
	case RunHung:
		return "hung"
	case RunUndetermined:
		return "undetermined"
	default:
		return "ok"
	}
}

// Run records one execution of the exception injector program.
type Run struct {
	// InjectionPoint is the primary point coordinate of the run's RunKey:
	// the counter threshold for default and oblivious runs, the first point
	// of a burst pair, the site or method index of nth-activation and
	// deferred-cleanup runs (0 for the clean run).
	InjectionPoint int
	// Strategy is the perturbation model that planned this run; "" is the
	// default first-activation sweep, so legacy journals — which have no
	// strategy field at all — decode as the default strategy.
	Strategy string `json:"strategy,omitempty"`
	// Arg is the strategy-specific run-key argument (the N of an
	// nth-activation run, the second point of a burst pair, the call
	// ordinal of a deferred-cleanup run, the faulted worker of a
	// concurrent schedule); 0 when unused.
	Arg int `json:"arg,omitempty"`
	// Sched is the schedule identifier of a concurrent-campaign run; 0 for
	// every single-threaded run, so legacy journals — which never carried
	// the field — decode unchanged.
	Sched int `json:"sched,omitempty"`
	// Injected is the exception raised in this run, or nil if the counter
	// never reached the threshold (e.g. an earlier organic exception
	// terminated the workload).
	Injected *fault.Exception
	// Escaped is the exception that propagated out of the workload's top
	// level, or nil if the workload completed (or handled it).
	Escaped *fault.Exception
	// Marks are the atomicity observations, in callee-first order.
	Marks []core.Mark
	// Status is RunOK for a normal execution; RunHung/RunUndetermined mark
	// quarantined points, whose marks the classifier ignores.
	Status RunStatus
	// Retries is how many extra attempts the supervisor made before this
	// run was recorded.
	Retries int
	// Err describes the last failure of a quarantined point.
	Err string
	// MaskStats is the per-method masking overhead of this run; nil unless
	// the campaign masked methods. Omitted from journals of plain detect
	// campaigns, keeping their byte format unchanged.
	MaskStats map[string]core.MaskStat `json:"maskStats,omitempty"`
	// Concur records what a concurrent schedule observed (per-worker
	// operation history, final abstract state, linearization verdict); nil
	// for every single-threaded run.
	Concur *ConcurOutcome `json:"concur,omitempty"`
}

// Quarantine summarizes one point the supervisor gave up on.
type Quarantine struct {
	// InjectionPoint is the quarantined run's primary point coordinate.
	InjectionPoint int
	// Strategy/Arg complete the quarantined run's RunKey.
	Strategy string `json:"strategy,omitempty"`
	Arg      int    `json:"arg,omitempty"`
	// Status is RunHung or RunUndetermined.
	Status RunStatus
	// Retries is the number of extra attempts made before quarantining.
	Retries int
	// Kind is the exception kind of the last attempt's escape, if any.
	Kind fault.Kind
	// Err is the last failure description.
	Err string
}

// Result aggregates a full campaign over one program.
type Result struct {
	// Program points back to the subject.
	Program *Program
	// CleanCalls is the per-method call count of the clean run — the
	// weights of Figures 2(b)/3(b).
	CleanCalls map[string]int64
	// TotalPoints is the number of potential injection points in one clean
	// execution.
	TotalPoints int
	// Injections is the number of runs in which an exception actually
	// fired — the Table 1 "#Injections" column.
	Injections int
	// Runs holds every execution, clean run first.
	Runs []Run
	// Warnings flags runs that did not behave as the clean run predicted —
	// usually a nondeterministic workload (which makes point numbering
	// meaningless) or a workload terminated early by an organic failure.
	Warnings []string
	// Quarantined lists the points the supervisor gave up on (their runs
	// have Status != RunOK), in point order. Quarantined runs are excluded
	// from Injections, dead-point warnings and classification.
	Quarantined []Quarantine
	// Sections are named free-form report blocks appended to the log after
	// the runs (a concurrent campaign's schedule report travels this way).
	// Readers that do not know a section's name must render its text
	// verbatim, which is what lets old binaries degrade gracefully on new
	// logs.
	Sections []Section
	// SnapshotCache totals the per-session fingerprint-cache counters
	// across every execution of the campaign (all zero in capture and
	// fingerprint-nocache modes). Operational telemetry only: it is not
	// serialized into reports or journals, which stay byte-identical
	// across cache configurations.
	SnapshotCache core.SnapshotCacheStats
}

// Options tunes a campaign.
type Options struct {
	// MaxRuns caps the number of injector executions (0 = DefaultMaxRuns).
	MaxRuns int
	// Repeats runs the workload this many times per execution (0/1 = once),
	// scaling the injection space toward the paper's thousands of points.
	// Campaign cost grows quadratically with Repeats. An exception that
	// escapes one iteration ends the whole execution, exactly as a longer
	// test program would.
	Repeats int
	// ExceptionFree methods get no injection points (§4.3).
	ExceptionFree map[string]bool
	// Mask additionally enables masking for the listed methods during the
	// campaign, which is how the masking phase is verified: a masked
	// campaign must classify every masked method failure atomic.
	Mask map[string]bool
	// MaskStrategy selects the checkpoint strategy for masked methods; nil
	// means checkpoint.DeepCopy.
	MaskStrategy checkpoint.Strategy
	// MaskStrategies overrides MaskStrategy per method (strategy-aware
	// masking: each wrapped method runs the cheapest sufficient rung).
	MaskStrategies map[string]checkpoint.Strategy
	// Serialize holds a session-global lock across each instrumented call
	// (§4.4's concurrency mitigation) for workloads that spawn goroutines.
	Serialize bool
	// Snapshot selects the session snapshot engine. The default,
	// core.SnapshotFingerprint, compares streaming 128-bit graph hashes on
	// every wrapped call and deterministically re-executes only the runs
	// that record a non-atomic mark in capture mode to recover the
	// human-readable Mark.Diff — reports and journals stay byte-identical
	// to capture mode. Each session hashes through its own incremental
	// cache (generation-keyed frame reuse, verified large-leaf replay);
	// core.SnapshotFingerprintNoCache disables the cache (hash from
	// scratch every call, identical output), and core.SnapshotCapture
	// forces full graphs everywhere (the escape hatches).
	Snapshot core.SnapshotMode
	// Parallelism is the number of worker goroutines exploring injection
	// points concurrently (0 or 1 = sequential, the legacy behavior).
	// Each worker binds its own session to its goroutine
	// (core.Session.Bind), so parallel campaigns never contend for the
	// global session slot; Runs are merged deterministically in point
	// order, making the result identical to a sequential campaign over a
	// deterministic workload. Workloads that spawn goroutines must stay
	// sequential: a scoped session does not follow child goroutines.
	Parallelism int
	// Scoped runs every injector execution on a session bound to its
	// goroutine (core.Session.Bind) even when the campaign is sequential
	// and unsupervised, instead of the legacy exclusive global session.
	// Required when several campaigns share one process — faserve's worker
	// pool — since the global slot admits only one session at a time. Over
	// a deterministic workload the result is identical either way.
	// Supervised and parallel campaigns are always scoped.
	Scoped bool
	// RunTimeout bounds each injector execution. On expiry the supervisor
	// abandons the run's goroutine (goroutines are unkillable; the leak is
	// bounded — see supervise.go), records the attempt as hung, and
	// retries or quarantines the point instead of hanging the campaign.
	// 0 disables the watchdog.
	RunTimeout time.Duration
	// MaxRetries re-attempts a hung or crashed run this many extra times
	// (capped exponential backoff between attempts) before quarantining
	// the point. Setting RunTimeout or MaxRetries enables supervision.
	MaxRetries int
	// MaxQuarantined fails the campaign with ErrQuarantineBudget once more
	// than this many points are quarantined. <= 0 means unlimited: the
	// campaign completes and reports every quarantined point.
	MaxQuarantined int
	// OnRun streams every completed run as the campaign progresses — the
	// crash-safe journal hook. Runs arrive clean-run first, then in plan
	// order when sequential and completion order when parallel; an error
	// aborts the campaign. Under Parallelism the sink is called from
	// worker goroutines concurrently and must serialize itself
	// (replog.Journal does).
	OnRun func(Run) error
	// Completed maps run keys recovered from a journal to their recorded
	// runs: the campaign splices them into the Result without re-executing
	// them and without re-notifying OnRun (crash-safe resume). The clean
	// run always re-executes — it sizes the space.
	Completed map[RunKey]Run
	// Perturbations are the extra fault strategies the campaign runs on
	// top of the always-on default first-activation sweep, in order. Each
	// plans its experiment grid from the clean run's profile; the plan is
	// deterministic, so resumed and dispatched campaigns re-derive the
	// identical experiment list.
	Perturbations []Perturbation
}

// supervised reports whether the per-run watchdog/retry/quarantine layer
// is active. Unsupervised campaigns keep the legacy behavior exactly: no
// extra goroutine per run, foreign escapes recorded as ordinary runs.
func (o Options) supervised() bool {
	return o.RunTimeout > 0 || o.MaxRetries > 0
}

// DefaultMaxRuns bounds campaigns against runaway workloads.
const DefaultMaxRuns = 250_000

// MaxDeadPointWarnings caps the per-point "never fired" warnings kept on a
// Result. A large nondeterministic campaign can have hundreds of thousands
// of dead points; beyond this many, the remainder is summarized in one
// final warning instead of one string per point.
const MaxDeadPointWarnings = 10

// ErrTooManyRuns reports a campaign that exceeded its run budget.
var ErrTooManyRuns = errors.New("inject: campaign exceeded MaxRuns")

// ErrQuarantineBudget reports a campaign that quarantined more points than
// Options.MaxQuarantined tolerates.
var ErrQuarantineBudget = errors.New("inject: campaign exceeded MaxQuarantined")

// Campaign runs the full detection experiment for p: one clean run to size
// the injection space, then one run per injection point, incrementing the
// threshold each time exactly as in Step 3. The context cancels the
// campaign between runs (and mid-run when supervised); runs already
// streamed to Options.OnRun survive for resume.
func Campaign(ctx context.Context, p *Program, opts Options) (*Result, error) {
	if p == nil || p.Run == nil {
		return nil, errors.New("inject: program must have a Run function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	maxRuns := opts.MaxRuns
	if maxRuns <= 0 {
		maxRuns = DefaultMaxRuns
	}
	if opts.Parallelism > 1 {
		return parallelCampaign(ctx, p, opts, maxRuns)
	}

	clean, err := cleanRun(ctx, p, opts, opts.supervised() || opts.Scoped)
	if err != nil {
		return nil, fmt.Errorf("clean run: %w", err)
	}
	res := &Result{
		Program:     p,
		CleanCalls:  clean.calls,
		TotalPoints: clean.points,
	}
	exps := planExperiments(clean.profile(p), opts)
	if err := checkBudget(len(exps), maxRuns); err != nil {
		return nil, err
	}
	if err := validateCompleted(opts.Completed, exps, res.TotalPoints); err != nil {
		return nil, err
	}

	t := tally{res: res, max: opts.MaxQuarantined}
	if err := t.add(clean.run); err != nil {
		return nil, err
	}
	res.SnapshotCache.Add(clean.cache)
	if _, journaled := opts.Completed[RunKey{}]; !journaled {
		if err := notifyRun(opts, clean.run); err != nil {
			return nil, err
		}
	}
	for _, ex := range exps {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("inject: campaign interrupted before %s: %w", ex.Key, err)
		}
		out, journaled, err := experimentRun(ctx, p, ex, opts)
		if err != nil {
			return nil, fmt.Errorf("injection %s: %w", ex.Key, err)
		}
		if err := t.add(out.run); err != nil {
			return nil, err
		}
		res.SnapshotCache.Add(out.cache)
		if !journaled {
			if err := notifyRun(opts, out.run); err != nil {
				return nil, err
			}
		}
	}
	t.finish()
	return res, nil
}

// experimentRun produces the execution for one planned experiment:
// spliced from the resume journal if present, otherwise executed (under
// the supervisor when one is configured). The bool reports whether the
// run was spliced.
func experimentRun(ctx context.Context, p *Program, ex Experiment, opts Options) (execution, bool, error) {
	if run, ok := opts.Completed[ex.Key]; ok {
		return execution{run: run}, true, nil
	}
	if opts.supervised() {
		out, err := supervise(ctx, p, ex, opts)
		return out, false, err
	}
	if opts.Scoped {
		return executeScoped(p, ex, opts), false, nil
	}
	out, err := execute(p, ex, opts)
	return out, false, err
}

// notifyRun streams one completed run to the journal hook.
func notifyRun(opts Options, run Run) error {
	if opts.OnRun == nil {
		return nil
	}
	if err := opts.OnRun(run); err != nil {
		return fmt.Errorf("inject: OnRun %s: %w", run.Key(), err)
	}
	return nil
}

// validateCompleted rejects a resume journal that does not fit the fresh
// experiment plan — the usual causes are a nondeterministic workload, a
// journal written by a different program or options, and a journal written
// under a different perturbation list.
func validateCompleted(completed map[RunKey]Run, exps []Experiment, totalPoints int) error {
	if len(completed) == 0 {
		return nil
	}
	valid := make(map[RunKey]bool, len(exps)+1)
	valid[RunKey{}] = true // the clean run
	for _, ex := range exps {
		valid[ex.Key] = true
	}
	for key := range completed {
		if valid[key] {
			continue
		}
		if key.Strategy == "" {
			return fmt.Errorf("inject: resume journal holds point %d but the clean run sized only %d points (nondeterministic workload or wrong journal?)", key.Point, totalPoints)
		}
		return fmt.Errorf("inject: resume journal holds %s outside this campaign's experiment plan (different -perturb options or wrong journal?)", key)
	}
	return nil
}

// tally accumulates the bookkeeping both campaign modes share when a run
// enters the Result: injections, dead-point warnings, quarantines and the
// quarantine budget.
type tally struct {
	res         *Result
	dead        deadPointWarnings
	quarantined int
	max         int
}

func (t *tally) add(run Run) error {
	t.res.Runs = append(t.res.Runs, run)
	if run.InjectionPoint == 0 {
		return nil
	}
	if run.Status != RunOK {
		t.quarantined++
		t.res.Quarantined = append(t.res.Quarantined, quarantineOf(run))
		if t.max > 0 && t.quarantined > t.max {
			return fmt.Errorf("%w: %d points quarantined > %d", ErrQuarantineBudget, t.quarantined, t.max)
		}
		return nil
	}
	if run.Injected != nil {
		t.res.Injections++
	} else if run.Strategy == "" {
		// Dead-point warnings cover only the default sweep: a strategy run
		// that never fired is an expected grid artifact (e.g. an earlier
		// organic failure cut the run before a burst pair's first point),
		// not a sign of nondeterminism the default sweep hasn't already
		// flagged.
		t.dead.add(run.InjectionPoint)
	}
	return nil
}

func (t *tally) finish() { t.res.Warnings = t.dead.list() }

// quarantineOf summarizes a quarantined run for the campaign report.
func quarantineOf(run Run) Quarantine {
	q := Quarantine{
		InjectionPoint: run.InjectionPoint,
		Strategy:       run.Strategy,
		Arg:            run.Arg,
		Status:         run.Status,
		Retries:        run.Retries,
		Err:            run.Err,
	}
	if run.Escaped != nil {
		q.Kind = run.Escaped.Kind
	}
	return q
}

// checkBudget enforces the run budget over every execution the campaign
// will perform: the clean run plus one run per planned experiment (the
// default sweep has one experiment per point).
func checkBudget(experiments, maxRuns int) error {
	if experiments+1 > maxRuns {
		return fmt.Errorf("%w: %d points + 1 clean run > %d", ErrTooManyRuns, experiments, maxRuns)
	}
	return nil
}

// deadPointWarnings accumulates "point never fired" warnings, keeping the
// first MaxDeadPointWarnings verbatim and summarizing the rest.
type deadPointWarnings struct {
	kept  []string
	total int
}

func (w *deadPointWarnings) add(ip int) {
	w.total++
	if len(w.kept) < MaxDeadPointWarnings {
		w.kept = append(w.kept, fmt.Sprintf(
			"point %d never fired: workload is nondeterministic or an earlier organic failure cut the run short",
			ip))
	}
}

func (w *deadPointWarnings) list() []string {
	if w.total > len(w.kept) {
		return append(w.kept, fmt.Sprintf(
			"...and %d more points never fired (%d dead points in total)",
			w.total-len(w.kept), w.total))
	}
	return w.kept
}

type execution struct {
	run    Run
	calls  map[string]int64
	points int
	trace  []core.PointInfo
	cache  core.SnapshotCacheStats
}

// profile packages what the clean execution discovered for the
// perturbation planners.
func (e execution) profile(p *Program) Profile {
	return Profile{
		TotalPoints: e.points,
		Calls:       e.calls,
		Trace:       e.trace,
		Program:     p,
	}
}

// newSession builds the injector session realizing one experiment.
func newSession(p *Program, ex Experiment, opts Options) *core.Session {
	cfg := core.Config{
		Registry:       p.Registry,
		Inject:         true,
		InjectionPoint: ex.point,
		Trigger:        ex.trigger,
		Oblivious:      ex.oblivious,
		TracePoints:    ex.trace,
		Detect:         true,
		Snapshot:       opts.Snapshot,
		Mask:           len(opts.Mask) > 0,
		MaskMethods:    opts.Mask,
		Strategy:       opts.MaskStrategy,
		MaskStrategies: opts.MaskStrategies,
		ExceptionFree:  opts.ExceptionFree,
		Serialize:      opts.Serialize,
	}
	if ex.exitMethod != "" {
		method, call := ex.exitMethod, ex.exitCall
		cfg.ExitFire = func(m string, c int64) (fault.Kind, bool) {
			if m == method && c == call {
				return fault.RuntimeError, true
			}
			return "", false
		}
	}
	return core.NewSession(cfg)
}

// workload returns the (possibly repeated) body of one injector run.
func workload(p *Program, opts Options) func() {
	repeats := opts.Repeats
	if repeats < 1 {
		repeats = 1
	}
	return func() {
		for i := 0; i < repeats; i++ {
			p.Run()
		}
	}
}

// collect packages what one finished session observed.
func collect(session *core.Session, ex Experiment, escaped *fault.Exception) execution {
	return execution{
		run: Run{
			InjectionPoint: ex.Key.Point,
			Strategy:       ex.Key.Strategy,
			Arg:            ex.Key.Arg,
			Injected:       session.Injected(),
			Escaped:        escaped,
			Marks:          session.Marks(),
			MaskStats:      session.MaskStats(),
		},
		calls:  session.Calls(),
		points: session.Point(),
		trace:  session.PointTrace(),
		cache:  session.SnapshotCacheStats(),
	}
}

// MaskStatTotals sums the per-method masking overhead across every run of
// the campaign; nil when nothing was masked.
func (r *Result) MaskStatTotals() map[string]core.MaskStat {
	var totals map[string]core.MaskStat
	for _, run := range r.Runs {
		for name, st := range run.MaskStats {
			if totals == nil {
				totals = make(map[string]core.MaskStat)
			}
			t := totals[name]
			t.Calls += st.Calls
			t.Bytes += st.Bytes
			t.Rollbacks += st.Rollbacks
			totals[name] = t
		}
	}
	return totals
}

// cleanRun performs the space-sizing clean execution. Supervised
// campaigns run it under the watchdog, but a clean run that still hangs
// or crashes after its retries is a hard error — without it there is no
// point space to quarantine within. Unsupervised sequential campaigns
// keep the legacy exclusive global session; everything else runs scoped.
func cleanRun(ctx context.Context, p *Program, opts Options, scoped bool) (execution, error) {
	if err := ctx.Err(); err != nil {
		return execution{}, err
	}
	ex := cleanExperiment(opts)
	if opts.supervised() {
		out, err := supervise(ctx, p, ex, opts)
		if err != nil {
			return execution{}, err
		}
		if out.run.Status != RunOK {
			return execution{}, fmt.Errorf("inject: %s after %d retries: %s",
				out.run.Status, out.run.Retries, out.run.Err)
		}
		return out, nil
	}
	if scoped {
		return executeScoped(p, ex, opts), nil
	}
	return execute(p, ex, opts)
}

// needsDiffRecovery reports whether a fingerprint-mode run recorded a
// non-atomic mark without a diff path. Capture-mode non-atomic marks
// always carry a non-empty Diff, so this is precisely the set of runs the
// recovery pass must replay.
func needsDiffRecovery(run Run) bool {
	for _, m := range run.Marks {
		if !m.Atomic && m.Diff == "" {
			return true
		}
	}
	return false
}

// execute performs one injector run with the given threshold on the legacy
// exclusive global session, catching the exception that escapes the
// workload's top level. Under fingerprint snapshots, a run that records a
// non-atomic mark is deterministically re-executed in capture mode to
// recover the human-readable diff paths; the replay replaces the run
// wholesale, so the result is byte-identical to an all-capture campaign.
func execute(p *Program, ex Experiment, opts Options) (execution, error) {
	out, err := executeGlobal(p, ex, opts)
	if err == nil && opts.Snapshot.Fingerprinted() && needsDiffRecovery(out.run) {
		opts.Snapshot = core.SnapshotCapture
		replay, rerr := executeGlobal(p, ex, opts)
		if rerr == nil {
			// The replay replaces the run wholesale; only the cache
			// counters of the discarded fingerprint pass carry over.
			replay.cache.Add(out.cache)
		}
		return replay, rerr
	}
	return out, err
}

// executeGlobal is one attempt of execute on the exclusive global session.
func executeGlobal(p *Program, ex Experiment, opts Options) (execution, error) {
	session := newSession(p, ex, opts)
	if err := core.Install(session); err != nil {
		return execution{}, err
	}
	defer core.Uninstall(session)
	escaped := runGuarded(workload(p, opts))
	return collect(session, ex, escaped), nil
}

// executeScoped performs one injector run on a session bound to the
// calling goroutine, so any number of runs may proceed concurrently on
// different goroutines. Unlike execute it cannot fail: scoped sessions
// need no exclusive slot. Fingerprint-mode runs with non-atomic marks are
// replayed in capture mode exactly as in execute; sitting here, the
// recovery pass also covers parallel workers and supervised attempts
// (a crashed attempt keeps its marks for triage, so it too is replayed).
func executeScoped(p *Program, ex Experiment, opts Options) execution {
	out := executeScopedOnce(p, ex, opts)
	if opts.Snapshot.Fingerprinted() && needsDiffRecovery(out.run) {
		// A supervised attempt that crashed with a foreign panic belongs to
		// the supervisor's retry policy, not the recovery pass: replaying
		// here would consume a retry the workload's misbehavior hook never
		// sees. The supervisor recovers diffs for the marks it ultimately
		// keeps (see quarantined).
		if opts.supervised() && out.run.Escaped != nil && out.run.Escaped.Foreign {
			return out
		}
		opts.Snapshot = core.SnapshotCapture
		replay := executeScopedOnce(p, ex, opts)
		replay.cache.Add(out.cache)
		return replay
	}
	return out
}

// executeScopedOnce is one attempt of executeScoped.
func executeScopedOnce(p *Program, ex Experiment, opts Options) execution {
	session := newSession(p, ex, opts)
	var escaped *fault.Exception
	session.Bind(func() {
		escaped = runGuarded(workload(p, opts))
	})
	return collect(session, ex, escaped)
}

// runGuarded invokes the workload and converts an escaping panic into the
// exception it carries.
func runGuarded(run func()) (escaped *fault.Exception) {
	defer func() {
		if r := recover(); r != nil {
			escaped = fault.From(r)
		}
	}()
	run()
	return nil
}
