// Perturbation models: pluggable fault strategies over the injection
// grid. The paper's detector knows one experiment — inject one exception
// at the first activation of one point — which misses non-atomicity that
// only shows up under richer fault shapes (TripleAgent's perturbation
// agents, the failure-oblivious computing literature). A Perturbation
// plans extra experiments from the clean run's profile; each experiment
// is one injector execution with its own session configuration, and its
// identity — the RunKey — carries a strategy coordinate so journaling,
// resume, chunk shipping and the drift gate all compose per-strategy
// without a format fork (default-strategy keys serialize exactly as
// before, so legacy journals decode unchanged).
package inject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// RunKey identifies one experiment within a campaign: the perturbation
// strategy ("" is the default first-activation model), the primary
// injection-point coordinate, a strategy-specific argument (the N of
// nth-activation, the second point of a burst pair, the call ordinal of a
// deferred-cleanup fault; 0 when unused), and — for concurrent campaigns —
// the schedule identifier (0 for every single-threaded run, which is what
// keeps legacy keys and their serializations unchanged). The zero RunKey
// is the clean run.
type RunKey struct {
	Strategy string
	Point    int
	Arg      int
	Sched    int
}

// Less orders keys deterministically: strategy, then point, then arg,
// then schedule. The default strategy ("") sorts first, so an all-default
// key set orders purely by point — what keeps legacy chunk encodings
// byte-identical.
func (k RunKey) Less(o RunKey) bool {
	if k.Strategy != o.Strategy {
		return k.Strategy < o.Strategy
	}
	if k.Point != o.Point {
		return k.Point < o.Point
	}
	if k.Arg != o.Arg {
		return k.Arg < o.Arg
	}
	return k.Sched < o.Sched
}

// String renders the key for reports and errors. Default-strategy keys
// print as the historical "point N", keeping error and warning text of
// perturbation-free campaigns unchanged; schedule-bearing keys append
// their schedule coordinate.
func (k RunKey) String() string {
	if k.Strategy == "" {
		return fmt.Sprintf("point %d", k.Point)
	}
	if k.Sched != 0 {
		return fmt.Sprintf("%s[%d,%d]#%d", k.Strategy, k.Point, k.Arg, k.Sched)
	}
	return fmt.Sprintf("%s[%d,%d]", k.Strategy, k.Point, k.Arg)
}

// Key returns the run's identity within its campaign.
func (r Run) Key() RunKey {
	return RunKey{Strategy: r.Strategy, Point: r.InjectionPoint, Arg: r.Arg, Sched: r.Sched}
}

// Profile is what one clean run discovered about the workload — the
// input perturbation strategies plan their experiment grids from.
type Profile struct {
	// TotalPoints is the clean run's potential-injection-point count.
	TotalPoints int
	// Calls is the clean run's per-method call count.
	Calls map[string]int64
	// Trace holds one (method, kind) entry per global point, recorded only
	// when the campaign has perturbations (core.Config.TracePoints).
	Trace []core.PointInfo
	// Program points back at the subject (registry, defer facts).
	Program *Program
}

// Experiment is one planned injector execution: its identity plus the
// session configuration that realizes it.
type Experiment struct {
	// Key is the experiment's identity in journals, chunks and resume.
	Key RunKey

	// point is the InjectionPoint threshold for threshold-driven
	// experiments (the default sweep and the oblivious model).
	point int
	// trigger drives trigger-based experiments (nth-activation, burst).
	trigger core.Trigger
	// exitMethod/exitCall target a deferred-cleanup fault: the fault fires
	// in the epilogue of exitMethod's exitCall-th invocation.
	exitMethod string
	exitCall   int64
	// oblivious swallows injected exceptions at the handler boundary.
	oblivious bool
	// trace records the per-point trace (the clean profiling run only).
	trace bool
}

// Perturbation is one pluggable fault strategy: it plans the experiments
// the campaign executes on top of the always-on default sweep. Plans must
// be deterministic functions of the profile — the same clean run must
// yield the same experiment list on every host, which is what makes
// multi-strategy campaigns resumable and dispatchable byte-identically.
type Perturbation interface {
	// Name is the strategy coordinate recorded in run keys ("nth",
	// "burst", "defer", "oblivious").
	Name() string
	// Plan returns the strategy's experiments for one clean-run profile.
	Plan(prof Profile) []Experiment
}

// Default grid bounds. Burst pairs grow quadratically with the point
// space and deferred-cleanup experiments with call counts, so both
// strategies are budgeted; the budgets are deterministic (stride
// sampling), not random.
const (
	// DefaultNth is the activation sweep depth of "nth" without an
	// explicit =N.
	DefaultNth = 3
	// DefaultBurstBudget caps the pair grid of "burst" without an
	// explicit =N.
	DefaultBurstBudget = 128
	// deferCallSweep bounds how many call ordinals of each defer-bearing
	// method the "defer" strategy targets.
	deferCallSweep = 2
)

// NthActivation fires the fault at the Nth activation of a static
// injection site — a (method, exception-kind) pair — sweeping n from 1 to
// min(N, the site's clean-run activation count). Site-targeted runs stay
// meaningful when the global point numbering drifts (a caught organic
// failure upstream shifts global points but not a site's own activation
// ordinals), and the grid is bounded by sites × N instead of the full
// dynamic point space.
type NthActivation struct {
	// N is the sweep depth per site.
	N int
}

// Name implements Perturbation.
func (NthActivation) Name() string { return "nth" }

// Plan implements Perturbation: sites are enumerated in first-occurrence
// order of the clean trace; experiment (site i, n) fires at the n-th
// activation of site i.
func (p NthActivation) Plan(prof Profile) []Experiment {
	n := p.N
	if n <= 0 {
		n = DefaultNth
	}
	type site struct {
		method string
		kind   fault.Kind
		hits   int
	}
	var sites []site
	index := make(map[core.PointInfo]int)
	for _, pi := range prof.Trace {
		if i, ok := index[pi]; ok {
			sites[i].hits++
			continue
		}
		index[pi] = len(sites)
		sites = append(sites, site{method: pi.Method, kind: pi.Kind, hits: 1})
	}
	var exps []Experiment
	for i, st := range sites {
		depth := st.hits
		if depth > n {
			depth = n
		}
		for a := 1; a <= depth; a++ {
			exps = append(exps, Experiment{
				Key:     RunKey{Strategy: p.Name(), Point: i + 1, Arg: a},
				trigger: nthTrigger{method: st.method, kind: st.kind, n: a},
			})
		}
	}
	return exps
}

// nthTrigger fires at the n-th activation of one (method, kind) site.
type nthTrigger struct {
	method string
	kind   fault.Kind
	n      int
}

func (t nthTrigger) ShouldFire(point int, method string, kind fault.Kind, activation int) bool {
	return method == t.method && kind == t.kind && activation == t.n
}

// Burst fires two faults per execution: one at global point p1 and — if
// the workload catches the first and keeps running — a second at global
// point p2. The second fault lands during recovery (a retry loop, a
// cleanup path, the code after a guard), which is exactly the state a
// single first-activation fault can never reach. The pair grid
// (p1 < p2 ≤ TotalPoints) is capped by Budget with deterministic stride
// sampling over the lexicographic pair order.
type Burst struct {
	// Budget caps the number of pairs (0 = DefaultBurstBudget).
	Budget int
}

// Name implements Perturbation.
func (Burst) Name() string { return "burst" }

// Plan implements Perturbation.
func (p Burst) Plan(prof Profile) []Experiment {
	budget := p.Budget
	if budget <= 0 {
		budget = DefaultBurstBudget
	}
	t := prof.TotalPoints
	total := t * (t - 1) / 2
	take := total
	if take > budget {
		take = budget
	}
	exps := make([]Experiment, 0, take)
	for k := 0; k < take; k++ {
		idx := k
		if total > budget {
			// Deterministic stride sample: the k-th of `budget` evenly
			// spaced indices into the lexicographic pair order.
			idx = k * total / budget
		}
		p1, p2 := unrankPair(idx, t)
		exps = append(exps, Experiment{
			Key:     RunKey{Strategy: p.Name(), Point: p1, Arg: p2},
			trigger: burstTrigger{p1: p1, p2: p2},
		})
	}
	return exps
}

// unrankPair maps a lexicographic index to the pair (p1, p2) with
// 1 <= p1 < p2 <= total.
func unrankPair(idx, total int) (int, int) {
	for p1 := 1; p1 < total; p1++ {
		c := total - p1
		if idx < c {
			return p1, p1 + 1 + idx
		}
		idx -= c
	}
	return total - 1, total
}

// burstTrigger fires at two global counter values. The session counter
// keeps advancing after a caught fault, so p2 is reachable during the
// workload's recovery from p1.
type burstTrigger struct{ p1, p2 int }

func (t burstTrigger) ShouldFire(point int, method string, kind fault.Kind, activation int) bool {
	return point == t.p1 || point == t.p2
}

// DeferredCleanup delays the fault until the workload is inside a
// deferred/cleanup region: the fault fires in the woven wrapper's
// epilogue — after the method body committed its effects — of each
// defer-bearing method, sweeping the first deferCallSweep call ordinals.
// Defer-bearing methods come from the weaver's MethodFacts
// (Program.DeferMethods); a program without facts falls back to every
// non-constructor method the clean run observed, since every woven
// wrapper epilogue is itself deferred code.
type DeferredCleanup struct{}

// Name implements Perturbation.
func (DeferredCleanup) Name() string { return "defer" }

// Plan implements Perturbation.
func (p DeferredCleanup) Plan(prof Profile) []Experiment {
	eligible := prof.Program.DeferMethods
	if len(eligible) == 0 {
		eligible = make(map[string]bool, len(prof.Calls))
		for name := range prof.Calls {
			info := prof.Program.Registry.Info(name)
			if info != nil && info.Ctor {
				continue
			}
			eligible[name] = true
		}
	}
	names := make([]string, 0, len(eligible))
	for name := range eligible {
		if eligible[name] && prof.Calls[name] > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var exps []Experiment
	for i, name := range names {
		sweep := prof.Calls[name]
		if sweep > deferCallSweep {
			sweep = deferCallSweep
		}
		for call := int64(1); call <= sweep; call++ {
			exps = append(exps, Experiment{
				Key:        RunKey{Strategy: p.Name(), Point: i + 1, Arg: int(call)},
				exitMethod: name,
				exitCall:   call,
			})
		}
	}
	return exps
}

// Oblivious replays the default sweep with failure-oblivious handling:
// the fault fires at each global point, the nearest receiver-bearing
// wrapper records its atomicity mark and then swallows the exception
// (its method returns zero values), and the workload runs on — the
// classification then says whether the object graph was already broken
// at the moment the failure was discarded.
type Oblivious struct{}

// Name implements Perturbation.
func (Oblivious) Name() string { return "oblivious" }

// Plan implements Perturbation.
func (p Oblivious) Plan(prof Profile) []Experiment {
	exps := make([]Experiment, 0, prof.TotalPoints)
	for pt := 1; pt <= prof.TotalPoints; pt++ {
		exps = append(exps, Experiment{
			Key:       RunKey{Strategy: p.Name(), Point: pt, Arg: 0},
			point:     pt,
			oblivious: true,
		})
	}
	return exps
}

// PerturbationNames lists the parseable strategy names.
func PerturbationNames() []string { return []string{"first", "nth", "burst", "defer", "oblivious"} }

// ParsePerturbations parses a -perturb flag value: a comma-separated
// strategy list like "nth=3,burst,oblivious". "first" names the always-on
// default sweep and adds nothing; "nth" defaults to N=3 and "burst" to a
// 128-pair budget, both overridable with =N. An empty string means no
// extra strategies.
func ParsePerturbations(s string) ([]Perturbation, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Perturbation
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		name, argStr, hasArg := strings.Cut(part, "=")
		arg := 0
		if hasArg {
			v, err := strconv.Atoi(argStr)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("inject: perturbation %q: argument must be a positive integer", part)
			}
			arg = v
		}
		if seen[name] {
			return nil, fmt.Errorf("inject: duplicate perturbation %q", name)
		}
		seen[name] = true
		switch name {
		case "first":
			if hasArg {
				return nil, fmt.Errorf("inject: perturbation %q takes no argument", name)
			}
			// The default sweep always runs; listing it is a no-op.
		case "nth":
			out = append(out, NthActivation{N: arg})
		case "burst":
			out = append(out, Burst{Budget: arg})
		case "defer", "oblivious":
			if hasArg {
				return nil, fmt.Errorf("inject: perturbation %q takes no argument", name)
			}
			if name == "defer" {
				out = append(out, DeferredCleanup{})
			} else {
				out = append(out, Oblivious{})
			}
		default:
			return nil, fmt.Errorf("inject: unknown perturbation %q (have: %s)", name, strings.Join(PerturbationNames(), ", "))
		}
	}
	return out, nil
}

// planExperiments builds the campaign's full experiment list: the default
// first-activation sweep over every point, then each strategy's grid in
// option order. The list is a pure function of the clean profile and the
// options, so sequential, parallel, resumed and dispatched campaigns all
// execute the identical plan.
func planExperiments(prof Profile, opts Options) []Experiment {
	exps := make([]Experiment, 0, prof.TotalPoints)
	for pt := 1; pt <= prof.TotalPoints; pt++ {
		exps = append(exps, Experiment{Key: RunKey{Point: pt}, point: pt})
	}
	for _, pert := range opts.Perturbations {
		exps = append(exps, pert.Plan(prof)...)
	}
	return exps
}

// cleanExperiment is the profiling run: threshold 0 never fires, and the
// point trace is recorded when strategies will need it.
func cleanExperiment(opts Options) Experiment {
	return Experiment{trace: len(opts.Perturbations) > 0}
}
