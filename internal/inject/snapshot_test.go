package inject

import (
	"context"
	"reflect"
	"testing"

	"failatomic/internal/core"
)

// TestFingerprintCampaignMatchesCapture is the byte-identity contract of
// the fingerprint-first engine: a campaign under the default fingerprint
// snapshots — with its deterministic diff-recovery replays — produces a
// Result deeply equal to an all-capture campaign, Mark.Diff strings
// included.
func TestFingerprintCampaignMatchesCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		name := map[int]string{1: "sequential", 4: "parallel"}[workers]
		t.Run(name, func(t *testing.T) {
			fp, err := Campaign(context.Background(), testProgram(), Options{
				Parallelism: workers,
				Snapshot:    core.SnapshotFingerprint,
			})
			if err != nil {
				t.Fatal(err)
			}
			cap, err := Campaign(context.Background(), testProgram(), Options{
				Parallelism: workers,
				Snapshot:    core.SnapshotCapture,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fp.Runs, cap.Runs) {
				t.Fatalf("fingerprint campaign runs differ from capture:\n got %+v\nwant %+v", fp.Runs, cap.Runs)
			}
			if fp.Injections != cap.Injections || fp.TotalPoints != cap.TotalPoints {
				t.Fatalf("campaign totals differ: fp=%d/%d capture=%d/%d",
					fp.Injections, fp.TotalPoints, cap.Injections, cap.TotalPoints)
			}
			if !reflect.DeepEqual(fp.Warnings, cap.Warnings) {
				t.Fatalf("warnings differ: %v vs %v", fp.Warnings, cap.Warnings)
			}
		})
	}
}

// TestFingerprintNoCacheCampaignIdentity: disabling the incremental
// subgraph cache is invisible in campaign output — runs, totals and
// warnings match both the cached fingerprint engine and capture, and the
// nocache engine reports no cache traffic while the default one does.
func TestFingerprintNoCacheCampaignIdentity(t *testing.T) {
	run := func(mode core.SnapshotMode) *Result {
		t.Helper()
		res, err := Campaign(context.Background(), testProgram(), Options{Snapshot: mode})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cached := run(core.SnapshotFingerprint)
	nocache := run(core.SnapshotFingerprintNoCache)
	cap := run(core.SnapshotCapture)
	if !reflect.DeepEqual(nocache.Runs, cached.Runs) || !reflect.DeepEqual(nocache.Runs, cap.Runs) {
		t.Fatal("fingerprint-nocache campaign runs differ from cached/capture")
	}
	if !reflect.DeepEqual(nocache.Warnings, cached.Warnings) {
		t.Fatalf("warnings differ: %v vs %v", nocache.Warnings, cached.Warnings)
	}
	if nocache.SnapshotCache != (core.SnapshotCacheStats{}) {
		t.Errorf("nocache campaign reported cache stats %+v, want zeros", nocache.SnapshotCache)
	}
	if cached.SnapshotCache.Misses == 0 {
		t.Errorf("cached campaign reported no cache traffic: %+v", cached.SnapshotCache)
	}
}

// TestFingerprintRecoveryFillsEveryDiff asserts the recovery invariant
// directly: after a default-mode campaign, no recorded mark is non-atomic
// with an empty diff (the recovery pass replaced every such run).
func TestFingerprintRecoveryFillsEveryDiff(t *testing.T) {
	res, err := Campaign(context.Background(), testProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sawNonAtomic := false
	for _, run := range res.Runs {
		for _, m := range run.Marks {
			if !m.Atomic {
				sawNonAtomic = true
				if m.Diff == "" {
					t.Fatalf("point %d: non-atomic mark %q has no diff (recovery missed it)", run.InjectionPoint, m.Method)
				}
			}
		}
	}
	if !sawNonAtomic {
		t.Fatal("test program recorded no non-atomic marks; the recovery path was not exercised")
	}
}

// TestSupervisedFingerprintMatchesCapture extends the identity through
// the watchdog/retry layer (scoped sessions, fresh goroutine per run).
func TestSupervisedFingerprintMatchesCapture(t *testing.T) {
	fp, err := Campaign(context.Background(), testProgram(), Options{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	cap, err := Campaign(context.Background(), testProgram(), Options{MaxRetries: 1, Snapshot: core.SnapshotCapture})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fp.Runs, cap.Runs) {
		t.Fatalf("supervised fingerprint runs differ from capture:\n got %+v\nwant %+v", fp.Runs, cap.Runs)
	}
}
