package inject

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// parallelCampaign is the Parallelism > 1 implementation of Campaign.
// Each injector run constructs fresh objects and its own session, so the
// campaign space (one run per injection point, Step 3) is embarrassingly
// parallel; the only shared state the sequential design had was the
// exclusive global session slot. Workers here bind a private session to
// their goroutine instead (core.Session.Bind) and claim points from an
// atomic cursor; results are merged in point order, so a deterministic
// workload yields a Result identical to the sequential campaign's.
func parallelCampaign(p *Program, opts Options, maxRuns int) (*Result, error) {
	// The clean run must finish first — it sizes the injection space.
	clean := executeScoped(p, 0, opts)
	res := &Result{
		Program:     p,
		CleanCalls:  clean.calls,
		TotalPoints: clean.points,
	}
	if err := checkBudget(res.TotalPoints, maxRuns); err != nil {
		return nil, err
	}

	total := res.TotalPoints
	workers := opts.Parallelism
	if workers > total {
		workers = total
	}

	// outs[ip] is written by exactly one worker; index 0 is the clean run.
	outs := make([]execution, total+1)
	outs[0] = clean
	var (
		next     atomic.Int64 // next injection point to claim
		budget   atomic.Int64 // executions performed, clean run included
		stop     atomic.Bool  // first-error cancellation flag
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	budget.Store(1) // the clean run already spent one execution
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ip := int(next.Add(1))
				if ip > total {
					return
				}
				// The up-front checkBudget guard makes this unreachable for
				// a fixed point space; it hard-stops the pool if the space
				// was undercounted (defense in depth for the shared budget).
				if budget.Add(1) > int64(maxRuns) {
					fail(fmt.Errorf("%w: execution %d > %d", ErrTooManyRuns, budget.Load(), maxRuns))
					return
				}
				outs[ip] = executeScoped(p, ip, opts)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Deterministic merge: Runs, Injections and warnings are accumulated
	// in point order regardless of which worker ran which point.
	res.Runs = make([]Run, 0, total+1)
	res.Runs = append(res.Runs, clean.run)
	var dead deadPointWarnings
	for ip := 1; ip <= total; ip++ {
		if outs[ip].run.Injected != nil {
			res.Injections++
		} else {
			dead.add(ip)
		}
		res.Runs = append(res.Runs, outs[ip].run)
	}
	res.Warnings = dead.list()
	return res, nil
}
