package inject

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// parallelCampaign is the Parallelism > 1 implementation of Campaign.
// Each injector run constructs fresh objects and its own session, so the
// campaign space (one run per injection point, Step 3) is embarrassingly
// parallel; the only shared state the sequential design had was the
// exclusive global session slot. Workers here bind a private session to
// their goroutine instead (core.Session.Bind) and claim points from an
// atomic cursor; results are merged in point order, so a deterministic
// workload yields a Result identical to the sequential campaign's.
//
// Failure handling is two-tier: per-point failures (hangs, foreign-panic
// crashes) are retried and quarantined by the supervisor and never cancel
// the pool by themselves; only campaign-level failures — cancellation, a
// blown run or quarantine budget, a journal write error — stop every
// worker.
func parallelCampaign(ctx context.Context, p *Program, opts Options, maxRuns int) (*Result, error) {
	// The clean run must finish first — it sizes the injection space.
	clean, err := cleanRun(ctx, p, opts, true)
	if err != nil {
		return nil, fmt.Errorf("clean run: %w", err)
	}
	res := &Result{
		Program:     p,
		CleanCalls:  clean.calls,
		TotalPoints: clean.points,
	}
	exps := planExperiments(clean.profile(p), opts)
	if err := checkBudget(len(exps), maxRuns); err != nil {
		return nil, err
	}
	if err := validateCompleted(opts.Completed, exps, res.TotalPoints); err != nil {
		return nil, err
	}
	if _, journaled := opts.Completed[RunKey{}]; !journaled {
		if err := notifyRun(opts, clean.run); err != nil {
			return nil, err
		}
	}

	total := len(exps)
	workers := opts.Parallelism
	if workers > total {
		workers = total
	}

	// outs[i] is written by exactly one worker; index 0 is the clean run
	// and index i is experiment exps[i-1].
	outs := make([]execution, total+1)
	outs[0] = clean
	var (
		next        atomic.Int64 // next experiment index to claim (1-based)
		budget      atomic.Int64 // executions performed, clean run included
		quarantines atomic.Int64 // early-stop mirror of the merge-time tally
		stop        atomic.Bool  // campaign-level cancellation flag
		errOnce     sync.Once
		firstErr    error
		wg          sync.WaitGroup
	)
	budget.Store(1) // the clean run already spent one execution
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1))
				if i > total {
					return
				}
				ex := exps[i-1]
				if err := ctx.Err(); err != nil {
					fail(fmt.Errorf("inject: campaign interrupted before %s: %w", ex.Key, err))
					return
				}
				out, journaled, err := parallelExperimentRun(ctx, p, ex, opts, &budget, maxRuns)
				if err != nil {
					fail(err)
					return
				}
				outs[i] = out
				if out.run.Status != RunOK {
					// Early stop only; the point-order merge below is the
					// authority and recomputes the same budget.
					if q := quarantines.Add(1); opts.MaxQuarantined > 0 && q > int64(opts.MaxQuarantined) {
						fail(fmt.Errorf("%w: %d points quarantined > %d", ErrQuarantineBudget, q, opts.MaxQuarantined))
						return
					}
				}
				if !journaled {
					if err := notifyRun(opts, out.run); err != nil {
						fail(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Deterministic merge: Runs, Injections, warnings and quarantines are
	// accumulated in plan order regardless of which worker ran which
	// experiment.
	res.Runs = make([]Run, 0, total+1)
	t := tally{res: res, max: opts.MaxQuarantined}
	if err := t.add(clean.run); err != nil {
		return nil, err
	}
	res.SnapshotCache.Add(clean.cache)
	for i := 1; i <= total; i++ {
		if err := t.add(outs[i].run); err != nil {
			return nil, err
		}
		res.SnapshotCache.Add(outs[i].cache)
	}
	t.finish()
	return res, nil
}

// parallelExperimentRun produces one experiment's execution inside a
// worker: spliced from the resume journal (free — no budget spend), or
// executed under the supervisor when one is configured.
func parallelExperimentRun(ctx context.Context, p *Program, ex Experiment, opts Options, budget *atomic.Int64, maxRuns int) (execution, bool, error) {
	if run, ok := opts.Completed[ex.Key]; ok {
		return execution{run: run}, true, nil
	}
	// The up-front checkBudget guard makes this unreachable for a fixed
	// experiment plan; it hard-stops the pool if the plan was undercounted
	// (defense in depth for the shared budget). Retries are deliberately
	// not charged: they are bounded by MaxRetries per experiment.
	if n := budget.Add(1); n > int64(maxRuns) {
		return execution{}, false, fmt.Errorf("%w: execution %d > %d", ErrTooManyRuns, n, maxRuns)
	}
	if opts.supervised() {
		out, err := supervise(ctx, p, ex, opts)
		return out, false, err
	}
	return executeScoped(p, ex, opts), false, nil
}
