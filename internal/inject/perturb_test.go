package inject

import (
	"context"
	"reflect"
	"testing"

	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// retrier is the test shape for the burst model: Put absorbs one failure
// (bumping Retried) and retries, so a single injected fault can never
// escape it mid-mutation — only a second fault during the retry can.
type retrier struct {
	S       *stack
	Retried int
}

func (r *retrier) Put(v int) {
	defer core.Enter(r, "retrier.Put")()
	if r.tryPut(v) {
		return
	}
	r.Retried++
	r.S.Push(v)
}

// tryPut is the uninstrumented retry seam.
func (r *retrier) tryPut(v int) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	r.S.Push(v)
	return true
}

func retryProgram() *Program {
	reg := core.NewRegistry().
		Method("retrier", "Put").
		Method("stack", "Push").
		Method("stack", "ensure", fault.CapacityExceeded)
	return &Program{
		Name:     "retry-test",
		Lang:     "java",
		Registry: reg,
		Run: func() {
			r := &retrier{S: &stack{}}
			r.Put(1)
			r.Put(2)
		},
	}
}

func allPerturbations() []Perturbation {
	return []Perturbation{
		NthActivation{N: 3},
		Burst{Budget: 1 << 20}, // every pair
		DeferredCleanup{},
		Oblivious{},
	}
}

func TestRunKeyLess(t *testing.T) {
	ordered := []RunKey{
		{},
		{Point: 1},
		{Point: 2},
		{Strategy: "burst", Point: 1, Arg: 2},
		{Strategy: "burst", Point: 1, Arg: 3},
		{Strategy: "burst", Point: 2, Arg: 3},
		{Strategy: "nth", Point: 1, Arg: 1},
	}
	for i := range ordered {
		for j := range ordered {
			if got := ordered[i].Less(ordered[j]); got != (i < j) {
				t.Errorf("%v.Less(%v) = %v, want %v", ordered[i], ordered[j], got, i < j)
			}
		}
	}
}

func TestRunKeyStringKeepsLegacyRendering(t *testing.T) {
	// Default-strategy keys must render as the historical "point N" so
	// error and warning text of perturbation-free campaigns is unchanged.
	if got := (RunKey{Point: 5}).String(); got != "point 5" {
		t.Fatalf("default key renders %q, want \"point 5\"", got)
	}
	if got := (RunKey{Strategy: "burst", Point: 2, Arg: 7}).String(); got != "burst[2,7]" {
		t.Fatalf("strategy key renders %q", got)
	}
}

func TestParsePerturbations(t *testing.T) {
	names := func(ps []Perturbation) []string {
		var out []string
		for _, p := range ps {
			out = append(out, p.Name())
		}
		return out
	}
	good := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"  ", nil},
		{"first", nil},
		{"nth", []string{"nth"}},
		{"nth=5", []string{"nth"}},
		{"burst=2", []string{"burst"}},
		{"defer,oblivious", []string{"defer", "oblivious"}},
		{"nth=3, burst, oblivious", []string{"nth", "burst", "oblivious"}},
	}
	for _, tc := range good {
		got, err := ParsePerturbations(tc.in)
		if err != nil {
			t.Errorf("ParsePerturbations(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(names(got), tc.want) {
			t.Errorf("ParsePerturbations(%q) = %v, want %v", tc.in, names(got), tc.want)
		}
	}
	for _, in := range []string{
		"nth,nth",     // duplicate
		"jitter",      // unknown
		"nth=0",       // non-positive argument
		"nth=x",       // non-numeric argument
		"defer=2",     // argument on an argument-less strategy
		"first=1",     // argument on the default sweep
		"oblivious=1", // argument on an argument-less strategy
	} {
		if _, err := ParsePerturbations(in); err == nil {
			t.Errorf("ParsePerturbations(%q) accepted, want error", in)
		}
	}
	// Parsed arguments must reach the strategy values.
	ps, err := ParsePerturbations("nth=7,burst=9")
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].(NthActivation).N != 7 || ps[1].(Burst).Budget != 9 {
		t.Fatalf("arguments lost: %+v", ps)
	}
}

func TestUnrankPairIsLexicographic(t *testing.T) {
	const total = 6
	idx := 0
	for p1 := 1; p1 < total; p1++ {
		for p2 := p1 + 1; p2 <= total; p2++ {
			g1, g2 := unrankPair(idx, total)
			if g1 != p1 || g2 != p2 {
				t.Fatalf("unrankPair(%d, %d) = (%d, %d), want (%d, %d)", idx, total, g1, g2, p1, p2)
			}
			idx++
		}
	}
}

func TestBurstPlanRespectsBudget(t *testing.T) {
	prof := Profile{TotalPoints: 100}
	exps := Burst{Budget: 10}.Plan(prof)
	if len(exps) != 10 {
		t.Fatalf("planned %d experiments, want 10", len(exps))
	}
	seen := map[RunKey]bool{}
	for _, ex := range exps {
		if ex.Key.Strategy != "burst" || ex.Key.Point >= ex.Key.Arg || ex.Key.Arg > 100 {
			t.Fatalf("bad burst key %v", ex.Key)
		}
		if seen[ex.Key] {
			t.Fatalf("duplicate pair %v in stride sample", ex.Key)
		}
		seen[ex.Key] = true
	}
}

func TestNthPlanBoundedBySiteHits(t *testing.T) {
	prof := Profile{
		Trace: []core.PointInfo{
			{Method: "a.M", Kind: fault.RuntimeError},
			{Method: "b.N", Kind: fault.RuntimeError},
			{Method: "a.M", Kind: fault.RuntimeError}, // site 1 hit twice
		},
	}
	exps := NthActivation{N: 5}.Plan(prof)
	// Site a.M has 2 activations, b.N has 1: the sweep is min(hits, N).
	want := []RunKey{
		{Strategy: "nth", Point: 1, Arg: 1},
		{Strategy: "nth", Point: 1, Arg: 2},
		{Strategy: "nth", Point: 2, Arg: 1},
	}
	var got []RunKey
	for _, ex := range exps {
		got = append(got, ex.Key)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("nth plan %v, want %v", got, want)
	}
}

func TestDeferPlanPrefersTaggedMethods(t *testing.T) {
	p := retryProgram()
	p.DeferMethods = map[string]bool{"retrier.Put": true}
	prof := Profile{
		Calls:   map[string]int64{"retrier.Put": 2, "stack.Push": 2, "stack.ensure": 2},
		Program: p,
	}
	exps := DeferredCleanup{}.Plan(prof)
	want := []RunKey{
		{Strategy: "defer", Point: 1, Arg: 1},
		{Strategy: "defer", Point: 1, Arg: 2},
	}
	var got []RunKey
	for _, ex := range exps {
		got = append(got, ex.Key)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("defer plan %v, want %v", got, want)
	}
}

func TestDeferPlanFallsBackToCalledMethods(t *testing.T) {
	prof := Profile{
		Calls:   map[string]int64{"retrier.Put": 1, "stack.Push": 1},
		Program: retryProgram(),
	}
	exps := DeferredCleanup{}.Plan(prof)
	// Without tags every called non-constructor method is eligible,
	// sorted by name.
	if len(exps) != 2 || exps[0].Key != (RunKey{Strategy: "defer", Point: 1, Arg: 1}) ||
		exps[0].exitMethod != "retrier.Put" || exps[1].exitMethod != "stack.Push" {
		t.Fatalf("fallback plan: %+v", exps)
	}
}

// TestPerturbedCampaignKeepsDefaultSweepIdentical: adding strategies must
// not change what the default first-activation sweep records — the
// baseline classification (and with it the drift gate and the §4.3 wrap
// plan) is independent of -perturb.
func TestPerturbedCampaignKeepsDefaultSweepIdentical(t *testing.T) {
	plain, err := Campaign(context.Background(), retryProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pert, err := Campaign(context.Background(), retryProgram(), Options{Perturbations: allPerturbations()})
	if err != nil {
		t.Fatal(err)
	}
	var defaults []Run
	for _, run := range pert.Runs {
		if run.Strategy == "" {
			defaults = append(defaults, run)
		}
	}
	if !reflect.DeepEqual(defaults, plain.Runs) {
		t.Fatal("default-sweep runs differ once strategies are added")
	}
}

// TestBurstEscapesRetrySeam pins the model's reason to exist: a single
// injected fault never escapes retrier.Put (the seam catches and retries
// it), but a burst pair lands its second fault inside the retry and
// unwinds out with Retried already advanced.
func TestBurstEscapesRetrySeam(t *testing.T) {
	res, err := Campaign(context.Background(), retryProgram(), Options{Perturbations: allPerturbations()})
	if err != nil {
		t.Fatal(err)
	}
	sawDefaultMark, sawBurstViolation := false, false
	for _, run := range res.Runs {
		for _, m := range run.Marks {
			if m.Method != "retrier.Put" {
				continue
			}
			switch run.Strategy {
			case "":
				sawDefaultMark = true
			case "burst":
				if !m.Atomic {
					sawBurstViolation = true
				}
			}
		}
	}
	if sawDefaultMark {
		t.Fatal("a single first-activation fault escaped the retry seam")
	}
	if !sawBurstViolation {
		t.Fatal("no burst pair exposed the retry seam's partial state")
	}
}

// TestObliviousRunsSwallowTheFault: under the failure-oblivious model
// the nearest enclosing receiver-bearing wrapper is the handler boundary
// that discards the injected exception. Faults below a wrapper are
// swallowed and the workload runs on; faults at a top-level method's own
// entry have no enclosing boundary and escape like any uncaught
// exception.
func TestObliviousRunsSwallowTheFault(t *testing.T) {
	res, err := Campaign(context.Background(), testProgram(), Options{Perturbations: []Perturbation{Oblivious{}}})
	if err != nil {
		t.Fatal(err)
	}
	n, swallowed := 0, 0
	topLevel := map[string]bool{"driver.Fill": true, "stack.PushSafe": true}
	for _, run := range res.Runs {
		if run.Strategy != "oblivious" {
			continue
		}
		n++
		if run.Injected == nil {
			t.Fatalf("oblivious run %s did not inject", run.Key())
		}
		if topLevel[run.Injected.Method] {
			if run.Escaped == nil {
				t.Fatalf("oblivious run %s: entry fault of a top-level method has no handler boundary and must escape", run.Key())
			}
			continue
		}
		if run.Escaped != nil {
			t.Fatalf("oblivious run %s let the fault escape past its wrapper: %v", run.Key(), run.Escaped)
		}
		swallowed++
	}
	if n != res.TotalPoints {
		t.Fatalf("oblivious replays %d points, want %d", n, res.TotalPoints)
	}
	if swallowed == 0 {
		t.Fatal("no oblivious run was swallowed")
	}
}

// TestPerturbedCampaignIsDeterministicEverywhere is the run-identity
// contract at campaign level: sequential, parallel and resumed
// multi-strategy campaigns produce the identical Result.
func TestPerturbedCampaignIsDeterministicEverywhere(t *testing.T) {
	opts := func() Options { return Options{Perturbations: allPerturbations()} }
	seq, err := Campaign(context.Background(), retryProgram(), opts())
	if err != nil {
		t.Fatal(err)
	}
	par4 := opts()
	par4.Parallelism = 4
	par, err := Campaign(context.Background(), retryProgram(), par4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.Runs, seq.Runs) {
		t.Fatal("parallel multi-strategy campaign diverged from sequential")
	}
	// Resume with half the runs already journaled: the splice must land
	// every completed strategy run in its planned slot.
	completed := map[RunKey]Run{}
	for _, run := range seq.Runs[:len(seq.Runs)/2] {
		completed[run.Key()] = run
	}
	resOpts := opts()
	resOpts.Completed = completed
	resumed, err := Campaign(context.Background(), retryProgram(), resOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Runs, seq.Runs) {
		t.Fatal("resumed multi-strategy campaign diverged from fresh run")
	}
}

// TestResumeRejectsForeignStrategyRuns: a journal written under different
// -perturb options holds keys outside this campaign's plan and must be
// refused instead of silently dropped.
func TestResumeRejectsForeignStrategyRuns(t *testing.T) {
	_, err := Campaign(context.Background(), retryProgram(), Options{
		Completed: map[RunKey]Run{
			{Strategy: "burst", Point: 1, Arg: 2}: {Strategy: "burst", InjectionPoint: 1, Arg: 2},
		},
	})
	if err == nil {
		t.Fatal("strategy runs from a differently-perturbed journal must be rejected")
	}
}
