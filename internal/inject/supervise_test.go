package inject

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"failatomic/internal/fault"
)

// misbehavingProgram wraps testProgram so that when the injected exception
// of the target point reaches the workload's top level, misbehave decides
// the run's fate (block, panic foreign, or re-panic r to behave normally).
// Every other point re-panics and behaves exactly like testProgram.
func misbehavingProgram(target int, misbehave func(attempt int, r any)) *Program {
	p := testProgram()
	inner := p.Run
	var attempts int32
	p.Run = func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if e, ok := r.(*fault.Exception); ok && e.Injected && e.Point == target {
				misbehave(int(atomic.AddInt32(&attempts, 1)), r)
				return
			}
			panic(r)
		}()
		inner()
	}
	return p
}

// parallelisms runs a subtest under the sequential and parallel campaign
// modes — supervision must behave identically in both.
func parallelisms(t *testing.T, f func(t *testing.T, workers int)) {
	t.Helper()
	for _, workers := range []int{1, 4} {
		name := "sequential"
		if workers > 1 {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) { f(t, workers) })
	}
}

// assertOthersMatchBaseline checks the acceptance criterion's second half:
// every non-quarantined point classifies exactly as in a clean campaign.
func assertOthersMatchBaseline(t *testing.T, res, baseline *Result, skip map[int]bool) {
	t.Helper()
	if len(res.Runs) != len(baseline.Runs) {
		t.Fatalf("run count %d != baseline %d", len(res.Runs), len(baseline.Runs))
	}
	for i, run := range res.Runs {
		if skip[run.InjectionPoint] {
			continue
		}
		if !reflect.DeepEqual(run, baseline.Runs[i]) {
			t.Errorf("point %d differs from baseline:\n got %+v\nwant %+v",
				run.InjectionPoint, run, baseline.Runs[i])
		}
	}
}

const hangPoint = 5

func TestSupervisorQuarantinesHangingPoint(t *testing.T) {
	parallelisms(t, func(t *testing.T, workers int) {
		baseline, err := Campaign(context.Background(), testProgram(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		gate := make(chan struct{})
		t.Cleanup(func() { close(gate) }) // release the abandoned goroutines
		p := misbehavingProgram(hangPoint, func(int, any) { <-gate })

		start := time.Now()
		res, err := Campaign(context.Background(), p, Options{
			Parallelism: workers,
			RunTimeout:  30 * time.Millisecond,
			MaxRetries:  1,
		})
		if err != nil {
			t.Fatal(err)
		}
		// 2 attempts x 30ms + backoff; anything near a second means the
		// watchdog did not fire.
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("campaign took %v — watchdog did not bound the hang", d)
		}
		want := []Quarantine{{
			InjectionPoint: hangPoint,
			Status:         RunHung,
			Retries:        1,
			Err:            "run exceeded RunTimeout 30ms",
		}}
		if !reflect.DeepEqual(res.Quarantined, want) {
			t.Fatalf("Quarantined = %+v, want %+v", res.Quarantined, want)
		}
		hung := res.Runs[hangPoint]
		if hung.Status != RunHung || hung.Marks != nil || hung.Escaped != nil {
			t.Fatalf("hung run must carry no session observations: %+v", hung)
		}
		if res.Injections != baseline.Injections-1 {
			t.Fatalf("Injections = %d, want baseline-1 = %d", res.Injections, baseline.Injections-1)
		}
		assertOthersMatchBaseline(t, res, baseline, map[int]bool{hangPoint: true})
	})
}

func TestSupervisorQuarantinesForeignPanic(t *testing.T) {
	parallelisms(t, func(t *testing.T, workers int) {
		baseline, err := Campaign(context.Background(), testProgram(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		p := misbehavingProgram(hangPoint, func(int, any) { panic("boom: corrupted state") })
		res, err := Campaign(context.Background(), p, Options{
			Parallelism: workers,
			MaxRetries:  2, // supervision without a watchdog: retries alone enable it
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Quarantined) != 1 {
			t.Fatalf("Quarantined = %+v, want exactly the foreign-panic point", res.Quarantined)
		}
		q := res.Quarantined[0]
		if q.InjectionPoint != hangPoint || q.Status != RunUndetermined || q.Retries != 2 {
			t.Fatalf("quarantine = %+v", q)
		}
		if !strings.Contains(q.Err, "boom: corrupted state") {
			t.Fatalf("quarantine must carry the panic message: %q", q.Err)
		}
		run := res.Runs[hangPoint]
		if run.Status != RunUndetermined || run.Escaped == nil || !run.Escaped.Foreign {
			t.Fatalf("crashed run must keep its foreign escape: %+v", run)
		}
		if run.Escaped.Stack == "" || strings.Contains(run.Escaped.Stack, "0x") {
			t.Fatalf("foreign escape must carry a normalized stack: %q", run.Escaped.Stack)
		}
		assertOthersMatchBaseline(t, res, baseline, map[int]bool{hangPoint: true})
	})
}

func TestSupervisorRetriesFlakyPoint(t *testing.T) {
	parallelisms(t, func(t *testing.T, workers int) {
		baseline, err := Campaign(context.Background(), testProgram(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		// First attempt crashes; the retry re-panics the injected exception
		// and the run completes normally.
		p := misbehavingProgram(hangPoint, func(attempt int, r any) {
			if attempt == 1 {
				panic("flaky: transient crash")
			}
			panic(r)
		})
		res, err := Campaign(context.Background(), p, Options{
			Parallelism: workers,
			RunTimeout:  5 * time.Second,
			MaxRetries:  3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Quarantined) != 0 {
			t.Fatalf("a point that succeeds on retry must not be quarantined: %+v", res.Quarantined)
		}
		run := res.Runs[hangPoint]
		if run.Retries != 1 || run.Status != RunOK {
			t.Fatalf("flaky run = %+v, want RunOK after 1 retry", run)
		}
		// Apart from the retry count, the recovered run is the baseline run.
		run.Retries = 0
		if !reflect.DeepEqual(run, baseline.Runs[hangPoint]) {
			t.Fatalf("recovered run differs from baseline:\n got %+v\nwant %+v", run, baseline.Runs[hangPoint])
		}
		if res.Injections != baseline.Injections {
			t.Fatalf("Injections = %d, want %d", res.Injections, baseline.Injections)
		}
		assertOthersMatchBaseline(t, res, baseline, map[int]bool{hangPoint: true})
	})
}

func TestSupervisorQuarantineBudget(t *testing.T) {
	parallelisms(t, func(t *testing.T, workers int) {
		// Two crashing points, budget of one.
		bad := map[int]bool{4: true, 7: true}
		p := testProgram()
		inner := p.Run
		p.Run = func() {
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if e, ok := r.(*fault.Exception); ok && e.Injected && bad[e.Point] {
					panic("bad point")
				}
				panic(r)
			}()
			inner()
		}
		_, err := Campaign(context.Background(), p, Options{
			Parallelism:    workers,
			MaxRetries:     1,
			MaxQuarantined: 1,
		})
		if !errors.Is(err, ErrQuarantineBudget) {
			t.Fatalf("err = %v, want ErrQuarantineBudget", err)
		}
		// With room for both, the campaign completes and reports them.
		res, err := Campaign(context.Background(), p, Options{
			Parallelism:    workers,
			MaxRetries:     1,
			MaxQuarantined: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Quarantined) != 2 ||
			res.Quarantined[0].InjectionPoint != 4 || res.Quarantined[1].InjectionPoint != 7 {
			t.Fatalf("Quarantined = %+v, want points 4 and 7 in order", res.Quarantined)
		}
	})
}

func TestSupervisedCampaignHonorsCancellation(t *testing.T) {
	parallelisms(t, func(t *testing.T, workers int) {
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		res, err := Campaign(ctx, testProgram(), Options{
			Parallelism: workers,
			RunTimeout:  time.Second,
			OnRun: func(Run) error {
				once.Do(cancel) // cancel as soon as the first run lands
				return nil
			},
		})
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("res=%v err=%v, want context.Canceled", res, err)
		}
	})
}

func TestCampaignSplicesCompletedRuns(t *testing.T) {
	parallelisms(t, func(t *testing.T, workers int) {
		p := testProgram()
		baseline, err := Campaign(context.Background(), p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Resume from a journal holding the clean run and the first half of
		// the points.
		completed := make(map[RunKey]Run)
		for _, run := range baseline.Runs[:len(baseline.Runs)/2] {
			completed[run.Key()] = run
		}
		var mu sync.Mutex
		notified := make(map[int]bool)
		res, err := Campaign(context.Background(), p, Options{
			Parallelism: workers,
			Completed:   completed,
			OnRun: func(r Run) error {
				mu.Lock()
				notified[r.InjectionPoint] = true
				mu.Unlock()
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Runs, baseline.Runs) {
			t.Fatalf("resumed campaign differs from baseline:\n got %+v\nwant %+v", res.Runs, baseline.Runs)
		}
		if res.Injections != baseline.Injections || !reflect.DeepEqual(res.Warnings, baseline.Warnings) {
			t.Fatalf("resumed tallies differ: injections %d/%d warnings %v/%v",
				res.Injections, baseline.Injections, res.Warnings, baseline.Warnings)
		}
		for key := range completed {
			if notified[key.Point] {
				t.Errorf("spliced point %d must not be re-journaled", key.Point)
			}
		}
		for ip := 0; ip <= res.TotalPoints; ip++ {
			if _, done := completed[RunKey{Point: ip}]; !done && !notified[ip] {
				t.Errorf("fresh point %d must be journaled", ip)
			}
		}
	})
}

func TestCampaignRejectsForeignJournal(t *testing.T) {
	// A journal holding points beyond the clean run's space means the
	// workload is nondeterministic or the journal belongs to another
	// program — resuming from it would corrupt the result silently.
	_, err := Campaign(context.Background(), testProgram(), Options{
		Completed: map[RunKey]Run{{Point: 999}: {InjectionPoint: 999}},
	})
	if err == nil || !strings.Contains(err.Error(), "resume journal") {
		t.Fatalf("err = %v, want resume-journal validation error", err)
	}
}
