package inject

import (
	"context"
	"fmt"
	"time"

	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// Per-run supervision (TripleAgent-style: supervise the program under
// injection rather than trust it). Each attempt executes on its own
// goroutine with a session bound to it; the supervisor waits for the
// result, the watchdog deadline, or cancellation, then retries with
// capped backoff and finally quarantines the point.
//
// Goroutine leak: Go cannot kill a goroutine, so an expired attempt is
// abandoned, not stopped. The leak is bounded by (MaxRetries+1) abandoned
// goroutines per quarantined point, and quarantined points are bounded by
// MaxQuarantined (or the point space). An abandoned goroutine keeps its
// own bound session alive but — because bindings are goroutine-keyed
// (core.Session.Bind) — can never touch another run's session, which is
// what makes abandoning safe at all.

// Retry backoff: capped exponential, small because injector runs are
// typically sub-millisecond and a flaky point usually needs only a beat.
const (
	retryBackoffBase = 2 * time.Millisecond
	retryBackoffCap  = 250 * time.Millisecond
)

// attemptVerdict classifies one supervised attempt.
type attemptVerdict int

const (
	attemptOK attemptVerdict = iota
	attemptHung
	attemptCrashed
)

// supervise runs one experiment under the watchdog/retry/quarantine
// policy. A quarantined run is reported through the returned run's
// Status, not an error; the error return is reserved for cancellation.
func supervise(ctx context.Context, p *Program, ex Experiment, opts Options) (execution, error) {
	for attempt := 0; ; attempt++ {
		out, verdict, err := superviseAttempt(ctx, p, ex, opts)
		if err != nil {
			return execution{}, err
		}
		if verdict == attemptOK {
			out.run.Retries = attempt
			return out, nil
		}
		if attempt >= opts.MaxRetries {
			return quarantined(p, ex, verdict, attempt, out, opts), nil
		}
		if err := backoff(ctx, attempt); err != nil {
			return execution{}, err
		}
	}
}

// superviseAttempt executes one attempt on a fresh bound-session goroutine
// and waits for it, the deadline, or cancellation.
func superviseAttempt(ctx context.Context, p *Program, ex Experiment, opts Options) (execution, attemptVerdict, error) {
	// Buffered so an attempt finishing after abandonment parks its result
	// and exits instead of leaking on the send.
	ch := make(chan execution, 1)
	go func() {
		defer func() {
			// runGuarded already catches workload panics; this catches a
			// panic in the engine itself (session setup, mark collection)
			// so it quarantines the point instead of killing the process.
			if r := recover(); r != nil {
				ch <- execution{run: Run{
					InjectionPoint: ex.Key.Point,
					Strategy:       ex.Key.Strategy,
					Arg:            ex.Key.Arg,
					Escaped:        fault.From(r),
				}}
			}
		}()
		ch <- executeScoped(p, ex, opts)
	}()
	var expire <-chan time.Time
	if opts.RunTimeout > 0 {
		t := time.NewTimer(opts.RunTimeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case out := <-ch:
		if e := out.run.Escaped; e != nil && e.Foreign {
			return out, attemptCrashed, nil
		}
		return out, attemptOK, nil
	case <-expire:
		return execution{}, attemptHung, nil
	case <-ctx.Done():
		return execution{}, attemptHung, fmt.Errorf("inject: campaign interrupted at %s: %w", ex.Key, ctx.Err())
	}
}

// quarantined builds the run recorded for a point the supervisor gave up
// on. A crashed run keeps its observations (Escaped carries the foreign
// panic's stack) for triage — the classifier skips them via Status. A
// hung run keeps nothing: its session is still owned by the abandoned
// goroutine and must not be read.
func quarantined(p *Program, ex Experiment, verdict attemptVerdict, retries int, last execution, opts Options) execution {
	if verdict == attemptHung {
		return execution{run: Run{
			InjectionPoint: ex.Key.Point,
			Strategy:       ex.Key.Strategy,
			Arg:            ex.Key.Arg,
			Status:         RunHung,
			Retries:        retries,
			Err:            fmt.Sprintf("run exceeded RunTimeout %v", opts.RunTimeout),
		}}
	}
	// The crashed run's marks are kept for triage, so fingerprint-mode
	// diffs are recovered here — one capture-mode replay, adopted only if
	// it reproduces a foreign crash (a deterministic crasher does; a flaky
	// one keeps the diffless original rather than a run it never had).
	if opts.Snapshot.Fingerprinted() && needsDiffRecovery(last.run) {
		opts.Snapshot = core.SnapshotCapture
		if replay := executeScopedOnce(p, ex, opts); replay.run.Escaped != nil && replay.run.Escaped.Foreign {
			last = replay
		}
	}
	last.run.Status = RunUndetermined
	last.run.Retries = retries
	last.run.Err = "foreign panic: " + last.run.Escaped.Error()
	return last
}

// backoff sleeps between retry attempts, abandoning early on cancellation.
func backoff(ctx context.Context, attempt int) error {
	d := retryBackoffBase << uint(attempt)
	if d <= 0 || d > retryBackoffCap {
		d = retryBackoffCap
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("inject: campaign interrupted: %w", ctx.Err())
	}
}
