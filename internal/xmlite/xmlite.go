// Package xmlite is a small hand-written XML parser, DOM and serializer —
// the substrate of the paper's four xml2* C++ applications (XML-to-TCP,
// XML-to-C-via-structural-conversion, XML-to-XML pipelines). It supports
// elements, attributes, text, self-closing tags, comments and the five
// predefined entities.
//
// The parser is written in the Self* compute-then-commit style: position
// state lives in the parser object, but DOM nodes are attached only after
// their subtree parsed completely, so most methods are failure atomic.
package xmlite

import (
	"strings"

	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// Node is a DOM node: *Element or *Text.
type Node interface {
	// nodeKind tags the node for debugging.
	nodeKind() string
}

// Attr is one element attribute.
type Attr struct {
	Name  string
	Value string
}

// Element is an XML element with attributes and children.
type Element struct {
	Name     string
	Attrs    []Attr
	Children []Node
}

//failatomic:ignore tag method
func (*Element) nodeKind() string { return "element" }

// Text is a character-data node.
type Text struct {
	Data string
}

//failatomic:ignore tag method
func (*Text) nodeKind() string { return "text" }

// Attr returns the value of the named attribute and whether it exists.
func (e *Element) Attr(name string) (string, bool) {
	defer core.Enter(e, "Element.Attr")()
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets or replaces an attribute.
func (e *Element) SetAttr(name, value string) {
	defer core.Enter(e, "Element.SetAttr")()
	for i := range e.Attrs {
		if e.Attrs[i].Name == name {
			e.Attrs[i].Value = value
			return
		}
	}
	e.Attrs = append(e.Attrs, Attr{Name: name, Value: value})
}

// ChildElements returns the element children in document order.
func (e *Element) ChildElements() []*Element {
	defer core.Enter(e, "Element.ChildElements")()
	var out []*Element
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok {
			out = append(out, el)
		}
	}
	return out
}

// TextContent concatenates all descendant text.
func (e *Element) TextContent() string {
	defer core.Enter(e, "Element.TextContent")()
	var b strings.Builder
	var walk func(n Node)
	walk = func(n Node) {
		switch v := n.(type) {
		case *Text:
			b.WriteString(v.Data)
		case *Element:
			for _, c := range v.Children {
				walk(c)
			}
		}
	}
	walk(e)
	return b.String()
}

// Find returns the first descendant element with the given name (depth
// first), or nil.
func (e *Element) Find(name string) *Element {
	defer core.Enter(e, "Element.Find")()
	for _, c := range e.Children {
		el, ok := c.(*Element)
		if !ok {
			continue
		}
		if el.Name == name {
			return el
		}
		if found := el.Find(name); found != nil {
			return found
		}
	}
	return nil
}

// Append adds a child node.
func (e *Element) Append(n Node) {
	defer core.Enter(e, "Element.Append")()
	if n == nil {
		fault.Throw(fault.IllegalElement, "Element.Append", "nil child")
	}
	e.Children = append(e.Children, n)
}

// RegisterDOM adds the DOM classes to a registry.
func RegisterDOM(r *core.Registry) {
	r.Method("Element", "Attr").
		Method("Element", "SetAttr").
		Method("Element", "ChildElements").
		Method("Element", "TextContent").
		Method("Element", "Find").
		Method("Element", "Append", fault.IllegalElement)
}
