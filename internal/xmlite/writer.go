package xmlite

import (
	"strings"

	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// Writer serializes a DOM back to XML text. It accumulates output in an
// exported buffer so the writer itself is a checkpointable component.
type Writer struct {
	Out    []byte
	Indent bool
	Depth  int
}

// NewWriter returns a writer; with indent set it pretty-prints.
func NewWriter(indent bool) *Writer {
	defer core.Enter(nil, "Writer.New")()
	return &Writer{Indent: indent}
}

// String returns the serialized document.
func (w *Writer) String() string {
	defer core.Enter(w, "Writer.String")()
	return string(w.Out)
}

// WriteDocument serializes root (with prolog) and returns the text.
func (w *Writer) WriteDocument(root *Element) string {
	defer core.Enter(w, "Writer.WriteDocument")()
	if root == nil {
		fault.Throw(fault.IllegalArgument, "Writer.WriteDocument", "nil root")
	}
	w.Raw(`<?xml version="1.0"?>`)
	if w.Indent {
		w.Raw("\n")
	}
	w.WriteElement(root)
	return w.String()
}

// WriteElement serializes one element subtree.
func (w *Writer) WriteElement(e *Element) {
	defer core.Enter(w, "Writer.WriteElement")()
	w.indent()
	w.Raw("<")
	w.Raw(e.Name)
	for _, a := range e.Attrs {
		w.Raw(" ")
		w.Raw(a.Name)
		w.Raw(`="`)
		w.Raw(Escape(a.Value))
		w.Raw(`"`)
	}
	if len(e.Children) == 0 {
		w.Raw("/>")
		w.newline()
		return
	}
	w.Raw(">")
	onlyText := true
	for _, c := range e.Children {
		if _, ok := c.(*Text); !ok {
			onlyText = false
			break
		}
	}
	if !onlyText {
		w.newline()
		w.Depth++
	}
	for _, c := range e.Children {
		switch v := c.(type) {
		case *Text:
			w.WriteText(v)
		case *Element:
			w.WriteElement(v)
		default:
			fault.Throw(fault.IllegalArgument, "Writer.WriteElement", "unknown node %T", c)
		}
	}
	if !onlyText {
		w.Depth--
		w.indent()
	}
	w.Raw("</")
	w.Raw(e.Name)
	w.Raw(">")
	w.newline()
}

// WriteText serializes a text node with escaping.
func (w *Writer) WriteText(t *Text) {
	defer core.Enter(w, "Writer.WriteText")()
	w.Raw(Escape(t.Data))
}

// Raw appends raw output.
func (w *Writer) Raw(s string) {
	defer core.Enter(w, "Writer.Raw")()
	w.Out = append(w.Out, s...)
}

//failatomic:ignore formatting helper, covered by Raw
func (w *Writer) indent() {
	if !w.Indent {
		return
	}
	for i := 0; i < w.Depth; i++ {
		w.Out = append(w.Out, ' ', ' ')
	}
}

//failatomic:ignore formatting helper, covered by Raw
func (w *Writer) newline() {
	if w.Indent {
		w.Out = append(w.Out, '\n')
	}
}

// Escape replaces the five predefined entities.
func Escape(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;",
		"<", "&lt;",
		">", "&gt;",
		`"`, "&quot;",
		"'", "&apos;",
	)
	return r.Replace(s)
}

// RegisterWriter adds the writer class to a registry.
func RegisterWriter(r *core.Registry) {
	r.Ctor("Writer", "Writer.New").
		Method("Writer", "String").
		Method("Writer", "WriteDocument", fault.IllegalArgument).
		Method("Writer", "WriteElement", fault.IllegalArgument).
		Method("Writer", "WriteText").
		Method("Writer", "Raw")
}
