package xmlite

import (
	"strings"

	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// Parser is a recursive-descent XML parser. In the Self* careful style the
// parser object itself is immutable during a parse: every method takes the
// current position and returns the new one, so a thrown ParseError leaves
// the parser's object graph untouched (failure atomic by construction).
type Parser struct {
	Input string
}

// NewParser returns a parser over input.
func NewParser(input string) *Parser {
	defer core.Enter(nil, "Parser.New")()
	return &Parser{Input: input}
}

// Parse parses a complete document and returns its root element.
func Parse(input string) *Element {
	defer core.Enter(nil, "xmlite.Parse")()
	return NewParser(input).ParseDocument()
}

// ParseDocument parses optional prolog/whitespace, the root element, and
// trailing whitespace.
func (p *Parser) ParseDocument() *Element {
	defer core.Enter(p, "Parser.ParseDocument")()
	pos := p.SkipSpace(0)
	if strings.HasPrefix(p.Input[pos:], "<?") {
		end := strings.Index(p.Input[pos:], "?>")
		if end < 0 {
			p.fail(pos, "unterminated processing instruction")
		}
		pos = p.SkipSpace(pos + end + 2)
	}
	root, pos := p.ParseElement(pos)
	pos = p.SkipSpace(pos)
	if pos != len(p.Input) {
		p.fail(pos, "content after root element")
	}
	return root
}

// ParseElement parses one element and its subtree starting at pos,
// returning the element and the position after it. Children attach only
// after each child parsed completely.
func (p *Parser) ParseElement(pos int) (*Element, int) {
	defer core.Enter(p, "Parser.ParseElement")()
	if pos >= len(p.Input) || p.Input[pos] != '<' {
		p.fail(pos, "expected '<'")
	}
	name, pos := p.ParseName(pos + 1)
	attrs, pos := p.ParseAttrs(name, pos)
	elem := &Element{Name: name, Attrs: attrs}
	if strings.HasPrefix(p.Input[pos:], "/>") {
		return elem, pos + 2
	}
	if pos >= len(p.Input) || p.Input[pos] != '>' {
		p.fail(pos, "expected '>' in <%s>", name)
	}
	pos++
	for {
		if pos >= len(p.Input) {
			p.fail(pos, "unterminated element <%s>", name)
		}
		if strings.HasPrefix(p.Input[pos:], "</") {
			var closeName string
			closeName, pos = p.ParseName(pos + 2)
			if closeName != name {
				p.fail(pos, "mismatched close tag </%s> for <%s>", closeName, name)
			}
			pos = p.SkipSpace(pos)
			if pos >= len(p.Input) || p.Input[pos] != '>' {
				p.fail(pos, "expected '>' after </%s", closeName)
			}
			return elem, pos + 1
		}
		if strings.HasPrefix(p.Input[pos:], "<!--") {
			pos = p.SkipComment(pos)
			continue
		}
		if strings.HasPrefix(p.Input[pos:], "<![CDATA[") {
			var data string
			data, pos = p.ParseCDATA(pos)
			elem.Children = append(elem.Children, &Text{Data: data})
			continue
		}
		if p.Input[pos] == '<' {
			var child *Element
			child, pos = p.ParseElement(pos)
			elem.Children = append(elem.Children, child)
			continue
		}
		var text string
		text, pos = p.ParseText(pos)
		if text != "" {
			elem.Children = append(elem.Children, &Text{Data: text})
		}
	}
}

// ParseAttrs parses name="value" pairs of the tag named tag and returns
// them with the position of the tag terminator. The list is built locally
// and handed back, so a mid-list ParseError discards it wholesale.
func (p *Parser) ParseAttrs(tag string, pos int) ([]Attr, int) {
	defer core.Enter(p, "Parser.ParseAttrs")()
	var attrs []Attr
	for {
		pos = p.SkipSpace(pos)
		if pos >= len(p.Input) {
			p.fail(pos, "unterminated tag <%s>", tag)
		}
		c := p.Input[pos]
		if c == '>' || c == '/' || c == '?' {
			return attrs, pos
		}
		var name, value string
		name, pos = p.ParseName(pos)
		pos = p.SkipSpace(pos)
		if pos >= len(p.Input) || p.Input[pos] != '=' {
			p.fail(pos, "expected '=' after attribute %q", name)
		}
		pos = p.SkipSpace(pos + 1)
		value, pos = p.ParseQuoted(pos)
		attrs = append(attrs, Attr{Name: name, Value: value})
	}
}

// ParseName parses an XML name token starting at pos.
func (p *Parser) ParseName(pos int) (string, int) {
	defer core.Enter(p, "Parser.ParseName")()
	start := pos
	for pos < len(p.Input) && isNameByte(p.Input[pos], pos > start) {
		pos++
	}
	if pos == start {
		p.fail(pos, "expected a name")
	}
	return p.Input[start:pos], pos
}

// ParseQuoted parses a double- or single-quoted attribute value with
// entity expansion.
func (p *Parser) ParseQuoted(pos int) (string, int) {
	defer core.Enter(p, "Parser.ParseQuoted")()
	if pos >= len(p.Input) || (p.Input[pos] != '"' && p.Input[pos] != '\'') {
		p.fail(pos, "expected quoted value")
	}
	quote := p.Input[pos]
	pos++
	start := pos
	for pos < len(p.Input) && p.Input[pos] != quote {
		pos++
	}
	if pos >= len(p.Input) {
		p.fail(pos, "unterminated attribute value")
	}
	return p.Unescape(p.Input[start:pos], start), pos + 1
}

// ParseText parses character data up to the next '<'.
func (p *Parser) ParseText(pos int) (string, int) {
	defer core.Enter(p, "Parser.ParseText")()
	start := pos
	for pos < len(p.Input) && p.Input[pos] != '<' {
		pos++
	}
	return p.Unescape(strings.TrimSpace(p.Input[start:pos]), start), pos
}

// SkipSpace returns the first non-whitespace position at or after pos.
func (p *Parser) SkipSpace(pos int) int {
	defer core.Enter(p, "Parser.SkipSpace")()
	for pos < len(p.Input) {
		switch p.Input[pos] {
		case ' ', '\t', '\n', '\r':
			pos++
		default:
			return pos
		}
	}
	return pos
}

// ParseCDATA parses a <![CDATA[ ... ]]> section; the contents are taken
// verbatim (no entity expansion).
func (p *Parser) ParseCDATA(pos int) (string, int) {
	defer core.Enter(p, "Parser.ParseCDATA")()
	start := pos + len("<![CDATA[")
	end := strings.Index(p.Input[start:], "]]>")
	if end < 0 {
		p.fail(pos, "unterminated CDATA section")
	}
	return p.Input[start : start+end], start + end + 3
}

// SkipComment returns the position after a <!-- --> comment.
func (p *Parser) SkipComment(pos int) int {
	defer core.Enter(p, "Parser.SkipComment")()
	end := strings.Index(p.Input[pos:], "-->")
	if end < 0 {
		p.fail(pos, "unterminated comment")
	}
	return pos + end + 3
}

// Unescape expands the five predefined entities in s (located at offset
// for error reporting).
func (p *Parser) Unescape(s string, offset int) string {
	defer core.Enter(p, "Parser.Unescape")()
	if !strings.Contains(s, "&") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 {
			p.fail(offset+i, "unterminated entity in %q", s)
		}
		entity := s[i+1 : i+semi]
		switch entity {
		case "lt":
			b.WriteByte('<')
		case "gt":
			b.WriteByte('>')
		case "amp":
			b.WriteByte('&')
		case "quot":
			b.WriteByte('"')
		case "apos":
			b.WriteByte('\'')
		default:
			p.fail(offset+i, "unknown entity &%s;", entity)
		}
		i += semi + 1
	}
	return b.String()
}

// fail throws a ParseError at the given position.
//
//failatomic:ignore always throws; receiver immutable
func (p *Parser) fail(pos int, format string, args ...any) {
	fault.Throw(fault.ParseError, "Parser",
		"offset %d: "+format, append([]any{pos}, args...)...)
}

func isNameByte(c byte, interior bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case interior && (c >= '0' && c <= '9' || c == '-' || c == '.' || c == ':'):
		return true
	default:
		return false
	}
}

// RegisterParser adds the parser class to a registry.
func RegisterParser(r *core.Registry) {
	r.Ctor("Parser", "Parser.New").
		Ctor("Parser", "xmlite.Parse", fault.ParseError).
		Method("Parser", "ParseDocument", fault.ParseError).
		Method("Parser", "ParseElement", fault.ParseError).
		Method("Parser", "ParseAttrs", fault.ParseError).
		Method("Parser", "ParseName", fault.ParseError).
		Method("Parser", "ParseQuoted", fault.ParseError).
		Method("Parser", "ParseText", fault.ParseError).
		Method("Parser", "SkipSpace").
		Method("Parser", "SkipComment", fault.ParseError).
		Method("Parser", "ParseCDATA", fault.ParseError).
		Method("Parser", "Unescape", fault.ParseError)
}
