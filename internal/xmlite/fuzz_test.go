package xmlite

import (
	"testing"

	"failatomic/internal/fault"
)

// FuzzParse checks the parser's total behavior: every input either parses
// or throws ParseError (never another panic), and parsed documents
// round-trip through the writer. Seeds run on every `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a x="1" y="2"><b>t</b></a>`,
		`<?xml version="1.0"?><r><!-- c --><k/></r>`,
		`<a>&lt;&amp;&gt;</a>`,
		`<a><b></a></b>`,
		`<a`,
		`plain text`,
		``,
		`<a x=1/>`,
		`<x>&unknown;</x>`,
		`<deep><deep><deep><leaf/></deep></deep></deep>`,
		`<a x="&quot;q&quot;"/>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 512 {
			return
		}
		var root *Element
		exc := func() (exc *fault.Exception) {
			defer func() {
				if r := recover(); r != nil {
					exc = fault.From(r)
				}
			}()
			root = Parse(input)
			return nil
		}()
		if exc != nil {
			if exc.Kind != fault.ParseError {
				t.Fatalf("Parse(%q) panicked with %v, want ParseError", input, exc)
			}
			return
		}
		// Anything that parsed must serialize and re-parse to a stable
		// form (serialize-parse-serialize fixpoint).
		out1 := NewWriter(false).WriteDocument(root)
		again := Parse(out1)
		out2 := NewWriter(false).WriteDocument(again)
		if out1 != out2 {
			t.Fatalf("round trip unstable for %q:\n%s\n%s", input, out1, out2)
		}
	})
}
