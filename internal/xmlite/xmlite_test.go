package xmlite

import (
	"strings"
	"testing"

	"failatomic/internal/fault"
)

func catchException(f func()) (exc *fault.Exception) {
	defer func() {
		if r := recover(); r != nil {
			exc = fault.From(r)
		}
	}()
	f()
	return nil
}

const sample = `<?xml version="1.0"?>
<config env="prod">
  <!-- servers -->
  <server name="web1" port="80">
    <tag>front &amp; back</tag>
  </server>
  <server name="web2" port="8080"/>
  <limits max="100"/>
</config>`

func TestParseSample(t *testing.T) {
	root := Parse(sample)
	if root.Name != "config" {
		t.Fatalf("root = %q", root.Name)
	}
	if env, ok := root.Attr("env"); !ok || env != "prod" {
		t.Fatalf("env attr: %q %v", env, ok)
	}
	kids := root.ChildElements()
	if len(kids) != 3 {
		t.Fatalf("children: %d", len(kids))
	}
	if kids[0].Name != "server" || kids[2].Name != "limits" {
		t.Fatal("child names wrong")
	}
	if name, _ := kids[1].Attr("name"); name != "web2" {
		t.Fatal("attr of self-closing element wrong")
	}
	tag := root.Find("tag")
	if tag == nil || tag.TextContent() != "front & back" {
		t.Fatalf("entity expansion failed: %+v", tag)
	}
	if root.Find("nope") != nil {
		t.Fatal("Find must return nil for missing elements")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"<",
		"<a>",
		"<a></b>",
		"<a",
		"<a x></a>",
		"<a x=></a>",
		`<a x="1></a>`,
		"<a></a><b></b>",
		"<a>&bogus;</a>",
		"<a><!-- foo </a>",
		"<?xml <a/>",
	}
	for _, input := range bad {
		exc := catchException(func() { Parse(input) })
		if exc == nil || exc.Kind != fault.ParseError {
			t.Errorf("Parse(%q): want ParseError, got %+v", input, exc)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	root := Parse(sample)
	out := NewWriter(false).WriteDocument(root)
	again := Parse(out)
	// The round-tripped DOM must serialize identically.
	out2 := NewWriter(false).WriteDocument(again)
	if out != out2 {
		t.Fatalf("round trip unstable:\n%s\n%s", out, out2)
	}
	if again.Name != "config" || len(again.ChildElements()) != 3 {
		t.Fatal("round trip lost structure")
	}
}

func TestWriterEscapes(t *testing.T) {
	e := &Element{Name: "x"}
	e.SetAttr("a", `<"&>`)
	e.Append(&Text{Data: "1 < 2 & 3"})
	out := NewWriter(false).WriteDocument(e)
	if !strings.Contains(out, `a="&lt;&quot;&amp;&gt;"`) {
		t.Fatalf("attr escaping wrong: %s", out)
	}
	if !strings.Contains(out, "1 &lt; 2 &amp; 3") {
		t.Fatalf("text escaping wrong: %s", out)
	}
	if exc := catchException(func() { NewWriter(false).WriteDocument(nil) }); exc == nil {
		t.Fatal("nil root must throw")
	}
}

func TestSetAttrReplaces(t *testing.T) {
	e := &Element{Name: "x"}
	e.SetAttr("k", "1")
	e.SetAttr("k", "2")
	if len(e.Attrs) != 1 {
		t.Fatalf("attrs: %+v", e.Attrs)
	}
	if v, _ := e.Attr("k"); v != "2" {
		t.Fatal("replace failed")
	}
}

func TestAppendNil(t *testing.T) {
	e := &Element{Name: "x"}
	if exc := catchException(func() { e.Append(nil) }); exc == nil || exc.Kind != fault.IllegalElement {
		t.Fatal("nil child must throw")
	}
}

func TestIndentedWriter(t *testing.T) {
	root := Parse(`<a><b><c/></b></a>`)
	out := NewWriter(true).WriteDocument(root)
	if !strings.Contains(out, "\n  <b>") || !strings.Contains(out, "\n    <c/>") {
		t.Fatalf("indentation wrong:\n%s", out)
	}
	if Parse(out).Name != "a" {
		t.Fatal("indented output must re-parse")
	}
}

func TestCDATA(t *testing.T) {
	root := Parse(`<script><![CDATA[if (a < b && c > d) { "raw" }]]></script>`)
	want := `if (a < b && c > d) { "raw" }`
	if got := root.TextContent(); got != want {
		t.Fatalf("CDATA content = %q, want %q", got, want)
	}
	// Round trip: the writer escapes, the parser unescapes; content is
	// preserved even though the CDATA form is not.
	out := NewWriter(false).WriteDocument(root)
	if Parse(out).TextContent() != want {
		t.Fatalf("CDATA round trip lost content: %s", out)
	}
	// Mixed content with CDATA between elements.
	mixed := Parse(`<a>pre<![CDATA[<raw>]]><b/>post</a>`)
	if mixed.TextContent() != "pre<raw>post" {
		t.Fatalf("mixed CDATA content = %q", mixed.TextContent())
	}
	if exc := catchException(func() { Parse(`<a><![CDATA[never ends`) }); exc == nil || exc.Kind != fault.ParseError {
		t.Fatal("unterminated CDATA must throw")
	}
}
