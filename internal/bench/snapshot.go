// Package bench runs the snapshot-engine benchmark suite programmatically
// (testing.Benchmark) and renders machine-readable results. cmd/fabench
// -json uses it to emit the repo's committed perf trajectory
// (BENCH_snapshot.json): the capture-vs-fingerprint snapshot ablation, the
// detect prologue in both modes, representative Table 1 campaigns, and the
// parallel-scheduler guard.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"failatomic/internal/apps"
	"failatomic/internal/core"
	"failatomic/internal/harness"
	"failatomic/internal/inject"
	"failatomic/internal/objgraph"
)

// Result is one benchmark's measured costs.
type Result struct {
	// Name identifies the benchmark (slash-separated, bench-style).
	Name string `json:"name"`
	// N is the iteration count testing.Benchmark settled on.
	N int `json:"n"`
	// NsPerOp is wall-clock nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
}

// measure runs one benchmark function with allocation reporting.
func measure(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return Result{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// snapshotSizes are the object sizes of the snapshot ablation, matching
// BenchmarkObjgraphCapture.
var snapshotSizes = []int{64, 4 << 10, 64 << 10}

// campaignApps are the Table 1 rows measured per snapshot mode — a
// representative spread (red-black tree, linked list, hash map) rather
// than all sixteen, keeping artifact regeneration under a minute.
var campaignApps = []string{"RBMap", "LinkedList", "HashedMap"}

// perturbApp is the application the per-strategy campaign-cost cells
// measure: LinkedList is the paper's running example and its point space
// keeps the burst grid affordable.
const perturbApp = "LinkedList"

// SnapshotSuite runs the full snapshot-engine suite and returns its
// results in a fixed order. perturb is a fadetect -perturb spec adding
// per-strategy campaign-cost cells ("campaign-perturb/<app>/<strategy>"),
// or "" for the classic suite.
func SnapshotSuite(ctx context.Context, perturb string) ([]Result, error) {
	perturbations, err := inject.ParsePerturbations(perturb)
	if err != nil {
		return nil, err
	}
	var out []Result

	for _, size := range snapshotSizes {
		target := harness.NewBenchTarget(size)
		out = append(out,
			measure(fmt.Sprintf("objgraph/capture/size=%d", size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if g := objgraph.Capture(target); g.Nodes() == 0 {
						b.Fatal("empty graph")
					}
				}
			}),
			// The default engine, measured as a session uses it: one
			// long-lived cache, a generation bump per call (the wrapped-call
			// prologue's conservative invalidation), leaf replay warm.
			measure(fmt.Sprintf("objgraph/fingerprint/size=%d", size), func(b *testing.B) {
				cache := objgraph.NewFPCache(0)
				var fp objgraph.FP
				for i := 0; i < b.N; i++ {
					cache.Bump()
					fp = objgraph.FingerprintCached(cache, target)
				}
				if fp == (objgraph.FP{}) {
					b.Fatal("zero fingerprint")
				}
			}),
			// The -snapshot fingerprint-nocache escape hatch: every call
			// hashes the whole graph cold.
			measure(fmt.Sprintf("objgraph/fingerprint-nocache/size=%d", size), func(b *testing.B) {
				var fp objgraph.FP
				for i := 0; i < b.N; i++ {
					fp = objgraph.Fingerprint(target)
				}
				if fp == (objgraph.FP{}) {
					b.Fatal("zero fingerprint")
				}
			}),
		)
	}

	for _, mode := range []core.SnapshotMode{core.SnapshotFingerprint, core.SnapshotCapture} {
		mode := mode
		out = append(out, measure("enter-detect/"+mode.String(), func(b *testing.B) {
			session := core.NewSession(core.Config{Detect: true, Snapshot: mode})
			if err := core.Install(session); err != nil {
				b.Fatal(err)
			}
			defer core.Uninstall(session)
			target := harness.NewBenchTarget(4 << 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				target.Work()
			}
		}))
	}

	for _, name := range campaignApps {
		app, ok := apps.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown app %q", name)
		}
		for _, mode := range []core.SnapshotMode{core.SnapshotFingerprint, core.SnapshotCapture} {
			mode := mode
			out = append(out, measure("campaign/"+name+"/"+mode.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := inject.Campaign(ctx, app.Build(), inject.Options{Snapshot: mode})
					if err != nil {
						b.Fatal(err)
					}
					if res.Injections == 0 {
						b.Fatal("no injections")
					}
				}
			}))
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// The parallel-scheduler guard: BenchmarkCampaignParallel's shape under
	// the default engine, so the committed artifact pins that the
	// fingerprint engine did not regress the parallel campaign.
	app, _ := apps.ByName("RBMap")
	out = append(out, measure("campaign-parallel/RBMap/workers=4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := inject.Campaign(ctx, app.Build(), inject.Options{Parallelism: 4})
			if err != nil {
				b.Fatal(err)
			}
			if res.Injections == 0 {
				b.Fatal("no injections")
			}
		}
	}))

	// Per-strategy campaign cost: one cell per requested perturbation
	// model, each a full campaign running only the default sweep plus that
	// model's grid — what a -perturb flag adds to a detection campaign's
	// bill.
	for _, pert := range perturbations {
		pert := pert
		papp, ok := apps.ByName(perturbApp)
		if !ok {
			return nil, fmt.Errorf("bench: unknown app %q", perturbApp)
		}
		out = append(out, measure("campaign-perturb/"+perturbApp+"/"+pert.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := inject.Campaign(ctx, papp.Build(), inject.Options{
					Perturbations: []inject.Perturbation{pert},
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Injections == 0 {
					b.Fatal("no injections")
				}
			}
		}))
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return out, ctx.Err()
}

// WriteJSON renders results as indented JSON (one committed artifact).
func WriteJSON(results []Result) ([]byte, error) {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Render prints a human summary table of the suite.
func Render(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %14s %12s %12s\n", "benchmark", "ns/op", "allocs/op", "bytes/op")
	for _, r := range results {
		fmt.Fprintf(&b, "%-40s %14.0f %12d %12d\n", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	return b.String()
}
