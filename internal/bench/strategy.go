package bench

import (
	"testing"

	"failatomic/internal/checkpoint"
)

// The strategy suite measures the per-call cost of each Item-76 masking
// rung on a synthetic versioned list, extending the paper's Figure 3/4
// overhead story to the strategy-resolved repair pipeline: reordering is
// free (the same statements run in a different order), a temp-copy swap
// costs two scalar saves and a deferred closure, and the checkpoint rung
// pays for a capture per call — deep copy proportional to the object,
// undo log proportional to the write set.

// strategyCell and strategyList are the synthetic subject.
type strategyCell struct {
	V    int
	Next *strategyCell
}

type strategyList struct {
	Head    *strategyCell
	Count   int
	Version int
}

func newStrategyList(n int) *strategyList {
	l := &strategyList{}
	for i := 0; i < n; i++ {
		l.Head = &strategyCell{V: i, Next: l.Head}
		l.Count++
	}
	return l
}

// insertBumpFirst is the original failure non-atomic shape: bump, then
// (potentially throwing) validation, then the link-in.
func (l *strategyList) insertBumpFirst(v int) {
	l.Version++
	if v < 0 {
		panic("rejected")
	}
	l.Head = &strategyCell{V: v, Next: l.Head}
	l.Count++
}

// insertReordered is the reorder rung's output: validate before mutating.
func (l *strategyList) insertReordered(v int) {
	if v < 0 {
		panic("rejected")
	}
	l.Version++
	l.Head = &strategyCell{V: v, Next: l.Head}
	l.Count++
}

// journaledList wraps strategyList with an undo journal for the undo-log
// checkpoint measurement.
type journaledList struct {
	strategyList
	journal *checkpoint.Journal
}

func (l *journaledList) BeginJournal(j *checkpoint.Journal) *checkpoint.Journal {
	prev := l.journal
	l.journal = j
	return prev
}

func (l *journaledList) EndJournal(prev *checkpoint.Journal) { l.journal = prev }

func (l *journaledList) insert(v int) {
	head, count, version := l.Head, l.Count, l.Version
	l.journal.Record(24, func() { l.Head, l.Count, l.Version = head, count, version })
	l.insertBumpFirst(v)
}

// strategyListSize keeps the deep-copy cost visible without dominating
// the suite's runtime.
const strategyListSize = 64

// StrategySuite measures each rung and returns the results in ladder
// order (cheapest first). Unlike SnapshotSuite it needs no context: every
// benchmark is a tight in-process loop.
func StrategySuite() []Result {
	return []Result{
		measure("strategy/none/insert", func(b *testing.B) {
			l := newStrategyList(strategyListSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.insertBumpFirst(i)
			}
		}),
		measure("strategy/reorder/insert", func(b *testing.B) {
			l := newStrategyList(strategyListSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.insertReordered(i)
			}
		}),
		measure("strategy/tempswap/insert", func(b *testing.B) {
			l := newStrategyList(strategyListSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				func() {
					savedCount, savedVersion := l.Count, l.Version
					defer func() {
						if r := recover(); r != nil {
							l.Count, l.Version = savedCount, savedVersion
							panic(r)
						}
					}()
					l.insertBumpFirst(i)
				}()
			}
		}),
		measure("strategy/checkpoint/deepcopy/insert", func(b *testing.B) {
			strategy := checkpoint.DeepCopy()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				l := newStrategyList(strategyListSize)
				b.StartTimer()
				h, err := strategy.Capture(l)
				if err != nil {
					b.Fatal(err)
				}
				l.insertBumpFirst(i)
				if c, ok := h.(checkpoint.Committer); ok {
					c.Commit()
				}
			}
		}),
		measure("strategy/checkpoint/undolog/insert", func(b *testing.B) {
			strategy := checkpoint.UndoLog()
			l := &journaledList{strategyList: *newStrategyList(strategyListSize)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := strategy.Capture(l)
				if err != nil {
					b.Fatal(err)
				}
				l.insert(i)
				if c, ok := h.(checkpoint.Committer); ok {
					c.Commit()
				}
			}
		}),
	}
}
