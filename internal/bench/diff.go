package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// NsRegressionTolerance is how much a shared cell's ns/op may grow over
// the committed baseline before DiffSnapshots flags it. Wall-clock cells
// are noisy across machines, so the gate is deliberately loose; exact
// regression hunting belongs to the committed artifact's history.
const NsRegressionTolerance = 0.25

// ReadJSON loads a committed benchmark artifact (BENCH_*.json).
func ReadJSON(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}

// DiffSnapshots compares a fresh suite run against a baseline artifact
// and returns one line per violation: a shared cell whose ns/op regressed
// beyond NsRegressionTolerance, or whose allocs/op changed at all
// (single-threaded allocation counts are deterministic, so any drift is a
// real change). Cells present on only one side are ignored — the suite
// grows across versions and a stale baseline must not block new cells.
// campaign-parallel cells are exempt from the exact-allocs rule only:
// worker scheduling makes their pool/map allocation behavior jitter by a
// few allocs in hundreds of thousands, which is noise, not drift.
func DiffSnapshots(baseline, fresh []Result) []string {
	base := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	var violations []string
	for _, f := range fresh {
		b, ok := base[f.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && f.NsPerOp > b.NsPerOp*(1+NsRegressionTolerance) {
			violations = append(violations,
				fmt.Sprintf("%s: ns/op regressed %.0f -> %.0f (>%.0f%%)",
					f.Name, b.NsPerOp, f.NsPerOp, NsRegressionTolerance*100))
		}
		if f.AllocsPerOp != b.AllocsPerOp && !strings.HasPrefix(f.Name, "campaign-parallel/") {
			violations = append(violations,
				fmt.Sprintf("%s: allocs/op changed %d -> %d (must match exactly)",
					f.Name, b.AllocsPerOp, f.AllocsPerOp))
		}
	}
	return violations
}
