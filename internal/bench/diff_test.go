package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDiffSnapshots(t *testing.T) {
	baseline := []Result{
		{Name: "objgraph/fingerprint/size=64", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "campaign/RBMap/fingerprint", NsPerOp: 1000, AllocsPerOp: 42},
		{Name: "retired/cell", NsPerOp: 5, AllocsPerOp: 1},
	}
	fresh := []Result{
		// Within tolerance: 20% slower is fine.
		{Name: "objgraph/fingerprint/size=64", NsPerOp: 120, AllocsPerOp: 0},
		// Ns regression past 25% AND an alloc change: two violations.
		{Name: "campaign/RBMap/fingerprint", NsPerOp: 1500, AllocsPerOp: 43},
		// New cell absent from the baseline: ignored.
		{Name: "objgraph/fingerprint-nocache/size=64", NsPerOp: 999, AllocsPerOp: 7},
	}
	got := DiffSnapshots(baseline, fresh)
	if len(got) != 2 {
		t.Fatalf("DiffSnapshots = %v, want exactly 2 violations", got)
	}
	if !strings.Contains(got[0], "ns/op regressed 1000 -> 1500") {
		t.Errorf("ns violation = %q", got[0])
	}
	if !strings.Contains(got[1], "allocs/op changed 42 -> 43") {
		t.Errorf("alloc violation = %q", got[1])
	}

	if v := DiffSnapshots(baseline, baseline); len(v) != 0 {
		t.Errorf("self-diff reported violations: %v", v)
	}
	// Parallel campaign cells jitter by a few allocs (worker scheduling):
	// exempt from the exact-allocs rule, still gated on ns/op.
	pbase := []Result{{Name: "campaign-parallel/RBMap/workers=4", NsPerOp: 1000, AllocsPerOp: 771892}}
	if v := DiffSnapshots(pbase, []Result{{Name: "campaign-parallel/RBMap/workers=4", NsPerOp: 1100, AllocsPerOp: 771893}}); len(v) != 0 {
		t.Errorf("parallel alloc jitter flagged: %v", v)
	}
	if v := DiffSnapshots(pbase, []Result{{Name: "campaign-parallel/RBMap/workers=4", NsPerOp: 2000, AllocsPerOp: 771892}}); len(v) != 1 {
		t.Errorf("parallel ns regression not flagged: %v", v)
	}
	if v := DiffSnapshots(nil, fresh); len(v) != 0 {
		t.Errorf("empty baseline reported violations: %v", v)
	}
}

func TestReadJSONRoundTrip(t *testing.T) {
	results := []Result{{Name: "a/b", N: 10, NsPerOp: 1.5, AllocsPerOp: 2, BytesPerOp: 64}}
	data, err := WriteJSON(results)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != results[0] {
		t.Fatalf("round trip = %+v, want %+v", got, results)
	}
	if _, err := ReadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("ReadJSON must fail on a missing file")
	}
}
