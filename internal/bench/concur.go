// Concurrent schedule-sweep cost cells: fabench -concur measures what a
// schedule campaign costs as the schedule count grows, per worker count —
// the knob a user turns when deciding how hard to search for a
// non-linearizable interleaving. Cells reuse the Result shape of the
// snapshot suite so the JSON artifact and renderer compose unchanged.
package bench

import (
	"fmt"
	"testing"

	"failatomic/internal/concur"
)

// concurSweepWorkers and concurSweepSchedules are the sweep grid: worker
// counts bracketing the default, schedule counts doubling up to the
// default campaign size.
var (
	concurSweepWorkers   = []int{2, 4}
	concurSweepSchedules = []int{8, 16, 32, 64}
)

// ConcurSuite measures one full schedule campaign per (workers, sched)
// grid cell for the named concurrent target under the given seed. Each
// cell is a whole campaign — clean pass, schedule plan, every faulted
// schedule, linearization checks and report rendering — so the cost cells
// track exactly what fadetect -concur pays.
func ConcurSuite(targetName string, seed int64) ([]Result, error) {
	t, ok := concur.ByName(targetName)
	if !ok {
		return nil, fmt.Errorf("bench: unknown concurrent target %q (have: %v)", targetName, concur.Names())
	}
	seed = concur.EffectiveSeed(seed)
	var out []Result
	for _, workers := range concurSweepWorkers {
		for _, sched := range concurSweepSchedules {
			workers, sched := workers, sched
			out = append(out, measure(
				fmt.Sprintf("campaign-concur/%s/workers=%d/sched=%d", t.Name, workers, sched),
				func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := concur.Campaign(&t, concur.Options{
							Workers:   workers,
							Schedules: sched,
							Seed:      seed,
						}); err != nil {
							b.Fatal(err)
						}
					}
				}))
		}
	}
	return out, nil
}
