// Package apps bundles the sixteen applications of the paper's evaluation
// (Table 1): ten Java-group programs over the collections and regexplite
// substrates, and six C++-group programs over the selfstar and xmlite
// substrates. Each application is an inject.Program: a method registry
// (the Analyzer's Step 1 output) plus a deterministic workload that
// constructs fresh objects and exercises them.
//
// Workloads intentionally include guarded organic failures (popping an
// empty container, compiling a bad pattern) because real test programs
// exercise error paths; the guard swallows whatever exception arrives so
// the clean run completes.
package apps

import (
	"sort"

	"failatomic/internal/core"
	"failatomic/internal/inject"
)

// App is one evaluation application.
type App struct {
	// Name is the Table 1 row name.
	Name string
	// Lang is the evaluation group: "cpp" or "java".
	Lang string
	// Build returns a fresh Program for a campaign.
	Build func() *inject.Program
}

// All returns every application in Table 1 order (C++ rows first).
func All() []App {
	return []App{
		{Name: "adaptorChain", Lang: "cpp", Build: adaptorChainProgram},
		{Name: "stdQ", Lang: "cpp", Build: stdQProgram},
		{Name: "xml2Ctcp", Lang: "cpp", Build: xml2CtcpProgram},
		{Name: "xml2Cviasc1", Lang: "cpp", Build: xml2Cviasc1Program},
		{Name: "xml2Cviasc2", Lang: "cpp", Build: xml2Cviasc2Program},
		{Name: "xml2xml1", Lang: "cpp", Build: xml2xml1Program},
		{Name: "CircularList", Lang: "java", Build: circularListProgram},
		{Name: "Dynarray", Lang: "java", Build: dynarrayProgram},
		{Name: "HashedMap", Lang: "java", Build: hashedMapProgram},
		{Name: "HashedSet", Lang: "java", Build: hashedSetProgram},
		{Name: "LLMap", Lang: "java", Build: llMapProgram},
		{Name: "LinkedBuffer", Lang: "java", Build: linkedBufferProgram},
		{Name: "LinkedList", Lang: "java", Build: linkedListProgram},
		{Name: "RBMap", Lang: "java", Build: rbMapProgram},
		{Name: "RBTree", Lang: "java", Build: rbTreeProgram},
		{Name: "RegExp", Lang: "java", Build: regExpProgram},
	}
}

// ByLang returns the applications of one evaluation group.
func ByLang(lang string) []App {
	var out []App
	for _, app := range All() {
		if app.Lang == lang {
			out = append(out, app)
		}
	}
	return out
}

// ByName finds an application by its Table 1 name.
func ByName(name string) (App, bool) {
	for _, app := range All() {
		if app.Name == name {
			return app, true
		}
	}
	return App{}, false
}

// Names returns all application names, sorted.
func Names() []string {
	apps := All()
	names := make([]string, len(apps))
	for i, app := range apps {
		names[i] = app.Name
	}
	sort.Strings(names)
	return names
}

// guard runs f and swallows any exception — the workload idiom for
// deliberately exercised error paths.
func guard(f func()) {
	defer func() {
		_ = recover()
	}()
	f()
}

// registryOf builds a registry from the given contributor functions.
func registryOf(contribs ...func(*core.Registry)) *core.Registry {
	r := core.NewRegistry()
	for _, c := range contribs {
		c(r)
	}
	return r
}
