package apps

import (
	"testing"

	"failatomic/internal/core"
	"failatomic/internal/fault"
)

func TestAllSixteenApplications(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("Table 1 has 16 applications, got %d", len(all))
	}
	if len(ByLang("cpp")) != 6 || len(ByLang("java")) != 10 {
		t.Fatal("group split must be 6 cpp / 10 java")
	}
	seen := make(map[string]bool)
	for _, app := range all {
		if seen[app.Name] {
			t.Errorf("duplicate app %s", app.Name)
		}
		seen[app.Name] = true
		if app.Build == nil {
			t.Errorf("%s has no builder", app.Name)
		}
	}
}

func TestByName(t *testing.T) {
	app, ok := ByName("RBTree")
	if !ok || app.Name != "RBTree" || app.Lang != "java" {
		t.Fatalf("ByName(RBTree) = %+v, %v", app, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown app must not resolve")
	}
	names := Names()
	if len(names) != 16 {
		t.Fatalf("Names() = %v", names)
	}
}

// TestCleanRunsComplete verifies every workload's invariants: with no
// injection the workload must finish (all organic failures are guarded),
// and it must exercise a meaningful number of instrumented calls.
func TestCleanRunsComplete(t *testing.T) {
	for _, app := range All() {
		t.Run(app.Name, func(t *testing.T) {
			program := app.Build()
			if program.Name != app.Name || program.Lang != app.Lang {
				t.Fatalf("program identity mismatch: %s/%s", program.Name, program.Lang)
			}
			if err := program.Registry.Validate(); err != nil {
				t.Fatalf("registry invalid: %v", err)
			}
			session := core.NewSession(core.Config{
				Registry: program.Registry,
				Inject:   true, // count points, never fire
				Detect:   true,
			})
			if err := core.Install(session); err != nil {
				t.Fatal(err)
			}
			defer core.Uninstall(session)

			completed := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("clean run escaped: %v", fault.From(r))
					}
				}()
				program.Run()
				completed = true
			}()
			if !completed {
				t.Fatal("workload did not complete")
			}
			if session.Point() < 30 {
				t.Errorf("only %d injection points; workload too thin", session.Point())
			}
			if len(session.Calls()) < 8 {
				t.Errorf("only %d distinct methods called", len(session.Calls()))
			}
		})
	}
}

// TestWorkloadsAreDeterministic runs each workload twice and compares the
// call counts and injection-point totals — campaigns depend on replay
// determinism.
func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, app := range All() {
		t.Run(app.Name, func(t *testing.T) {
			run := func() (int, map[string]int64) {
				program := app.Build()
				session := core.NewSession(core.Config{
					Registry: program.Registry,
					Inject:   true,
				})
				if err := core.Install(session); err != nil {
					t.Fatal(err)
				}
				defer core.Uninstall(session)
				program.Run()
				return session.Point(), session.Calls()
			}
			p1, c1 := run()
			p2, c2 := run()
			if p1 != p2 {
				t.Fatalf("points differ across runs: %d != %d", p1, p2)
			}
			if len(c1) != len(c2) {
				t.Fatalf("method sets differ: %d != %d", len(c1), len(c2))
			}
			for name, n := range c1 {
				if c2[name] != n {
					t.Fatalf("%s called %d then %d times", name, n, c2[name])
				}
			}
		})
	}
}

// TestRegistryCoversObservedMethods checks Step 1's completeness: every
// method the workload calls must be registered (otherwise its declared
// exceptions are never injected).
func TestRegistryCoversObservedMethods(t *testing.T) {
	for _, app := range All() {
		t.Run(app.Name, func(t *testing.T) {
			program := app.Build()
			session := core.NewSession(core.Config{Registry: program.Registry})
			if err := core.Install(session); err != nil {
				t.Fatal(err)
			}
			defer core.Uninstall(session)
			program.Run()
			for name := range session.Calls() {
				if program.Registry.Info(name) == nil {
					t.Errorf("method %s called but not registered", name)
				}
			}
		})
	}
}

func TestLinkedListFixedProgram(t *testing.T) {
	program := LinkedListFixedProgram()
	if program.Name != "LinkedListFixed" {
		t.Fatal("wrong name")
	}
	if err := program.Registry.Validate(); err != nil {
		t.Fatal(err)
	}
	program.Run() // must complete without a session too
}
