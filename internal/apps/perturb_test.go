package apps

import (
	"context"
	"testing"

	"failatomic/internal/detect"
	"failatomic/internal/inject"
)

// TestBurstFlipsPushReliably pins the perturbation models' reason to
// exist on a bundled application: AdaptorChain.PushReliably retries a
// failed push after advancing the chain's failure count, so the
// single-fault first-activation sweep classifies it failure atomic (the
// caught fault is retried to success), while the burst model — whose
// second fault strikes during the retry — unwinds out of it with the
// bookkeeping half-applied and classifies it pure failure non-atomic.
func TestBurstFlipsPushReliably(t *testing.T) {
	const method = "AdaptorChain.PushReliably"
	app, ok := ByName("adaptorChain")
	if !ok {
		t.Fatal("adaptorChain missing")
	}
	res, err := inject.Campaign(context.Background(), app.Build(), inject.Options{
		// The full pair grid: the flip pairs (first fault in the initial
		// attempt, second in the retry) are a sliver of the pair space, so
		// the pinned demonstration must not depend on stride sampling.
		Perturbations: []inject.Perturbation{inject.Burst{Budget: 1 << 20}},
		Scoped:        true,
	})
	if err != nil {
		t.Fatal(err)
	}

	base := detect.Classify(res, detect.Options{})
	rep := base.Methods[method]
	if rep == nil {
		t.Fatalf("%s not observed by the campaign", method)
	}
	if rep.Classification != detect.ClassAtomic {
		t.Fatalf("baseline %s = %s, want failure atomic", method, rep.Classification)
	}

	burst := detect.ClassifyStrategy(res, detect.Options{}, "burst")
	brep := burst.Methods[method]
	if brep == nil {
		t.Fatalf("%s not observed under burst", method)
	}
	if brep.Classification != detect.ClassPure {
		t.Fatalf("burst %s = %s, want pure failure non-atomic", method, brep.Classification)
	}
	if brep.SampleDiff == "" {
		t.Fatal("burst flip must carry a sample graph diff")
	}
}

// TestNthIsASubsetOfTheDefaultSweep: the nth-activation grid revisits
// dynamic (site, activation) pairs the exhaustive default sweep already
// covers one global point at a time, so it can never flip a method *to*
// non-atomic — it exists as a site-stable coordinate system (activation
// ordinals survive point-numbering drift), not as extra coverage.
func TestNthIsASubsetOfTheDefaultSweep(t *testing.T) {
	app, ok := ByName("adaptorChain")
	if !ok {
		t.Fatal("adaptorChain missing")
	}
	res, err := inject.Campaign(context.Background(), app.Build(), inject.Options{
		Perturbations: []inject.Perturbation{inject.NthActivation{N: 3}},
		Scoped:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := detect.Classify(res, detect.Options{})
	nth := detect.ClassifyStrategy(res, detect.Options{}, "nth")
	for name, rep := range nth.Methods {
		if rep.Classification == detect.ClassAtomic {
			continue
		}
		b := base.Methods[name]
		if b == nil || b.Classification == detect.ClassAtomic {
			t.Errorf("%s non-atomic under nth but atomic in the exhaustive sweep", name)
		}
	}
}
