package apps

import (
	"failatomic/internal/collections"
	"failatomic/internal/inject"
	"failatomic/internal/regexplite"
)

// nonNegative is the screener shared by the screened workloads.
func nonNegative(v collections.Item) bool {
	n, ok := v.(int)
	return !ok || n >= 0
}

func linkedListProgram() *inject.Program {
	return &inject.Program{
		Name:     "LinkedList",
		Lang:     "java",
		Registry: registryOf(collections.RegisterLinkedList, collections.RegisterLLIterator),
		Run: func() {
			l := collections.NewLinkedList(nonNegative)
			for _, v := range []int{3, 1, 4, 1, 5} {
				l.InsertLast(v)
			}
			l.InsertFirst(9)
			l.InsertAt(2, 6)
			_ = l.At(3)
			_ = l.First()
			_ = l.Last()
			_ = l.IndexOf(4)
			_ = l.Includes(5)
			_ = l.ReplaceAt(1, 7)
			_ = l.ReplaceAll(1, 8)
			_ = l.RemoveOne(6)
			_ = l.RemoveAll(8)
			_ = l.RemoveAt(1)
			_ = l.RemoveFirst()
			_ = l.RemoveLast()
			_ = l.ToSlice()
			_ = l.Size()
			it := collections.NewLLIterator(l)
			for it.HasNext() {
				_ = it.Next()
			}
			it.Reset()
			guard(func() { it.Next(); it.Next(); it.Next(); it.Next() }) // runs off the end
			for i := 0; i < l.Size(); i++ {                              // read phase
				_ = l.At(i)
				_ = l.Includes(i)
			}
			guard(func() { l.InsertLast(-1) }) // screener rejection
			empty := collections.NewLinkedList(nil)
			guard(func() { empty.RemoveFirst() }) // organic underflow
			l.Clear()
			_ = l.IsEmpty()
		},
	}
}

func circularListProgram() *inject.Program {
	return &inject.Program{
		Name:     "CircularList",
		Lang:     "java",
		Registry: registryOf(collections.RegisterCircularList, collections.RegisterCLIterator),
		Run: func() {
			l := collections.NewCircularList(nonNegative)
			for _, v := range []int{2, 7, 1, 8} {
				l.InsertLast(v)
			}
			l.InsertFirst(3)
			l.InsertAt(2, 4)
			_ = l.At(3)
			_ = l.First()
			_ = l.Last()
			l.Rotate(2)
			l.Rotate(-1)
			_ = l.IndexOf(8)
			_ = l.Includes(1)
			_ = l.ReplaceAt(0, 5)
			_ = l.RemoveAt(2)
			_ = l.RemoveFirst()
			_ = l.RemoveLast()
			_ = l.ToSlice()
			cit := collections.NewCLIterator(l)
			for cit.HasNext() {
				_ = cit.Next()
			}
			guard(func() { cit.Next() })
			for i := 0; i < l.Size(); i++ { // read phase
				_ = l.At(i)
			}
			_ = l.Size()
			guard(func() { l.InsertFirst(-2) })
			empty := collections.NewCircularList(nil)
			guard(func() { empty.RemoveLast() })
			l.Clear()
			_ = l.IsEmpty()
		},
	}
}

func dynarrayProgram() *inject.Program {
	return &inject.Program{
		Name:     "Dynarray",
		Lang:     "java",
		Registry: registryOf(collections.RegisterDynarray, collections.RegisterDynIterator),
		Run: func() {
			d := collections.NewDynarray(2, nonNegative)
			for _, v := range []int{5, 3, 9, 7} {
				d.Append(v)
			}
			d.InsertAt(1, 4)
			d.SetAt(0, 6)
			_ = d.At(2)
			_ = d.IndexOf(9)
			_ = d.Includes(7)
			_ = d.Capacity()
			_ = d.RemoveAt(1)
			_ = d.RemoveOne(9)
			d.Trim()
			_ = d.ToSlice()
			dit := collections.NewDynIterator(d)
			for dit.HasNext() {
				_ = dit.Next()
			}
			guard(func() { dit.Next() })
			for i := 0; i < d.Size(); i++ { // read phase
				_ = d.At(i)
			}
			guard(func() { d.SetAt(99, 1) }) // organic bounds failure
			guard(func() { d.Append(-5) })   // screener rejection
			d.Clear()
			_ = d.IsEmpty()
			_ = d.Size()
		},
	}
}

func hashedMapProgram() *inject.Program {
	return &inject.Program{
		Name:     "HashedMap",
		Lang:     "java",
		Registry: registryOf(collections.RegisterHashedMap, collections.RegisterHMIterator),
		Run: func() {
			m := collections.NewHashedMap(2)
			for i := 0; i < 10; i++ { // forces several rehashes
				m.Put(i, i*i)
			}
			_ = m.Put(3, 33) // replacement
			_ = m.Get(5)
			_ = m.Get(404)
			_ = m.ContainsKey(7)
			_ = m.Remove(2)
			_ = m.Remove(404)
			_ = m.Keys()
			_ = m.Values()
			hit := collections.NewHMIterator(m)
			for hit.HasNext() {
				_ = hit.Next()
			}
			guard(func() { hit.Next() })
			for i := 0; i < 10; i++ { // read phase
				_ = m.Get(i)
				_ = m.ContainsKey(i)
			}
			guard(func() { m.Put(nil, 1) }) // organic nil key
			m.Clear()
			_ = m.IsEmpty()
			_ = m.Size()
		},
	}
}

func hashedSetProgram() *inject.Program {
	return &inject.Program{
		Name:     "HashedSet",
		Lang:     "java",
		Registry: registryOf(collections.RegisterHashedSet, collections.RegisterHSIterator),
		Run: func() {
			s := collections.NewHashedSet(2, nonNegative)
			_ = s.IncludeAll([]collections.Item{4, 8, 15, 16})
			_ = s.Include(23)
			_ = s.Include(23) // duplicate
			_ = s.Includes(15)
			_ = s.Includes(99)
			_ = s.Exclude(8)
			_ = s.Exclude(8)
			_ = s.ToSlice()
			sit := collections.NewHSIterator(s)
			for sit.HasNext() {
				_ = sit.Next()
			}
			guard(func() { sit.Next() })
			for _, v := range []int{4, 8, 15, 16, 23, 42} { // read phase
				_ = s.Includes(v)
			}
			guard(func() { s.Include(-1) }) // screener rejection
			s.Clear()
			_ = s.IsEmpty()
			_ = s.Size()
		},
	}
}

func llMapProgram() *inject.Program {
	return &inject.Program{
		Name:     "LLMap",
		Lang:     "java",
		Registry: registryOf(collections.RegisterLLMap, collections.RegisterLLMapIterator),
		Run: func() {
			m := collections.NewLLMap()
			m.PutAll(
				[]collections.Item{"a", "b", "c"},
				[]collections.Item{1, 2, 3},
			)
			_ = m.Put("b", 20)
			_ = m.Put("d", 4)
			_ = m.Get("c")
			_ = m.Get("zz")
			_ = m.ContainsKey("a")
			_ = m.ContainsValue(3)
			_ = m.Remove("a")
			_ = m.Remove("zz")
			_ = m.Keys()
			_ = m.Values()
			mit := collections.NewLLMapIterator(m)
			for mit.HasNext() {
				_ = mit.Next()
			}
			guard(func() { mit.Next() })
			for _, k := range []string{"a", "b", "c", "d", "e"} { // read phase
				_ = m.Get(k)
				_ = m.ContainsKey(k)
			}
			guard(func() { m.Put(nil, 1) }) // organic nil key
			m.Clear()
			_ = m.IsEmpty()
			_ = m.Size()
		},
	}
}

func linkedBufferProgram() *inject.Program {
	return &inject.Program{
		Name:     "LinkedBuffer",
		Lang:     "java",
		Registry: registryOf(collections.RegisterLinkedBuffer),
		Run: func() {
			b := collections.NewLinkedBuffer(nonNegative)
			for i := 1; i <= 6; i++ { // spans two chunks
				b.Append(i)
			}
			_ = b.Peek()
			_ = b.Take()
			_ = b.Take()
			b.AppendAll([]collections.Item{7, 8})
			for i := 0; i < 4; i++ { // read phase
				_ = b.Peek()
				_ = b.Size()
				_ = b.IsEmpty()
			}
			_ = b.ToSlice()
			_ = b.TakeAll()
			guard(func() { b.Take() })     // organic underflow
			guard(func() { b.Append(-3) }) // screener rejection
			b.Clear()
			_ = b.IsEmpty()
			_ = b.Size()
		},
	}
}

func rbTreeProgram() *inject.Program {
	return &inject.Program{
		Name:     "RBTree",
		Lang:     "java",
		Registry: registryOf(collections.RegisterRBTree, collections.RegisterRBIterator),
		Run: func() {
			t := collections.NewRBTree(nil)
			for _, v := range []int{8, 3, 10, 1, 6, 14, 4, 7, 13, 6} {
				t.Insert(v)
			}
			_ = t.Includes(6)
			_ = t.Includes(99)
			_ = t.Occurrences(6)
			_ = t.Min()
			_ = t.Max()
			_ = t.RemoveOne(3)
			_ = t.RemoveOne(99)
			_ = t.RemoveOne(8)
			_ = t.ToSlice()
			_ = t.CheckInvariants()
			tit := collections.NewRBIterator(t)
			for tit.HasNext() {
				_ = tit.Next()
			}
			guard(func() { tit.Next() })
			for _, v := range []int{1, 4, 6, 7, 13, 14, 99} { // read phase
				_ = t.Includes(v)
			}
			guard(func() { t.Insert("mixed") }) // organic incomparable
			t.Clear()
			_ = t.IsEmpty()
			_ = t.Size()
		},
	}
}

func rbMapProgram() *inject.Program {
	return &inject.Program{
		Name:     "RBMap",
		Lang:     "java",
		Registry: registryOf(collections.RegisterRBMap, collections.RegisterRBIterator),
		Run: func() {
			m := collections.NewRBMap(nil)
			for _, k := range []string{"delta", "alpha", "echo", "bravo", "charlie"} {
				m.Put(k, len(k))
			}
			_ = m.Put("bravo", 99) // replacement
			_ = m.Get("echo")
			_ = m.Get("zulu")
			_ = m.ContainsKey("alpha")
			_ = m.MinKey()
			_ = m.MaxKey()
			_ = m.Remove("delta")
			_ = m.Remove("zulu")
			_ = m.Keys()
			_ = m.Values()
			rit := collections.NewRBIterator(m.Tree)
			for rit.HasNext() {
				_ = rit.Next()
			}
			guard(func() { rit.Next() })
			for _, k := range []string{"alpha", "bravo", "charlie", "echo", "zulu"} { // read phase
				_ = m.Get(k)
				_ = m.ContainsKey(k)
			}
			guard(func() { m.Put(nil, 1) }) // organic nil key
			m.Clear()
			_ = m.IsEmpty()
			_ = m.Size()
		},
	}
}

func regExpProgram() *inject.Program {
	return &inject.Program{
		Name:     "RegExp",
		Lang:     "java",
		Registry: registryOf(regexplite.Register),
		Run: func() {
			re := regexplite.Compile(`(a+)(b|c)\d`)
			_ = re.Match("aab7")
			_ = re.Match("nope")
			m := regexplite.NewMatcher(re, "aaac9")
			if m.MatchAt(0, true) {
				_ = m.Group(0)
				_ = m.Group(1)
				_ = m.Group(2)
			}
			// Read phase: compiled once, matched many times (the common
			// usage profile).
			scan := regexplite.Compile(`[a-z][a-z0-9][a-z0-9][0-9]`)
			for _, s := range []string{"ab12", "cd34", "x9y8", "zz99", "a1b2", "bad!", "id42"} {
				_ = scan.Match(s)
			}
			word := regexplite.Compile(`\w\w\w`)
			_ = word.Search("  go17 ")
			_ = word.MatchPrefix("id42 rest")
			date := regexplite.Compile(`^[0-9]{4}-[0-9]{2}$`)
			_ = date.Match("2026-07")
			_ = date.Match("26-07")
			guard(func() { regexplite.Compile("(unclosed") }) // organic parse error
			guard(func() { regexplite.Compile("a{3,1}") })    // organic bounds error
		},
	}
}

// LinkedListFixedProgram is the repaired-list program of the §6.1
// experiment; it is not a Table 1 row.
func LinkedListFixedProgram() *inject.Program {
	return &inject.Program{
		Name:     "LinkedListFixed",
		Lang:     "java",
		Registry: registryOf(collections.RegisterLinkedListFixed),
		Run: func() {
			l := collections.NewLinkedListFixed(nonNegative)
			for _, v := range []int{3, 1, 4, 1, 5} {
				l.InsertLast(v)
			}
			l.InsertFirst(9)
			l.InsertAt(2, 6)
			_ = l.At(3)
			_ = l.First()
			_ = l.Last()
			_ = l.IndexOf(4)
			_ = l.Includes(5)
			_ = l.ReplaceAt(1, 7)
			_ = l.ReplaceAll(1, 8)
			_ = l.RemoveOne(6)
			_ = l.RemoveAll(8)
			_ = l.RemoveAt(1)
			_ = l.RemoveFirst()
			_ = l.RemoveLast()
			_ = l.ToSlice()
			_ = l.Size()
			guard(func() { l.InsertLast(-1) })
			empty := collections.NewLinkedListFixed(nil)
			guard(func() { empty.RemoveFirst() })
			l.Clear()
			_ = l.IsEmpty()
		},
	}
}
