package apps

import (
	"failatomic/internal/inject"
	"failatomic/internal/selfstar"
	"failatomic/internal/xmlite"
)

// chainDeferMethods hand-tags the selfstar methods whose bodies carry a
// cleanup defer beyond the instrumentation prologue — what faweave's
// MethodFacts.HasDefer derives automatically for analyzed sources. The
// "defer" perturbation targets exactly these epilogues.
func chainDeferMethods() map[string]bool {
	return map[string]bool{"AdaptorChain.PushGuarded": true}
}

func adaptorChainProgram() *inject.Program {
	return &inject.Program{
		Name: "adaptorChain",
		Lang: "cpp",
		Registry: registryOf(
			selfstar.RegisterFramework,
			selfstar.RegisterAdaptors,
			selfstar.RegisterSupervisor,
		),
		DeferMethods: chainDeferMethods(),
		Run: func() {
			chain := selfstar.NewAdaptorChain(
				selfstar.NewValidateAdaptor(64),
				selfstar.NewTokenizeAdaptor(),
			)
			chain.AddStage(selfstar.NewCountAdaptor())
			_ = chain.PushReliably(&selfstar.Message{ID: 9, Text: "iota"})
			_ = chain.Push(&selfstar.Message{ID: 1, Text: "alpha beta"})
			_ = chain.Push(&selfstar.Message{ID: 2, Text: "gamma"})
			_ = chain.PushAll([]*selfstar.Message{
				{ID: 3, Text: "delta epsilon"},
				{ID: 4, Text: "zeta"},
			})
			_ = chain.PushGuarded(&selfstar.Message{ID: 5}) // rejected: empty
			_ = chain.PushGuarded(&selfstar.Message{ID: 6, Text: "eta"})
			guard(func() { chain.Push(nil) }) // organic nil message

			// Supervised delivery: the framework's retry/quarantine seam.
			sup := selfstar.NewSupervisor(chain, 1)
			_, _ = sup.Deliver(&selfstar.Message{ID: 7, Text: "theta"})
			_, _ = sup.Deliver(&selfstar.Message{ID: 8})     // empty: quarantined
			guard(func() { selfstar.NewSupervisor(nil, 0) }) // organic ctor failure
		},
	}
}

func stdQProgram() *inject.Program {
	return &inject.Program{
		Name:     "stdQ",
		Lang:     "cpp",
		Registry: registryOf(selfstar.RegisterFramework, selfstar.RegisterProbe),
		Run: func() {
			q := selfstar.NewStdQueue(4)
			src := selfstar.NewMsgSource("payload")
			probe := selfstar.NewQueueProbe()
			q.Enqueue(src.Next())
			q.Enqueue(src.Next())
			q.Enqueue(src.Next())
			_ = probe.Depth(q)
			_ = q.Peek()
			_ = q.Dequeue()
			q.Enqueue(src.Next())
			q.Enqueue(src.Next()) // wraps around
			_ = q.IsFull()
			_ = probe.Utilization(q)
			guard(func() { q.Enqueue(src.Next()) }) // organic overflow
			spill := selfstar.NewStdQueue(8)
			_ = q.DrainTo(spill)
			_ = q.IsEmpty()
			_ = probe.Depth(spill)
			guard(func() { q.Dequeue() }) // organic underflow
			_ = spill.Size()
			spill.Clear()
		},
	}
}

const orderDoc = `<order id="17"><item sku="b-1">book</item><qty>2</qty></order>`

const configDoc = `<config env="test">
  <server name="web1" port="80"/>
  <server name="web2" port="81"/>
</config>`

func xml2CtcpProgram() *inject.Program {
	return &inject.Program{
		Name: "xml2Ctcp",
		Lang: "cpp",
		Registry: registryOf(
			selfstar.RegisterFramework,
			selfstar.RegisterXMLAdaptors,
			xmlite.RegisterParser,
			xmlite.RegisterDOM,
		),
		DeferMethods: chainDeferMethods(),
		Run: func() {
			chain := selfstar.NewAdaptorChain(
				selfstar.NewXMLParseAdaptor(),
				selfstar.NewTCPFrameAdaptor(),
			)
			_ = chain.Push(&selfstar.Message{ID: 1, Text: orderDoc})
			_ = chain.Push(&selfstar.Message{ID: 2, Text: `<ping seq="1"/>`})
			_ = chain.PushGuarded(&selfstar.Message{ID: 3, Text: "<broken"})
		},
	}
}

func xml2Cviasc1Program() *inject.Program {
	return &inject.Program{
		Name: "xml2Cviasc1",
		Lang: "cpp",
		Registry: registryOf(
			selfstar.RegisterFramework,
			selfstar.RegisterXMLAdaptors,
			xmlite.RegisterParser,
			xmlite.RegisterDOM,
		),
		DeferMethods: chainDeferMethods(),
		Run: func() {
			chain := selfstar.NewAdaptorChain(
				selfstar.NewXMLParseAdaptor(),
				selfstar.NewStructConvAdaptor(1),
			)
			_ = chain.Push(&selfstar.Message{ID: 1, Text: configDoc})
			_ = chain.Push(&selfstar.Message{ID: 2, Text: `<point x="1" y="2"/>`})
			_ = chain.PushGuarded(&selfstar.Message{ID: 3, Text: `<bad-name/>`})
		},
	}
}

func xml2Cviasc2Program() *inject.Program {
	return &inject.Program{
		Name: "xml2Cviasc2",
		Lang: "cpp",
		Registry: registryOf(
			selfstar.RegisterFramework,
			selfstar.RegisterXMLAdaptors,
			xmlite.RegisterParser,
			xmlite.RegisterDOM,
		),
		DeferMethods: chainDeferMethods(),
		Run: func() {
			chain := selfstar.NewAdaptorChain(
				selfstar.NewXMLParseAdaptor(),
				selfstar.NewStructConvAdaptor(2),
			)
			_ = chain.Push(&selfstar.Message{ID: 1, Text: configDoc})
			_ = chain.Push(&selfstar.Message{ID: 2, Text: orderDoc})
			_ = chain.PushGuarded(&selfstar.Message{ID: 3, Text: `<x><y-z/></x>`})
		},
	}
}

func xml2xml1Program() *inject.Program {
	return &inject.Program{
		Name: "xml2xml1",
		Lang: "cpp",
		Registry: registryOf(
			selfstar.RegisterFramework,
			selfstar.RegisterXMLAdaptors,
			xmlite.RegisterParser,
			xmlite.RegisterDOM,
			xmlite.RegisterWriter,
		),
		DeferMethods: chainDeferMethods(),
		Run: func() {
			chain := selfstar.NewAdaptorChain(
				selfstar.NewXMLParseAdaptor(),
				selfstar.NewXMLRenameAdaptor(
					map[string]string{"server": "host", "config": "deployment"},
					"port",
				),
			)
			_ = chain.Push(&selfstar.Message{ID: 1, Text: configDoc})
			_ = chain.Push(&selfstar.Message{ID: 2, Text: `<config><server port="9"/></config>`})
			_ = chain.PushGuarded(&selfstar.Message{ID: 3, Text: "<oops>&bad;</oops>"})
		},
	}
}
