// Tests for the concurrent-run wire format: the schedule coordinate and
// outcome must survive log and journal round-trips, report sections must
// ride logs verbatim, legacy lines must keep decoding, and seeded
// journals must reject resumes under a different seed.
package replog

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"failatomic/internal/core"
	"failatomic/internal/inject"
)

// concurResult builds a minimal two-run concurrent campaign result: the
// clean pass (empty key) and one faulted schedule with a full history.
func concurResult() *inject.Result {
	clean := &inject.ConcurOutcome{
		Workers:     2,
		FaultWorker: -1,
		Verdict:     "atomic",
		Final:       "size=2 [7 9]",
		History: []inject.ConcurOp{
			{Worker: 0, Name: "InsertPair(101,102)", Resp: "ok", Start: 0, End: 3},
			{Worker: 1, Name: "RemoveFirst", Resp: "101", Start: 1, End: 4},
		},
	}
	faulted := &inject.ConcurOutcome{
		Workers:     2,
		FaultWorker: 0,
		FaultOp:     "InsertPair(101,102)",
		Verdict:     "non-linearizable",
		Final:       "size=2 [7 9]",
		History: []inject.ConcurOp{
			{Worker: 0, Name: "InsertPair(101,102)", Resp: "throw:IllegalElementException", Faulted: true, Start: 0, End: 5},
			{Worker: 1, Name: "RemoveFirst", Resp: "101", Start: 1, End: 4},
		},
	}
	return &inject.Result{
		Program:     &inject.Program{Name: "LinkedList", Lang: "java", Registry: core.NewRegistry()},
		CleanCalls:  map[string]int64{"LockedList.InsertPair": 2},
		TotalPoints: 9,
		Injections:  1,
		Runs: []inject.Run{
			{Concur: clean},
			{
				InjectionPoint: 4,
				Strategy:       inject.ConcurStrategy,
				Arg:            0,
				Sched:          1,
				Injected:       nil,
				Concur:         faulted,
			},
		},
		Sections: []inject.Section{{Name: inject.ConcurStrategy, Text: "concurrent detection: rendered report\n"}},
	}
}

// TestConcurRoundTrip: schedule coordinate, outcome history and report
// sections survive Write/Read unchanged.
func TestConcurRoundTrip(t *testing.T) {
	res := concurResult()
	var buf bytes.Buffer
	if err := Write(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 2 {
		t.Fatalf("round-trip kept %d runs, want 2", len(got.Runs))
	}
	clean, faulted := got.Runs[0], got.Runs[1]
	if faulted.Key() == (inject.RunKey{}) {
		clean, faulted = faulted, clean
	}
	if clean.Concur == nil || clean.Concur.FaultWorker != -1 || clean.Concur.Verdict != "atomic" {
		t.Errorf("clean run outcome = %+v, want fault-free atomic", clean.Concur)
	}
	wantKey := inject.RunKey{Strategy: inject.ConcurStrategy, Point: 4, Arg: 0, Sched: 1}
	if faulted.Key() != wantKey {
		t.Errorf("faulted run key = %v, want %v", faulted.Key(), wantKey)
	}
	oc := faulted.Concur
	if oc == nil {
		t.Fatal("faulted run lost its concur outcome")
	}
	if oc.FaultOp != "InsertPair(101,102)" || oc.Verdict != "non-linearizable" {
		t.Errorf("outcome = %+v, want the recorded fault and verdict", oc)
	}
	if len(oc.History) != 2 || !oc.History[0].Faulted || oc.History[1].Resp != "101" {
		t.Errorf("history = %+v, want both recorded ops with the faulted mark", oc.History)
	}
	if len(got.Sections) != 1 || got.Sections[0].Name != inject.ConcurStrategy ||
		got.Sections[0].Text != res.Sections[0].Text {
		t.Errorf("sections = %+v, want the written section verbatim", got.Sections)
	}
}

// TestLegacyRunLineDecodes: a pre-concur log line carrying only the
// injection point decodes with zero strategy/sched coordinates and no
// outcome — old logs keep reading.
func TestLegacyRunLineDecodes(t *testing.T) {
	log := `{"format":"failatomic-log/1","program":"Old","lang":"java"}
{"injectionPoint":3}
`
	got, err := Read(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 {
		t.Fatalf("decoded %d runs, want 1", len(got.Runs))
	}
	run := got.Runs[0]
	if run.InjectionPoint != 3 || run.Strategy != "" || run.Sched != 0 || run.Arg != 0 || run.Concur != nil {
		t.Errorf("legacy run = %+v, want bare injection point with zero concur coordinates", run)
	}
	if len(got.Sections) != 0 {
		t.Errorf("legacy log grew sections: %+v", got.Sections)
	}
}

// TestSeededJournalRoundTrip: a run appended to a seeded journal is
// recovered by a resume under the same seed.
func TestSeededJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := CreateJournalSeeded(path, "LinkedList", "java", 5)
	if err != nil {
		t.Fatal(err)
	}
	run := concurResult().Runs[1]
	if err := j.Append(run); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	runs, j2, err := ResumeJournalSeeded(path, "LinkedList", "java", 5)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got, ok := runs[run.Key()]
	if !ok {
		t.Fatalf("resume recovered keys %v, want %v", runs, run.Key())
	}
	if got.Concur == nil || got.Concur.Verdict != "non-linearizable" || len(got.Concur.History) != 2 {
		t.Errorf("recovered run outcome = %+v, want the journaled history and verdict", got.Concur)
	}
}

// TestSeededJournalRejectsSeedMismatch: resuming under a different seed
// fails loudly — the journaled runs belong to a different schedule plan.
func TestSeededJournalRejectsSeedMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := CreateJournalSeeded(path, "LinkedList", "java", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, err = ResumeJournalSeeded(path, "LinkedList", "java", 6)
	if err == nil {
		t.Fatal("seed-6 resume of a seed-5 journal succeeded, want rejection")
	}
	for _, want := range []string{"seed 5", "seed 6", "-seed 5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("mismatch error %q lacks %q", err, want)
		}
	}
}

// TestUnseededJournalHeaderBytesUnchanged: seed 0 keeps the legacy header
// byte-for-byte — single-threaded campaigns' journals are unaffected by
// the seed field, and legacy journals (no seed key) resume as seed 0.
func TestUnseededJournalHeaderBytesUnchanged(t *testing.T) {
	dir := t.TempDir()
	plain, seeded := filepath.Join(dir, "plain.journal"), filepath.Join(dir, "seeded.journal")
	jp, err := CreateJournal(plain, "Dynarray", "java")
	if err != nil {
		t.Fatal(err)
	}
	jp.Close()
	js, err := CreateJournalSeeded(seeded, "Dynarray", "java", 0)
	if err != nil {
		t.Fatal(err)
	}
	js.Close()

	bp, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := os.ReadFile(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bp, bs) {
		t.Errorf("seed-0 header differs from the unseeded header:\n%s%s", bp, bs)
	}
	if bytes.Contains(bp, []byte("seed")) {
		t.Errorf("unseeded header carries a seed key: %s", bp)
	}

	runs, j, err := ResumeJournal(plain, "Dynarray", "java")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(runs) != 0 {
		t.Errorf("empty journal resumed %d runs", len(runs))
	}
}
