package replog

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"failatomic/internal/apps"
	"failatomic/internal/detect"
	"failatomic/internal/inject"
)

func campaign(t *testing.T) *inject.Result {
	t.Helper()
	app, ok := apps.ByName("Dynarray")
	if !ok {
		t.Fatal("Dynarray app missing")
	}
	res, err := inject.Campaign(context.Background(), app.Build(), inject.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRoundTripPreservesClassification(t *testing.T) {
	res := campaign(t)
	var buf bytes.Buffer
	if err := Write(&buf, res); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Program.Name != "Dynarray" || loaded.Program.Lang != "java" {
		t.Fatalf("program identity lost: %+v", loaded.Program)
	}
	if loaded.TotalPoints != res.TotalPoints || loaded.Injections != res.Injections {
		t.Fatal("campaign statistics lost")
	}
	if len(loaded.Runs) != len(res.Runs) {
		t.Fatalf("runs %d != %d", len(loaded.Runs), len(res.Runs))
	}

	orig := detect.Classify(res, detect.Options{})
	replayed := detect.Classify(loaded, detect.Options{})
	if len(orig.Methods) != len(replayed.Methods) {
		t.Fatalf("method counts differ: %d != %d", len(orig.Methods), len(replayed.Methods))
	}
	for name, rep := range orig.Methods {
		got := replayed.Methods[name]
		if got == nil {
			t.Fatalf("method %s lost", name)
		}
		if got.Classification != rep.Classification {
			t.Errorf("%s: %v != %v", name, got.Classification, rep.Classification)
		}
		if got.Class != rep.Class || got.Calls != rep.Calls {
			t.Errorf("%s: metadata differs", name)
		}
	}
}

func TestRoundTripExceptionFree(t *testing.T) {
	res := campaign(t)
	var buf bytes.Buffer
	if err := Write(&buf, res); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	opts := detect.Options{ExceptionFree: map[string]bool{"Dynarray.screen": true}}
	orig := detect.Classify(res, opts)
	replayed := detect.Classify(loaded, opts)
	for name, rep := range orig.Methods {
		if replayed.Methods[name].Classification != rep.Classification {
			t.Errorf("%s: hint replay differs", name)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty log must error")
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage header must error")
	}
	if _, err := Read(strings.NewReader(`{"format":"other/9"}` + "\n")); err == nil {
		t.Fatal("unknown format must error")
	}
	if _, err := Read(strings.NewReader(`{"format":"failatomic-log/1"}` + "\nnope\n")); err == nil {
		t.Fatal("garbage run line must error")
	}
}
