// Campaign journal: the crash-safe half of the log pipeline. While a
// campaign runs, every completed run is appended to a journal file the
// moment it finishes — one JSON line per run, in completion order, each
// written with a single write so a kill can tear at most the final line.
// After a crash, ResumeJournal recovers every intact line (dropping a
// torn tail), and the campaign splices the recovered runs instead of
// re-executing them; the final point-ordered log is then rewritten whole
// by Write, so an interrupted-and-resumed campaign produces a log
// byte-identical to an uninterrupted one over a deterministic workload.
package replog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"failatomic/internal/inject"
)

// JournalFormatVersion identifies the journal format (distinct from the
// final log format: journals are completion-ordered and header-light).
const JournalFormatVersion = "failatomic-journal/1"

// journalHeader is the journal's first line. Seed is recorded only by
// schedule-dependent (seeded) campaigns; the zero value is omitted, so
// journals of plain detect campaigns stay byte-identical to the
// pre-seed format and legacy journals decode as seed 0.
type journalHeader struct {
	Format  string `json:"format"`
	Program string `json:"program"`
	Lang    string `json:"lang,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
}

// Journal is an open, append-only campaign journal. Append is safe for
// concurrent use by parallel campaign workers.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// CreateJournal starts a fresh journal at path, truncating any previous
// one, and writes its header.
func CreateJournal(path, program, lang string) (*Journal, error) {
	return CreateJournalSeeded(path, program, lang, 0)
}

// CreateJournalSeeded is CreateJournal for a schedule-dependent campaign:
// the campaign seed is recorded in the header so a resume under a
// different seed is rejected instead of splicing runs from a different
// schedule plan. Seed 0 (the single-threaded campaigns) keeps the legacy
// header bytes.
func CreateJournalSeeded(path, program, lang string, seed int64) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("replog: journal: %w", err)
	}
	hdr, err := json.Marshal(journalHeader{Format: JournalFormatVersion, Program: program, Lang: lang, Seed: seed})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("replog: journal header: %w", err)
	}
	if _, err := f.Write(append(hdr, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("replog: journal header: %w", err)
	}
	return &Journal{f: f}, nil
}

// ResumeJournal reopens the journal at path for a crash-safe resume. It
// returns the runs recovered from intact lines, keyed by run key (first
// occurrence wins; legacy lines carry no strategy coordinate and decode
// as the default strategy), truncates a torn tail so subsequent appends
// leave a clean file, and positions the journal for appending. A missing
// file starts a fresh journal with an empty recovery — so "-resume" is
// safe on the first run too. A journal written for a different program is
// rejected.
func ResumeJournal(path, program, lang string) (map[inject.RunKey]inject.Run, *Journal, error) {
	return ResumeJournalSeeded(path, program, lang, 0)
}

// ResumeJournalSeeded is ResumeJournal for a schedule-dependent campaign:
// a journal recorded under a different seed is rejected with a clear
// error, since its runs belong to a different schedule plan and splicing
// them would corrupt the campaign.
func ResumeJournalSeeded(path, program, lang string, seed int64) (map[inject.RunKey]inject.Run, *Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		j, cerr := CreateJournalSeeded(path, program, lang, seed)
		return map[inject.RunKey]inject.Run{}, j, cerr
	}
	if err != nil {
		return nil, nil, fmt.Errorf("replog: journal: %w", err)
	}

	r := bufio.NewReaderSize(f, 1<<20)
	hdrLine, err := r.ReadBytes('\n')
	if err != nil {
		// No complete header: treat as an empty journal and start over.
		f.Close()
		j, cerr := CreateJournalSeeded(path, program, lang, seed)
		return map[inject.RunKey]inject.Run{}, j, cerr
	}
	var hdr journalHeader
	if jerr := json.Unmarshal(hdrLine, &hdr); jerr != nil || hdr.Format != JournalFormatVersion {
		f.Close()
		return nil, nil, fmt.Errorf("replog: %s is not a %s journal", path, JournalFormatVersion)
	}
	if hdr.Program != program {
		f.Close()
		return nil, nil, fmt.Errorf("replog: journal %s was written for program %q, not %q", path, hdr.Program, program)
	}
	if hdr.Seed != seed {
		f.Close()
		return nil, nil, fmt.Errorf("replog: journal %s was recorded under seed %d, but this campaign runs seed %d; its runs belong to a different schedule plan — delete the journal or rerun with -seed %d", path, hdr.Seed, seed, hdr.Seed)
	}

	runs := make(map[inject.RunKey]inject.Run)
	offset := int64(len(hdrLine))
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			f.Close()
			return nil, nil, fmt.Errorf("replog: journal: %w", rerr)
		}
		// A line is intact only if newline-terminated and parseable;
		// anything else is a torn tail from the crash — drop it and let
		// the campaign re-run that experiment.
		var rl runLine
		if rerr == io.EOF || json.Unmarshal(line, &rl) != nil {
			break
		}
		offset += int64(len(line))
		run := runFromLine(rl)
		if _, seen := runs[run.Key()]; !seen {
			runs[run.Key()] = run
		}
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("replog: journal truncate: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("replog: journal seek: %w", err)
	}
	return runs, &Journal{f: f}, nil
}

// Append journals one completed run. The line reaches the kernel in a
// single write before Append returns, so a killed process loses at most
// the run in flight (fsync is deferred to Close: journals protect against
// process death, not power loss).
func (j *Journal) Append(run inject.Run) error {
	buf, err := json.Marshal(runToLine(run))
	if err != nil {
		return fmt.Errorf("replog: journal run %s: %w", run.Key(), err)
	}
	buf = append(buf, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("replog: journal run %s: journal is closed", run.Key())
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("replog: journal run %s: %w", run.Key(), err)
	}
	return nil
}

// Close syncs and closes the journal file. The file itself is left on
// disk; the caller removes it once the final log is safely written.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
