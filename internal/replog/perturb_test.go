package replog

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"failatomic/internal/apps"
	"failatomic/internal/inject"
)

// perturbedRuns executes a small multi-strategy campaign so the journal
// tests exercise real strategy-coordinate keys (burst pairs, nth sweeps,
// deferred-cleanup ordinals) rather than hand-built runs.
func perturbedRuns(t *testing.T) []inject.Run {
	t.Helper()
	app, ok := apps.ByName("adaptorChain")
	if !ok {
		t.Fatal("adaptorChain missing")
	}
	perts, err := inject.ParsePerturbations("nth=2,burst=16,defer,oblivious")
	if err != nil {
		t.Fatal(err)
	}
	res, err := inject.Campaign(context.Background(), app.Build(), inject.Options{
		Perturbations: perts,
		Scoped:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	strategies := map[string]bool{}
	for _, r := range res.Runs {
		strategies[r.Strategy] = true
	}
	for _, want := range []string{"", "nth", "burst", "defer", "oblivious"} {
		if !strategies[want] {
			t.Fatalf("campaign produced no %q runs", want)
		}
	}
	return res.Runs
}

func TestJournalStrategyKeyRoundTrip(t *testing.T) {
	runs := perturbedRuns(t)
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := CreateJournal(path, "adaptorChain", "cpp")
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, runs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, j2, err := ResumeJournal(path, "adaptorChain", "cpp")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != len(runs) {
		t.Fatalf("recovered %d runs, want %d", len(got), len(runs))
	}
	for _, want := range runs {
		rec, ok := got[want.Key()]
		if !ok {
			t.Fatalf("%s missing from recovery", want.Key())
		}
		if rec.Strategy != want.Strategy || rec.InjectionPoint != want.InjectionPoint ||
			rec.Arg != want.Arg || len(rec.Marks) != len(want.Marks) {
			t.Fatalf("%s round-trip mismatch: %+v vs %+v", want.Key(), rec, want)
		}
	}
}

// TestLegacyJournalDecodesAsDefaultStrategy: journal lines written before
// the strategy coordinate existed carry no "strategy"/"arg" fields; they
// must decode as default-sweep keys so old journals resume unchanged.
func TestLegacyJournalDecodesAsDefaultStrategy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := CreateJournal(path, "p", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"injectionPoint":2,"err":"legacy"}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, j2, err := ResumeJournal(path, "p", "")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rec, ok := got[inject.RunKey{Point: 2}]
	if !ok {
		t.Fatalf("legacy line not recovered under the default-strategy key: %v", got)
	}
	if rec.Strategy != "" || rec.Arg != 0 || rec.Err != "legacy" {
		t.Fatalf("legacy line decoded as %+v", rec)
	}
}

// TestJournalDropsTornMidBurstTail: a kill mid-append of a burst run must
// lose only that run; the intact strategy-run prefix resumes, and the
// journal stays appendable.
func TestJournalDropsTornMidBurstTail(t *testing.T) {
	runs := perturbedRuns(t)
	var bursts []inject.Run
	for _, r := range runs {
		if r.Strategy == "burst" {
			bursts = append(bursts, r)
		}
	}
	if len(bursts) < 3 {
		t.Fatalf("need at least 3 burst runs, have %d", len(bursts))
	}
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := CreateJournal(path, "adaptorChain", "cpp")
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, bursts[:2])
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"strategy":"burst","injectionPoint":9,"arg":1`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, j2, err := ResumeJournal(path, "adaptorChain", "cpp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("recovered %d runs, want 2 (torn burst line dropped)", len(got))
	}
	for _, want := range bursts[:2] {
		if _, ok := got[want.Key()]; !ok {
			t.Fatalf("%s missing after torn-tail recovery", want.Key())
		}
	}
	appendAll(t, j2, bursts[2:3])
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	got2, j3, err := ResumeJournal(path, "adaptorChain", "cpp")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(got2) != 3 {
		t.Fatalf("recovered %d runs after truncate+append, want 3", len(got2))
	}
}

// TestChunkOrdersStrategyKeysDeterministically: chunk bytes over a
// multi-strategy run set sort by RunKey (strategy, point, arg) with the
// default strategy first, so shipped chunks are byte-stable.
func TestChunkOrdersStrategyKeysDeterministically(t *testing.T) {
	runs := perturbedRuns(t)
	m := map[inject.RunKey]inject.Run{}
	for _, r := range runs {
		m[r.Key()] = r
	}
	a, err := EncodeChunkBytes(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeChunkBytes(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("chunk encoding of a multi-strategy run set is not deterministic")
	}
	got, err := DecodeChunkRuns(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(m) {
		t.Fatalf("decoded %d runs, want %d", len(got), len(m))
	}
	for k := range m {
		if _, ok := got[k]; !ok {
			t.Fatalf("%s missing from decoded chunk", k)
		}
	}
}
