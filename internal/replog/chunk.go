// Chunk framing: the wire form runs travel in between a faserve
// coordinator and its faworker executors. A chunk is a self-delimiting
// batch of journal run lines — a count-bearing header line followed by
// exactly that many run lines — so the receiver can tell a complete
// shipment from one truncated by a dying worker or a cut connection: a
// torn chunk fails to decode instead of silently importing a prefix.
// Chunks carry the same runLine encoding the journal and the final log
// use, which is what keeps a shipped run byte-equivalent to a locally
// journaled one.
package replog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"failatomic/internal/inject"
)

// ChunkFormatVersion identifies the chunk framing.
const ChunkFormatVersion = "failatomic-chunk/1"

// chunkHeader is the chunk's first line. Runs is the exact number of run
// lines that follow; a short read is detectable by count.
type chunkHeader struct {
	Format string `json:"format"`
	Runs   int    `json:"runs"`
}

// EncodeChunk frames runs as one chunk on w.
func EncodeChunk(w io.Writer, runs []inject.Run) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(chunkHeader{Format: ChunkFormatVersion, Runs: len(runs)}); err != nil {
		return fmt.Errorf("replog: chunk header: %w", err)
	}
	for _, run := range runs {
		if err := enc.Encode(runToLine(run)); err != nil {
			return fmt.Errorf("replog: chunk run %s: %w", run.Key(), err)
		}
	}
	return nil
}

// EncodeChunkBytes frames runs as one in-memory chunk, sorted by run key
// — strategy first, then point, then argument — so the same run set
// always encodes to the same bytes (the coordinator uses this for the
// resume prefix it hands a worker). A default-strategy-only set orders
// purely by injection point, exactly as before the strategy coordinate
// existed.
func EncodeChunkBytes(runs map[inject.RunKey]inject.Run) ([]byte, error) {
	keys := make([]inject.RunKey, 0, len(runs))
	for k := range runs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	ordered := make([]inject.Run, 0, len(keys))
	for _, k := range keys {
		ordered = append(ordered, runs[k])
	}
	var buf bytes.Buffer
	if err := EncodeChunk(&buf, ordered); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeChunk reads one complete chunk from r. It fails on an unknown
// format, a malformed line, or a run count short of the header's — the
// torn-shipment case — so the caller either imports the whole chunk or
// none of it.
func DecodeChunk(r io.Reader) ([]inject.Run, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdrLine, err := readChunkLine(br)
	if err != nil {
		return nil, fmt.Errorf("replog: chunk header: %w", err)
	}
	var hdr chunkHeader
	if err := json.Unmarshal(hdrLine, &hdr); err != nil {
		return nil, fmt.Errorf("replog: chunk header: %w", err)
	}
	if hdr.Format != ChunkFormatVersion {
		return nil, fmt.Errorf("replog: chunk format %q is not %s", hdr.Format, ChunkFormatVersion)
	}
	if hdr.Runs < 0 {
		return nil, fmt.Errorf("replog: chunk declares %d runs", hdr.Runs)
	}
	runs := make([]inject.Run, 0, hdr.Runs)
	for i := 0; i < hdr.Runs; i++ {
		line, err := readChunkLine(br)
		if err != nil {
			return nil, fmt.Errorf("replog: chunk truncated at run %d of %d: %w", i+1, hdr.Runs, err)
		}
		var rl runLine
		if err := json.Unmarshal(line, &rl); err != nil {
			return nil, fmt.Errorf("replog: chunk run %d of %d: %w", i+1, hdr.Runs, err)
		}
		runs = append(runs, runFromLine(rl))
	}
	return runs, nil
}

// DecodeChunkRuns decodes a chunk into a run-key-keyed map, first
// occurrence winning — the same rule ResumeJournal applies — ready to use
// as inject.Options.Completed.
func DecodeChunkRuns(data []byte) (map[inject.RunKey]inject.Run, error) {
	runs, err := DecodeChunk(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	m := make(map[inject.RunKey]inject.Run, len(runs))
	for _, run := range runs {
		if _, seen := m[run.Key()]; !seen {
			m[run.Key()] = run
		}
	}
	return m, nil
}

// readChunkLine returns one newline-terminated line. A line missing its
// terminator is a truncation, reported as io.ErrUnexpectedEOF.
func readChunkLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if err == io.EOF {
		return nil, io.ErrUnexpectedEOF
	}
	if err != nil {
		return nil, err
	}
	return line, nil
}
