package replog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"failatomic/internal/core"
	"failatomic/internal/fault"
	"failatomic/internal/inject"
)

func chunkRuns() []inject.Run {
	return []inject.Run{
		{InjectionPoint: 0},
		{
			InjectionPoint: 2,
			Injected:       &fault.Exception{Kind: fault.Kind("alloc"), Method: "Set.Insert", Injected: true, Point: 2},
			Marks: []core.Mark{
				{Method: "Set.Insert", Seq: 1, Atomic: false, Diff: "size 3 != 2"},
			},
		},
		{
			InjectionPoint: 1,
			Status:         inject.RunHung,
			Retries:        2,
			Err:            "run timed out",
		},
	}
}

func TestChunkRoundTrip(t *testing.T) {
	runs := chunkRuns()
	var buf bytes.Buffer
	if err := EncodeChunk(&buf, runs); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeChunk(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, runs) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, runs)
	}
}

func TestChunkBytesDeterministicOrder(t *testing.T) {
	runs := chunkRuns()
	m := map[inject.RunKey]inject.Run{}
	for _, r := range runs {
		m[r.Key()] = r
	}
	a, err := EncodeChunkBytes(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeChunkBytes(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("EncodeChunkBytes is not deterministic")
	}
	decoded, err := DecodeChunkRuns(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(m) {
		t.Fatalf("decoded %d runs, want %d", len(decoded), len(m))
	}
	for p, r := range m {
		if !reflect.DeepEqual(decoded[p], r) {
			t.Fatalf("%s mismatch: %+v != %+v", p, decoded[p], r)
		}
	}
}

func TestChunkTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeChunk(&buf, chunkRuns()); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Cut mid-final-line (torn write) and after a complete line but short
	// of the declared count (lost tail): both must fail, not import a
	// prefix.
	cuts := []int{len(whole) - 5, bytes.LastIndexByte(whole[:len(whole)-1], '\n') + 1}
	for _, cut := range cuts {
		if _, err := DecodeChunk(bytes.NewReader(whole[:cut])); err == nil {
			t.Errorf("cut at %d of %d decoded successfully, want truncation error", cut, len(whole))
		} else if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "unexpected EOF") {
			t.Errorf("cut at %d: error %v does not name the truncation", cut, err)
		}
	}
}

func TestChunkRejectsForeignFormat(t *testing.T) {
	if _, err := DecodeChunk(strings.NewReader(`{"format":"failatomic-journal/1","runs":0}` + "\n")); err == nil {
		t.Fatal("journal header accepted as a chunk")
	}
	if _, err := DecodeChunk(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage header accepted as a chunk")
	}
}

func TestChunkFirstOccurrenceWins(t *testing.T) {
	first := inject.Run{InjectionPoint: 7, Err: "first"}
	second := inject.Run{InjectionPoint: 7, Err: "second"}
	var buf bytes.Buffer
	if err := EncodeChunk(&buf, []inject.Run{first, second}); err != nil {
		t.Fatal(err)
	}
	m, err := DecodeChunkRuns(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := m[inject.RunKey{Point: 7}].Err; got != "first" {
		t.Fatalf("duplicate point resolved to %q, want the first occurrence", got)
	}
}
