// Package replog serializes detection-campaign results as JSON-lines log
// files. The paper's injection wrappers write their atomicity checks to
// log files that are "processed offline to classify each method" (§5.1,
// Step 3); fadetect -log writes this format and fareport replays it
// through the classifier.
package replog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"failatomic/internal/core"
	"failatomic/internal/fault"
	"failatomic/internal/inject"
)

// header is the first log line: campaign-level facts.
type header struct {
	Format      string               `json:"format"`
	Program     string               `json:"program"`
	Lang        string               `json:"lang"`
	Classes     map[string]classInfo `json:"classes"`
	CleanCalls  map[string]int64     `json:"cleanCalls"`
	TotalPoints int                  `json:"totalPoints"`
	Injections  int                  `json:"injections"`
}

type classInfo struct {
	Class string `json:"class"`
	Ctor  bool   `json:"ctor,omitempty"`
}

// runLine is one injector execution. The strategy coordinate fields are
// omitted when empty, so logs and journals of default-sweep campaigns are
// byte-identical to the pre-perturbation format, and legacy lines — which
// never carried them — decode as the default strategy.
type runLine struct {
	InjectionPoint int        `json:"injectionPoint"`
	Strategy       string     `json:"strategy,omitempty"`
	Arg            int        `json:"arg,omitempty"`
	Sched          int        `json:"sched,omitempty"`
	Injected       *excJSON   `json:"injected,omitempty"`
	Escaped        *excJSON   `json:"escaped,omitempty"`
	Marks          []markJSON `json:"marks,omitempty"`
	// Status/Retries/Err record supervisor quarantine outcomes
	// ("hung"/"undetermined"); absent for normal runs.
	Status  string `json:"status,omitempty"`
	Retries int    `json:"retries,omitempty"`
	Err     string `json:"err,omitempty"`
	// Concur is a concurrent schedule's observation record; it is already
	// a pure JSON data type, so it serializes as-is.
	Concur *inject.ConcurOutcome `json:"concur,omitempty"`
}

type excJSON struct {
	Kind     string `json:"kind"`
	Method   string `json:"method"`
	Msg      string `json:"msg,omitempty"`
	Injected bool   `json:"injected,omitempty"`
	Point    int    `json:"point,omitempty"`
	Foreign  bool   `json:"foreign,omitempty"`
	Stack    string `json:"stack,omitempty"`
}

type markJSON struct {
	Method    string   `json:"method"`
	Seq       int      `json:"seq"`
	Atomic    bool     `json:"atomic"`
	Diff      string   `json:"diff,omitempty"`
	Exception *excJSON `json:"exception,omitempty"`
	Masked    bool     `json:"masked,omitempty"`
}

// FormatVersion identifies the log format.
const FormatVersion = "failatomic-log/1"

// Write serializes a campaign result as JSON lines.
func Write(w io.Writer, res *inject.Result) error {
	classes := make(map[string]classInfo)
	record := func(name string) {
		if _, ok := classes[name]; ok {
			return
		}
		info := res.Program.Registry.Info(name)
		ci := classInfo{Class: res.Program.Registry.ClassOf(name)}
		if info != nil {
			ci.Ctor = info.Ctor
		}
		classes[name] = ci
	}
	for name := range res.CleanCalls {
		record(name)
	}
	for _, run := range res.Runs {
		for _, m := range run.Marks {
			record(m.Method)
		}
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(header{
		Format:      FormatVersion,
		Program:     res.Program.Name,
		Lang:        res.Program.Lang,
		Classes:     classes,
		CleanCalls:  res.CleanCalls,
		TotalPoints: res.TotalPoints,
		Injections:  res.Injections,
	}); err != nil {
		return fmt.Errorf("replog: header: %w", err)
	}
	for _, run := range res.Runs {
		if err := enc.Encode(runToLine(run)); err != nil {
			return fmt.Errorf("replog: run %d: %w", run.InjectionPoint, err)
		}
	}
	// Sections trail the runs. A section line is distinguished by its
	// "section" key, which no run line carries, so pre-section readers
	// that probe before decoding skip nothing by accident.
	for _, sec := range res.Sections {
		if sec.Name == "" {
			return fmt.Errorf("replog: section with empty name")
		}
		if err := enc.Encode(sec); err != nil {
			return fmt.Errorf("replog: section %s: %w", sec.Name, err)
		}
	}
	return nil
}

// runToLine converts one execution to its serialized form.
func runToLine(run inject.Run) runLine {
	line := runLine{
		InjectionPoint: run.InjectionPoint,
		Strategy:       run.Strategy,
		Arg:            run.Arg,
		Sched:          run.Sched,
		Injected:       excToJSON(run.Injected),
		Escaped:        excToJSON(run.Escaped),
		Retries:        run.Retries,
		Err:            run.Err,
		Concur:         run.Concur,
	}
	if run.Status != inject.RunOK {
		line.Status = run.Status.String()
	}
	if len(run.Marks) > 0 {
		line.Marks = make([]markJSON, 0, len(run.Marks))
	}
	for _, m := range run.Marks {
		line.Marks = append(line.Marks, markJSON{
			Method:    m.Method,
			Seq:       m.Seq,
			Atomic:    m.Atomic,
			Diff:      m.Diff,
			Exception: excToJSON(m.Exception),
			Masked:    m.Masked,
		})
	}
	return line
}

// runFromLine reconstructs one execution from its serialized form.
func runFromLine(line runLine) inject.Run {
	run := inject.Run{
		InjectionPoint: line.InjectionPoint,
		Strategy:       line.Strategy,
		Arg:            line.Arg,
		Sched:          line.Sched,
		Injected:       excFromJSON(line.Injected),
		Escaped:        excFromJSON(line.Escaped),
		Status:         statusFromString(line.Status),
		Retries:        line.Retries,
		Err:            line.Err,
		Concur:         line.Concur,
	}
	for _, m := range line.Marks {
		run.Marks = append(run.Marks, core.Mark{
			Method:    m.Method,
			Seq:       m.Seq,
			Atomic:    m.Atomic,
			Diff:      m.Diff,
			Exception: excFromJSON(m.Exception),
			Masked:    m.Masked,
		})
	}
	return run
}

func statusFromString(s string) inject.RunStatus {
	switch s {
	case inject.RunHung.String():
		return inject.RunHung
	case inject.RunUndetermined.String():
		return inject.RunUndetermined
	default:
		return inject.RunOK
	}
}

// Read reconstructs a campaign result from a JSON-lines log. The returned
// result carries a synthetic Program (no Run function) sufficient for
// classification.
func Read(r io.Reader) (*inject.Result, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	if !scanner.Scan() {
		return nil, fmt.Errorf("replog: empty log")
	}
	var hdr header
	if err := json.Unmarshal(scanner.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("replog: header: %w", err)
	}
	if hdr.Format != FormatVersion {
		return nil, fmt.Errorf("replog: unknown format %q", hdr.Format)
	}

	reg := core.NewRegistry()
	for name, ci := range hdr.Classes {
		if ci.Ctor {
			reg.Ctor(ci.Class, name)
			continue
		}
		bare := name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			bare = name[i+1:]
		}
		reg.Method(ci.Class, bare)
	}

	res := &inject.Result{
		Program: &inject.Program{
			Name:     hdr.Program,
			Lang:     hdr.Lang,
			Registry: reg,
		},
		CleanCalls:  hdr.CleanCalls,
		TotalPoints: hdr.TotalPoints,
		Injections:  hdr.Injections,
	}
	for scanner.Scan() {
		if len(scanner.Bytes()) == 0 {
			continue
		}
		// Probe for a section line before decoding a run: sections carry a
		// "section" key no run line has.
		var probe struct {
			Section *string `json:"section"`
		}
		if json.Unmarshal(scanner.Bytes(), &probe) == nil && probe.Section != nil {
			var sec inject.Section
			if err := json.Unmarshal(scanner.Bytes(), &sec); err != nil {
				return nil, fmt.Errorf("replog: section line: %w", err)
			}
			res.Sections = append(res.Sections, sec)
			continue
		}
		var line runLine
		if err := json.Unmarshal(scanner.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("replog: run line: %w", err)
		}
		run := runFromLine(line)
		res.Runs = append(res.Runs, run)
		if run.Status != inject.RunOK && run.Key() != (inject.RunKey{}) {
			q := inject.Quarantine{
				InjectionPoint: run.InjectionPoint,
				Strategy:       run.Strategy,
				Arg:            run.Arg,
				Status:         run.Status,
				Retries:        run.Retries,
				Err:            run.Err,
			}
			if run.Escaped != nil {
				q.Kind = run.Escaped.Kind
			}
			res.Quarantined = append(res.Quarantined, q)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("replog: %w", err)
	}
	return res, nil
}

func excToJSON(e *fault.Exception) *excJSON {
	if e == nil {
		return nil
	}
	return &excJSON{
		Kind:     string(e.Kind),
		Method:   e.Method,
		Msg:      e.Msg,
		Injected: e.Injected,
		Point:    e.Point,
		Foreign:  e.Foreign,
		Stack:    e.Stack,
	}
}

func excFromJSON(e *excJSON) *fault.Exception {
	if e == nil {
		return nil
	}
	return &fault.Exception{
		Kind:     fault.Kind(e.Kind),
		Method:   e.Method,
		Msg:      e.Msg,
		Injected: e.Injected,
		Point:    e.Point,
		Foreign:  e.Foreign,
		Stack:    e.Stack,
	}
}
