package replog

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"failatomic/internal/apps"
	"failatomic/internal/inject"
)

func campaignRuns(t *testing.T) []inject.Run {
	t.Helper()
	app, ok := apps.ByName("HashedSet")
	if !ok {
		t.Fatal("HashedSet missing")
	}
	res, err := inject.Campaign(context.Background(), app.Build(), inject.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Runs
}

func appendAll(t *testing.T, j *Journal, runs []inject.Run) {
	t.Helper()
	for _, r := range runs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	runs := campaignRuns(t)
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := CreateJournal(path, "HashedSet", "java")
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, runs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, j2, err := ResumeJournal(path, "HashedSet", "java")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != len(runs) {
		t.Fatalf("recovered %d runs, want %d", len(got), len(runs))
	}
	for _, want := range runs {
		rec, ok := got[want.Key()]
		if !ok {
			t.Fatalf("point %d missing from recovery", want.InjectionPoint)
		}
		if rec.InjectionPoint != want.InjectionPoint || len(rec.Marks) != len(want.Marks) {
			t.Fatalf("point %d round-trip mismatch: %+v vs %+v", want.InjectionPoint, rec, want)
		}
	}
}

func TestJournalDropsTornTail(t *testing.T) {
	runs := campaignRuns(t)
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := CreateJournal(path, "HashedSet", "java")
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, runs[:3])
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-write: append half a line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"injectionPoint":3,"inj`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, j2, err := ResumeJournal(path, "HashedSet", "java")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("recovered %d runs, want 3 (torn tail dropped)", len(got))
	}
	// Appending after recovery must leave a cleanly parseable journal.
	appendAll(t, j2, runs[3:4])
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	got2, j3, err := ResumeJournal(path, "HashedSet", "java")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(got2) != 4 {
		t.Fatalf("recovered %d runs after truncate+append, want 4", len(got2))
	}
}

func TestJournalRejectsWrongProgram(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := CreateJournal(path, "HashedSet", "java")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, err := ResumeJournal(path, "LinkedList", "java"); err == nil ||
		!strings.Contains(err.Error(), "written for program") {
		t.Fatalf("err = %v, want program-mismatch rejection", err)
	}
}

func TestJournalFirstOccurrenceWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, err := CreateJournal(path, "p", "")
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, []inject.Run{
		{InjectionPoint: 1, Err: "first"},
		{InjectionPoint: 1, Err: "second"},
	})
	j.Close()
	got, j2, err := ResumeJournal(path, "p", "")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got[inject.RunKey{Point: 1}].Err != "first" {
		t.Fatalf("duplicate point resolved to %q, want the first occurrence", got[inject.RunKey{Point: 1}].Err)
	}
}

func TestResumeMissingJournalStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	got, j, err := ResumeJournal(path, "p", "")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(got) != 0 {
		t.Fatalf("fresh journal recovered %d runs", len(got))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("resume must create the journal for subsequent appends: %v", err)
	}
}

func TestResumeRejectsNonJournalFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	if err := os.WriteFile(path, []byte("{\"format\":\"something-else/9\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResumeJournal(path, "p", ""); err == nil {
		t.Fatal("foreign format must be rejected")
	}
}
