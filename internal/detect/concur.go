// Concurrent-campaign classification. A concurrent schedule's outcome is
// already checked against the sequential reference model when the
// schedule runs (internal/concur stores the verdict on the run); this
// file aggregates the stored verdicts — the offline half, symmetric with
// Classify over marks — and renders the report section.
package detect

import (
	"fmt"
	"sort"
	"strings"

	"failatomic/internal/inject"
)

// ConcurVerdict is a concurrent schedule's linearization verdict.
type ConcurVerdict int

// Verdict values. A schedule is atomic when its history is explained by a
// linearization in which the faulted operation had no effect (the fault
// rolled back completely); non-atomic but linearizable when only a
// linearization with the faulted operation's full effect explains it (the
// fault committed, honestly); non-linearizable when no linearization of
// the sequential model explains the history at all — the fault's partial
// effect leaked to another thread.
const (
	ConcurAtomic ConcurVerdict = iota + 1
	ConcurLinearizable
	ConcurNonLinearizable
)

// String returns the verdict name stored in outcomes and reports.
func (v ConcurVerdict) String() string {
	switch v {
	case ConcurAtomic:
		return "atomic"
	case ConcurLinearizable:
		return "non-atomic-but-linearizable"
	case ConcurNonLinearizable:
		return "non-linearizable"
	default:
		return "unclassified"
	}
}

// ParseConcurVerdict maps a stored verdict string back to its value;
// unknown strings classify conservatively as non-linearizable.
func ParseConcurVerdict(s string) ConcurVerdict {
	switch s {
	case ConcurAtomic.String():
		return ConcurAtomic
	case ConcurLinearizable.String():
		return ConcurLinearizable
	default:
		return ConcurNonLinearizable
	}
}

// ConcurRuns returns the concurrent runs of a result in schedule order:
// the fault-free pass (schedule 0, recorded under the clean run's empty
// key) first, then every faulted schedule.
func ConcurRuns(res *inject.Result) []inject.Run {
	var runs []inject.Run
	for _, run := range res.Runs {
		if run.Concur != nil {
			runs = append(runs, run)
		}
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].Sched < runs[j].Sched })
	return runs
}

// ConcurSummary aggregates the schedule verdicts of one concurrent
// campaign.
type ConcurSummary struct {
	// Clean is the fault-free pass's verdict ("" when no clean outcome
	// was recorded).
	Clean string
	// Schedules is the number of faulted schedules executed.
	Schedules int
	// Fired counts schedules in which the designated fault actually fired.
	Fired int
	// Atomic/Linearizable/NonLinearizable count faulted schedules per
	// verdict.
	Atomic          int
	Linearizable    int
	NonLinearizable int
	// MinFailingSched is the lowest non-linearizable schedule id (0 when
	// every schedule linearized) — the smallest reproducer to replay.
	MinFailingSched int
}

// SummarizeConcur rolls the stored schedule verdicts up.
func SummarizeConcur(res *inject.Result) ConcurSummary {
	var s ConcurSummary
	for _, run := range ConcurRuns(res) {
		if run.Concur.FaultWorker < 0 {
			s.Clean = run.Concur.Verdict
			continue
		}
		s.Schedules++
		if run.Injected != nil {
			s.Fired++
		}
		switch ParseConcurVerdict(run.Concur.Verdict) {
		case ConcurAtomic:
			s.Atomic++
		case ConcurLinearizable:
			s.Linearizable++
		default:
			s.NonLinearizable++
			if s.MinFailingSched == 0 || run.Sched < s.MinFailingSched {
				s.MinFailingSched = run.Sched
			}
		}
	}
	return s
}

// RenderConcur renders the concurrent-detection report section: the
// verdict tally, one line per schedule, and the full history of the
// minimal failing schedule when one exists. The text is stored as the
// result's "concur" section, so a report replayed from a log is
// byte-identical to the live one.
func RenderConcur(res *inject.Result, workers, schedules int, seed int64) string {
	runs := ConcurRuns(res)
	sum := SummarizeConcur(res)
	var b strings.Builder
	fmt.Fprintf(&b, "concurrent detection: %d workers, %d schedules, seed %d\n",
		workers, schedules, seed)
	if sum.Clean != "" {
		fmt.Fprintf(&b, "clean schedule -> %s\n", sum.Clean)
	}
	fmt.Fprintf(&b, "verdicts: %d atomic, %d non-atomic-but-linearizable, %d non-linearizable (%d/%d faults fired)\n",
		sum.Atomic, sum.Linearizable, sum.NonLinearizable, sum.Fired, sum.Schedules)
	for _, run := range runs {
		oc := run.Concur
		if oc.FaultWorker < 0 {
			continue
		}
		if run.Injected == nil {
			fmt.Fprintf(&b, "  sched %3d  worker %d point %d (never fired) -> %s\n",
				run.Sched, run.Arg, run.InjectionPoint, oc.Verdict)
			continue
		}
		fmt.Fprintf(&b, "  sched %3d  worker %d point %d %s -> %s\n",
			run.Sched, run.Arg, run.InjectionPoint, oc.FaultOp, oc.Verdict)
	}
	if sum.MinFailingSched != 0 {
		for _, run := range runs {
			if run.Sched != sum.MinFailingSched {
				continue
			}
			oc := run.Concur
			fmt.Fprintf(&b, "minimal failing schedule %d: worker %d point %d, faulted op %s\n",
				run.Sched, run.Arg, run.InjectionPoint, oc.FaultOp)
			b.WriteString("  history:\n")
			for _, op := range oc.History {
				mark := ""
				if op.Faulted {
					mark = " (faulted)"
				}
				fmt.Fprintf(&b, "    w%d [%2d,%2d] %s -> %s%s\n",
					op.Worker, op.Start, op.End, op.Name, op.Resp, mark)
			}
			fmt.Fprintf(&b, "  final: %s\n", oc.Final)
			b.WriteString("  no linearization of the sequential model explains this history\n")
			break
		}
	}
	return b.String()
}
