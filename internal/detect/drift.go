package detect

import (
	"fmt"
	"sort"
)

// Drift compares a fresh classification against a golden one and returns
// one human-readable line per divergence, sorted for stable output. An
// empty slice means the classifications agree on everything a regression
// gate cares about: the program identity, the method set, every method's
// verdict and clean-call weight, and the representative diff shown to the
// programmer. Mark tallies ride along so a verdict that stays the same by
// coincidence (e.g. still conditional, but from different runs) is still
// surfaced.
func Drift(got, want *Classification) []string {
	var out []string
	if got.Program != want.Program || got.Lang != want.Lang {
		out = append(out, fmt.Sprintf("program: got %s (%s), want %s (%s)",
			got.Program, got.Lang, want.Program, want.Lang))
	}

	names := map[string]bool{}
	for name := range got.Methods {
		names[name] = true
	}
	for name := range want.Methods {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		g, w := got.Methods[name], want.Methods[name]
		switch {
		case w == nil:
			out = append(out, fmt.Sprintf("%s: not in golden (got %s)", name, g.Classification))
		case g == nil:
			out = append(out, fmt.Sprintf("%s: missing (golden has %s)", name, w.Classification))
		default:
			if g.Classification != w.Classification {
				out = append(out, fmt.Sprintf("%s: classified %s, golden %s", name, g.Classification, w.Classification))
			}
			if g.Calls != w.Calls {
				out = append(out, fmt.Sprintf("%s: calls=%d, golden %d", name, g.Calls, w.Calls))
			}
			if g.AtomicMarks != w.AtomicMarks || g.NonAtomicMarks != w.NonAtomicMarks {
				out = append(out, fmt.Sprintf("%s: marks atomic=%d/non-atomic=%d, golden %d/%d",
					name, g.AtomicMarks, g.NonAtomicMarks, w.AtomicMarks, w.NonAtomicMarks))
			}
			if g.SampleDiff != w.SampleDiff {
				out = append(out, fmt.Sprintf("%s: sample diff %q, golden %q", name, g.SampleDiff, w.SampleDiff))
			}
		}
	}
	return out
}
