package detect

import (
	"context"
	"testing"

	"failatomic/internal/core"
	"failatomic/internal/fault"
	"failatomic/internal/inject"
)

// Regression test for per-exception mark grouping: §4.3's "first method
// marked non-atomic" rule applies per exception propagation, not per run.
// A workload that catches an organic exception early in the run must not
// steal "first" from a later, unrelated injection.
//
// sink.Deposit is pure failure non-atomic (count-then-throw organically on
// negative amounts, and count-then-delegate for injections). The workload
// first triggers the organic failure (caught), then keeps operating; the
// later injected exceptions unwind through Deposit again. Under per-run
// grouping the organic mark's low sequence number hides Deposit's
// first-ness in every injected run; per-exception grouping keeps it pure.
type sink struct {
	Total int
}

func (s *sink) Deposit(n int) {
	defer core.Enter(s, "sink.Deposit")()
	s.Total += n
	s.verify(n)
}

func (s *sink) verify(n int) {
	defer core.Enter(s, "sink.verify")()
	if n < 0 {
		fault.Throw(fault.IllegalArgument, "sink.verify", "negative %d", n)
	}
}

func TestFirstMarkedIsPerException(t *testing.T) {
	reg := core.NewRegistry().
		Method("sink", "Deposit").
		Method("sink", "verify", fault.IllegalArgument)
	program := &inject.Program{
		Name:     "grouping",
		Registry: reg,
		Run: func() {
			s := &sink{}
			func() {
				defer func() { _ = recover() }()
				s.Deposit(-1) // organic: marks Deposit non-atomic early
			}()
			s.Deposit(2) // injections here must also rank Deposit first
			s.Deposit(3)
		},
	}
	res, err := inject.Campaign(context.Background(), program, inject.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cls := Classify(res, Options{})
	dep := cls.Methods["sink.Deposit"]
	if dep.Classification != ClassPure {
		t.Fatalf("Deposit = %v, want pure (first per exception)", dep.Classification)
	}
	// Every injected run that marked Deposit must count it as first: only
	// verify sits below it and verify is read-only.
	if dep.FirstNonAtomicRuns < 3 {
		t.Fatalf("FirstNonAtomicRuns = %d, want >= 3 (organic + injections)",
			dep.FirstNonAtomicRuns)
	}
}

// TestSharedExceptionIdentity pins the mechanism the grouping relies on:
// marks created during one unwind share the *fault.Exception pointer.
func TestSharedExceptionIdentity(t *testing.T) {
	reg := core.NewRegistry().Method("sink", "Deposit").Method("sink", "verify", fault.IllegalArgument)
	session := core.NewSession(core.Config{Registry: reg, Detect: true})
	if err := core.Install(session); err != nil {
		t.Fatal(err)
	}
	defer core.Uninstall(session)

	s := &sink{}
	func() {
		defer func() { _ = recover() }()
		s.Deposit(-5)
	}()
	marks := session.Marks()
	if len(marks) != 2 { // verify (atomic) then Deposit (non-atomic)
		t.Fatalf("marks = %+v", marks)
	}
	if marks[0].Exception != marks[1].Exception {
		t.Fatal("marks of one unwind must share the exception pointer")
	}
	if marks[0].Exception == nil || marks[0].Exception.Kind != fault.IllegalArgument {
		t.Fatalf("mark exception wrong: %+v", marks[0].Exception)
	}
}
