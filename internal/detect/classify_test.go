package detect

import (
	"context"
	"testing"

	"failatomic/internal/core"
	"failatomic/internal/fault"
	"failatomic/internal/inject"
)

// The fixture mirrors the paper's method taxonomy:
//
//   - bucket.Add is pure failure non-atomic: it bumps Count before calling a
//     throwing helper.
//   - bucket.AddSafe is failure atomic: compute, call, then commit.
//   - pool.AddOne is conditional failure non-atomic: it delegates exactly
//     once to bucket.Add and performs no state change of its own, so it
//     would be atomic if Add were atomic (Definition 3).
//   - batch.FillAll is pure failure non-atomic even though its own code
//     "only" loops: an exception mid-loop leaves earlier iterations
//     committed, which no atomicity of the callee can repair.
//   - pool.Size is atomic and never throws.
type bucket struct {
	Items []int
	Count int
}

func (b *bucket) Add(v int) {
	defer core.Enter(b, "bucket.Add")()
	b.Count++
	b.screen(v)
	b.Items = append(b.Items, v)
}

func (b *bucket) AddSafe(v int) {
	defer core.Enter(b, "bucket.AddSafe")()
	b.screen(v)
	b.Items = append(b.Items, v)
	b.Count++
}

func (b *bucket) screen(v int) {
	defer core.Enter(b, "bucket.screen")()
	if v < 0 {
		fault.Throw(fault.IllegalElement, "bucket.screen", "negative element %d", v)
	}
}

type pool struct {
	B *bucket
}

func (p *pool) AddOne(v int) {
	defer core.Enter(p, "pool.AddOne")()
	p.B.Add(v)
}

func (p *pool) Size() int {
	defer core.Enter(p, "pool.Size")()
	return p.B.Count
}

type batch struct {
	B     *bucket
	Fills int
}

func (ba *batch) FillAll(vals []int) {
	defer core.Enter(ba, "batch.FillAll")()
	for _, v := range vals {
		ba.B.Add(v)
	}
	ba.Fills++
}

func fixtureProgram() *inject.Program {
	reg := core.NewRegistry().
		Method("bucket", "Add", fault.IllegalElement).
		Method("bucket", "AddSafe", fault.IllegalElement).
		Method("bucket", "screen", fault.IllegalElement).
		Method("pool", "AddOne").
		Method("pool", "Size").
		Method("batch", "FillAll")
	return &inject.Program{
		Name:     "fixture",
		Lang:     "java",
		Registry: reg,
		Run: func() {
			b := &bucket{}
			ba := &batch{B: b}
			ba.FillAll([]int{1, 2})
			p := &pool{B: b}
			p.AddOne(5)
			b.AddSafe(3)
			p.Size()
		},
	}
}

func classifyFixture(t *testing.T, opts Options) *Classification {
	t.Helper()
	res, err := inject.Campaign(context.Background(), fixtureProgram(), inject.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Classify(res, opts)
}

func TestClassifyTaxonomy(t *testing.T) {
	c := classifyFixture(t, Options{})
	tests := []struct {
		method string
		want   MethodClass
	}{
		{method: "bucket.Add", want: ClassPure},
		{method: "bucket.AddSafe", want: ClassAtomic},
		{method: "bucket.screen", want: ClassAtomic},
		{method: "pool.AddOne", want: ClassConditional},
		{method: "pool.Size", want: ClassAtomic},
		{method: "batch.FillAll", want: ClassPure},
	}
	for _, tt := range tests {
		rep := c.Methods[tt.method]
		if rep == nil {
			t.Errorf("no report for %s", tt.method)
			continue
		}
		if rep.Classification != tt.want {
			t.Errorf("%s classified %v, want %v (atomic=%d nonatomic=%d first=%d)",
				tt.method, rep.Classification, tt.want,
				rep.AtomicMarks, rep.NonAtomicMarks, rep.FirstNonAtomicRuns)
		}
	}
}

func TestClassifyRecordsEvidence(t *testing.T) {
	c := classifyFixture(t, Options{})
	add := c.Methods["bucket.Add"]
	if add.SampleDiff == "" {
		t.Fatal("pure non-atomic method must carry a sample diff")
	}
	if add.Calls != 3 {
		t.Fatalf("Add call weight = %d, want 3", add.Calls)
	}
	if len(add.Kinds) == 0 {
		t.Fatal("exception kinds that revealed non-atomicity must be tallied")
	}
}

func TestNonAtomicMethodLists(t *testing.T) {
	c := classifyFixture(t, Options{})
	na := c.NonAtomicMethods()
	want := []string{"batch.FillAll", "bucket.Add", "pool.AddOne"}
	if len(na) != len(want) {
		t.Fatalf("NonAtomicMethods = %v, want %v", na, want)
	}
	for i := range want {
		if na[i] != want[i] {
			t.Fatalf("NonAtomicMethods = %v, want %v", na, want)
		}
	}
	pure := c.PureNonAtomicMethods()
	if len(pure) != 2 || pure[0] != "batch.FillAll" || pure[1] != "bucket.Add" {
		t.Fatalf("PureNonAtomicMethods = %v", pure)
	}
}

func TestExceptionFreeReclassification(t *testing.T) {
	// Assert screen never throws (§4.3): the runs injected into screen are
	// discarded. Add's non-atomicity was revealed only by those runs, so
	// Add — and with it AddOne — reclassify atomic. FillAll stays pure:
	// injections at Add's *entry* mid-loop still expose its partial
	// progress.
	c := classifyFixture(t, Options{
		ExceptionFree: map[string]bool{"bucket.screen": true},
	})
	if got := c.Methods["bucket.Add"].Classification; got != ClassAtomic {
		t.Fatalf("Add should reclassify atomic, got %v", got)
	}
	if got := c.Methods["pool.AddOne"].Classification; got != ClassAtomic {
		t.Fatalf("AddOne should reclassify atomic, got %v", got)
	}
	if got := c.Methods["batch.FillAll"].Classification; got != ClassPure {
		t.Fatalf("FillAll must stay pure, got %v", got)
	}
}

func TestSummarize(t *testing.T) {
	c := classifyFixture(t, Options{})
	s := Summarize(c)
	if s.Methods != 6 {
		t.Fatalf("Methods = %d, want 6", s.Methods)
	}
	if s.PureMethods != 2 || s.ConditionalMethods != 1 || s.AtomicMethods != 3 {
		t.Fatalf("method split = %d/%d/%d", s.AtomicMethods, s.ConditionalMethods, s.PureMethods)
	}
	// Classes: bucket and batch contain pure methods; pool's worst is
	// conditional (AddOne).
	if s.Classes != 3 || s.PureClasses != 2 || s.ConditionalClasses != 1 || s.AtomicClasses != 0 {
		t.Fatalf("class split = %d total %d/%d/%d",
			s.Classes, s.AtomicClasses, s.ConditionalClasses, s.PureClasses)
	}
	// Pure call weight: Add has 3 clean-run calls, FillAll has 1.
	if s.Calls == 0 || s.PureCalls != 4 {
		t.Fatalf("call weights wrong: total=%d pure=%d", s.Calls, s.PureCalls)
	}
}

func TestMaskedCampaignClassifiesAtomic(t *testing.T) {
	// The masking-phase verification loop (§4.2): rerun the campaign with
	// all non-atomic methods masked; everything must classify atomic.
	first := classifyFixture(t, Options{})
	mask := make(map[string]bool)
	for _, m := range first.NonAtomicMethods() {
		mask[m] = true
	}
	res, err := inject.Campaign(context.Background(), fixtureProgram(), inject.Options{Mask: mask})
	if err != nil {
		t.Fatal(err)
	}
	c := Classify(res, Options{})
	for name, rep := range c.Methods {
		if rep.Classification != ClassAtomic {
			t.Errorf("after masking, %s is %v (diff %s)", name, rep.Classification, rep.SampleDiff)
		}
	}
}

func TestMaskingOnlyPureMethodsSuffices(t *testing.T) {
	// §4.3 fourth case: masking only the pure methods makes the
	// conditional methods atomic by Definition 3, so the corrected program
	// need not wrap them.
	first := classifyFixture(t, Options{})
	mask := make(map[string]bool)
	for _, m := range first.PureNonAtomicMethods() {
		mask[m] = true
	}
	res, err := inject.Campaign(context.Background(), fixtureProgram(), inject.Options{Mask: mask})
	if err != nil {
		t.Fatal(err)
	}
	c := Classify(res, Options{})
	for name, rep := range c.Methods {
		if rep.Classification != ClassAtomic {
			t.Errorf("after masking pure methods, %s is %v (diff %s)",
				name, rep.Classification, rep.SampleDiff)
		}
	}
}

func TestPercent(t *testing.T) {
	if Percent(1, 4) != 25 {
		t.Fatal("Percent(1,4) != 25")
	}
	if Percent(1, 0) != 0 {
		t.Fatal("Percent with zero whole must be 0")
	}
}

func TestClassificationNames(t *testing.T) {
	c := classifyFixture(t, Options{})
	names := c.Names()
	if len(names) != 6 {
		t.Fatalf("Names() = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names must be sorted")
		}
	}
	classes := c.Classes()
	if len(classes) != 3 || classes[0] != "batch" || classes[1] != "bucket" || classes[2] != "pool" {
		t.Fatalf("Classes() = %v", classes)
	}
}

// TestClassifyIgnoresQuarantinedRuns is the conservative-classification
// guarantee: observations from a quarantined run (hung or crashed under
// the campaign supervisor) must not influence any verdict, even when they
// claim a method is non-atomic.
func TestClassifyIgnoresQuarantinedRuns(t *testing.T) {
	res, err := inject.Campaign(context.Background(), fixtureProgram(), inject.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Forge a crashed run that accuses the atomic method.
	res.Runs = append(res.Runs, inject.Run{
		InjectionPoint: res.TotalPoints + 1,
		Status:         inject.RunUndetermined,
		Err:            "foreign panic: forged",
		Marks: []core.Mark{{
			Method: "bucket.AddSafe",
			Seq:    1,
			Atomic: false,
			Diff:   "bogus diff from a crashed run",
			Exception: &fault.Exception{
				Kind: fault.IllegalElement, Method: "bucket.screen", Injected: true, Point: 1,
			},
		}},
	})
	c := Classify(res, Options{})
	if got := c.Methods["bucket.AddSafe"].Classification; got != ClassAtomic {
		t.Fatalf("bucket.AddSafe = %v; a quarantined run's marks must be ignored", got)
	}
}
