package detect

import "sort"

// Summary aggregates a classification into the quantities plotted in the
// paper's figures: method counts (Fig. 2a/3a), call-weighted counts
// (Fig. 2b/3b) and class counts (Fig. 4).
type Summary struct {
	Program string
	Lang    string

	// Method-level (Figures 2(a)/3(a)).
	Methods            int
	AtomicMethods      int
	ConditionalMethods int
	PureMethods        int

	// Call-weighted (Figures 2(b)/3(b)).
	Calls            int64
	AtomicCalls      int64
	ConditionalCalls int64
	PureCalls        int64

	// Class-level (Figure 4). A class is pure failure non-atomic if it
	// contains at least one pure method; atomic if all methods are atomic;
	// conditional otherwise (§6.1).
	Classes            int
	AtomicClasses      int
	ConditionalClasses int
	PureClasses        int
}

// Summarize rolls a classification up into figure-ready aggregates.
func Summarize(c *Classification) Summary {
	s := Summary{Program: c.Program, Lang: c.Lang}
	classKind := make(map[string]MethodClass)
	for _, rep := range c.Methods {
		s.Methods++
		s.Calls += rep.Calls
		switch rep.Classification {
		case ClassPure:
			s.PureMethods++
			s.PureCalls += rep.Calls
		case ClassConditional:
			s.ConditionalMethods++
			s.ConditionalCalls += rep.Calls
		default:
			s.AtomicMethods++
			s.AtomicCalls += rep.Calls
		}
		if rep.Classification > classKind[rep.Class] {
			classKind[rep.Class] = rep.Classification
		}
	}
	s.Classes = len(classKind)
	for _, kind := range classKind {
		switch kind {
		case ClassPure:
			s.PureClasses++
		case ClassConditional:
			s.ConditionalClasses++
		default:
			s.AtomicClasses++
		}
	}
	return s
}

// Classes returns the class names observed, sorted.
func (c *Classification) Classes() []string {
	seen := make(map[string]bool)
	for _, rep := range c.Methods {
		seen[rep.Class] = true
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Percent returns 100*part/whole, or 0 when whole is 0.
func Percent(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
