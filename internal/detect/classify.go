// Package detect implements the offline half of the detection phase: it
// processes the logs of the exception injector runs and classifies every
// method as failure atomic, conditional failure non-atomic, or pure failure
// non-atomic (Definitions 2–3, §4.1/§4.3).
package detect

import (
	"sort"

	"failatomic/internal/fault"
	"failatomic/internal/inject"
)

// MethodClass is a method's atomicity classification.
type MethodClass int

// Classification values. Atomic methods never exhibited a graph difference;
// pure failure non-atomic methods were the *first* method marked
// non-atomic in at least one run; conditional failure non-atomic methods
// were only ever marked after one of their callees (Definition 3).
const (
	ClassAtomic MethodClass = iota + 1
	ClassConditional
	ClassPure
)

// String returns the classification name used in reports.
func (c MethodClass) String() string {
	switch c {
	case ClassAtomic:
		return "failure atomic"
	case ClassConditional:
		return "conditional failure non-atomic"
	case ClassPure:
		return "pure failure non-atomic"
	default:
		return "unclassified"
	}
}

// MethodReport is the per-method output of classification.
type MethodReport struct {
	// Name is the instrumentation name.
	Name string
	// Class is the owning class.
	Class string
	// Calls is the clean-run call count (the Figure 2(b)/3(b) weight).
	Calls int64
	// AtomicMarks counts exceptional returns with identical graphs.
	AtomicMarks int
	// NonAtomicMarks counts exceptional returns with differing graphs.
	NonAtomicMarks int
	// FirstNonAtomicRuns counts runs in which this method was the first
	// marked non-atomic.
	FirstNonAtomicRuns int
	// Classification is the final verdict.
	Classification MethodClass
	// SampleDiff is one representative graph difference (programmer
	// report).
	SampleDiff string
	// Kinds tallies the exception kinds that revealed non-atomicity.
	Kinds map[fault.Kind]int
}

// Classification is the output of the detection phase for one program.
type Classification struct {
	// Program is the application name.
	Program string
	// Lang tags the evaluation group.
	Lang string
	// Methods maps instrumentation names to reports.
	Methods map[string]*MethodReport
}

// Options tunes classification.
type Options struct {
	// ExceptionFree methods are asserted never to throw: runs whose
	// injection originated in one of them are discarded, re-classifying
	// methods that were non-atomic solely because of those injections
	// (§4.3, third case).
	ExceptionFree map[string]bool
}

// Classify processes a campaign result into per-method classifications.
// Only default-strategy runs (the first-activation sweep every campaign
// performs) are classified; perturbation-strategy runs are classified
// separately by ClassifyStrategy, so adding -perturb to a campaign never
// changes its baseline verdicts.
func Classify(res *inject.Result, opts Options) *Classification {
	return classify(res, opts, "")
}

// ClassifyStrategy classifies only the runs one perturbation strategy
// planned. Comparing its verdicts against Classify's baseline is how a
// report shows which methods a richer fault model flips.
func ClassifyStrategy(res *inject.Result, opts Options, strategy string) *Classification {
	return classify(res, opts, strategy)
}

// Strategies lists the perturbation strategies that planned at least one
// run in the result, sorted for deterministic reports.
func Strategies(res *inject.Result) []string {
	seen := make(map[string]bool)
	for _, run := range res.Runs {
		if run.Strategy != "" && !seen[run.Strategy] {
			seen[run.Strategy] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// StrategyRuns counts one strategy's executions and fired injections.
func StrategyRuns(res *inject.Result, strategy string) (runs, injections int) {
	for _, run := range res.Runs {
		if run.Strategy != strategy || run.Key() == (inject.RunKey{}) {
			continue
		}
		runs++
		if run.Status == inject.RunOK && run.Injected != nil {
			injections++
		}
	}
	return runs, injections
}

// unwindKey identifies one exception propagation within a run by value,
// not by pointer: marks that share an exception's content belong to the
// same unwind whether the exception object survived in memory or was
// reconstructed from a journal/log line. Injected exceptions are told
// apart by their injection-point stamp (a burst run's two faults carry
// distinct points even when they share kind and method); organic ones by
// kind, site and message.
type unwindKey struct {
	kind    fault.Kind
	method  string
	point   int
	msg     string
	foreign bool
}

func unwindKeyOf(e *fault.Exception) unwindKey {
	return unwindKey{
		kind:    e.Kind,
		method:  e.Method,
		point:   e.Point,
		msg:     e.Msg,
		foreign: e.Foreign,
	}
}

func classify(res *inject.Result, opts Options, strategy string) *Classification {
	c := &Classification{
		Program: res.Program.Name,
		Lang:    res.Program.Lang,
		Methods: make(map[string]*MethodReport),
	}
	reg := res.Program.Registry

	// Every observed method gets a report, including constructors and
	// methods that never threw (they classify atomic).
	for name, calls := range res.CleanCalls {
		c.Methods[name] = &MethodReport{
			Name:  name,
			Class: reg.ClassOf(name),
			Calls: calls,
			Kinds: make(map[fault.Kind]int),
		}
	}

	for _, run := range res.Runs {
		if run.Strategy != strategy {
			continue
		}
		// Quarantined runs (hung or crashed under the supervisor) are
		// classified conservatively: their marks are ignored entirely, so
		// a misbehaving point can only cause *missed* non-atomicity, never
		// a false non-atomic report — the same one-sided guarantee the
		// snapshotter gives (§4.4).
		if run.Status != inject.RunOK {
			continue
		}
		if run.Injected != nil && opts.ExceptionFree[run.Injected.Method] {
			continue
		}
		// §4.3's ordering rule applies per exception propagation: "the
		// order in which methods were reported as failure non-atomic
		// during exception propagation". A run can contain several
		// independent unwinds (a workload may catch exceptions and keep
		// going — and a burst run injects twice by design); all marks of
		// one unwind share the same exception, so the "first marked"
		// method is computed per exception value.
		firstSeqOf := make(map[unwindKey]int)
		for _, m := range run.Marks {
			if m.Atomic || m.Exception == nil {
				continue
			}
			key := unwindKeyOf(m.Exception)
			if prev, ok := firstSeqOf[key]; !ok || m.Seq < prev {
				firstSeqOf[key] = m.Seq
			}
		}
		for _, m := range run.Marks {
			rep := c.Methods[m.Method]
			if rep == nil {
				rep = &MethodReport{
					Name:  m.Method,
					Class: reg.ClassOf(m.Method),
					Kinds: make(map[fault.Kind]int),
				}
				c.Methods[m.Method] = rep
			}
			if m.Atomic {
				rep.AtomicMarks++
				continue
			}
			rep.NonAtomicMarks++
			if rep.SampleDiff == "" {
				rep.SampleDiff = m.Diff
			}
			if m.Exception != nil {
				rep.Kinds[m.Exception.Kind]++
				if m.Seq == firstSeqOf[unwindKeyOf(m.Exception)] {
					rep.FirstNonAtomicRuns++
				}
			}
		}
	}

	for _, rep := range c.Methods {
		switch {
		case rep.FirstNonAtomicRuns > 0:
			rep.Classification = ClassPure
		case rep.NonAtomicMarks > 0:
			rep.Classification = ClassConditional
		default:
			rep.Classification = ClassAtomic
		}
	}
	return c
}

// Names returns the method names sorted for deterministic reports.
func (c *Classification) Names() []string {
	names := make([]string, 0, len(c.Methods))
	for name := range c.Methods {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NonAtomicMethods returns the names of all failure non-atomic methods —
// the input to the masking phase (Step 4).
func (c *Classification) NonAtomicMethods() []string {
	var names []string
	for name, rep := range c.Methods {
		if rep.Classification != ClassAtomic {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// PureNonAtomicMethods returns only the pure failure non-atomic methods —
// the minimal wrap set once conditional methods are skipped (§4.3, fourth
// case: masking all pure methods makes conditional methods atomic by
// Definition 3).
func (c *Classification) PureNonAtomicMethods() []string {
	var names []string
	for name, rep := range c.Methods {
		if rep.Classification == ClassPure {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
