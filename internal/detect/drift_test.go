package detect

import (
	"strings"
	"testing"
)

func driftFixture() *Classification {
	return &Classification{
		Program: "RBMap",
		Lang:    "java",
		Methods: map[string]*MethodReport{
			"RBMap.insert": {
				Name: "RBMap.insert", Class: "RBMap", Calls: 10,
				NonAtomicMarks: 3, FirstNonAtomicRuns: 1,
				Classification: ClassPure, SampleDiff: "Balance: 1 -> 2",
			},
			"RBMap.find": {
				Name: "RBMap.find", Class: "RBMap", Calls: 20,
				AtomicMarks: 5, Classification: ClassAtomic,
			},
		},
	}
}

func TestDriftIdentical(t *testing.T) {
	if d := Drift(driftFixture(), driftFixture()); len(d) != 0 {
		t.Fatalf("identical classifications drifted: %v", d)
	}
}

func TestDriftFindsDivergence(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(c *Classification)
		want   string
	}{
		{"verdict", func(c *Classification) {
			c.Methods["RBMap.insert"].Classification = ClassConditional
		}, "classified conditional failure non-atomic, golden pure failure non-atomic"},
		{"calls", func(c *Classification) {
			c.Methods["RBMap.find"].Calls = 21
		}, "calls=21, golden 20"},
		{"marks", func(c *Classification) {
			c.Methods["RBMap.insert"].NonAtomicMarks = 4
		}, "marks atomic=0/non-atomic=4, golden 0/3"},
		{"sample diff", func(c *Classification) {
			c.Methods["RBMap.insert"].SampleDiff = "Balance: 1 -> 3"
		}, `sample diff "Balance: 1 -> 3", golden "Balance: 1 -> 2"`},
		{"extra method", func(c *Classification) {
			c.Methods["RBMap.rotate"] = &MethodReport{Name: "RBMap.rotate", Classification: ClassAtomic}
		}, "RBMap.rotate: not in golden"},
		{"missing method", func(c *Classification) {
			delete(c.Methods, "RBMap.find")
		}, "RBMap.find: missing"},
		{"program", func(c *Classification) {
			c.Program = "RBTree"
		}, "program: got RBTree"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := driftFixture()
			tc.mutate(got)
			d := Drift(got, driftFixture())
			if len(d) == 0 {
				t.Fatal("mutation produced no drift")
			}
			found := false
			for _, line := range d {
				if strings.Contains(line, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("drift %v does not mention %q", d, tc.want)
			}
		})
	}
}
