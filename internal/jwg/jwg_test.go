package jwg

import (
	"errors"
	"testing"

	"failatomic/internal/fault"
)

// ledger is an uninstrumented third-party-style type: no prologues, plain
// Go methods. Post is failure non-atomic (balance committed before the
// limit check).
type ledger struct {
	Balance int
	Entries []string
}

func (l *ledger) Post(amount int, memo string) int {
	l.Balance += amount
	if l.Balance > 1000 {
		fault.Throw(fault.IllegalState, "ledger.Post", "limit exceeded")
	}
	l.Entries = append(l.Entries, memo)
	return l.Balance
}

func (l *ledger) Get() int { return l.Balance }

func TestWrapRequiresPointer(t *testing.T) {
	g := NewGenerator()
	if _, err := g.Wrap(ledger{}); err == nil {
		t.Fatal("value target must be rejected")
	}
	if _, err := g.Wrap(nil); err == nil {
		t.Fatal("nil target must be rejected")
	}
	var nilLedger *ledger
	if _, err := g.Wrap(nilLedger); err == nil {
		t.Fatal("nil pointer must be rejected")
	}
}

func TestInvokePassesArgsAndResults(t *testing.T) {
	g := NewGenerator()
	p, err := g.Wrap(&ledger{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := p.Invoke("Post", 100, "rent")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0] != 100 {
		t.Fatalf("results = %v", results)
	}
	if p.Class() != "ledger" {
		t.Fatalf("class = %q", p.Class())
	}
}

func TestInvokeErrors(t *testing.T) {
	g := NewGenerator()
	p, _ := g.Wrap(&ledger{})
	if _, err := p.Invoke("Nope"); err == nil {
		t.Fatal("unknown method must error")
	}
	if _, err := p.Invoke("Post", 1); err == nil {
		t.Fatal("arity mismatch must error")
	}
	if _, err := p.Invoke("Post", "x", "y"); err == nil {
		t.Fatal("type mismatch must error")
	}
}

func TestExceptionPropagatesAsError(t *testing.T) {
	g := NewGenerator()
	p, _ := g.Wrap(&ledger{Balance: 990})
	_, err := p.Invoke("Post", 50, "overflow")
	var exc *fault.Exception
	if !errors.As(err, &exc) || exc.Kind != fault.IllegalState {
		t.Fatalf("err = %v", err)
	}
}

func TestFilterOrdering(t *testing.T) {
	var events []string
	g := NewGenerator()
	g.AddFilter(TraceFilter{Label: "app", Events: &events})
	g.AddClassFilter("ledger", TraceFilter{Label: "class", Events: &events})
	g.AddMethodFilter("ledger.Post", TraceFilter{Label: "method", Events: &events})
	p, _ := g.Wrap(&ledger{})
	p.AddFilter(TraceFilter{Label: "instance", Events: &events})

	if _, err := p.Invoke("Post", 1, "x"); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"pre:app:ledger.Post",
		"pre:class:ledger.Post",
		"pre:instance:ledger.Post",
		"pre:method:ledger.Post",
		"post:method:ledger.Post",
		"post:instance:ledger.Post",
		"post:class:ledger.Post",
		"post:app:ledger.Post",
	}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events[%d] = %q, want %q", i, events[i], want[i])
		}
	}
}

func TestBypass(t *testing.T) {
	g := NewGenerator()
	g.AddMethodFilter("ledger.Get", FilterFuncs{
		Pre: func(inv *Invocation) { inv.Bypass(42) },
	})
	l := &ledger{Balance: 7}
	p, _ := g.Wrap(l)
	results, err := p.Invoke("Get")
	if err != nil || results[0] != 42 {
		t.Fatalf("bypass failed: %v %v", results, err)
	}
	if l.Balance != 7 {
		t.Fatal("bypassed method must not run")
	}
}

func TestArgumentModification(t *testing.T) {
	g := NewGenerator()
	g.AddFilter(FilterFuncs{
		Pre: func(inv *Invocation) {
			if inv.Method == "Post" {
				inv.Args[0] = inv.Args[0].(int) * 2
			}
		},
	})
	p, _ := g.Wrap(&ledger{})
	results, err := p.Invoke("Post", 10, "doubled")
	if err != nil || results[0] != 20 {
		t.Fatalf("arg modification failed: %v %v", results, err)
	}
}

func TestInjectionFilterCampaign(t *testing.T) {
	// Proxied detection campaign over an uninstrumented type: count the
	// points, then inject at every one.
	run := func(injectionPoint int) (*InjectionFilter, *DetectionFilter, error) {
		g := NewGenerator()
		inj := &InjectionFilter{InjectionPoint: injectionPoint}
		det := &DetectionFilter{}
		g.AddFilter(inj)
		g.AddFilter(det)
		p, err := g.Wrap(&ledger{})
		if err != nil {
			t.Fatal(err)
		}
		var firstErr error
		for i := 0; i < 3; i++ {
			if _, err := p.Invoke("Post", 10, "m"); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return inj, det, firstErr
	}

	clean, _, err := run(0)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if clean.Point == 0 {
		t.Fatal("no injection points counted")
	}
	nonAtomic := 0
	for ip := 1; ip <= clean.Point; ip++ {
		inj, det, err := run(ip)
		if inj.Injected == nil {
			t.Fatalf("point %d did not fire", ip)
		}
		if err == nil {
			t.Fatalf("point %d: exception did not propagate", ip)
		}
		// Injection happens in the Before chain, before the body runs, so
		// every proxied mark must be atomic (nothing mutated yet).
		for _, m := range det.Marks {
			if !m.Atomic {
				nonAtomic++
			}
		}
	}
	if nonAtomic != 0 {
		t.Fatalf("pre-call injections cannot reveal non-atomicity, got %d marks", nonAtomic)
	}
}

func TestDetectionFilterFindsOrganicNonAtomicity(t *testing.T) {
	g := NewGenerator()
	det := &DetectionFilter{}
	g.AddFilter(det)
	p, _ := g.Wrap(&ledger{Balance: 990})
	if _, err := p.Invoke("Post", 50, "boom"); err == nil {
		t.Fatal("expected exception")
	}
	na := det.NonAtomicMethods()
	if len(na) != 1 || na[0] != "ledger.Post" {
		t.Fatalf("NonAtomicMethods = %v (marks %+v)", na, det.Marks)
	}
	if det.Marks[0].Diff == "" {
		t.Fatal("mark must carry a diff")
	}
}

func TestMaskingFilterRollsBack(t *testing.T) {
	g := NewGenerator()
	mask := &MaskingFilter{}
	g.AddMethodFilter("ledger.Post", mask)
	l := &ledger{Balance: 990}
	p, _ := g.Wrap(l)
	_, err := p.Invoke("Post", 50, "boom")
	if err == nil {
		t.Fatal("masking without Swallow must re-throw")
	}
	if l.Balance != 990 {
		t.Fatalf("balance = %d, want rollback to 990", l.Balance)
	}
	if mask.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d", mask.Rollbacks)
	}
	// Successful calls commit.
	if _, err := p.Invoke("Post", 5, "ok"); err != nil {
		t.Fatal(err)
	}
	if l.Balance != 995 {
		t.Fatalf("balance = %d after commit", l.Balance)
	}
}

func TestMaskingFilterSwallow(t *testing.T) {
	g := NewGenerator()
	g.AddMethodFilter("ledger.Post", &MaskingFilter{Swallow: true})
	l := &ledger{Balance: 990}
	p, _ := g.Wrap(l)
	if _, err := p.Invoke("Post", 50, "boom"); err != nil {
		t.Fatalf("swallowed exception escaped: %v", err)
	}
	if l.Balance != 990 {
		t.Fatal("rollback must still happen")
	}
}

func TestCombinedDetectThenMask(t *testing.T) {
	// The paper's full loop over an uninstrumented type: detect, then wrap
	// exactly the flagged methods and verify the masked behavior.
	g := NewGenerator()
	det := &DetectionFilter{}
	g.AddFilter(det)
	p, _ := g.Wrap(&ledger{Balance: 990})
	_, _ = p.Invoke("Post", 50, "probe")

	g2 := NewGenerator()
	verify := &DetectionFilter{}
	g2.AddFilter(verify)
	for _, m := range det.NonAtomicMethods() {
		g2.AddMethodFilter(m, &MaskingFilter{})
	}
	l := &ledger{Balance: 990}
	p2, _ := g2.Wrap(l)
	if _, err := p2.Invoke("Post", 50, "probe"); err == nil {
		t.Fatal("exception should still propagate")
	}
	for _, m := range verify.Marks {
		if !m.Atomic {
			t.Fatalf("masked method observed non-atomic: %+v", m)
		}
	}
}

func TestMustInvokeAndTarget(t *testing.T) {
	g := NewGenerator()
	l := &ledger{}
	p, _ := g.Wrap(l)
	results := p.MustInvoke("Post", 10, "ok")
	if results[0] != 10 {
		t.Fatalf("results = %v", results)
	}
	if p.Target().(*ledger) != l {
		t.Fatal("Target must return the wrapped object")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustInvoke must panic on exceptions")
		}
	}()
	p2, _ := g.Wrap(&ledger{Balance: 5000})
	p2.MustInvoke("Post", 1, "over limit")
}

func TestOutcomeMaskWithReplacementResults(t *testing.T) {
	g := NewGenerator()
	g.AddMethodFilter("ledger.Post", FilterFuncs{
		Post: func(inv *Invocation, out *Outcome) {
			if out.Exception != nil {
				out.Mask(-1) // degrade gracefully with a sentinel result
			}
		},
	})
	p, _ := g.Wrap(&ledger{Balance: 5000})
	results, err := p.Invoke("Post", 1, "x")
	if err != nil {
		t.Fatalf("masked exception escaped: %v", err)
	}
	if results[0] != -1 {
		t.Fatalf("replacement results = %v", results)
	}
}

func TestPostFilterPanicBecomesException(t *testing.T) {
	g := NewGenerator()
	g.AddFilter(FilterFuncs{
		Post: func(inv *Invocation, out *Outcome) {
			panic("post filter bug")
		},
	})
	p, _ := g.Wrap(&ledger{})
	_, err := p.Invoke("Get")
	var exc *fault.Exception
	if !errors.As(err, &exc) || exc.Kind != fault.RuntimeError {
		t.Fatalf("post-filter panic must surface as RuntimeError, got %v", err)
	}
}

func TestNilArgumentForPointerParam(t *testing.T) {
	g := NewGenerator()
	p, _ := g.Wrap(&nilable{})
	if _, err := p.Invoke("Set", nil); err != nil {
		t.Fatalf("nil argument for pointer parameter must work: %v", err)
	}
}

type nilable struct{ P *int }

func (n *nilable) Set(p *int) { n.P = p }

func TestConvertibleArguments(t *testing.T) {
	g := NewGenerator()
	p, _ := g.Wrap(&ledger{})
	// int64 converts to int.
	results, err := p.Invoke("Post", int64(7), "conv")
	if err != nil || results[0] != 7 {
		t.Fatalf("convertible arg failed: %v %v", results, err)
	}
}

func TestMaskingFilterCaptureFailure(t *testing.T) {
	g := NewGenerator()
	mask := &MaskingFilter{}
	g.AddMethodFilter("opaque.Touch", mask)
	p, _ := g.Wrap(&opaque{})
	if _, err := p.Invoke("Touch"); err != nil {
		t.Fatalf("capture failure must not break the call: %v", err)
	}
	if len(mask.Skips) != 1 {
		t.Fatalf("capture failure must be recorded: %v", mask.Skips)
	}
}

type opaque struct {
	Visible int
	secret  int
}

func (o *opaque) Touch() { o.Visible++ }

func TestBypassSkipsLaterFiltersEntirely(t *testing.T) {
	var events []string
	g := NewGenerator()
	g.AddFilter(TraceFilter{Label: "first", Events: &events})
	g.AddFilter(FilterFuncs{Pre: func(inv *Invocation) { inv.Bypass(0) }})
	g.AddFilter(TraceFilter{Label: "last", Events: &events})
	p, _ := g.Wrap(&ledger{})
	if _, err := p.Invoke("Get"); err != nil {
		t.Fatal(err)
	}
	// "last" never entered, so neither its Before nor its After may run.
	for _, e := range events {
		if e == "pre:last:ledger.Get" || e == "post:last:ledger.Get" {
			t.Fatalf("bypassed filter ran: %v", events)
		}
	}
	if events[len(events)-1] != "post:first:ledger.Get" {
		t.Fatalf("entered filters must still unwind: %v", events)
	}
}
