package jwg

import (
	"failatomic/internal/checkpoint"
	"failatomic/internal/fault"
	"failatomic/internal/objgraph"
)

// InjectionFilter implements the detection phase's exception injection for
// proxied objects: a global point counter and a threshold, as in Listing 1
// (the filter form of inj_wrapper_m).
type InjectionFilter struct {
	// Kinds lists the exception kinds to inject per call (declared kinds
	// of the wrapped method plus the generic runtime kinds).
	Kinds func(method string) []fault.Kind
	// InjectionPoint is the threshold; 0 counts without firing.
	InjectionPoint int
	// Point is the running counter.
	Point int
	// Injected records the exception raised in this run.
	Injected *fault.Exception
}

// Before implements Filter: it evaluates the injection points.
func (f *InjectionFilter) Before(inv *Invocation) {
	kinds := fault.RuntimeKinds()
	if f.Kinds != nil {
		kinds = append(f.Kinds(inv.Name()), kinds...)
	}
	for _, kind := range kinds {
		f.Point++
		if f.Point == f.InjectionPoint {
			exc := fault.New(kind, inv.Name(), f.Point)
			f.Injected = exc
			panic(exc)
		}
	}
}

// After implements Filter (no-op).
func (f *InjectionFilter) After(inv *Invocation, out *Outcome) {}

// DetectionMark is one proxied atomicity observation.
type DetectionMark struct {
	Method    string
	Atomic    bool
	Diff      string
	Exception *fault.Exception
}

// DetectionFilter implements Listing 1's comparison half for proxied
// objects: snapshot the target's object graph before the call, compare
// after an exceptional return. Proxied detection is top-level only — the
// wrapped method's internal calls are invisible, the limitation §5.2 notes
// for classes the JWG cannot instrument.
type DetectionFilter struct {
	// Marks accumulates the observations.
	Marks []DetectionMark

	before *objgraph.Graph
}

// Before implements Filter.
func (f *DetectionFilter) Before(inv *Invocation) {
	f.before = objgraph.Capture(inv.Target)
}

// After implements Filter.
func (f *DetectionFilter) After(inv *Invocation, out *Outcome) {
	if out.Exception == nil || f.before == nil {
		f.before = nil
		return
	}
	diff := objgraph.Diff(f.before, objgraph.Capture(inv.Target))
	f.Marks = append(f.Marks, DetectionMark{
		Method:    inv.Name(),
		Atomic:    diff == "",
		Diff:      diff,
		Exception: out.Exception,
	})
	f.before = nil
}

// NonAtomicMethods returns the methods observed failure non-atomic.
func (f *DetectionFilter) NonAtomicMethods() []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range f.Marks {
		if !m.Atomic && !seen[m.Method] {
			seen[m.Method] = true
			out = append(out, m.Method)
		}
	}
	return out
}

// MaskingFilter implements Listing 2 for proxied objects: checkpoint the
// target before the call, roll back on exception. With Swallow set the
// exception is additionally masked from the caller (the filter returns the
// zero results), otherwise it is re-thrown after the rollback like the
// paper's atomicity wrapper.
type MaskingFilter struct {
	// Strategy overrides the checkpoint strategy (nil = deep copy).
	Strategy checkpoint.Strategy
	// Swallow converts masked exceptions into normal returns.
	Swallow bool
	// Rollbacks counts masked exceptions.
	Rollbacks int
	// Skips records capture failures (the call proceeds unmasked).
	Skips []error

	handle checkpoint.Handle
}

// Before implements Filter.
func (f *MaskingFilter) Before(inv *Invocation) {
	strategy := f.Strategy
	if strategy == nil {
		strategy = checkpoint.DeepCopy()
	}
	h, err := strategy.Capture(inv.Target)
	if err != nil {
		f.Skips = append(f.Skips, err)
		f.handle = nil
		return
	}
	f.handle = h
}

// After implements Filter.
func (f *MaskingFilter) After(inv *Invocation, out *Outcome) {
	h := f.handle
	f.handle = nil
	if h == nil {
		return
	}
	if out.Exception == nil {
		if c, ok := h.(checkpoint.Committer); ok {
			c.Commit()
		}
		return
	}
	if err := h.Rollback(); err != nil {
		f.Skips = append(f.Skips, err)
		return
	}
	f.Rollbacks++
	if f.Swallow {
		out.Mask()
	}
}

// TraceFilter records the invocation order — the classic JWG demo filter.
type TraceFilter struct {
	// Label tags the filter's entries.
	Label string
	// Events accumulates "pre:Label:Class.Method" / "post:..." entries.
	Events *[]string
}

// Before implements Filter.
func (f TraceFilter) Before(inv *Invocation) {
	*f.Events = append(*f.Events, "pre:"+f.Label+":"+inv.Name())
}

// After implements Filter.
func (f TraceFilter) After(inv *Invocation, out *Outcome) {
	*f.Events = append(*f.Events, "post:"+f.Label+":"+inv.Name())
}
