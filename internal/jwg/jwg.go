// Package jwg is the Go analog of the paper's Java Wrapper Generator
// (§5.2): it interposes on methods of *compiled* types — no source access,
// no woven prologues — using runtime reflection. Generic pre/post filters
// can be attached at application, class, instance, or method level; they
// can throw exceptions, bypass execution, modify arguments and results,
// and mask exceptions, exactly the capabilities the paper lists.
//
// The trade-offs mirror the paper's: reflection dispatch is slower than
// woven prologues, and interposition only sees the wrapped boundary — a
// method's internal calls bypass the filters, so detection over proxies is
// top-level only (the same way the JWG could not instrument core Java
// classes).
package jwg

import (
	"fmt"
	"reflect"

	"failatomic/internal/fault"
)

// Invocation describes one intercepted call; pre-filters may mutate Args
// or bypass the call entirely.
type Invocation struct {
	// Class is the wrapped type's name.
	Class string
	// Method is the invoked method name.
	Method string
	// Args are the incoming arguments (mutable).
	Args []any
	// Target is the wrapped object.
	Target any

	bypass  bool
	results []any
}

// Bypass skips the real method and returns the given results instead.
func (inv *Invocation) Bypass(results ...any) {
	inv.bypass = true
	inv.results = results
}

// Name returns the "Class.Method" label.
func (inv *Invocation) Name() string { return inv.Class + "." + inv.Method }

// Outcome describes a completed call; post-filters may mutate Results or
// mask the exception.
type Outcome struct {
	// Results are the outgoing return values (mutable).
	Results []any
	// Exception is non-nil when the method terminated exceptionally.
	Exception *fault.Exception
}

// Mask clears the exception so the caller observes a normal return with
// the given results.
func (o *Outcome) Mask(results ...any) {
	o.Exception = nil
	if results != nil {
		o.Results = results
	}
}

// Filter intercepts invocations around the wrapped method.
type Filter interface {
	// Before runs before the method; it may mutate arguments, throw, or
	// bypass.
	Before(inv *Invocation)
	// After runs after the method (normal or exceptional); it may mutate
	// the outcome.
	After(inv *Invocation, out *Outcome)
}

// FilterFuncs adapts two closures to Filter; either may be nil.
type FilterFuncs struct {
	Pre  func(inv *Invocation)
	Post func(inv *Invocation, out *Outcome)
}

// Before implements Filter.
func (f FilterFuncs) Before(inv *Invocation) {
	if f.Pre != nil {
		f.Pre(inv)
	}
}

// After implements Filter.
func (f FilterFuncs) After(inv *Invocation, out *Outcome) {
	if f.Post != nil {
		f.Post(inv, out)
	}
}

// Generator wraps objects and owns the application/class/method filter
// tables (instance filters live on each Proxy).
type Generator struct {
	global   []Filter
	byClass  map[string][]Filter
	byMethod map[string][]Filter
}

// NewGenerator returns an empty generator.
func NewGenerator() *Generator {
	return &Generator{
		byClass:  make(map[string][]Filter),
		byMethod: make(map[string][]Filter),
	}
}

// AddFilter attaches an application-level filter (every wrapped call).
func (g *Generator) AddFilter(f Filter) { g.global = append(g.global, f) }

// AddClassFilter attaches a filter to every method of a class.
func (g *Generator) AddClassFilter(class string, f Filter) {
	g.byClass[class] = append(g.byClass[class], f)
}

// AddMethodFilter attaches a filter to one "Class.Method".
func (g *Generator) AddMethodFilter(name string, f Filter) {
	g.byMethod[name] = append(g.byMethod[name], f)
}

// Proxy interposes on one wrapped object.
type Proxy struct {
	gen      *Generator
	target   reflect.Value
	class    string
	instance []Filter
}

// Wrap builds a proxy for target, which must be a non-nil pointer (so
// methods with pointer receivers are addressable).
func (g *Generator) Wrap(target any) (*Proxy, error) {
	v := reflect.ValueOf(target)
	if !v.IsValid() || v.Kind() != reflect.Pointer || v.IsNil() {
		return nil, fmt.Errorf("jwg: target must be a non-nil pointer, got %T", target)
	}
	return &Proxy{gen: g, target: v, class: v.Type().Elem().Name()}, nil
}

// Class returns the wrapped type's name.
func (p *Proxy) Class() string { return p.class }

// Target returns the wrapped object.
func (p *Proxy) Target() any { return p.target.Interface() }

// AddFilter attaches an instance-level filter.
func (p *Proxy) AddFilter(f Filter) { p.instance = append(p.instance, f) }

// filters returns the chain for a method: application, class, instance,
// then method filters.
func (p *Proxy) filters(method string) []Filter {
	var chain []Filter
	chain = append(chain, p.gen.global...)
	chain = append(chain, p.gen.byClass[p.class]...)
	chain = append(chain, p.instance...)
	chain = append(chain, p.gen.byMethod[p.class+"."+method]...)
	return chain
}

// Invoke calls the named method through the filter chain. Pre-filters run
// outermost-first; post-filters run innermost-first. An exception — thrown
// by the method, a filter, or the injection machinery — is returned as an
// error unless a post-filter masks it.
func (p *Proxy) Invoke(method string, args ...any) ([]any, error) {
	m := p.target.MethodByName(method)
	if !m.IsValid() {
		return nil, fmt.Errorf("jwg: %s has no method %s", p.class, method)
	}
	inv := &Invocation{
		Class:  p.class,
		Method: method,
		Args:   args,
		Target: p.target.Interface(),
	}
	chain := p.filters(method)

	out := &Outcome{}
	entered := 0 // only filters whose Before ran get their After
	func() {
		defer func() {
			if r := recover(); r != nil {
				out.Exception = fault.From(r)
			}
		}()
		for _, f := range chain {
			entered++
			f.Before(inv)
			if inv.bypass {
				out.Results = inv.results
				return
			}
		}
		results, err := callReflect(m, inv.Args)
		if err != nil {
			panic(&fault.Exception{Kind: fault.IllegalArgument, Method: inv.Name(), Msg: err.Error()})
		}
		out.Results = results
	}()

	for i := entered - 1; i >= 0; i-- {
		func(f Filter) {
			defer func() {
				if r := recover(); r != nil {
					out.Exception = fault.From(r)
				}
			}()
			f.After(inv, out)
		}(chain[i])
	}

	if out.Exception != nil {
		return out.Results, out.Exception
	}
	return out.Results, nil
}

// MustInvoke is Invoke for tests and examples: it re-panics exceptions.
func (p *Proxy) MustInvoke(method string, args ...any) []any {
	results, err := p.Invoke(method, args...)
	if err != nil {
		panic(err)
	}
	return results
}

// callReflect adapts []any arguments to a reflect call and its results
// back to []any.
func callReflect(m reflect.Value, args []any) ([]any, error) {
	t := m.Type()
	if t.IsVariadic() {
		return nil, fmt.Errorf("variadic methods are not supported")
	}
	if t.NumIn() != len(args) {
		return nil, fmt.Errorf("want %d args, got %d", t.NumIn(), len(args))
	}
	in := make([]reflect.Value, len(args))
	for i, arg := range args {
		want := t.In(i)
		if arg == nil {
			in[i] = reflect.Zero(want)
			continue
		}
		v := reflect.ValueOf(arg)
		if !v.Type().AssignableTo(want) {
			if !v.Type().ConvertibleTo(want) {
				return nil, fmt.Errorf("arg %d: %s not assignable to %s", i, v.Type(), want)
			}
			v = v.Convert(want)
		}
		in[i] = v
	}
	outs := m.Call(in)
	results := make([]any, len(outs))
	for i, o := range outs {
		results[i] = o.Interface()
	}
	return results, nil
}
