package mask

import (
	"fmt"
	"strings"
)

// StrategyAssignment binds one wrap-set method to the Item-76 rung the
// weaver's analysis recommends for it.
type StrategyAssignment struct {
	// Method is the instrumentation name.
	Method string `json:"method"`
	// Strategy is the rung ("reorder", "tempswap" or "checkpoint").
	Strategy string `json:"strategy"`
	// Reason explains the recommendation.
	Reason string `json:"reason"`
}

// AssignStrategies attaches a rung to every method in the wrap set, using
// the given recommender (usually weave.MethodFacts.Strategy). A method the
// recommender does not know — or recommends "none" for, which cannot be
// right for a method the campaign proved non-atomic — falls back to the
// always-sufficient checkpoint rung. The assignments are stored on the
// plan and returned.
func (p *Plan) AssignStrategies(recommend func(method string) (strategy, reason string)) []StrategyAssignment {
	assigns := make([]StrategyAssignment, 0, len(p.Wrap))
	for _, m := range p.Wrap {
		strategy, reason := "", ""
		if recommend != nil {
			strategy, reason = recommend(m)
		}
		if strategy == "" || strategy == "none" {
			strategy = "checkpoint"
			reason = "no cheaper rung applies; full checkpoint/rollback"
		}
		assigns = append(assigns, StrategyAssignment{Method: m, Strategy: strategy, Reason: reason})
	}
	p.Strategies = assigns
	return assigns
}

// RenderStrategies prints the per-method rung table.
func RenderStrategies(assigns []StrategyAssignment) string {
	if len(assigns) == 0 {
		return ""
	}
	width := 0
	for _, a := range assigns {
		if len(a.Method) > width {
			width = len(a.Method)
		}
	}
	var b strings.Builder
	b.WriteString("strategy assignments (Item-76 ladder):\n")
	for _, a := range assigns {
		fmt.Fprintf(&b, "  %-*s  %-10s  %s\n", width, a.Method, a.Strategy, a.Reason)
	}
	return b.String()
}
