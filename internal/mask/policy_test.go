package mask

import (
	"context"
	"strings"
	"testing"

	"failatomic/internal/apps"
	"failatomic/internal/detect"
	"failatomic/internal/inject"
)

func classify(t *testing.T, opts detect.Options) (*detect.Classification, *inject.Result) {
	t.Helper()
	app, ok := apps.ByName("LinkedList")
	if !ok {
		t.Fatal("LinkedList app missing")
	}
	res, err := inject.Campaign(context.Background(), app.Build(), inject.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return detect.Classify(res, opts), res
}

func TestBuildDefaultWrapsPureOnly(t *testing.T) {
	c, _ := classify(t, detect.Options{})
	plan := Build(c, nil, Policy{})
	if len(plan.Wrap) == 0 {
		t.Fatal("LinkedList must need wrapping")
	}
	// Reason 4: conditional methods are skipped by default.
	for _, m := range plan.Wrap {
		if c.Methods[m].Classification == detect.ClassConditional {
			t.Errorf("conditional method %s must not be wrapped by default", m)
		}
	}
	pure := c.PureNonAtomicMethods()
	if len(plan.Wrap) != len(pure) {
		t.Fatalf("wrap set %v != pure set %v", plan.Wrap, pure)
	}
}

func TestBuildWrapConditional(t *testing.T) {
	app, _ := apps.ByName("RegExp") // has conditional methods
	res, err := inject.Campaign(context.Background(), app.Build(), inject.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := detect.Classify(res, detect.Options{})
	def := Build(c, nil, Policy{})
	all := Build(c, nil, Policy{WrapConditional: true})
	if len(all.Wrap) <= len(def.Wrap) {
		t.Fatalf("WrapConditional must grow the set: %d vs %d", len(all.Wrap), len(def.Wrap))
	}
	if len(all.SkippedConditional) != 0 {
		t.Fatal("no conditional skips expected with WrapConditional")
	}
}

func TestBuildExclusions(t *testing.T) {
	c, _ := classify(t, detect.Options{})
	pure := c.PureNonAtomicMethods()
	if len(pure) < 3 {
		t.Fatalf("need >=3 pure methods, got %v", pure)
	}
	plan := Build(c, nil, Policy{
		Intended:  map[string]bool{pure[0]: true},
		ManualFix: map[string]bool{pure[1]: true},
	})
	if len(plan.SkippedIntended) != 1 || plan.SkippedIntended[0] != pure[0] {
		t.Fatalf("intended skip wrong: %v", plan.SkippedIntended)
	}
	if len(plan.SkippedManual) != 1 || plan.SkippedManual[0] != pure[1] {
		t.Fatalf("manual skip wrong: %v", plan.SkippedManual)
	}
	for _, m := range plan.Wrap {
		if m == pure[0] || m == pure[1] {
			t.Fatal("excluded methods leaked into the wrap set")
		}
	}
}

func TestBuildExceptionFreeReclassifies(t *testing.T) {
	c, res := classify(t, detect.Options{})
	hints := map[string]bool{"LinkedList.checkIndex": true, "LinkedList.checkIndexInclusive": true}
	hinted := detect.Classify(res, detect.Options{ExceptionFree: hints})
	plan := Build(c, hinted, Policy{ExceptionFree: hints})
	if len(plan.Reclassified) == 0 {
		t.Fatal("hints must reclassify at least one method (RemoveAt)")
	}
	for _, m := range plan.Reclassified {
		if hinted.Methods[m].Classification != detect.ClassAtomic {
			t.Errorf("%s reported reclassified but still %v", m, hinted.Methods[m].Classification)
		}
	}
}

func TestPlanWrapSetAndRender(t *testing.T) {
	c, _ := classify(t, detect.Options{})
	plan := Build(c, nil, Policy{})
	set := plan.WrapSet()
	if len(set) != len(plan.Wrap) {
		t.Fatal("WrapSet size mismatch")
	}
	out := plan.Render()
	if !strings.Contains(out, "masking plan") || !strings.Contains(out, "wrap") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

// TestPlanIsSufficient is the §4.3 end-to-end check: masking only the
// planned set makes the whole program atomic, conditional skips included.
func TestPlanIsSufficient(t *testing.T) {
	app, _ := apps.ByName("RegExp")
	res, err := inject.Campaign(context.Background(), app.Build(), inject.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := detect.Classify(res, detect.Options{})
	plan := Build(c, nil, Policy{})
	if len(plan.SkippedConditional) == 0 {
		t.Fatal("RegExp should have a conditional skip to make this test meaningful")
	}
	verify, err := inject.Campaign(context.Background(), app.Build(), inject.Options{Mask: plan.WrapSet()})
	if err != nil {
		t.Fatal(err)
	}
	vc := detect.Classify(verify, detect.Options{})
	if remaining := vc.NonAtomicMethods(); len(remaining) != 0 {
		t.Fatalf("plan insufficient, still non-atomic: %v", remaining)
	}
}
