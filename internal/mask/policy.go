// Package mask codifies §4.3, "To Wrap or Not To Wrap": given a
// classification, compute the set of methods the corrected program should
// actually wrap with atomicity wrappers. The paper lists four reasons to
// leave a failure non-atomic method unwrapped:
//
//  1. the non-atomic behavior is intended by the programmer;
//  2. the programmer prefers a manual fix (more efficient code);
//  3. the method was classified non-atomic only because of injections
//     into methods the programmer asserts never throw; and
//  4. conditional failure non-atomic methods become atomic for free once
//     every method they call is atomic (Definition 3), so wrapping the
//     pure methods suffices.
//
// Policy implements all four as data; Plan applies them.
package mask

import (
	"fmt"
	"sort"
	"strings"

	"failatomic/internal/detect"
)

// Policy is the programmer's §4.3 input (the paper offered it as a web
// interface; here it is a value).
type Policy struct {
	// Intended lists methods whose non-atomic behavior is intentional
	// (reason 1): never wrapped, never reported as residue.
	Intended map[string]bool
	// ManualFix lists methods the programmer will repair by hand
	// (reason 2): excluded from the wrap set but reported for follow-up.
	ManualFix map[string]bool
	// ExceptionFree lists methods asserted never to throw (reason 3):
	// classification is recomputed with their injections discarded.
	ExceptionFree map[string]bool
	// WrapConditional forces wrapping of conditional methods too,
	// disabling the reason-4 optimization (useful when the wrap set is
	// deployed incrementally and callees may run unwrapped).
	WrapConditional bool
}

// Plan is the masking phase's work order.
type Plan struct {
	// Wrap is the set of methods to give atomicity wrappers.
	Wrap []string
	// SkippedConditional lists conditional methods left unwrapped under
	// reason 4.
	SkippedConditional []string
	// SkippedIntended and SkippedManual record reasons 1 and 2.
	SkippedIntended []string
	SkippedManual   []string
	// Reclassified lists methods that became atomic under the
	// exception-free hints (reason 3).
	Reclassified []string
	// Strategies records the Item-76 rung chosen for each wrap-set method;
	// populated by AssignStrategies.
	Strategies []StrategyAssignment
}

// Build computes the wrap plan for a campaign result. It re-classifies
// under the policy's exception-free hints, then applies the remaining
// exclusions.
func Build(c *detect.Classification, hinted *detect.Classification, p Policy) *Plan {
	if hinted == nil {
		hinted = c
	}
	plan := &Plan{}
	for _, name := range c.NonAtomicMethods() {
		hintedRep := hinted.Methods[name]
		if hintedRep == nil || hintedRep.Classification == detect.ClassAtomic {
			plan.Reclassified = append(plan.Reclassified, name)
			continue
		}
		switch {
		case p.Intended[name]:
			plan.SkippedIntended = append(plan.SkippedIntended, name)
		case p.ManualFix[name]:
			plan.SkippedManual = append(plan.SkippedManual, name)
		case hintedRep.Classification == detect.ClassConditional && !p.WrapConditional:
			plan.SkippedConditional = append(plan.SkippedConditional, name)
		default:
			plan.Wrap = append(plan.Wrap, name)
		}
	}
	sort.Strings(plan.Wrap)
	sort.Strings(plan.SkippedConditional)
	sort.Strings(plan.SkippedIntended)
	sort.Strings(plan.SkippedManual)
	sort.Strings(plan.Reclassified)
	return plan
}

// WrapSet returns the wrap list as the set the session config consumes.
func (p *Plan) WrapSet() map[string]bool {
	set := make(map[string]bool, len(p.Wrap))
	for _, m := range p.Wrap {
		set[m] = true
	}
	return set
}

// Render prints the plan for the programmer.
func (p *Plan) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "masking plan: wrap %d method(s)\n", len(p.Wrap))
	for _, m := range p.Wrap {
		fmt.Fprintf(&b, "  wrap       %s\n", m)
	}
	for _, m := range p.SkippedConditional {
		fmt.Fprintf(&b, "  skip       %s (conditional: atomic once callees are wrapped)\n", m)
	}
	for _, m := range p.Reclassified {
		fmt.Fprintf(&b, "  reclassify %s (atomic under exception-free hints)\n", m)
	}
	for _, m := range p.SkippedManual {
		fmt.Fprintf(&b, "  manual     %s (programmer will fix by hand)\n", m)
	}
	for _, m := range p.SkippedIntended {
		fmt.Fprintf(&b, "  intended   %s (non-atomicity is by design)\n", m)
	}
	return b.String()
}
