package harness

import (
	"fmt"
	"strings"

	"failatomic/internal/detect"
)

// Table1Row is one application's statistics (paper Table 1).
type Table1Row struct {
	Name       string
	Lang       string
	Classes    int
	Methods    int
	Injections int
}

// Table1 extracts the per-application statistics.
func Table1(results []*AppResult) []Table1Row {
	rows := make([]Table1Row, 0, len(results))
	for _, r := range results {
		rows = append(rows, Table1Row{
			Name:       r.App.Name,
			Lang:       r.App.Lang,
			Classes:    r.Summary.Classes,
			Methods:    r.Summary.Methods,
			Injections: r.Result.Injections,
		})
	}
	return rows
}

// RenderTable1 prints the statistics in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: application statistics\n")
	fmt.Fprintf(&b, "%-6s %-14s %9s %9s %12s\n", "Group", "Application", "#Classes", "#Methods", "#Injections")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-6s %-14s %9d %9d %12d\n",
			row.Lang, row.Name, row.Classes, row.Methods, row.Injections)
	}
	return b.String()
}

// PerturbRow is one (application, perturbation strategy) campaign cell:
// the strategy's run/injection counts, its classification split, and how
// many methods it flipped away from the baseline verdict.
type PerturbRow struct {
	Name        string
	Strategy    string
	Runs        int
	Injections  int
	Atomic      int
	Conditional int
	Pure        int
	// Flipped counts methods whose verdict under this strategy differs
	// from the default first-activation sweep's.
	Flipped int
}

// PerturbTable builds the per-strategy campaign table for results whose
// campaigns ran with inject.Options.Perturbations. Applications without
// strategy runs contribute no rows.
func PerturbTable(results []*AppResult) []PerturbRow {
	var rows []PerturbRow
	for _, r := range results {
		for _, st := range detect.Strategies(r.Result) {
			cls := detect.ClassifyStrategy(r.Result, detect.Options{}, st)
			sum := detect.Summarize(cls)
			runs, injections := detect.StrategyRuns(r.Result, st)
			flipped := 0
			for name, rep := range cls.Methods {
				base := r.Classification.Methods[name]
				if base == nil || base.Classification != rep.Classification {
					flipped++
				}
			}
			rows = append(rows, PerturbRow{
				Name:        r.App.Name,
				Strategy:    st,
				Runs:        runs,
				Injections:  injections,
				Atomic:      sum.AtomicMethods,
				Conditional: sum.ConditionalMethods,
				Pure:        sum.PureMethods,
				Flipped:     flipped,
			})
		}
	}
	return rows
}

// RenderPerturbTable prints the per-strategy campaign table.
func RenderPerturbTable(rows []PerturbRow) string {
	var b strings.Builder
	b.WriteString("Perturbation models: per-strategy campaign results\n")
	fmt.Fprintf(&b, "%-14s %-10s %7s %11s %7s %6s %6s %8s\n",
		"Application", "Strategy", "#Runs", "#Injections", "atomic", "cond", "pure", "flipped")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-14s %-10s %7d %11d %7d %6d %6d %8d\n",
			row.Name, row.Strategy, row.Runs, row.Injections,
			row.Atomic, row.Conditional, row.Pure, row.Flipped)
	}
	return b.String()
}

// FigureRow is one application's three-way percentage split for the
// method/call/class classification figures.
type FigureRow struct {
	Name           string
	AtomicPct      float64
	ConditionalPct float64
	PurePct        float64
}

// MethodFigure builds Figure 2(a)/3(a) (weighted=false: percentage of
// methods defined and used) or Figure 2(b)/3(b) (weighted=true:
// percentage of method calls) for one evaluation group.
func MethodFigure(results []*AppResult, lang string, weighted bool) []FigureRow {
	var rows []FigureRow
	for _, r := range results {
		if lang != "" && r.App.Lang != lang {
			continue
		}
		s := r.Summary
		var row FigureRow
		row.Name = r.App.Name
		if weighted {
			row.AtomicPct = detect.Percent(s.AtomicCalls, s.Calls)
			row.ConditionalPct = detect.Percent(s.ConditionalCalls, s.Calls)
			row.PurePct = detect.Percent(s.PureCalls, s.Calls)
		} else {
			row.AtomicPct = detect.Percent(int64(s.AtomicMethods), int64(s.Methods))
			row.ConditionalPct = detect.Percent(int64(s.ConditionalMethods), int64(s.Methods))
			row.PurePct = detect.Percent(int64(s.PureMethods), int64(s.Methods))
		}
		rows = append(rows, row)
	}
	return rows
}

// ClassFigure builds Figure 4: the per-application distribution of
// failure atomic / conditional / pure failure non-atomic classes.
func ClassFigure(results []*AppResult, lang string) []FigureRow {
	var rows []FigureRow
	for _, r := range results {
		if lang != "" && r.App.Lang != lang {
			continue
		}
		s := r.Summary
		rows = append(rows, FigureRow{
			Name:           r.App.Name,
			AtomicPct:      detect.Percent(int64(s.AtomicClasses), int64(s.Classes)),
			ConditionalPct: detect.Percent(int64(s.ConditionalClasses), int64(s.Classes)),
			PurePct:        detect.Percent(int64(s.PureClasses), int64(s.Classes)),
		})
	}
	return rows
}

// RenderFigure prints a classification figure as a table plus stacked
// ASCII bars (atomic '=', conditional '+', pure '#').
func RenderFigure(title string, rows []FigureRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s  %s\n", "Application", "atomic%", "cond%", "pure%", "distribution")
	for _, row := range rows {
		bar := stackedBar(row, 40)
		fmt.Fprintf(&b, "%-14s %8.1f %8.1f %8.1f  %s\n",
			row.Name, row.AtomicPct, row.ConditionalPct, row.PurePct, bar)
	}
	b.WriteString("legend: '=' failure atomic, '+' conditional non-atomic, '#' pure non-atomic\n")
	return b.String()
}

func stackedBar(row FigureRow, width int) string {
	atomic := int(row.AtomicPct / 100 * float64(width))
	cond := int(row.ConditionalPct / 100 * float64(width))
	pure := width - atomic - cond
	if pure < 0 {
		pure = 0
	}
	return strings.Repeat("=", atomic) + strings.Repeat("+", cond) + strings.Repeat("#", pure)
}

// MeanPure returns the average pure-non-atomic percentage across rows —
// the paper's "averages 20% in the considered applications" statistic.
func MeanPure(rows []FigureRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.PurePct
	}
	return sum / float64(len(rows))
}

// MaxPure returns the largest pure-non-atomic percentage across rows —
// the paper's "largest percentage of calls to failure non-atomic methods
// ... was less than 0.4%" statistic.
func MaxPure(rows []FigureRow) float64 {
	m := 0.0
	for _, r := range rows {
		if r.PurePct > m {
			m = r.PurePct
		}
	}
	return m
}
