package harness

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"failatomic/internal/checkpoint"
	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// errBadConfig reports a sweep configuration without positive Calls/Runs.
var errBadConfig = errors.New("harness: Calls and Runs must be positive")

// Payload is the checkpointed state of the Figure 5 synthetic benchmark;
// its size is the figure's first axis.
type Payload struct {
	Data []byte
	Meta [8]uint64
}

// BenchTarget is the synthetic component whose methods the sweep calls.
// Work and WorkMasked perform identical ~0.5 µs computations; only
// WorkMasked is wrapped by the masking session.
type BenchTarget struct {
	P    *Payload
	Sink uint64
}

// NewBenchTarget returns a target whose payload occupies objectBytes.
func NewBenchTarget(objectBytes int) *BenchTarget {
	data := make([]byte, objectBytes)
	for i := range data {
		data[i] = byte(i * 31)
	}
	return &BenchTarget{P: &Payload{Data: data}}
}

// workIters calibrates the per-method processing time to the paper's
// ~0.5 µs baseline on a 2000s-era machine; on modern hardware the loop
// lands in the same order of magnitude.
const workIters = 220

// Work is the unwrapped method of the original program.
func (t *BenchTarget) Work() {
	defer core.Enter(t, "BenchTarget.Work")()
	t.compute()
}

// WorkMasked is the method the masking phase wrapped (an atomicity
// wrapper checkpoints the receiver on entry, Listing 2).
func (t *BenchTarget) WorkMasked() {
	defer core.Enter(t, "BenchTarget.WorkMasked")()
	t.compute()
}

// WorkThrowing performs the computation and then throws; it exercises the
// rollback path of the atomicity wrapper.
func (t *BenchTarget) WorkThrowing() {
	defer core.Enter(t, "BenchTarget.WorkThrowing")()
	t.compute()
	t.P.Meta[0]++
	fault.Throw(fault.IllegalState, "BenchTarget.WorkThrowing", "synthetic failure")
}

func (t *BenchTarget) compute() {
	x := t.Sink ^ 0x9e3779b97f4a7c15
	for i := 0; i < workIters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	t.Sink = x
}

// OverheadPoint is one cell of Figure 5.
type OverheadPoint struct {
	// ObjectBytes is the checkpointed object size axis.
	ObjectBytes int
	// MaskedPct is the percentage-of-masked-calls axis.
	MaskedPct float64
	// BaseNs is the per-call time with 0% masked calls.
	BaseNs float64
	// MaskedNs is the per-call time at MaskedPct.
	MaskedNs float64
	// Overhead is MaskedNs / BaseNs.
	Overhead float64
	// CheckpointBytes is the measured checkpoint payload size.
	CheckpointBytes int
}

// Figure5Config parameterizes the sweep.
type Figure5Config struct {
	// Sizes are the checkpointed object sizes in bytes.
	Sizes []int
	// FracsPct are the percentages of calls that go to the masked method.
	FracsPct []float64
	// Calls is the number of method calls per measured run.
	Calls int
	// Runs is the number of runs whose median is reported (paper: 40).
	Runs int
	// Strategy overrides the checkpoint strategy (nil = deep copy).
	Strategy checkpoint.Strategy
	// Parallelism measures the per-object-size rows concurrently (0/1 =
	// sequential), each cell on a session bound to its worker goroutine.
	// Concurrent cells contend for cores and pay the goroutine-identity
	// lookup in every prologue, so parallel sweeps are for quick smoke
	// runs; paper-grade Figure 5 numbers should stay sequential.
	Parallelism int
	// RunTimeout bounds each (size, fraction) cell: a cell exceeding it
	// is abandoned (the measurement goroutine cannot be killed — the
	// same bounded leak as inject's supervisor) and retried up to
	// MaxRetries times before the sweep fails, so a slow or wedged host
	// fails the bench loudly instead of hanging it. Supervised cells run
	// on goroutine-scoped sessions. 0 disables the watchdog. Like
	// Parallelism, supervision is for smoke sweeps on untrusted hosts;
	// paper-grade timings should leave it off.
	RunTimeout time.Duration
	// MaxRetries re-attempts an expired cell this many extra times.
	MaxRetries int
}

// DefaultFigure5Config mirrors the paper's axes at a size that finishes
// quickly; cmd/fabench raises Runs to the paper's 40.
func DefaultFigure5Config() Figure5Config {
	return Figure5Config{
		Sizes:    []int{64, 1 << 10, 4 << 10, 16 << 10, 64 << 10},
		FracsPct: []float64{0, 0.1, 1, 10, 100},
		Calls:    2000,
		Runs:     9,
	}
}

// Figure5 runs the masking overhead sweep: per-method processing time as
// a function of checkpointed object size and percentage of masked calls.
// Each point is the median of cfg.Runs runs (§6.2). The context cancels
// the sweep between size rows.
func Figure5(ctx context.Context, cfg Figure5Config) ([]OverheadPoint, error) {
	if cfg.Calls <= 0 || cfg.Runs <= 0 {
		return nil, errBadConfig
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Parallelism > 1 {
		return figure5Parallel(ctx, cfg)
	}
	var points []OverheadPoint
	for _, size := range cfg.Sizes {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("harness: sweep interrupted: %w", err)
		}
		row, err := measureSizeRow(size, cfg, false)
		if err != nil {
			return nil, err
		}
		points = append(points, row...)
	}
	return points, nil
}

// figure5Parallel sweeps the object-size rows concurrently on scoped
// sessions, merging rows in size order so the rendered figure matches the
// sequential sweep cell for cell.
func figure5Parallel(ctx context.Context, cfg Figure5Config) ([]OverheadPoint, error) {
	rows := make([][]OverheadPoint, len(cfg.Sizes))
	errs := make([]error, len(cfg.Sizes))
	workers := cfg.Parallelism
	if workers > len(cfg.Sizes) {
		workers = len(cfg.Sizes)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, size := range cfg.Sizes {
		wg.Add(1)
		go func(i, size int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = fmt.Errorf("harness: sweep interrupted: %w", err)
				return
			}
			rows[i], errs[i] = measureSizeRow(size, cfg, true)
		}(i, size)
	}
	wg.Wait()
	var points []OverheadPoint
	for i := range rows {
		if errs[i] != nil {
			return nil, errs[i]
		}
		points = append(points, rows[i]...)
	}
	return points, nil
}

// measureSizeRow measures one object-size row: the 0%-masked baseline
// first, then every masked fraction against it.
func measureSizeRow(size int, cfg Figure5Config, scoped bool) ([]OverheadPoint, error) {
	base, cpBytes, err := measureCell(size, cfg, 0, scoped)
	if err != nil {
		return nil, err
	}
	row := make([]OverheadPoint, 0, len(cfg.FracsPct))
	for _, frac := range cfg.FracsPct {
		ns := base
		if frac > 0 {
			ns, _, err = measureCell(size, cfg, frac, scoped)
			if err != nil {
				return nil, err
			}
		}
		row = append(row, OverheadPoint{
			ObjectBytes:     size,
			MaskedPct:       frac,
			BaseNs:          base,
			MaskedNs:        ns,
			Overhead:        ns / base,
			CheckpointBytes: cpBytes,
		})
	}
	return row, nil
}

// measureCell runs one (size, fraction) cell through the RunTimeout
// watchdog when one is configured, otherwise directly. An expired cell
// is abandoned — the measurement goroutine cannot be killed, the same
// bounded leak inject's supervisor accepts — so supervised cells always
// run goroutine-scoped: an abandoned goroutine must never keep holding
// the global session slot.
func measureCell(size int, cfg Figure5Config, fracPct float64, scoped bool) (float64, int, error) {
	if cfg.RunTimeout <= 0 {
		return measureMasking(size, cfg, fracPct, scoped)
	}
	type cellResult struct {
		ns      float64
		cpBytes int
		err     error
	}
	for attempt := 0; ; attempt++ {
		ch := make(chan cellResult, 1)
		go func() {
			ns, cp, err := measureMasking(size, cfg, fracPct, true)
			ch <- cellResult{ns, cp, err}
		}()
		timer := time.NewTimer(cfg.RunTimeout)
		select {
		case r := <-ch:
			timer.Stop()
			return r.ns, r.cpBytes, r.err
		case <-timer.C:
			if attempt >= cfg.MaxRetries {
				return 0, 0, fmt.Errorf("harness: cell (size=%s, masked=%g%%) exceeded RunTimeout %s after %d attempt(s)",
					byteSize(size), fracPct, cfg.RunTimeout, attempt+1)
			}
		}
	}
}

// measureMasking times one (size, fraction) cell and returns the median
// per-call nanoseconds plus the checkpoint payload size. With scoped set
// the session is bound to this goroutine instead of installed globally,
// so cells may run concurrently.
func measureMasking(objectBytes int, cfg Figure5Config, fracPct float64, scoped bool) (float64, int, error) {
	session := core.NewSession(core.Config{
		Mask:        true,
		MaskMethods: map[string]bool{"BenchTarget.WorkMasked": true},
		Strategy:    cfg.Strategy,
	})
	if scoped {
		var ns float64
		var cpBytes int
		var err error
		session.Bind(func() {
			ns, cpBytes, err = timeMasking(objectBytes, cfg, fracPct)
		})
		return ns, cpBytes, err
	}
	if err := core.Install(session); err != nil {
		return 0, 0, err
	}
	defer core.Uninstall(session)
	return timeMasking(objectBytes, cfg, fracPct)
}

// timeMasking runs the measurement loop under an already-routed session.
func timeMasking(objectBytes int, cfg Figure5Config, fracPct float64) (float64, int, error) {
	target := NewBenchTarget(objectBytes)
	cp, err := checkpoint.Capture(target)
	if err != nil {
		return 0, 0, err
	}
	cpBytes := cp.Bytes()

	masked := int(float64(cfg.Calls) * fracPct / 100)
	step := 0
	if masked > 0 {
		step = cfg.Calls / masked
	}

	times := make([]float64, 0, cfg.Runs)
	for run := 0; run < cfg.Runs; run++ {
		start := time.Now()
		for i := 0; i < cfg.Calls; i++ {
			if step > 0 && i%step == 0 {
				target.WorkMasked()
			} else {
				target.Work()
			}
		}
		elapsed := time.Since(start)
		times = append(times, float64(elapsed.Nanoseconds())/float64(cfg.Calls))
	}
	return median(times), cpBytes, nil
}

func median(vals []float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// RenderFigure5 prints the sweep as an overhead matrix (object size ×
// masked-call percentage), the paper's Figure 5 surface.
func RenderFigure5(points []OverheadPoint) string {
	sizes, fracs := axes(points)
	grid := make(map[[2]float64]OverheadPoint, len(points))
	for _, p := range points {
		grid[[2]float64{float64(p.ObjectBytes), p.MaskedPct}] = p
	}
	var b strings.Builder
	b.WriteString("Figure 5: masking overhead (time per call / unmasked time per call)\n")
	fmt.Fprintf(&b, "%-12s", "object size")
	for _, f := range fracs {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("%g%%", f))
	}
	b.WriteString("\n")
	for _, s := range sizes {
		fmt.Fprintf(&b, "%-12s", byteSize(s))
		for _, f := range fracs {
			p := grid[[2]float64{float64(s), f}]
			fmt.Fprintf(&b, " %9.2f", p.Overhead)
		}
		b.WriteString("\n")
	}
	if len(points) > 0 {
		fmt.Fprintf(&b, "baseline per-call time: %.0f ns (paper testbed: ~500 ns)\n", points[0].BaseNs)
	}
	return b.String()
}

func axes(points []OverheadPoint) ([]int, []float64) {
	sizeSet := make(map[int]bool)
	fracSet := make(map[float64]bool)
	for _, p := range points {
		sizeSet[p.ObjectBytes] = true
		fracSet[p.MaskedPct] = true
	}
	sizes := make([]int, 0, len(sizeSet))
	for s := range sizeSet {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	fracs := make([]float64, 0, len(fracSet))
	for f := range fracSet {
		fracs = append(fracs, f)
	}
	sort.Float64s(fracs)
	return sizes, fracs
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
