// Package harness runs the paper's evaluation (§6): the detection
// campaigns over the sixteen bundled applications, the statistics of
// Table 1, the classification breakdowns of Figures 2–4, the masking
// overhead sweep of Figure 5 and the §6.1 LinkedList repair experiment.
// Every table and figure has a renderer that prints the same rows/series
// the paper reports.
package harness

import (
	"fmt"

	"failatomic/internal/apps"
	"failatomic/internal/detect"
	"failatomic/internal/inject"
)

// AppResult bundles everything a campaign produced for one application.
type AppResult struct {
	App            apps.App
	Result         *inject.Result
	Classification *detect.Classification
	Summary        detect.Summary
}

// RunApp executes the full detection campaign for one application and
// classifies the outcome.
func RunApp(app apps.App, opts inject.Options) (*AppResult, error) {
	res, err := inject.Campaign(app.Build(), opts)
	if err != nil {
		return nil, fmt.Errorf("campaign %s: %w", app.Name, err)
	}
	cls := detect.Classify(res, detect.Options{ExceptionFree: opts.ExceptionFree})
	return &AppResult{
		App:            app,
		Result:         res,
		Classification: cls,
		Summary:        detect.Summarize(cls),
	}, nil
}

// RunAll executes campaigns for every application of the given group
// ("cpp", "java", or "" for all), in Table 1 order.
func RunAll(lang string) ([]*AppResult, error) {
	return RunAllWithOptions(lang, inject.Options{})
}

// RunAllWithOptions is RunAll with campaign options (e.g. Repeats to scale
// the injection space toward the paper's counts).
func RunAllWithOptions(lang string, opts inject.Options) ([]*AppResult, error) {
	group := apps.All()
	if lang != "" {
		group = apps.ByLang(lang)
	}
	out := make([]*AppResult, 0, len(group))
	for _, app := range group {
		res, err := RunApp(app, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
