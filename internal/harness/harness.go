// Package harness runs the paper's evaluation (§6): the detection
// campaigns over the sixteen bundled applications, the statistics of
// Table 1, the classification breakdowns of Figures 2–4, the masking
// overhead sweep of Figure 5 and the §6.1 LinkedList repair experiment.
// Every table and figure has a renderer that prints the same rows/series
// the paper reports.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"failatomic/internal/apps"
	"failatomic/internal/detect"
	"failatomic/internal/inject"
)

// AppResult bundles everything a campaign produced for one application.
type AppResult struct {
	App            apps.App
	Result         *inject.Result
	Classification *detect.Classification
	Summary        detect.Summary
}

// RunApp executes the full detection campaign for one application and
// classifies the outcome. The context cancels the campaign between runs
// (mid-run under a supervisor).
func RunApp(ctx context.Context, app apps.App, opts inject.Options) (*AppResult, error) {
	res, err := inject.Campaign(ctx, app.Build(), opts)
	if err != nil {
		return nil, fmt.Errorf("campaign %s: %w", app.Name, err)
	}
	cls := detect.Classify(res, detect.Options{ExceptionFree: opts.ExceptionFree})
	return &AppResult{
		App:            app,
		Result:         res,
		Classification: cls,
		Summary:        detect.Summarize(cls),
	}, nil
}

// RunAll executes campaigns for every application of the given group
// ("cpp", "java", or "" for all), in Table 1 order.
func RunAll(ctx context.Context, lang string) ([]*AppResult, error) {
	return RunAllWithOptions(ctx, lang, inject.Options{})
}

// RunAllWithOptions is RunAll with campaign options (e.g. Repeats to scale
// the injection space toward the paper's counts, or Parallelism to explore
// it concurrently). With Parallelism > 1 the per-app campaigns themselves
// run concurrently — bounded by GOMAXPROCS — on goroutine-scoped sessions;
// the result slice keeps Table 1 row order either way.
func RunAllWithOptions(ctx context.Context, lang string, opts inject.Options) ([]*AppResult, error) {
	group := apps.All()
	if lang != "" {
		group = apps.ByLang(lang)
	}
	if opts.Parallelism > 1 && len(group) > 1 {
		return runAllParallel(ctx, group, opts)
	}
	out := make([]*AppResult, 0, len(group))
	for _, app := range group {
		res, err := RunApp(ctx, app, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// runAllParallel runs one campaign per application concurrently. App-level
// concurrency is capped at GOMAXPROCS; each campaign additionally fans out
// over injection points (inject.Options.Parallelism), which the Go
// scheduler multiplexes. Results land in a slice indexed by Table 1 row,
// and the first error in row order wins, so output and failures are as
// deterministic as the sequential loop's.
func runAllParallel(ctx context.Context, group []apps.App, opts inject.Options) ([]*AppResult, error) {
	out := make([]*AppResult, len(group))
	errs := make([]error, len(group))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, app := range group {
		wg.Add(1)
		go func(i int, app apps.App) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = RunApp(ctx, app, opts)
		}(i, app)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
