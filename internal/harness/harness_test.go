package harness

import (
	"context"
	"strings"
	"testing"

	"failatomic/internal/apps"
	"failatomic/internal/detect"
	"failatomic/internal/inject"
)

// evalResults runs the full 16-application evaluation once per test
// binary.
var evalResults []*AppResult

func results(t *testing.T) []*AppResult {
	t.Helper()
	if evalResults == nil {
		res, err := RunAll(context.Background(), "")
		if err != nil {
			t.Fatal(err)
		}
		evalResults = res
	}
	return evalResults
}

func TestTable1AllAppsPresent(t *testing.T) {
	rows := Table1(results(t))
	if len(rows) != 16 {
		t.Fatalf("Table 1 rows = %d, want 16", len(rows))
	}
	cpp, java := 0, 0
	for _, row := range rows {
		switch row.Lang {
		case "cpp":
			cpp++
		case "java":
			java++
		default:
			t.Fatalf("unknown group %q", row.Lang)
		}
		if row.Methods == 0 || row.Injections == 0 || row.Classes == 0 {
			t.Errorf("%s: degenerate row %+v", row.Name, row)
		}
	}
	if cpp != 6 || java != 10 {
		t.Fatalf("group split %d/%d, want 6/10", cpp, java)
	}
}

func TestTable1Render(t *testing.T) {
	out := RenderTable1(Table1(results(t)))
	for _, name := range []string{"adaptorChain", "xml2Cviasc2", "LinkedList", "RegExp", "#Injections"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 output missing %q", name)
		}
	}
}

// TestPaperShapeCppCareful checks Figure 2's headline: the Self*
// applications have a small pure non-atomic proportion.
func TestPaperShapeCppCareful(t *testing.T) {
	rows := MethodFigure(results(t), "cpp", false)
	if len(rows) != 6 {
		t.Fatalf("cpp rows = %d", len(rows))
	}
	if mean := MeanPure(rows); mean >= 15 {
		t.Errorf("cpp mean pure = %.1f%%, want < 15%% (paper: 'pretty small')", mean)
	}
	weighted := MethodFigure(results(t), "cpp", true)
	if maxCalls := MaxPure(weighted); maxCalls >= 10 {
		t.Errorf("cpp max pure calls = %.1f%%, want < 10%% (paper: < 0.4%% on their workloads)", maxCalls)
	}
}

// TestPaperShapeJavaNonAtomic checks Figure 3's headline: the Java
// applications average roughly 20% pure failure non-atomic methods.
func TestPaperShapeJavaNonAtomic(t *testing.T) {
	rows := MethodFigure(results(t), "java", false)
	if len(rows) != 10 {
		t.Fatalf("java rows = %d", len(rows))
	}
	mean := MeanPure(rows)
	if mean < 10 || mean > 35 {
		t.Errorf("java mean pure = %.1f%%, want in [10%%, 35%%] (paper: ~20%%)", mean)
	}
}

// TestPaperShapeGroupsDiffer checks the paper's central contrast: the
// carefully written C++ group has a much smaller pure fraction than the
// legacy Java group.
func TestPaperShapeGroupsDiffer(t *testing.T) {
	cpp := MeanPure(MethodFigure(results(t), "cpp", false))
	java := MeanPure(MethodFigure(results(t), "java", false))
	if cpp >= java {
		t.Errorf("cpp pure (%.1f%%) must be below java pure (%.1f%%)", cpp, java)
	}
}

// TestPaperShapeNonAtomicCalledLess checks Figure 2(b)/3(b)'s claim that
// failure non-atomic methods are called proportionally less often than
// they appear in the method population.
func TestPaperShapeNonAtomicCalledLess(t *testing.T) {
	for _, lang := range []string{"cpp", "java"} {
		byMethods := MeanPure(MethodFigure(results(t), lang, false))
		byCalls := MeanPure(MethodFigure(results(t), lang, true))
		if byCalls > byMethods {
			t.Errorf("%s: pure by calls (%.1f%%) exceeds pure by methods (%.1f%%)",
				lang, byCalls, byMethods)
		}
	}
}

// TestPaperShapeClassesSpread checks Figure 4's claim that non-atomic
// methods are not confined to a few classes.
func TestPaperShapeClassesSpread(t *testing.T) {
	javaRows := ClassFigure(results(t), "java")
	nonAtomicApps := 0
	for _, row := range javaRows {
		if row.PurePct+row.ConditionalPct >= 30 {
			nonAtomicApps++
		}
	}
	if nonAtomicApps < 7 {
		t.Errorf("only %d/10 java apps have >=30%% non-atomic classes (paper: 30-50%%)", nonAtomicApps)
	}
}

func TestRenderFigure(t *testing.T) {
	out := RenderFigure("test figure", MethodFigure(results(t), "cpp", false))
	if !strings.Contains(out, "test figure") || !strings.Contains(out, "legend") {
		t.Fatal("figure rendering incomplete")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6+3 { // 6 apps + title + header + legend
		t.Fatalf("figure has %d lines", len(lines))
	}
}

func TestMaskingEveryAppConverges(t *testing.T) {
	// The paper's end-to-end claim: wrapping every detected non-atomic
	// method yields a corrected program whose campaign finds nothing.
	for _, r := range results(t) {
		nonAtomic := r.Classification.NonAtomicMethods()
		if len(nonAtomic) == 0 {
			continue
		}
		mask := make(map[string]bool, len(nonAtomic))
		for _, m := range nonAtomic {
			mask[m] = true
		}
		masked, err := inject.Campaign(context.Background(), r.App.Build(), inject.Options{Mask: mask})
		if err != nil {
			t.Fatalf("%s: %v", r.App.Name, err)
		}
		cls := detect.Classify(masked, detect.Options{})
		if remaining := cls.NonAtomicMethods(); len(remaining) != 0 {
			t.Errorf("%s: still non-atomic after masking: %v (%s)",
				r.App.Name, remaining, cls.Methods[remaining[0]].SampleDiff)
		}
	}
}

func TestRepairExperimentShape(t *testing.T) {
	report, err := RepairExperiment(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 18 -> 3 pure methods, 7.8% -> <0.2% of calls. Our list is
	// smaller; the shape must hold: a large reduction in methods and in
	// call share, with a non-empty masking remainder.
	if report.OriginalPure < 6 {
		t.Errorf("original pure = %d, want >= 6", report.OriginalPure)
	}
	if report.FixedPure >= report.OriginalPure/2 {
		t.Errorf("fixes must at least halve pure methods: %d -> %d",
			report.OriginalPure, report.FixedPure)
	}
	if report.HintedPure > report.OriginalPure {
		t.Error("hints must not increase pure methods")
	}
	if report.FixedPureCallPct >= report.OriginalPureCallPct/2 {
		t.Errorf("call share must at least halve: %.1f%% -> %.1f%%",
			report.OriginalPureCallPct, report.FixedPureCallPct)
	}
	if len(report.Remaining) == 0 {
		t.Error("the masking phase needs a remainder (RemoveAll/ReplaceAll)")
	}
	out := RenderRepair(report)
	if !strings.Contains(out, "remaining") {
		t.Fatal("render incomplete")
	}
}

func TestRunAppUnknownWorkloadErrors(t *testing.T) {
	if _, ok := apps.ByName("NoSuchApp"); ok {
		t.Fatal("ByName must reject unknown apps")
	}
}

func TestCampaignsAreModest(t *testing.T) {
	// Guard against workload growth making the evaluation unusably slow:
	// every app must stay within a small injection budget.
	for _, r := range results(t) {
		if r.Result.TotalPoints > 5000 {
			t.Errorf("%s: %d injection points; keep workloads modest",
				r.App.Name, r.Result.TotalPoints)
		}
	}
}

// TestRunAllParallelMatchesSequential is the evaluation-level determinism
// guarantee: campaigns scheduled across goroutines (apps concurrent, each
// app's points concurrent) must render Table 1 and Figures 2-4
// byte-identically to the sequential evaluation.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	seq := results(t)
	par, err := RunAllWithOptions(context.Background(), "", inject.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := RenderTable1(Table1(par)), RenderTable1(Table1(seq)); got != want {
		t.Fatalf("Table 1 differs under parallel scheduling:\n%s\nvs sequential:\n%s", got, want)
	}
	for _, lang := range []string{"cpp", "java"} {
		for _, weighted := range []bool{false, true} {
			got := RenderFigure("fig", MethodFigure(par, lang, weighted))
			want := RenderFigure("fig", MethodFigure(seq, lang, weighted))
			if got != want {
				t.Fatalf("%s weighted=%v figure differs:\n%s\nvs\n%s", lang, weighted, got, want)
			}
		}
		if got, want := RenderFigure("fig", ClassFigure(par, lang)), RenderFigure("fig", ClassFigure(seq, lang)); got != want {
			t.Fatalf("%s class figure differs", lang)
		}
	}
	for i := range seq {
		if len(par[i].Result.Runs) != len(seq[i].Result.Runs) {
			t.Fatalf("%s: run counts differ", seq[i].App.Name)
		}
		for j := range seq[i].Result.Runs {
			if par[i].Result.Runs[j].InjectionPoint != seq[i].Result.Runs[j].InjectionPoint {
				t.Fatalf("%s: run ordering differs at %d", seq[i].App.Name, j)
			}
		}
	}
}

// TestFigure5ParallelSweepShape checks the scoped-session sweep produces
// the same grid (cells and checkpoint sizes) as the sequential sweep;
// timings differ, ratios stay plausible.
func TestFigure5ParallelSweepShape(t *testing.T) {
	cfg := Figure5Config{
		Sizes:       []int{64, 1 << 10},
		FracsPct:    []float64{0, 100},
		Calls:       200,
		Runs:        3,
		Parallelism: 2,
	}
	points, err := Figure5(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(cfg.Sizes)*len(cfg.FracsPct) {
		t.Fatalf("got %d points, want %d", len(points), len(cfg.Sizes)*len(cfg.FracsPct))
	}
	for _, p := range points {
		if p.BaseNs <= 0 || p.MaskedNs <= 0 || p.Overhead <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	out := RenderFigure5(points)
	if !strings.Contains(out, "64B") || !strings.Contains(out, "1KiB") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}
