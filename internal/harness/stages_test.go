package harness

import (
	"context"
	"sync/atomic"
	"testing"

	"failatomic/internal/apps"
	"failatomic/internal/inject"
)

// TestRunRepairStagesSharesCampaigns pins the campaign cache: stages that
// share a *inject.Program run one campaign, and hint-only stages change
// only the offline classification.
func TestRunRepairStagesSharesCampaigns(t *testing.T) {
	app, ok := apps.ByName("LinkedList")
	if !ok {
		t.Fatal("LinkedList application missing")
	}
	orig := app.Build()
	var campaigns atomic.Int64
	seen := make(map[int]bool)
	opts := inject.Options{OnRun: func(r inject.Run) error {
		// Each campaign revisits point 0; counting its occurrences counts
		// campaigns without reaching into the cache.
		if r.InjectionPoint == 0 {
			campaigns.Add(1)
		}
		seen[r.InjectionPoint] = true
		return nil
	}}

	outcomes, err := RunRepairStages(context.Background(), opts, []RepairStage{
		{Label: "original", Program: orig},
		{Label: "hinted", Program: orig, ExceptionFree: exceptionFree("LinkedList")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := campaigns.Load(); got != 1 {
		t.Errorf("shared-program stages ran %d campaigns, want 1", got)
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(outcomes))
	}
	if outcomes[0].Label != "original" || outcomes[1].Label != "hinted" {
		t.Errorf("labels = %q, %q", outcomes[0].Label, outcomes[1].Label)
	}
	// The hints discard the validators' injections, so the hinted stage
	// must classify no more pure methods than the original.
	if outcomes[1].Pure > outcomes[0].Pure {
		t.Errorf("hints increased pure methods: %d -> %d", outcomes[0].Pure, outcomes[1].Pure)
	}
	if len(outcomes[0].PureMethods) != outcomes[0].Pure {
		t.Errorf("PureMethods (%d) disagrees with Pure (%d)", len(outcomes[0].PureMethods), outcomes[0].Pure)
	}

	// A distinct program runs its own campaign.
	if _, err := RunRepairStages(context.Background(), opts, []RepairStage{
		{Label: "fixed", Program: apps.LinkedListFixedProgram()},
	}); err != nil {
		t.Fatal(err)
	}
	if got := campaigns.Load(); got != 2 {
		t.Errorf("distinct program did not run its own campaign (%d total)", got)
	}

	// A stage without a program is a caller bug, reported as an error.
	if _, err := RunRepairStages(context.Background(), inject.Options{}, []RepairStage{{Label: "empty"}}); err == nil {
		t.Error("nil-program stage must fail")
	}
}
