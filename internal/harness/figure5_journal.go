package harness

import (
	"context"
	"fmt"
	"time"

	"failatomic/internal/checkpoint"
	"failatomic/internal/core"
)

// JournalTarget is the checkpoint.Journaled twin of BenchTarget, used for
// the undo-log ablation: instead of eagerly deep-copying the payload, the
// masked method records undo entries only for the words it writes, so
// rollback cost is O(bytes written) rather than O(object size) — the
// paper's copy-on-write suggestion (§6.2).
type JournalTarget struct {
	P    *Payload
	Sink uint64

	journal *checkpoint.Journal
}

var _ checkpoint.Journaled = (*JournalTarget)(nil)

// NewJournalTarget returns a journaled target with objectBytes of payload.
func NewJournalTarget(objectBytes int) *JournalTarget {
	data := make([]byte, objectBytes)
	for i := range data {
		data[i] = byte(i * 31)
	}
	return &JournalTarget{P: &Payload{Data: data}}
}

// BeginJournal implements checkpoint.Journaled.
func (t *JournalTarget) BeginJournal(j *checkpoint.Journal) *checkpoint.Journal {
	prev := t.journal
	t.journal = j
	return prev
}

// EndJournal implements checkpoint.Journaled.
func (t *JournalTarget) EndJournal(prev *checkpoint.Journal) { t.journal = prev }

// Work is the unwrapped method.
func (t *JournalTarget) Work() {
	defer core.Enter(t, "JournalTarget.Work")()
	t.compute()
}

// WorkMasked is the masked method; it journals the single word it writes.
func (t *JournalTarget) WorkMasked() {
	defer core.Enter(t, "JournalTarget.WorkMasked")()
	old := t.Sink
	t.journal.Record(8, func() { t.Sink = old })
	t.compute()
}

func (t *JournalTarget) compute() {
	x := t.Sink ^ 0x9e3779b97f4a7c15
	for i := 0; i < workIters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	t.Sink = x
}

// Figure5Journal runs the Figure 5 sweep with undo-log checkpointing; its
// overhead should stay flat across object sizes, in contrast to the
// deep-copy strategy. The ablation is always sequential: it exists to
// compare checkpoint costs, so cfg.Parallelism is ignored.
func Figure5Journal(ctx context.Context, cfg Figure5Config) ([]OverheadPoint, error) {
	if cfg.Calls <= 0 || cfg.Runs <= 0 {
		return nil, errBadConfig
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var points []OverheadPoint
	for _, size := range cfg.Sizes {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("harness: sweep interrupted: %w", err)
		}
		base, err := measureJournal(size, cfg, 0)
		if err != nil {
			return nil, err
		}
		for _, frac := range cfg.FracsPct {
			ns := base
			if frac > 0 {
				ns, err = measureJournal(size, cfg, frac)
				if err != nil {
					return nil, err
				}
			}
			points = append(points, OverheadPoint{
				ObjectBytes:     size,
				MaskedPct:       frac,
				BaseNs:          base,
				MaskedNs:        ns,
				Overhead:        ns / base,
				CheckpointBytes: 8, // one journaled word per masked call
			})
		}
	}
	return points, nil
}

func measureJournal(objectBytes int, cfg Figure5Config, fracPct float64) (float64, error) {
	session := core.NewSession(core.Config{
		Mask:        true,
		MaskMethods: map[string]bool{"JournalTarget.WorkMasked": true},
		Strategy:    checkpoint.UndoLog(),
	})
	if err := core.Install(session); err != nil {
		return 0, err
	}
	defer core.Uninstall(session)

	target := NewJournalTarget(objectBytes)
	masked := int(float64(cfg.Calls) * fracPct / 100)
	step := 0
	if masked > 0 {
		step = cfg.Calls / masked
	}

	times := make([]float64, 0, cfg.Runs)
	for run := 0; run < cfg.Runs; run++ {
		start := time.Now()
		for i := 0; i < cfg.Calls; i++ {
			if step > 0 && i%step == 0 {
				target.WorkMasked()
			} else {
				target.Work()
			}
		}
		times = append(times, float64(time.Since(start).Nanoseconds())/float64(cfg.Calls))
	}
	return median(times), nil
}
