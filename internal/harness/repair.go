package harness

import (
	"context"
	"fmt"
	"strings"

	"failatomic/internal/apps"
	"failatomic/internal/detect"
	"failatomic/internal/inject"
)

// RepairReport reproduces the paper's §6.1 LinkedList experiment: "we
// managed to reduce the number of pure failure non-atomic methods in the
// Java LinkedList application from 18 (representing 7.8% of the calls) to
// 3 (less than 0.2% of the calls) with just trivial modification to the
// code, and by identifying methods that never throw exceptions."
//
// The experiment has three stages: the original list as detected; the
// original list after the programmer asserts the internal validators
// exception-free (§4.3); and the repaired list (trivial statement
// reordering) with the same assertion.
type RepairReport struct {
	// OriginalPure counts the pure failure non-atomic methods of the
	// original LinkedList, with their share of the clean run's calls.
	OriginalPure        int
	OriginalPureCallPct float64
	// HintedPure / HintedPureCallPct are the original list's numbers after
	// the exception-free hints discard the spurious injections.
	HintedPure        int
	HintedPureCallPct float64
	// FixedPure / FixedPureCallPct are the numbers for the repaired list
	// (trivial fixes + hints).
	FixedPure        int
	FixedPureCallPct float64
	// Remaining lists the methods still pure non-atomic at the end — the
	// masking phase's responsibility.
	Remaining []string
}

// exceptionFree returns the §4.3 programmer assertion for a list class:
// the index validators never throw for the callers that survived review
// (indices are in range by construction). The element screener is *not*
// asserted — its verdict depends on runtime data, and the paper notes it
// is "often hard for a programmer to determine whether a method is
// exception-free".
func exceptionFree(class string) map[string]bool {
	return map[string]bool{
		class + ".checkIndex":          true,
		class + ".checkIndexInclusive": true,
	}
}

// RepairExperiment runs the three stages of the §6.1 experiment.
func RepairExperiment(ctx context.Context) (*RepairReport, error) {
	original, ok := apps.ByName("LinkedList")
	if !ok {
		return nil, fmt.Errorf("harness: LinkedList application missing")
	}
	origRes, err := inject.Campaign(ctx, original.Build(), inject.Options{})
	if err != nil {
		return nil, err
	}
	origCls := detect.Classify(origRes, detect.Options{})
	hintedCls := detect.Classify(origRes, detect.Options{
		ExceptionFree: exceptionFree("LinkedList"),
	})

	fixedRes, err := inject.Campaign(ctx, apps.LinkedListFixedProgram(), inject.Options{})
	if err != nil {
		return nil, err
	}
	fixedCls := detect.Classify(fixedRes, detect.Options{
		ExceptionFree: exceptionFree("LinkedListFixed"),
	})

	report := &RepairReport{
		OriginalPure: len(origCls.PureNonAtomicMethods()),
		HintedPure:   len(hintedCls.PureNonAtomicMethods()),
		FixedPure:    len(fixedCls.PureNonAtomicMethods()),
		Remaining:    fixedCls.PureNonAtomicMethods(),
	}
	report.OriginalPureCallPct = pureCallPct(origCls)
	report.HintedPureCallPct = pureCallPct(hintedCls)
	report.FixedPureCallPct = pureCallPct(fixedCls)
	return report, nil
}

func pureCallPct(c *detect.Classification) float64 {
	s := detect.Summarize(c)
	return detect.Percent(s.PureCalls, s.Calls)
}

// RenderRepair prints the experiment outcome.
func RenderRepair(r *RepairReport) string {
	var b strings.Builder
	b.WriteString("§6.1 LinkedList repair experiment (paper: 18 pure / 7.8% of calls -> 3 pure / <0.2%)\n")
	fmt.Fprintf(&b, "original list:                      %2d pure non-atomic methods (%.1f%% of calls)\n",
		r.OriginalPure, r.OriginalPureCallPct)
	fmt.Fprintf(&b, "original + exception-free hints:    %2d pure non-atomic methods (%.1f%% of calls)\n",
		r.HintedPure, r.HintedPureCallPct)
	fmt.Fprintf(&b, "trivial fixes + hints:              %2d pure non-atomic methods (%.1f%% of calls)\n",
		r.FixedPure, r.FixedPureCallPct)
	fmt.Fprintf(&b, "remaining (for the masking phase):  %s\n", strings.Join(r.Remaining, ", "))
	return b.String()
}
