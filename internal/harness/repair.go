package harness

import (
	"context"
	"fmt"
	"strings"

	"failatomic/internal/apps"
	"failatomic/internal/detect"
	"failatomic/internal/inject"
)

// RepairStage is one stage of a repair progression: a program build plus
// the §4.3 exception-free assertions applied when classifying it. Stages
// that share a *inject.Program pointer share one campaign — classification
// is offline, so a hint-only stage costs nothing beyond a re-classify.
type RepairStage struct {
	// Label names the stage in its outcome.
	Label string
	// Program is the instrumented build under test.
	Program *inject.Program
	// ExceptionFree lists the methods the programmer asserts never throw
	// for this stage (discarding their spurious injections).
	ExceptionFree map[string]bool
}

// StageOutcome summarizes one stage's classification.
type StageOutcome struct {
	Label string
	// Pure counts the pure failure non-atomic methods, PureCallPct their
	// share of the clean run's calls.
	Pure        int
	PureCallPct float64
	// PureMethods lists them, sorted.
	PureMethods []string
}

// RunRepairStages runs a repair progression: one campaign per distinct
// program, one classification per stage. It generalizes the fixed §6.1
// experiment — farepair's strategy-aware workflow and the historical
// three-stage LinkedList progression both reduce to a stage list.
func RunRepairStages(ctx context.Context, opts inject.Options, stages []RepairStage) ([]StageOutcome, error) {
	campaigns := make(map[*inject.Program]*inject.Result)
	outcomes := make([]StageOutcome, 0, len(stages))
	for _, stage := range stages {
		if stage.Program == nil {
			return nil, fmt.Errorf("harness: repair stage %q has no program", stage.Label)
		}
		res, ok := campaigns[stage.Program]
		if !ok {
			var err error
			res, err = inject.Campaign(ctx, stage.Program, opts)
			if err != nil {
				return nil, err
			}
			campaigns[stage.Program] = res
		}
		cls := detect.Classify(res, detect.Options{ExceptionFree: stage.ExceptionFree})
		outcomes = append(outcomes, StageOutcome{
			Label:       stage.Label,
			Pure:        len(cls.PureNonAtomicMethods()),
			PureCallPct: pureCallPct(cls),
			PureMethods: cls.PureNonAtomicMethods(),
		})
	}
	return outcomes, nil
}

// RepairReport reproduces the paper's §6.1 LinkedList experiment: "we
// managed to reduce the number of pure failure non-atomic methods in the
// Java LinkedList application from 18 (representing 7.8% of the calls) to
// 3 (less than 0.2% of the calls) with just trivial modification to the
// code, and by identifying methods that never throw exceptions."
//
// The experiment has three stages: the original list as detected; the
// original list after the programmer asserts the internal validators
// exception-free (§4.3); and the repaired list (trivial statement
// reordering) with the same assertion.
type RepairReport struct {
	// OriginalPure counts the pure failure non-atomic methods of the
	// original LinkedList, with their share of the clean run's calls.
	OriginalPure        int
	OriginalPureCallPct float64
	// HintedPure / HintedPureCallPct are the original list's numbers after
	// the exception-free hints discard the spurious injections.
	HintedPure        int
	HintedPureCallPct float64
	// FixedPure / FixedPureCallPct are the numbers for the repaired list
	// (trivial fixes + hints).
	FixedPure        int
	FixedPureCallPct float64
	// Remaining lists the methods still pure non-atomic at the end — the
	// masking phase's responsibility.
	Remaining []string
}

// exceptionFree returns the §4.3 programmer assertion for a list class:
// the index validators never throw for the callers that survived review
// (indices are in range by construction). The element screener is *not*
// asserted — its verdict depends on runtime data, and the paper notes it
// is "often hard for a programmer to determine whether a method is
// exception-free".
func exceptionFree(class string) map[string]bool {
	return map[string]bool{
		class + ".checkIndex":          true,
		class + ".checkIndexInclusive": true,
	}
}

// RepairExperiment runs the three stages of the §6.1 experiment through
// RunRepairStages. The original and hinted stages share one campaign (the
// hints change only the offline classification).
func RepairExperiment(ctx context.Context) (*RepairReport, error) {
	original, ok := apps.ByName("LinkedList")
	if !ok {
		return nil, fmt.Errorf("harness: LinkedList application missing")
	}
	orig := original.Build()
	outcomes, err := RunRepairStages(ctx, inject.Options{}, []RepairStage{
		{Label: "original", Program: orig},
		{Label: "hinted", Program: orig, ExceptionFree: exceptionFree("LinkedList")},
		{Label: "fixed", Program: apps.LinkedListFixedProgram(), ExceptionFree: exceptionFree("LinkedListFixed")},
	})
	if err != nil {
		return nil, err
	}
	return &RepairReport{
		OriginalPure:        outcomes[0].Pure,
		OriginalPureCallPct: outcomes[0].PureCallPct,
		HintedPure:          outcomes[1].Pure,
		HintedPureCallPct:   outcomes[1].PureCallPct,
		FixedPure:           outcomes[2].Pure,
		FixedPureCallPct:    outcomes[2].PureCallPct,
		Remaining:           outcomes[2].PureMethods,
	}, nil
}

func pureCallPct(c *detect.Classification) float64 {
	s := detect.Summarize(c)
	return detect.Percent(s.PureCalls, s.Calls)
}

// RenderRepair prints the experiment outcome.
func RenderRepair(r *RepairReport) string {
	var b strings.Builder
	b.WriteString("§6.1 LinkedList repair experiment (paper: 18 pure / 7.8% of calls -> 3 pure / <0.2%)\n")
	fmt.Fprintf(&b, "original list:                      %2d pure non-atomic methods (%.1f%% of calls)\n",
		r.OriginalPure, r.OriginalPureCallPct)
	fmt.Fprintf(&b, "original + exception-free hints:    %2d pure non-atomic methods (%.1f%% of calls)\n",
		r.HintedPure, r.HintedPureCallPct)
	fmt.Fprintf(&b, "trivial fixes + hints:              %2d pure non-atomic methods (%.1f%% of calls)\n",
		r.FixedPure, r.FixedPureCallPct)
	fmt.Fprintf(&b, "remaining (for the masking phase):  %s\n", strings.Join(r.Remaining, ", "))
	return b.String()
}
