package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"failatomic/internal/core"
)

func tinyFigure5Config() Figure5Config {
	return Figure5Config{
		Sizes:    []int{64, 16 << 10},
		FracsPct: []float64{0, 10, 100},
		Calls:    300,
		Runs:     5,
	}
}

func TestFigure5Shape(t *testing.T) {
	points, err := Figure5(context.Background(), tinyFigure5Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d, want 6", len(points))
	}
	grid := make(map[[2]int]OverheadPoint)
	for _, p := range points {
		grid[[2]int{p.ObjectBytes, int(p.MaskedPct)}] = p
		if p.BaseNs <= 0 || p.MaskedNs <= 0 {
			t.Fatalf("degenerate timing: %+v", p)
		}
	}
	// The paper's shape: overhead grows with the masked-call fraction...
	if grid[[2]int{16 << 10, 100}].Overhead <= grid[[2]int{16 << 10, 10}].Overhead {
		t.Errorf("overhead must grow with masked fraction: %+v vs %+v",
			grid[[2]int{16 << 10, 100}], grid[[2]int{16 << 10, 10}])
	}
	// ...and with the checkpointed object size.
	if grid[[2]int{16 << 10, 100}].Overhead <= grid[[2]int{64, 100}].Overhead {
		t.Errorf("overhead must grow with object size: %+v vs %+v",
			grid[[2]int{16 << 10, 100}], grid[[2]int{64, 100}])
	}
	// Checkpoint size accounting must scale with the object.
	if grid[[2]int{16 << 10, 100}].CheckpointBytes < 16<<10 {
		t.Errorf("checkpoint bytes %d < object size", grid[[2]int{16 << 10, 100}].CheckpointBytes)
	}
}

func TestFigure5JournalStaysFlat(t *testing.T) {
	points, err := Figure5Journal(context.Background(), tinyFigure5Config())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		// Undo-log overhead is O(bytes written), independent of object
		// size; allow generous noise headroom.
		if p.Overhead > 4 {
			t.Errorf("journal overhead %.2f at %dB/%g%% — should stay near 1",
				p.Overhead, p.ObjectBytes, p.MaskedPct)
		}
	}
}

func TestFigure5BadConfig(t *testing.T) {
	if _, err := Figure5(context.Background(), Figure5Config{}); err == nil {
		t.Fatal("empty config must be rejected")
	}
	if _, err := Figure5Journal(context.Background(), Figure5Config{}); err == nil {
		t.Fatal("empty config must be rejected")
	}
}

// TestFigure5Supervised: a generous RunTimeout must not change the
// sweep's shape — every cell completes on the first attempt.
func TestFigure5Supervised(t *testing.T) {
	cfg := tinyFigure5Config()
	cfg.RunTimeout = time.Minute
	cfg.MaxRetries = 1
	points, err := Figure5(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d, want 6", len(points))
	}
	for _, p := range points {
		if p.BaseNs <= 0 || p.MaskedNs <= 0 {
			t.Fatalf("degenerate timing: %+v", p)
		}
	}
}

// TestFigure5WatchdogExpires: a timeout the measurement loop cannot beat
// must fail the sweep after MaxRetries extra attempts, naming the cell.
func TestFigure5WatchdogExpires(t *testing.T) {
	cfg := Figure5Config{
		// Large enough that the cell reliably outlives a 1ns watchdog;
		// the abandoned goroutines finish in milliseconds.
		Sizes:      []int{64},
		FracsPct:   []float64{0},
		Calls:      50000,
		Runs:       3,
		RunTimeout: time.Nanosecond,
		MaxRetries: 1,
	}
	_, err := Figure5(context.Background(), cfg)
	if err == nil {
		t.Fatal("1ns watchdog must expire")
	}
	for _, want := range []string{"exceeded RunTimeout", "2 attempt(s)", "64B"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestRenderFigure5(t *testing.T) {
	points, err := Figure5(context.Background(), Figure5Config{
		Sizes:    []int{64},
		FracsPct: []float64{0, 100},
		Calls:    100,
		Runs:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFigure5(points)
	if !strings.Contains(out, "64B") || !strings.Contains(out, "100%") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestBenchTargetRollbackPath(t *testing.T) {
	session := core.NewSession(core.Config{
		Mask:    true,
		MaskAll: true,
	})
	if err := core.Install(session); err != nil {
		t.Fatal(err)
	}
	defer core.Uninstall(session)

	target := NewBenchTarget(256)
	before := target.P.Meta[0]
	func() {
		defer func() { _ = recover() }()
		target.WorkThrowing()
	}()
	if target.P.Meta[0] != before {
		t.Fatal("masking must roll back the throwing method's mutation")
	}
	if session.Rollbacks() != 1 {
		t.Fatalf("rollbacks = %d, want 1", session.Rollbacks())
	}
}

func TestMedian(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median wrong")
	}
}

func TestByteSize(t *testing.T) {
	tests := []struct {
		give int
		want string
	}{
		{give: 64, want: "64B"},
		{give: 2048, want: "2KiB"},
		{give: 2 << 20, want: "2MiB"},
	}
	for _, tt := range tests {
		if got := byteSize(tt.give); got != tt.want {
			t.Errorf("byteSize(%d) = %q, want %q", tt.give, got, tt.want)
		}
	}
}
