package cli

import (
	"context"
	"fmt"
	"strings"

	"failatomic/internal/apps"
	"failatomic/internal/detect"
	"failatomic/internal/harness"
	"failatomic/internal/inject"
	"failatomic/internal/mask"
)

// CampaignReport renders everything a finished single-app detection
// campaign reports: nondeterminism warnings, the quarantine summary, the
// per-method classification, and the §4.3 masking verification (wrap plan
// + re-campaign with the planned set wrapped). Both fadetect's local mode
// and the faserve job runner produce their output through this function,
// which is what makes a server-side report byte-identical to a local run.
//
// The returned int is the exit-code-equivalent (ExitOK or
// ExitQuarantined); campaign failures — including cancellation of the
// verification re-campaign — surface as an error alongside the partial
// report rendered so far.
func CampaignReport(ctx context.Context, app apps.App, opts inject.Options, res *harness.AppResult) (string, int, error) {
	var b strings.Builder
	for _, w := range res.Result.Warnings {
		fmt.Fprintln(&b, "warning:", w)
	}
	if len(res.Result.Quarantined) > 0 {
		b.WriteString(RenderQuarantine(app.Name, res.Result.Quarantined))
	}
	s := res.Summary
	fmt.Fprintf(&b, "%s (%s): %d classes, %d methods, %d injections\n",
		app.Name, app.Lang, s.Classes, s.Methods, res.Result.Injections)
	fmt.Fprintf(&b, "methods: %d atomic, %d conditional, %d pure failure non-atomic\n\n",
		s.AtomicMethods, s.ConditionalMethods, s.PureMethods)
	for _, mn := range res.Classification.Names() {
		rep := res.Classification.Methods[mn]
		fmt.Fprintf(&b, "%-36s %-32s calls=%-5d", mn, rep.Classification, rep.Calls)
		if rep.SampleDiff != "" {
			fmt.Fprintf(&b, " e.g. %s", rep.SampleDiff)
		}
		fmt.Fprintln(&b)
	}
	b.WriteString(RenderStrategySection(res.Result, res.Classification,
		detect.Options{ExceptionFree: opts.ExceptionFree}))
	code := ExitOK
	if len(res.Result.Quarantined) > 0 {
		code = ExitQuarantined
	}
	na := res.Classification.NonAtomicMethods()
	if len(na) == 0 {
		return b.String(), code, nil
	}

	// §4.3: compute the wrap plan (pure methods only — conditional ones
	// become atomic for free) and verify it by re-running the campaign
	// with exactly the planned set wrapped.
	plan := mask.Build(res.Classification, nil, mask.Policy{})
	fmt.Fprintln(&b)
	b.WriteString(plan.Render())
	fmt.Fprintf(&b, "\nverifying masking phase: re-running campaign with %d methods wrapped...\n",
		len(plan.Wrap))
	maskOpts := opts
	maskOpts.Mask = plan.WrapSet()
	maskOpts.OnRun = nil
	maskOpts.Completed = nil
	// The verification re-campaign checks the paper's §4.3 property — the
	// wrap plan is built from the baseline classification, so it is judged
	// under the baseline fault model; re-running the perturbation grids
	// here would re-flag methods the plan never claimed to mask.
	maskOpts.Perturbations = nil
	masked, err := inject.Campaign(ctx, app.Build(), maskOpts)
	if err != nil {
		return b.String(), ExitFailure, err
	}
	cls := detect.Classify(masked, detect.Options{})
	remaining := cls.NonAtomicMethods()
	if len(remaining) == 0 {
		fmt.Fprintln(&b, "all methods failure atomic in the corrected program")
	} else {
		fmt.Fprintf(&b, "STILL NON-ATOMIC (checkpoint gaps): %v\n", remaining)
		for _, m := range remaining {
			fmt.Fprintf(&b, "  %s: %s\n", m, cls.Methods[m].SampleDiff)
		}
	}
	return b.String(), code, nil
}

// RenderStrategySection renders the per-perturbation-model report block:
// one summary line per strategy, then only the methods whose verdict
// differs from the baseline (default first-activation) classification —
// the flips the richer fault model exposed. Empty for perturbation-free
// campaigns, keeping their reports byte-identical to the old format.
func RenderStrategySection(res *inject.Result, baseline *detect.Classification, dopts detect.Options) string {
	strategies := detect.Strategies(res)
	if len(strategies) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintln(&b, "\nperturbation models:")
	for _, st := range strategies {
		cls := detect.ClassifyStrategy(res, dopts, st)
		sum := detect.Summarize(cls)
		runs, injections := detect.StrategyRuns(res, st)
		fmt.Fprintf(&b, "[%s] %d runs, %d injections; methods: %d atomic, %d conditional, %d pure failure non-atomic\n",
			st, runs, injections, sum.AtomicMethods, sum.ConditionalMethods, sum.PureMethods)
		for _, mn := range cls.Names() {
			rep := cls.Methods[mn]
			base := baseline.Methods[mn]
			if base != nil && base.Classification == rep.Classification {
				continue
			}
			baseClass := "unobserved"
			if base != nil {
				baseClass = base.Classification.String()
			}
			fmt.Fprintf(&b, "  %-34s %-32s baseline: %s", mn, rep.Classification, baseClass)
			if rep.SampleDiff != "" {
				fmt.Fprintf(&b, " e.g. %s", rep.SampleDiff)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}
