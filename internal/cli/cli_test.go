package cli

import (
	"strings"
	"testing"

	"failatomic/internal/fault"
	"failatomic/internal/inject"
)

func TestRenderQuarantineEmpty(t *testing.T) {
	if out := RenderQuarantine("x", nil); out != "" {
		t.Fatalf("no quarantine must render nothing, got %q", out)
	}
}

func TestRenderQuarantineLines(t *testing.T) {
	out := RenderQuarantine("LinkedList", []inject.Quarantine{
		{InjectionPoint: 7, Status: inject.RunHung, Retries: 2, Err: "run exceeded RunTimeout 50ms"},
		{InjectionPoint: 12, Status: inject.RunUndetermined, Retries: 1, Kind: fault.RuntimeError, Err: "foreign panic: boom"},
	})
	for _, want := range []string{
		"QUARANTINED (LinkedList): 2 injection point(s)",
		"point 7", "hung", "retries=2", "RunTimeout",
		"point 12", "undetermined", "kind=RuntimeError", "foreign panic: boom",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestExitCodesAreDistinct(t *testing.T) {
	if ExitOK == ExitFailure || ExitFailure == ExitQuarantined || ExitOK == ExitQuarantined {
		t.Fatal("exit codes must be pairwise distinct")
	}
}
