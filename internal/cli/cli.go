// Package cli holds the conventions the failatomic command-line tools
// share: process exit codes and the quarantine summary block.
package cli

import (
	"fmt"
	"strings"

	"failatomic/internal/inject"
)

// Exit codes shared by fadetect and fabench. A campaign that completes
// but quarantines points is distinguishable from an outright failure so
// scripted evaluations can tell "rerun with a bigger timeout" apart from
// "the harness is broken".
const (
	// ExitOK: every campaign completed with nothing quarantined.
	ExitOK = 0
	// ExitFailure: a campaign (or the tool itself) failed — including
	// interruption by SIGINT/SIGTERM.
	ExitFailure = 1
	// ExitQuarantined: all campaigns completed, but at least one injection
	// point was quarantined (hung or crashed after retries); its methods
	// were classified conservatively.
	ExitQuarantined = 2
	// ExitDrift: fareport -diff-against found the fresh classification
	// diverging from the golden one — the regression gate tripped.
	ExitDrift = 3
)

// RenderQuarantine formats the quarantine summary for one program: one
// line per point with its kind, retry count and last error.
func RenderQuarantine(program string, qs []inject.Quarantine) string {
	if len(qs) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "QUARANTINED (%s): %d injection point(s) excluded from classification\n", program, len(qs))
	for _, q := range qs {
		kind := string(q.Kind)
		if kind == "" {
			kind = "-"
		}
		fmt.Fprintf(&b, "  point %-6d %-13s kind=%-14s retries=%d  %s\n",
			q.InjectionPoint, q.Status, kind, q.Retries, q.Err)
	}
	return b.String()
}
