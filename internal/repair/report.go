package repair

import (
	"fmt"
	"strings"

	"failatomic/internal/bench"
	"failatomic/internal/cli"
	"failatomic/internal/core"
	"failatomic/internal/inject"
	"failatomic/internal/mask"
	"failatomic/internal/weave"
)

// Report is the outcome of one repair workflow. Every field that reaches
// Render is deterministic for a deterministic workload — counts, sorted
// name lists and checkpoint byte totals, never wall-clock — so the same
// repair run locally, on faserve, or on a faworker renders byte-identical
// reports. Wall-clock strategy timings (Bench) are only populated behind
// an explicit measure flag and rendered after the deterministic body.
type Report struct {
	// App is the bundled application that was repaired.
	App string `json:"app"`
	// Injections and Quarantined summarize the phase-1 campaign.
	Injections  int `json:"injections"`
	Quarantined int `json:"quarantined"`
	// NonAtomic and Pure are the phase-1 classification (sorted).
	NonAtomic []string `json:"nonAtomic"`
	Pure      []string `json:"pure"`
	// Plan is the §4.3 masking plan with strategy assignments attached.
	Plan *mask.Plan `json:"plan"`
	// Rewrites records the weaver's per-method strategy rewrites.
	Rewrites []weave.RewriteResult `json:"rewrites"`
	// BaselineChecked reports whether the unrepaired tree was rebuilt and
	// re-detected; BaselinePure is its pure set (which must equal Pure).
	BaselineChecked bool     `json:"baselineChecked"`
	BaselinePure    []string `json:"baselinePure,omitempty"`
	// VerifiedPure and VerifiedNonAtomic classify the repaired tree's
	// child re-run; a successful repair has an empty VerifiedPure.
	VerifiedPure      []string `json:"verifiedPure"`
	VerifiedNonAtomic []string `json:"verifiedNonAtomic"`
	// MaskResidue lists wrap-set methods the in-process masked campaign
	// still classified non-atomic (empty on success).
	MaskResidue []string `json:"maskResidue"`
	// Overhead is the per-strategy masking cost table.
	Overhead []StrategyOverhead `json:"overhead"`
	// Bench holds wall-clock per-rung timings (only with Config.Measure).
	Bench []bench.Result `json:"bench,omitempty"`
	// Campaign is the raw phase-1 injection result, for callers that store
	// or re-render the detection log (faserve keeps it as the job's log
	// artifact). It is process-local state, not part of the wire report.
	Campaign *inject.Result `json:"-"`
}

// StrategyOverhead aggregates runtime masking cost over the methods
// assigned one Item-76 rung — the strategy-resolved extension of the
// paper's Figure 3/4 overhead story.
type StrategyOverhead struct {
	Strategy  string `json:"strategy"`
	Methods   int    `json:"methods"`
	Calls     int64  `json:"calls"`
	Bytes     int64  `json:"bytes"`
	Rollbacks int64  `json:"rollbacks"`
}

// strategyOrder ranks rungs cheapest-first for the overhead table.
var strategyOrder = map[string]int{
	weave.StrategyNone:       0,
	weave.StrategyReorder:    1,
	weave.StrategyTempSwap:   2,
	weave.StrategyCheckpoint: 3,
}

// overheadTable groups per-method masking stats by assigned rung.
func overheadTable(assigns []mask.StrategyAssignment, totals map[string]core.MaskStat) []StrategyOverhead {
	byRung := make(map[string]*StrategyOverhead)
	for _, a := range assigns {
		o := byRung[a.Strategy]
		if o == nil {
			o = &StrategyOverhead{Strategy: a.Strategy}
			byRung[a.Strategy] = o
		}
		o.Methods++
		st := totals[a.Method]
		o.Calls += st.Calls
		o.Bytes += st.Bytes
		o.Rollbacks += st.Rollbacks
	}
	out := make([]StrategyOverhead, 0, len(byRung))
	for _, o := range byRung {
		out = append(out, *o)
	}
	sortOverhead(out)
	return out
}

func sortOverhead(rows []StrategyOverhead) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && strategyOrder[rows[j].Strategy] < strategyOrder[rows[j-1].Strategy]; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

// Render prints the report. The output is deterministic (no wall-clock)
// except for the trailing bench table, present only when the workflow
// measured timings.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "repair report: %s\n", r.App)
	fmt.Fprintf(&b, "[detect] %d injections, %d quarantined\n", r.Injections, r.Quarantined)
	fmt.Fprintf(&b, "[detect] %d non-atomic method(s), %d pure failure non-atomic\n",
		len(r.NonAtomic), len(r.Pure))
	if r.Plan != nil {
		b.WriteString(r.Plan.Render())
		b.WriteString(mask.RenderStrategies(r.Plan.Strategies))
	}
	applied, byRung := 0, make(map[string]int)
	for _, rw := range r.Rewrites {
		if rw.Applied {
			applied++
			byRung[rw.Strategy]++
		}
	}
	fmt.Fprintf(&b, "[rewrite] applied %d rewrite(s): %d reorder, %d tempswap, %d checkpoint\n",
		applied, byRung[weave.StrategyReorder], byRung[weave.StrategyTempSwap], byRung[weave.StrategyCheckpoint])
	if r.BaselineChecked {
		fmt.Fprintf(&b, "[verify] original tree: %d pure failure non-atomic method(s) — matches the in-process campaign\n",
			len(r.BaselinePure))
	}
	fmt.Fprintf(&b, "[verify] repaired tree: %d pure failure non-atomic method(s)\n", len(r.VerifiedPure))
	if len(r.VerifiedPure) > 0 {
		fmt.Fprintf(&b, "[verify] still pure: %s\n", strings.Join(r.VerifiedPure, ", "))
	}
	if r.Plan != nil {
		fmt.Fprintf(&b, "[mask] runtime verification: wrapped %d method(s), residue %d\n",
			len(r.Plan.Wrap), len(r.MaskResidue))
		if len(r.MaskResidue) > 0 {
			fmt.Fprintf(&b, "[mask] still non-atomic under masking: %s\n", strings.Join(r.MaskResidue, ", "))
		}
	}
	if len(r.Overhead) > 0 {
		b.WriteString("per-strategy masking overhead:\n")
		b.WriteString("  strategy    methods  masked calls  checkpoint bytes  rollbacks\n")
		for _, o := range r.Overhead {
			fmt.Fprintf(&b, "  %-10s  %7d  %12d  %16d  %9d\n",
				o.Strategy, o.Methods, o.Calls, o.Bytes, o.Rollbacks)
		}
	}
	fmt.Fprintf(&b, "§6.1 extended: %d pure failure non-atomic method(s) -> %d after strategy-aware repair\n",
		len(r.Pure), len(r.VerifiedPure))
	if len(r.Bench) > 0 {
		b.WriteString("\nper-strategy wall-clock overhead (non-deterministic; -measure only):\n")
		b.WriteString(bench.Render(r.Bench))
	}
	return b.String()
}

// Succeeded reports whether the repaired tree classified clean and the
// runtime masking verification left no residue.
func (r *Report) Succeeded() bool {
	return len(r.VerifiedPure) == 0 && len(r.MaskResidue) == 0
}

// ExitCode maps a completed repair to the shared CLI exit-code
// convention: an unsuccessful repair is a failure, a successful one with
// quarantined injection points reports the quarantine, otherwise OK. The
// farepair CLI, the faserve repair job and the faworker lease path all
// exit through this one mapping.
func (r *Report) ExitCode() int {
	switch {
	case !r.Succeeded():
		return cli.ExitFailure
	case r.Quarantined > 0:
		return cli.ExitQuarantined
	default:
		return cli.ExitOK
	}
}
