package repair

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"failatomic/internal/apps"
	"failatomic/internal/bench"
	"failatomic/internal/checkpoint"
	"failatomic/internal/detect"
	"failatomic/internal/harness"
	"failatomic/internal/inject"
	"failatomic/internal/mask"
	"failatomic/internal/weave"
)

// Config tunes one repair workflow.
type Config struct {
	// App names the bundled application to repair (see SupportedApp).
	App string
	// WorkDir is where the original and repaired trees are materialized;
	// "" uses a temporary directory that is removed afterwards.
	WorkDir string
	// ModuleRoot is the failatomic module checkout the child trees build
	// against; "" walks up from the working directory.
	ModuleRoot string
	// SkipBaseline skips rebuilding the unrepaired tree (the baseline run
	// proves the tree reproduces the in-process classification before any
	// rewrite is trusted).
	SkipBaseline bool
	// Measure additionally times each strategy rung with internal/bench.
	// Timings are wall-clock and therefore non-deterministic; they render
	// after the deterministic report body.
	Measure bool
	// Options tunes the phase-1 detection campaign (and, stripped of its
	// journal hooks, the verification campaigns).
	Options inject.Options
}

// Run executes the detect → mask → verify workflow and returns its report.
// The error path is reserved for infrastructure failures (campaign errors,
// unbuildable trees, a baseline mismatch); a repair that merely leaves
// residue returns a report with Succeeded() == false.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if !SupportedApp(cfg.App) {
		return nil, fmt.Errorf("repair: no source tree for app %q", cfg.App)
	}
	app, ok := apps.ByName(cfg.App)
	if !ok {
		return nil, fmt.Errorf("repair: unknown app %q", cfg.App)
	}
	moduleRoot := cfg.ModuleRoot
	if moduleRoot == "" {
		root, err := FindModuleRoot(".")
		if err != nil {
			return nil, err
		}
		moduleRoot = root
	}

	// Phase 1: the detection campaign over the bundled application.
	phase1, err := harness.RunApp(ctx, app, cfg.Options)
	if err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	report := &Report{
		App:         cfg.App,
		Campaign:    phase1.Result,
		Injections:  phase1.Result.Injections,
		Quarantined: len(phase1.Result.Quarantined),
		NonAtomic:   phase1.Classification.NonAtomicMethods(),
		Pure:        phase1.Classification.PureNonAtomicMethods(),
	}

	// Phase 2: the §4.3 masking plan, with an Item-76 rung per method.
	plan := mask.Build(phase1.Classification, nil, mask.Policy{})
	report.Plan = plan

	workDir := cfg.WorkDir
	if workDir == "" {
		tmp, err := os.MkdirTemp("", "farepair-*")
		if err != nil {
			return nil, fmt.Errorf("repair: %w", err)
		}
		defer os.RemoveAll(tmp)
		workDir = tmp
	}
	originalDir := filepath.Join(workDir, "original")
	repairedDir := filepath.Join(workDir, "repaired")
	for _, dir := range []string{originalDir, repairedDir} {
		if err := materializeTree(cfg.App, dir); err != nil {
			return nil, err
		}
		if _, err := weave.InstrumentDir(dir, weave.Options{}, false); err != nil {
			return nil, fmt.Errorf("repair: weave %s: %w", dir, err)
		}
	}

	// The analyzer's inventory of the woven original tree supplies both
	// the generated registry and the per-method strategy recommendations.
	inv, err := weave.AnalyzeDir(originalDir)
	if err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	assigns := plan.AssignStrategies(func(m string) (string, string) {
		facts := inv.Methods[m]
		if facts == nil {
			return "", ""
		}
		return facts.Strategy, facts.StrategyReason
	})

	// Phase 3: rewrite the repaired tree per assignment.
	strategies := make(map[string]string, len(assigns))
	for _, a := range assigns {
		strategies[a.Method] = a.Strategy
	}
	rewrites, err := weave.RewriteDir(repairedDir, weave.Options{}, strategies)
	if err != nil {
		return nil, err
	}
	report.Rewrites = rewrites

	// Phase 4: rebuild each tree as its own module and re-run detection in
	// a child process.
	for _, dir := range []string{originalDir, repairedDir} {
		files := map[string]string{
			"main.go":     driverSource(cfg.App),
			"registry.go": string(inv.GenerateRegistryFacade("buildRegistry", weave.Options{})),
			"go.mod":      goModSource(moduleRoot),
		}
		for name, content := range files {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				return nil, fmt.Errorf("repair: %w", err)
			}
		}
	}
	if !cfg.SkipBaseline {
		base, err := runChild(originalDir)
		if err != nil {
			return nil, err
		}
		report.BaselineChecked = true
		report.BaselinePure = base.Pure
		if !sameNames(base.Pure, report.Pure) {
			return nil, fmt.Errorf("repair: baseline mismatch: tree classifies pure %v, in-process campaign %v",
				base.Pure, report.Pure)
		}
	}
	repaired, err := runChild(repairedDir)
	if err != nil {
		return nil, err
	}
	report.VerifiedPure = repaired.Pure
	report.VerifiedNonAtomic = repaired.NonAtomic

	// Phase 5: runtime masking verification in-process — wrap the plan's
	// methods with checkpoint strategies and prove the masked campaign
	// classifies them atomic, collecting per-strategy overhead.
	maskOpts := cfg.Options
	maskOpts.OnRun = nil
	maskOpts.Completed = nil
	maskOpts.Mask = plan.WrapSet()
	maskOpts.MaskStrategies = make(map[string]checkpoint.Strategy, len(assigns))
	for _, a := range assigns {
		maskOpts.MaskStrategies[a.Method] = checkpoint.Auto()
	}
	masked, err := harness.RunApp(ctx, app, maskOpts)
	if err != nil {
		return nil, fmt.Errorf("repair: masked campaign: %w", err)
	}
	report.MaskResidue = []string{}
	for _, m := range plan.Wrap {
		rep := masked.Classification.Methods[m]
		if rep != nil && rep.Classification != detect.ClassAtomic {
			report.MaskResidue = append(report.MaskResidue, m)
		}
	}
	report.Overhead = overheadTable(assigns, masked.Result.MaskStatTotals())

	if cfg.Measure {
		report.Bench = bench.StrategySuite()
	}
	return report, nil
}

// sameNames compares two sorted name lists.
func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
