package repair

import (
	"context"
	"strings"
	"testing"

	"failatomic/internal/harness"
)

// TestExperimentMatchesHistoricalRenderer pins the deprecated fadetect
// -repair alias: its output — now routed through the repair package and
// the generalized harness stages — must stay byte-identical to the
// historical §6.1 renderer.
func TestExperimentMatchesHistoricalRenderer(t *testing.T) {
	ctx := context.Background()
	out, err := Experiment(ctx)
	if err != nil {
		t.Fatal(err)
	}
	report, err := harness.RepairExperiment(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := harness.RenderRepair(report); out != want {
		t.Errorf("alias output diverged from the historical renderer:\n--- alias\n%s\n--- historical\n%s", out, want)
	}
	if !strings.HasPrefix(out, "§6.1 LinkedList repair experiment") {
		t.Errorf("missing pinned header:\n%s", out)
	}
	for _, want := range []string{
		"original list:",
		"original + exception-free hints:",
		"trivial fixes + hints:",
		"remaining (for the masking phase):",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing pinned line %q:\n%s", want, out)
		}
	}
}
