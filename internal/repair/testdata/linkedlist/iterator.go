package main

import "failatomic"

// LLIterator enumerates a LinkedList in the check-then-advance style, so
// it is failure atomic — the atomic ballast of the paper's evaluation.
type LLIterator struct {
	List  *LinkedList
	Cell  *LLCell
	Index int
}

// NewLLIterator returns an iterator positioned before the first element.
func NewLLIterator(l *LinkedList) *LLIterator {
	return &LLIterator{List: l, Cell: l.Head}
}

// HasNext reports whether Next will succeed.
func (it *LLIterator) HasNext() bool {
	return it.Cell != nil
}

// Next returns the next element; it throws NoSuchElement when exhausted.
func (it *LLIterator) Next() Item {
	if it.Cell == nil {
		failatomic.Throw(failatomic.NoSuchElement, "LLIterator.Next", "exhausted")
	}
	v := it.Cell.Element
	it.Cell = it.Cell.Next
	it.Index++
	return v
}

// Reset rewinds to the first element.
func (it *LLIterator) Reset() {
	it.Cell = it.List.Head
	it.Index = 0
}
