package main

import "failatomic"

// Item is the element type (the Java Object analog).
type Item = any

// Screener decides whether the list may include an element.
type Screener func(Item) bool

// SameItem is the equality used by the list (Java equals semantics for the
// supported scalar element types).
func SameItem(a, b Item) bool { return a == b }

// checkElement implements the screening idiom: nil elements and
// screener-rejected elements throw IllegalElement.
func checkElement(method string, screener Screener, v Item) {
	if v == nil {
		failatomic.Throw(failatomic.IllegalElement, method, "nil element")
	}
	if screener != nil && !screener(v) {
		failatomic.Throw(failatomic.IllegalElement, method, "element %v rejected by screener", v)
	}
}
