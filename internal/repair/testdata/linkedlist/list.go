package main

import "failatomic"

// LLCell is one cell of a singly linked list.
type LLCell struct {
	Element Item
	Next    *LLCell
}

// LinkedList is a screened, versioned singly linked list in the original
// library's idiom: mutators bump Version *first* and validate afterwards —
// exactly the failure non-atomic pattern the paper's §6.1 LinkedList
// experiment found, and the pattern farepair repairs.
type LinkedList struct {
	Head    *LLCell
	Count   int
	Version int
	Screen  Screener
}

// NewLinkedList returns an empty list with an optional element screener.
func NewLinkedList(screen Screener) *LinkedList {
	return &LinkedList{Screen: screen}
}

// Size returns the number of elements.
func (l *LinkedList) Size() int {
	return l.Count
}

// IsEmpty reports whether the list has no elements.
func (l *LinkedList) IsEmpty() bool {
	return l.Count == 0
}

// First returns the first element; it throws NoSuchElement when empty.
func (l *LinkedList) First() Item {
	if l.Head == nil {
		failatomic.Throw(failatomic.NoSuchElement, "LinkedList.First", "empty list")
	}
	return l.Head.Element
}

// Last returns the last element; it throws NoSuchElement when empty.
func (l *LinkedList) Last() Item {
	cell := l.Head
	if cell == nil {
		failatomic.Throw(failatomic.NoSuchElement, "LinkedList.Last", "empty list")
	}
	for cell.Next != nil {
		cell = cell.Next
	}
	return cell.Element
}

// At returns the element at index i.
func (l *LinkedList) At(i int) Item {
	l.checkIndex(i)
	return l.cellAt(i).Element
}

// InsertFirst prepends v. Original idiom: version is bumped before the
// element is screened.
func (l *LinkedList) InsertFirst(v Item) {
	l.Version++
	l.screen(v)
	l.Head = &LLCell{Element: v, Next: l.Head}
	l.Count++
}

// InsertLast appends v; version and count are updated before the screening
// walk completes.
func (l *LinkedList) InsertLast(v Item) {
	l.Version++
	l.Count++
	l.screen(v)
	cell := &LLCell{Element: v}
	if l.Head == nil {
		l.Head = cell
		return
	}
	cur := l.Head
	for cur.Next != nil {
		cur = cur.Next
	}
	cur.Next = cell
}

// InsertAt inserts v so that it becomes the element at index i.
func (l *LinkedList) InsertAt(i int, v Item) {
	l.Count++ // original bug pattern: count first, validate later
	l.Version++
	if i == 0 {
		l.screen(v)
		l.Head = &LLCell{Element: v, Next: l.Head}
		return
	}
	l.checkIndexInclusive(i)
	l.screen(v)
	prev := l.cellAt(i - 1)
	prev.Next = &LLCell{Element: v, Next: prev.Next}
}

// RemoveFirst removes and returns the first element. The emptiness check
// happens after the version bump — a non-atomic organic failure.
func (l *LinkedList) RemoveFirst() Item {
	l.Version++
	if l.Head == nil {
		failatomic.Throw(failatomic.NoSuchElement, "LinkedList.RemoveFirst", "empty list")
	}
	v := l.Head.Element
	l.Head = l.Head.Next
	l.Count--
	return v
}

// RemoveLast removes and returns the last element.
func (l *LinkedList) RemoveLast() Item {
	l.Version++
	l.Count--
	if l.Head == nil {
		l.Count++
		failatomic.Throw(failatomic.NoSuchElement, "LinkedList.RemoveLast", "empty list")
	}
	if l.Head.Next == nil {
		v := l.Head.Element
		l.Head = nil
		return v
	}
	cur := l.Head
	for cur.Next.Next != nil {
		cur = cur.Next
	}
	v := cur.Next.Element
	cur.Next = nil
	return v
}

// RemoveAt removes and returns the element at index i.
func (l *LinkedList) RemoveAt(i int) Item {
	l.Version++
	l.checkIndex(i)
	if i == 0 {
		v := l.Head.Element
		l.Head = l.Head.Next
		l.Count--
		return v
	}
	prev := l.cellAt(i - 1)
	v := prev.Next.Element
	prev.Next = prev.Next.Next
	l.Count--
	return v
}

// RemoveOne removes the first occurrence of v and reports whether one was
// removed.
func (l *LinkedList) RemoveOne(v Item) bool {
	l.Version++
	l.screen(v)
	if l.Head == nil {
		return false
	}
	if SameItem(l.Head.Element, v) {
		l.Head = l.Head.Next
		l.Count--
		return true
	}
	for cur := l.Head; cur.Next != nil; cur = cur.Next {
		if SameItem(cur.Next.Element, v) {
			cur.Next = cur.Next.Next
			l.Count--
			return true
		}
	}
	return false
}

// RemoveAll removes every occurrence of v, unlinking as it walks — an
// exception mid-walk leaves earlier removals committed (inherently pure
// failure non-atomic; not trivially fixable).
func (l *LinkedList) RemoveAll(v Item) int {
	removed := 0
	for l.Head != nil && SameItem(l.Head.Element, v) {
		l.Version++
		l.Head = l.Head.Next
		l.Count--
		removed++
		l.screen(v)
	}
	if l.Head == nil {
		return removed
	}
	for cur := l.Head; cur.Next != nil; {
		if SameItem(cur.Next.Element, v) {
			l.Version++
			cur.Next = cur.Next.Next
			l.Count--
			removed++
			l.screen(v)
		} else {
			cur = cur.Next
		}
	}
	return removed
}

// ReplaceAt replaces the element at index i and returns the old element.
func (l *LinkedList) ReplaceAt(i int, v Item) Item {
	l.Version++
	l.checkIndex(i)
	l.screen(v)
	cell := l.cellAt(i)
	old := cell.Element
	cell.Element = v
	return old
}

// ReplaceAll replaces every occurrence of old with new, screening each
// write — partial progress on exception makes this pure non-atomic.
func (l *LinkedList) ReplaceAll(oldV, newV Item) int {
	replaced := 0
	for cur := l.Head; cur != nil; cur = cur.Next {
		if SameItem(cur.Element, oldV) {
			l.Version++
			cur.Element = newV
			replaced++
			l.screen(newV)
		}
	}
	return replaced
}

// Includes reports whether v occurs in the list.
func (l *LinkedList) Includes(v Item) bool {
	return l.IndexOf(v) >= 0
}

// IndexOf returns the index of the first occurrence of v, or -1.
func (l *LinkedList) IndexOf(v Item) int {
	i := 0
	for cur := l.Head; cur != nil; cur = cur.Next {
		if SameItem(cur.Element, v) {
			return i
		}
		i++
	}
	return -1
}

// Clear removes all elements.
func (l *LinkedList) Clear() {
	l.Version++
	l.Head = nil
	l.Count = 0
}

// ToSlice copies the elements into a fresh slice.
func (l *LinkedList) ToSlice() []Item {
	out := make([]Item, 0, l.Count)
	for cur := l.Head; cur != nil; cur = cur.Next {
		out = append(out, cur.Element)
	}
	return out
}

// checkIndex throws IndexOutOfBounds unless 0 <= i < Count.
func (l *LinkedList) checkIndex(i int) {
	if i < 0 || i >= l.Count {
		failatomic.Throw(failatomic.IndexOutOfBounds, "LinkedList.checkIndex",
			"index %d outside [0,%d)", i, l.Count)
	}
}

// checkIndexInclusive allows i == Count (insertion position).
func (l *LinkedList) checkIndexInclusive(i int) {
	// Note: callers that pre-incremented Count pass indices validated
	// against the *new* count, faithfully reproducing the original
	// library's subtle semantics.
	if i < 0 || i >= l.Count {
		failatomic.Throw(failatomic.IndexOutOfBounds, "LinkedList.checkIndexInclusive",
			"index %d outside [0,%d]", i, l.Count)
	}
}

// screen validates an element against the list's screener.
func (l *LinkedList) screen(v Item) {
	checkElement("LinkedList.screen", l.Screen, v)
}

// cellAt returns the cell at index i; the index must already be checked.
//
//failatomic:ignore hot navigation helper, no state
func (l *LinkedList) cellAt(i int) *LLCell {
	cur := l.Head
	for ; i > 0; i-- {
		cur = cur.Next
	}
	return cur
}
