package repair

import (
	"context"

	"failatomic/internal/harness"
)

// Experiment runs the classic three-stage §6.1 LinkedList experiment
// (original, exception-free hints, trivial fixes) through the harness's
// generalized repair stages and renders it. fadetect's deprecated -repair
// flag routes here; the output is pinned byte-identical to the historical
// renderer. The full strategy-aware workflow is Run.
func Experiment(ctx context.Context) (string, error) {
	report, err := harness.RepairExperiment(ctx)
	if err != nil {
		return "", err
	}
	return harness.RenderRepair(report), nil
}
