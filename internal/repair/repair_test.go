package repair

import (
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"failatomic/internal/weave"
)

// TestRepairWorkflowLinkedList runs the full detect → mask → verify loop:
// campaign over the bundled LinkedList, strategy-aware rewrite of the
// embedded tree, child rebuilds of both trees, and the in-process masked
// verification. It is the programmatic form of the farepair CLI run CI
// pins a golden for.
func TestRepairWorkflowLinkedList(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs child Go programs")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	moduleRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	report, err := Run(context.Background(), Config{
		App:        "LinkedList",
		WorkDir:    t.TempDir(),
		ModuleRoot: moduleRoot,
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(report.Pure) == 0 {
		t.Fatal("phase-1 campaign found no pure failure non-atomic methods")
	}
	if !report.BaselineChecked {
		t.Error("baseline verification did not run")
	}
	if len(report.VerifiedPure) != 0 {
		t.Errorf("repaired tree still classifies pure non-atomic: %v", report.VerifiedPure)
	}
	if len(report.MaskResidue) != 0 {
		t.Errorf("masked campaign left residue: %v", report.MaskResidue)
	}
	if !report.Succeeded() {
		t.Error("report.Succeeded() = false")
	}

	// Every wrap-set method must carry a rung and a rewrite record.
	if report.Plan == nil || len(report.Plan.Strategies) != len(report.Plan.Wrap) {
		t.Fatalf("strategy assignments incomplete: %+v", report.Plan)
	}
	rungs := make(map[string]int)
	for _, a := range report.Plan.Strategies {
		rungs[a.Strategy]++
	}
	if rungs[weave.StrategyReorder] == 0 || rungs[weave.StrategyCheckpoint] == 0 {
		t.Errorf("expected both reorder and checkpoint rungs on LinkedList, got %v", rungs)
	}

	// The overhead table covers every assigned rung and records masked
	// calls for the wrapped methods.
	if len(report.Overhead) == 0 {
		t.Fatal("no per-strategy overhead rows")
	}
	var calls int64
	for _, o := range report.Overhead {
		calls += o.Calls
	}
	if calls == 0 {
		t.Error("masked campaign recorded no checkpointed calls")
	}

	out := report.Render()
	for _, want := range []string{
		"repair report: LinkedList",
		"masking plan: wrap",
		"strategy assignments (Item-76 ladder):",
		"[verify] repaired tree: 0 pure failure non-atomic method(s)",
		"per-strategy masking overhead:",
		"§6.1 extended:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ns/op") {
		t.Error("deterministic report contains wall-clock output")
	}
}

// TestSupportedApp pins the supported-tree predicate the serve layer
// validates repair job specs against.
func TestSupportedApp(t *testing.T) {
	if !SupportedApp("LinkedList") {
		t.Error("LinkedList must be supported")
	}
	if SupportedApp("RBMap") {
		t.Error("RBMap has no embedded tree")
	}
}
