package collections

import (
	"testing"

	"failatomic/internal/fault"
)

// catchException runs f and returns the *fault.Exception it panics with,
// or nil if it completes.
func catchException(f func()) (exc *fault.Exception) {
	defer func() {
		if r := recover(); r != nil {
			exc = fault.From(r)
		}
	}()
	f()
	return nil
}

func intsOf(items []Item) []int {
	out := make([]int, len(items))
	for i, v := range items {
		out[i] = v.(int)
	}
	return out
}

func equalInts(a []int, b ...int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// listAPI lets both LinkedList variants share the functional tests — the
// repaired list must behave identically on the success paths.
type listAPI interface {
	Size() int
	IsEmpty() bool
	First() Item
	Last() Item
	At(i int) Item
	InsertFirst(v Item)
	InsertLast(v Item)
	InsertAt(i int, v Item)
	RemoveFirst() Item
	RemoveLast() Item
	RemoveAt(i int) Item
	RemoveOne(v Item) bool
	RemoveAll(v Item) int
	ReplaceAt(i int, v Item) Item
	ReplaceAll(oldV, newV Item) int
	Includes(v Item) bool
	IndexOf(v Item) int
	Clear()
	ToSlice() []Item
}

func runListSuite(t *testing.T, name string, mk func() listAPI) {
	t.Run(name+"/insert and order", func(t *testing.T) {
		l := mk()
		l.InsertLast(2)
		l.InsertFirst(1)
		l.InsertLast(3)
		if !equalInts(intsOf(l.ToSlice()), 1, 2, 3) {
			t.Fatalf("got %v", l.ToSlice())
		}
		if l.Size() != 3 || l.IsEmpty() {
			t.Fatalf("size bookkeeping wrong: %d", l.Size())
		}
	})
	t.Run(name+"/insert at", func(t *testing.T) {
		l := mk()
		l.InsertLast(1)
		l.InsertLast(3)
		l.InsertAt(1, 2)
		l.InsertAt(0, 0)
		if !equalInts(intsOf(l.ToSlice()), 0, 1, 2, 3) {
			t.Fatalf("got %v", l.ToSlice())
		}
	})
	t.Run(name+"/accessors", func(t *testing.T) {
		l := mk()
		l.InsertLast(10)
		l.InsertLast(20)
		l.InsertLast(30)
		if l.First() != 10 || l.Last() != 30 || l.At(1) != 20 {
			t.Fatal("accessors wrong")
		}
		if l.IndexOf(20) != 1 || !l.Includes(30) || l.Includes(99) {
			t.Fatal("search wrong")
		}
	})
	t.Run(name+"/remove", func(t *testing.T) {
		l := mk()
		for _, v := range []int{1, 2, 3, 4, 5} {
			l.InsertLast(v)
		}
		if l.RemoveFirst() != 1 || l.RemoveLast() != 5 || l.RemoveAt(1) != 3 {
			t.Fatal("removals returned wrong elements")
		}
		if !equalInts(intsOf(l.ToSlice()), 2, 4) {
			t.Fatalf("got %v", l.ToSlice())
		}
		if !l.RemoveOne(4) || l.RemoveOne(99) {
			t.Fatal("RemoveOne wrong")
		}
	})
	t.Run(name+"/remove all and replace", func(t *testing.T) {
		l := mk()
		for _, v := range []int{7, 1, 7, 2, 7} {
			l.InsertLast(v)
		}
		if n := l.RemoveAll(7); n != 3 {
			t.Fatalf("RemoveAll removed %d", n)
		}
		if !equalInts(intsOf(l.ToSlice()), 1, 2) {
			t.Fatalf("got %v", l.ToSlice())
		}
		l.InsertLast(1)
		if n := l.ReplaceAll(1, 9); n != 2 {
			t.Fatalf("ReplaceAll replaced %d", n)
		}
		if old := l.ReplaceAt(0, 8); old != 9 {
			t.Fatalf("ReplaceAt returned %v", old)
		}
		if !equalInts(intsOf(l.ToSlice()), 8, 2, 9) {
			t.Fatalf("got %v", l.ToSlice())
		}
	})
	t.Run(name+"/exceptions", func(t *testing.T) {
		l := mk()
		if exc := catchException(func() { l.First() }); exc == nil || exc.Kind != fault.NoSuchElement {
			t.Fatalf("First on empty: %+v", exc)
		}
		if exc := catchException(func() { l.RemoveFirst() }); exc == nil || exc.Kind != fault.NoSuchElement {
			t.Fatalf("RemoveFirst on empty: %+v", exc)
		}
		if exc := catchException(func() { l.At(0) }); exc == nil || exc.Kind != fault.IndexOutOfBounds {
			t.Fatalf("At(0) on empty: %+v", exc)
		}
		if exc := catchException(func() { l.InsertFirst(nil) }); exc == nil || exc.Kind != fault.IllegalElement {
			t.Fatalf("nil insert: %+v", exc)
		}
	})
	t.Run(name+"/clear", func(t *testing.T) {
		l := mk()
		l.InsertLast(1)
		l.Clear()
		if !l.IsEmpty() || l.Size() != 0 {
			t.Fatal("clear failed")
		}
	})
}

func TestLinkedListSuite(t *testing.T) {
	runListSuite(t, "LinkedList", func() listAPI { return NewLinkedList(nil) })
	runListSuite(t, "LinkedListFixed", func() listAPI { return NewLinkedListFixed(nil) })
}

func TestLinkedListScreener(t *testing.T) {
	evens := func(v Item) bool { n, ok := v.(int); return ok && n%2 == 0 }
	l := NewLinkedList(evens)
	l.InsertLast(2)
	if exc := catchException(func() { l.InsertLast(3) }); exc == nil || exc.Kind != fault.IllegalElement {
		t.Fatalf("screener must reject odd elements: %+v", exc)
	}
	if l.Size() == 1 {
		// Faithful idiom check: the original list already bumped Count
		// before screening, so the failed insert leaves Size at 2 — the
		// very inconsistency the paper detects.
		t.Fatal("original LinkedList is expected to corrupt Count on failed insert")
	}
	lf := NewLinkedListFixed(evens)
	lf.InsertLast(2)
	catchException(func() { lf.InsertLast(3) })
	if lf.Size() != 1 {
		t.Fatalf("repaired list must stay consistent, size=%d", lf.Size())
	}
}

func TestLinkedListNonAtomicVersionLeak(t *testing.T) {
	l := NewLinkedList(nil)
	v0 := l.Version
	catchException(func() { l.RemoveFirst() }) // organic NoSuchElement
	if l.Version == v0 {
		t.Fatal("original idiom bumps Version before the emptiness check")
	}
	lf := NewLinkedListFixed(nil)
	v0 = lf.Version
	catchException(func() { lf.RemoveFirst() })
	if lf.Version != v0 {
		t.Fatal("repaired list must not leak a version bump")
	}
}
