package collections

import (
	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// Dynarray is a growable array in the original library's style: explicit
// capacity management, element shifting on insert/remove, and mutators
// that update bookkeeping before all validation has finished.
type Dynarray struct {
	Data    []Item
	Count   int
	Version int
	Screen  Screener
}

// DefaultDynarrayCapacity is the initial capacity used when none is given.
const DefaultDynarrayCapacity = 8

// NewDynarray returns an empty array with the given initial capacity.
func NewDynarray(capacity int, screen Screener) *Dynarray {
	defer core.Enter(nil, "Dynarray.New")()
	if capacity <= 0 {
		capacity = DefaultDynarrayCapacity
	}
	return &Dynarray{Data: make([]Item, capacity), Screen: screen}
}

// Size returns the number of elements.
func (d *Dynarray) Size() int {
	defer enter(d, "Dynarray.Size")()
	return d.Count
}

// IsEmpty reports whether the array has no elements.
func (d *Dynarray) IsEmpty() bool {
	defer enter(d, "Dynarray.IsEmpty")()
	return d.Count == 0
}

// Capacity returns the current slot capacity.
func (d *Dynarray) Capacity() int {
	defer enter(d, "Dynarray.Capacity")()
	return len(d.Data)
}

// At returns the element at index i.
func (d *Dynarray) At(i int) Item {
	defer enter(d, "Dynarray.At")()
	d.checkIndex(i)
	return d.Data[i]
}

// SetAt replaces the element at index i; the version bump precedes the
// index check (original idiom).
func (d *Dynarray) SetAt(i int, v Item) {
	defer enter(d, "Dynarray.SetAt")()
	d.Version++
	d.checkIndex(i)
	d.screen(v)
	d.Data[i] = v
}

// Append adds v at the end.
func (d *Dynarray) Append(v Item) {
	defer enter(d, "Dynarray.Append")()
	d.Version++
	d.EnsureCapacity(d.Count + 1)
	d.screen(v)
	d.Data[d.Count] = v
	d.Count++
}

// InsertAt inserts v at index i, shifting later elements right. The shift
// happens before the element is screened, so an exception leaves the
// array half-shifted — the classic pure failure non-atomic method.
func (d *Dynarray) InsertAt(i int, v Item) {
	defer enter(d, "Dynarray.InsertAt")()
	d.Version++
	if i < 0 || i > d.Count {
		fault.Throw(fault.IndexOutOfBounds, "Dynarray.InsertAt",
			"index %d outside [0,%d]", i, d.Count)
	}
	d.EnsureCapacity(d.Count + 1)
	for j := d.Count; j > i; j-- {
		d.Data[j] = d.Data[j-1]
	}
	d.Count++
	d.screen(v)
	d.Data[i] = v
}

// RemoveAt removes and returns the element at index i, shifting later
// elements left.
func (d *Dynarray) RemoveAt(i int) Item {
	defer enter(d, "Dynarray.RemoveAt")()
	d.Version++
	d.checkIndex(i)
	v := d.Data[i]
	for j := i; j < d.Count-1; j++ {
		d.Data[j] = d.Data[j+1]
	}
	d.Count--
	d.Data[d.Count] = nil
	return v
}

// RemoveOne removes the first occurrence of v.
func (d *Dynarray) RemoveOne(v Item) bool {
	defer enter(d, "Dynarray.RemoveOne")()
	d.Version++
	idx := d.IndexOf(v)
	if idx < 0 {
		return false
	}
	d.RemoveAt(idx)
	return true
}

// EnsureCapacity grows the backing slots to at least n.
func (d *Dynarray) EnsureCapacity(n int) {
	defer enter(d, "Dynarray.EnsureCapacity")()
	if n <= len(d.Data) {
		return
	}
	grown := len(d.Data)*3/2 + 1
	if grown < n {
		grown = n
	}
	fresh := make([]Item, grown)
	copy(fresh, d.Data[:d.Count])
	d.Data = fresh
}

// Trim shrinks the capacity to the current count.
func (d *Dynarray) Trim() {
	defer enter(d, "Dynarray.Trim")()
	if len(d.Data) == d.Count {
		return
	}
	d.Version++
	fresh := make([]Item, d.Count)
	copy(fresh, d.Data[:d.Count])
	d.Data = fresh
}

// Includes reports whether v occurs in the array.
func (d *Dynarray) Includes(v Item) bool {
	defer enter(d, "Dynarray.Includes")()
	return d.IndexOf(v) >= 0
}

// IndexOf returns the index of the first occurrence of v, or -1.
func (d *Dynarray) IndexOf(v Item) int {
	defer enter(d, "Dynarray.IndexOf")()
	for i := 0; i < d.Count; i++ {
		if SameItem(d.Data[i], v) {
			return i
		}
	}
	return -1
}

// Clear removes all elements, keeping the capacity.
func (d *Dynarray) Clear() {
	defer enter(d, "Dynarray.Clear")()
	d.Version++
	for i := 0; i < d.Count; i++ {
		d.Data[i] = nil
	}
	d.Count = 0
}

// ToSlice copies the elements into a fresh slice.
func (d *Dynarray) ToSlice() []Item {
	defer enter(d, "Dynarray.ToSlice")()
	out := make([]Item, d.Count)
	copy(out, d.Data[:d.Count])
	return out
}

// checkIndex throws IndexOutOfBounds unless 0 <= i < Count.
func (d *Dynarray) checkIndex(i int) {
	defer enter(d, "Dynarray.checkIndex")()
	if i < 0 || i >= d.Count {
		fault.Throw(fault.IndexOutOfBounds, "Dynarray.checkIndex",
			"index %d outside [0,%d)", i, d.Count)
	}
}

// screen validates an element.
func (d *Dynarray) screen(v Item) {
	defer enter(d, "Dynarray.screen")()
	checkElement("Dynarray.screen", d.Screen, v)
}

// RegisterDynarray adds the Dynarray methods to a registry.
func RegisterDynarray(r *core.Registry) {
	r.Ctor("Dynarray", "Dynarray.New").
		Method("Dynarray", "Size").
		Method("Dynarray", "IsEmpty").
		Method("Dynarray", "Capacity").
		Method("Dynarray", "At", fault.IndexOutOfBounds).
		Method("Dynarray", "SetAt", fault.IndexOutOfBounds, fault.IllegalElement).
		Method("Dynarray", "Append", fault.IllegalElement).
		Method("Dynarray", "InsertAt", fault.IndexOutOfBounds, fault.IllegalElement).
		Method("Dynarray", "RemoveAt", fault.IndexOutOfBounds).
		Method("Dynarray", "RemoveOne").
		Method("Dynarray", "EnsureCapacity").
		Method("Dynarray", "Trim").
		Method("Dynarray", "Includes").
		Method("Dynarray", "IndexOf").
		Method("Dynarray", "Clear").
		Method("Dynarray", "ToSlice").
		Method("Dynarray", "checkIndex", fault.IndexOutOfBounds).
		Method("Dynarray", "screen", fault.IllegalElement)
}
