package collections

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"failatomic/internal/fault"
)

// Model-based differential tests: each container is driven by a random
// operation sequence mirrored against a trivially correct model built on
// Go's native types. Exceptions thrown by the container must coincide with
// the model's rejection of the operation.

func TestQuickLinkedListAgainstSliceModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := NewLinkedList(nil)
		var model []int
		for op := 0; op < 120; op++ {
			switch r.Intn(8) {
			case 0:
				v := r.Intn(50)
				l.InsertFirst(v)
				model = append([]int{v}, model...)
			case 1:
				v := r.Intn(50)
				l.InsertLast(v)
				model = append(model, v)
			case 2:
				if len(model) == 0 {
					continue
				}
				i := r.Intn(len(model))
				v := r.Intn(50)
				l.InsertAt(i, v)
				model = append(model[:i], append([]int{v}, model[i:]...)...)
			case 3:
				if len(model) == 0 {
					if exc := catchException(func() { l.RemoveFirst() }); exc == nil {
						return false
					}
					continue
				}
				if l.RemoveFirst() != model[0] {
					return false
				}
				model = model[1:]
			case 4:
				if len(model) == 0 {
					continue
				}
				i := r.Intn(len(model))
				if l.RemoveAt(i) != model[i] {
					return false
				}
				model = append(model[:i], model[i+1:]...)
			case 5:
				v := r.Intn(50)
				got := l.IndexOf(v)
				want := -1
				for i, mv := range model {
					if mv == v {
						want = i
						break
					}
				}
				if got != want {
					return false
				}
			case 6:
				if len(model) == 0 {
					continue
				}
				i := r.Intn(len(model))
				if l.At(i) != model[i] {
					return false
				}
			case 7:
				v := r.Intn(50)
				removed := l.RemoveOne(v)
				found := false
				for i, mv := range model {
					if mv == v {
						model = append(model[:i], model[i+1:]...)
						found = true
						break
					}
				}
				if removed != found {
					return false
				}
			}
			if l.Size() != len(model) {
				return false
			}
		}
		return equalInts(intsOf(l.ToSlice()), model...)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCircularListAgainstSliceModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := NewCircularList(nil)
		var model []int
		for op := 0; op < 100; op++ {
			switch r.Intn(6) {
			case 0:
				v := r.Intn(50)
				l.InsertFirst(v)
				model = append([]int{v}, model...)
			case 1:
				v := r.Intn(50)
				l.InsertLast(v)
				model = append(model, v)
			case 2:
				if len(model) == 0 {
					continue
				}
				if l.RemoveLast() != model[len(model)-1] {
					return false
				}
				model = model[:len(model)-1]
			case 3:
				if len(model) == 0 {
					continue
				}
				n := r.Intn(5) - 2
				l.Rotate(n)
				steps := ((n % len(model)) + len(model)) % len(model)
				model = append(model[steps:], model[:steps]...)
			case 4:
				if len(model) == 0 {
					continue
				}
				i := r.Intn(len(model))
				if l.At(i) != model[i] {
					return false
				}
			case 5:
				if len(model) == 0 {
					continue
				}
				i := r.Intn(len(model))
				if l.RemoveAt(i) != model[i] {
					return false
				}
				model = append(model[:i], model[i+1:]...)
			}
		}
		return equalInts(intsOf(l.ToSlice()), model...)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDynarrayAgainstSliceModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := NewDynarray(1, nil)
		var model []int
		for op := 0; op < 120; op++ {
			switch r.Intn(6) {
			case 0:
				v := r.Intn(50)
				d.Append(v)
				model = append(model, v)
			case 1:
				if len(model) == 0 {
					continue
				}
				i := r.Intn(len(model))
				v := r.Intn(50)
				d.InsertAt(i, v)
				model = append(model[:i], append([]int{v}, model[i:]...)...)
			case 2:
				if len(model) == 0 {
					continue
				}
				i := r.Intn(len(model))
				if d.RemoveAt(i) != model[i] {
					return false
				}
				model = append(model[:i], model[i+1:]...)
			case 3:
				if len(model) == 0 {
					continue
				}
				i := r.Intn(len(model))
				v := r.Intn(50)
				d.SetAt(i, v)
				model[i] = v
			case 4:
				if r.Intn(4) == 0 {
					d.Trim()
				}
			case 5:
				if len(model) == 0 {
					continue
				}
				i := r.Intn(len(model))
				if d.At(i) != model[i] {
					return false
				}
			}
			if d.Size() != len(model) {
				return false
			}
		}
		return equalInts(intsOf(d.ToSlice()), model...)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHashedMapAgainstBuiltin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewHashedMap(1)
		model := make(map[int]int)
		for op := 0; op < 150; op++ {
			k := r.Intn(40)
			switch r.Intn(4) {
			case 0, 1:
				v := r.Intn(100)
				var want Item
				if old, ok := model[k]; ok {
					want = old
				}
				if got := m.Put(k, v); got != want {
					return false
				}
				model[k] = v
			case 2:
				var want Item
				if old, ok := model[k]; ok {
					want = old
				}
				if got := m.Remove(k); got != want {
					return false
				}
				delete(model, k)
			case 3:
				var want Item
				if v, ok := model[k]; ok {
					want = v
				}
				if got := m.Get(k); got != want {
					return false
				}
				if m.ContainsKey(k) != (want != nil) {
					return false
				}
			}
			if m.Size() != len(model) {
				return false
			}
		}
		if len(m.Keys()) != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHashedSetAgainstBuiltin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewHashedSet(1, nil)
		model := make(map[int]bool)
		for op := 0; op < 150; op++ {
			v := r.Intn(40)
			switch r.Intn(3) {
			case 0:
				if s.Include(v) != !model[v] {
					return false
				}
				model[v] = true
			case 1:
				if s.Exclude(v) != model[v] {
					return false
				}
				delete(model, v)
			case 2:
				if s.Includes(v) != model[v] {
					return false
				}
			}
			if s.Size() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLinkedBufferFIFO(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewLinkedBuffer(nil)
		var model []int
		next := 0
		for op := 0; op < 200; op++ {
			if r.Intn(2) == 0 {
				b.Append(next)
				model = append(model, next)
				next++
			} else if len(model) > 0 {
				if b.Take() != model[0] {
					return false
				}
				model = model[1:]
			}
			if b.Size() != len(model) {
				return false
			}
			if len(model) > 0 && b.Peek() != model[0] {
				return false
			}
		}
		return equalInts(intsOf(b.ToSlice()), model...)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Parallel model tests for the mutex-guarded wrappers: workers operate on
// disjoint value ranges, so every response is predictable even though the
// interleaving is not — and the race detector checks the locking. (The
// deterministic interleaving semantics live in internal/concur; these
// tests pin thread-safety under real preemption.)

func TestQuickLockedLinkedListParallelDisjoint(t *testing.T) {
	l := NewLockedLinkedList(nil)
	const workers, iters = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := 1000 * (g + 1)
			for i := 0; i < iters; i++ {
				a, b := base+2*i, base+2*i+1
				l.InsertPair(a, b)
				if !l.Includes(a) {
					t.Errorf("worker %d: %d missing right after InsertPair", g, a)
					return
				}
				if !l.RemoveOne(b) {
					t.Errorf("worker %d: RemoveOne(%d) found nothing", g, b)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := l.Size(); got != workers*iters {
		t.Errorf("final size = %d, want %d", got, workers*iters)
	}
	for g := 0; g < workers; g++ {
		base := 1000 * (g + 1)
		for i := 0; i < iters; i++ {
			if a := base + 2*i; !l.Includes(a) {
				t.Fatalf("final list lost %d", a)
			}
		}
	}
}

func TestQuickLockedRBMapParallelDisjoint(t *testing.T) {
	m := NewLockedRBMap(nil)
	const workers, iters = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := 1000 * (g + 1)
			for i := 0; i < iters; i++ {
				k := base + i
				m.PutFresh(k, k*3)
				if got := m.Get(k); got != k*3 {
					t.Errorf("worker %d: Get(%d) = %v after PutFresh, want %d", g, k, got, k*3)
					return
				}
				// A stale PutFresh throws IllegalArgument — but the
				// replacement has already committed (committed-then-throw).
				exc := catchException(func() { m.PutFresh(k, k*7) })
				if exc == nil || exc.Kind != fault.IllegalArgument {
					t.Errorf("worker %d: stale PutFresh(%d) threw %v, want IllegalArgument", g, k, exc)
					return
				}
				if got := m.Get(k); got != k*7 {
					t.Errorf("worker %d: Get(%d) = %v, want the committed replacement %d", g, k, got, k*7)
					return
				}
				if i%2 == 0 {
					if got := m.Remove(k); got != k*7 {
						t.Errorf("worker %d: Remove(%d) = %v, want %d", g, k, got, k*7)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	want := workers * (iters / 2)
	if got := m.Size(); got != want {
		t.Errorf("final size = %d, want %d", got, want)
	}
	for g := 0; g < workers; g++ {
		base := 1000 * (g + 1)
		for i := 1; i < iters; i += 2 {
			if k := base + i; m.Get(k) != k*7 {
				t.Fatalf("final map lost key %d", k)
			}
		}
	}
}

func TestQuickIteratorsMatchToSlice(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := NewLinkedList(nil)
		tr := NewRBTree(nil)
		m := NewHashedMap(2)
		for i := 0; i < 1+r.Intn(20); i++ {
			v := r.Intn(100)
			l.InsertLast(v)
			tr.Insert(v)
			m.Put(v, v*2)
		}

		var fromIt []Item
		for it := NewLLIterator(l); it.HasNext(); {
			fromIt = append(fromIt, it.Next())
		}
		want := l.ToSlice()
		if len(fromIt) != len(want) {
			return false
		}
		for i := range want {
			if fromIt[i] != want[i] {
				return false
			}
		}

		var sorted []Item
		for it := NewRBIterator(tr); it.HasNext(); {
			sorted = append(sorted, it.Next())
		}
		wantSorted := tr.ToSlice()
		for i := range wantSorted {
			if sorted[i] != wantSorted[i] {
				return false
			}
		}

		seen := 0
		for it := NewHMIterator(m); it.HasNext(); {
			if m.Get(it.Next()) == nil {
				return false
			}
			seen++
		}
		return seen == m.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
