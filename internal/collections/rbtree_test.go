package collections

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"failatomic/internal/fault"
)

func TestRBTreeBasics(t *testing.T) {
	tr := NewRBTree(nil)
	vals := []int{5, 2, 8, 1, 9, 3, 7, 4, 6}
	for _, v := range vals {
		tr.Insert(v)
	}
	if tr.Size() != len(vals) {
		t.Fatalf("size %d", tr.Size())
	}
	if tr.Min() != 1 || tr.Max() != 9 {
		t.Fatal("min/max wrong")
	}
	got := intsOf(tr.ToSlice())
	if !sort.IntsAreSorted(got) || len(got) != len(vals) {
		t.Fatalf("not sorted: %v", got)
	}
	tr.CheckInvariants()
	if !tr.Includes(7) || tr.Includes(99) {
		t.Fatal("membership wrong")
	}
	if !tr.RemoveOne(5) || tr.RemoveOne(5) {
		t.Fatal("RemoveOne wrong")
	}
	tr.CheckInvariants()
}

func TestRBTreeDuplicates(t *testing.T) {
	tr := NewRBTree(nil)
	for i := 0; i < 4; i++ {
		tr.Insert(7)
	}
	tr.Insert(3)
	if tr.Occurrences(7) != 4 || tr.Occurrences(3) != 1 || tr.Occurrences(9) != 0 {
		t.Fatalf("occurrences wrong: %d", tr.Occurrences(7))
	}
	tr.RemoveOne(7)
	if tr.Occurrences(7) != 3 {
		t.Fatal("duplicate removal wrong")
	}
	tr.CheckInvariants()
}

func TestRBTreeEmpty(t *testing.T) {
	tr := NewRBTree(nil)
	if exc := catchException(func() { tr.Min() }); exc == nil || exc.Kind != fault.NoSuchElement {
		t.Fatal("Min on empty must throw")
	}
	if exc := catchException(func() { tr.Max() }); exc == nil || exc.Kind != fault.NoSuchElement {
		t.Fatal("Max on empty must throw")
	}
	if tr.RemoveOne(1) {
		t.Fatal("removing from empty must report false")
	}
	if tr.CheckInvariants() != 0 {
		t.Fatal("empty tree black height must be 0")
	}
}

func TestRBTreeIncomparable(t *testing.T) {
	tr := NewRBTree(nil)
	tr.Insert(1)
	if exc := catchException(func() { tr.Insert("x") }); exc == nil || exc.Kind != fault.IllegalArgument {
		t.Fatal("mixed types must throw from the comparator")
	}
}

func TestQuickRBTreeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := NewRBTree(nil)
		shadow := make(map[int]int)
		for op := 0; op < 200; op++ {
			v := r.Intn(50)
			if r.Intn(3) != 0 {
				tr.Insert(v)
				shadow[v]++
			} else if shadow[v] > 0 {
				if !tr.RemoveOne(v) {
					return false
				}
				shadow[v]--
			}
		}
		tr.CheckInvariants()
		want := 0
		for _, n := range shadow {
			want += n
		}
		if tr.Size() != want {
			return false
		}
		got := intsOf(tr.ToSlice())
		if !sort.IntsAreSorted(got) {
			return false
		}
		for v, n := range shadow {
			if tr.Occurrences(v) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeSequentialDeleteAll(t *testing.T) {
	tr := NewRBTree(nil)
	const n = 64
	for i := 0; i < n; i++ {
		tr.Insert(i)
	}
	for i := 0; i < n; i++ {
		if !tr.RemoveOne(i) {
			t.Fatalf("lost element %d", i)
		}
		tr.CheckInvariants()
	}
	if !tr.IsEmpty() || tr.Root != nil {
		t.Fatal("tree must be empty")
	}
}

func TestRBMapBasics(t *testing.T) {
	m := NewRBMap(nil)
	if m.Put("b", 2) != nil || m.Put("a", 1) != nil || m.Put("c", 3) != nil {
		t.Fatal("fresh puts must return nil")
	}
	if m.Put("b", 20) != 2 {
		t.Fatal("replace must return old value")
	}
	if m.Size() != 3 || m.Get("b") != 20 || m.Get("zz") != nil {
		t.Fatal("get wrong")
	}
	keys := m.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("keys not sorted: %v", keys)
	}
	vals := m.Values()
	if vals[0] != 1 || vals[1] != 20 || vals[2] != 3 {
		t.Fatalf("values wrong: %v", vals)
	}
	if m.MinKey() != "a" || m.MaxKey() != "c" {
		t.Fatal("min/max key wrong")
	}
	if m.Remove("a") != 1 || m.Remove("a") != nil || m.ContainsKey("a") {
		t.Fatal("Remove wrong")
	}
	if exc := catchException(func() { m.Put(nil, 1) }); exc == nil || exc.Kind != fault.IllegalElement {
		t.Fatal("nil key must throw")
	}
	m.Clear()
	if !m.IsEmpty() {
		t.Fatal("Clear failed")
	}
}

func TestQuickRBMapAgainstBuiltin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewRBMap(nil)
		shadow := make(map[int]int)
		for op := 0; op < 150; op++ {
			k := r.Intn(30)
			switch r.Intn(3) {
			case 0, 1:
				m.Put(k, op)
				shadow[k] = op
			case 2:
				m.Remove(k)
				delete(shadow, k)
			}
		}
		if m.Size() != len(shadow) {
			return false
		}
		for k, v := range shadow {
			if m.Get(k) != v {
				return false
			}
		}
		m.Tree.CheckInvariants()
		keys := m.Keys()
		for i := 1; i < len(keys); i++ {
			if keys[i-1].(int) >= keys[i].(int) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
