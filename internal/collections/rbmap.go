package collections

import (
	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// RBPair is the key/value element an RBMap stores in its tree.
type RBPair struct {
	Key   Item
	Value Item
}

// RBMap is a sorted map layered over an RBTree of *RBPair, exactly like
// the original library's RBMap over RBCell machinery. Its methods are
// mostly conditional failure non-atomic: they delegate the risky work to
// the tree.
type RBMap struct {
	Tree    *RBTree
	Version int
}

// NewRBMap returns an empty sorted map with keys ordered by cmp
// (DefaultCompare if nil).
func NewRBMap(cmp Comparator) *RBMap {
	defer core.Enter(nil, "RBMap.New")()
	if cmp == nil {
		cmp = DefaultCompare
	}
	pairCmp := func(a, b Item) int {
		return cmp(a.(*RBPair).Key, b.(*RBPair).Key)
	}
	return &RBMap{Tree: NewRBTree(pairCmp)}
}

// Size returns the number of pairs.
func (m *RBMap) Size() int {
	defer enter(m, "RBMap.Size")()
	return m.Tree.Size()
}

// IsEmpty reports whether the map has no pairs.
func (m *RBMap) IsEmpty() bool {
	defer enter(m, "RBMap.IsEmpty")()
	return m.Tree.IsEmpty()
}

// Put associates key with value and returns the previous value (nil if
// none). The version bump precedes key validation (original idiom).
func (m *RBMap) Put(key, value Item) Item {
	defer enter(m, "RBMap.Put")()
	m.Version++
	m.checkKey(key)
	probe := &RBPair{Key: key}
	if cell := m.Tree.FindCell(probe); cell != nil {
		pair := cell.Element.(*RBPair)
		old := pair.Value
		pair.Value = value
		return old
	}
	m.Tree.Insert(&RBPair{Key: key, Value: value})
	return nil
}

// Get returns the value for key, or nil.
func (m *RBMap) Get(key Item) Item {
	defer enter(m, "RBMap.Get")()
	m.checkKey(key)
	cell := m.Tree.FindCell(&RBPair{Key: key})
	if cell == nil {
		return nil
	}
	return cell.Element.(*RBPair).Value
}

// ContainsKey reports whether key is present.
func (m *RBMap) ContainsKey(key Item) bool {
	defer enter(m, "RBMap.ContainsKey")()
	m.checkKey(key)
	return m.Tree.FindCell(&RBPair{Key: key}) != nil
}

// Remove deletes key and returns its value (nil if absent).
func (m *RBMap) Remove(key Item) Item {
	defer enter(m, "RBMap.Remove")()
	m.Version++
	m.checkKey(key)
	cell := m.Tree.FindCell(&RBPair{Key: key})
	if cell == nil {
		return nil
	}
	v := cell.Element.(*RBPair).Value
	m.Tree.RemoveCell(cell)
	return v
}

// MinKey returns the smallest key.
func (m *RBMap) MinKey() Item {
	defer enter(m, "RBMap.MinKey")()
	return m.Tree.Min().(*RBPair).Key
}

// MaxKey returns the largest key.
func (m *RBMap) MaxKey() Item {
	defer enter(m, "RBMap.MaxKey")()
	return m.Tree.Max().(*RBPair).Key
}

// Clear removes all pairs.
func (m *RBMap) Clear() {
	defer enter(m, "RBMap.Clear")()
	m.Version++
	m.Tree.Clear()
}

// Keys returns the keys in sorted order.
func (m *RBMap) Keys() []Item {
	defer enter(m, "RBMap.Keys")()
	pairs := m.Tree.ToSlice()
	out := make([]Item, len(pairs))
	for i, p := range pairs {
		out[i] = p.(*RBPair).Key
	}
	return out
}

// Values returns the values in key order.
func (m *RBMap) Values() []Item {
	defer enter(m, "RBMap.Values")()
	pairs := m.Tree.ToSlice()
	out := make([]Item, len(pairs))
	for i, p := range pairs {
		out[i] = p.(*RBPair).Value
	}
	return out
}

// checkKey rejects nil keys.
func (m *RBMap) checkKey(key Item) {
	defer enter(m, "RBMap.checkKey")()
	if key == nil {
		fault.Throw(fault.IllegalElement, "RBMap.checkKey", "nil key")
	}
}

// RegisterRBMap adds the RBMap methods (and the tree it delegates to) to a
// registry.
func RegisterRBMap(r *core.Registry) {
	RegisterRBTree(r)
	r.Ctor("RBMap", "RBMap.New").
		Method("RBMap", "Size").
		Method("RBMap", "IsEmpty").
		Method("RBMap", "Put", fault.IllegalElement, fault.IllegalArgument).
		Method("RBMap", "Get", fault.IllegalElement).
		Method("RBMap", "ContainsKey", fault.IllegalElement).
		Method("RBMap", "Remove", fault.IllegalElement).
		Method("RBMap", "MinKey", fault.NoSuchElement).
		Method("RBMap", "MaxKey", fault.NoSuchElement).
		Method("RBMap", "Clear").
		Method("RBMap", "Keys").
		Method("RBMap", "Values").
		Method("RBMap", "checkKey", fault.IllegalElement)
}
