package collections

import (
	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// RBCell is one node of a red-black tree.
type RBCell struct {
	Element Item
	Red     bool
	Left    *RBCell
	Right   *RBCell
	Parent  *RBCell
}

// RBTree is a sorted bag implemented as a red-black tree (CLRS-style,
// parent pointers, nil leaves). The comparator may throw IllegalArgument
// for incomparable elements, and mutators bump Version first — both are
// the exception sources the detection phase exploits.
type RBTree struct {
	Root    *RBCell
	Count   int
	Version int
	Cmp     Comparator
}

// NewRBTree returns an empty tree ordered by cmp (DefaultCompare if nil).
func NewRBTree(cmp Comparator) *RBTree {
	defer core.Enter(nil, "RBTree.New")()
	if cmp == nil {
		cmp = DefaultCompare
	}
	return &RBTree{Cmp: cmp}
}

// Size returns the number of elements.
func (t *RBTree) Size() int {
	defer enter(t, "RBTree.Size")()
	return t.Count
}

// IsEmpty reports whether the tree has no elements.
func (t *RBTree) IsEmpty() bool {
	defer enter(t, "RBTree.IsEmpty")()
	return t.Count == 0
}

// Insert adds v (duplicates allowed, placed in the right subtree).
func (t *RBTree) Insert(v Item) {
	defer enter(t, "RBTree.Insert")()
	t.Version++
	t.Count++
	cell := &RBCell{Element: v, Red: true}
	var parent *RBCell
	cur := t.Root
	for cur != nil {
		parent = cur
		if t.compare(v, cur.Element) < 0 {
			cur = cur.Left
		} else {
			cur = cur.Right
		}
	}
	cell.Parent = parent
	switch {
	case parent == nil:
		t.Root = cell
	case t.compare(v, parent.Element) < 0:
		parent.Left = cell
	default:
		parent.Right = cell
	}
	t.insertFixup(cell)
}

// Includes reports whether an element comparing equal to v is present.
func (t *RBTree) Includes(v Item) bool {
	defer enter(t, "RBTree.Includes")()
	return t.FindCell(v) != nil
}

// Occurrences counts the elements comparing equal to v. Rotations can move
// duplicates to either side of an equal node, so the walk descends both
// subtrees once equality is seen.
func (t *RBTree) Occurrences(v Item) int {
	defer enter(t, "RBTree.Occurrences")()
	var count func(c *RBCell) int
	count = func(c *RBCell) int {
		if c == nil {
			return 0
		}
		cmp := t.compare(v, c.Element)
		if cmp < 0 {
			return count(c.Left)
		}
		if cmp > 0 {
			return count(c.Right)
		}
		return 1 + count(c.Left) + count(c.Right)
	}
	return count(t.Root)
}

// FindCell returns a cell whose element compares equal to v, or nil.
func (t *RBTree) FindCell(v Item) *RBCell {
	defer enter(t, "RBTree.FindCell")()
	cur := t.Root
	for cur != nil {
		c := t.compare(v, cur.Element)
		if c == 0 {
			return cur
		}
		if c < 0 {
			cur = cur.Left
		} else {
			cur = cur.Right
		}
	}
	return nil
}

// Min returns the smallest element.
func (t *RBTree) Min() Item {
	defer enter(t, "RBTree.Min")()
	if t.Root == nil {
		fault.Throw(fault.NoSuchElement, "RBTree.Min", "empty tree")
	}
	return t.minimumFrom(t.Root).Element
}

// Max returns the largest element.
func (t *RBTree) Max() Item {
	defer enter(t, "RBTree.Max")()
	if t.Root == nil {
		fault.Throw(fault.NoSuchElement, "RBTree.Max", "empty tree")
	}
	cur := t.Root
	for cur.Right != nil {
		cur = cur.Right
	}
	return cur.Element
}

// RemoveOne removes one element comparing equal to v and reports whether
// the tree changed.
func (t *RBTree) RemoveOne(v Item) bool {
	defer enter(t, "RBTree.RemoveOne")()
	t.Version++
	cell := t.FindCell(v)
	if cell == nil {
		return false
	}
	t.RemoveCell(cell)
	return true
}

// RemoveCell unlinks a cell from the tree (CLRS RB-DELETE).
func (t *RBTree) RemoveCell(z *RBCell) {
	defer enter(t, "RBTree.RemoveCell")()
	t.Count--
	y := z
	yWasRed := y.Red
	var x, xParent *RBCell
	switch {
	case z.Left == nil:
		x = z.Right
		xParent = z.Parent
		t.transplant(z, z.Right)
	case z.Right == nil:
		x = z.Left
		xParent = z.Parent
		t.transplant(z, z.Left)
	default:
		y = t.minimumFrom(z.Right)
		yWasRed = y.Red
		x = y.Right
		if y.Parent == z {
			xParent = y
		} else {
			xParent = y.Parent
			t.transplant(y, y.Right)
			y.Right = z.Right
			y.Right.Parent = y
		}
		t.transplant(z, y)
		y.Left = z.Left
		y.Left.Parent = y
		y.Red = z.Red
	}
	if !yWasRed {
		t.deleteFixup(x, xParent)
	}
}

// Clear removes all elements.
func (t *RBTree) Clear() {
	defer enter(t, "RBTree.Clear")()
	t.Version++
	t.Root = nil
	t.Count = 0
}

// ToSlice returns the elements in sorted (in-order) sequence.
func (t *RBTree) ToSlice() []Item {
	defer enter(t, "RBTree.ToSlice")()
	out := make([]Item, 0, t.Count)
	var walk func(c *RBCell)
	walk = func(c *RBCell) {
		if c == nil {
			return
		}
		walk(c.Left)
		out = append(out, c.Element)
		walk(c.Right)
	}
	walk(t.Root)
	return out
}

// compare applies the tree's comparator (which may throw).
func (t *RBTree) compare(a, b Item) int {
	defer enter(t, "RBTree.compare")()
	return t.Cmp(a, b)
}

// insertFixup restores the red-black invariants after an insertion.
func (t *RBTree) insertFixup(z *RBCell) {
	defer enter(t, "RBTree.insertFixup")()
	for z.Parent != nil && z.Parent.Red {
		grand := z.Parent.Parent
		if z.Parent == grand.Left {
			uncle := grand.Right
			if uncle != nil && uncle.Red {
				z.Parent.Red = false
				uncle.Red = false
				grand.Red = true
				z = grand
				continue
			}
			if z == z.Parent.Right {
				z = z.Parent
				t.leftRotate(z)
			}
			z.Parent.Red = false
			grand.Red = true
			t.rightRotate(grand)
		} else {
			uncle := grand.Left
			if uncle != nil && uncle.Red {
				z.Parent.Red = false
				uncle.Red = false
				grand.Red = true
				z = grand
				continue
			}
			if z == z.Parent.Left {
				z = z.Parent
				t.rightRotate(z)
			}
			z.Parent.Red = false
			grand.Red = true
			t.leftRotate(grand)
		}
	}
	t.Root.Red = false
}

// deleteFixup restores the invariants after a deletion; x may be nil, so
// its parent is tracked explicitly.
func (t *RBTree) deleteFixup(x, parent *RBCell) {
	defer enter(t, "RBTree.deleteFixup")()
	for x != t.Root && !isRed(x) {
		if parent == nil {
			break
		}
		if x == parent.Left {
			sib := parent.Right
			if isRed(sib) {
				sib.Red = false
				parent.Red = true
				t.leftRotate(parent)
				sib = parent.Right
			}
			if sib == nil {
				x = parent
				parent = parent.Parent
				continue
			}
			if !isRed(sib.Left) && !isRed(sib.Right) {
				sib.Red = true
				x = parent
				parent = parent.Parent
				continue
			}
			if !isRed(sib.Right) {
				if sib.Left != nil {
					sib.Left.Red = false
				}
				sib.Red = true
				t.rightRotate(sib)
				sib = parent.Right
			}
			sib.Red = parent.Red
			parent.Red = false
			if sib.Right != nil {
				sib.Right.Red = false
			}
			t.leftRotate(parent)
			x = t.Root
			parent = nil
		} else {
			sib := parent.Left
			if isRed(sib) {
				sib.Red = false
				parent.Red = true
				t.rightRotate(parent)
				sib = parent.Left
			}
			if sib == nil {
				x = parent
				parent = parent.Parent
				continue
			}
			if !isRed(sib.Left) && !isRed(sib.Right) {
				sib.Red = true
				x = parent
				parent = parent.Parent
				continue
			}
			if !isRed(sib.Left) {
				if sib.Right != nil {
					sib.Right.Red = false
				}
				sib.Red = true
				t.leftRotate(sib)
				sib = parent.Left
			}
			sib.Red = parent.Red
			parent.Red = false
			if sib.Left != nil {
				sib.Left.Red = false
			}
			t.rightRotate(parent)
			x = t.Root
			parent = nil
		}
	}
	if x != nil {
		x.Red = false
	}
}

// leftRotate rotates the subtree rooted at x to the left.
func (t *RBTree) leftRotate(x *RBCell) {
	defer enter(t, "RBTree.leftRotate")()
	y := x.Right
	x.Right = y.Left
	if y.Left != nil {
		y.Left.Parent = x
	}
	y.Parent = x.Parent
	switch {
	case x.Parent == nil:
		t.Root = y
	case x == x.Parent.Left:
		x.Parent.Left = y
	default:
		x.Parent.Right = y
	}
	y.Left = x
	x.Parent = y
}

// rightRotate rotates the subtree rooted at x to the right.
func (t *RBTree) rightRotate(x *RBCell) {
	defer enter(t, "RBTree.rightRotate")()
	y := x.Left
	x.Left = y.Right
	if y.Right != nil {
		y.Right.Parent = x
	}
	y.Parent = x.Parent
	switch {
	case x.Parent == nil:
		t.Root = y
	case x == x.Parent.Right:
		x.Parent.Right = y
	default:
		x.Parent.Left = y
	}
	y.Right = x
	x.Parent = y
}

// transplant replaces the subtree rooted at u with the one rooted at v.
func (t *RBTree) transplant(u, v *RBCell) {
	defer enter(t, "RBTree.transplant")()
	switch {
	case u.Parent == nil:
		t.Root = v
	case u == u.Parent.Left:
		u.Parent.Left = v
	default:
		u.Parent.Right = v
	}
	if v != nil {
		v.Parent = u.Parent
	}
}

// minimumFrom returns the leftmost cell under c.
func (t *RBTree) minimumFrom(c *RBCell) *RBCell {
	defer enter(t, "RBTree.minimumFrom")()
	for c.Left != nil {
		c = c.Left
	}
	return c
}

func isRed(c *RBCell) bool { return c != nil && c.Red }

// CheckInvariants verifies the red-black properties and sortedness; it
// returns the black height or throws IllegalState. Used by tests and by
// the RBTree application workload as a consistency probe.
func (t *RBTree) CheckInvariants() int {
	defer enter(t, "RBTree.CheckInvariants")()
	if t.Root == nil {
		return 0
	}
	if t.Root.Red {
		fault.Throw(fault.IllegalState, "RBTree.CheckInvariants", "red root")
	}
	var check func(c *RBCell) int
	check = func(c *RBCell) int {
		if c == nil {
			return 1
		}
		if c.Red && (isRed(c.Left) || isRed(c.Right)) {
			fault.Throw(fault.IllegalState, "RBTree.CheckInvariants", "red-red violation")
		}
		lh := check(c.Left)
		rh := check(c.Right)
		if lh != rh {
			fault.Throw(fault.IllegalState, "RBTree.CheckInvariants",
				"black height mismatch %d != %d", lh, rh)
		}
		if c.Left != nil && t.Cmp(c.Left.Element, c.Element) > 0 {
			fault.Throw(fault.IllegalState, "RBTree.CheckInvariants", "unsorted left child")
		}
		if c.Right != nil && t.Cmp(c.Element, c.Right.Element) > 0 {
			fault.Throw(fault.IllegalState, "RBTree.CheckInvariants", "unsorted right child")
		}
		if !c.Red {
			return lh + 1
		}
		return lh
	}
	return check(t.Root)
}

// RegisterRBTree adds the RBTree methods to a registry.
func RegisterRBTree(r *core.Registry) {
	r.Ctor("RBTree", "RBTree.New").
		Method("RBTree", "Size").
		Method("RBTree", "IsEmpty").
		Method("RBTree", "Insert", fault.IllegalArgument).
		Method("RBTree", "Includes", fault.IllegalArgument).
		Method("RBTree", "Occurrences", fault.IllegalArgument).
		Method("RBTree", "FindCell", fault.IllegalArgument).
		Method("RBTree", "Min", fault.NoSuchElement).
		Method("RBTree", "Max", fault.NoSuchElement).
		Method("RBTree", "RemoveOne", fault.IllegalArgument).
		Method("RBTree", "RemoveCell").
		Method("RBTree", "Clear").
		Method("RBTree", "ToSlice").
		Method("RBTree", "compare", fault.IllegalArgument).
		Method("RBTree", "insertFixup").
		Method("RBTree", "deleteFixup").
		Method("RBTree", "leftRotate").
		Method("RBTree", "rightRotate").
		Method("RBTree", "transplant").
		Method("RBTree", "minimumFrom").
		Method("RBTree", "CheckInvariants", fault.IllegalState)
}
