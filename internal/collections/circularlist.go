package collections

import (
	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// CLCell is one cell of a doubly linked circular list. Cells carry their
// own splicing operations, as in the original library, so the cell class
// contributes instrumented methods of its own.
type CLCell struct {
	Element Item
	Prev    *CLCell
	Next    *CLCell
}

// NewCLCell returns a self-linked cell.
func NewCLCell(v Item) *CLCell {
	defer core.Enter(nil, "CLCell.New")()
	c := &CLCell{Element: v}
	c.Prev = c
	c.Next = c
	return c
}

// AddNext splices a new cell holding v directly after c.
func (c *CLCell) AddNext(v Item) *CLCell {
	defer enter(c, "CLCell.AddNext")()
	fresh := &CLCell{Element: v, Prev: c, Next: c.Next}
	c.Next.Prev = fresh
	c.Next = fresh
	return fresh
}

// AddPrev splices a new cell holding v directly before c.
func (c *CLCell) AddPrev(v Item) *CLCell {
	defer enter(c, "CLCell.AddPrev")()
	fresh := &CLCell{Element: v, Prev: c.Prev, Next: c}
	c.Prev.Next = fresh
	c.Prev = fresh
	return fresh
}

// Unlink removes c from its ring.
func (c *CLCell) Unlink() {
	defer enter(c, "CLCell.Unlink")()
	c.Prev.Next = c.Next
	c.Next.Prev = c.Prev
	c.Prev = c
	c.Next = c
}

// CircularList is a screened, versioned circular doubly linked list.
type CircularList struct {
	Head    *CLCell
	Count   int
	Version int
	Screen  Screener
}

// NewCircularList returns an empty circular list.
func NewCircularList(screen Screener) *CircularList {
	defer core.Enter(nil, "CircularList.New")()
	return &CircularList{Screen: screen}
}

// Size returns the number of elements.
func (l *CircularList) Size() int {
	defer enter(l, "CircularList.Size")()
	return l.Count
}

// IsEmpty reports whether the list has no elements.
func (l *CircularList) IsEmpty() bool {
	defer enter(l, "CircularList.IsEmpty")()
	return l.Count == 0
}

// First returns the head element.
func (l *CircularList) First() Item {
	defer enter(l, "CircularList.First")()
	if l.Head == nil {
		fault.Throw(fault.NoSuchElement, "CircularList.First", "empty list")
	}
	return l.Head.Element
}

// Last returns the element before the head.
func (l *CircularList) Last() Item {
	defer enter(l, "CircularList.Last")()
	if l.Head == nil {
		fault.Throw(fault.NoSuchElement, "CircularList.Last", "empty list")
	}
	return l.Head.Prev.Element
}

// At returns the element at index i (walking from the head).
func (l *CircularList) At(i int) Item {
	defer enter(l, "CircularList.At")()
	l.checkIndex(i)
	return l.cellAt(i).Element
}

// InsertFirst prepends v; the version bump precedes screening (original
// idiom, failure non-atomic).
func (l *CircularList) InsertFirst(v Item) {
	defer enter(l, "CircularList.InsertFirst")()
	l.Version++
	l.screen(v)
	if l.Head == nil {
		l.Head = NewCLCell(v)
	} else {
		l.Head = l.Head.AddPrev(v)
	}
	l.Count++
}

// InsertLast appends v before the head.
func (l *CircularList) InsertLast(v Item) {
	defer enter(l, "CircularList.InsertLast")()
	l.Version++
	l.Count++
	l.screen(v)
	if l.Head == nil {
		l.Head = NewCLCell(v)
		return
	}
	l.Head.AddPrev(v)
}

// InsertAt inserts v at index i.
func (l *CircularList) InsertAt(i int, v Item) {
	defer enter(l, "CircularList.InsertAt")()
	l.Version++
	if i < 0 || i > l.Count {
		fault.Throw(fault.IndexOutOfBounds, "CircularList.InsertAt",
			"index %d outside [0,%d]", i, l.Count)
	}
	l.screen(v)
	switch {
	case l.Head == nil:
		l.Head = NewCLCell(v)
	case i == 0:
		l.Head = l.Head.AddPrev(v)
	case i == l.Count:
		l.Head.AddPrev(v)
	default:
		l.cellAt(i).AddPrev(v)
	}
	l.Count++
}

// RemoveFirst removes and returns the head element; the version is bumped
// before the emptiness check.
func (l *CircularList) RemoveFirst() Item {
	defer enter(l, "CircularList.RemoveFirst")()
	l.Version++
	if l.Head == nil {
		fault.Throw(fault.NoSuchElement, "CircularList.RemoveFirst", "empty list")
	}
	v := l.Head.Element
	l.unlinkCell(l.Head)
	return v
}

// RemoveLast removes and returns the tail element.
func (l *CircularList) RemoveLast() Item {
	defer enter(l, "CircularList.RemoveLast")()
	l.Version++
	if l.Head == nil {
		fault.Throw(fault.NoSuchElement, "CircularList.RemoveLast", "empty list")
	}
	v := l.Head.Prev.Element
	l.unlinkCell(l.Head.Prev)
	return v
}

// RemoveAt removes and returns the element at index i.
func (l *CircularList) RemoveAt(i int) Item {
	defer enter(l, "CircularList.RemoveAt")()
	l.Version++
	l.checkIndex(i)
	cell := l.cellAt(i)
	v := cell.Element
	l.unlinkCell(cell)
	return v
}

// ReplaceAt replaces the element at index i.
func (l *CircularList) ReplaceAt(i int, v Item) Item {
	defer enter(l, "CircularList.ReplaceAt")()
	l.Version++
	l.checkIndex(i)
	l.screen(v)
	cell := l.cellAt(i)
	old := cell.Element
	cell.Element = v
	return old
}

// Rotate advances the head by n positions (n may be negative).
func (l *CircularList) Rotate(n int) {
	defer enter(l, "CircularList.Rotate")()
	if l.Head == nil {
		return
	}
	l.Version++
	steps := n % l.Count
	if steps < 0 {
		steps += l.Count
	}
	for ; steps > 0; steps-- {
		l.Head = l.Head.Next
	}
}

// Includes reports whether v occurs in the list.
func (l *CircularList) Includes(v Item) bool {
	defer enter(l, "CircularList.Includes")()
	return l.IndexOf(v) >= 0
}

// IndexOf returns the index of the first occurrence of v, or -1.
func (l *CircularList) IndexOf(v Item) int {
	defer enter(l, "CircularList.IndexOf")()
	if l.Head == nil {
		return -1
	}
	cur := l.Head
	for i := 0; i < l.Count; i++ {
		if SameItem(cur.Element, v) {
			return i
		}
		cur = cur.Next
	}
	return -1
}

// Clear removes all elements.
func (l *CircularList) Clear() {
	defer enter(l, "CircularList.Clear")()
	l.Version++
	l.Head = nil
	l.Count = 0
}

// ToSlice copies the elements into a fresh slice in ring order.
func (l *CircularList) ToSlice() []Item {
	defer enter(l, "CircularList.ToSlice")()
	out := make([]Item, 0, l.Count)
	if l.Head == nil {
		return out
	}
	cur := l.Head
	for i := 0; i < l.Count; i++ {
		out = append(out, cur.Element)
		cur = cur.Next
	}
	return out
}

// checkIndex throws IndexOutOfBounds unless 0 <= i < Count.
func (l *CircularList) checkIndex(i int) {
	defer enter(l, "CircularList.checkIndex")()
	if i < 0 || i >= l.Count {
		fault.Throw(fault.IndexOutOfBounds, "CircularList.checkIndex",
			"index %d outside [0,%d)", i, l.Count)
	}
}

// screen validates an element.
func (l *CircularList) screen(v Item) {
	defer enter(l, "CircularList.screen")()
	checkElement("CircularList.screen", l.Screen, v)
}

// unlinkCell removes cell from the ring and fixes Head/Count.
func (l *CircularList) unlinkCell(cell *CLCell) {
	defer enter(l, "CircularList.unlinkCell")()
	if l.Count == 1 {
		l.Head = nil
		l.Count = 0
		return
	}
	if cell == l.Head {
		l.Head = cell.Next
	}
	cell.Unlink()
	l.Count--
}

// cellAt returns the cell at index i; the index must already be checked.
//
//failatomic:ignore hot navigation helper, no state
func (l *CircularList) cellAt(i int) *CLCell {
	cur := l.Head
	for ; i > 0; i-- {
		cur = cur.Next
	}
	return cur
}

// RegisterCircularList adds the circular list's classes to a registry.
func RegisterCircularList(r *core.Registry) {
	r.Ctor("CLCell", "CLCell.New").
		Method("CLCell", "AddNext").
		Method("CLCell", "AddPrev").
		Method("CLCell", "Unlink").
		Ctor("CircularList", "CircularList.New").
		Method("CircularList", "Size").
		Method("CircularList", "IsEmpty").
		Method("CircularList", "First", fault.NoSuchElement).
		Method("CircularList", "Last", fault.NoSuchElement).
		Method("CircularList", "At", fault.IndexOutOfBounds).
		Method("CircularList", "InsertFirst", fault.IllegalElement).
		Method("CircularList", "InsertLast", fault.IllegalElement).
		Method("CircularList", "InsertAt", fault.IndexOutOfBounds, fault.IllegalElement).
		Method("CircularList", "RemoveFirst", fault.NoSuchElement).
		Method("CircularList", "RemoveLast", fault.NoSuchElement).
		Method("CircularList", "RemoveAt", fault.IndexOutOfBounds).
		Method("CircularList", "ReplaceAt", fault.IndexOutOfBounds, fault.IllegalElement).
		Method("CircularList", "Rotate").
		Method("CircularList", "Includes").
		Method("CircularList", "IndexOf").
		Method("CircularList", "Clear").
		Method("CircularList", "ToSlice").
		Method("CircularList", "checkIndex", fault.IndexOutOfBounds).
		Method("CircularList", "screen", fault.IllegalElement).
		Method("CircularList", "unlinkCell")
}
