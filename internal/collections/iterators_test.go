package collections

import (
	"testing"

	"failatomic/internal/fault"
)

func TestLLIteratorWalkAndReset(t *testing.T) {
	l := NewLinkedList(nil)
	for _, v := range []int{1, 2, 3} {
		l.InsertLast(v)
	}
	it := NewLLIterator(l)
	var got []int
	for it.HasNext() {
		got = append(got, it.Next().(int))
	}
	if !equalInts(got, 1, 2, 3) {
		t.Fatalf("walk = %v", got)
	}
	if it.Index != 3 {
		t.Fatalf("index = %d", it.Index)
	}
	if exc := catchException(func() { it.Next() }); exc == nil || exc.Kind != fault.NoSuchElement {
		t.Fatal("exhausted Next must throw")
	}
	it.Reset()
	if !it.HasNext() || it.Next() != 1 {
		t.Fatal("reset failed")
	}
}

func TestLLIteratorEmptyList(t *testing.T) {
	it := NewLLIterator(NewLinkedList(nil))
	if it.HasNext() {
		t.Fatal("empty list iterator must be exhausted")
	}
	if exc := catchException(func() { it.Next() }); exc == nil {
		t.Fatal("Next on empty must throw")
	}
}

func TestCLIteratorExactlyOneLap(t *testing.T) {
	l := NewCircularList(nil)
	for _, v := range []int{1, 2, 3} {
		l.InsertLast(v)
	}
	it := NewCLIterator(l)
	var got []int
	for it.HasNext() {
		got = append(got, it.Next().(int))
	}
	if !equalInts(got, 1, 2, 3) {
		t.Fatalf("one lap = %v (ring must not loop forever)", got)
	}
	if exc := catchException(func() { it.Next() }); exc == nil {
		t.Fatal("second lap must throw")
	}
}

func TestDynIterator(t *testing.T) {
	d := NewDynarray(0, nil)
	d.Append(10)
	d.Append(20)
	it := NewDynIterator(d)
	if it.Next() != 10 || it.Next() != 20 || it.HasNext() {
		t.Fatal("dyn iterator walk wrong")
	}
	if exc := catchException(func() { it.Next() }); exc == nil {
		t.Fatal("exhausted Next must throw")
	}
}

func TestHMIteratorVisitsEveryKeyOnce(t *testing.T) {
	m := NewHashedMap(2)
	for i := 0; i < 20; i++ {
		m.Put(i, i)
	}
	seen := make(map[int]bool)
	for it := NewHMIterator(m); it.HasNext(); {
		k := it.Next().(int)
		if seen[k] {
			t.Fatalf("key %d visited twice", k)
		}
		seen[k] = true
	}
	if len(seen) != 20 {
		t.Fatalf("visited %d of 20 keys", len(seen))
	}
}

func TestHMIteratorEmptyMap(t *testing.T) {
	it := NewHMIterator(NewHashedMap(4))
	if it.HasNext() {
		t.Fatal("empty map iterator must be exhausted")
	}
}

func TestHSIteratorVisitsEveryElementOnce(t *testing.T) {
	s := NewHashedSet(2, nil)
	for i := 0; i < 15; i++ {
		s.Include(i)
	}
	seen := make(map[int]bool)
	for it := NewHSIterator(s); it.HasNext(); {
		v := it.Next().(int)
		if seen[v] {
			t.Fatalf("element %d visited twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 15 {
		t.Fatalf("visited %d of 15", len(seen))
	}
}

func TestLLMapIterator(t *testing.T) {
	m := NewLLMap()
	m.Put("a", 1)
	m.Put("b", 2)
	it := NewLLMapIterator(m)
	// Newest first: b then a.
	if it.Next() != "b" || it.Next() != "a" || it.HasNext() {
		t.Fatal("llmap iterator order wrong")
	}
	if exc := catchException(func() { it.Next() }); exc == nil {
		t.Fatal("exhausted Next must throw")
	}
}

func TestRBIteratorSortedOrder(t *testing.T) {
	tr := NewRBTree(nil)
	for _, v := range []int{5, 1, 9, 3, 7} {
		tr.Insert(v)
	}
	it := NewRBIterator(tr)
	var got []int
	for it.HasNext() {
		got = append(got, it.Next().(int))
	}
	if !equalInts(got, 1, 3, 5, 7, 9) {
		t.Fatalf("sorted walk = %v", got)
	}
	if exc := catchException(func() { it.Next() }); exc == nil {
		t.Fatal("exhausted Next must throw")
	}
	empty := NewRBIterator(NewRBTree(nil))
	if empty.HasNext() {
		t.Fatal("empty tree iterator must be exhausted")
	}
}
