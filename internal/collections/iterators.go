package collections

import (
	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// The enumeration classes mirror the original library's
// CollectionEnumeration implementations: one small cursor class per
// container. They are written in the check-then-advance style, so they
// are failure atomic — in the paper's evaluation these are the atomic
// ballast classes that dilute the non-atomic fraction.

// LLIterator enumerates a LinkedList.
type LLIterator struct {
	List  *LinkedList
	Cell  *LLCell
	Index int
}

// NewLLIterator returns an iterator positioned before the first element.
func NewLLIterator(l *LinkedList) *LLIterator {
	defer core.Enter(nil, "LLIterator.New")()
	return &LLIterator{List: l, Cell: l.Head}
}

// HasNext reports whether Next will succeed.
func (it *LLIterator) HasNext() bool {
	defer enter(it, "LLIterator.HasNext")()
	return it.Cell != nil
}

// Next returns the next element; it throws NoSuchElement when exhausted.
func (it *LLIterator) Next() Item {
	defer enter(it, "LLIterator.Next")()
	if it.Cell == nil {
		fault.Throw(fault.NoSuchElement, "LLIterator.Next", "exhausted")
	}
	v := it.Cell.Element
	it.Cell = it.Cell.Next
	it.Index++
	return v
}

// Reset rewinds to the first element.
func (it *LLIterator) Reset() {
	defer enter(it, "LLIterator.Reset")()
	it.Cell = it.List.Head
	it.Index = 0
}

// RegisterLLIterator adds the LinkedList iterator class to a registry.
func RegisterLLIterator(r *core.Registry) {
	r.Ctor("LLIterator", "LLIterator.New").
		Method("LLIterator", "HasNext").
		Method("LLIterator", "Next", fault.NoSuchElement).
		Method("LLIterator", "Reset")
}

// CLIterator enumerates a CircularList ring exactly once.
type CLIterator struct {
	List *CircularList
	Cell *CLCell
	Seen int
}

// NewCLIterator returns an iterator positioned before the head.
func NewCLIterator(l *CircularList) *CLIterator {
	defer core.Enter(nil, "CLIterator.New")()
	return &CLIterator{List: l, Cell: l.Head}
}

// HasNext reports whether Next will succeed.
func (it *CLIterator) HasNext() bool {
	defer enter(it, "CLIterator.HasNext")()
	return it.Seen < it.List.Count
}

// Next returns the next element; it throws NoSuchElement after one lap.
func (it *CLIterator) Next() Item {
	defer enter(it, "CLIterator.Next")()
	if it.Seen >= it.List.Count || it.Cell == nil {
		fault.Throw(fault.NoSuchElement, "CLIterator.Next", "exhausted")
	}
	v := it.Cell.Element
	it.Cell = it.Cell.Next
	it.Seen++
	return v
}

// RegisterCLIterator adds the CircularList iterator class to a registry.
func RegisterCLIterator(r *core.Registry) {
	r.Ctor("CLIterator", "CLIterator.New").
		Method("CLIterator", "HasNext").
		Method("CLIterator", "Next", fault.NoSuchElement)
}

// DynIterator enumerates a Dynarray.
type DynIterator struct {
	Array *Dynarray
	Index int
}

// NewDynIterator returns an iterator positioned before index 0.
func NewDynIterator(d *Dynarray) *DynIterator {
	defer core.Enter(nil, "DynIterator.New")()
	return &DynIterator{Array: d}
}

// HasNext reports whether Next will succeed.
func (it *DynIterator) HasNext() bool {
	defer enter(it, "DynIterator.HasNext")()
	return it.Index < it.Array.Count
}

// Next returns the next element; it throws NoSuchElement when exhausted.
func (it *DynIterator) Next() Item {
	defer enter(it, "DynIterator.Next")()
	if it.Index >= it.Array.Count {
		fault.Throw(fault.NoSuchElement, "DynIterator.Next", "exhausted")
	}
	v := it.Array.Data[it.Index]
	it.Index++
	return v
}

// RegisterDynIterator adds the Dynarray iterator class to a registry.
func RegisterDynIterator(r *core.Registry) {
	r.Ctor("DynIterator", "DynIterator.New").
		Method("DynIterator", "HasNext").
		Method("DynIterator", "Next", fault.NoSuchElement)
}

// HMIterator enumerates a HashedMap's keys in bucket order.
type HMIterator struct {
	Map    *HashedMap
	Bucket int
	Entry  *HMEntry
}

// NewHMIterator returns an iterator positioned before the first entry.
func NewHMIterator(m *HashedMap) *HMIterator {
	defer core.Enter(nil, "HMIterator.New")()
	it := &HMIterator{Map: m}
	it.Entry, it.Bucket = it.scanFrom(0)
	return it
}

// HasNext reports whether Next will succeed.
func (it *HMIterator) HasNext() bool {
	defer enter(it, "HMIterator.HasNext")()
	return it.Entry != nil
}

// Next returns the next key; it throws NoSuchElement when exhausted. The
// successor is computed before any state commits.
func (it *HMIterator) Next() Item {
	defer enter(it, "HMIterator.Next")()
	if it.Entry == nil {
		fault.Throw(fault.NoSuchElement, "HMIterator.Next", "exhausted")
	}
	k := it.Entry.Key
	nextEntry, nextBucket := it.Entry.Next, it.Bucket
	if nextEntry == nil {
		nextEntry, nextBucket = it.scanFrom(it.Bucket + 1)
	}
	it.Entry, it.Bucket = nextEntry, nextBucket
	return k
}

// scanFrom returns the first entry at or after bucket index from
// (read-only).
func (it *HMIterator) scanFrom(from int) (*HMEntry, int) {
	defer enter(it, "HMIterator.scanFrom")()
	for b := from; b < len(it.Map.Buckets); b++ {
		if it.Map.Buckets[b] != nil {
			return it.Map.Buckets[b], b
		}
	}
	return nil, len(it.Map.Buckets)
}

// RegisterHMIterator adds the HashedMap iterator class to a registry.
func RegisterHMIterator(r *core.Registry) {
	r.Ctor("HMIterator", "HMIterator.New").
		Method("HMIterator", "HasNext").
		Method("HMIterator", "Next", fault.NoSuchElement).
		Method("HMIterator", "scanFrom")
}

// HSIterator enumerates a HashedSet in bucket order.
type HSIterator struct {
	Set    *HashedSet
	Bucket int
	Entry  *HSEntry
}

// NewHSIterator returns an iterator positioned before the first element.
func NewHSIterator(s *HashedSet) *HSIterator {
	defer core.Enter(nil, "HSIterator.New")()
	it := &HSIterator{Set: s}
	it.Entry, it.Bucket = it.scanFrom(0)
	return it
}

// HasNext reports whether Next will succeed.
func (it *HSIterator) HasNext() bool {
	defer enter(it, "HSIterator.HasNext")()
	return it.Entry != nil
}

// Next returns the next element; it throws NoSuchElement when exhausted.
// The successor is computed before any state commits.
func (it *HSIterator) Next() Item {
	defer enter(it, "HSIterator.Next")()
	if it.Entry == nil {
		fault.Throw(fault.NoSuchElement, "HSIterator.Next", "exhausted")
	}
	v := it.Entry.Element
	nextEntry, nextBucket := it.Entry.Next, it.Bucket
	if nextEntry == nil {
		nextEntry, nextBucket = it.scanFrom(it.Bucket + 1)
	}
	it.Entry, it.Bucket = nextEntry, nextBucket
	return v
}

// scanFrom returns the first entry at or after bucket index from
// (read-only).
func (it *HSIterator) scanFrom(from int) (*HSEntry, int) {
	defer enter(it, "HSIterator.scanFrom")()
	for b := from; b < len(it.Set.Buckets); b++ {
		if it.Set.Buckets[b] != nil {
			return it.Set.Buckets[b], b
		}
	}
	return nil, len(it.Set.Buckets)
}

// RegisterHSIterator adds the HashedSet iterator class to a registry.
func RegisterHSIterator(r *core.Registry) {
	r.Ctor("HSIterator", "HSIterator.New").
		Method("HSIterator", "HasNext").
		Method("HSIterator", "Next", fault.NoSuchElement).
		Method("HSIterator", "scanFrom")
}

// LLMapIterator enumerates an LLMap's pairs, newest first.
type LLMapIterator struct {
	Map  *LLMap
	Pair *LLPair
}

// NewLLMapIterator returns an iterator positioned before the first pair.
func NewLLMapIterator(m *LLMap) *LLMapIterator {
	defer core.Enter(nil, "LLMapIterator.New")()
	return &LLMapIterator{Map: m, Pair: m.Head}
}

// HasNext reports whether Next will succeed.
func (it *LLMapIterator) HasNext() bool {
	defer enter(it, "LLMapIterator.HasNext")()
	return it.Pair != nil
}

// Next returns the next key; it throws NoSuchElement when exhausted.
func (it *LLMapIterator) Next() Item {
	defer enter(it, "LLMapIterator.Next")()
	if it.Pair == nil {
		fault.Throw(fault.NoSuchElement, "LLMapIterator.Next", "exhausted")
	}
	k := it.Pair.Key
	it.Pair = it.Pair.Next
	return k
}

// RegisterLLMapIterator adds the LLMap iterator class to a registry.
func RegisterLLMapIterator(r *core.Registry) {
	r.Ctor("LLMapIterator", "LLMapIterator.New").
		Method("LLMapIterator", "HasNext").
		Method("LLMapIterator", "Next", fault.NoSuchElement)
}

// RBIterator enumerates an RBTree in sorted order using an explicit
// ancestor stack.
type RBIterator struct {
	Tree  *RBTree
	Stack []*RBCell
}

// NewRBIterator returns an iterator positioned before the smallest
// element.
func NewRBIterator(t *RBTree) *RBIterator {
	defer core.Enter(nil, "RBIterator.New")()
	it := &RBIterator{Tree: t}
	it.Stack = it.leftSpine(nil, t.Root)
	return it
}

// HasNext reports whether Next will succeed.
func (it *RBIterator) HasNext() bool {
	defer enter(it, "RBIterator.HasNext")()
	return len(it.Stack) > 0
}

// Next returns the next element in order; it throws NoSuchElement when
// exhausted. The successor stack is computed before the commit.
func (it *RBIterator) Next() Item {
	defer enter(it, "RBIterator.Next")()
	if len(it.Stack) == 0 {
		fault.Throw(fault.NoSuchElement, "RBIterator.Next", "exhausted")
	}
	cell := it.Stack[len(it.Stack)-1]
	it.Stack = it.leftSpine(it.Stack[:len(it.Stack)-1:len(it.Stack)-1], cell.Right)
	return cell.Element
}

// leftSpine appends the left spine under c to base and returns the new
// stack (read-only with respect to the iterator).
func (it *RBIterator) leftSpine(base []*RBCell, c *RBCell) []*RBCell {
	defer enter(it, "RBIterator.leftSpine")()
	out := base
	for ; c != nil; c = c.Left {
		out = append(out, c)
	}
	return out
}

// RegisterRBIterator adds the RBTree iterator class to a registry.
func RegisterRBIterator(r *core.Registry) {
	r.Ctor("RBIterator", "RBIterator.New").
		Method("RBIterator", "HasNext").
		Method("RBIterator", "Next", fault.NoSuchElement).
		Method("RBIterator", "leftSpine")
}
