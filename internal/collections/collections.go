// Package collections is a Go port of the early-1990s-style Java
// collections library used in the paper's Java evaluation (Doug Lea's
// `collections` package): CircularList, Dynarray, HashedMap, HashedSet,
// LLMap, LinkedBuffer, LinkedList, RBMap and RBTree.
//
// The structures are written deliberately in the original idiom — element
// screening that throws, version counters bumped at the top of mutators,
// count-then-mutate sequences, incremental link rewiring — because the
// evaluation depends on the *naturally occurring* failure non-atomicity of
// this style. Every method carries the woven core.Enter prologue, exactly
// what the source weaver produces from the clean sources.
//
// All container state uses exported fields so the masking phase can
// checkpoint and roll back instances.
package collections

import (
	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// Item is the element type of all collections (the Java Object analog).
type Item = any

// Screener decides whether a collection may include an element
// (Lea's `Predicate` screeners).
type Screener func(Item) bool

// Comparator orders two items; it must return <0, 0, >0. Comparators may
// throw IllegalArgument for incomparable items.
type Comparator func(a, b Item) int

// DefaultCompare orders ints and strings and throws IllegalArgument for
// anything else or for mixed types — a realistic organic exception source
// inside tree operations.
func DefaultCompare(a, b Item) int {
	switch av := a.(type) {
	case int:
		bv, ok := b.(int)
		if !ok {
			fault.Throw(fault.IllegalArgument, "collections.DefaultCompare",
				"cannot compare int with %T", b)
		}
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		default:
			return 0
		}
	case string:
		bv, ok := b.(string)
		if !ok {
			fault.Throw(fault.IllegalArgument, "collections.DefaultCompare",
				"cannot compare string with %T", b)
		}
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		default:
			return 0
		}
	default:
		fault.Throw(fault.IllegalArgument, "collections.DefaultCompare",
			"uncomparable type %T", a)
		return 0
	}
}

// HashOf hashes an item for the hashed containers; nil and unhashable
// items throw IllegalElement, mirroring Java's NullPointerException on
// null keys.
func HashOf(v Item) uint32 {
	switch x := v.(type) {
	case nil:
		fault.Throw(fault.IllegalElement, "collections.HashOf", "nil element")
		return 0
	case int:
		h := uint32(x) * 2654435761
		return h ^ h>>16
	case string:
		var h uint32 = 2166136261
		for i := 0; i < len(x); i++ {
			h ^= uint32(x[i])
			h *= 16777619
		}
		return h
	case bool:
		if x {
			return 1231
		}
		return 1237
	default:
		fault.Throw(fault.IllegalElement, "collections.HashOf", "unhashable type %T", x)
		return 0
	}
}

// SameItem is the equality used by the containers (Java equals semantics
// for the supported scalar element types).
func SameItem(a, b Item) bool { return a == b }

// checkElement implements the screening idiom shared by all containers:
// nil elements and screener-rejected elements throw IllegalElement.
func checkElement(method string, screener Screener, v Item) {
	if v == nil {
		fault.Throw(fault.IllegalElement, method, "nil element")
	}
	if screener != nil && !screener(v) {
		fault.Throw(fault.IllegalElement, method, "element %v rejected by screener", v)
	}
}

// enter is a package-local alias for the woven prologue, shortening the
// instrumentation lines the weaver emits.
func enter(recv any, name string, extra ...any) func() {
	return core.Enter(recv, name, extra...)
}
