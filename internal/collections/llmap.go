package collections

import (
	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// LLPair is one key/value cell of an LLMap association list.
type LLPair struct {
	Key   Item
	Value Item
	Next  *LLPair
}

// LLMap is a linked (association-list) map: lookups walk the chain, new
// pairs are prepended. Mutators follow the version-first idiom.
type LLMap struct {
	Head    *LLPair
	Count   int
	Version int
}

// NewLLMap returns an empty association-list map.
func NewLLMap() *LLMap {
	defer core.Enter(nil, "LLMap.New")()
	return &LLMap{}
}

// Size returns the number of pairs.
func (m *LLMap) Size() int {
	defer enter(m, "LLMap.Size")()
	return m.Count
}

// IsEmpty reports whether the map has no pairs.
func (m *LLMap) IsEmpty() bool {
	defer enter(m, "LLMap.IsEmpty")()
	return m.Count == 0
}

// Put associates key with value, returning the previous value (nil if
// none). Count is bumped before the value is screened.
func (m *LLMap) Put(key, value Item) Item {
	defer enter(m, "LLMap.Put")()
	m.Version++
	m.checkKey(key)
	pair := m.find(key)
	if pair != nil {
		old := pair.Value
		m.screenValue(value)
		pair.Value = value
		return old
	}
	m.Count++
	m.screenValue(value)
	m.Head = &LLPair{Key: key, Value: value, Next: m.Head}
	return nil
}

// Get returns the value for key, or nil.
func (m *LLMap) Get(key Item) Item {
	defer enter(m, "LLMap.Get")()
	pair := m.find(key)
	if pair == nil {
		return nil
	}
	return pair.Value
}

// ContainsKey reports whether key is present.
func (m *LLMap) ContainsKey(key Item) bool {
	defer enter(m, "LLMap.ContainsKey")()
	return m.find(key) != nil
}

// ContainsValue reports whether any pair holds value.
func (m *LLMap) ContainsValue(value Item) bool {
	defer enter(m, "LLMap.ContainsValue")()
	for p := m.Head; p != nil; p = p.Next {
		if SameItem(p.Value, value) {
			return true
		}
	}
	return false
}

// Remove deletes key and returns its value (nil if absent).
func (m *LLMap) Remove(key Item) Item {
	defer enter(m, "LLMap.Remove")()
	m.Version++
	m.checkKey(key)
	if m.Head == nil {
		return nil
	}
	if SameItem(m.Head.Key, key) {
		v := m.Head.Value
		m.Head = m.Head.Next
		m.Count--
		return v
	}
	for p := m.Head; p.Next != nil; p = p.Next {
		if SameItem(p.Next.Key, key) {
			v := p.Next.Value
			p.Next = p.Next.Next
			m.Count--
			return v
		}
	}
	return nil
}

// PutAll inserts every pair of keys/values; partial progress on exception
// is inherent.
func (m *LLMap) PutAll(keys, values []Item) {
	defer enter(m, "LLMap.PutAll")()
	if len(keys) != len(values) {
		fault.Throw(fault.IllegalArgument, "LLMap.PutAll",
			"length mismatch %d != %d", len(keys), len(values))
	}
	for i := range keys {
		m.Put(keys[i], values[i])
	}
}

// Clear removes all pairs.
func (m *LLMap) Clear() {
	defer enter(m, "LLMap.Clear")()
	m.Version++
	m.Head = nil
	m.Count = 0
}

// Keys returns the keys, newest first.
func (m *LLMap) Keys() []Item {
	defer enter(m, "LLMap.Keys")()
	out := make([]Item, 0, m.Count)
	for p := m.Head; p != nil; p = p.Next {
		out = append(out, p.Key)
	}
	return out
}

// Values returns the values, newest first.
func (m *LLMap) Values() []Item {
	defer enter(m, "LLMap.Values")()
	out := make([]Item, 0, m.Count)
	for p := m.Head; p != nil; p = p.Next {
		out = append(out, p.Value)
	}
	return out
}

// find returns the pair holding key, or nil.
func (m *LLMap) find(key Item) *LLPair {
	defer enter(m, "LLMap.find")()
	for p := m.Head; p != nil; p = p.Next {
		if SameItem(p.Key, key) {
			return p
		}
	}
	return nil
}

// checkKey rejects nil keys.
func (m *LLMap) checkKey(key Item) {
	defer enter(m, "LLMap.checkKey")()
	if key == nil {
		fault.Throw(fault.IllegalElement, "LLMap.checkKey", "nil key")
	}
}

// screenValue rejects nil values.
func (m *LLMap) screenValue(v Item) {
	defer enter(m, "LLMap.screenValue")()
	if v == nil {
		fault.Throw(fault.IllegalElement, "LLMap.screenValue", "nil value")
	}
}

// RegisterLLMap adds the LLMap methods to a registry.
func RegisterLLMap(r *core.Registry) {
	r.Ctor("LLMap", "LLMap.New").
		Method("LLMap", "Size").
		Method("LLMap", "IsEmpty").
		Method("LLMap", "Put", fault.IllegalElement).
		Method("LLMap", "Get").
		Method("LLMap", "ContainsKey").
		Method("LLMap", "ContainsValue").
		Method("LLMap", "Remove", fault.IllegalElement).
		Method("LLMap", "PutAll", fault.IllegalArgument, fault.IllegalElement).
		Method("LLMap", "Clear").
		Method("LLMap", "Keys").
		Method("LLMap", "Values").
		Method("LLMap", "find").
		Method("LLMap", "checkKey", fault.IllegalElement).
		Method("LLMap", "screenValue", fault.IllegalElement)
}
