package collections

import (
	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// LinkedListFixed is the repaired LinkedList of the paper's §6.1
// experiment: the same API after applying the "trivial modifications"
// suggested by the detection report — validate and screen *before*
// mutating, bump Version and Count last, stage link rewiring in locals.
// Only the inherently partial-progress methods (RemoveAll, ReplaceAll)
// remain failure non-atomic; those are the ones left for the automatic
// masking phase.
type LinkedListFixed struct {
	Head    *LLCell
	Count   int
	Version int
	Screen  Screener
}

// NewLinkedListFixed returns an empty repaired list.
func NewLinkedListFixed(screen Screener) *LinkedListFixed {
	defer core.Enter(nil, "LinkedListFixed.New")()
	return &LinkedListFixed{Screen: screen}
}

// Size returns the number of elements.
func (l *LinkedListFixed) Size() int {
	defer enter(l, "LinkedListFixed.Size")()
	return l.Count
}

// IsEmpty reports whether the list has no elements.
func (l *LinkedListFixed) IsEmpty() bool {
	defer enter(l, "LinkedListFixed.IsEmpty")()
	return l.Count == 0
}

// First returns the first element; it throws NoSuchElement when empty.
func (l *LinkedListFixed) First() Item {
	defer enter(l, "LinkedListFixed.First")()
	if l.Head == nil {
		fault.Throw(fault.NoSuchElement, "LinkedListFixed.First", "empty list")
	}
	return l.Head.Element
}

// Last returns the last element; it throws NoSuchElement when empty.
func (l *LinkedListFixed) Last() Item {
	defer enter(l, "LinkedListFixed.Last")()
	cell := l.Head
	if cell == nil {
		fault.Throw(fault.NoSuchElement, "LinkedListFixed.Last", "empty list")
	}
	for cell.Next != nil {
		cell = cell.Next
	}
	return cell.Element
}

// At returns the element at index i.
func (l *LinkedListFixed) At(i int) Item {
	defer enter(l, "LinkedListFixed.At")()
	l.checkIndex(i)
	return l.cellAt(i).Element
}

// InsertFirst prepends v; all validation precedes any mutation.
func (l *LinkedListFixed) InsertFirst(v Item) {
	defer enter(l, "LinkedListFixed.InsertFirst")()
	l.screen(v)
	l.Head = &LLCell{Element: v, Next: l.Head}
	l.Count++
	l.Version++
}

// InsertLast appends v; the tail walk happens before any mutation.
func (l *LinkedListFixed) InsertLast(v Item) {
	defer enter(l, "LinkedListFixed.InsertLast")()
	l.screen(v)
	cell := &LLCell{Element: v}
	if l.Head == nil {
		l.Head = cell
	} else {
		cur := l.Head
		for cur.Next != nil {
			cur = cur.Next
		}
		cur.Next = cell
	}
	l.Count++
	l.Version++
}

// InsertAt inserts v at index i; validation first, single-point commit.
func (l *LinkedListFixed) InsertAt(i int, v Item) {
	defer enter(l, "LinkedListFixed.InsertAt")()
	l.checkIndexInclusive(i)
	l.screen(v)
	if i == 0 {
		l.Head = &LLCell{Element: v, Next: l.Head}
	} else {
		prev := l.cellAt(i - 1)
		prev.Next = &LLCell{Element: v, Next: prev.Next}
	}
	l.Count++
	l.Version++
}

// RemoveFirst removes and returns the first element.
func (l *LinkedListFixed) RemoveFirst() Item {
	defer enter(l, "LinkedListFixed.RemoveFirst")()
	if l.Head == nil {
		fault.Throw(fault.NoSuchElement, "LinkedListFixed.RemoveFirst", "empty list")
	}
	v := l.Head.Element
	l.Head = l.Head.Next
	l.Count--
	l.Version++
	return v
}

// RemoveLast removes and returns the last element.
func (l *LinkedListFixed) RemoveLast() Item {
	defer enter(l, "LinkedListFixed.RemoveLast")()
	if l.Head == nil {
		fault.Throw(fault.NoSuchElement, "LinkedListFixed.RemoveLast", "empty list")
	}
	if l.Head.Next == nil {
		v := l.Head.Element
		l.Head = nil
		l.Count--
		l.Version++
		return v
	}
	cur := l.Head
	for cur.Next.Next != nil {
		cur = cur.Next
	}
	v := cur.Next.Element
	cur.Next = nil
	l.Count--
	l.Version++
	return v
}

// RemoveAt removes and returns the element at index i.
func (l *LinkedListFixed) RemoveAt(i int) Item {
	defer enter(l, "LinkedListFixed.RemoveAt")()
	l.checkIndex(i)
	var v Item
	if i == 0 {
		v = l.Head.Element
		l.Head = l.Head.Next
	} else {
		prev := l.cellAt(i - 1)
		v = prev.Next.Element
		prev.Next = prev.Next.Next
	}
	l.Count--
	l.Version++
	return v
}

// RemoveOne removes the first occurrence of v.
func (l *LinkedListFixed) RemoveOne(v Item) bool {
	defer enter(l, "LinkedListFixed.RemoveOne")()
	l.screen(v)
	if l.Head == nil {
		return false
	}
	if SameItem(l.Head.Element, v) {
		l.Head = l.Head.Next
		l.Count--
		l.Version++
		return true
	}
	for cur := l.Head; cur.Next != nil; cur = cur.Next {
		if SameItem(cur.Next.Element, v) {
			cur.Next = cur.Next.Next
			l.Count--
			l.Version++
			return true
		}
	}
	return false
}

// RemoveAll removes every occurrence of v. The incremental unlinking walk
// cannot be repaired by statement reordering; it stays failure non-atomic
// and is the masking phase's job.
func (l *LinkedListFixed) RemoveAll(v Item) int {
	defer enter(l, "LinkedListFixed.RemoveAll")()
	l.screen(v)
	removed := 0
	for l.Head != nil && SameItem(l.Head.Element, v) {
		l.Head = l.Head.Next
		l.Count--
		l.Version++
		removed++
		l.screen(v)
	}
	if l.Head == nil {
		return removed
	}
	for cur := l.Head; cur.Next != nil; {
		if SameItem(cur.Next.Element, v) {
			cur.Next = cur.Next.Next
			l.Count--
			l.Version++
			removed++
			l.screen(v)
		} else {
			cur = cur.Next
		}
	}
	return removed
}

// ReplaceAt replaces the element at index i and returns the old element.
func (l *LinkedListFixed) ReplaceAt(i int, v Item) Item {
	defer enter(l, "LinkedListFixed.ReplaceAt")()
	l.checkIndex(i)
	l.screen(v)
	cell := l.cellAt(i)
	old := cell.Element
	cell.Element = v
	l.Version++
	return old
}

// ReplaceAll replaces every occurrence of oldV with newV. Like RemoveAll,
// the element-by-element walk remains failure non-atomic.
func (l *LinkedListFixed) ReplaceAll(oldV, newV Item) int {
	defer enter(l, "LinkedListFixed.ReplaceAll")()
	l.screen(newV)
	replaced := 0
	for cur := l.Head; cur != nil; cur = cur.Next {
		if SameItem(cur.Element, oldV) {
			cur.Element = newV
			l.Version++
			replaced++
			l.screen(newV)
		}
	}
	return replaced
}

// Includes reports whether v occurs in the list.
func (l *LinkedListFixed) Includes(v Item) bool {
	defer enter(l, "LinkedListFixed.Includes")()
	return l.IndexOf(v) >= 0
}

// IndexOf returns the index of the first occurrence of v, or -1.
func (l *LinkedListFixed) IndexOf(v Item) int {
	defer enter(l, "LinkedListFixed.IndexOf")()
	i := 0
	for cur := l.Head; cur != nil; cur = cur.Next {
		if SameItem(cur.Element, v) {
			return i
		}
		i++
	}
	return -1
}

// Clear removes all elements.
func (l *LinkedListFixed) Clear() {
	defer enter(l, "LinkedListFixed.Clear")()
	l.Head = nil
	l.Count = 0
	l.Version++
}

// ToSlice copies the elements into a fresh slice.
func (l *LinkedListFixed) ToSlice() []Item {
	defer enter(l, "LinkedListFixed.ToSlice")()
	out := make([]Item, 0, l.Count)
	for cur := l.Head; cur != nil; cur = cur.Next {
		out = append(out, cur.Element)
	}
	return out
}

// checkIndex throws IndexOutOfBounds unless 0 <= i < Count.
func (l *LinkedListFixed) checkIndex(i int) {
	defer enter(l, "LinkedListFixed.checkIndex")()
	if i < 0 || i >= l.Count {
		fault.Throw(fault.IndexOutOfBounds, "LinkedListFixed.checkIndex",
			"index %d outside [0,%d)", i, l.Count)
	}
}

// checkIndexInclusive allows i == Count (insertion position).
func (l *LinkedListFixed) checkIndexInclusive(i int) {
	defer enter(l, "LinkedListFixed.checkIndexInclusive")()
	if i < 0 || i > l.Count {
		fault.Throw(fault.IndexOutOfBounds, "LinkedListFixed.checkIndexInclusive",
			"index %d outside [0,%d]", i, l.Count)
	}
}

// screen validates an element against the list's screener.
func (l *LinkedListFixed) screen(v Item) {
	defer enter(l, "LinkedListFixed.screen")()
	checkElement("LinkedListFixed.screen", l.Screen, v)
}

// cellAt returns the cell at index i; the index must already be checked.
//
//failatomic:ignore hot navigation helper, no state
func (l *LinkedListFixed) cellAt(i int) *LLCell {
	cur := l.Head
	for ; i > 0; i-- {
		cur = cur.Next
	}
	return cur
}

// RegisterLinkedListFixed adds the repaired list's methods to a registry.
func RegisterLinkedListFixed(r *core.Registry) {
	r.Ctor("LinkedListFixed", "LinkedListFixed.New").
		Method("LinkedListFixed", "Size").
		Method("LinkedListFixed", "IsEmpty").
		Method("LinkedListFixed", "First", fault.NoSuchElement).
		Method("LinkedListFixed", "Last", fault.NoSuchElement).
		Method("LinkedListFixed", "At", fault.IndexOutOfBounds).
		Method("LinkedListFixed", "InsertFirst", fault.IllegalElement).
		Method("LinkedListFixed", "InsertLast", fault.IllegalElement).
		Method("LinkedListFixed", "InsertAt", fault.IndexOutOfBounds, fault.IllegalElement).
		Method("LinkedListFixed", "RemoveFirst", fault.NoSuchElement).
		Method("LinkedListFixed", "RemoveLast", fault.NoSuchElement).
		Method("LinkedListFixed", "RemoveAt", fault.IndexOutOfBounds).
		Method("LinkedListFixed", "RemoveOne", fault.IllegalElement).
		Method("LinkedListFixed", "RemoveAll", fault.IllegalElement).
		Method("LinkedListFixed", "ReplaceAt", fault.IndexOutOfBounds, fault.IllegalElement).
		Method("LinkedListFixed", "ReplaceAll", fault.IllegalElement).
		Method("LinkedListFixed", "Includes").
		Method("LinkedListFixed", "IndexOf").
		Method("LinkedListFixed", "Clear").
		Method("LinkedListFixed", "ToSlice").
		Method("LinkedListFixed", "checkIndex", fault.IndexOutOfBounds).
		Method("LinkedListFixed", "checkIndexInclusive", fault.IndexOutOfBounds).
		Method("LinkedListFixed", "screen", fault.IllegalElement)
}
