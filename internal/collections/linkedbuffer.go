package collections

import (
	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// LBChunk is one fixed-capacity chunk of a LinkedBuffer.
type LBChunk struct {
	Data []Item
	Used int
	Next *LBChunk
}

// LBChunkCapacity is the per-chunk slot count.
const LBChunkCapacity = 4

// NewLBChunk returns an empty chunk.
func NewLBChunk() *LBChunk {
	defer core.Enter(nil, "LBChunk.New")()
	return &LBChunk{Data: make([]Item, LBChunkCapacity)}
}

// Full reports whether the chunk has no free slot.
func (c *LBChunk) Full() bool {
	defer enter(c, "LBChunk.Full")()
	return c.Used == len(c.Data)
}

// Push appends v to the chunk; the caller must ensure space.
func (c *LBChunk) Push(v Item) {
	defer enter(c, "LBChunk.Push")()
	if c.Used == len(c.Data) {
		fault.Throw(fault.CapacityExceeded, "LBChunk.Push", "chunk full")
	}
	c.Data[c.Used] = v
	c.Used++
}

// LinkedBuffer is a FIFO buffer of linked fixed-size chunks, in the
// original library's style: Count is maintained eagerly at the buffer
// level while the chunk chain is updated step by step.
type LinkedBuffer struct {
	Head    *LBChunk
	Tail    *LBChunk
	ReadPos int
	Count   int
	Version int
	Screen  Screener
}

// NewLinkedBuffer returns an empty buffer.
func NewLinkedBuffer(screen Screener) *LinkedBuffer {
	defer core.Enter(nil, "LinkedBuffer.New")()
	return &LinkedBuffer{Screen: screen}
}

// Size returns the number of buffered elements.
func (b *LinkedBuffer) Size() int {
	defer enter(b, "LinkedBuffer.Size")()
	return b.Count
}

// IsEmpty reports whether the buffer has no elements.
func (b *LinkedBuffer) IsEmpty() bool {
	defer enter(b, "LinkedBuffer.IsEmpty")()
	return b.Count == 0
}

// Append adds v at the tail. Count is bumped and a fresh chunk may be
// linked before the element is screened (original idiom).
func (b *LinkedBuffer) Append(v Item) {
	defer enter(b, "LinkedBuffer.Append")()
	b.Version++
	b.Count++
	if b.Tail == nil {
		b.Head = NewLBChunk()
		b.Tail = b.Head
	} else if b.Tail.Full() {
		b.Tail.Next = NewLBChunk()
		b.Tail = b.Tail.Next
	}
	b.screen(v)
	b.Tail.Push(v)
}

// AppendAll appends every element of vals; partial progress on exception
// is inherent.
func (b *LinkedBuffer) AppendAll(vals []Item) {
	defer enter(b, "LinkedBuffer.AppendAll")()
	for _, v := range vals {
		b.Append(v)
	}
}

// Peek returns the oldest element without removing it.
func (b *LinkedBuffer) Peek() Item {
	defer enter(b, "LinkedBuffer.Peek")()
	if b.Count == 0 {
		fault.Throw(fault.NoSuchElement, "LinkedBuffer.Peek", "empty buffer")
	}
	return b.Head.Data[b.ReadPos]
}

// Take removes and returns the oldest element. The version bump precedes
// the emptiness check.
func (b *LinkedBuffer) Take() Item {
	defer enter(b, "LinkedBuffer.Take")()
	b.Version++
	if b.Count == 0 {
		fault.Throw(fault.NoSuchElement, "LinkedBuffer.Take", "empty buffer")
	}
	v := b.Head.Data[b.ReadPos]
	b.Head.Data[b.ReadPos] = nil
	b.ReadPos++
	b.Count--
	if b.ReadPos == b.Head.Used {
		b.Head = b.Head.Next
		b.ReadPos = 0
		if b.Head == nil {
			b.Tail = nil
		}
	}
	return v
}

// TakeAll drains the buffer into a slice, element by element.
func (b *LinkedBuffer) TakeAll() []Item {
	defer enter(b, "LinkedBuffer.TakeAll")()
	out := make([]Item, 0, b.Count)
	for b.Count > 0 {
		out = append(out, b.Take())
	}
	return out
}

// Clear drops all chunks.
func (b *LinkedBuffer) Clear() {
	defer enter(b, "LinkedBuffer.Clear")()
	b.Version++
	b.Head = nil
	b.Tail = nil
	b.ReadPos = 0
	b.Count = 0
}

// ToSlice copies the buffered elements, oldest first, without draining.
func (b *LinkedBuffer) ToSlice() []Item {
	defer enter(b, "LinkedBuffer.ToSlice")()
	out := make([]Item, 0, b.Count)
	pos := b.ReadPos
	for c := b.Head; c != nil; c = c.Next {
		for ; pos < c.Used; pos++ {
			out = append(out, c.Data[pos])
		}
		pos = 0
	}
	return out
}

// screen validates an element.
func (b *LinkedBuffer) screen(v Item) {
	defer enter(b, "LinkedBuffer.screen")()
	checkElement("LinkedBuffer.screen", b.Screen, v)
}

// RegisterLinkedBuffer adds the buffer classes to a registry.
func RegisterLinkedBuffer(r *core.Registry) {
	r.Ctor("LBChunk", "LBChunk.New").
		Method("LBChunk", "Full").
		Method("LBChunk", "Push", fault.CapacityExceeded).
		Ctor("LinkedBuffer", "LinkedBuffer.New").
		Method("LinkedBuffer", "Size").
		Method("LinkedBuffer", "IsEmpty").
		Method("LinkedBuffer", "Append", fault.IllegalElement).
		Method("LinkedBuffer", "AppendAll", fault.IllegalElement).
		Method("LinkedBuffer", "Peek", fault.NoSuchElement).
		Method("LinkedBuffer", "Take", fault.NoSuchElement).
		Method("LinkedBuffer", "TakeAll").
		Method("LinkedBuffer", "Clear").
		Method("LinkedBuffer", "ToSlice").
		Method("LinkedBuffer", "screen", fault.IllegalElement)
}
