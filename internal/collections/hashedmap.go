package collections

import (
	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// HMEntry is one chained entry of a HashedMap bucket.
type HMEntry struct {
	Key   Item
	Value Item
	Hash  uint32
	Next  *HMEntry
}

// HashedMap is a chained hash table in the original library's style:
// explicit threshold bookkeeping, incremental rehashing, and mutators that
// bump version and count before validation finishes.
type HashedMap struct {
	Buckets []*HMEntry
	Count   int
	Version int
	// ThresholdPct is the load factor in percent (default 75).
	ThresholdPct int
}

// DefaultHashedMapCapacity is the initial bucket count.
const DefaultHashedMapCapacity = 8

// NewHashedMap returns an empty map with the given initial bucket count.
func NewHashedMap(capacity int) *HashedMap {
	defer core.Enter(nil, "HashedMap.New")()
	if capacity <= 0 {
		capacity = DefaultHashedMapCapacity
	}
	return &HashedMap{Buckets: make([]*HMEntry, capacity), ThresholdPct: 75}
}

// Size returns the number of key/value pairs.
func (m *HashedMap) Size() int {
	defer enter(m, "HashedMap.Size")()
	return m.Count
}

// IsEmpty reports whether the map has no entries.
func (m *HashedMap) IsEmpty() bool {
	defer enter(m, "HashedMap.IsEmpty")()
	return m.Count == 0
}

// Put associates key with value and returns the previous value (nil if
// none). Version and count change before the rehash walk completes.
func (m *HashedMap) Put(key, value Item) Item {
	defer enter(m, "HashedMap.Put")()
	m.Version++
	h := m.hashFor(key)
	m.screenValue(value)
	idx := m.indexFor(h, len(m.Buckets))
	for e := m.Buckets[idx]; e != nil; e = e.Next {
		if e.Hash == h && SameItem(e.Key, key) {
			old := e.Value
			e.Value = value
			return old
		}
	}
	m.Count++
	if m.Count*100 > len(m.Buckets)*m.ThresholdPct {
		m.rehash(len(m.Buckets) * 2)
		idx = m.indexFor(h, len(m.Buckets))
	}
	m.Buckets[idx] = &HMEntry{Key: key, Value: value, Hash: h, Next: m.Buckets[idx]}
	return nil
}

// Get returns the value for key, or nil.
func (m *HashedMap) Get(key Item) Item {
	defer enter(m, "HashedMap.Get")()
	h := m.hashFor(key)
	for e := m.Buckets[m.indexFor(h, len(m.Buckets))]; e != nil; e = e.Next {
		if e.Hash == h && SameItem(e.Key, key) {
			return e.Value
		}
	}
	return nil
}

// ContainsKey reports whether key is present.
func (m *HashedMap) ContainsKey(key Item) bool {
	defer enter(m, "HashedMap.ContainsKey")()
	h := m.hashFor(key)
	for e := m.Buckets[m.indexFor(h, len(m.Buckets))]; e != nil; e = e.Next {
		if e.Hash == h && SameItem(e.Key, key) {
			return true
		}
	}
	return false
}

// Remove deletes key and returns its value (nil if absent). The version is
// bumped before the key is hashed (which throws for nil keys).
func (m *HashedMap) Remove(key Item) Item {
	defer enter(m, "HashedMap.Remove")()
	m.Version++
	h := m.hashFor(key)
	idx := m.indexFor(h, len(m.Buckets))
	var prev *HMEntry
	for e := m.Buckets[idx]; e != nil; e = e.Next {
		if e.Hash == h && SameItem(e.Key, key) {
			if prev == nil {
				m.Buckets[idx] = e.Next
			} else {
				prev.Next = e.Next
			}
			m.Count--
			return e.Value
		}
		prev = e
	}
	return nil
}

// Clear removes all entries, keeping the bucket count.
func (m *HashedMap) Clear() {
	defer enter(m, "HashedMap.Clear")()
	m.Version++
	for i := range m.Buckets {
		m.Buckets[i] = nil
	}
	m.Count = 0
}

// Keys returns the keys in bucket order.
func (m *HashedMap) Keys() []Item {
	defer enter(m, "HashedMap.Keys")()
	out := make([]Item, 0, m.Count)
	for _, b := range m.Buckets {
		for e := b; e != nil; e = e.Next {
			out = append(out, e.Key)
		}
	}
	return out
}

// Values returns the values in bucket order.
func (m *HashedMap) Values() []Item {
	defer enter(m, "HashedMap.Values")()
	out := make([]Item, 0, m.Count)
	for _, b := range m.Buckets {
		for e := b; e != nil; e = e.Next {
			out = append(out, e.Value)
		}
	}
	return out
}

// rehash relinks every entry into a table of n buckets, entry by entry;
// an exception mid-relink strands the table half-migrated (pure failure
// non-atomic, not fixable by reordering).
func (m *HashedMap) rehash(n int) {
	defer enter(m, "HashedMap.rehash")()
	old := m.Buckets
	m.Buckets = make([]*HMEntry, n)
	for _, b := range old {
		for e := b; e != nil; {
			next := e.Next
			idx := m.indexFor(e.Hash, n)
			e.Next = m.Buckets[idx]
			m.Buckets[idx] = e
			e = next
		}
	}
}

// hashFor hashes a key (throws IllegalElement for nil/unhashable keys).
func (m *HashedMap) hashFor(key Item) uint32 {
	defer enter(m, "HashedMap.hashFor")()
	return HashOf(key)
}

// indexFor maps a hash onto a bucket index.
func (m *HashedMap) indexFor(h uint32, n int) int {
	defer enter(m, "HashedMap.indexFor")()
	return int(h % uint32(n))
}

// screenValue rejects nil values (the original map stored no nulls).
func (m *HashedMap) screenValue(v Item) {
	defer enter(m, "HashedMap.screenValue")()
	if v == nil {
		fault.Throw(fault.IllegalElement, "HashedMap.screenValue", "nil value")
	}
}

// RegisterHashedMap adds the HashedMap methods to a registry.
func RegisterHashedMap(r *core.Registry) {
	r.Ctor("HashedMap", "HashedMap.New").
		Method("HashedMap", "Size").
		Method("HashedMap", "IsEmpty").
		Method("HashedMap", "Put", fault.IllegalElement).
		Method("HashedMap", "Get", fault.IllegalElement).
		Method("HashedMap", "ContainsKey", fault.IllegalElement).
		Method("HashedMap", "Remove", fault.IllegalElement).
		Method("HashedMap", "Clear").
		Method("HashedMap", "Keys").
		Method("HashedMap", "Values").
		Method("HashedMap", "rehash").
		Method("HashedMap", "hashFor", fault.IllegalElement).
		Method("HashedMap", "indexFor").
		Method("HashedMap", "screenValue", fault.IllegalElement)
}
