package collections

import (
	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// HSEntry is one chained entry of a HashedSet bucket.
type HSEntry struct {
	Element Item
	Hash    uint32
	Next    *HSEntry
}

// HashedSet is a chained hash set with screening and versioning.
type HashedSet struct {
	Buckets []*HSEntry
	Count   int
	Version int
	Screen  Screener
}

// DefaultHashedSetCapacity is the initial bucket count.
const DefaultHashedSetCapacity = 8

// NewHashedSet returns an empty set.
func NewHashedSet(capacity int, screen Screener) *HashedSet {
	defer core.Enter(nil, "HashedSet.New")()
	if capacity <= 0 {
		capacity = DefaultHashedSetCapacity
	}
	return &HashedSet{Buckets: make([]*HSEntry, capacity), Screen: screen}
}

// Size returns the number of elements.
func (s *HashedSet) Size() int {
	defer enter(s, "HashedSet.Size")()
	return s.Count
}

// IsEmpty reports whether the set has no elements.
func (s *HashedSet) IsEmpty() bool {
	defer enter(s, "HashedSet.IsEmpty")()
	return s.Count == 0
}

// Include adds v if absent and reports whether the set changed. Count is
// bumped before the possible rehash (original idiom).
func (s *HashedSet) Include(v Item) bool {
	defer enter(s, "HashedSet.Include")()
	s.Version++
	s.screen(v)
	h := HashOf(v)
	idx := int(h % uint32(len(s.Buckets)))
	for e := s.Buckets[idx]; e != nil; e = e.Next {
		if e.Hash == h && SameItem(e.Element, v) {
			return false
		}
	}
	s.Count++
	if s.Count*4 > len(s.Buckets)*3 {
		s.rehash(len(s.Buckets) * 2)
		idx = int(h % uint32(len(s.Buckets)))
	}
	s.Buckets[idx] = &HSEntry{Element: v, Hash: h, Next: s.Buckets[idx]}
	return true
}

// Exclude removes v if present and reports whether the set changed.
func (s *HashedSet) Exclude(v Item) bool {
	defer enter(s, "HashedSet.Exclude")()
	s.Version++
	s.screen(v)
	h := HashOf(v)
	idx := int(h % uint32(len(s.Buckets)))
	var prev *HSEntry
	for e := s.Buckets[idx]; e != nil; e = e.Next {
		if e.Hash == h && SameItem(e.Element, v) {
			if prev == nil {
				s.Buckets[idx] = e.Next
			} else {
				prev.Next = e.Next
			}
			s.Count--
			return true
		}
		prev = e
	}
	return false
}

// Includes reports whether v is in the set.
func (s *HashedSet) Includes(v Item) bool {
	defer enter(s, "HashedSet.Includes")()
	if v == nil {
		return false
	}
	h := HashOf(v)
	for e := s.Buckets[int(h%uint32(len(s.Buckets)))]; e != nil; e = e.Next {
		if e.Hash == h && SameItem(e.Element, v) {
			return true
		}
	}
	return false
}

// IncludeAll adds every element of vals; partial progress on exception is
// inherent (pure failure non-atomic).
func (s *HashedSet) IncludeAll(vals []Item) int {
	defer enter(s, "HashedSet.IncludeAll")()
	added := 0
	for _, v := range vals {
		if s.Include(v) {
			added++
		}
	}
	return added
}

// Clear removes all elements, keeping the bucket count.
func (s *HashedSet) Clear() {
	defer enter(s, "HashedSet.Clear")()
	s.Version++
	for i := range s.Buckets {
		s.Buckets[i] = nil
	}
	s.Count = 0
}

// ToSlice copies the elements into a fresh slice in bucket order.
func (s *HashedSet) ToSlice() []Item {
	defer enter(s, "HashedSet.ToSlice")()
	out := make([]Item, 0, s.Count)
	for _, b := range s.Buckets {
		for e := b; e != nil; e = e.Next {
			out = append(out, e.Element)
		}
	}
	return out
}

// rehash relinks the entries into n buckets, entry by entry.
func (s *HashedSet) rehash(n int) {
	defer enter(s, "HashedSet.rehash")()
	old := s.Buckets
	s.Buckets = make([]*HSEntry, n)
	for _, b := range old {
		for e := b; e != nil; {
			next := e.Next
			idx := s.spread(e.Hash, n)
			e.Next = s.Buckets[idx]
			s.Buckets[idx] = e
			e = next
		}
	}
}

// spread maps a hash onto a bucket index of an n-bucket table.
func (s *HashedSet) spread(h uint32, n int) int {
	defer enter(s, "HashedSet.spread")()
	return int(h % uint32(n))
}

// screen validates an element.
func (s *HashedSet) screen(v Item) {
	defer enter(s, "HashedSet.screen")()
	checkElement("HashedSet.screen", s.Screen, v)
}

// RegisterHashedSet adds the HashedSet methods to a registry.
func RegisterHashedSet(r *core.Registry) {
	r.Ctor("HashedSet", "HashedSet.New").
		Method("HashedSet", "Size").
		Method("HashedSet", "IsEmpty").
		Method("HashedSet", "Include", fault.IllegalElement).
		Method("HashedSet", "Exclude", fault.IllegalElement).
		Method("HashedSet", "Includes").
		Method("HashedSet", "IncludeAll", fault.IllegalElement).
		Method("HashedSet", "Clear").
		Method("HashedSet", "ToSlice").
		Method("HashedSet", "rehash").
		Method("HashedSet", "spread").
		Method("HashedSet", "screen", fault.IllegalElement)
}
