// Mutex-guarded concurrent wrappers. These are the targets of the
// concurrent-object detection mode (internal/concur): each method holds
// the wrapper's lock around its delegated call, so every individual
// operation is thread-safe — but the compound methods (InsertPair,
// PutFresh) span *two* critical sections, and the window between them is
// exactly the non-atomicity a concurrent faulted schedule exposes and a
// single-threaded campaign cannot.
//
// The Gap hook marks that window: the concurrent driver points it at its
// scheduler yield so other workers can run inside the window
// deterministically. Single-threaded campaigns leave it nil, making the
// window unobservable — which is why LockedList.InsertPair classifies
// failure atomic under the default campaign (its failure path compensates
// completely) while the same faulted method is non-linearizable under a
// concurrent schedule.
//
// The instrumented receiver of every wrapper method is the *inner*
// collection: snapshots, checkpoints and marks see the guarded state, not
// the mutex or the Gap hook.
package collections

import (
	"sync"

	"failatomic/internal/core"
	"failatomic/internal/fault"
)

// protect runs f and returns the value of an exception escaping it (nil
// on normal completion), so compound methods can compensate and rethrow.
func protect(f func()) (exc any) {
	defer func() { exc = recover() }()
	f()
	return nil
}

// LockedLinkedList guards a LinkedList with a mutex.
type LockedLinkedList struct {
	mu sync.Mutex
	// List is the guarded list; wrapper methods delegate to it under mu.
	List *LinkedList
	// Gap, when set, is called between the two critical sections of
	// compound methods — the concurrent driver's deterministic yield
	// point. Nil (the default) makes the window unobservable.
	Gap func()
}

// NewLockedLinkedList returns an empty locked list with an optional
// element screener.
func NewLockedLinkedList(screen Screener) *LockedLinkedList {
	defer core.Enter(nil, "LockedList.New")()
	return &LockedLinkedList{List: NewLinkedList(screen)}
}

// yield is scheduler plumbing, not a subject method: no prologue, no
// injection points — the gap window must not perturb the point space.
//
//failatomic:ignore
func (l *LockedLinkedList) yield() {
	if l.Gap != nil {
		l.Gap()
	}
}

// Size returns the number of elements.
func (l *LockedLinkedList) Size() int {
	defer enter(l.List, "LockedList.Size")()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.List.Size()
}

// First returns the first element; it throws NoSuchElement when empty.
func (l *LockedLinkedList) First() Item {
	defer enter(l.List, "LockedList.First")()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.List.First()
}

// InsertFirst prepends v under the lock.
func (l *LockedLinkedList) InsertFirst(v Item) {
	defer enter(l.List, "LockedList.InsertFirst")()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.List.InsertFirst(v)
}

// RemoveFirst removes and returns the first element under the lock.
func (l *LockedLinkedList) RemoveFirst() Item {
	defer enter(l.List, "LockedList.RemoveFirst")()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.List.RemoveFirst()
}

// RemoveOne removes the first occurrence of v under the lock.
func (l *LockedLinkedList) RemoveOne(v Item) bool {
	defer enter(l.List, "LockedList.RemoveOne")()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.List.RemoveOne(v)
}

// Includes reports whether v occurs in the list.
func (l *LockedLinkedList) Includes(v Item) bool {
	defer enter(l.List, "LockedList.Includes")()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.List.Includes(v)
}

// ToSlice copies the elements into a fresh slice under the lock.
func (l *LockedLinkedList) ToSlice() []Item {
	defer enter(l.List, "LockedList.ToSlice")()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.List.ToSlice()
}

// InsertPair prepends the pair (a, b) — after it returns, a is first and
// b second — in two critical sections: the first commits both inserts,
// the second re-screens the committed pair (the double-validation idiom).
// Every failure path compensates completely — inserted elements are
// removed and the version restored — so a single-threaded campaign
// classifies the method failure atomic. Between the two critical sections
// (the Gap) the committed pair is visible to other threads; a fault in
// the second section then retracts state another thread may already have
// consumed, which no linearization of the sequential model can explain.
func (l *LockedLinkedList) InsertPair(a, b Item) {
	defer enter(l.List, "LockedList.InsertPair")()
	l.mu.Lock()
	saved := l.List.Version
	inserted := 0
	if exc := protect(func() {
		l.List.InsertFirst(b)
		inserted++
		l.List.InsertFirst(a)
		inserted++
	}); exc != nil {
		if inserted >= 2 {
			l.List.RemoveOne(a)
		}
		if inserted >= 1 {
			l.List.RemoveOne(b)
		}
		l.List.Version = saved
		l.mu.Unlock()
		panic(exc)
	}
	l.mu.Unlock()
	l.yield()
	l.mu.Lock()
	if exc := protect(func() {
		l.List.screen(a)
		l.List.screen(b)
	}); exc != nil {
		l.List.RemoveOne(a)
		l.List.RemoveOne(b)
		l.List.Version = saved
		l.mu.Unlock()
		panic(exc)
	}
	l.mu.Unlock()
}

// RegisterLockedLinkedList adds the locked-list methods (and the inner
// list they delegate to) to a registry.
func RegisterLockedLinkedList(r *core.Registry) {
	RegisterLinkedList(r)
	r.Ctor("LockedList", "LockedList.New").
		Method("LockedList", "Size").
		Method("LockedList", "First", fault.NoSuchElement).
		Method("LockedList", "InsertFirst", fault.IllegalElement).
		Method("LockedList", "RemoveFirst", fault.NoSuchElement).
		Method("LockedList", "RemoveOne", fault.IllegalElement).
		Method("LockedList", "Includes").
		Method("LockedList", "ToSlice").
		Method("LockedList", "InsertPair", fault.IllegalElement)
}

// LockedRBMap guards an RBMap with a mutex.
type LockedRBMap struct {
	mu sync.Mutex
	// Map is the guarded map; wrapper methods delegate to it under mu.
	Map *RBMap
	// Gap, when set, is called between the two critical sections of
	// compound methods (see LockedLinkedList.Gap).
	Gap func()
}

// NewLockedRBMap returns an empty locked sorted map.
func NewLockedRBMap(cmp Comparator) *LockedRBMap {
	defer core.Enter(nil, "LockedRBMap.New")()
	return &LockedRBMap{Map: NewRBMap(cmp)}
}

// yield is scheduler plumbing, like LockedLinkedList.yield.
//
//failatomic:ignore
func (m *LockedRBMap) yield() {
	if m.Gap != nil {
		m.Gap()
	}
}

// Size returns the number of pairs.
func (m *LockedRBMap) Size() int {
	defer enter(m.Map, "LockedRBMap.Size")()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Map.Size()
}

// Get returns the value for key, or nil.
func (m *LockedRBMap) Get(key Item) Item {
	defer enter(m.Map, "LockedRBMap.Get")()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Map.Get(key)
}

// Put associates key with value under the lock and returns the previous
// value (nil if none).
func (m *LockedRBMap) Put(key, value Item) Item {
	defer enter(m.Map, "LockedRBMap.Put")()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Map.Put(key, value)
}

// Remove deletes key under the lock and returns its value (nil if
// absent).
func (m *LockedRBMap) Remove(key Item) Item {
	defer enter(m.Map, "LockedRBMap.Remove")()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Map.Remove(key)
}

// Keys returns the keys in sorted order.
func (m *LockedRBMap) Keys() []Item {
	defer enter(m.Map, "LockedRBMap.Keys")()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Map.Keys()
}

// Values returns the values in key order.
func (m *LockedRBMap) Values() []Item {
	defer enter(m.Map, "LockedRBMap.Values")()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Map.Values()
}

// PutFresh inserts key→value and then, in a second critical section,
// asserts the key was fresh: a replaced previous value throws
// IllegalArgument *after* the replacement committed, with no
// compensation. Sequentially that is honest committed-then-throw
// non-atomicity the detector reports; under a concurrent faulted schedule
// the same shape is what the linearization checker calls non-atomic but
// linearizable — the faulted operation's full effect explains the
// history.
func (m *LockedRBMap) PutFresh(key, value Item) {
	defer enter(m.Map, "LockedRBMap.PutFresh")()
	m.mu.Lock()
	var old Item
	if exc := protect(func() { old = m.Map.Put(key, value) }); exc != nil {
		m.mu.Unlock()
		panic(exc)
	}
	m.mu.Unlock()
	m.yield()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Map.checkKey(key)
	if old != nil {
		fault.Throw(fault.IllegalArgument, "LockedRBMap.PutFresh",
			"key %v was not fresh (replaced %v)", key, old)
	}
}

// RegisterLockedRBMap adds the locked-map methods (and the inner map they
// delegate to) to a registry.
func RegisterLockedRBMap(r *core.Registry) {
	RegisterRBMap(r)
	r.Ctor("LockedRBMap", "LockedRBMap.New").
		Method("LockedRBMap", "Size").
		Method("LockedRBMap", "Get", fault.IllegalElement).
		Method("LockedRBMap", "Put", fault.IllegalElement, fault.IllegalArgument).
		Method("LockedRBMap", "Remove", fault.IllegalElement).
		Method("LockedRBMap", "Keys").
		Method("LockedRBMap", "Values").
		Method("LockedRBMap", "PutFresh", fault.IllegalElement, fault.IllegalArgument)
}
