package collections

import (
	"testing"

	"failatomic/internal/fault"
)

func TestCircularListBasics(t *testing.T) {
	l := NewCircularList(nil)
	l.InsertLast(2)
	l.InsertFirst(1)
	l.InsertLast(3)
	if !equalInts(intsOf(l.ToSlice()), 1, 2, 3) {
		t.Fatalf("got %v", l.ToSlice())
	}
	if l.First() != 1 || l.Last() != 3 || l.At(1) != 2 {
		t.Fatal("accessors wrong")
	}
	l.InsertAt(1, 9)
	if !equalInts(intsOf(l.ToSlice()), 1, 9, 2, 3) {
		t.Fatalf("after InsertAt: %v", l.ToSlice())
	}
	if l.RemoveAt(1) != 9 {
		t.Fatal("RemoveAt wrong")
	}
	if l.RemoveFirst() != 1 || l.RemoveLast() != 3 {
		t.Fatal("remove ends wrong")
	}
	if l.Size() != 1 || l.First() != 2 {
		t.Fatal("final state wrong")
	}
}

func TestCircularListRingIntegrity(t *testing.T) {
	l := NewCircularList(nil)
	for i := 1; i <= 5; i++ {
		l.InsertLast(i)
	}
	// The ring must close in both directions.
	if l.Head.Prev.Element != 5 || l.Head.Prev.Next != l.Head {
		t.Fatal("ring not closed")
	}
	cur := l.Head
	for i := 0; i < 5; i++ {
		if cur.Next.Prev != cur {
			t.Fatal("prev/next mismatch")
		}
		cur = cur.Next
	}
	if cur != l.Head {
		t.Fatal("ring walk did not return to head")
	}
}

func TestCircularListRotate(t *testing.T) {
	l := NewCircularList(nil)
	for i := 1; i <= 4; i++ {
		l.InsertLast(i)
	}
	l.Rotate(1)
	if !equalInts(intsOf(l.ToSlice()), 2, 3, 4, 1) {
		t.Fatalf("after Rotate(1): %v", l.ToSlice())
	}
	l.Rotate(-1)
	if !equalInts(intsOf(l.ToSlice()), 1, 2, 3, 4) {
		t.Fatalf("after Rotate(-1): %v", l.ToSlice())
	}
	l.Rotate(6) // wraps
	if !equalInts(intsOf(l.ToSlice()), 3, 4, 1, 2) {
		t.Fatalf("after Rotate(6): %v", l.ToSlice())
	}
}

func TestCircularListSingleElementRemoval(t *testing.T) {
	l := NewCircularList(nil)
	l.InsertFirst(1)
	if l.RemoveLast() != 1 || !l.IsEmpty() || l.Head != nil {
		t.Fatal("single element removal broken")
	}
	if exc := catchException(func() { l.RemoveFirst() }); exc == nil || exc.Kind != fault.NoSuchElement {
		t.Fatal("empty removal must throw")
	}
}

func TestDynarrayBasics(t *testing.T) {
	d := NewDynarray(2, nil)
	for i := 1; i <= 5; i++ {
		d.Append(i * 10)
	}
	if d.Size() != 5 || d.Capacity() < 5 {
		t.Fatalf("size/cap: %d/%d", d.Size(), d.Capacity())
	}
	if d.At(2) != 30 || d.IndexOf(40) != 3 || !d.Includes(50) {
		t.Fatal("lookup wrong")
	}
	d.InsertAt(1, 15)
	if !equalInts(intsOf(d.ToSlice()), 10, 15, 20, 30, 40, 50) {
		t.Fatalf("after InsertAt: %v", d.ToSlice())
	}
	if d.RemoveAt(0) != 10 {
		t.Fatal("RemoveAt wrong")
	}
	d.SetAt(0, 16)
	if d.At(0) != 16 {
		t.Fatal("SetAt wrong")
	}
	if !d.RemoveOne(30) || d.RemoveOne(30) {
		t.Fatal("RemoveOne wrong")
	}
	d.Trim()
	if d.Capacity() != d.Size() {
		t.Fatal("Trim must shrink capacity to count")
	}
	d.Clear()
	if !d.IsEmpty() {
		t.Fatal("Clear failed")
	}
}

func TestDynarrayExceptions(t *testing.T) {
	d := NewDynarray(0, nil)
	if exc := catchException(func() { d.At(0) }); exc == nil || exc.Kind != fault.IndexOutOfBounds {
		t.Fatal("At on empty must throw")
	}
	if exc := catchException(func() { d.InsertAt(5, 1) }); exc == nil || exc.Kind != fault.IndexOutOfBounds {
		t.Fatal("InsertAt out of range must throw")
	}
	if exc := catchException(func() { d.Append(nil) }); exc == nil || exc.Kind != fault.IllegalElement {
		t.Fatal("nil append must throw")
	}
}

func TestHashedMapBasics(t *testing.T) {
	m := NewHashedMap(2)
	for i := 0; i < 40; i++ {
		if old := m.Put(i, i*i); old != nil {
			t.Fatalf("unexpected old value %v", old)
		}
	}
	if m.Size() != 40 {
		t.Fatalf("size %d", m.Size())
	}
	for i := 0; i < 40; i++ {
		if m.Get(i) != i*i {
			t.Fatalf("Get(%d) = %v", i, m.Get(i))
		}
	}
	if old := m.Put(7, 0); old != 49 {
		t.Fatalf("replace returned %v", old)
	}
	if m.Size() != 40 {
		t.Fatal("replace must not grow the map")
	}
	if m.Remove(7) != 0 || m.ContainsKey(7) {
		t.Fatal("Remove failed")
	}
	if m.Remove(999) != nil {
		t.Fatal("removing absent key must return nil")
	}
	if len(m.Keys()) != 39 || len(m.Values()) != 39 {
		t.Fatal("Keys/Values length wrong")
	}
	m.Clear()
	if !m.IsEmpty() {
		t.Fatal("Clear failed")
	}
}

func TestHashedMapStringKeys(t *testing.T) {
	m := NewHashedMap(0)
	m.Put("alpha", 1)
	m.Put("beta", 2)
	if m.Get("alpha") != 1 || m.Get("gamma") != nil {
		t.Fatal("string keys broken")
	}
	if exc := catchException(func() { m.Put(nil, 1) }); exc == nil || exc.Kind != fault.IllegalElement {
		t.Fatal("nil key must throw")
	}
	if exc := catchException(func() { m.Put("k", nil) }); exc == nil || exc.Kind != fault.IllegalElement {
		t.Fatal("nil value must throw")
	}
}

func TestHashedSetBasics(t *testing.T) {
	s := NewHashedSet(2, nil)
	if !s.Include(1) || s.Include(1) {
		t.Fatal("Include must report change")
	}
	added := s.IncludeAll([]Item{2, 3, 4, 2})
	if added != 3 || s.Size() != 4 {
		t.Fatalf("IncludeAll added %d, size %d", added, s.Size())
	}
	if !s.Includes(3) || s.Includes(9) || s.Includes(nil) {
		t.Fatal("membership wrong")
	}
	if !s.Exclude(3) || s.Exclude(3) {
		t.Fatal("Exclude must report change")
	}
	if len(s.ToSlice()) != 3 {
		t.Fatal("ToSlice length wrong")
	}
	// Grow enough to force several rehashes.
	for i := 10; i < 60; i++ {
		s.Include(i)
	}
	for i := 10; i < 60; i++ {
		if !s.Includes(i) {
			t.Fatalf("lost element %d after rehash", i)
		}
	}
	s.Clear()
	if !s.IsEmpty() {
		t.Fatal("Clear failed")
	}
}

func TestLLMapBasics(t *testing.T) {
	m := NewLLMap()
	if m.Put("a", 1) != nil || m.Put("b", 2) != nil {
		t.Fatal("fresh puts must return nil")
	}
	if m.Put("a", 10) != 1 {
		t.Fatal("replacement must return old value")
	}
	if m.Size() != 2 || m.Get("a") != 10 || m.Get("zz") != nil {
		t.Fatal("get wrong")
	}
	if !m.ContainsKey("b") || m.ContainsKey("zz") {
		t.Fatal("ContainsKey wrong")
	}
	if !m.ContainsValue(2) || m.ContainsValue(99) {
		t.Fatal("ContainsValue wrong")
	}
	if m.Remove("a") != 10 || m.Remove("a") != nil {
		t.Fatal("Remove wrong")
	}
	m.PutAll([]Item{"x", "y"}, []Item{7, 8})
	if m.Size() != 3 || m.Get("y") != 8 {
		t.Fatal("PutAll wrong")
	}
	if exc := catchException(func() { m.PutAll([]Item{"q"}, nil) }); exc == nil || exc.Kind != fault.IllegalArgument {
		t.Fatal("length mismatch must throw")
	}
	if len(m.Keys()) != 3 || len(m.Values()) != 3 {
		t.Fatal("Keys/Values wrong")
	}
	m.Clear()
	if !m.IsEmpty() {
		t.Fatal("Clear failed")
	}
}

func TestLinkedBufferBasics(t *testing.T) {
	b := NewLinkedBuffer(nil)
	if !b.IsEmpty() {
		t.Fatal("fresh buffer must be empty")
	}
	// Span several chunks.
	for i := 1; i <= 10; i++ {
		b.Append(i)
	}
	if b.Size() != 10 || b.Peek() != 1 {
		t.Fatalf("size/peek wrong: %d/%v", b.Size(), b.Peek())
	}
	if !equalInts(intsOf(b.ToSlice()), 1, 2, 3, 4, 5, 6, 7, 8, 9, 10) {
		t.Fatalf("ToSlice: %v", b.ToSlice())
	}
	for i := 1; i <= 6; i++ {
		if b.Take() != i {
			t.Fatalf("Take order broken at %d", i)
		}
	}
	b.AppendAll([]Item{11, 12})
	got := intsOf(b.TakeAll())
	if !equalInts(got, 7, 8, 9, 10, 11, 12) {
		t.Fatalf("TakeAll: %v", got)
	}
	if !b.IsEmpty() || b.Head != nil || b.Tail != nil {
		t.Fatal("drained buffer must release chunks")
	}
	if exc := catchException(func() { b.Take() }); exc == nil || exc.Kind != fault.NoSuchElement {
		t.Fatal("Take on empty must throw")
	}
	if exc := catchException(func() { b.Peek() }); exc == nil || exc.Kind != fault.NoSuchElement {
		t.Fatal("Peek on empty must throw")
	}
}

func TestLinkedBufferInterleaved(t *testing.T) {
	b := NewLinkedBuffer(nil)
	next, expect := 1, 1
	for round := 0; round < 20; round++ {
		for i := 0; i < 3; i++ {
			b.Append(next)
			next++
		}
		for i := 0; i < 2; i++ {
			if got := b.Take(); got != expect {
				t.Fatalf("round %d: got %v want %d", round, got, expect)
			}
			expect++
		}
	}
	if b.Size() != 20 {
		t.Fatalf("size %d, want 20", b.Size())
	}
}

func TestDefaultCompare(t *testing.T) {
	if DefaultCompare(1, 2) >= 0 || DefaultCompare(2, 1) <= 0 || DefaultCompare(3, 3) != 0 {
		t.Fatal("int compare wrong")
	}
	if DefaultCompare("a", "b") >= 0 || DefaultCompare("b", "b") != 0 {
		t.Fatal("string compare wrong")
	}
	if exc := catchException(func() { DefaultCompare(1, "x") }); exc == nil || exc.Kind != fault.IllegalArgument {
		t.Fatal("mixed compare must throw")
	}
	if exc := catchException(func() { DefaultCompare(1.5, 1.5) }); exc == nil || exc.Kind != fault.IllegalArgument {
		t.Fatal("unsupported type must throw")
	}
}

func TestHashOf(t *testing.T) {
	if HashOf(1) == HashOf(2) {
		t.Fatal("weak int hash")
	}
	if HashOf("a") == HashOf("b") {
		t.Fatal("weak string hash")
	}
	if HashOf(true) == HashOf(false) {
		t.Fatal("bool hash")
	}
	if exc := catchException(func() { HashOf(nil) }); exc == nil || exc.Kind != fault.IllegalElement {
		t.Fatal("nil hash must throw")
	}
	if exc := catchException(func() { HashOf(3.14) }); exc == nil || exc.Kind != fault.IllegalElement {
		t.Fatal("unhashable type must throw")
	}
}
