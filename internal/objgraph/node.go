// Package objgraph implements the paper's Definition 1: the object graph of
// a value, with aliasing structure, used to decide failure atomicity
// (Definition 2).
//
// Capture encodes the object graph rooted at one or more values into an
// immutable Graph. Two Graphs captured before a method call and after its
// exceptional return are compared with Equal; Diff reports the path to the
// first difference for the programmer-facing report.
//
// The encoder reads unexported fields (reflection permits reading, not
// writing), so comparison covers private state. Anything the encoder cannot
// model (channels, funcs, unsafe pointers) is compared by identity, which
// preserves the paper's one-sided guarantee: an unseen mutation can hide
// non-atomicity but can never cause a failure atomic method to be reported
// as failure non-atomic.
package objgraph

// Kind classifies a node in an object graph.
type Kind uint8

// Node kinds. Start at 1 so the zero value is invalid (catches
// uninitialized nodes in tests).
const (
	KindNil Kind = iota + 1
	KindBool
	KindInt
	KindUint
	KindFloat
	KindComplex
	KindString
	KindPointer
	KindSlice
	KindArray
	KindMap
	KindEntry
	KindStruct
	KindInterface
	KindChan
	KindFunc
	KindOpaque
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindUint:
		return "uint"
	case KindFloat:
		return "float"
	case KindComplex:
		return "complex"
	case KindString:
		return "string"
	case KindPointer:
		return "pointer"
	case KindSlice:
		return "slice"
	case KindArray:
		return "array"
	case KindMap:
		return "map"
	case KindEntry:
		return "entry"
	case KindStruct:
		return "struct"
	case KindInterface:
		return "interface"
	case KindChan:
		return "chan"
	case KindFunc:
		return "func"
	case KindOpaque:
		return "opaque"
	default:
		return "invalid"
	}
}

// Node is one vertex of an encoded object graph. A node with Ref != 0 and
// Backref true refers to an earlier node with the same Ref id (aliasing per
// Definition 1: two pointers to the same object share one child node).
type Node struct {
	// Kind is the node class.
	Kind Kind
	// Type is the Go type of the encoded value ("" for synthetic nodes).
	Type string
	// Label is the edge label from the parent: a field name, "[i]" for an
	// element, or a canonical map-key string for entries.
	Label string
	// Bits holds the scalar payload for bool/int/uint/float and the
	// identity for chan/func nodes.
	Bits uint64
	// Str holds string payloads and complex-number representations.
	Str string
	// Ref is a nonzero alias id for reference nodes (pointers, maps,
	// slices). The first occurrence carries the children; later
	// occurrences set Backref and carry none.
	Ref int
	// Backref marks a repeated occurrence of an already-encoded reference.
	Backref bool
	// Children are the encoded successors, in deterministic order.
	Children []*Node
}

// Graph is an immutable encoded object graph.
type Graph struct {
	roots []*Node
	nodes int
	bytes int
}

// Roots returns the root nodes, one per captured value.
func (g *Graph) Roots() []*Node { return g.roots }

// Nodes returns the number of nodes in the graph.
func (g *Graph) Nodes() int { return g.nodes }

// Bytes returns the approximate payload size of the graph in bytes. It is
// used for checkpoint-size accounting (Figure 5).
func (g *Graph) Bytes() int { return g.bytes }
