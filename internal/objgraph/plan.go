package objgraph

import (
	"reflect"
	"strconv"
	"sync"
)

// Compiled per-type encoding plans. Both Capture and Fingerprint walk the
// same canonical traversal, and both used to re-derive the same per-type
// facts on every node: the kind dispatch, the type string (reflect builds
// it on each call), struct field names (reflect.Type.Field allocates a
// fresh Index slice per call), and scalar sizes. A typePlan computes all
// of that once per reflect.Type and caches it in a package-level sync.Map,
// so the per-node cost of both encoders drops to one lock-free map read.

// typePlan is the compiled encoding recipe for one reflect.Type.
type typePlan struct {
	// kind is the reflect kind driving the encoder dispatch.
	kind reflect.Kind
	// typeStr is the interned Type.String() — the Node.Type of every node
	// of this type, shared instead of rebuilt per node.
	typeStr string
	// typeHash is strHash64(typeStr), mixed into fingerprints in place of
	// the string bytes.
	typeHash uint64
	// size is Type.Size(), used for scalar payload accounting.
	size int
	// fields holds the precomputed field traversal for structs.
	fields []fieldPlan
	// byteElem marks []byte-shaped slices (bulk payload fast path).
	byteElem bool
	// byteArray marks [N]byte-shaped arrays (large-leaf framing path).
	byteArray bool
}

// fieldPlan is one struct field of a compiled plan.
type fieldPlan struct {
	// index is the field's positional index (Value.Field argument).
	index int
	// name is the interned field name — the edge label in Capture.
	name string
	// labelHash is strHash64(name), the edge label in Fingerprint.
	labelHash uint64
}

// typePlans caches *typePlan by reflect.Type. Types are process-immutable,
// so entries are never invalidated; the map only grows, bounded by the
// number of distinct types the program snapshots.
var typePlans sync.Map

// planFor returns the compiled plan for t, compiling and caching it on
// first sight. Safe for concurrent use; a racing first sight compiles
// twice and keeps one.
func planFor(t reflect.Type) *typePlan {
	if p, ok := typePlans.Load(t); ok {
		return p.(*typePlan)
	}
	p, _ := typePlans.LoadOrStore(t, compilePlan(t))
	return p.(*typePlan)
}

// compilePlan derives the plan for one type.
func compilePlan(t reflect.Type) *typePlan {
	p := &typePlan{
		kind:    t.Kind(),
		typeStr: t.String(),
		size:    int(t.Size()),
	}
	p.typeHash = strHash64(p.typeStr)
	switch p.kind {
	case reflect.Struct:
		p.fields = make([]fieldPlan, t.NumField())
		for i := range p.fields {
			name := t.Field(i).Name
			p.fields[i] = fieldPlan{index: i, name: name, labelHash: strHash64(name)}
		}
	case reflect.Slice:
		p.byteElem = t.Elem().Kind() == reflect.Uint8
	case reflect.Array:
		p.byteArray = t.Elem().Kind() == reflect.Uint8
	}
	return p
}

// Interned edge labels. Capture used to build "arg1"/"[3]" strings on
// every root and element node; the common low indices are precomputed
// once and shared.

const nInternedLabels = 128

var (
	internedIndexLabels [nInternedLabels]string // "[0]", "[1]", ...
	internedArgLabels   [nInternedLabels]string // "recv", "arg1", ...
	internedIndexHashes [nInternedLabels]uint64
	internedArgHashes   [nInternedLabels]uint64
)

func init() {
	internedArgLabels[0] = "recv"
	for i := range internedIndexLabels {
		internedIndexLabels[i] = "[" + strconv.Itoa(i) + "]"
		internedIndexHashes[i] = strHash64(internedIndexLabels[i])
		if i > 0 {
			internedArgLabels[i] = "arg" + strconv.Itoa(i)
		}
		internedArgHashes[i] = strHash64(internedArgLabels[i])
	}
}

// indexLabel returns the "[i]" edge label, interned for small indices.
func indexLabel(i int) string {
	if i < nInternedLabels {
		return internedIndexLabels[i]
	}
	return "[" + strconv.Itoa(i) + "]"
}

// rootLabel returns the label of root i ("recv", then "argN"), interned
// for small indices.
func rootLabel(i int) string {
	if i < nInternedLabels {
		return internedArgLabels[i]
	}
	return "arg" + strconv.Itoa(i)
}

// indexLabelHash returns strHash64 of indexLabel(i) without building the
// string for interned indices.
func indexLabelHash(i int) uint64 {
	if i < nInternedLabels {
		return internedIndexHashes[i]
	}
	return strHash64(indexLabel(i))
}

// rootLabelHash returns strHash64 of rootLabel(i).
func rootLabelHash(i int) uint64 {
	if i < nInternedLabels {
		return internedArgHashes[i]
	}
	return strHash64(rootLabel(i))
}

// strHash64 hashes a label or type string to the 64-bit word mixed into
// fingerprints in its place. FNV-1a with a murmur-style finalizer: cheap
// at plan-compile time, and two distinct strings colliding only weakens
// the fingerprint toward its documented 2⁻¹²⁸-class collision caveat.
func strHash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return fmix64(h ^ uint64(len(s))<<56)
}

// fmix64 is the 64-bit avalanche finalizer (MurmurHash3 constants).
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
