package objgraph

import (
	"bytes"
	"encoding/binary"
	"math/bits"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Incremental fingerprints. A detection campaign fingerprints the same
// receiver graph on every wrapped call, and between two consecutive
// snapshots most of the graph provably hasn't changed — the only writers
// are the wrapped methods themselves. FPCache exploits that with three
// mechanisms, none of which may change a fingerprint's value:
//
//   - Large-leaf memoization: big flat []byte/string/byte-array leaves
//     (≥ fpLeafFrameMin) hash once via bulkHash128; reuse is verified by
//     an exact content compare ([]byte: memcmp against a private copy;
//     string: == against the retained immutable string), so a stale
//     entry can never be replayed — a mutated leaf fails the compare and
//     is rehashed in place.
//   - Generation-keyed root reuse: the digest of a single pointer root's
//     whole frame is keyed by (pointer, *typePlan, generation). The
//     owning session bumps the generation (one atomic) on every wrapped
//     call entry and again before each after-fingerprint, so a hit is
//     only taken when no wrapped mutation could have touched the graph
//     since the digest was computed.
//   - Parallel lane hashing: calls with ≥2 roots whose previous
//     traversal exceeded fpParallelWork hash each root's frame on a
//     small worker pool; frames are position-independent, so combining
//     the digests in root order is byte-identical to the sequential
//     result. Workers never touch the cache (it is single-goroutine
//     state), and a post-hoc intersection of the workers' reference
//     tables detects cross-root aliasing exactly like the sequential
//     traversal does, triggering the same global fallback.

const (
	// fpLeafFrameMin is the flat-leaf size (bytes) at which content is
	// framed as an independent digest instead of streamed word by word.
	// The framing decision is a pure function of the length so cold,
	// cached, and parallel encoders always agree on the spelling.
	fpLeafFrameMin = 1024
	// DefaultFPCacheBudget bounds the leaf-content bytes a cache pins
	// for reuse verification when no explicit budget is configured.
	DefaultFPCacheBudget = 8 << 20
	// fpParallelWork is the traversal-work watermark (in hash words,
	// from the encoder's work counter) above which a multi-root call
	// engages the worker pool.
	fpParallelWork = 1 << 16
	// fpMaxWorkers caps the per-call worker pool.
	fpMaxWorkers = 4
)

// FPCacheStats reports cache effectiveness counters.
type FPCacheStats struct {
	// Hits counts verified leaf replays and generation-valid root reuses.
	Hits int64
	// Misses counts lookups that had to hash content or a whole frame.
	Misses int64
	// Bytes is the leaf content currently pinned for verification.
	Bytes int64
}

// FPCache is a per-session incremental fingerprint cache. It is NOT safe
// for concurrent use: each session owns exactly one, matching the
// single-goroutine (or Serialize-locked) discipline of session state.
// Only Bump is atomic, so the owning session can invalidate cheaply from
// its wrapped-call prologue.
type FPCache struct {
	gen      atomic.Uint64
	budget   int64
	bytes    int64
	hits     int64
	misses   int64
	leaves   map[fpLeafKey]*fpLeafEntry
	roots    map[fpRootKey]fpRootEntry
	lastWork int
	parallel bool
}

// fpLeafKey identifies a flat leaf by backing-store pointer and length.
type fpLeafKey struct {
	ptr uintptr
	n   int
}

// fpLeafEntry memoizes one leaf's content digest plus the verification
// material: buf holds a private copy for mutable []byte leaves, str the
// retained string for immutable string leaves (exactly one is set).
type fpLeafEntry struct {
	d   FP
	buf []byte
	str string
}

// fpRootKey identifies a whole root frame: the pointer and its compiled
// type plan (plans are interned per reflect.Type, so the pair is exact).
type fpRootKey struct {
	ptr  uintptr
	plan *typePlan
}

// fpRootEntry is a frame digest valid while the generation is unchanged.
type fpRootEntry struct {
	gen uint64
	d   FP
}

// NewFPCache returns an empty cache. budget caps the leaf-content bytes
// pinned for verification; <= 0 selects DefaultFPCacheBudget.
func NewFPCache(budget int64) *FPCache {
	if budget <= 0 {
		budget = DefaultFPCacheBudget
	}
	return &FPCache{
		budget:   budget,
		leaves:   make(map[fpLeafKey]*fpLeafEntry),
		roots:    make(map[fpRootKey]fpRootEntry),
		parallel: true,
	}
}

// Bump advances the generation, invalidating every root-frame entry.
// Leaf entries survive — their reuse is verified by content compare, not
// by generation. Safe to call concurrently (a single atomic add).
func (c *FPCache) Bump() { c.gen.Add(1) }

// Stats returns the current counters.
func (c *FPCache) Stats() FPCacheStats {
	return FPCacheStats{Hits: c.hits, Misses: c.misses, Bytes: c.bytes}
}

// noteWork records the last traversal's approximate hash effort, the
// signal parallelEligible gates on.
func (c *FPCache) noteWork(w int) { c.lastWork = w }

// parallelEligible reports whether the next multi-root call should try
// the worker pool. Purely a heuristic: both paths produce identical
// fingerprints, so the first call (no work estimate yet) simply runs
// sequentially.
func (c *FPCache) parallelEligible(nroots int) bool {
	return c.parallel && nroots >= 2 && c.lastWork >= fpParallelWork && runtime.GOMAXPROCS(0) > 1
}

// leafBytes returns the memoized content digest of b, verifying reuse
// with an exact compare against the entry's private copy. Mutation under
// the same backing array fails the compare and refreshes the entry in
// place; new leaves are admitted while the byte budget lasts.
func (c *FPCache) leafBytes(b []byte) FP {
	key := fpLeafKey{ptr: uintptr(unsafe.Pointer(&b[0])), n: len(b)}
	if ent := c.leaves[key]; ent != nil {
		if ent.buf != nil && bytes.Equal(ent.buf, b) {
			c.hits++
			return ent.d
		}
		c.misses++
		ent.d = bulkHash128(b)
		ent.str = ""
		ent.buf = append(ent.buf[:0], b...)
		return ent.d
	}
	c.misses++
	d := bulkHash128(b)
	if c.bytes+int64(len(b)) <= c.budget {
		cp := make([]byte, len(b))
		copy(cp, b)
		c.leaves[key] = &fpLeafEntry{d: d, buf: cp}
		c.bytes += int64(len(b))
	}
	return d
}

// leafString is leafBytes for strings: a private clone of the string is
// retained as the verification material, keyed by the original's data
// pointer. (Retaining s itself would be cheaper, but storing a parameter
// makes it escape — and with it the caller's whole roots slice, breaking
// the zero-alloc steady state.)
func (c *FPCache) leafString(s string) FP {
	key := fpLeafKey{ptr: uintptr(unsafe.Pointer(unsafe.StringData(s))), n: len(s)}
	if ent := c.leaves[key]; ent != nil {
		if ent.buf == nil && ent.str == s {
			c.hits++
			return ent.d
		}
		c.misses++
		ent.d = bulkHash128String(s)
		ent.str = strings.Clone(s)
		ent.buf = nil
		return ent.d
	}
	c.misses++
	d := bulkHash128String(s)
	if c.bytes+int64(len(s)) <= c.budget {
		c.leaves[key] = &fpLeafEntry{d: d, str: strings.Clone(s)}
		c.bytes += int64(len(s))
	}
	return d
}

// fingerprintParallel hashes each root's frame on a small worker pool.
// ok is false when the roots alias each other (detected post hoc by
// intersecting the workers' reference tables — the same condition the
// sequential traversal detects mid-walk), in which case the caller takes
// the identical global fallback. On success the combined fingerprint is
// byte-identical to fingerprintFramed's: frames are position-independent
// and the combiner folds them in root order.
func fingerprintParallel(c *FPCache, roots []any) (FP, bool) {
	n := len(roots)
	workers := fpMaxWorkers
	if p := runtime.GOMAXPROCS(0); p < workers {
		workers = p
	}
	if n < workers {
		workers = n
	}
	encs := make([]*fpEncoder, n)
	digests := make([]FP, n)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				// Workers get fresh pooled encoders and no cache: FPCache
				// is single-goroutine state, and frame digests are
				// identical with or without it.
				e := fpPool.Get().(*fpEncoder)
				encs[i] = e
				digests[i] = e.rootDigest(roots[i], false)
			}
		}()
	}
	wg.Wait()
	aliased := false
	work := 0
	acc := encs[0].refs
	for i := 1; i < n && !aliased; i++ {
		for k := range encs[i].refs {
			if _, dup := acc[k]; dup {
				aliased = true
				break
			}
			acc[k] = 0
		}
	}
	for _, e := range encs {
		work += e.work
		e.release()
	}
	c.noteWork(work)
	if aliased {
		return FP{}, false
	}
	var top fpHash
	top.reset()
	for i := range digests {
		top.word(rootLabelHash(i))
		top.word(digests[i][0])
		top.word(digests[i][1])
	}
	return top.sum(), true
}

// bulkHash128 digests a large flat payload with four independent
// accumulator lanes, 32 bytes per round — built for memory-bandwidth
// throughput where the word-by-word streaming mix (two dependent
// multiplies per 8 bytes) runs out of ILP. Same non-cryptographic
// collision stance as fpHash. The length is folded into the lane seeds,
// so payloads of different lengths never share a tail encoding.
func bulkHash128(p []byte) FP {
	n := uint64(len(p))
	a0 := fpSeedA ^ n*fpMulA
	a1 := fpSeedB + bits.RotateLeft64(n, 23)
	a2 := fpMulA ^ bits.RotateLeft64(n, 43)
	a3 := fpMulB + n*fpSeedB
	for len(p) >= 32 {
		a0 = bits.RotateLeft64(a0^(binary.LittleEndian.Uint64(p)*fpBulkM1), 29) * fpBulkM2
		a1 = bits.RotateLeft64(a1^(binary.LittleEndian.Uint64(p[8:])*fpBulkM2), 31) * fpBulkM1
		a2 = bits.RotateLeft64(a2^(binary.LittleEndian.Uint64(p[16:])*fpBulkM1), 33) * fpBulkM2
		a3 = bits.RotateLeft64(a3^(binary.LittleEndian.Uint64(p[24:])*fpBulkM2), 37) * fpBulkM1
		p = p[32:]
	}
	for len(p) >= 8 {
		a0, a1, a2, a3 = a1, a2, a3, bits.RotateLeft64(a0^(binary.LittleEndian.Uint64(p)*fpBulkM1), 27)*fpBulkM2
		p = p[8:]
	}
	if len(p) > 0 {
		var tail uint64
		for i := len(p) - 1; i >= 0; i-- {
			tail = tail<<8 | uint64(p[i])
		}
		a0 = bits.RotateLeft64(a0^(tail*fpBulkM1), 25) * fpBulkM2
	}
	h0 := fmix64(a0 ^ bits.RotateLeft64(a1, 13) ^ bits.RotateLeft64(a2, 29) ^ bits.RotateLeft64(a3, 47))
	h1 := fmix64((a1 + a0*fpMulA) ^ (bits.RotateLeft64(a3, 17) + a2*fpMulB))
	return FP{h0, h1}
}

const (
	fpBulkM1 = 0x87c37b91114253d5
	fpBulkM2 = 0x4cf5ad432745937f
)

// bulkHash128String is bulkHash128 over a string's bytes without copying.
func bulkHash128String(s string) FP {
	if len(s) == 0 {
		return bulkHash128(nil)
	}
	return bulkHash128(unsafe.Slice(unsafe.StringData(s), len(s)))
}
