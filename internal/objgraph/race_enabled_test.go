//go:build race

package objgraph

// raceEnabled reports whether the race detector is active; its runtime
// instruments allocations, so the exact-count allocation guards skip.
const raceEnabled = true
