package objgraph

import (
	"strings"
	"testing"
)

type point struct {
	X, Y int
}

type node struct {
	Value int
	Next  *node
}

type box struct {
	Name   string
	P      *point
	Tags   []string
	Counts map[string]int
	Any    any
}

func TestCaptureScalarEquality(t *testing.T) {
	tests := []struct {
		name string
		a, b any
		want bool
	}{
		{name: "equal ints", a: 3, b: 3, want: true},
		{name: "different ints", a: 3, b: 4, want: false},
		{name: "equal strings", a: "abc", b: "abc", want: true},
		{name: "different strings", a: "abc", b: "abd", want: false},
		{name: "equal bools", a: true, b: true, want: true},
		{name: "different bools", a: true, b: false, want: false},
		{name: "equal floats", a: 1.5, b: 1.5, want: true},
		{name: "different floats", a: 1.5, b: 1.6, want: false},
		{name: "nan equals nan bitwise", a: float64(0) / 1, b: float64(0) / 1, want: true},
		{name: "int vs int64 types differ", a: int(3), b: int64(3), want: false},
		{name: "nil vs nil", a: nil, b: nil, want: true},
		{name: "nil vs value", a: nil, b: 1, want: false},
		{name: "equal complex", a: complex(1, 2), b: complex(1, 2), want: true},
		{name: "different complex", a: complex(1, 2), b: complex(1, 3), want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Equal(Capture(tt.a), Capture(tt.b))
			if got != tt.want {
				t.Fatalf("Equal(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCaptureStructAndPointer(t *testing.T) {
	a := &box{Name: "a", P: &point{X: 1, Y: 2}, Tags: []string{"t1"}}
	same := &box{Name: "a", P: &point{X: 1, Y: 2}, Tags: []string{"t1"}}
	if !Equal(Capture(a), Capture(same)) {
		t.Fatal("structurally identical boxes should compare equal")
	}
	diffY := &box{Name: "a", P: &point{X: 1, Y: 3}, Tags: []string{"t1"}}
	d := Diff(Capture(a), Capture(diffY))
	if d == "" {
		t.Fatal("expected a difference")
	}
	if !strings.Contains(d, "Y") {
		t.Fatalf("diff should name the changed field, got %q", d)
	}
}

func TestCaptureDetectsMutation(t *testing.T) {
	b := &box{Name: "n", P: &point{X: 1}, Counts: map[string]int{"a": 1}}
	before := Capture(b)
	b.P.X = 2
	after := Capture(b)
	if Equal(before, after) {
		t.Fatal("mutation through pointer must be detected")
	}
	b.P.X = 1
	restored := Capture(b)
	if !Equal(before, restored) {
		t.Fatalf("reverting the mutation must restore equality: %s", Diff(before, restored))
	}
}

func TestCaptureAliasingStructure(t *testing.T) {
	shared := &point{X: 1}
	aliased := struct{ A, B *point }{A: shared, B: shared}
	distinct := struct{ A, B *point }{A: &point{X: 1}, B: &point{X: 1}}

	// Definition 1: two pointers to the same object share one child node;
	// pointers to equal but distinct objects do not.
	if Equal(Capture(&aliased), Capture(&distinct)) {
		t.Fatal("aliased and unaliased graphs must differ")
	}
	aliased2 := struct{ A, B *point }{}
	p := &point{X: 1}
	aliased2.A, aliased2.B = p, p
	if !Equal(Capture(&aliased), Capture(&aliased2)) {
		t.Fatal("two graphs with the same aliasing structure must be equal")
	}
}

func TestCaptureCycles(t *testing.T) {
	ring := func(vals ...int) *node {
		head := &node{Value: vals[0]}
		cur := head
		for _, v := range vals[1:] {
			cur.Next = &node{Value: v}
			cur = cur.Next
		}
		cur.Next = head
		return head
	}
	a := ring(1, 2, 3)
	b := ring(1, 2, 3)
	if !Equal(Capture(a), Capture(b)) {
		t.Fatal("identical rings must be equal")
	}
	c := ring(1, 2, 4)
	if Equal(Capture(a), Capture(c)) {
		t.Fatal("rings with different values must differ")
	}
	// Self-loop vs two-cycle.
	self := &node{Value: 1}
	self.Next = self
	two := &node{Value: 1, Next: &node{Value: 1}}
	two.Next.Next = two
	if Equal(Capture(self), Capture(two)) {
		t.Fatal("self-loop and 2-cycle must differ")
	}
}

func TestCaptureMapsDeterministic(t *testing.T) {
	a := map[string]int{"x": 1, "y": 2, "z": 3}
	b := map[string]int{"z": 3, "x": 1, "y": 2}
	for i := 0; i < 50; i++ {
		if !Equal(Capture(a), Capture(b)) {
			t.Fatal("map encoding must not depend on iteration order")
		}
	}
	c := map[string]int{"x": 1, "y": 2, "z": 4}
	if Equal(Capture(a), Capture(c)) {
		t.Fatal("changed map value must be detected")
	}
	d := map[string]int{"x": 1, "y": 2}
	if Equal(Capture(a), Capture(d)) {
		t.Fatal("removed map key must be detected")
	}
}

func TestCaptureMapPointerKeysByContent(t *testing.T) {
	k1, k2 := &point{X: 1}, &point{X: 2}
	a := map[*point]string{k1: "one", k2: "two"}
	// Distinct pointers with the same contents: graphs are isomorphic.
	b := map[*point]string{{X: 1}: "one", {X: 2}: "two"}
	if !Equal(Capture(a), Capture(b)) {
		t.Fatal("pointer-keyed maps must compare by content, not address")
	}
}

func TestCaptureSlices(t *testing.T) {
	a := &box{Tags: []string{"a", "b"}}
	b := &box{Tags: []string{"a", "b"}}
	if !Equal(Capture(a), Capture(b)) {
		t.Fatal("equal slices must be equal")
	}
	c := &box{Tags: []string{"a", "b", "c"}}
	if Equal(Capture(a), Capture(c)) {
		t.Fatal("appended slice must be detected")
	}
	var nilBox box
	empty := &box{Tags: []string{}}
	if Equal(Capture(&nilBox), Capture(empty)) {
		t.Fatal("nil slice and empty slice differ structurally")
	}
}

func TestCaptureInterfaceField(t *testing.T) {
	a := &box{Any: &point{X: 5}}
	b := &box{Any: &point{X: 5}}
	if !Equal(Capture(a), Capture(b)) {
		t.Fatal("equal dynamic values must be equal")
	}
	c := &box{Any: &point{X: 6}}
	if Equal(Capture(a), Capture(c)) {
		t.Fatal("dynamic value change must be detected")
	}
	d := &box{Any: point{X: 5}}
	if Equal(Capture(a), Capture(d)) {
		t.Fatal("pointer vs value dynamic type must differ")
	}
}

type hidden struct {
	Visible int
	secret  int
}

func TestCaptureReadsUnexportedFields(t *testing.T) {
	a := &hidden{Visible: 1, secret: 2}
	b := &hidden{Visible: 1, secret: 3}
	if Equal(Capture(a), Capture(b)) {
		t.Fatal("unexported field differences must be detected")
	}
	c := &hidden{Visible: 1, secret: 2}
	if !Equal(Capture(a), Capture(c)) {
		t.Fatal("equal unexported fields must compare equal")
	}
}

func TestCaptureChanIdentity(t *testing.T) {
	ch1 := make(chan int)
	ch2 := make(chan int)
	type holder struct{ C chan int }
	a := &holder{C: ch1}
	before := Capture(a)
	if !Equal(before, Capture(a)) {
		t.Fatal("same channel must compare equal to itself")
	}
	a.C = ch2
	if Equal(before, Capture(a)) {
		t.Fatal("channel replacement must be detected")
	}
}

func TestCaptureMultipleRoots(t *testing.T) {
	p := &point{X: 1}
	q := &point{X: 2}
	g1 := Capture(p, q)
	g2 := Capture(p, q)
	if !Equal(g1, g2) {
		t.Fatal("same roots must be equal")
	}
	q.X = 3
	if Equal(g1, Capture(p, q)) {
		t.Fatal("mutation of second root must be detected")
	}
	if len(g1.Roots()) != 2 {
		t.Fatalf("expected 2 roots, got %d", len(g1.Roots()))
	}
}

func TestCaptureAliasingAcrossRoots(t *testing.T) {
	shared := &point{X: 1}
	g1 := Capture(shared, shared)
	g2 := Capture(&point{X: 1}, &point{X: 1})
	if Equal(g1, g2) {
		t.Fatal("aliasing across roots must be part of the graph")
	}
}

func TestGraphStats(t *testing.T) {
	g := Capture(&box{Name: "hello", Tags: []string{"a", "b"}})
	if g.Nodes() == 0 {
		t.Fatal("expected nonzero node count")
	}
	if g.Bytes() < len("hello")+2 {
		t.Fatalf("byte accounting too small: %d", g.Bytes())
	}
}

func TestDiffPathNamesFields(t *testing.T) {
	a := &node{Value: 1, Next: &node{Value: 2}}
	b := &node{Value: 1, Next: &node{Value: 3}}
	d := Diff(Capture(a), Capture(b))
	if !strings.Contains(d, "Next") || !strings.Contains(d, "Value") {
		t.Fatalf("diff path should walk Next.Value, got %q", d)
	}
}

func TestDiffEmptyForEqualGraphs(t *testing.T) {
	a := &box{Name: "x", Counts: map[string]int{"k": 1}}
	if d := Diff(Capture(a), Capture(a)); d != "" {
		t.Fatalf("expected empty diff, got %q", d)
	}
}

func TestDiffNilGraphs(t *testing.T) {
	if d := Diff(nil, nil); d != "" {
		t.Fatalf("nil,nil should be equal, got %q", d)
	}
	if d := Diff(nil, Capture(1)); d == "" {
		t.Fatal("nil vs non-nil must differ")
	}
}
