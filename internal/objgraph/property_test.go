package objgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randTree is a randomly generated object graph used by the property tests.
type randTree struct {
	Value    int
	Name     string
	Flags    []bool
	Index    map[string]int
	Children []*randTree
	Link     *randTree // may alias an ancestor (cycle) or sibling
}

// genTree builds a pseudo-random tree of bounded size, sometimes with
// aliases and cycles.
func genTree(r *rand.Rand, depth int, pool *[]*randTree) *randTree {
	t := &randTree{
		Value: r.Intn(100),
		Name:  string(rune('a' + r.Intn(26))),
	}
	*pool = append(*pool, t)
	for i := 0; i < r.Intn(3); i++ {
		t.Flags = append(t.Flags, r.Intn(2) == 0)
	}
	if r.Intn(2) == 0 {
		t.Index = map[string]int{"k1": r.Intn(10), "k2": r.Intn(10)}
	}
	if depth > 0 {
		for i := 0; i < r.Intn(3); i++ {
			t.Children = append(t.Children, genTree(r, depth-1, pool))
		}
	}
	if len(*pool) > 1 && r.Intn(3) == 0 {
		t.Link = (*pool)[r.Intn(len(*pool))] // alias, possibly cyclic
	}
	return t
}

func TestQuickCaptureIsDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var pool []*randTree
		tree := genTree(r, 4, &pool)
		return Equal(Capture(tree), Capture(tree))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMutationIsDetectedAndRevertible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var pool []*randTree
		tree := genTree(r, 4, &pool)
		before := Capture(tree)

		// Mutate a random node's scalar.
		victim := pool[r.Intn(len(pool))]
		old := victim.Value
		victim.Value = old + 1
		if Equal(before, Capture(tree)) {
			// The victim may be unreachable only if it isn't in the tree;
			// every pool node is reachable by construction, so a missed
			// mutation is a failure.
			return false
		}
		victim.Value = old
		return Equal(before, Capture(tree))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStructuralMutations(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var pool []*randTree
		tree := genTree(r, 3, &pool)
		before := Capture(tree)

		switch r.Intn(4) {
		case 0: // grow a child
			tree.Children = append(tree.Children, &randTree{Value: -1})
		case 1: // add a map entry
			if tree.Index == nil {
				tree.Index = map[string]int{}
			}
			tree.Index["new"] = 1
		case 2: // retarget the link
			tree.Link = &randTree{Value: -2}
		case 3: // append a flag
			tree.Flags = append(tree.Flags, true)
		}
		return !Equal(before, Capture(tree))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeySigTotalOrderStable(t *testing.T) {
	// Capturing the same map many times must always produce the same
	// encoding regardless of Go's randomized map iteration.
	m := map[int]string{}
	for i := 0; i < 64; i++ {
		m[i] = string(rune('a' + i%26))
	}
	base := Capture(m)
	for i := 0; i < 100; i++ {
		if !Equal(base, Capture(m)) {
			t.Fatal("map capture must be order-independent")
		}
	}
}
