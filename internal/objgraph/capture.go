package objgraph

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
	"sync/atomic"
)

// refKey identifies a reference (pointer, map, slice) for aliasing
// detection. Slices additionally carry their length: two slice headers over
// the same backing array with the same length are the same reference.
type refKey struct {
	ptr uintptr
	typ reflect.Type
	aux int
}

type encoder struct {
	refs  map[refKey]int
	next  int
	nodes int
	bytes int
}

// prevRefCount remembers the reference count of the most recent Capture so
// the next one can pre-size its refs map. Campaigns snapshot the same
// receiver shapes over and over; one run's count is a good prediction for
// the next and a stale value only costs a resize.
var prevRefCount atomic.Int64

// Capture encodes the object graphs rooted at the given values into a
// single immutable Graph. Roots are typically the receiver of a wrapped
// method plus any by-reference arguments ("all arguments that are passed in
// as non-constant references are also part of this copy", §4.1).
func Capture(roots ...any) *Graph {
	enc := &encoder{refs: make(map[refKey]int, prevRefCount.Load())}
	g := &Graph{roots: make([]*Node, 0, len(roots))}
	for i, r := range roots {
		if r == nil {
			g.roots = append(g.roots, enc.leaf(KindNil, "", rootLabel(i)))
			continue
		}
		g.roots = append(g.roots, enc.encode(reflect.ValueOf(r), rootLabel(i)))
	}
	g.nodes = enc.nodes
	g.bytes = enc.bytes
	prevRefCount.Store(int64(enc.next))
	return g
}

func (e *encoder) leaf(kind Kind, typ, label string) *Node {
	e.nodes++
	return &Node{Kind: kind, Type: typ, Label: label}
}

func (e *encoder) encode(v reflect.Value, label string) *Node {
	if !v.IsValid() {
		return e.leaf(KindNil, "", label)
	}
	pl := planFor(v.Type())
	typ := pl.typeStr
	switch pl.kind {
	case reflect.Bool:
		n := e.leaf(KindBool, typ, label)
		if v.Bool() {
			n.Bits = 1
		}
		e.bytes++
		return n
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n := e.leaf(KindInt, typ, label)
		n.Bits = uint64(v.Int())
		e.bytes += pl.size
		return n
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		n := e.leaf(KindUint, typ, label)
		n.Bits = v.Uint()
		e.bytes += pl.size
		return n
	case reflect.Float32, reflect.Float64:
		n := e.leaf(KindFloat, typ, label)
		n.Bits = math.Float64bits(v.Float())
		e.bytes += pl.size
		return n
	case reflect.Complex64, reflect.Complex128:
		n := e.leaf(KindComplex, typ, label)
		n.Str = strconv.FormatComplex(v.Complex(), 'g', -1, 128)
		e.bytes += pl.size
		return n
	case reflect.String:
		n := e.leaf(KindString, typ, label)
		n.Str = v.String()
		e.bytes += len(n.Str)
		return n
	case reflect.Pointer:
		if v.IsNil() {
			return e.leaf(KindNil, typ, label)
		}
		key := refKey{ptr: v.Pointer(), typ: v.Type()}
		if id, ok := e.refs[key]; ok {
			n := e.leaf(KindPointer, typ, label)
			n.Ref = id
			n.Backref = true
			return n
		}
		e.next++
		id := e.next
		e.refs[key] = id
		n := e.leaf(KindPointer, typ, label)
		n.Ref = id
		n.Children = []*Node{e.encode(v.Elem(), "*")}
		return n
	case reflect.Slice:
		if v.IsNil() {
			return e.leaf(KindNil, typ, label)
		}
		key := refKey{ptr: v.Pointer(), typ: v.Type(), aux: v.Len()}
		if id, ok := e.refs[key]; ok {
			n := e.leaf(KindSlice, typ, label)
			n.Ref = id
			n.Backref = true
			return n
		}
		e.next++
		id := e.next
		e.refs[key] = id
		n := e.leaf(KindSlice, typ, label)
		n.Ref = id
		n.Bits = uint64(v.Len())
		// Bulk fast path: byte slices encode as one payload (content
		// equality; a difference reports at the slice, not the index).
		if pl.byteElem {
			if v.CanInterface() {
				n.Str = string(v.Bytes())
			} else {
				// Unexported field: Bytes() is forbidden; copy manually.
				raw := make([]byte, v.Len())
				for i := range raw {
					raw[i] = byte(v.Index(i).Uint())
				}
				n.Str = string(raw)
			}
			e.bytes += v.Len()
			return n
		}
		n.Children = make([]*Node, v.Len())
		for i := 0; i < v.Len(); i++ {
			n.Children[i] = e.encode(v.Index(i), indexLabel(i))
		}
		return n
	case reflect.Array:
		n := e.leaf(KindArray, typ, label)
		n.Bits = uint64(v.Len())
		n.Children = make([]*Node, v.Len())
		for i := 0; i < v.Len(); i++ {
			n.Children[i] = e.encode(v.Index(i), indexLabel(i))
		}
		return n
	case reflect.Map:
		if v.IsNil() {
			return e.leaf(KindNil, typ, label)
		}
		key := refKey{ptr: v.Pointer(), typ: v.Type()}
		if id, ok := e.refs[key]; ok {
			n := e.leaf(KindMap, typ, label)
			n.Ref = id
			n.Backref = true
			return n
		}
		e.next++
		id := e.next
		e.refs[key] = id
		n := e.leaf(KindMap, typ, label)
		n.Ref = id
		n.Bits = uint64(v.Len())
		keys := v.MapKeys()
		type mapEntry struct {
			sig string
			key reflect.Value
		}
		entries := make([]mapEntry, len(keys))
		for i, k := range keys {
			entries[i] = mapEntry{sig: keySig(k), key: k}
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].sig < entries[j].sig })
		n.Children = make([]*Node, len(entries))
		for i, ent := range entries {
			child := e.leaf(KindEntry, "", ent.sig)
			child.Children = []*Node{e.encode(v.MapIndex(ent.key), "value")}
			n.Children[i] = child
		}
		return n
	case reflect.Struct:
		n := e.leaf(KindStruct, typ, label)
		n.Children = make([]*Node, 0, len(pl.fields))
		for _, f := range pl.fields {
			n.Children = append(n.Children, e.encode(v.Field(f.index), f.name))
		}
		return n
	case reflect.Interface:
		if v.IsNil() {
			return e.leaf(KindNil, typ, label)
		}
		n := e.leaf(KindInterface, typ, label)
		n.Children = []*Node{e.encode(v.Elem(), "dyn")}
		return n
	case reflect.Chan:
		if v.IsNil() {
			return e.leaf(KindNil, typ, label)
		}
		n := e.leaf(KindChan, typ, label)
		n.Bits = uint64(v.Pointer())
		return n
	case reflect.Func:
		if v.IsNil() {
			return e.leaf(KindNil, typ, label)
		}
		n := e.leaf(KindFunc, typ, label)
		n.Bits = uint64(v.Pointer())
		return n
	default:
		// UnsafePointer and anything future: identity-compared opaque.
		n := e.leaf(KindOpaque, typ, label)
		if v.CanAddr() || pl.kind == reflect.UnsafePointer {
			n.Str = fmt.Sprintf("%v-opaque", pl.kind)
		}
		return n
	}
}

// keySig returns a canonical string for a map key, used only to order map
// entries deterministically and to label entry nodes. Pointer keys sort by
// the *content* of their pointee (bounded depth), matching the paper's
// serialization-based comparison where graphs are compared structurally,
// not by address. Two distinct keys with identical content sigs sort
// ambiguously; this is a documented residual limitation.
func keySig(v reflect.Value) string {
	return keySigDepth(v, 8)
}

func keySigDepth(v reflect.Value, depth int) string {
	if depth <= 0 {
		return "deep"
	}
	switch v.Kind() {
	case reflect.Bool:
		return strconv.FormatBool(v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return "i" + strconv.FormatInt(v.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return "u" + strconv.FormatUint(v.Uint(), 10)
	case reflect.Float32, reflect.Float64:
		return "f" + strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case reflect.Complex64, reflect.Complex128:
		return "c" + strconv.FormatComplex(v.Complex(), 'g', -1, 128)
	case reflect.String:
		return "s" + v.String()
	case reflect.Pointer:
		if v.IsNil() {
			return "p0"
		}
		return "p*" + keySigDepth(v.Elem(), depth-1)
	case reflect.Chan, reflect.UnsafePointer:
		if v.IsNil() {
			return "h0"
		}
		return "h" + strconv.FormatUint(uint64(v.Pointer()), 16)
	case reflect.Interface:
		if v.IsNil() {
			return "n"
		}
		return "I" + v.Elem().Type().String() + ":" + keySigDepth(v.Elem(), depth-1)
	case reflect.Array:
		sig := "a["
		for i := 0; i < v.Len(); i++ {
			sig += keySigDepth(v.Index(i), depth-1) + ","
		}
		return sig + "]"
	case reflect.Struct:
		sig := "t{"
		for i := 0; i < v.NumField(); i++ {
			sig += v.Type().Field(i).Name + "=" + keySigDepth(v.Field(i), depth-1) + ","
		}
		return sig + "}"
	default:
		return "?" + v.Kind().String()
	}
}
