package objgraph

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// Test graph shapes for the incremental-cache properties. Three families
// stress the three cache tiers: a linked list of framed payloads (leaf
// replay), a binary search tree (structural rehash, no large leaves), and
// a flat payload struct (single dominant leaf).

type fpList struct {
	V       int
	Payload []byte
	Next    *fpList
}

func genList(r *rand.Rand, n int) *fpList {
	var head *fpList
	for i := 0; i < n; i++ {
		p := make([]byte, 2048)
		r.Read(p)
		head = &fpList{V: r.Int(), Payload: p, Next: head}
	}
	return head
}

type fpTree struct {
	Key         int
	Red         bool
	Left, Right *fpTree
}

func genBST(r *rand.Rand, n int) *fpTree {
	var root *fpTree
	var insert func(t *fpTree, k int) *fpTree
	insert = func(t *fpTree, k int) *fpTree {
		if t == nil {
			return &fpTree{Key: k, Red: k%2 == 0}
		}
		if k < t.Key {
			t.Left = insert(t.Left, k)
		} else {
			t.Right = insert(t.Right, k)
		}
		return t
	}
	for i := 0; i < n; i++ {
		root = insert(root, r.Intn(1<<20))
	}
	return root
}

type fpFlat struct {
	Name string
	Blob []byte
	Seq  uint64
}

func genFlat(r *rand.Rand, n int) *fpFlat {
	b := make([]byte, n)
	r.Read(b)
	return &fpFlat{Name: "payload", Blob: b, Seq: r.Uint64()}
}

// mutate applies one random in-place mutation to whichever graph family
// root points at, mirroring the session-visible state classes.
func mutateGraph(r *rand.Rand, root any) {
	switch g := root.(type) {
	case *fpList:
		n := g
		for i := r.Intn(8); i > 0 && n.Next != nil; i-- {
			n = n.Next
		}
		switch r.Intn(3) {
		case 0:
			n.V++
		case 1:
			n.Payload[r.Intn(len(n.Payload))] ^= 0xff
		default:
			n.Next = &fpList{V: -1, Payload: []byte("fresh"), Next: n.Next}
		}
	case *fpTree:
		n := g
		for n.Left != nil && r.Intn(2) == 0 {
			n = n.Left
		}
		switch r.Intn(3) {
		case 0:
			n.Key++
		case 1:
			n.Red = !n.Red
		default:
			n.Right = &fpTree{Key: -1, Left: n.Right}
		}
	case *fpFlat:
		switch r.Intn(3) {
		case 0:
			g.Blob[r.Intn(len(g.Blob))]++
		case 1:
			g.Seq++
		default:
			g.Name += "x"
		}
	}
}

// TestFPCachePropertyMutationSequences is the satellite property test:
// over random mutation sequences, the cached fingerprint equals the cold
// fingerprint at every step, and fingerprint equality tracks Capture
// equality against the pre-mutation baseline.
func TestFPCachePropertyMutationSequences(t *testing.T) {
	r := rand.New(rand.NewSource(0x5eed))
	graphs := []struct {
		name string
		root any
	}{
		{"linked-list", genList(r, 16)},
		{"bst", genBST(r, 64)},
		{"flat-payload", genFlat(r, 8192)},
	}
	for _, g := range graphs {
		t.Run(g.name, func(t *testing.T) {
			c := NewFPCache(0)
			base := Capture(g.root)
			baseFP := Fingerprint(g.root)
			if got := FingerprintCached(c, g.root); got != baseFP {
				t.Fatalf("initial cached fp %x != cold %x", got, baseFP)
			}
			for step := 0; step < 40; step++ {
				mutateGraph(r, g.root)
				// The session contract: every mutation window is preceded
				// by a generation bump.
				c.Bump()
				cold := Fingerprint(g.root)
				cached := FingerprintCached(c, g.root)
				if cached != cold {
					t.Fatalf("step %d: cached fp %x != cold %x", step, cached, cold)
				}
				// Replay from a warm cache must agree too.
				if again := FingerprintCached(c, g.root); again != cold {
					t.Fatalf("step %d: warm replay %x != cold %x", step, again, cold)
				}
				now := Capture(g.root)
				if Equal(base, now) != (cold == baseFP) {
					t.Fatalf("step %d: capture-equality %v disagrees with fp-equality %v",
						step, Equal(base, now), cold == baseFP)
				}
			}
		})
	}
}

// TestFPCacheConcurrentSessions runs independent caches over a shared
// read-only graph from many goroutines, under -race: caches are
// per-session, so no sharing may occur through the graph itself.
func TestFPCacheConcurrentSessions(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	shared := genList(r, 32)
	want := Fingerprint(shared)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewFPCache(0)
			for i := 0; i < 50; i++ {
				if got := FingerprintCached(c, shared); got != want {
					t.Errorf("worker %d iter %d: fp %x != cold %x", w, i, got, want)
					return
				}
				if i%10 == 9 {
					c.Bump()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestFPCacheParallelMatchesSequential pins the determinism requirement on
// the parallel-lane path: a multi-root traversal big enough to fan out
// must produce a byte-identical fingerprint to the sequential engine —
// and with aliased roots, the parallel attempt must fall back without
// changing the result.
func TestFPCacheParallelMatchesSequential(t *testing.T) {
	// Force the eligibility gate open even on single-CPU runners: the
	// determinism property must hold regardless of real parallelism.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	r := rand.New(rand.NewSource(11))
	roots := make([]any, 4)
	for i := range roots {
		roots[i] = genFlat(r, 128<<10)
	}
	want := Fingerprint(roots...)

	c := NewFPCache(0)
	// First call is sequential (lastWork starts 0) and primes the work
	// signal; the second call is parallel-eligible.
	first := FingerprintCached(c, roots...)
	if first != want {
		t.Fatalf("priming call fp %x != sequential %x", first, want)
	}
	if !c.parallelEligible(len(roots)) {
		t.Fatalf("parallel path not eligible; lastWork=%d", c.lastWork)
	}
	for i := 0; i < 3; i++ {
		if got := FingerprintCached(c, roots...); got != want {
			t.Fatalf("parallel call %d fp %x != sequential %x", i, got, want)
		}
	}

	// Aliased roots: root 3 shares a subgraph with root 0. The parallel
	// lanes detect the intersection post hoc and defer to the global
	// engine, which must agree with the cold global fingerprint.
	aliased := []any{roots[0], roots[1], roots[2], roots[0]}
	wantAliased := Fingerprint(aliased...)
	FingerprintCached(c, roots...) // re-prime lastWork
	if got := FingerprintCached(c, aliased...); got != wantAliased {
		t.Fatalf("aliased parallel fp %x != cold %x", got, wantAliased)
	}
}

// TestFPCachePooledEncoderReuse interleaves calls that abort mid-frame
// (cross-root aliases panic out of the framed engine) with clean calls:
// pooled encoders must come back reset, leaving no state leak that could
// perturb a later fingerprint.
func TestFPCachePooledEncoderReuse(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	a, b := genList(r, 8), genBST(r, 32)
	cleanWant := Fingerprint(a)
	aliasWant := Fingerprint(a, b, a)
	c := NewFPCache(0)
	for i := 0; i < 20; i++ {
		if got := FingerprintCached(c, a, b, a); got != aliasWant {
			t.Fatalf("iter %d: aliased fp %x != %x", i, got, aliasWant)
		}
		if got := FingerprintCached(c, a); got != cleanWant {
			t.Fatalf("iter %d: clean fp %x != %x", i, got, cleanWant)
		}
		if got := Fingerprint(a); got != cleanWant {
			t.Fatalf("iter %d: uncached fp %x != %x after aborted frames", i, got, cleanWant)
		}
	}
}

// TestFPCacheBudget: a tiny budget blocks new leaf pinning — Bytes stays
// within budget and fingerprints remain correct, just uncached.
func TestFPCacheBudget(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	root := genFlat(r, 64<<10)
	want := Fingerprint(root)
	c := NewFPCache(16) // far below the 64 KiB leaf
	for i := 0; i < 5; i++ {
		// Bump so the (byte-free) root-frame cache cannot hit; only an
		// admitted leaf could, and the budget forbids admitting one.
		c.Bump()
		if got := FingerprintCached(c, root); got != want {
			t.Fatalf("iter %d: fp %x != %x under tiny budget", i, got, want)
		}
	}
	st := c.Stats()
	if st.Bytes > 16 {
		t.Errorf("cache pinned %d bytes > budget 16", st.Bytes)
	}
	if st.Hits != 0 {
		t.Errorf("hits = %d, want 0 (nothing should have been admitted)", st.Hits)
	}
}

// TestFPCacheStatsMove: a warm replay over an unchanged graph registers
// hits; a bumped generation with a real mutation registers fresh misses.
func TestFPCacheStatsMove(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	root := genFlat(r, 8<<10)
	c := NewFPCache(0)
	FingerprintCached(c, root)
	cold := c.Stats()
	if cold.Misses == 0 {
		t.Fatal("cold call recorded no misses")
	}
	FingerprintCached(c, root)
	warm := c.Stats()
	if warm.Hits <= cold.Hits {
		t.Errorf("warm replay did not hit: %+v -> %+v", cold, warm)
	}
	if warm.Bytes <= 0 {
		t.Errorf("warm Bytes = %d, want > 0", warm.Bytes)
	}
}

// TestFPCacheSteadyStateZeroAlloc: warm cached fingerprints of an
// unchanged graph allocate nothing, same as the uncached guarantee in
// TestFingerprintZeroAlloc.
func TestFPCacheSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime adds allocations; exact counts only hold without -race")
	}
	r := rand.New(rand.NewSource(53))
	root := genFlat(r, 32<<10)
	c := NewFPCache(0)
	FingerprintCached(c, root) // populate
	if n := testing.AllocsPerRun(100, func() { FingerprintCached(c, root) }); n != 0 {
		t.Errorf("warm cached fingerprint allocates %v/op, want 0", n)
	}
}

// TestFPCacheGenerationInvalidation: without a Bump, the single-root
// frame cache replays the stale digest by contract (the session always
// bumps before mutating); with a Bump it re-hashes and sees the change.
func TestFPCacheGenerationInvalidation(t *testing.T) {
	root := &fpTree{Key: 1}
	c := NewFPCache(0)
	before := FingerprintCached(c, root)
	root.Key = 2
	if got := FingerprintCached(c, root); got != before {
		t.Fatalf("unbumped mutation was observed: %x != %x (gen gate broken)", got, before)
	}
	c.Bump()
	after := FingerprintCached(c, root)
	if after == before {
		t.Fatal("bumped mutation not observed")
	}
	if want := Fingerprint(root); after != want {
		t.Fatalf("post-bump fp %x != cold %x", after, want)
	}
}
