package objgraph

import (
	"testing"
)

// Coverage for the less common encoder paths: every scalar kind, complex
// numbers, arrays, funcs, uintptrs, deep/composite map keys, and the Kind
// stringer.

type kitchenSink struct {
	U8   uint8
	U64  uint64
	UP   uintptr
	F32  float32
	C64  complex64
	C128 complex128
	Arr  [2]int
	Fn   func()
	Any  any
}

func TestCaptureKitchenSink(t *testing.T) {
	f := func() {}
	a := &kitchenSink{
		U8: 1, U64: 2, UP: 3, F32: 4.5,
		C64: complex(1, 2), C128: complex(3, 4),
		Arr: [2]int{7, 8},
		Fn:  f,
		Any: [2]string{"x", "y"},
	}
	b := &kitchenSink{
		U8: 1, U64: 2, UP: 3, F32: 4.5,
		C64: complex(1, 2), C128: complex(3, 4),
		Arr: [2]int{7, 8},
		Fn:  f,
		Any: [2]string{"x", "y"},
	}
	if !Equal(Capture(a), Capture(b)) {
		t.Fatalf("identical sinks must be equal: %s", Diff(Capture(a), Capture(b)))
	}
	b.C128 = complex(3, 5)
	if Equal(Capture(a), Capture(b)) {
		t.Fatal("complex change must be detected")
	}
	b.C128 = a.C128
	b.Arr[1] = 9
	if Equal(Capture(a), Capture(b)) {
		t.Fatal("array change must be detected")
	}
	b.Arr = a.Arr
	b.Fn = func() {}
	if Equal(Capture(a), Capture(b)) {
		t.Fatal("func identity change must be detected")
	}
}

func TestCaptureNilFuncAndChan(t *testing.T) {
	type holder struct {
		Fn func()
		Ch chan int
	}
	a := &holder{}
	b := &holder{Fn: func() {}, Ch: make(chan int)}
	if Equal(Capture(a), Capture(b)) {
		t.Fatal("nil vs non-nil references must differ")
	}
	if !Equal(Capture(a), Capture(&holder{})) {
		t.Fatal("both-nil must be equal")
	}
}

func TestMapCompositeKeys(t *testing.T) {
	type key struct {
		A int
		B string
	}
	m1 := map[key]int{{A: 1, B: "x"}: 10, {A: 2, B: "y"}: 20}
	m2 := map[key]int{{A: 2, B: "y"}: 20, {A: 1, B: "x"}: 10}
	for i := 0; i < 30; i++ {
		if !Equal(Capture(m1), Capture(m2)) {
			t.Fatal("struct-keyed maps must encode order-independently")
		}
	}
	m2[key{A: 1, B: "x"}] = 11
	if Equal(Capture(m1), Capture(m2)) {
		t.Fatal("value change under struct key must be detected")
	}
}

func TestMapArrayAndInterfaceKeys(t *testing.T) {
	ma := map[[2]int]string{{1, 2}: "a", {3, 4}: "b"}
	mb := map[[2]int]string{{3, 4}: "b", {1, 2}: "a"}
	if !Equal(Capture(ma), Capture(mb)) {
		t.Fatal("array-keyed maps must encode order-independently")
	}
	mi := map[any]int{1: 1, "one": 2, true: 3, 2.5: 4}
	mj := map[any]int{"one": 2, 2.5: 4, true: 3, 1: 1}
	for i := 0; i < 30; i++ {
		if !Equal(Capture(mi), Capture(mj)) {
			t.Fatal("interface-keyed maps must encode order-independently")
		}
	}
}

func TestMapChanKeysByIdentity(t *testing.T) {
	ch := make(chan int)
	m := map[chan int]string{ch: "a"}
	if !Equal(Capture(m), Capture(m)) {
		t.Fatal("chan-keyed map must be self-equal")
	}
}

func TestMapBoolUintComplexKeys(t *testing.T) {
	m1 := map[uint32]bool{1: true, 2: false}
	m2 := map[uint32]bool{2: false, 1: true}
	if !Equal(Capture(m1), Capture(m2)) {
		t.Fatal("uint keys")
	}
	c1 := map[complex64]int{complex(1, 1): 1, complex(2, 2): 2}
	c2 := map[complex64]int{complex(2, 2): 2, complex(1, 1): 1}
	if !Equal(Capture(c1), Capture(c2)) {
		t.Fatal("complex keys")
	}
	b1 := map[bool]int{true: 1, false: 0}
	b2 := map[bool]int{false: 0, true: 1}
	if !Equal(Capture(b1), Capture(b2)) {
		t.Fatal("bool keys")
	}
}

func TestDeepPointerKeySig(t *testing.T) {
	// Pointer keys deeper than the sig depth limit fall back to "deep"
	// without crashing.
	type chain struct {
		Next *chain
		V    int
	}
	build := func(v int) *chain {
		head := &chain{V: v}
		cur := head
		for i := 0; i < 12; i++ {
			cur.Next = &chain{V: v}
			cur = cur.Next
		}
		return head
	}
	m := map[*chain]int{build(1): 1}
	if !Equal(Capture(m), Capture(m)) {
		t.Fatal("deep pointer key must be stable")
	}
}

func TestUnexportedByteSliceEncodes(t *testing.T) {
	type hiddenBlob struct {
		Visible int
		data    []byte
	}
	a := &hiddenBlob{Visible: 1, data: []byte("abc")}
	b := &hiddenBlob{Visible: 1, data: []byte("abd")}
	if Equal(Capture(a), Capture(b)) {
		t.Fatal("unexported byte-slice difference must be detected")
	}
	c := &hiddenBlob{Visible: 1, data: []byte("abc")}
	if !Equal(Capture(a), Capture(c)) {
		t.Fatal("equal unexported byte slices must be equal")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{
		KindNil, KindBool, KindInt, KindUint, KindFloat, KindComplex,
		KindString, KindPointer, KindSlice, KindArray, KindMap, KindEntry,
		KindStruct, KindInterface, KindChan, KindFunc, KindOpaque, Kind(0),
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Fatalf("empty name for kind %d", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func TestGraphRootsLabeling(t *testing.T) {
	g := Capture(1, 2, 3)
	roots := g.Roots()
	if roots[0].Label != "recv" || roots[1].Label != "arg1" || roots[2].Label != "arg2" {
		t.Fatalf("root labels: %q %q %q", roots[0].Label, roots[1].Label, roots[2].Label)
	}
}
