package objgraph

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mutateTree applies one random mutation to a generated tree, returning an
// undo closure. Mutation classes cover scalars, strings, slice shape, map
// entries and aliasing edges — the state classes Diff discriminates.
func mutateTree(r *rand.Rand, tree *randTree, pool []*randTree) func() {
	victim := pool[r.Intn(len(pool))]
	switch r.Intn(5) {
	case 0:
		old := victim.Value
		victim.Value++
		return func() { victim.Value = old }
	case 1:
		old := victim.Name
		victim.Name += "x"
		return func() { victim.Name = old }
	case 2:
		old := victim.Flags
		victim.Flags = append(append([]bool(nil), old...), true)
		return func() { victim.Flags = old }
	case 3:
		if victim.Index == nil {
			victim.Index = map[string]int{}
			return func() { victim.Index = nil }
		}
		old, had := victim.Index["k1"]
		victim.Index["k1"] = old + 7
		return func() {
			if had {
				victim.Index["k1"] = old
			} else {
				delete(victim.Index, "k1")
			}
		}
	default:
		old := victim.Link
		victim.Link = &randTree{Value: -9}
		return func() { victim.Link = old }
	}
}

// TestQuickFingerprintMatchesCapture is the tentpole equivalence property:
// on randomized graphs (cycles, aliasing, maps, slices), fingerprints
// agree exactly when the captured graphs are Equal — both before and after
// a random mutation, and again after undoing it.
func TestQuickFingerprintMatchesCapture(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var pool []*randTree
		tree := genTree(r, 4, &pool)

		beforeG := Capture(tree)
		beforeFP := Fingerprint(tree)
		if Fingerprint(tree) != beforeFP {
			return false // fingerprint must be deterministic
		}

		undo := mutateTree(r, tree, pool)
		mutatedEq := Equal(beforeG, Capture(tree))
		mutatedFPEq := Fingerprint(tree) == beforeFP
		if mutatedEq != mutatedFPEq {
			return false // engines disagree on the mutated graph
		}

		undo()
		return Equal(beforeG, Capture(tree)) == (Fingerprint(tree) == beforeFP)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFingerprintMultiRoot checks the equivalence over multi-root
// captures (receiver + by-ref args), including shared structure across
// roots, where the traversal-ordinal aliasing ids must line up.
func TestQuickFingerprintMultiRoot(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var pool []*randTree
		a := genTree(r, 3, &pool)
		b := genTree(r, 3, &pool)
		b.Link = a // cross-root alias

		g := Capture(a, b)
		fp := Fingerprint(a, b)
		if !Equal(g, Capture(a, b)) || Fingerprint(a, b) != fp {
			return false
		}
		undo := mutateTree(r, a, pool)
		eq := Equal(g, Capture(a, b))
		fpEq := Fingerprint(a, b) == fp
		undo()
		return eq == fpEq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFingerprintSingleBitCollisions is the collision-resistance sanity
// test: flipping any single bit of a scalar payload must change the
// fingerprint, and every flip must produce a distinct fingerprint.
func TestFingerprintSingleBitCollisions(t *testing.T) {
	type payload struct {
		A uint64
		B float64
		C int32
	}
	p := &payload{A: 0xDEADBEEF, B: 3.14159, C: -7}
	base := Fingerprint(p)
	seen := map[FP]string{base: "base"}

	record := func(what string) {
		fp := Fingerprint(p)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision between %s and %s", what, prev)
		}
		seen[fp] = what
	}
	for bit := 0; bit < 64; bit++ {
		p.A ^= 1 << bit
		record(fmt.Sprintf("A bit %d", bit))
		p.A ^= 1 << bit
	}
	for bit := 0; bit < 64; bit++ {
		flipped := math.Float64bits(p.B) ^ 1<<bit
		old := p.B
		p.B = math.Float64frombits(flipped)
		if !math.IsNaN(p.B) { // NaNs canonicalize by design (Capture parity)
			record(fmt.Sprintf("B bit %d", bit))
		}
		p.B = old
	}
	for bit := 0; bit < 32; bit++ {
		p.C ^= 1 << bit
		record(fmt.Sprintf("C bit %d", bit))
		p.C ^= 1 << bit
	}
	if Fingerprint(p) != base {
		t.Fatal("undo failed: fingerprint must return to base")
	}
}

// TestFingerprintSpecialValues pins equivalence on the edge cases the
// encoders special-case: NaN floats/complex (Capture collapses NaN
// payloads via FormatComplex), byte slices (bulk fast path), nil
// references, and interface dynamic types.
func TestFingerprintSpecialValues(t *testing.T) {
	type box struct {
		C  complex128
		F  float64
		Bs []byte
		P  *int
		I  any
	}
	nan1 := math.NaN()
	nan2 := math.Float64frombits(math.Float64bits(math.NaN()) ^ 1) // distinct payload
	n := 5

	cases := []struct {
		name string
		a, b *box
	}{
		{"nan payloads collapse (complex)", &box{C: complex(nan1, 1)}, &box{C: complex(nan2, 1)}},
		{"nan vs number differ", &box{C: complex(nan1, 1)}, &box{C: complex(0, 1)}},
		{"byte slices equal", &box{Bs: []byte("hello")}, &box{Bs: []byte("hello")}},
		{"byte slices differ", &box{Bs: []byte("hello")}, &box{Bs: []byte("hellO")}},
		{"nil vs set pointer", &box{}, &box{P: &n}},
		{"iface dynamic type", &box{I: int64(1)}, &box{I: uint64(1)}},
		{"iface nil vs zero", &box{}, &box{I: 0}},
	}
	for _, tc := range cases {
		wantEq := Equal(Capture(tc.a), Capture(tc.b))
		gotEq := Fingerprint(tc.a) == Fingerprint(tc.b)
		if wantEq != gotEq {
			t.Errorf("%s: Capture equal=%v but Fingerprint equal=%v", tc.name, wantEq, gotEq)
		}
	}

	// Raw-bit float semantics: Capture stores Float64bits, so two NaN
	// payloads of a plain float64 field are DISTINCT graphs and must be
	// distinct fingerprints.
	a, b := &box{F: nan1}, &box{F: nan2}
	if Equal(Capture(a), Capture(b)) != (Fingerprint(a) == Fingerprint(b)) {
		t.Error("float NaN raw-bit semantics diverge between Capture and Fingerprint")
	}
}

// TestFingerprintZeroAlloc proves the hot path allocates nothing on a
// representative receiver shape (struct + pointer + byte slice + array)
// once the type plans and the encoder pool are warm.
func TestFingerprintZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime adds allocations; exact counts only hold without -race")
	}
	type meta struct{ Words [8]uint64 }
	type payload struct {
		Data []byte
		M    meta
		Next *payload
	}
	p := &payload{Data: make([]byte, 1024)}
	p.M.Words[3] = 42
	p.Next = &payload{Data: p.Data[:16]}

	allocs := testing.AllocsPerRun(100, func() {
		Fingerprint(p)
	})
	if allocs != 0 {
		t.Fatalf("Fingerprint allocated %.1f allocs/op, want 0", allocs)
	}
}
