package objgraph

import (
	"fmt"
	"math"
	"strconv"
)

// Equal reports whether two captured graphs are isomorphic: same structure,
// same scalar values, same aliasing. This is the atomicity test of
// Definition 2 — the "before" and "after" object graphs must be identical.
func Equal(a, b *Graph) bool {
	return Diff(a, b) == ""
}

// Diff returns a human-readable description of the first difference between
// two graphs, or "" if they are equal. The path uses edge labels, e.g.
// "recv.*.head.*.next: int 3 != 4".
func Diff(a, b *Graph) string {
	if a == nil || b == nil {
		if a == b {
			return ""
		}
		return "one graph is nil"
	}
	if len(a.roots) != len(b.roots) {
		return fmt.Sprintf("root count %d != %d", len(a.roots), len(b.roots))
	}
	for i := range a.roots {
		if d := diffNode(a.roots[i], b.roots[i], a.roots[i].Label); d != "" {
			return d
		}
	}
	return ""
}

func diffNode(a, b *Node, path string) string {
	if a.Kind != b.Kind {
		return fmt.Sprintf("%s: kind %s != %s", path, a.Kind, b.Kind)
	}
	if a.Type != b.Type {
		return fmt.Sprintf("%s: type %s != %s", path, a.Type, b.Type)
	}
	if a.Label != b.Label {
		return fmt.Sprintf("%s: label %q != %q", path, a.Label, b.Label)
	}
	// Alias ids are assigned in deterministic traversal order, so equal
	// graphs have identical Ref numbering; a mismatch means the aliasing
	// structure changed.
	if a.Ref != b.Ref || a.Backref != b.Backref {
		return fmt.Sprintf("%s: aliasing changed (ref %d/%v != %d/%v)",
			path, a.Ref, a.Backref, b.Ref, b.Backref)
	}
	if a.Bits != b.Bits {
		// Chan/func identity is environment-dependent across process runs
		// but stable within one run, which is the only scope we compare in.
		return fmt.Sprintf("%s: %s %s != %s", path, a.Kind, formatBits(a), formatBits(b))
	}
	if a.Str != b.Str {
		return fmt.Sprintf("%s: %s %q != %q", path, a.Kind, a.Str, b.Str)
	}
	if len(a.Children) != len(b.Children) {
		return fmt.Sprintf("%s: child count %d != %d", path, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		ca, cb := a.Children[i], b.Children[i]
		childPath := path
		if ca.Label != "" {
			if ca.Label[0] == '[' {
				childPath += ca.Label
			} else {
				childPath += "." + ca.Label
			}
		}
		if d := diffNode(ca, cb, childPath); d != "" {
			return d
		}
	}
	return ""
}

func formatBits(n *Node) string {
	switch n.Kind {
	case KindBool:
		return strconv.FormatBool(n.Bits == 1)
	case KindInt:
		return strconv.FormatInt(int64(n.Bits), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(n.Bits), 'g', -1, 64)
	default:
		return strconv.FormatUint(n.Bits, 10)
	}
}
