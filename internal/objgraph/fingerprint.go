package objgraph

import (
	"math"
	"math/bits"
	"reflect"
	"sort"
	"sync"
)

// Fingerprint-first snapshots. Capture materializes one *Node per value,
// yet in a detection campaign the before-graph is read back on at most one
// exceptional return per run — >99% of snapshots are built and thrown
// away. Fingerprint walks the *same canonical traversal* as Capture (same
// ref-id aliasing semantics, same keySig map-key ordering, same
// distinguishing payload per node) but folds it into a streaming 128-bit
// hash: zero Node allocations, pooled encoder scratch. Two values with
// equal fingerprints have, up to hash collisions (2⁻¹²⁸-class, see
// DESIGN.md §5.8), equal Capture graphs; unequal fingerprints imply
// unequal graphs exactly. The campaign driver exploits determinism to
// recover human-readable diffs: runs whose fingerprints differ are
// re-executed once with full Capture snapshots.

// FP is a 128-bit object-graph fingerprint. The zero value is not the
// fingerprint of any graph (the hash is seeded), so FP is comparable and
// usable as a map key.
type FP [2]uint64

// Fingerprint hashes the object graphs rooted at the given values. It is
// equality-compatible with Capture: for any a, b,
//
//	Equal(Capture(a...), Capture(b...))  ⇒  Fingerprint(a...) == Fingerprint(b...)
//
// exactly, and the converse holds up to hash collisions.
func Fingerprint(roots ...any) FP {
	e := fpPool.Get().(*fpEncoder)
	e.h.reset()
	for i, r := range roots {
		if r == nil {
			e.leaf(KindNil, emptyTypeHash, rootLabelHash(i))
			continue
		}
		e.encode(reflect.ValueOf(r), rootLabelHash(i))
	}
	fp := e.h.sum()
	e.release()
	return fp
}

// Precomputed hashes of the fixed edge labels Capture emits.
var (
	emptyTypeHash = strHash64("")
	derefLabel    = strHash64("*")
	dynLabel      = strHash64("dyn")
	valueLabel    = strHash64("value")
)

// fpEncoder is the pooled traversal state: the aliasing map (refKey →
// traversal-ordinal id, exactly Capture's), the running hash, and sort
// scratch for map entries.
type fpEncoder struct {
	h       fpHash
	refs    map[refKey]int
	next    int
	entries []fpMapEntry
}

// fpMapEntry pairs a map key with its canonical signature for sorting.
type fpMapEntry struct {
	sig string
	key reflect.Value
}

var fpPool = sync.Pool{New: func() any {
	return &fpEncoder{refs: make(map[refKey]int, 64)}
}}

// release clears the aliasing state (keeping the map's buckets and the
// entries slice for reuse) and returns the encoder to the pool.
func (e *fpEncoder) release() {
	clear(e.refs)
	e.next = 0
	clear(e.entries)
	e.entries = e.entries[:0]
	fpPool.Put(e)
}

// leaf folds one node header into the hash: kind, type, edge label — the
// first three fields Diff compares.
func (e *fpEncoder) leaf(kind Kind, typeHash, labelKey uint64) {
	e.h.word(uint64(kind))
	e.h.word(typeHash)
	e.h.word(labelKey)
}

// ref folds a reference node's alias id and backref flag (Diff's aliasing
// check). Ids are traversal ordinals, identical to Capture's numbering.
func (e *fpEncoder) ref(id int, backref bool) {
	x := uint64(id) << 1
	if backref {
		x |= 1
	}
	e.h.word(x)
}

// encode mirrors encoder.encode case for case; every payload Capture
// stores on a Node (Bits, Str, Ref/Backref, child counts via Bits) is
// folded into the hash in the same traversal position.
func (e *fpEncoder) encode(v reflect.Value, labelKey uint64) {
	if !v.IsValid() {
		e.leaf(KindNil, emptyTypeHash, labelKey)
		return
	}
	pl := planFor(v.Type())
	switch pl.kind {
	case reflect.Bool:
		e.leaf(KindBool, pl.typeHash, labelKey)
		var bit uint64
		if v.Bool() {
			bit = 1
		}
		e.h.word(bit)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.leaf(KindInt, pl.typeHash, labelKey)
		e.h.word(uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		e.leaf(KindUint, pl.typeHash, labelKey)
		e.h.word(v.Uint())
	case reflect.Float32, reflect.Float64:
		e.leaf(KindFloat, pl.typeHash, labelKey)
		e.h.word(math.Float64bits(v.Float()))
	case reflect.Complex64, reflect.Complex128:
		// Capture compares complex values by their formatted string, which
		// collapses every NaN payload to "NaN"; canonicalizing NaN bits
		// reproduces those equivalence classes without the allocation.
		e.leaf(KindComplex, pl.typeHash, labelKey)
		c := v.Complex()
		e.h.word(canonFloatBits(real(c)))
		e.h.word(canonFloatBits(imag(c)))
	case reflect.String:
		e.leaf(KindString, pl.typeHash, labelKey)
		e.h.str(v.String())
	case reflect.Pointer:
		if v.IsNil() {
			e.leaf(KindNil, pl.typeHash, labelKey)
			return
		}
		key := refKey{ptr: v.Pointer(), typ: v.Type()}
		if id, ok := e.refs[key]; ok {
			e.leaf(KindPointer, pl.typeHash, labelKey)
			e.ref(id, true)
			return
		}
		e.next++
		e.refs[key] = e.next
		e.leaf(KindPointer, pl.typeHash, labelKey)
		e.ref(e.next, false)
		e.encode(v.Elem(), derefLabel)
	case reflect.Slice:
		if v.IsNil() {
			e.leaf(KindNil, pl.typeHash, labelKey)
			return
		}
		key := refKey{ptr: v.Pointer(), typ: v.Type(), aux: v.Len()}
		if id, ok := e.refs[key]; ok {
			e.leaf(KindSlice, pl.typeHash, labelKey)
			e.ref(id, true)
			return
		}
		e.next++
		e.refs[key] = e.next
		e.leaf(KindSlice, pl.typeHash, labelKey)
		e.ref(e.next, false)
		n := v.Len()
		e.h.word(uint64(n))
		if pl.byteElem {
			// Bulk fast path, mirroring Capture's one-payload encoding.
			if v.CanInterface() {
				e.h.bytes(v.Bytes())
			} else {
				// Unexported field: Bytes() is forbidden; hash per element.
				e.h.word(uint64(n))
				for i := 0; i < n; i += 8 {
					var w uint64
					for j := 0; j < 8 && i+j < n; j++ {
						w |= v.Index(i + j).Uint() << (8 * j)
					}
					e.h.word(w)
				}
			}
			return
		}
		for i := 0; i < n; i++ {
			e.encode(v.Index(i), indexLabelHash(i))
		}
	case reflect.Array:
		e.leaf(KindArray, pl.typeHash, labelKey)
		n := v.Len()
		e.h.word(uint64(n))
		for i := 0; i < n; i++ {
			e.encode(v.Index(i), indexLabelHash(i))
		}
	case reflect.Map:
		if v.IsNil() {
			e.leaf(KindNil, pl.typeHash, labelKey)
			return
		}
		key := refKey{ptr: v.Pointer(), typ: v.Type()}
		if id, ok := e.refs[key]; ok {
			e.leaf(KindMap, pl.typeHash, labelKey)
			e.ref(id, true)
			return
		}
		e.next++
		e.refs[key] = e.next
		e.leaf(KindMap, pl.typeHash, labelKey)
		e.ref(e.next, false)
		e.h.word(uint64(v.Len()))
		// Same canonical entry order as Capture: sort by keySig. Map
		// traversal allocates (MapKeys, signature strings); maps are rare
		// on the detect hot path and the zero-alloc guarantee covers the
		// struct/pointer/slice shapes wrapped receivers actually have.
		base := len(e.entries)
		for _, k := range v.MapKeys() {
			e.entries = append(e.entries, fpMapEntry{sig: keySig(k), key: k})
		}
		ents := e.entries[base:]
		sort.Slice(ents, func(i, j int) bool { return ents[i].sig < ents[j].sig })
		for _, ent := range ents {
			e.leaf(KindEntry, emptyTypeHash, strHash64(ent.sig))
			e.h.str(ent.sig)
			e.encode(v.MapIndex(ent.key), valueLabel)
		}
		// Pop this map's scratch so sibling maps (and the nested maps a
		// value traversal may push) each sort only their own entries.
		clear(e.entries[base:])
		e.entries = e.entries[:base]
	case reflect.Struct:
		e.leaf(KindStruct, pl.typeHash, labelKey)
		for _, f := range pl.fields {
			e.encode(v.Field(f.index), f.labelHash)
		}
	case reflect.Interface:
		if v.IsNil() {
			e.leaf(KindNil, pl.typeHash, labelKey)
			return
		}
		e.leaf(KindInterface, pl.typeHash, labelKey)
		e.encode(v.Elem(), dynLabel)
	case reflect.Chan:
		if v.IsNil() {
			e.leaf(KindNil, pl.typeHash, labelKey)
			return
		}
		e.leaf(KindChan, pl.typeHash, labelKey)
		e.h.word(uint64(v.Pointer()))
	case reflect.Func:
		if v.IsNil() {
			e.leaf(KindNil, pl.typeHash, labelKey)
			return
		}
		e.leaf(KindFunc, pl.typeHash, labelKey)
		e.h.word(uint64(v.Pointer()))
	default:
		// Opaque: Capture's Str is a pure function of the reflect kind and
		// the addressability flag; hash those instead of the string.
		e.leaf(KindOpaque, pl.typeHash, labelKey)
		if v.CanAddr() || pl.kind == reflect.UnsafePointer {
			e.h.word(uint64(pl.kind)<<1 | 1)
		} else {
			e.h.word(0)
		}
	}
}

// canonFloatBits returns the IEEE bits of f with every NaN collapsed to
// one canonical pattern (matching strconv's uniform "NaN" rendering).
func canonFloatBits(f float64) uint64 {
	if math.IsNaN(f) {
		return 0x7ff8000000000001
	}
	return math.Float64bits(f)
}

// fpHash is the streaming 128-bit mix: two 64-bit lanes, each word stirred
// through multiply-rotate rounds (xxhash-style), finalized with murmur
// avalanches. Not cryptographic — the threat model is accidental
// collision, argued at 2⁻¹²⁸-class odds in DESIGN.md §5.8.
type fpHash struct{ a, b uint64 }

const (
	fpSeedA = 0x9e3779b97f4a7c15
	fpSeedB = 0xc2b2ae3d27d4eb4f
	fpMulA  = 0x165667b19e3779f9
	fpMulB  = 0xff51afd7ed558ccd
)

func (h *fpHash) reset() { h.a, h.b = fpSeedA, fpSeedB }

// word folds one 64-bit word into both lanes.
func (h *fpHash) word(x uint64) {
	x *= fpSeedB
	x = bits.RotateLeft64(x, 31)
	x *= fpSeedA
	h.a = bits.RotateLeft64(h.a^x, 27)*fpMulA + fpSeedB
	h.b = (bits.RotateLeft64(h.b, 33) ^ x) * fpMulB
}

// str folds a length-prefixed string without converting or copying it.
func (h *fpHash) str(s string) {
	h.word(uint64(len(s)))
	i := 0
	for ; i+8 <= len(s); i += 8 {
		h.word(uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
			uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56)
	}
	if i < len(s) {
		var tail uint64
		for j := 0; i < len(s); i, j = i+1, j+8 {
			tail |= uint64(s[i]) << j
		}
		h.word(tail)
	}
}

// bytes folds a length-prefixed byte slice.
func (h *fpHash) bytes(p []byte) {
	h.word(uint64(len(p)))
	i := 0
	for ; i+8 <= len(p); i += 8 {
		h.word(uint64(p[i]) | uint64(p[i+1])<<8 | uint64(p[i+2])<<16 | uint64(p[i+3])<<24 |
			uint64(p[i+4])<<32 | uint64(p[i+5])<<40 | uint64(p[i+6])<<48 | uint64(p[i+7])<<56)
	}
	if i < len(p) {
		var tail uint64
		for j := 0; i < len(p); i, j = i+1, j+8 {
			tail |= uint64(p[i]) << j
		}
		h.word(tail)
	}
}

// sum finalizes both lanes into the fingerprint.
func (h *fpHash) sum() FP {
	return FP{fmix64(h.a ^ bits.RotateLeft64(h.b, 17)), fmix64(h.b + h.a*fpMulA)}
}
