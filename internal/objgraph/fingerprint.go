package objgraph

import (
	"math"
	"math/bits"
	"reflect"
	"sort"
	"sync"
)

// Fingerprint-first snapshots. Capture materializes one *Node per value,
// yet in a detection campaign the before-graph is read back on at most one
// exceptional return per run — >99% of snapshots are built and thrown
// away. Fingerprint walks the *same canonical traversal* as Capture (same
// ref-id aliasing semantics, same keySig map-key ordering, same
// distinguishing payload per node) but folds it into a streaming 128-bit
// hash: zero Node allocations, pooled encoder scratch. Two values with
// equal fingerprints have, up to hash collisions (2⁻¹²⁸-class, see
// DESIGN.md §5.8), equal Capture graphs; unequal fingerprints imply
// unequal graphs exactly. The campaign driver exploits determinism to
// recover human-readable diffs: runs whose fingerprints differ are
// re-executed once with full Capture snapshots.
//
// The encoding is framed per root: each root hashes into an isolated
// digest (reference ids numbered relative to the frame) and the digests
// fold into a top-level combiner keyed by root position. Framing makes a
// root's digest independent of its argument position and of its sibling
// roots, which is what lets FPCache reuse subgraph contributions and what
// lets independent roots hash on parallel workers with a byte-identical
// combined result. Roots that alias each other can't be framed
// independently — the traversal detects the first cross-root reference
// and falls back to one global traversal (old-style shared ids) with a
// distinguishing marker word. Path selection is a pure function of the
// Capture graph (a cross-root alias appears in Capture as a backref into
// an earlier root), so capture-equal graphs always take the same path and
// the equality contract below survives framing.

// FP is a 128-bit object-graph fingerprint. The zero value is not the
// fingerprint of any graph (the hash is seeded), so FP is comparable and
// usable as a map key.
type FP [2]uint64

// Fingerprint hashes the object graphs rooted at the given values. It is
// equality-compatible with Capture: for any a, b,
//
//	Equal(Capture(a...), Capture(b...))  ⇒  Fingerprint(a...) == Fingerprint(b...)
//
// exactly, and the converse holds up to hash collisions.
func Fingerprint(roots ...any) FP {
	return fingerprintRoots(nil, roots)
}

// FingerprintCached is Fingerprint backed by a session-owned incremental
// cache: large flat leaves replay memoized content digests after an exact
// verification compare, single pointer roots whose cache generation is
// unchanged reuse their whole-frame digest without traversal, and large
// multi-root graphs hash their independent roots on a small worker pool.
// The result is always identical to Fingerprint(roots...); the cache only
// changes how fast it is computed. c may be nil (plain Fingerprint).
//
// The cache is not safe for concurrent use — one FPCache per session.
func FingerprintCached(c *FPCache, roots ...any) FP {
	return fingerprintRoots(c, roots)
}

func fingerprintRoots(c *FPCache, roots []any) FP {
	if c != nil && c.parallelEligible(len(roots)) {
		// The worker goroutines capture the slice, which would make every
		// caller's variadic slice escape; a private copy confines the heap
		// allocation to this (rare, already goroutine-spawning) path.
		rs := make([]any, len(roots))
		copy(rs, roots)
		if fp, ok := fingerprintParallel(c, rs); ok {
			return fp
		}
		return fingerprintGlobal(c, rs)
	}
	if fp, ok := fingerprintFramed(c, roots); ok {
		return fp
	}
	return fingerprintGlobal(c, roots)
}

// fpCrossRoot is the sentinel panic a framed traversal throws when a root
// references a value already registered by an earlier root. The driver
// recovers it and retries with one global traversal.
type fpCrossRoot struct{}

// fingerprintFramed hashes each root into its own frame and combines the
// digests. ok is false when the roots alias each other.
func fingerprintFramed(c *FPCache, roots []any) (fp FP, ok bool) {
	e := fpPool.Get().(*fpEncoder)
	e.cache = c
	e.detectCross = true
	var top fpHash
	top.reset()
	ok = true
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, cross := r.(fpCrossRoot); cross {
					ok = false
					return
				}
				panic(r)
			}
		}()
		single := len(roots) == 1
		for i, r := range roots {
			top.word(rootLabelHash(i))
			d := e.rootDigest(r, single)
			top.word(d[0])
			top.word(d[1])
		}
	}()
	if c != nil {
		c.noteWork(e.work)
	}
	e.release()
	if !ok {
		return FP{}, false
	}
	return top.sum(), true
}

// fingerprintGlobal is the fallback for mutually-aliased roots: one
// traversal with ids shared across roots (exactly the Capture numbering),
// distinguished from the framed encoding by a marker word.
func fingerprintGlobal(c *FPCache, roots []any) FP {
	e := fpPool.Get().(*fpEncoder)
	e.cache = c
	e.h.reset()
	e.h.word(fpAliasMark)
	for i, r := range roots {
		if r == nil {
			e.leaf(KindNil, emptyTypeHash, rootLabelHash(i))
			continue
		}
		e.encode(reflect.ValueOf(r), rootLabelHash(i))
	}
	fp := e.h.sum()
	if c != nil {
		c.noteWork(e.work)
	}
	e.release()
	return fp
}

// rootDigest returns the frame digest of one root, consulting the cache's
// generation-keyed root entries when cacheable (single-root calls only:
// a reused digest skips traversal, which would blind the cross-root alias
// detection a multi-root call depends on).
func (e *fpEncoder) rootDigest(root any, cacheable bool) FP {
	if root == nil {
		saved := e.h
		e.h.reset()
		e.leaf(KindNil, emptyTypeHash, frameRootLabel)
		d := e.h.sum()
		e.h = saved
		return d
	}
	v := reflect.ValueOf(root)
	c := e.cache
	var key fpRootKey
	var gen uint64
	cacheRoot := false
	if c != nil && cacheable && v.Kind() == reflect.Pointer && !v.IsNil() {
		key = fpRootKey{ptr: v.Pointer(), plan: planFor(v.Type())}
		gen = c.gen.Load()
		if ent, hit := c.roots[key]; hit && ent.gen == gen {
			c.hits++
			return ent.d
		}
		c.misses++
		cacheRoot = true
	}
	d := e.frame(v)
	if cacheRoot {
		c.roots[key] = fpRootEntry{gen: gen, d: d}
	}
	return d
}

// frame hashes v into an isolated digest: a fresh hash state, reference
// ids relative to the frame base, and a fixed root label — so the digest
// depends only on the subgraph, not on the root's position.
func (e *fpEncoder) frame(v reflect.Value) FP {
	e.rootBase = e.next
	saved := e.h
	e.h.reset()
	e.encode(v, frameRootLabel)
	d := e.h.sum()
	e.h = saved
	return d
}

// Precomputed hashes of the fixed edge labels Capture emits, plus the
// framing marks introduced by the incremental encoding.
var (
	emptyTypeHash  = strHash64("")
	derefLabel     = strHash64("*")
	dynLabel       = strHash64("dyn")
	valueLabel     = strHash64("value")
	frameRootLabel = strHash64("fp:frame")
	fpAliasMark    = strHash64("fp:aliased-roots")
)

// fpEncoder is the pooled traversal state: the aliasing map (refKey →
// traversal-ordinal id, exactly Capture's), the running hash, sort
// scratch for map entries, and the framing/cache state of the current
// call.
type fpEncoder struct {
	h       fpHash
	refs    map[refKey]int
	next    int
	entries []fpMapEntry
	// cache is the session cache of the current call, or nil.
	cache *FPCache
	// detectCross makes backref lookups panic fpCrossRoot when they cross
	// into an earlier root's frame (framed mode only).
	detectCross bool
	// rootBase is the id watermark at the current frame's start; emitted
	// ref ids are relative to it.
	rootBase int
	// work approximates hash effort in words, feeding the parallel-lane
	// engagement heuristic.
	work int
	// scratch is reused for byte extraction from unexported slices and
	// unaddressable arrays.
	scratch []byte
}

// fpMapEntry pairs a map key with its canonical signature for sorting.
type fpMapEntry struct {
	sig string
	key reflect.Value
}

var fpPool = sync.Pool{New: func() any {
	return &fpEncoder{refs: make(map[refKey]int, 64)}
}}

// release clears the aliasing state (keeping the map's buckets and the
// entries slice for reuse) and returns the encoder to the pool.
func (e *fpEncoder) release() {
	clear(e.refs)
	e.next = 0
	e.entries = e.entries[:0]
	e.cache = nil
	e.detectCross = false
	e.rootBase = 0
	e.work = 0
	fpPool.Put(e)
}

// byteScratch returns an n-byte scratch buffer owned by the encoder.
func (e *fpEncoder) byteScratch(n int) []byte {
	if cap(e.scratch) < n {
		e.scratch = make([]byte, n)
	}
	return e.scratch[:n]
}

// leafDigest returns the content digest of one large flat leaf, memoized
// through the cache when the bytes are the leaf's real backing store
// (scratch copies have no stable identity to key on).
func (e *fpEncoder) leafDigest(b []byte, stable bool) FP {
	if e.cache != nil && stable {
		return e.cache.leafBytes(b)
	}
	return bulkHash128(b)
}

// leaf folds one node header into the hash: kind, type, edge label — the
// first three fields Diff compares.
func (e *fpEncoder) leaf(kind Kind, typeHash, labelKey uint64) {
	e.work++
	e.h.word(uint64(kind))
	e.h.word(typeHash)
	e.h.word(labelKey)
}

// ref folds a reference node's alias id and backref flag (Diff's aliasing
// check). Ids are traversal ordinals relative to the current frame base —
// identical to Capture's numbering in global mode (base 0).
func (e *fpEncoder) ref(id int, backref bool) {
	x := uint64(id) << 1
	if backref {
		x |= 1
	}
	e.h.word(x)
}

// encode mirrors encoder.encode case for case; every payload Capture
// stores on a Node (Bits, Str, Ref/Backref, child counts via Bits) is
// folded into the hash in the same traversal position.
func (e *fpEncoder) encode(v reflect.Value, labelKey uint64) {
	if !v.IsValid() {
		e.leaf(KindNil, emptyTypeHash, labelKey)
		return
	}
	pl := planFor(v.Type())
	switch pl.kind {
	case reflect.Bool:
		e.leaf(KindBool, pl.typeHash, labelKey)
		var bit uint64
		if v.Bool() {
			bit = 1
		}
		e.h.word(bit)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.leaf(KindInt, pl.typeHash, labelKey)
		e.h.word(uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		e.leaf(KindUint, pl.typeHash, labelKey)
		e.h.word(v.Uint())
	case reflect.Float32, reflect.Float64:
		e.leaf(KindFloat, pl.typeHash, labelKey)
		e.h.word(math.Float64bits(v.Float()))
	case reflect.Complex64, reflect.Complex128:
		// Capture compares complex values by their formatted string, which
		// collapses every NaN payload to "NaN"; canonicalizing NaN bits
		// reproduces those equivalence classes without the allocation.
		e.leaf(KindComplex, pl.typeHash, labelKey)
		c := v.Complex()
		e.h.word(canonFloatBits(real(c)))
		e.h.word(canonFloatBits(imag(c)))
	case reflect.String:
		e.leaf(KindString, pl.typeHash, labelKey)
		s := v.String()
		if len(s) >= fpLeafFrameMin {
			// Large-leaf framing: fold the length, then the memoizable
			// content digest. The framed/streamed choice is a pure
			// function of the length, so equal strings always take the
			// same spelling.
			e.h.word(uint64(len(s)))
			var d FP
			if e.cache != nil {
				d = e.cache.leafString(s)
			} else {
				d = bulkHash128String(s)
			}
			e.h.word(d[0])
			e.h.word(d[1])
			e.work += len(s) / 8
			return
		}
		e.h.str(s)
	case reflect.Pointer:
		if v.IsNil() {
			e.leaf(KindNil, pl.typeHash, labelKey)
			return
		}
		key := refKey{ptr: v.Pointer(), typ: v.Type()}
		if id, ok := e.refs[key]; ok {
			if e.detectCross && id <= e.rootBase {
				panic(fpCrossRoot{})
			}
			e.leaf(KindPointer, pl.typeHash, labelKey)
			e.ref(id-e.rootBase, true)
			return
		}
		e.next++
		e.refs[key] = e.next
		e.leaf(KindPointer, pl.typeHash, labelKey)
		e.ref(e.next-e.rootBase, false)
		e.encode(v.Elem(), derefLabel)
	case reflect.Slice:
		if v.IsNil() {
			e.leaf(KindNil, pl.typeHash, labelKey)
			return
		}
		key := refKey{ptr: v.Pointer(), typ: v.Type(), aux: v.Len()}
		if id, ok := e.refs[key]; ok {
			if e.detectCross && id <= e.rootBase {
				panic(fpCrossRoot{})
			}
			e.leaf(KindSlice, pl.typeHash, labelKey)
			e.ref(id-e.rootBase, true)
			return
		}
		e.next++
		e.refs[key] = e.next
		e.leaf(KindSlice, pl.typeHash, labelKey)
		e.ref(e.next-e.rootBase, false)
		n := v.Len()
		e.h.word(uint64(n))
		if pl.byteElem {
			// Bulk fast path, mirroring Capture's one-payload encoding.
			// Capture stores the same Str for exported and unexported
			// byte slices, so both spell identically here too: unexported
			// slices copy through encoder scratch (Bytes() is forbidden)
			// and hash the same stream.
			var b []byte
			stable := v.CanInterface()
			if stable {
				b = v.Bytes()
			} else {
				b = e.byteScratch(n)
				for i := 0; i < n; i++ {
					b[i] = byte(v.Index(i).Uint())
				}
			}
			e.work += n / 8
			if n >= fpLeafFrameMin {
				d := e.leafDigest(b, stable)
				e.h.word(d[0])
				e.h.word(d[1])
			} else {
				e.h.bytes(b)
			}
			return
		}
		for i := 0; i < n; i++ {
			e.encode(v.Index(i), indexLabelHash(i))
		}
	case reflect.Array:
		e.leaf(KindArray, pl.typeHash, labelKey)
		n := v.Len()
		e.h.word(uint64(n))
		if pl.byteArray && n >= fpLeafFrameMin {
			// Large byte arrays frame like large byte slices. The framing
			// decision depends only on (type, len) — never addressability —
			// so capture-equal arrays hash equal whichever extraction path
			// runs; only cache eligibility differs.
			var d FP
			if v.CanAddr() && v.CanInterface() {
				d = e.leafDigest(v.Bytes(), true)
			} else {
				b := e.byteScratch(n)
				for i := 0; i < n; i++ {
					b[i] = byte(v.Index(i).Uint())
				}
				d = bulkHash128(b)
			}
			e.h.word(d[0])
			e.h.word(d[1])
			e.work += n / 8
			return
		}
		for i := 0; i < n; i++ {
			e.encode(v.Index(i), indexLabelHash(i))
		}
	case reflect.Map:
		if v.IsNil() {
			e.leaf(KindNil, pl.typeHash, labelKey)
			return
		}
		key := refKey{ptr: v.Pointer(), typ: v.Type()}
		if id, ok := e.refs[key]; ok {
			if e.detectCross && id <= e.rootBase {
				panic(fpCrossRoot{})
			}
			e.leaf(KindMap, pl.typeHash, labelKey)
			e.ref(id-e.rootBase, true)
			return
		}
		e.next++
		e.refs[key] = e.next
		e.leaf(KindMap, pl.typeHash, labelKey)
		e.ref(e.next-e.rootBase, false)
		e.h.word(uint64(v.Len()))
		// Same canonical entry order as Capture: sort by keySig. Map
		// traversal allocates (MapKeys, signature strings); maps are rare
		// on the detect hot path and the zero-alloc guarantee covers the
		// struct/pointer/slice shapes wrapped receivers actually have.
		base := len(e.entries)
		for _, k := range v.MapKeys() {
			e.entries = append(e.entries, fpMapEntry{sig: keySig(k), key: k})
		}
		ents := e.entries[base:]
		sort.Slice(ents, func(i, j int) bool { return ents[i].sig < ents[j].sig })
		for _, ent := range ents {
			e.leaf(KindEntry, emptyTypeHash, strHash64(ent.sig))
			e.h.str(ent.sig)
			e.encode(v.MapIndex(ent.key), valueLabel)
		}
		// Pop this map's scratch so sibling maps (and the nested maps a
		// value traversal may push) each sort only their own entries.
		clear(e.entries[base:])
		e.entries = e.entries[:base]
	case reflect.Struct:
		e.leaf(KindStruct, pl.typeHash, labelKey)
		for _, f := range pl.fields {
			e.encode(v.Field(f.index), f.labelHash)
		}
	case reflect.Interface:
		if v.IsNil() {
			e.leaf(KindNil, pl.typeHash, labelKey)
			return
		}
		e.leaf(KindInterface, pl.typeHash, labelKey)
		e.encode(v.Elem(), dynLabel)
	case reflect.Chan:
		if v.IsNil() {
			e.leaf(KindNil, pl.typeHash, labelKey)
			return
		}
		e.leaf(KindChan, pl.typeHash, labelKey)
		e.h.word(uint64(v.Pointer()))
	case reflect.Func:
		if v.IsNil() {
			e.leaf(KindNil, pl.typeHash, labelKey)
			return
		}
		e.leaf(KindFunc, pl.typeHash, labelKey)
		e.h.word(uint64(v.Pointer()))
	default:
		// Opaque: Capture's Str is a pure function of the reflect kind and
		// the addressability flag; hash those instead of the string.
		e.leaf(KindOpaque, pl.typeHash, labelKey)
		if v.CanAddr() || pl.kind == reflect.UnsafePointer {
			e.h.word(uint64(pl.kind)<<1 | 1)
		} else {
			e.h.word(0)
		}
	}
}

// canonFloatBits returns the IEEE bits of f with every NaN collapsed to
// one canonical pattern (matching strconv's uniform "NaN" rendering).
func canonFloatBits(f float64) uint64 {
	if math.IsNaN(f) {
		return 0x7ff8000000000001
	}
	return math.Float64bits(f)
}

// fpHash is the streaming 128-bit mix: two 64-bit lanes, each word stirred
// through multiply-rotate rounds (xxhash-style), finalized with murmur
// avalanches. Not cryptographic — the threat model is accidental
// collision, argued at 2⁻¹²⁸-class odds in DESIGN.md §5.8.
type fpHash struct{ a, b uint64 }

const (
	fpSeedA = 0x9e3779b97f4a7c15
	fpSeedB = 0xc2b2ae3d27d4eb4f
	fpMulA  = 0x165667b19e3779f9
	fpMulB  = 0xff51afd7ed558ccd
)

func (h *fpHash) reset() { h.a, h.b = fpSeedA, fpSeedB }

// word folds one 64-bit word into both lanes.
func (h *fpHash) word(x uint64) {
	x *= fpSeedB
	x = bits.RotateLeft64(x, 31)
	x *= fpSeedA
	h.a = bits.RotateLeft64(h.a^x, 27)*fpMulA + fpSeedB
	h.b = (bits.RotateLeft64(h.b, 33) ^ x) * fpMulB
}

// str folds a length-prefixed string without converting or copying it.
func (h *fpHash) str(s string) {
	h.word(uint64(len(s)))
	i := 0
	for ; i+8 <= len(s); i += 8 {
		h.word(uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
			uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56)
	}
	if i < len(s) {
		var tail uint64
		for j := 0; i < len(s); i, j = i+1, j+8 {
			tail |= uint64(s[i]) << j
		}
		h.word(tail)
	}
}

// bytes folds a length-prefixed byte slice.
func (h *fpHash) bytes(p []byte) {
	h.word(uint64(len(p)))
	i := 0
	for ; i+8 <= len(p); i += 8 {
		h.word(uint64(p[i]) | uint64(p[i+1])<<8 | uint64(p[i+2])<<16 | uint64(p[i+3])<<24 |
			uint64(p[i+4])<<32 | uint64(p[i+5])<<40 | uint64(p[i+6])<<48 | uint64(p[i+7])<<56)
	}
	if i < len(p) {
		var tail uint64
		for j := 0; i < len(p); i, j = i+1, j+8 {
			tail |= uint64(p[i]) << j
		}
		h.word(tail)
	}
}

// sum finalizes both lanes into the fingerprint.
func (h *fpHash) sum() FP {
	return FP{fmix64(h.a ^ bits.RotateLeft64(h.b, 17)), fmix64(h.b + h.a*fpMulA)}
}
