//go:build !race

package objgraph

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
