// Package worker is the faworker side of the dispatch protocol: a loop
// that registers with a faserve coordinator, leases campaign jobs, runs
// them with the scoped-session supervisor, streams every completed run
// back as a replog chunk, and uploads the final log and report — rendered
// through the same code paths fadetect uses locally, which is what keeps
// a distributed campaign's output byte-identical to a local one.
//
// Failure behavior mirrors the lease contract: the worker heartbeats its
// lease on a fraction of the TTL; if the coordinator answers 410 Gone
// (lease expired, job cancelled, coordinator restarted) the campaign is
// abandoned mid-flight — everything shipped so far is already in the
// coordinator's journal, so whoever claims the job next resumes instead
// of restarting. A worker killed outright simply stops heartbeating and
// the coordinator reaches the same outcome from its side.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"failatomic/internal/apps"
	"failatomic/internal/cli"
	"failatomic/internal/concur"
	"failatomic/internal/dispatch"
	"failatomic/internal/harness"
	"failatomic/internal/inject"
	"failatomic/internal/repair"
	"failatomic/internal/replog"
	"failatomic/internal/serve"
)

// Config parameterizes a worker.
type Config struct {
	// Server is the coordinator base URL (e.g. "http://host:8080").
	Server string
	// Token is the bearer token for an authed coordinator (worker RPCs
	// are write-scope).
	Token string
	// Name labels the worker on the coordinator (default "host:pid").
	Name string
	// Poll overrides the coordinator-suggested idle-poll interval.
	Poll time.Duration
	// Output receives progress lines (nil = os.Stderr).
	Output io.Writer
}

// errGone marks 410 responses: the lease or worker identity is dead.
var errGone = errors.New("worker: lease or registration is gone")

// Run registers with the coordinator and processes leases until ctx is
// cancelled. It returns nil on cancellation; only a misconfiguration
// (unusable server URL at first contact never succeeding is retried, not
// fatal) ends it early.
func Run(ctx context.Context, cfg Config) error {
	if cfg.Server == "" {
		return errors.New("worker: Config.Server is required")
	}
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if cfg.Output == nil {
		cfg.Output = os.Stderr
	}
	w := &worker{cfg: cfg, hc: &http.Client{}}
	for {
		if ctx.Err() != nil {
			return nil
		}
		if w.id == "" {
			if !w.register(ctx) {
				return nil // ctx cancelled while registering
			}
		}
		lr, ok, err := w.acquire(ctx)
		switch {
		case errors.Is(err, errGone):
			// The coordinator restarted and forgot us; rejoin the fleet.
			w.logf("registration lost; re-registering")
			w.id = ""
		case err != nil:
			if ctx.Err() != nil {
				return nil
			}
			w.logf("lease poll failed: %v", err)
			w.sleep(ctx, w.poll)
		case !ok:
			w.sleep(ctx, w.poll)
		default:
			w.runLease(ctx, lr)
		}
	}
}

// worker is one registered identity plus its HTTP plumbing.
type worker struct {
	cfg  Config
	hc   *http.Client
	id   string
	ttl  time.Duration
	poll time.Duration
}

func (w *worker) logf(format string, args ...any) {
	fmt.Fprintf(w.cfg.Output, "faworker: "+format+"\n", args...)
}

// register joins the fleet, retrying with backoff until it succeeds or
// ctx ends; it reports false only for cancellation.
func (w *worker) register(ctx context.Context) bool {
	backoff := 100 * time.Millisecond
	for {
		var resp dispatch.RegisterResponse
		err := w.post(ctx, "/v1/workers/register", dispatch.RegisterRequest{Name: w.cfg.Name}, &resp)
		if err == nil {
			w.id = resp.WorkerID
			w.ttl = resp.LeaseTTL
			w.poll = resp.Poll
			if w.cfg.Poll > 0 {
				w.poll = w.cfg.Poll
			}
			w.logf("registered as %s (lease ttl %v, poll %v)", w.id, w.ttl, w.poll)
			return true
		}
		if ctx.Err() != nil {
			return false
		}
		w.logf("register failed: %v (retrying in %v)", err, backoff)
		if !w.sleep(ctx, backoff) {
			return false
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// acquire asks for one lease: (lease, true) on a grant, false on an idle
// queue, errGone when the worker must re-register.
func (w *worker) acquire(ctx context.Context) (dispatch.LeaseResponse, bool, error) {
	var resp dispatch.LeaseResponse
	err := w.post(ctx, "/v1/workers/"+w.id+"/lease", struct{}{}, &resp)
	if err != nil {
		return dispatch.LeaseResponse{}, false, err
	}
	if resp.LeaseID == "" {
		return dispatch.LeaseResponse{}, false, nil // 204: nothing queued
	}
	return resp, true, nil
}

// runLease executes one leased job end to end.
func (w *worker) runLease(ctx context.Context, lr dispatch.LeaseResponse) {
	w.logf("leased job %s (lease %s)", lr.JobID, lr.LeaseID)
	var spec serve.JobSpec
	if err := json.Unmarshal(lr.Spec, &spec); err != nil {
		w.fail(ctx, lr, fmt.Sprintf("undecodable job spec: %v", err))
		return
	}
	completed := map[inject.RunKey]inject.Run{}
	if len(lr.Prefix) > 0 {
		var err error
		if completed, err = replog.DecodeChunkRuns(lr.Prefix); err != nil {
			w.fail(ctx, lr, fmt.Sprintf("undecodable resume prefix: %v", err))
			return
		}
		w.logf("job %s: resuming past %d journaled runs", lr.JobID, len(completed))
	}

	// The campaign aborts when the worker is shutting down (ctx) or the
	// lease dies under it (heartbeat sees 410, or shipping does).
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var leaseLost atomic.Bool
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go w.heartbeat(jctx, lr, &leaseLost, cancel, hbStop, hbDone)
	defer func() {
		close(hbStop)
		<-hbDone
	}()

	shipper := &shipper{w: w, ctx: jctx, lr: lr, leaseLost: &leaseLost, cancel: cancel}

	if spec.JobKind() == serve.KindConcur {
		w.runConcurLease(ctx, lr, spec, completed, shipper, &leaseLost)
		return
	}

	app, ok := apps.ByName(spec.App)
	if !ok {
		w.fail(ctx, lr, fmt.Sprintf("unknown application %q", spec.App))
		return
	}
	opts := spec.Options()
	opts.Completed = completed
	opts.OnRun = shipper.ship

	if spec.JobKind() == serve.KindRepair {
		w.runRepairLease(ctx, jctx, lr, spec, opts, &leaseLost)
		return
	}

	res, err := harness.RunApp(jctx, app, opts)
	if err != nil {
		switch {
		case ctx.Err() != nil:
			// Worker shutdown: say nothing — the lease will expire and the
			// job fails over with its shipped prefix intact.
			w.logf("job %s: abandoned mid-campaign (worker shutting down)", lr.JobID)
		case leaseLost.Load():
			w.logf("job %s: lease lost; abandoning (shipped runs are journaled)", lr.JobID)
		default:
			w.fail(ctx, lr, err.Error())
		}
		return
	}

	// Render through the exact local code paths: replog.Write for the log,
	// cli.CampaignReport for the report. The masking-verification
	// re-campaign inside CampaignReport runs here on the worker.
	var logBuf bytes.Buffer
	if err := replog.Write(&logBuf, res.Result); err != nil {
		w.fail(ctx, lr, err.Error())
		return
	}
	report, exitCode, err := cli.CampaignReport(jctx, app, opts, res)
	if err != nil {
		switch {
		case ctx.Err() != nil:
			w.logf("job %s: abandoned during masking verification (worker shutting down)", lr.JobID)
		case leaseLost.Load():
			w.logf("job %s: lease lost during masking verification; abandoning", lr.JobID)
		default:
			w.fail(ctx, lr, err.Error())
		}
		return
	}
	comp := dispatch.Completion{State: "done", ExitCode: exitCode, Log: logBuf.Bytes(), Report: []byte(report)}
	if err := w.complete(ctx, lr, comp); err != nil {
		w.logf("job %s: result upload failed: %v", lr.JobID, err)
		return
	}
	w.logf("job %s: done (exit %d, %d runs)", lr.JobID, exitCode, len(res.Result.Runs))
}

// runRepairLease executes a leased repair job: the full detect → mask →
// verify workflow, with the phase-1 campaign's runs shipped to the
// coordinator exactly like a detect job's (the resume prefix splices into
// it too, so a failed-over repair job re-runs only the missing points).
// The uploaded log is the phase-1 replog and the report is the rendered
// repair report — byte-identical to a local farepair run by construction.
func (w *worker) runRepairLease(ctx, jctx context.Context, lr dispatch.LeaseResponse, spec serve.JobSpec, opts inject.Options, leaseLost *atomic.Bool) {
	rep, err := repair.Run(jctx, repair.Config{App: spec.App, Options: opts})
	if err != nil {
		switch {
		case ctx.Err() != nil:
			w.logf("job %s: abandoned mid-repair (worker shutting down)", lr.JobID)
		case leaseLost.Load():
			w.logf("job %s: lease lost; abandoning repair (shipped runs are journaled)", lr.JobID)
		default:
			w.fail(ctx, lr, err.Error())
		}
		return
	}
	var logBuf bytes.Buffer
	if err := replog.Write(&logBuf, rep.Campaign); err != nil {
		w.fail(ctx, lr, err.Error())
		return
	}
	comp := dispatch.Completion{State: "done", ExitCode: rep.ExitCode(), Log: logBuf.Bytes(), Report: []byte(rep.Render())}
	if err := w.complete(ctx, lr, comp); err != nil {
		w.logf("job %s: result upload failed: %v", lr.JobID, err)
		return
	}
	w.logf("job %s: repair done (exit %d, %d runs)", lr.JobID, comp.ExitCode, len(rep.Campaign.Runs))
}

// runConcurLease executes a leased concur job: the schedule campaign over
// the named concurrent target, each completed schedule shipped to the
// coordinator as it lands (a shipping failure propagates through the
// campaign's OnRun hook and aborts it). The uploaded log and report
// render through the same concur.Campaign code path fadetect -concur uses
// locally — byte-identical by construction.
func (w *worker) runConcurLease(ctx context.Context, lr dispatch.LeaseResponse, spec serve.JobSpec, completed map[inject.RunKey]inject.Run, sh *shipper, leaseLost *atomic.Bool) {
	target, ok := concur.ByName(spec.App)
	if !ok {
		w.fail(ctx, lr, fmt.Sprintf("unknown concurrent target %q", spec.App))
		return
	}
	res, err := concur.Campaign(&target, concur.Options{
		Workers:   spec.Workers,
		Schedules: spec.Schedules,
		Seed:      concur.EffectiveSeed(spec.Seed),
		Completed: completed,
		OnRun:     sh.ship,
	})
	if err != nil {
		switch {
		case ctx.Err() != nil:
			w.logf("job %s: abandoned mid-campaign (worker shutting down)", lr.JobID)
		case leaseLost.Load():
			w.logf("job %s: lease lost; abandoning (shipped runs are journaled)", lr.JobID)
		default:
			w.fail(ctx, lr, err.Error())
		}
		return
	}
	var logBuf bytes.Buffer
	if err := replog.Write(&logBuf, res.Inject); err != nil {
		w.fail(ctx, lr, err.Error())
		return
	}
	comp := dispatch.Completion{State: "done", ExitCode: cli.ExitOK, Log: logBuf.Bytes(), Report: []byte(res.Report)}
	if err := w.complete(ctx, lr, comp); err != nil {
		w.logf("job %s: result upload failed: %v", lr.JobID, err)
		return
	}
	w.logf("job %s: concur done (%d schedules, %d runs)", lr.JobID, res.Schedules, len(res.Inject.Runs))
}

// heartbeat renews the lease on a third of its TTL until stopped. 410 —
// or three consecutive transport failures (a restarted coordinator holds
// no leases, so there is nothing to keep alive) — marks the lease lost
// and cancels the campaign.
func (w *worker) heartbeat(ctx context.Context, lr dispatch.LeaseResponse, leaseLost *atomic.Bool, cancel context.CancelFunc, stop, done chan struct{}) {
	defer close(done)
	interval := lr.LeaseTTL / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	failures := 0
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		var resp dispatch.HeartbeatResponse
		err := w.post(ctx, w.leasePath(lr, "heartbeat"), struct{}{}, &resp)
		switch {
		case err == nil:
			failures = 0
		case errors.Is(err, errGone):
			leaseLost.Store(true)
			cancel()
			return
		case ctx.Err() != nil:
			return
		default:
			if failures++; failures >= 3 {
				w.logf("job %s: %d heartbeats failed (%v); assuming lease lost", lr.JobID, failures, err)
				leaseLost.Store(true)
				cancel()
				return
			}
		}
	}
}

// shipper streams completed runs to the coordinator, one chunk per run.
// A transport failure is retried once — the coordinator dedupes the
// double shipment if the first one actually landed — and then treated as
// a lost lease (the campaign aborts; nothing is lost, the runs that did
// land are journaled).
type shipper struct {
	w         *worker
	ctx       context.Context
	lr        dispatch.LeaseResponse
	leaseLost *atomic.Bool
	cancel    context.CancelFunc
	mu        sync.Mutex
}

func (sh *shipper) ship(run inject.Run) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var chunk bytes.Buffer
	if err := replog.EncodeChunk(&chunk, []inject.Run{run}); err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			if !sh.w.sleep(sh.ctx, 100*time.Millisecond) {
				return sh.ctx.Err()
			}
		}
		var resp dispatch.ShipResponse
		lastErr = sh.w.postChunk(sh.ctx, sh.w.leasePath(sh.lr, "runs"), chunk.Bytes(), &resp)
		if lastErr == nil {
			return nil
		}
		if errors.Is(lastErr, errGone) {
			break
		}
	}
	sh.leaseLost.Store(true)
	sh.cancel()
	return fmt.Errorf("worker: shipping run %d: %w", run.InjectionPoint, lastErr)
}

// fail uploads a terminal failure for the lease (unknown app, campaign
// error). Upload problems are logged, not retried forever: if the lease
// is gone the coordinator has already failed the job over.
func (w *worker) fail(ctx context.Context, lr dispatch.LeaseResponse, msg string) {
	w.logf("job %s: failed: %s", lr.JobID, msg)
	comp := dispatch.Completion{State: "failed", ExitCode: cli.ExitFailure, Error: msg}
	if err := w.complete(ctx, lr, comp); err != nil {
		w.logf("job %s: failure upload failed: %v", lr.JobID, err)
	}
}

// complete uploads the terminal result, retrying transport errors.
func (w *worker) complete(ctx context.Context, lr dispatch.LeaseResponse, comp dispatch.Completion) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			if !w.sleep(ctx, 500*time.Millisecond) {
				return ctx.Err()
			}
		}
		lastErr = w.post(ctx, w.leasePath(lr, "complete"), comp, &struct{}{})
		if lastErr == nil || errors.Is(lastErr, errGone) {
			return lastErr
		}
	}
	return lastErr
}

func (w *worker) leasePath(lr dispatch.LeaseResponse, op string) string {
	return "/v1/workers/" + w.id + "/leases/" + lr.LeaseID + "/" + op
}

// post sends one JSON request and decodes the JSON response into out.
func (w *worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	return w.send(ctx, path, "application/json", body, out)
}

// postChunk sends a replog chunk body.
func (w *worker) postChunk(ctx context.Context, path string, chunk []byte, out any) error {
	return w.send(ctx, path, "application/x-ndjson", chunk, out)
}

func (w *worker) send(ctx context.Context, path, contentType string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Server+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	req.Header.Set("Content-Type", contentType)
	if w.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+w.cfg.Token)
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return nil
	case resp.StatusCode == http.StatusGone:
		io.Copy(io.Discard, resp.Body)
		return errGone
	case resp.StatusCode < 200 || resp.StatusCode >= 300:
		var ae struct {
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("worker: coordinator returned %s: %s", resp.Status, ae.Error)
		}
		return fmt.Errorf("worker: coordinator returned %s", resp.Status)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("worker: decoding %s response: %w", path, err)
	}
	return nil
}

// sleep waits d or until ctx ends; it reports whether the full wait
// elapsed.
func (w *worker) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
