// Unit tests for the coordinator: lease lifecycle, expiry-driven
// failover, worker pruning, and the 410 Gone contract — all over a fake
// job queue, independent of internal/serve.
package dispatch_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"failatomic/internal/dispatch"
	"failatomic/internal/inject"
	"failatomic/internal/replog"
)

// fakeJobs is an in-memory Jobs implementation recording every call.
type fakeJobs struct {
	mu        sync.Mutex
	queue     []dispatch.Grant
	appended  map[string][]inject.Run
	completed map[string]dispatch.Completion
	requeued  []string
}

func newFakeJobs(grants ...dispatch.Grant) *fakeJobs {
	return &fakeJobs{
		queue:     grants,
		appended:  make(map[string][]inject.Run),
		completed: make(map[string]dispatch.Completion),
	}
}

func (f *fakeJobs) Claim() (dispatch.Grant, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.queue) == 0 {
		return dispatch.Grant{}, false
	}
	g := f.queue[0]
	f.queue = f.queue[1:]
	return g, true
}

func (f *fakeJobs) AppendRuns(jobID string, runs []inject.Run) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.appended[jobID] = append(f.appended[jobID], runs...)
	return len(runs), nil
}

func (f *fakeJobs) Complete(jobID string, c dispatch.Completion) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.completed[jobID] = c
	return nil
}

func (f *fakeJobs) Requeue(jobID string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.requeued = append(f.requeued, jobID)
}

func (f *fakeJobs) requeuedJobs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.requeued...)
}

// boot builds a started coordinator over jobs, fronted by the same mux
// wiring internal/serve uses, and tears both down with the test.
func boot(t *testing.T, jobs dispatch.Jobs, cfg dispatch.Config) (*dispatch.Coordinator, string) {
	t.Helper()
	cfg.Jobs = jobs
	c := dispatch.New(cfg)
	c.Start()
	t.Cleanup(c.Stop)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers/register", c.HandleRegister)
	mux.HandleFunc("POST /v1/workers/{worker}/lease", c.HandleLease)
	mux.HandleFunc("POST /v1/workers/{worker}/leases/{lease}/heartbeat", c.HandleHeartbeat)
	mux.HandleFunc("POST /v1/workers/{worker}/leases/{lease}/runs", c.HandleShip)
	mux.HandleFunc("POST /v1/workers/{worker}/leases/{lease}/complete", c.HandleComplete)
	hts := httptest.NewServer(mux)
	t.Cleanup(hts.Close)
	return c, hts.URL
}

// post sends body ([]byte raw, else JSON) and decodes a 2xx response.
func post(t *testing.T, url, path string, body, out any) int {
	t.Helper()
	var payload []byte
	contentType := "application/json"
	switch b := body.(type) {
	case []byte:
		payload = b
		contentType = "application/x-ndjson"
	default:
		var err error
		if payload, err = json.Marshal(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url+path, contentType, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func register(t *testing.T, url string) dispatch.RegisterResponse {
	t.Helper()
	var reg dispatch.RegisterResponse
	if code := post(t, url, "/v1/workers/register", dispatch.RegisterRequest{Name: "test"}, &reg); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	return reg
}

func leasePath(workerID, leaseID, op string) string {
	return "/v1/workers/" + workerID + "/leases/" + leaseID + "/" + op
}

func encodeRuns(t *testing.T, runs ...inject.Run) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := replog.EncodeChunk(&buf, runs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLeaseLifecycle(t *testing.T) {
	jobs := newFakeJobs(dispatch.Grant{JobID: "j1", Spec: json.RawMessage(`{"app":"X"}`)})
	c, url := boot(t, jobs, dispatch.Config{})

	reg := register(t, url)
	if reg.WorkerID == "" || reg.LeaseTTL != dispatch.DefaultLeaseTTL || reg.Poll != dispatch.DefaultPoll {
		t.Fatalf("register response %+v", reg)
	}

	var lr dispatch.LeaseResponse
	if code := post(t, url, "/v1/workers/"+reg.WorkerID+"/lease", struct{}{}, &lr); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	if lr.JobID != "j1" || lr.LeaseID == "" {
		t.Fatalf("lease response %+v", lr)
	}
	if st := c.Stats(); st.WorkersRegisteredTotal != 1 || st.WorkersLive != 1 || st.LeasesHeld != 1 {
		t.Fatalf("stats after lease: %+v", st)
	}

	// An empty queue answers 204, not an error.
	if code := post(t, url, "/v1/workers/"+reg.WorkerID+"/lease", struct{}{}, nil); code != http.StatusNoContent {
		t.Fatalf("idle lease poll: status %d, want 204", code)
	}

	if code := post(t, url, leasePath(reg.WorkerID, lr.LeaseID, "heartbeat"), struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("heartbeat: status %d", code)
	}

	var ship dispatch.ShipResponse
	chunk := encodeRuns(t, inject.Run{InjectionPoint: 0}, inject.Run{InjectionPoint: 1})
	if code := post(t, url, leasePath(reg.WorkerID, lr.LeaseID, "runs"), chunk, &ship); code != http.StatusOK {
		t.Fatalf("ship: status %d", code)
	}
	if ship.Accepted != 2 || ship.Duplicates != 0 {
		t.Fatalf("ship response %+v", ship)
	}
	if got := jobs.appended["j1"]; len(got) != 2 {
		t.Fatalf("jobs saw %d appended runs, want 2", len(got))
	}

	comp := dispatch.Completion{State: "done", ExitCode: 0, Log: []byte("log"), Report: []byte("report")}
	if code := post(t, url, leasePath(reg.WorkerID, lr.LeaseID, "complete"), comp, nil); code != http.StatusOK {
		t.Fatalf("complete: status %d", code)
	}
	if got, ok := jobs.completed["j1"]; !ok || got.State != "done" {
		t.Fatalf("jobs saw completion %+v", got)
	}
	st := c.Stats()
	if st.LeasesHeld != 0 || st.RunsShippedTotal != 2 || st.JobsFailedOverTotal != 0 {
		t.Fatalf("stats after complete: %+v", st)
	}
	if len(jobs.requeuedJobs()) != 0 {
		t.Fatalf("completed job was requeued: %v", jobs.requeuedJobs())
	}
}

func TestLeaseExpiryFailsOverAndPrunesWorker(t *testing.T) {
	jobs := newFakeJobs(dispatch.Grant{JobID: "j1"})
	c, url := boot(t, jobs, dispatch.Config{LeaseTTL: 60 * time.Millisecond})

	reg := register(t, url)
	var lr dispatch.LeaseResponse
	if code := post(t, url, "/v1/workers/"+reg.WorkerID+"/lease", struct{}{}, &lr); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}

	// Fall silent: the sweeper must expire the lease and requeue the job.
	deadline := time.Now().Add(5 * time.Second)
	for len(jobs.requeuedJobs()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := jobs.requeuedJobs(); got[0] != "j1" {
		t.Fatalf("requeued %v, want j1", got)
	}
	st := c.Stats()
	if st.LeaseExpirationsTotal < 1 || st.JobsFailedOverTotal < 1 || st.LeasesHeld != 0 {
		t.Fatalf("stats after expiry: %+v", st)
	}

	// Shipping on the dead lease is refused — exactly one writer per job.
	if code := post(t, url, leasePath(reg.WorkerID, lr.LeaseID, "runs"), encodeRuns(t, inject.Run{}), nil); code != http.StatusGone {
		t.Fatalf("ship on expired lease: status %d, want 410", code)
	}

	// Two more silent TTLs and the worker itself is pruned.
	for c.LiveWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent worker never pruned")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := post(t, url, "/v1/workers/"+reg.WorkerID+"/lease", struct{}{}, nil); code != http.StatusGone {
		t.Fatalf("lease poll from pruned worker: status %d, want 410", code)
	}
}

func TestIdlePollKeepsWorkerAlive(t *testing.T) {
	jobs := newFakeJobs() // empty queue: the worker only polls
	c, url := boot(t, jobs, dispatch.Config{LeaseTTL: 60 * time.Millisecond})

	reg := register(t, url)
	// Poll past several prune deadlines; each 204 must refresh liveness.
	for i := 0; i < 20; i++ {
		if code := post(t, url, "/v1/workers/"+reg.WorkerID+"/lease", struct{}{}, nil); code != http.StatusNoContent {
			t.Fatalf("poll %d: status %d, want 204", i, code)
		}
		time.Sleep(15 * time.Millisecond)
	}
	if c.LiveWorkers() != 1 {
		t.Fatalf("polling worker was pruned (live=%d)", c.LiveWorkers())
	}
}

func TestGoneForUnknownIdentity(t *testing.T) {
	_, url := boot(t, newFakeJobs(), dispatch.Config{})
	for _, path := range []string{
		"/v1/workers/wbogus/lease",
		leasePath("wbogus", "lbogus", "heartbeat"),
		leasePath("wbogus", "lbogus", "complete"),
	} {
		if code := post(t, url, path, struct{}{}, nil); code != http.StatusGone {
			t.Errorf("%s: status %d, want 410", path, code)
		}
	}
	if code := post(t, url, leasePath("wbogus", "lbogus", "runs"), encodeRuns(t, inject.Run{}), nil); code != http.StatusGone {
		t.Errorf("ship with bogus lease: status %d, want 410", code)
	}
}

func TestLeaseMismatchedWorkerIsGone(t *testing.T) {
	jobs := newFakeJobs(dispatch.Grant{JobID: "j1"})
	_, url := boot(t, jobs, dispatch.Config{})
	reg1 := register(t, url)
	reg2 := register(t, url)
	var lr dispatch.LeaseResponse
	if code := post(t, url, "/v1/workers/"+reg1.WorkerID+"/lease", struct{}{}, &lr); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	// Another worker cannot renew or ship on someone else's lease.
	if code := post(t, url, leasePath(reg2.WorkerID, lr.LeaseID, "heartbeat"), struct{}{}, nil); code != http.StatusGone {
		t.Fatalf("cross-worker heartbeat: status %d, want 410", code)
	}
}

func TestTornChunkImportsNothing(t *testing.T) {
	jobs := newFakeJobs(dispatch.Grant{JobID: "j1"})
	c, url := boot(t, jobs, dispatch.Config{})
	reg := register(t, url)
	var lr dispatch.LeaseResponse
	if code := post(t, url, "/v1/workers/"+reg.WorkerID+"/lease", struct{}{}, &lr); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	chunk := encodeRuns(t, inject.Run{InjectionPoint: 0}, inject.Run{InjectionPoint: 1})
	torn := chunk[:len(chunk)-5]
	if code := post(t, url, leasePath(reg.WorkerID, lr.LeaseID, "runs"), torn, nil); code != http.StatusBadRequest {
		t.Fatalf("torn chunk: status %d, want 400", code)
	}
	if len(jobs.appended["j1"]) != 0 {
		t.Fatalf("torn chunk imported %d runs, want 0 (all-or-nothing)", len(jobs.appended["j1"]))
	}
	if st := c.Stats(); st.RunsShippedTotal != 0 {
		t.Fatalf("torn chunk counted as shipped: %+v", st)
	}
}

func TestStopRequeuesLeasedJobs(t *testing.T) {
	jobs := newFakeJobs(dispatch.Grant{JobID: "j1"})
	c, url := boot(t, jobs, dispatch.Config{})
	reg := register(t, url)
	var lr dispatch.LeaseResponse
	if code := post(t, url, "/v1/workers/"+reg.WorkerID+"/lease", struct{}{}, &lr); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	c.Stop()
	if got := jobs.requeuedJobs(); len(got) != 1 || got[0] != "j1" {
		t.Fatalf("stop requeued %v, want [j1]", got)
	}
	// Drain is not a worker death: no failover accounting.
	if st := c.Stats(); st.JobsFailedOverTotal != 0 || st.LeaseExpirationsTotal != 0 || st.WorkersLive != 0 {
		t.Fatalf("stats after stop: %+v", st)
	}
	// A stopped coordinator refuses new registrations with 410 so workers
	// back off and retry against the next boot.
	if code := post(t, url, "/v1/workers/register", dispatch.RegisterRequest{Name: "late"}, nil); code != http.StatusGone {
		t.Fatalf("register after stop: status %d, want 410", code)
	}
}

func TestRevokeJob(t *testing.T) {
	jobs := newFakeJobs(dispatch.Grant{JobID: "j1"})
	c, url := boot(t, jobs, dispatch.Config{})
	reg := register(t, url)
	var lr dispatch.LeaseResponse
	if code := post(t, url, "/v1/workers/"+reg.WorkerID+"/lease", struct{}{}, &lr); code != http.StatusOK {
		t.Fatalf("lease: status %d", code)
	}
	if !c.RevokeJob("j1") {
		t.Fatal("RevokeJob found no lease")
	}
	if c.RevokeJob("j1") {
		t.Fatal("second RevokeJob found a lease")
	}
	if code := post(t, url, leasePath(reg.WorkerID, lr.LeaseID, "heartbeat"), struct{}{}, nil); code != http.StatusGone {
		t.Fatalf("heartbeat after revoke: status %d, want 410", code)
	}
	// Revocation is finalization, not failover: nothing requeues.
	if len(jobs.requeuedJobs()) != 0 {
		t.Fatalf("revoked job was requeued: %v", jobs.requeuedJobs())
	}
}
