// HTTP handlers and wire types for the coordinator side of the protocol.
// The coordinator does not own a mux: internal/serve mounts these under
// its API (behind the write-scope bearer check), so workers authenticate
// exactly like submitting clients.
package dispatch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"failatomic/internal/replog"
)

// RegisterRequest is the body of POST /v1/workers/register.
type RegisterRequest struct {
	// Name labels the worker for operators (hostname:pid by convention).
	Name string `json:"name"`
}

// RegisterResponse tells a worker its identity and cadence. Durations are
// JSON-encoded as nanoseconds (Go's time.Duration encoding).
type RegisterResponse struct {
	WorkerID string        `json:"workerId"`
	LeaseTTL time.Duration `json:"leaseTTL"`
	Poll     time.Duration `json:"poll"`
}

// LeaseResponse is the 200 body of a successful lease acquisition: the
// lease identity plus the job grant. An idle queue returns 204 instead.
type LeaseResponse struct {
	LeaseID  string        `json:"leaseId"`
	LeaseTTL time.Duration `json:"leaseTTL"`
	Grant
}

// HeartbeatResponse acknowledges a renewal.
type HeartbeatResponse struct {
	LeaseTTL time.Duration `json:"leaseTTL"`
}

// ShipResponse acknowledges a run shipment. Duplicates counts runs the
// journal had already seen (retried chunks, failover re-runs) — dropped,
// not errors.
type ShipResponse struct {
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
}

// apiError is the JSON error body, matching the serve API's shape.
type apiError struct {
	Error string `json:"error"`
	// Gone marks a revoked or unknown worker/lease (HTTP 410): the worker
	// must abandon the job (its lease) or re-register (its identity).
	Gone bool `json:"gone,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeGone(w http.ResponseWriter, what string) {
	writeJSON(w, http.StatusGone, apiError{Error: what + " is unknown or expired; re-register", Gone: true})
}

// HandleRegister serves POST /v1/workers/register.
func (c *Coordinator) HandleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad register request: %v", err)})
		return
	}
	id, err := c.register(req.Name)
	if err == errGone {
		writeGone(w, "coordinator")
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{WorkerID: id, LeaseTTL: c.cfg.LeaseTTL, Poll: c.cfg.Poll})
}

// HandleLease serves POST /v1/workers/{worker}/lease: 200 with a grant,
// 204 when the queue is idle, 410 when the worker must re-register.
func (c *Coordinator) HandleLease(w http.ResponseWriter, r *http.Request) {
	grant, l, ok, err := c.acquire(r.PathValue("worker"))
	if err == errGone {
		writeGone(w, "worker")
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{LeaseID: l.id, LeaseTTL: c.cfg.LeaseTTL, Grant: grant})
}

// HandleHeartbeat serves POST /v1/workers/{worker}/leases/{lease}/heartbeat.
func (c *Coordinator) HandleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if _, err := c.renew(r.PathValue("worker"), r.PathValue("lease")); err != nil {
		writeGone(w, "lease")
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{LeaseTTL: c.cfg.LeaseTTL})
}

// HandleShip serves POST /v1/workers/{worker}/leases/{lease}/runs. The
// body is one replog chunk; a torn chunk imports nothing (400, the worker
// retries the whole chunk — duplicates from the retry are deduped).
func (c *Coordinator) HandleShip(w http.ResponseWriter, r *http.Request) {
	jobID, err := c.renew(r.PathValue("worker"), r.PathValue("lease"))
	if err != nil {
		writeGone(w, "lease")
		return
	}
	runs, err := replog.DecodeChunk(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	accepted, err := c.cfg.Jobs.AppendRuns(jobID, runs)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	c.runsShippedTotal.Add(int64(accepted))
	writeJSON(w, http.StatusOK, ShipResponse{Accepted: accepted, Duplicates: len(runs) - accepted})
}

// HandleComplete serves POST /v1/workers/{worker}/leases/{lease}/complete.
// A store/manifest failure keeps the lease so the worker can retry the
// upload.
func (c *Coordinator) HandleComplete(w http.ResponseWriter, r *http.Request) {
	leaseID := r.PathValue("lease")
	jobID, err := c.renew(r.PathValue("worker"), leaseID)
	if err != nil {
		writeGone(w, "lease")
		return
	}
	var comp Completion
	if err := json.NewDecoder(r.Body).Decode(&comp); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad completion: %v", err)})
		return
	}
	if comp.State != "done" && comp.State != "failed" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("completion state %q must be done or failed", comp.State)})
		return
	}
	if err := c.cfg.Jobs.Complete(jobID, comp); err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	c.release(leaseID)
	writeJSON(w, http.StatusOK, struct{}{})
}
