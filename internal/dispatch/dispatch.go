// Package dispatch is faserve's coordinator/worker protocol: it lets a
// coordinator stop running campaign jobs in-process and lease them to
// remote faworker processes instead, scaling the paper's embarrassingly
// parallel detection phase across machines while keeping the park/resume
// byte-identity contract.
//
// The protocol is small HTTP/JSON:
//
//	POST /v1/workers/register                          join the worker fleet
//	POST /v1/workers/{worker}/lease                    acquire a job lease (204 when idle)
//	POST /v1/workers/{worker}/leases/{lease}/heartbeat renew the lease TTL
//	POST /v1/workers/{worker}/leases/{lease}/runs      ship completed runs (a replog chunk)
//	POST /v1/workers/{worker}/leases/{lease}/complete  upload the terminal result
//
// Leases are the failover mechanism: a worker that stops heartbeating —
// crash, kill -9, partition — has its lease expired by the sweeper and
// the job is requeued with every shipped run already spliced into its
// journal, so the next worker resumes instead of restarting. A worker
// whose lease was revoked (expiry, cancellation, coordinator restart)
// sees 410 Gone on its next RPC and abandons the job; nothing it ships
// afterwards is accepted, which keeps exactly one writer per job journal.
//
// The package owns protocol and lease bookkeeping only. What a job *is*
// stays behind the Jobs interface, implemented by internal/serve over its
// durable queue; the worker-side loop lives in dispatch/worker.
package dispatch

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"failatomic/internal/inject"
)

// Defaults for Config zero values.
const (
	// DefaultLeaseTTL is how long a lease survives without a renewal.
	// Every worker RPC on the lease renews it.
	DefaultLeaseTTL = 10 * time.Second
	// DefaultPoll is the idle-poll interval suggested to workers.
	DefaultPoll = 500 * time.Millisecond
)

// Completion is a worker's terminal upload for one job.
type Completion struct {
	// State is "done" or "failed".
	State string `json:"state"`
	// ExitCode is the job's exit-code-equivalent (0 ok, 1 failure,
	// 2 quarantined).
	ExitCode int `json:"exitCode"`
	// Error describes a failed campaign.
	Error string `json:"error,omitempty"`
	// Log and Report are the final artifacts of a done job, rendered by
	// the worker through the same code paths fadetect uses locally.
	Log    []byte `json:"log,omitempty"`
	Report []byte `json:"report,omitempty"`
}

// Grant hands one claimed job to a worker.
type Grant struct {
	// JobID names the job on the coordinator.
	JobID string `json:"jobId"`
	// Spec is the job's spec, opaque to the dispatch layer (the worker
	// decodes it as serve.JobSpec).
	Spec json.RawMessage `json:"spec"`
	// Prefix is a replog chunk of the runs already journaled for this job
	// — non-empty exactly when the job is a failover or restart resume.
	// The worker imports it as inject.Options.Completed.
	Prefix []byte `json:"prefix,omitempty"`
}

// Jobs is what the coordinator needs from the job-queue owner
// (internal/serve). Implementations must be safe for concurrent use; the
// coordinator never holds its own lock across these calls.
type Jobs interface {
	// Claim pops the oldest runnable job for remote execution, returning
	// its grant (spec + journaled-run prefix). ok is false when nothing is
	// claimable.
	Claim() (g Grant, ok bool)
	// AppendRuns splices freshly shipped runs into the job's journal and
	// progress feed, returning how many were new — duplicates (a retried
	// chunk, a failed-over clean run) are dropped by the journal's
	// first-occurrence rule.
	AppendRuns(jobID string, runs []inject.Run) (accepted int, err error)
	// Complete finalizes a leased job with the worker's uploaded result.
	Complete(jobID string, c Completion) error
	// Requeue returns a leased job to the queue with its journal intact
	// (lease expiry or coordinator shutdown); the next claim resumes it.
	Requeue(jobID string)
}

// Config parameterizes a Coordinator.
type Config struct {
	Jobs Jobs
	// LeaseTTL is the heartbeat deadline (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Poll is the idle-poll interval suggested to workers (0 = DefaultPoll).
	Poll time.Duration
	// OnWorkersIdle, when non-nil, is called whenever the live-worker
	// count drops to zero — the queue owner uses it to wake its in-process
	// pool, which defers to remote workers while any are alive.
	OnWorkersIdle func()
}

// Stats is the dispatch slice of /metrics.
type Stats struct {
	WorkersRegisteredTotal int64
	WorkersLive            int64
	LeasesHeld             int64
	LeaseExpirationsTotal  int64
	RunsShippedTotal       int64
	JobsFailedOverTotal    int64
}

// workerState is one registered worker.
type workerState struct {
	id       string
	name     string
	lastSeen time.Time
	leases   map[string]*lease
}

// lease binds one job to one worker until it expires.
type lease struct {
	id       string
	workerID string
	jobID    string
	expires  time.Time
}

// Coordinator tracks the worker fleet and its leases.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	workers map[string]*workerState
	leases  map[string]*lease
	stopCh  chan struct{}
	started bool
	stopped bool
	wg      sync.WaitGroup

	registeredTotal  atomic.Int64
	expirationsTotal atomic.Int64
	runsShippedTotal atomic.Int64
	failedOverTotal  atomic.Int64
}

// New builds a coordinator; Start launches its lease sweeper.
func New(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	return &Coordinator{
		cfg:     cfg,
		workers: make(map[string]*workerState),
		leases:  make(map[string]*lease),
		stopCh:  make(chan struct{}),
	}
}

// Start launches the lease sweeper.
func (c *Coordinator) Start() {
	c.mu.Lock()
	if c.started || c.stopped {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	c.wg.Add(1)
	go c.sweeper()
}

// Stop halts the sweeper, drops every lease and requeues the leased jobs
// (journals intact, no failover accounting — this is the drain path, not
// a worker death), and forgets the worker fleet. Workers discover the
// shutdown as 410 Gone from their next RPC and re-register against the
// next boot.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	close(c.stopCh)
	orphans := make([]string, 0, len(c.leases))
	for _, l := range c.leases {
		orphans = append(orphans, l.jobID)
	}
	c.leases = make(map[string]*lease)
	c.workers = make(map[string]*workerState)
	c.mu.Unlock()
	c.wg.Wait()
	for _, jobID := range orphans {
		c.cfg.Jobs.Requeue(jobID)
	}
}

// sweeper expires leases and prunes dead workers on a fraction of the TTL.
func (c *Coordinator) sweeper() {
	defer c.wg.Done()
	interval := c.cfg.LeaseTTL / 4
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			c.sweep(time.Now())
		case <-c.stopCh:
			return
		}
	}
}

// sweep performs one expiry pass. Lease expiry is the failover edge: the
// job is requeued with its shipped-journal prefix intact, and the
// worker's id dies with its leases (it re-registers if it was merely
// partitioned).
func (c *Coordinator) sweep(now time.Time) {
	c.mu.Lock()
	var expired []string
	for id, l := range c.leases {
		if now.After(l.expires) {
			expired = append(expired, l.jobID)
			delete(c.leases, id)
			if w := c.workers[l.workerID]; w != nil {
				delete(w.leases, id)
			}
		}
	}
	// A worker is dead once it has no leases and has not spoken for two
	// TTLs (idle workers keep themselves alive by polling for leases).
	deadline := now.Add(-2 * c.cfg.LeaseTTL)
	for id, w := range c.workers {
		if len(w.leases) == 0 && w.lastSeen.Before(deadline) {
			delete(c.workers, id)
		}
	}
	idle := len(c.workers) == 0
	c.mu.Unlock()

	if n := len(expired); n > 0 {
		c.expirationsTotal.Add(int64(n))
		c.failedOverTotal.Add(int64(n))
		for _, jobID := range expired {
			c.cfg.Jobs.Requeue(jobID)
		}
	}
	// With no live workers left, the queue owner's in-process pool is the
	// only executor; nudge it every pass so a wakeup can never be lost.
	if idle && c.cfg.OnWorkersIdle != nil {
		c.cfg.OnWorkersIdle()
	}
}

// LiveWorkers reports the registered, recently seen worker count. The
// in-process pool defers to remote execution while it is nonzero.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Stats snapshots the dispatch metrics.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	live := int64(len(c.workers))
	held := int64(len(c.leases))
	c.mu.Unlock()
	return Stats{
		WorkersRegisteredTotal: c.registeredTotal.Load(),
		WorkersLive:            live,
		LeasesHeld:             held,
		LeaseExpirationsTotal:  c.expirationsTotal.Load(),
		RunsShippedTotal:       c.runsShippedTotal.Load(),
		JobsFailedOverTotal:    c.failedOverTotal.Load(),
	}
}

// RevokeJob drops the lease covering jobID, if any, without requeueing —
// the caller is finalizing the job (user cancellation). The worker's next
// RPC on the lease gets 410 and it abandons the campaign.
func (c *Coordinator) RevokeJob(jobID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, l := range c.leases {
		if l.jobID == jobID {
			delete(c.leases, id)
			if w := c.workers[l.workerID]; w != nil {
				delete(w.leases, id)
			}
			return true
		}
	}
	return false
}

// register admits one worker to the fleet.
func (c *Coordinator) register(name string) (string, error) {
	id, err := newID("w")
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return "", errGone
	}
	c.workers[id] = &workerState{id: id, name: name, lastSeen: time.Now(), leases: make(map[string]*lease)}
	c.registeredTotal.Add(1)
	return id, nil
}

// errGone marks RPCs against forgotten workers or leases; the HTTP layer
// renders it as 410.
var errGone = fmt.Errorf("dispatch: unknown or expired")

// touch refreshes a worker's liveness; unknown workers get errGone and
// must re-register.
func (c *Coordinator) touch(workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerID]
	if w == nil {
		return errGone
	}
	w.lastSeen = time.Now()
	return nil
}

// acquire claims one job for workerID under a fresh lease. ok is false
// when the queue has nothing runnable.
func (c *Coordinator) acquire(workerID string) (Grant, *lease, bool, error) {
	if err := c.touch(workerID); err != nil {
		return Grant{}, nil, false, err
	}
	grant, ok := c.cfg.Jobs.Claim()
	if !ok {
		return Grant{}, nil, false, nil
	}
	id, err := newID("l")
	if err != nil {
		// The job is already claimed; hand it back rather than losing it.
		c.cfg.Jobs.Requeue(grant.JobID)
		return Grant{}, nil, false, err
	}
	l := &lease{id: id, workerID: workerID, jobID: grant.JobID, expires: time.Now().Add(c.cfg.LeaseTTL)}
	c.mu.Lock()
	w := c.workers[workerID]
	if w == nil || c.stopped {
		c.mu.Unlock()
		c.cfg.Jobs.Requeue(grant.JobID)
		return Grant{}, nil, false, errGone
	}
	c.leases[id] = l
	w.leases[id] = l
	c.mu.Unlock()
	return grant, l, true, nil
}

// renew extends the lease named by (workerID, leaseID) and returns its
// jobID. Every on-lease RPC — heartbeat, shipment, completion — renews.
func (c *Coordinator) renew(workerID, leaseID string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.leases[leaseID]
	if l == nil || l.workerID != workerID {
		return "", errGone
	}
	l.expires = time.Now().Add(c.cfg.LeaseTTL)
	if w := c.workers[workerID]; w != nil {
		w.lastSeen = time.Now()
	}
	return l.jobID, nil
}

// release drops a completed lease.
func (c *Coordinator) release(leaseID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l := c.leases[leaseID]; l != nil {
		delete(c.leases, leaseID)
		if w := c.workers[l.workerID]; w != nil {
			delete(w.leases, leaseID)
		}
	}
}

// newID returns a random 16-hex-digit identifier with a type prefix.
func newID(prefix string) (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("dispatch: %w", err)
	}
	return prefix + hex.EncodeToString(b[:]), nil
}
