// The two concurrent targets and their sequential reference models. Each
// model mirrors its concrete object's semantics exactly — including the
// organic committed-then-throw of PutFresh and the version-free abstract
// state rendering — so a response or final-state mismatch in the checker
// always means a real linearizability violation, never model drift.
package concur

import (
	"fmt"

	"failatomic/internal/collections"
	"failatomic/internal/core"
	"failatomic/internal/fault"
	"failatomic/internal/inject"
)

// ---- LockedList target ----

// listSetup is the initial population applied to instance and model
// alike; scripts are sized so removals can outpace it only in large
// worker counts, where the organic NoSuchElement is mirrored by the
// model.
var listSetup = []int{7, 9}

func lockedListRegistry() *core.Registry {
	r := core.NewRegistry()
	collections.RegisterLockedLinkedList(r)
	return r
}

func newLockedListInstance() *Instance {
	l := collections.NewLockedLinkedList(nil)
	for i := len(listSetup) - 1; i >= 0; i-- {
		l.InsertFirst(listSetup[i])
	}
	return &Instance{
		SetGap: func(fn func()) { l.Gap = fn },
		Apply: func(op Op) string {
			switch op.Name {
			case "InsertPair":
				l.InsertPair(op.A, op.B)
				return "ok"
			case "InsertFirst":
				l.InsertFirst(op.A)
				return "ok"
			case "RemoveFirst":
				return respOf(l.RemoveFirst())
			case "RemoveOne":
				return respOf(l.RemoveOne(op.A))
			case "Includes":
				return respOf(l.Includes(op.A))
			default:
				panic(fmt.Sprintf("concur: LockedList has no scripted op %q", op.Name))
			}
		},
		Final: func() string {
			return fmt.Sprintf("size=%d %v", l.Size(), l.ToSlice())
		},
	}
}

// listModel is the sequential reference for LockedList: a plain slice in
// list order.
type listModel struct {
	elems []collections.Item
}

func newListModel() Model {
	m := &listModel{}
	for _, v := range listSetup {
		m.elems = append(m.elems, v)
	}
	return m
}

func (m *listModel) Clone() Model {
	return &listModel{elems: append([]collections.Item(nil), m.elems...)}
}

func (m *listModel) Apply(op Op) string {
	switch op.Name {
	case "InsertPair":
		m.elems = append([]collections.Item{op.A, op.B}, m.elems...)
		return "ok"
	case "InsertFirst":
		m.elems = append([]collections.Item{op.A}, m.elems...)
		return "ok"
	case "RemoveFirst":
		if len(m.elems) == 0 {
			return "throw:" + string(fault.NoSuchElement)
		}
		v := m.elems[0]
		m.elems = m.elems[1:]
		return respOf(v)
	case "RemoveOne":
		for i, e := range m.elems {
			if collections.SameItem(e, op.A) {
				m.elems = append(m.elems[:i:i], m.elems[i+1:]...)
				return "true"
			}
		}
		return "false"
	case "Includes":
		for _, e := range m.elems {
			if collections.SameItem(e, op.A) {
				return "true"
			}
		}
		return "false"
	default:
		panic(fmt.Sprintf("concur: list model has no scripted op %q", op.Name))
	}
}

func (m *listModel) Final() string {
	return fmt.Sprintf("size=%d %v", len(m.elems), append([]collections.Item{}, m.elems...))
}

// lockedListScripts builds the per-worker mixes. Even workers run the
// compound InsertPair (the gap-window subject) on a worker-private value
// pair; odd workers observe and mutate the shared prefix — RemoveFirst is
// the observation that can consume a pair element inside another worker's
// gap, which is exactly the witness of the non-linearizable flip.
func lockedListScripts(n int) [][]Op {
	scripts := make([][]Op, n)
	for w := 0; w < n; w++ {
		v := 100 * (w + 1)
		if w%2 == 0 {
			scripts[w] = []Op{
				op2("InsertPair", v+1, v+2),
				op1("Includes", v+1),
				op1("RemoveOne", v+2),
			}
		} else {
			scripts[w] = []Op{
				op0("RemoveFirst"),
				op1("InsertFirst", v+1),
				op1("Includes", listSetup[0]),
			}
		}
	}
	return scripts
}

func lockedListTarget() Target {
	reg := lockedListRegistry()
	return Target{
		Name:     "LinkedList",
		Lang:     "java",
		Registry: reg,
		Scripts:  lockedListScripts,
		New:      newLockedListInstance,
		Model:    newListModel,
		Program: func(workers int) *inject.Program {
			return &inject.Program{
				Name:     "LinkedList",
				Lang:     "java",
				Registry: reg,
				Run:      sequentialRun(newLockedListInstance, lockedListScripts, workers),
			}
		},
	}
}

// ---- LockedRBMap target ----

// mapSetup is the initial key→value population.
var mapSetup = [][2]int{{1, 10}, {2, 20}}

func lockedMapRegistry() *core.Registry {
	r := core.NewRegistry()
	collections.RegisterLockedRBMap(r)
	return r
}

func newLockedMapInstance() *Instance {
	m := collections.NewLockedRBMap(nil)
	for _, kv := range mapSetup {
		m.Put(kv[0], kv[1])
	}
	return &Instance{
		SetGap: func(fn func()) { m.Gap = fn },
		Apply: func(op Op) string {
			switch op.Name {
			case "PutFresh":
				m.PutFresh(op.A, op.B)
				return "ok"
			case "Put":
				return respOf(m.Put(op.A, op.B))
			case "Get":
				return respOf(m.Get(op.A))
			case "Remove":
				return respOf(m.Remove(op.A))
			default:
				panic(fmt.Sprintf("concur: LockedRBMap has no scripted op %q", op.Name))
			}
		},
		Final: func() string {
			return fmt.Sprintf("size=%d keys=%v vals=%v", m.Size(), m.Keys(), m.Values())
		},
	}
}

// mapPair is one key→value entry of the map model, kept sorted by key.
type mapPair struct{ k, v int }

type mapModel struct {
	pairs []mapPair
}

func newMapModel() Model {
	m := &mapModel{}
	for _, kv := range mapSetup {
		m.put(kv[0], kv[1])
	}
	return m
}

func (m *mapModel) Clone() Model {
	return &mapModel{pairs: append([]mapPair(nil), m.pairs...)}
}

// put applies an insert-or-replace and returns the previous value and
// whether one existed.
func (m *mapModel) put(k, v int) (int, bool) {
	for i, p := range m.pairs {
		if p.k == k {
			m.pairs[i].v = v
			return p.v, true
		}
		if p.k > k {
			m.pairs = append(m.pairs[:i:i], append([]mapPair{{k, v}}, m.pairs[i:]...)...)
			return 0, false
		}
	}
	m.pairs = append(m.pairs, mapPair{k, v})
	return 0, false
}

func (m *mapModel) Apply(op Op) string {
	switch op.Name {
	case "PutFresh":
		// Mirrors LockedRBMap.PutFresh exactly: the replacement commits,
		// then a stale key throws — committed-then-throw.
		if _, had := m.put(op.A.(int), op.B.(int)); had {
			return "throw:" + string(fault.IllegalArgument)
		}
		return "ok"
	case "Put":
		old, had := m.put(op.A.(int), op.B.(int))
		if !had {
			return respOf(nil)
		}
		return respOf(old)
	case "Get":
		for _, p := range m.pairs {
			if p.k == op.A.(int) {
				return respOf(p.v)
			}
		}
		return respOf(nil)
	case "Remove":
		for i, p := range m.pairs {
			if p.k == op.A.(int) {
				m.pairs = append(m.pairs[:i:i], m.pairs[i+1:]...)
				return respOf(p.v)
			}
		}
		return respOf(nil)
	default:
		panic(fmt.Sprintf("concur: map model has no scripted op %q", op.Name))
	}
}

func (m *mapModel) Final() string {
	keys := make([]collections.Item, len(m.pairs))
	vals := make([]collections.Item, len(m.pairs))
	for i, p := range m.pairs {
		keys[i] = p.k
		vals[i] = p.v
	}
	return fmt.Sprintf("size=%d keys=%v vals=%v", len(m.pairs), keys, vals)
}

// lockedMapScripts builds the per-worker mixes. Even workers race
// PutFresh on the same contended key (the loser's organic
// committed-then-throw is the honest non-atomic-but-linearizable shape);
// odd workers churn the shared prefix and claim fresh private keys.
func lockedMapScripts(n int) [][]Op {
	scripts := make([][]Op, n)
	for w := 0; w < n; w++ {
		if w%2 == 0 {
			scripts[w] = []Op{
				op2("PutFresh", 5, 50+w),
				op1("Get", mapSetup[0][0]),
				op1("Remove", 10+w),
			}
		} else {
			scripts[w] = []Op{
				op2("Put", mapSetup[1][0], 200+w),
				op1("Get", 5),
				op2("PutFresh", 20+w, w),
			}
		}
	}
	return scripts
}

func lockedMapTarget() Target {
	reg := lockedMapRegistry()
	return Target{
		Name:     "RBMap",
		Lang:     "java",
		Registry: reg,
		Scripts:  lockedMapScripts,
		New:      newLockedMapInstance,
		Model:    newMapModel,
		Program: func(workers int) *inject.Program {
			return &inject.Program{
				Name:     "RBMap",
				Lang:     "java",
				Registry: reg,
				Run:      sequentialRun(newLockedMapInstance, lockedMapScripts, workers),
			}
		},
	}
}

// sequentialRun builds the single-threaded equivalent workload: the same
// scripts, applied in worker order by one goroutine, every exception
// guarded so the workload completes. With no Gap installed the
// compound-op windows are unobservable — which is why methods like
// InsertPair classify failure atomic here and flip only under the
// concurrent driver.
func sequentialRun(newInst func() *Instance, scripts func(int) [][]Op, workers int) func() {
	return func() {
		inst := newInst()
		for _, script := range scripts(workers) {
			for _, op := range script {
				func() {
					// Guard each op like the apps workloads guard their
					// organic failures: swallow whatever exception arrives
					// so the remaining ops still execute.
					defer func() { _ = recover() }()
					inst.Apply(op)
				}()
			}
		}
	}
}
