// The schedule campaign: the concurrent analog of inject.Campaign. One
// fault-free pass sizes each worker's injection-point space and checks
// the harness against the model; then one execution per schedule id, each
// with a designated (worker, point) fault drawn from the schedule's
// seeded RNG — the same RNG that then drives the interleaving, so a
// schedule id plus the campaign seed replays the exact execution. Runs
// carry RunKey{Strategy: "concur", Point, Arg, Sched}, which makes
// journals, -resume splicing, chunk shipping and the drift gate compose
// unchanged with the single-threaded pipeline.
package concur

import (
	"fmt"
	"math/rand"

	"failatomic/internal/detect"
	"failatomic/internal/inject"
)

// schedSeedStride spreads schedule ids across the seed space (Fibonacci
// hashing constant) so neighboring schedules get unrelated RNG streams.
const schedSeedStride = 2654435769

// rngFor returns schedule sid's RNG. Schedule 0 is the clean pass.
func rngFor(seed int64, sid int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(sid)*schedSeedStride))
}

// Options configures a schedule campaign.
type Options struct {
	// Workers is the driver's goroutine count (DefaultWorkers when 0).
	Workers int
	// Schedules is the number of faulted schedules (DefaultSchedules when
	// 0).
	Schedules int
	// Seed selects the schedule plan (DefaultSeed when 0).
	Seed int64
	// OnRun streams every freshly executed run (journal hook); spliced
	// runs are not re-notified.
	OnRun func(inject.Run) error
	// Completed maps run keys recovered from a seeded journal to their
	// recorded runs; the campaign splices them instead of re-executing.
	Completed map[inject.RunKey]inject.Run
}

// Result is one schedule campaign's outcome.
type Result struct {
	// Target is the subject's name.
	Target string
	// Workers/Schedules/Seed are the resolved campaign parameters.
	Workers   int
	Schedules int
	Seed      int64
	// Inject is the run-level result, log-writable by replog.Write like
	// any single-threaded campaign's; its "concur" section carries Report.
	Inject *inject.Result
	// Report is the rendered concurrent-detection report section.
	Report string
}

// schedPlan is one schedule's designated fault.
type schedPlan struct {
	worker int
	point  int
}

// Campaign runs the full schedule experiment for target t.
func Campaign(t *Target, opts Options) (*Result, error) {
	workers := opts.Workers
	if workers == 0 {
		workers = DefaultWorkers
	}
	schedules := opts.Schedules
	if schedules == 0 {
		schedules = DefaultSchedules
	}
	seed := EffectiveSeed(opts.Seed)
	if err := (Spec{Workers: workers, Schedules: schedules}).Validate(); err != nil {
		return nil, err
	}

	// Fault-free pass: sizes every worker's injection-point space, yields
	// the clean-call weights, and guards against model drift — a
	// fault-free schedule the model cannot explain means the harness or
	// the model is wrong, not the subject.
	clean := runSchedule(t, rngFor(seed, 0), workers, -1, 0)
	cleanVerdict, cleanWitness := verdictOf(t, clean)
	if cleanVerdict != detect.ConcurAtomic {
		return nil, fmt.Errorf("concur: the fault-free schedule of %s is not explained by the sequential model (final %s) — harness or model drift", t.Name, clean.final)
	}

	plans := make([]schedPlan, schedules+1)
	for sid := 1; sid <= schedules; sid++ {
		rng := rngFor(seed, sid)
		fw := rng.Intn(workers)
		fp := 0
		if clean.points[fw] > 0 {
			fp = 1 + rng.Intn(clean.points[fw])
		}
		plans[sid] = schedPlan{worker: fw, point: fp}
	}
	if err := validateCompleted(opts.Completed, plans, schedules); err != nil {
		return nil, err
	}

	res := &inject.Result{
		Program: &inject.Program{
			Name:     t.Name,
			Lang:     t.Lang,
			Registry: t.Registry,
		},
		CleanCalls: mergeCalls(clean.calls),
	}
	for _, p := range clean.points {
		res.TotalPoints += p
	}

	cleanRun := inject.Run{Concur: outcomeOf(clean, workers, -1, cleanVerdict, cleanWitness)}
	res.Runs = append(res.Runs, cleanRun)
	if _, journaled := opts.Completed[inject.RunKey{}]; !journaled {
		if err := notify(opts, cleanRun); err != nil {
			return nil, err
		}
	}

	for sid := 1; sid <= schedules; sid++ {
		p := plans[sid]
		key := inject.RunKey{Strategy: inject.ConcurStrategy, Point: p.point, Arg: p.worker, Sched: sid}
		if run, ok := opts.Completed[key]; ok {
			res.Runs = append(res.Runs, run)
			if run.Injected != nil {
				res.Injections++
			}
			continue
		}
		// Re-deriving the schedule RNG re-draws the planned fault, leaving
		// the stream positioned exactly where the interleaving draws
		// start — replay-identical with the planning pass.
		rng := rngFor(seed, sid)
		fw := rng.Intn(workers)
		if clean.points[fw] > 0 {
			_ = rng.Intn(clean.points[fw])
		}
		sr := runSchedule(t, rng, workers, p.worker, p.point)
		verdict, witness := verdictOf(t, sr)
		run := inject.Run{
			InjectionPoint: p.point,
			Strategy:       inject.ConcurStrategy,
			Arg:            p.worker,
			Sched:          sid,
			Injected:       sr.injected,
			Concur:         outcomeOf(sr, workers, p.worker, verdict, witness),
		}
		res.Runs = append(res.Runs, run)
		if run.Injected != nil {
			res.Injections++
		}
		if err := notify(opts, run); err != nil {
			return nil, err
		}
	}

	report := detect.RenderConcur(res, workers, schedules, seed)
	res.Sections = []inject.Section{{Name: inject.ConcurStrategy, Text: report}}
	return &Result{
		Target:    t.Name,
		Workers:   workers,
		Schedules: schedules,
		Seed:      seed,
		Inject:    res,
		Report:    report,
	}, nil
}

// validateCompleted rejects journal runs outside this campaign's schedule
// plan — the usual causes are changed workers/schedules flags or a
// journal from a different subject (a different seed is already rejected
// by the journal header).
func validateCompleted(completed map[inject.RunKey]inject.Run, plans []schedPlan, schedules int) error {
	for key := range completed {
		if key == (inject.RunKey{}) {
			continue
		}
		if key.Strategy == inject.ConcurStrategy && key.Sched >= 1 && key.Sched <= schedules {
			if p := plans[key.Sched]; p.worker == key.Arg && p.point == key.Point {
				continue
			}
		}
		return fmt.Errorf("concur: resume journal holds %s outside this campaign's schedule plan (different -concur workers/sched or -seed?) — rerun with the original flags or delete the journal", key)
	}
	return nil
}

func notify(opts Options, run inject.Run) error {
	if opts.OnRun == nil {
		return nil
	}
	if err := opts.OnRun(run); err != nil {
		return fmt.Errorf("concur: OnRun %s: %w", run.Key(), err)
	}
	return nil
}

// mergeCalls sums the per-worker clean-pass call counts.
func mergeCalls(perWorker []map[string]int64) map[string]int64 {
	merged := make(map[string]int64)
	for _, calls := range perWorker {
		for name, n := range calls {
			merged[name] += n
		}
	}
	return merged
}

// outcomeOf packages one scheduled execution as its wire-format record.
func outcomeOf(sr schedResult, workers, faultWorker int, verdict detect.ConcurVerdict, witness string) *inject.ConcurOutcome {
	oc := &inject.ConcurOutcome{
		Workers:     workers,
		FaultWorker: faultWorker,
		Verdict:     verdict.String(),
		Final:       sr.final,
		Witness:     witness,
	}
	if sr.faultIdx >= 0 {
		oc.FaultOp = sr.entries[sr.faultIdx].rec.Name
	}
	for _, e := range sr.entries {
		oc.History = append(oc.History, e.rec)
	}
	return oc
}
