// The linearization checker. A recorded history is linearizable iff some
// linear extension of its interval order (op A precedes op B iff A ended
// before B started), applied to the sequential model, reproduces every
// non-faulted response and the observed final state. The faulted
// operation is special-cased by mode: in abort mode it is placed but
// applies no effect (the fault rolled back completely — atomic); in
// commit mode its full effect applies and its response is not checked
// (the fault struck after the operation committed — non-atomic but
// honest). The verdict ladder in verdictOf tries abort before commit, so
// the strongest explanation wins.
package concur

import (
	"fmt"
	"strings"

	"failatomic/internal/detect"
)

// linearize searches the linear extensions of the history's interval
// order for one the model accepts. faultIdx indexes the faulted entry (-1
// when none); commit selects the faulted entry's mode. It returns the
// witness rendering of the first accepted order.
func linearize(entries []histEntry, model Model, final string, faultIdx int, commit bool) (string, bool) {
	n := len(entries)
	used := make([]bool, n)
	order := make([]int, 0, n)

	var dfs func(m Model, placed int) bool
	dfs = func(m Model, placed int) bool {
		if placed == n {
			return m.Final() == final
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// i is a minimal element iff no unplaced entry ended before i
			// started. Token-passing makes most intervals single-step and
			// disjoint, so usually exactly one entry qualifies and the
			// search is near-linear; only entries overlapping a gap window
			// branch.
			minimal := true
			for j := 0; j < n; j++ {
				if j != i && !used[j] && entries[j].rec.End < entries[i].rec.Start {
					minimal = false
					break
				}
			}
			if !minimal {
				continue
			}
			next := m
			if i == faultIdx {
				if commit {
					next = m.Clone()
					next.Apply(entries[i].op)
				}
			} else {
				next = m.Clone()
				if next.Apply(entries[i].op) != entries[i].rec.Resp {
					continue
				}
			}
			used[i] = true
			order = append(order, i)
			if dfs(next, placed+1) {
				return true
			}
			used[i] = false
			order = order[:len(order)-1]
		}
		return false
	}

	if !dfs(model, 0) {
		return "", false
	}
	parts := make([]string, n)
	for k, i := range order {
		parts[k] = fmt.Sprintf("w%d:%s", entries[i].rec.Worker, entries[i].rec.Name)
	}
	return strings.Join(parts, " "), true
}

// verdictOf classifies one schedule's observation.
func verdictOf(t *Target, res schedResult) (detect.ConcurVerdict, string) {
	if res.faultIdx < 0 {
		if w, ok := linearize(res.entries, t.Model(), res.final, -1, false); ok {
			return detect.ConcurAtomic, w
		}
		return detect.ConcurNonLinearizable, ""
	}
	if w, ok := linearize(res.entries, t.Model(), res.final, res.faultIdx, false); ok {
		return detect.ConcurAtomic, w
	}
	if w, ok := linearize(res.entries, t.Model(), res.final, res.faultIdx, true); ok {
		return detect.ConcurLinearizable, w
	}
	return detect.ConcurNonLinearizable, ""
}
