// Tests for the schedule campaign: the flip the subsystem exists to
// expose (single-threaded failure atomic, concurrently non-linearizable),
// replay determinism, resume splicing, and spec admission.
package concur_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"failatomic/internal/concur"
	"failatomic/internal/detect"
	"failatomic/internal/inject"
	"failatomic/internal/replog"
)

func target(t *testing.T, name string) concur.Target {
	t.Helper()
	tgt, ok := concur.ByName(name)
	if !ok {
		t.Fatalf("concurrent target %q missing (have: %v)", name, concur.Names())
	}
	return tgt
}

// TestFlipAtomicSequentiallyNonLinearizableConcurrently pins the headline
// result: LockedList.InsertPair classifies failure atomic under the
// ordinary single-threaded campaign (every failure path compensates
// completely), yet under the default schedule campaign at least one
// faulted InsertPair schedule is non-linearizable — the fault's partial
// effect leaked through the compound-op window to another worker.
func TestFlipAtomicSequentiallyNonLinearizableConcurrently(t *testing.T) {
	tgt := target(t, "LinkedList")

	seq, err := inject.Campaign(context.Background(), tgt.Program(concur.DefaultWorkers), inject.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cls := detect.Classify(seq, detect.Options{})
	rep := cls.Methods["LockedList.InsertPair"]
	if rep == nil {
		t.Fatalf("sequential campaign never called LockedList.InsertPair; methods: %v", cls.Names())
	}
	if rep.Classification != detect.ClassAtomic {
		t.Fatalf("sequential LockedList.InsertPair = %s, want failure atomic (the flip needs a clean single-threaded verdict)", rep.Classification)
	}

	res, err := concur.Campaign(&tgt, concur.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := detect.SummarizeConcur(res.Inject)
	if sum.Clean != detect.ConcurAtomic.String() {
		t.Errorf("clean schedule verdict = %q, want atomic", sum.Clean)
	}
	if sum.NonLinearizable == 0 {
		t.Fatalf("no non-linearizable schedule in %d schedules; report:\n%s", sum.Schedules, res.Report)
	}
	if sum.MinFailingSched == 0 {
		t.Error("summary carries no minimal failing schedule id")
	}
	flipped := false
	for _, run := range detect.ConcurRuns(res.Inject) {
		oc := run.Concur
		if oc.FaultWorker < 0 {
			continue
		}
		if detect.ParseConcurVerdict(oc.Verdict) == detect.ConcurNonLinearizable &&
			strings.HasPrefix(oc.FaultOp, "InsertPair") {
			flipped = true
		}
	}
	if !flipped {
		t.Errorf("no non-linearizable schedule faulted InsertPair; report:\n%s", res.Report)
	}
	if !strings.Contains(res.Report, "no linearization of the sequential model explains this history") {
		t.Error("report lacks the minimal-failing-schedule callout")
	}
}

// TestRBMapMixesVerdicts: the locked map's PutFresh is honest
// committed-then-throw, so its faulted schedules include
// non-atomic-but-linearizable outcomes alongside atomic ones.
func TestRBMapMixesVerdicts(t *testing.T) {
	tgt := target(t, "RBMap")
	res, err := concur.Campaign(&tgt, concur.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := detect.SummarizeConcur(res.Inject)
	if sum.Clean != detect.ConcurAtomic.String() {
		t.Errorf("clean schedule verdict = %q, want atomic", sum.Clean)
	}
	if sum.Atomic == 0 || sum.Linearizable == 0 {
		t.Errorf("verdict mix = %d atomic / %d linearizable / %d non-linearizable, want both atomic and non-atomic-but-linearizable schedules:\n%s",
			sum.Atomic, sum.Linearizable, sum.NonLinearizable, res.Report)
	}
}

// TestCampaignDeterministic: the same target, spec and seed produce
// byte-identical reports and byte-identical logs across executions — the
// property every downstream byte-identity guarantee (resume, serve,
// dispatch, CI goldens) rests on.
func TestCampaignDeterministic(t *testing.T) {
	tgt := target(t, "LinkedList")
	opts := concur.Options{Workers: 4, Schedules: 16, Seed: 1}
	a, err := concur.Campaign(&tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := concur.Campaign(&tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report != b.Report {
		t.Errorf("reports differ across identical campaigns:\n--- first\n%s\n--- second\n%s", a.Report, b.Report)
	}
	var la, lb bytes.Buffer
	if err := replog.Write(&la, a.Inject); err != nil {
		t.Fatal(err)
	}
	if err := replog.Write(&lb, b.Inject); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(la.Bytes(), lb.Bytes()) {
		t.Error("logs differ across identical campaigns")
	}
}

// TestSeedChangesPlan: a different seed draws a different schedule plan.
func TestSeedChangesPlan(t *testing.T) {
	tgt := target(t, "LinkedList")
	a, err := concur.Campaign(&tgt, concur.Options{Workers: 4, Schedules: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := concur.Campaign(&tgt, concur.Options{Workers: 4, Schedules: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report == b.Report {
		t.Error("seeds 1 and 2 produced identical reports; the seed is not reaching the plan")
	}
}

// TestResumeSpliceByteIdentity: replaying a campaign with half its runs
// pre-recorded in Completed splices them without re-execution — only the
// remainder is freshly notified — and the final report and log bytes are
// identical to the uninterrupted run.
func TestResumeSpliceByteIdentity(t *testing.T) {
	tgt := target(t, "LinkedList")
	opts := concur.Options{Workers: 4, Schedules: 16, Seed: 1}

	var runs []inject.Run
	full, err := concur.Campaign(&tgt, concur.Options{
		Workers: opts.Workers, Schedules: opts.Schedules, Seed: opts.Seed,
		OnRun: func(r inject.Run) error { runs = append(runs, r); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != opts.Schedules+1 {
		t.Fatalf("full campaign notified %d runs, want %d (clean + schedules)", len(runs), opts.Schedules+1)
	}

	half := len(runs) / 2
	completed := make(map[inject.RunKey]inject.Run, half)
	for _, r := range runs[:half] {
		completed[r.Key()] = r
	}
	fresh := 0
	resumed, err := concur.Campaign(&tgt, concur.Options{
		Workers: opts.Workers, Schedules: opts.Schedules, Seed: opts.Seed,
		Completed: completed,
		OnRun:     func(inject.Run) error { fresh++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if fresh != len(runs)-half {
		t.Errorf("resumed campaign notified %d fresh runs, want %d", fresh, len(runs)-half)
	}
	if resumed.Report != full.Report {
		t.Errorf("resumed report differs from uninterrupted report:\n--- resumed\n%s\n--- full\n%s", resumed.Report, full.Report)
	}
	var lf, lr bytes.Buffer
	if err := replog.Write(&lf, full.Inject); err != nil {
		t.Fatal(err)
	}
	if err := replog.Write(&lr, resumed.Inject); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lf.Bytes(), lr.Bytes()) {
		t.Error("resumed log bytes differ from the uninterrupted campaign's")
	}
}

// TestCampaignRejectsForeignJournalRuns: a Completed run outside this
// campaign's schedule plan (changed flags, wrong subject) fails the
// campaign instead of silently polluting it.
func TestCampaignRejectsForeignJournalRuns(t *testing.T) {
	tgt := target(t, "LinkedList")
	bogus := inject.RunKey{Strategy: inject.ConcurStrategy, Point: 999, Arg: 0, Sched: 1}
	_, err := concur.Campaign(&tgt, concur.Options{
		Workers: 4, Schedules: 16, Seed: 1,
		Completed: map[inject.RunKey]inject.Run{bogus: {InjectionPoint: 999, Strategy: inject.ConcurStrategy, Sched: 1}},
	})
	if err == nil || !strings.Contains(err.Error(), "schedule plan") {
		t.Errorf("foreign journal run: err = %v, want schedule-plan rejection", err)
	}
}

// TestParseSpec covers the -concur grammar and the admission bounds
// shared with faserve and faworker.
func TestParseSpec(t *testing.T) {
	good := []struct {
		in              string
		workers, scheds int
	}{
		{"", concur.DefaultWorkers, concur.DefaultSchedules},
		{"workers=8", 8, concur.DefaultSchedules},
		{"sched=16", concur.DefaultWorkers, 16},
		{"workers=2,sched=1", 2, 1},
		{" workers=4 , sched=64 ", 4, 64},
	}
	for _, tc := range good {
		sp, err := concur.ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if sp.Workers != tc.workers || sp.Schedules != tc.scheds {
			t.Errorf("ParseSpec(%q) = %+v, want workers=%d sched=%d", tc.in, sp, tc.workers, tc.scheds)
		}
	}
	bad := []string{"workers", "workers=x", "warp=1", "workers=1", "workers=17", "sched=0", "sched=4097"}
	for _, in := range bad {
		if _, err := concur.ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want rejection", in)
		}
	}
}

// TestEffectiveSeed: the zero seed maps to the default so "seed 0" never
// collides with the seedless journals of single-threaded campaigns.
func TestEffectiveSeed(t *testing.T) {
	if got := concur.EffectiveSeed(0); got != concur.DefaultSeed {
		t.Errorf("EffectiveSeed(0) = %d, want %d", got, concur.DefaultSeed)
	}
	if got := concur.EffectiveSeed(42); got != 42 {
		t.Errorf("EffectiveSeed(42) = %d, want 42", got)
	}
}
