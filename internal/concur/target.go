// Package concur is the concurrent-object detection harness: it runs
// scripted operation mixes from N worker goroutines against one shared
// receiver under a deterministic cooperative scheduler, injects a fault
// into exactly one designated worker at a designated injection point,
// records the complete per-worker operation/response history, and checks
// the faulted history against the linearizations of a sequential
// reference model (detect.ConcurVerdict). The paper's campaigns are
// single-threaded by construction (§4.4); this package extends Step 3 to
// the concurrent setting the paper's caveat points at: a method whose
// failure paths compensate perfectly in isolation can still leak a
// fault's partial effect to another thread.
package concur

import (
	"fmt"
	"strings"

	"failatomic/internal/collections"
	"failatomic/internal/core"
	"failatomic/internal/inject"
)

// Defaults for schedule campaigns; EffectiveSeed maps the unset seed to
// DefaultSeed so "seed 0" never collides with the seedless journals of
// single-threaded campaigns.
const (
	DefaultWorkers   = 4
	DefaultSchedules = 64
	DefaultSeed      = 1
)

// Bounds on schedule campaigns, enforced everywhere a spec is admitted
// (CLI flags, faserve job admission, faworker leases).
const (
	MinWorkers   = 2
	MaxWorkers   = 16
	MinSchedules = 1
	MaxSchedules = 4096
)

// EffectiveSeed resolves an unset (zero) seed to the default.
func EffectiveSeed(seed int64) int64 {
	if seed == 0 {
		return DefaultSeed
	}
	return seed
}

// Op is one scripted operation against the shared receiver. A and B are
// its arguments; NArgs says how many are meaningful.
type Op struct {
	Name  string
	A, B  collections.Item
	NArgs int
}

func op0(name string) Op { return Op{Name: name} }

func op1(name string, a collections.Item) Op { return Op{Name: name, A: a, NArgs: 1} }

func op2(name string, a, b collections.Item) Op { return Op{Name: name, A: a, B: b, NArgs: 2} }

// String renders the operation with its arguments, the form used in
// histories and reports: "InsertPair(101,102)".
func (o Op) String() string {
	switch o.NArgs {
	case 1:
		return fmt.Sprintf("%s(%v)", o.Name, o.A)
	case 2:
		return fmt.Sprintf("%s(%v,%v)", o.Name, o.A, o.B)
	default:
		return o.Name
	}
}

// respOf renders a returned value as a history response.
func respOf(v any) string { return fmt.Sprint(v) }

// Instance is one live shared receiver: Apply executes an op (exceptions
// propagate as panics), Final renders the abstract final state, and
// SetGap installs the scheduler's yield into the receiver's compound-op
// window.
type Instance struct {
	SetGap func(fn func())
	Apply  func(op Op) string
	Final  func() string
}

// Model is the sequential reference: a pure value the linearization
// checker clones at every branch. Apply returns the response rendering an
// Instance would produce for the same op on the same abstract state, and
// Final must render identically to Instance.Final.
type Model interface {
	Clone() Model
	Apply(op Op) string
	Final() string
}

// Target is one concurrent detection subject.
type Target struct {
	// Name matches the fadetect -app convention of the apps registry.
	Name string
	// Lang tags the evaluation group.
	Lang string
	// Registry is the subject's method registry (shared, read-only).
	Registry *core.Registry
	// Scripts returns the per-worker operation scripts for n workers.
	Scripts func(n int) [][]Op
	// New constructs a fresh populated shared receiver.
	New func() *Instance
	// Model constructs the matching populated sequential model.
	Model func() Model
	// Program builds the single-threaded equivalent workload — the same
	// scripts applied sequentially by one goroutine — so the ordinary
	// campaign can classify the same methods for the flip comparison.
	Program func(workers int) *inject.Program
}

// All returns every concurrent target.
func All() []Target {
	return []Target{lockedListTarget(), lockedMapTarget()}
}

// ByName finds a target by name.
func ByName(name string) (Target, bool) {
	for _, t := range All() {
		if t.Name == name {
			return t, true
		}
	}
	return Target{}, false
}

// Names returns all target names in registration order.
func Names() []string {
	targets := All()
	names := make([]string, len(targets))
	for i, t := range targets {
		names[i] = t.Name
	}
	return names
}

// Spec is a parsed -concur flag / job admission spec.
type Spec struct {
	Workers   int
	Schedules int
}

// ParseSpec parses the -concur flag value: comma-separated
// "workers=N,sched=M", each key optional, defaults applied.
func ParseSpec(s string) (Spec, error) {
	sp := Spec{Workers: DefaultWorkers, Schedules: DefaultSchedules}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return Spec{}, fmt.Errorf("concur: bad spec token %q (want key=value)", tok)
		}
		var n int
		if _, err := fmt.Sscanf(val, "%d", &n); err != nil {
			return Spec{}, fmt.Errorf("concur: bad %s value %q", key, val)
		}
		switch key {
		case "workers":
			sp.Workers = n
		case "sched":
			sp.Schedules = n
		default:
			return Spec{}, fmt.Errorf("concur: unknown spec key %q (want workers, sched)", key)
		}
	}
	return sp, sp.Validate()
}

// Validate enforces the admission bounds.
func (sp Spec) Validate() error {
	if sp.Workers < MinWorkers || sp.Workers > MaxWorkers {
		return fmt.Errorf("concur: workers must be in [%d,%d], got %d", MinWorkers, MaxWorkers, sp.Workers)
	}
	if sp.Schedules < MinSchedules || sp.Schedules > MaxSchedules {
		return fmt.Errorf("concur: sched must be in [%d,%d], got %d", MinSchedules, MaxSchedules, sp.Schedules)
	}
	return nil
}

// String renders the canonical spec form.
func (sp Spec) String() string {
	return fmt.Sprintf("workers=%d,sched=%d", sp.Workers, sp.Schedules)
}
