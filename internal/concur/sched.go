// The deterministic cooperative scheduler. One worker goroutine per
// script, but only one ever runs at a time: the driver grants turns over
// per-worker channels and blocks until the granted worker reports back,
// so every channel handoff is a happens-before edge (the schedule is
// race-clean by construction) and the interleaving is a pure function of
// the schedule's seeded RNG. A worker runs one whole operation per turn
// unless the operation reaches a Gap window, where it yields the token
// back mid-operation — the only source of overlapping intervals in the
// recorded history.
package concur

import (
	"math/rand"

	"failatomic/internal/core"
	"failatomic/internal/fault"
	"failatomic/internal/inject"
)

// histEntry pairs a recorded history operation with the script Op that
// produced it, which the checker replays against the model.
type histEntry struct {
	op  Op
	rec inject.ConcurOp
}

// schedResult is what one scheduled execution observed.
type schedResult struct {
	entries []histEntry
	final   string
	// injected is the designated worker's injected exception (nil when
	// the point was never reached, and always nil for the clean pass).
	injected *fault.Exception
	// faultIdx indexes the history entry the injected exception escaped
	// from; -1 when none.
	faultIdx int
	// points/calls are the per-worker session observations (the clean
	// pass sizes the schedule plan from points).
	points []int
	calls  []map[string]int64
}

// sessionFor builds one worker's session: every worker counts injection
// points, only the designated worker's counter ever fires. Graph
// detection stays off — atomicity is judged by the linearization checker,
// not by snapshots, which would race with the other workers' view of the
// shared receiver.
func sessionFor(t *Target, point int) *core.Session {
	return core.NewSession(core.Config{
		Registry:       t.Registry,
		Inject:         true,
		InjectionPoint: point,
	})
}

// runSchedule executes one interleaving: rng drives the turn order,
// faultWorker/faultPoint designate the injection (-1/0 for the clean
// pass).
func runSchedule(t *Target, rng *rand.Rand, workers int, faultWorker, faultPoint int) schedResult {
	scripts := t.Scripts(workers)
	inst := t.New()

	type event struct {
		worker int
		done   bool
	}
	turns := make([]chan int, workers)
	for w := range turns {
		turns[w] = make(chan int)
	}
	events := make(chan event)

	// running is the worker currently holding the token; only that worker
	// touches it, and every handoff goes through a channel, so access is
	// ordered. The shared receiver's Gap closure reads it to know which
	// worker is yielding.
	running := 0
	steps := make([]int, workers)
	inst.SetGap(func() {
		w := running
		events <- event{worker: w}
		steps[w] = <-turns[w]
		running = w
	})

	sessions := make([]*core.Session, workers)
	entriesPer := make([][]histEntry, workers)
	for w := 0; w < workers; w++ {
		point := 0
		if w == faultWorker {
			point = faultPoint
		}
		sessions[w] = sessionFor(t, point)
		go func(w int, script []Op, sess *core.Session) {
			sess.Bind(func() {
				for i, op := range script {
					steps[w] = <-turns[w]
					running = w
					start := steps[w]
					resp, faulted := applyGuarded(inst, op)
					entriesPer[w] = append(entriesPer[w], histEntry{
						op: op,
						rec: inject.ConcurOp{
							Worker:  w,
							Name:    op.String(),
							Resp:    resp,
							Faulted: faulted,
							Start:   start,
							End:     steps[w],
						},
					})
					events <- event{worker: w, done: i == len(script)-1}
				}
			})
		}(w, scripts[w], sessions[w])
	}

	alive := make([]int, workers)
	for w := range alive {
		alive[w] = w
	}
	step := 0
	for len(alive) > 0 {
		i := rng.Intn(len(alive))
		w := alive[i]
		step++
		turns[w] <- step
		ev := <-events
		if ev.done {
			for j, a := range alive {
				if a == ev.worker {
					alive = append(alive[:j], alive[j+1:]...)
					break
				}
			}
		}
	}

	res := schedResult{
		final:    inst.Final(),
		faultIdx: -1,
		points:   make([]int, workers),
		calls:    make([]map[string]int64, workers),
	}
	for w := 0; w < workers; w++ {
		res.entries = append(res.entries, entriesPer[w]...)
		res.points[w] = sessions[w].Point()
		res.calls[w] = sessions[w].Calls()
	}
	// Merge to one history in start-step order (start steps are unique:
	// each is a distinct grant).
	for i := 1; i < len(res.entries); i++ {
		for j := i; j > 0 && res.entries[j].rec.Start < res.entries[j-1].rec.Start; j-- {
			res.entries[j], res.entries[j-1] = res.entries[j-1], res.entries[j]
		}
	}
	if faultWorker >= 0 {
		res.injected = sessions[faultWorker].Injected()
	}
	for i, e := range res.entries {
		if e.rec.Faulted {
			res.faultIdx = i
			break
		}
	}
	return res
}

// applyGuarded executes one op, converting an escaping exception into its
// history response; faulted reports whether it was the injected one.
func applyGuarded(inst *Instance, op Op) (resp string, faulted bool) {
	defer func() {
		if r := recover(); r != nil {
			exc := fault.From(r)
			resp = "throw:" + string(exc.Kind)
			faulted = exc.Injected
		}
	}()
	return inst.Apply(op), false
}
