package core

import "testing"

// BenchmarkGid is the cost of the stack-parse goroutine id — the lookup
// the portable binding keys pay per prologue and the reason the default
// build keys bindings by the profiler-label slot instead.
func BenchmarkGid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if gid() == 0 {
			b.Fatal("gid 0")
		}
	}
}

// BenchmarkGlsKey is the cost of the binding-key read the bound-mode
// prologue actually pays (a few ns on the default build).
func BenchmarkGlsKey(b *testing.B) {
	s := NewSession(Config{})
	s.Bind(func() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if glsKey() == 0 {
				b.Fatal("no key inside Bind")
			}
		}
	})
}

// BenchmarkEnterBoundDetect measures the detection prologue through a
// goroutine-scoped session; compare with BenchmarkEnterGlobalDetect — the
// scoped route must not cost more than the legacy global route.
func BenchmarkEnterBoundDetect(b *testing.B) {
	s := NewSession(Config{Detect: true})
	s.Bind(func() {
		box := &bindBox{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			box.Mutate(false)
		}
	})
}

// BenchmarkEnterGlobalDetect is the legacy-global baseline for
// BenchmarkEnterBoundDetect.
func BenchmarkEnterGlobalDetect(b *testing.B) {
	s := NewSession(Config{Detect: true})
	if err := Install(s); err != nil {
		b.Fatal(err)
	}
	defer Uninstall(s)
	box := &bindBox{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		box.Mutate(false)
	}
}
