package core

import (
	"sync"
	"testing"

	"failatomic/internal/fault"
)

// bindBox is the test subject for scoped-session routing: Mutate bumps the
// counter and optionally throws, so detection sees a non-atomic method and
// masking can roll it back.
type bindBox struct {
	N int
}

func (b *bindBox) Mutate(throw bool) {
	defer Enter(b, "bindBox.Mutate")()
	b.N++
	if throw {
		fault.Throw(fault.IllegalState, "bindBox.Mutate", "requested")
	}
}

func recoverMutate(b *bindBox, throw bool) {
	defer func() { _ = recover() }()
	b.Mutate(throw)
}

func TestBindRoutesToBoundSession(t *testing.T) {
	s := NewSession(Config{Detect: true})
	s.Bind(func() {
		if Current() != s {
			t.Fatal("Current must return the bound session inside Bind")
		}
		recoverMutate(&bindBox{}, true)
	})
	if Current() != nil {
		t.Fatal("binding must not outlive Bind")
	}
	if got := s.Calls()["bindBox.Mutate"]; got != 1 {
		t.Fatalf("bound session saw %d calls, want 1", got)
	}
	if len(s.Marks()) != 1 || s.Marks()[0].Atomic {
		t.Fatalf("bound session must mark the throwing mutate non-atomic: %+v", s.Marks())
	}
}

// TestConcurrentBoundSessions is the headline scoped-session property:
// many sessions detect and mask simultaneously on different goroutines,
// each observing only its own workload. Run under -race.
func TestConcurrentBoundSessions(t *testing.T) {
	const goroutines = 16
	sessions := make([]*Session, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		mask := i%2 == 0
		s := NewSession(Config{
			Detect:      true,
			Mask:        mask,
			MaskMethods: map[string]bool{"bindBox.Mutate": true},
		})
		sessions[i] = s
		wg.Add(1)
		go func(s *Session, calls int) {
			defer wg.Done()
			s.Bind(func() {
				box := &bindBox{}
				for c := 0; c < calls; c++ {
					recoverMutate(box, true)
				}
			})
		}(s, i+1)
	}
	wg.Wait()
	for i, s := range sessions {
		wantCalls := int64(i + 1)
		if got := s.Calls()["bindBox.Mutate"]; got != wantCalls {
			t.Errorf("session %d saw %d calls, want %d", i, got, wantCalls)
		}
		if got := len(s.Marks()); got != i+1 {
			t.Errorf("session %d recorded %d marks, want %d", i, got, i+1)
		}
		masked := i%2 == 0
		for _, m := range s.Marks() {
			if m.Masked != masked {
				t.Errorf("session %d: mark masked=%v, want %v", i, m.Masked, masked)
			}
			if masked && !m.Atomic {
				t.Errorf("session %d: masked mutate must compare atomic: %s", i, m.Diff)
			}
			if !masked && m.Atomic {
				t.Errorf("session %d: unmasked mutate must compare non-atomic", i)
			}
		}
		if masked {
			if s.Rollbacks() != int64(i+1) {
				t.Errorf("session %d rollbacks = %d, want %d", i, s.Rollbacks(), i+1)
			}
		}
	}
}

func TestNestedBindRestoresPrevious(t *testing.T) {
	outer := NewSession(Config{Detect: true})
	inner := NewSession(Config{Detect: true})
	outer.Bind(func() {
		recoverMutate(&bindBox{}, true)
		inner.Bind(func() {
			if Current() != inner {
				t.Fatal("inner binding must shadow the outer")
			}
			recoverMutate(&bindBox{}, true)
		})
		if Current() != outer {
			t.Fatal("outer binding must be restored after nested Bind")
		}
		recoverMutate(&bindBox{}, true)
	})
	if got := outer.Calls()["bindBox.Mutate"]; got != 2 {
		t.Fatalf("outer saw %d calls, want 2", got)
	}
	if got := inner.Calls()["bindBox.Mutate"]; got != 1 {
		t.Fatalf("inner saw %d calls, want 1", got)
	}
}

func TestBindRestoresBindingOnPanic(t *testing.T) {
	s := NewSession(Config{})
	func() {
		defer func() { _ = recover() }()
		s.Bind(func() { panic("boom") })
	}()
	if Current() != nil {
		t.Fatal("binding must be removed when fn panics")
	}
}

// TestBoundAndGlobalCoexist pins the fallback contract: a goroutine with a
// binding routes to its session while unbound goroutines keep using the
// installed legacy global. Run under -race.
func TestBoundAndGlobalCoexist(t *testing.T) {
	global := NewSession(Config{Detect: true})
	if err := Install(global); err != nil {
		t.Fatal(err)
	}
	defer Uninstall(global)

	scoped := NewSession(Config{Detect: true})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		scoped.Bind(func() {
			for i := 0; i < 50; i++ {
				recoverMutate(&bindBox{}, true)
			}
		})
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			recoverMutate(&bindBox{}, true)
		}
	}()
	wg.Wait()

	if got := scoped.Calls()["bindBox.Mutate"]; got != 50 {
		t.Errorf("scoped session saw %d calls, want 50", got)
	}
	if got := global.Calls()["bindBox.Mutate"]; got != 30 {
		t.Errorf("global session saw %d calls, want 30", got)
	}
}

func TestEnterIsNoOpAfterBindingsDrain(t *testing.T) {
	s := NewSession(Config{Detect: true})
	s.Bind(func() {})
	box := &bindBox{}
	box.Mutate(false) // no session anywhere: must be a no-op
	if len(s.Calls()) != 0 {
		t.Fatalf("drained session must observe nothing: %v", s.Calls())
	}
}

func TestBindNilFuncIsNoOp(t *testing.T) {
	s := NewSession(Config{})
	s.Bind(nil)
	if Current() != nil {
		t.Fatal("Bind(nil) must not leave a binding")
	}
}
