package core

import "failatomic/internal/objgraph"

// objgraphSnapshot is a thin adapter over objgraph so the session code
// reads at one level of abstraction.
type objgraphSnapshot struct {
	graph *objgraph.Graph
}

func snapshot(roots []any) *objgraphSnapshot {
	return &objgraphSnapshot{graph: objgraph.Capture(roots...)}
}

// diff returns the path to the first difference between two snapshots, or
// "" if the object graphs are identical.
func (s *objgraphSnapshot) diff(other *objgraphSnapshot) string {
	return objgraph.Diff(s.graph, other.graph)
}
