package core

import (
	"fmt"

	"failatomic/internal/objgraph"
)

// SnapshotMode selects how a detecting session summarizes the before-state
// of each wrapped call.
//
// A campaign takes one before-snapshot per wrapped call but reads it back
// on at most one exceptional return per run, so >99% of snapshots are
// discarded unread. Fingerprint mode folds the same canonical traversal
// into a streaming 128-bit hash (objgraph.Fingerprint) — zero Node
// allocations — and leaves Mark.Diff empty on non-atomic marks; the
// campaign driver recovers the human-readable diff by deterministically
// re-running only those runs in capture mode (see internal/inject).
type SnapshotMode uint8

const (
	// SnapshotFingerprint (the default) compares 128-bit graph
	// fingerprints. Atomicity verdicts match capture mode up to hash
	// collisions (~2⁻¹²⁸ per comparison); Diff is left empty.
	SnapshotFingerprint SnapshotMode = iota
	// SnapshotCapture materializes full object graphs and reports the
	// path to the first difference — the original behavior, used for the
	// diff-recovery pass and as an escape hatch.
	SnapshotCapture
)

// String returns the mode's knob spelling.
func (m SnapshotMode) String() string {
	switch m {
	case SnapshotFingerprint:
		return "fingerprint"
	case SnapshotCapture:
		return "capture"
	default:
		return fmt.Sprintf("SnapshotMode(%d)", uint8(m))
	}
}

// ParseSnapshotMode parses a knob value. The empty string means the
// default (fingerprint), so zero-valued specs round-trip.
func ParseSnapshotMode(s string) (SnapshotMode, error) {
	switch s {
	case "", "fingerprint":
		return SnapshotFingerprint, nil
	case "capture":
		return SnapshotCapture, nil
	default:
		return 0, fmt.Errorf("unknown snapshot mode %q (want fingerprint or capture)", s)
	}
}

// objgraphSnapshot is a thin adapter over objgraph so the session code
// reads at one level of abstraction.
type objgraphSnapshot struct {
	graph *objgraph.Graph
}

func snapshot(roots []any) *objgraphSnapshot {
	return &objgraphSnapshot{graph: objgraph.Capture(roots...)}
}

// diff returns the path to the first difference between two snapshots, or
// "" if the object graphs are identical.
func (s *objgraphSnapshot) diff(other *objgraphSnapshot) string {
	return objgraph.Diff(s.graph, other.graph)
}

// fingerprint summarizes the roots as a 128-bit graph hash.
func fingerprint(roots []any) objgraph.FP {
	return objgraph.Fingerprint(roots...)
}
