package core

import (
	"fmt"

	"failatomic/internal/objgraph"
)

// SnapshotMode selects how a detecting session summarizes the before-state
// of each wrapped call.
//
// A campaign takes one before-snapshot per wrapped call but reads it back
// on at most one exceptional return per run, so >99% of snapshots are
// discarded unread. Fingerprint mode folds the same canonical traversal
// into a streaming 128-bit hash (objgraph.Fingerprint) — zero Node
// allocations — and leaves Mark.Diff empty on non-atomic marks; the
// campaign driver recovers the human-readable diff by deterministically
// re-running only those runs in capture mode (see internal/inject).
type SnapshotMode uint8

const (
	// SnapshotFingerprint (the default) compares 128-bit graph
	// fingerprints. Atomicity verdicts match capture mode up to hash
	// collisions (~2⁻¹²⁸ per comparison); Diff is left empty.
	SnapshotFingerprint SnapshotMode = iota
	// SnapshotCapture materializes full object graphs and reports the
	// path to the first difference — the original behavior, used for the
	// diff-recovery pass and as an escape hatch.
	SnapshotCapture
	// SnapshotFingerprintNoCache is fingerprint mode with the session's
	// incremental cache disabled: every snapshot hashes the full graph
	// from scratch. An escape hatch for auditing the cache — verdicts,
	// reports and journals are identical to SnapshotFingerprint by
	// construction (the cache never changes a fingerprint's value, only
	// how fast it is computed).
	SnapshotFingerprintNoCache
)

// Fingerprinted reports whether the mode summarizes before-states as
// 128-bit fingerprints (leaving Mark.Diff empty for the campaign
// driver's capture-replay recovery) rather than captured graphs.
func (m SnapshotMode) Fingerprinted() bool {
	return m == SnapshotFingerprint || m == SnapshotFingerprintNoCache
}

// String returns the mode's knob spelling.
func (m SnapshotMode) String() string {
	switch m {
	case SnapshotFingerprint:
		return "fingerprint"
	case SnapshotCapture:
		return "capture"
	case SnapshotFingerprintNoCache:
		return "fingerprint-nocache"
	default:
		return fmt.Sprintf("SnapshotMode(%d)", uint8(m))
	}
}

// ParseSnapshotMode parses a knob value. The empty string means the
// default (fingerprint), so zero-valued specs round-trip.
func ParseSnapshotMode(s string) (SnapshotMode, error) {
	switch s {
	case "", "fingerprint":
		return SnapshotFingerprint, nil
	case "capture":
		return SnapshotCapture, nil
	case "fingerprint-nocache":
		return SnapshotFingerprintNoCache, nil
	default:
		return 0, fmt.Errorf("unknown snapshot mode %q (want fingerprint, fingerprint-nocache or capture)", s)
	}
}

// objgraphSnapshot is a thin adapter over objgraph so the session code
// reads at one level of abstraction.
type objgraphSnapshot struct {
	graph *objgraph.Graph
}

func snapshot(roots []any) *objgraphSnapshot {
	return &objgraphSnapshot{graph: objgraph.Capture(roots...)}
}

// diff returns the path to the first difference between two snapshots, or
// "" if the object graphs are identical.
func (s *objgraphSnapshot) diff(other *objgraphSnapshot) string {
	return objgraph.Diff(s.graph, other.graph)
}

// SnapshotCacheStats aggregates a fingerprint cache's effectiveness
// counters (objgraph.FPCacheStats, re-exported at the session layer so
// campaign results don't import objgraph internals).
type SnapshotCacheStats struct {
	// Hits counts verified leaf replays and generation-valid root-frame
	// reuses.
	Hits int64 `json:"hits"`
	// Misses counts fingerprint cache lookups that had to hash.
	Misses int64 `json:"misses"`
	// Bytes is the leaf content pinned for reuse verification.
	Bytes int64 `json:"bytes"`
}

// Add accumulates another session's counters (campaign rollups).
func (s *SnapshotCacheStats) Add(o SnapshotCacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Bytes += o.Bytes
}
