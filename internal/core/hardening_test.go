package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"failatomic/internal/checkpoint"
	"failatomic/internal/fault"
)

// These tests failure-inject the engine itself: misused receivers, foreign
// panics, re-entrancy, checkpoint failures mid-session, and concurrent
// no-session traffic.

func TestForeignPanicIsWrappedAndRethrown(t *testing.T) {
	type box struct{ N int }
	blow := func(b *box) {
		defer Enter(b, "box.blow")()
		b.N++
		panic("not an exception")
	}
	withSession(t, Config{Detect: true}, func(s *Session) {
		b := &box{}
		r := catchPanic(func() { blow(b) })
		if r == nil {
			t.Fatal("panic must propagate")
		}
		if _, ok := r.(string); !ok {
			t.Fatalf("original panic value must be preserved, got %T", r)
		}
		marks := s.Marks()
		if len(marks) != 1 || marks[0].Atomic {
			t.Fatalf("foreign panic must still be marked: %+v", marks)
		}
		if marks[0].Exception.Kind != fault.RuntimeError {
			t.Fatalf("foreign panic kind = %v", marks[0].Exception.Kind)
		}
	})
}

func TestRuntimePanicIsDetected(t *testing.T) {
	type box struct{ Data []int }
	oops := func(b *box) {
		defer Enter(b, "box.oops")()
		b.Data = append(b.Data, 1)
		_ = b.Data[99] // real index out of range
	}
	withSession(t, Config{Detect: true}, func(s *Session) {
		b := &box{}
		r := catchPanic(func() { oops(b) })
		if r == nil {
			t.Fatal("runtime panic must propagate")
		}
		marks := s.Marks()
		if len(marks) != 1 || marks[0].Atomic {
			t.Fatalf("runtime panic non-atomicity missed: %+v", marks)
		}
	})
}

func TestNonPointerReceiverDetection(t *testing.T) {
	// A value receiver gives the prologue a copy; detection sees two
	// identical snapshots (the copy never changes through the original) —
	// harmless, classified atomic, preserving the one-sided guarantee.
	type box struct{ N int }
	byValue := func(b box) {
		defer Enter(b, "box.byValue")()
		fault.Throw(fault.IllegalState, "box.byValue", "boom")
	}
	withSession(t, Config{Detect: true}, func(s *Session) {
		r := catchPanic(func() { byValue(box{N: 1}) })
		if r == nil {
			t.Fatal("expected escape")
		}
		if len(s.Marks()) != 1 || !s.Marks()[0].Atomic {
			t.Fatalf("value receiver must mark atomic: %+v", s.Marks())
		}
	})
}

func TestMaskWithValueReceiverSkips(t *testing.T) {
	type box struct{ N int }
	byValue := func(b box) {
		defer Enter(b, "box.byValue")()
	}
	withSession(t, Config{Mask: true, MaskAll: true}, func(s *Session) {
		byValue(box{})
		skips := s.MaskSkips()
		if len(skips) != 1 {
			t.Fatalf("non-pointer mask must be skipped: %+v", skips)
		}
		if !strings.Contains(skips[0].Err.Error(), "pointer") {
			t.Fatalf("skip reason should mention pointers: %v", skips[0].Err)
		}
	})
}

func TestEnterNilReceiverUnderAllModes(t *testing.T) {
	withSession(t, Config{Inject: true, Detect: true, Mask: true, MaskAll: true}, func(s *Session) {
		func() {
			defer Enter(nil, "free.Fn")()
		}()
		if s.Calls()["free.Fn"] != 1 {
			t.Fatal("nil-receiver calls must still be counted")
		}
		if len(s.Marks()) != 0 && s.MaskedCalls() != 0 {
			t.Fatal("nil receiver must not snapshot or checkpoint")
		}
	})
}

// reentrant exercises a method whose body installs nothing but calls
// another wrapped method on the same receiver with mutation in between;
// the unwinding path runs two closures over the same object.
func TestNestedSameReceiverMarks(t *testing.T) {
	type box struct{ A, B int }
	var inner, outer func(b *box)
	inner = func(b *box) {
		defer Enter(b, "box.inner")()
		b.B++
		fault.Throw(fault.IllegalState, "box.inner", "boom")
	}
	outer = func(b *box) {
		defer Enter(b, "box.outer")()
		b.A++
		inner(b)
	}
	withSession(t, Config{Detect: true}, func(s *Session) {
		b := &box{}
		catchPanic(func() { outer(b) })
		marks := s.Marks()
		if len(marks) != 2 {
			t.Fatalf("want 2 marks, got %+v", marks)
		}
		if marks[0].Method != "box.inner" || marks[0].Atomic {
			t.Fatalf("inner mark wrong: %+v", marks[0])
		}
		if marks[1].Method != "box.outer" || marks[1].Atomic {
			t.Fatalf("outer mark wrong: %+v", marks[1])
		}
		// Both marks must share the exception identity so the classifier
		// can group the propagation (see detect.Classify).
		if marks[0].Exception != marks[1].Exception {
			t.Fatal("marks of one unwind must share the exception value")
		}
	})
}

func TestMaskedNestedRollbackOrder(t *testing.T) {
	// Both inner and outer masked: inner rolls back its slice of the
	// graph first, outer then restores everything; final state must be
	// the pre-outer state.
	type box struct{ A, B int }
	inner := func(b *box) {
		defer Enter(b, "box.inner")()
		b.B = 100
		fault.Throw(fault.IllegalState, "box.inner", "boom")
	}
	outer := func(b *box) {
		defer Enter(b, "box.outer")()
		b.A = 50
		inner(b)
	}
	withSession(t, Config{Mask: true, MaskAll: true}, func(s *Session) {
		b := &box{A: 1, B: 2}
		catchPanic(func() { outer(b) })
		if b.A != 1 || b.B != 2 {
			t.Fatalf("nested rollback failed: %+v", b)
		}
		if s.Rollbacks() != 2 {
			t.Fatalf("rollbacks = %d, want 2", s.Rollbacks())
		}
	})
}

func TestUndoLogFallbackError(t *testing.T) {
	// UndoLog strategy over a non-Journaled receiver: capture fails, the
	// call proceeds unmasked, and the skip is recorded.
	type box struct{ N int }
	bump := func(b *box) {
		defer Enter(b, "box.bump")()
		b.N++
	}
	withSession(t, Config{
		Mask:     true,
		MaskAll:  true,
		Strategy: checkpoint.UndoLog(),
	}, func(s *Session) {
		b := &box{}
		bump(b)
		if b.N != 1 {
			t.Fatal("method must run despite the capture failure")
		}
		if len(s.MaskSkips()) != 1 {
			t.Fatalf("capture failure must be recorded: %+v", s.MaskSkips())
		}
	})
}

func TestConcurrentNoSessionTraffic(t *testing.T) {
	// With no session installed the prologue must be safe under heavy
	// concurrency (run with -race).
	type box struct{ N int }
	work := func(b *box) {
		defer Enter(b, "box.work")()
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := &box{}
			for i := 0; i < 1000; i++ {
				work(b)
			}
		}()
	}
	wg.Wait()
}

func TestUninstallWrongSessionIsNoop(t *testing.T) {
	s1 := NewSession(Config{})
	s2 := NewSession(Config{})
	if err := Install(s1); err != nil {
		t.Fatal(err)
	}
	Uninstall(s2) // must not remove s1
	if Active() != s1 {
		t.Fatal("uninstalling a non-active session must be a no-op")
	}
	Uninstall(s1)
	if Active() != nil {
		t.Fatal("uninstall failed")
	}
}

func TestExceptionFreeStillCountsCalls(t *testing.T) {
	type box struct{ N int }
	quiet := func(b *box) {
		defer Enter(b, "box.quiet")()
	}
	withSession(t, Config{
		Inject:        true,
		ExceptionFree: map[string]bool{"box.quiet": true},
	}, func(s *Session) {
		b := &box{}
		quiet(b)
		quiet(b)
		if s.Calls()["box.quiet"] != 2 {
			t.Fatal("exception-free methods must still be call-counted")
		}
	})
}

func TestDetectSnapshotsAliasedReceivers(t *testing.T) {
	// Two roots sharing structure: the snapshot must cover both and spot
	// a mutation through either.
	type inner struct{ V int }
	type box struct{ I *inner }
	poke := func(b *box, shared *inner) {
		defer Enter(b, "box.poke", shared)()
		shared.V++
		fault.Throw(fault.IllegalState, "box.poke", "boom")
	}
	withSession(t, Config{Detect: true}, func(s *Session) {
		shared := &inner{}
		b := &box{I: shared}
		catchPanic(func() { poke(b, shared) })
		if len(s.Marks()) != 1 || s.Marks()[0].Atomic {
			t.Fatalf("aliased mutation missed: %+v", s.Marks())
		}
	})
}

// counterBox is the serialized-session test subject.
type counterBox struct {
	N   int
	Log []int
}

func (c *counterBox) Bump(v int) {
	defer Enter(c, "counterBox.Bump")()
	c.N += v
	c.note(v)
}

func (c *counterBox) note(v int) {
	defer Enter(c, "counterBox.note")()
	if v < 0 {
		fault.Throw(fault.IllegalArgument, "counterBox.note", "negative")
	}
	c.Log = append(c.Log, v)
}

// TestSerializedConcurrentDetection exercises §4.4's mitigation: a
// multi-goroutine workload under a Serialize session must produce
// consistent snapshots and marks (no torn graphs, no races) even though
// goroutines interleave between calls. Run with -race.
func TestSerializedConcurrentDetection(t *testing.T) {
	withSession(t, Config{Detect: true, Serialize: true}, func(s *Session) {
		shared := &counterBox{}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					shared.Bump(1)
					if i%10 == 9 {
						func() {
							defer func() { _ = recover() }()
							shared.Bump(-1) // organic failure path
						}()
					}
				}
			}(g)
		}
		wg.Wait()
		if shared.N != 4*50+4*5*(-1) {
			t.Fatalf("N = %d", shared.N)
		}
		// Every organic failure marks Bump non-atomic (N committed before
		// note threw); under serialization the comparison must never be
		// torn by another goroutine mid-snapshot, so every Bump mark is
		// non-atomic with the N diff and every note mark is atomic.
		bumps, notes := 0, 0
		for _, m := range s.Marks() {
			switch m.Method {
			case "counterBox.Bump":
				bumps++
				if m.Atomic {
					t.Fatalf("Bump must be non-atomic: %+v", m)
				}
			case "counterBox.note":
				notes++
				if !m.Atomic {
					t.Fatalf("note must be atomic (torn snapshot?): %+v", m)
				}
			}
		}
		if bumps != 20 || notes != 20 {
			t.Fatalf("marks: %d bumps, %d notes, want 20/20", bumps, notes)
		}
		if s.Calls()["counterBox.Bump"] != 220 {
			t.Fatalf("calls = %d, want 220", s.Calls()["counterBox.Bump"])
		}
	})
}

// TestSerializedNestedCallsDoNotDeadlock pins the reentrancy of the
// session lock.
func TestSerializedNestedCallsDoNotDeadlock(t *testing.T) {
	withSession(t, Config{Detect: true, Serialize: true}, func(s *Session) {
		c := &counterBox{}
		done := make(chan struct{})
		go func() {
			defer close(done)
			c.Bump(1) // Bump -> note nests two instrumented calls
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("nested serialized calls deadlocked")
		}
	})
}

// TestSerializedInjectionReleasesLock verifies the lock is not leaked when
// the injection fires during Enter (before the epilogue exists).
func TestSerializedInjectionReleasesLock(t *testing.T) {
	withSession(t, Config{Inject: true, InjectionPoint: 1, Detect: true, Serialize: true}, func(s *Session) {
		c := &counterBox{}
		catchPanic(func() { c.Bump(1) })
		// If the lock leaked, this second call would deadlock.
		done := make(chan struct{})
		go func() {
			defer close(done)
			c.Bump(2)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("lock leaked after injected exception")
		}
	})
}
