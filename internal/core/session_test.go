package core

import (
	"strings"
	"testing"

	"failatomic/internal/checkpoint"
	"failatomic/internal/fault"
)

// account is a deliberately failure non-atomic test type: Deposit mutates
// Balance before calling a helper that can throw.
type account struct {
	Balance int
	History []string
}

func (a *account) Deposit(amount int) {
	defer Enter(a, "account.Deposit")()
	a.Balance += amount
	a.log("deposit") // an injected exception here leaves Balance changed
}

// DepositSafe is the failure atomic variant: compute, call, then commit.
func (a *account) DepositSafe(amount int) {
	defer Enter(a, "account.DepositSafe")()
	next := a.Balance + amount
	a.log("deposit")
	a.Balance = next
}

func (a *account) log(entry string) {
	defer Enter(a, "account.log")()
	a.History = append(a.History, entry)
}

func withSession(t *testing.T, cfg Config, run func(s *Session)) {
	t.Helper()
	s := NewSession(cfg)
	if err := Install(s); err != nil {
		t.Fatal(err)
	}
	defer Uninstall(s)
	run(s)
}

func catchPanic(f func()) (recovered any) {
	defer func() { recovered = recover() }()
	f()
	return nil
}

func TestEnterIsNopWithoutSession(t *testing.T) {
	a := &account{}
	a.Deposit(10) // must not panic or record anything
	if a.Balance != 10 {
		t.Fatalf("Balance = %d, want 10", a.Balance)
	}
}

func TestInstallIsExclusive(t *testing.T) {
	s1 := NewSession(Config{})
	s2 := NewSession(Config{})
	if err := Install(s1); err != nil {
		t.Fatal(err)
	}
	defer Uninstall(s1)
	if err := Install(s2); err != ErrSessionActive {
		t.Fatalf("second install: got %v, want ErrSessionActive", err)
	}
	if Active() != s1 {
		t.Fatal("Active() should return the installed session")
	}
}

func TestInstallNil(t *testing.T) {
	if err := Install(nil); err == nil {
		t.Fatal("installing nil must fail")
	}
}

func TestInjectionFiresAtThreshold(t *testing.T) {
	reg := NewRegistry().Method("account", "Deposit", fault.IllegalArgument)
	// Deposit has 1 declared + 2 runtime kinds = 3 points; log has 2
	// runtime points. Point 1 is Deposit's declared kind.
	withSession(t, Config{Registry: reg, Inject: true, InjectionPoint: 1}, func(s *Session) {
		a := &account{}
		r := catchPanic(func() { a.Deposit(5) })
		exc, ok := r.(*fault.Exception)
		if !ok {
			t.Fatalf("want injected exception, got %v", r)
		}
		if exc.Kind != fault.IllegalArgument || exc.Method != "account.Deposit" || !exc.Injected {
			t.Fatalf("wrong exception: %+v", exc)
		}
		if a.Balance != 0 {
			t.Fatal("injection at method entry must precede the body")
		}
		if s.Injected() != exc {
			t.Fatal("session must record the injected exception")
		}
	})
}

func TestInjectionPointCounting(t *testing.T) {
	reg := NewRegistry().Method("account", "Deposit", fault.IllegalArgument)
	withSession(t, Config{Registry: reg, Inject: true, InjectionPoint: 0}, func(s *Session) {
		a := &account{}
		a.Deposit(5)
		// Deposit: 1 declared + 2 runtime; log: 2 runtime.
		if got := s.Point(); got != 5 {
			t.Fatalf("Point = %d, want 5", got)
		}
		if s.Injected() != nil {
			t.Fatal("threshold 0 must never fire")
		}
	})
}

func TestDetectMarksNonAtomic(t *testing.T) {
	// Inject into log's first runtime point (point 4): Deposit has already
	// incremented Balance, so Deposit must be marked non-atomic.
	withSession(t, Config{Inject: true, InjectionPoint: 4, Detect: true, Snapshot: SnapshotCapture}, func(s *Session) {
		a := &account{Balance: 1}
		r := catchPanic(func() { a.Deposit(5) })
		if r == nil {
			t.Fatal("expected the injected exception to escape")
		}
		marks := s.Marks()
		if len(marks) != 1 {
			t.Fatalf("want 1 mark (Deposit), got %d: %+v", len(marks), marks)
		}
		m := marks[0]
		if m.Method != "account.Deposit" || m.Atomic {
			t.Fatalf("Deposit must be marked non-atomic: %+v", m)
		}
		if !strings.Contains(m.Diff, "Balance") {
			t.Fatalf("diff should name Balance, got %q", m.Diff)
		}
	})
}

func TestDetectMarksAtomic(t *testing.T) {
	// Same injection point inside log, but DepositSafe has not committed
	// yet: it must be marked atomic.
	withSession(t, Config{Inject: true, InjectionPoint: 4, Detect: true}, func(s *Session) {
		a := &account{Balance: 1}
		r := catchPanic(func() { a.DepositSafe(5) })
		if r == nil {
			t.Fatal("expected the injected exception to escape")
		}
		marks := s.Marks()
		if len(marks) != 1 {
			t.Fatalf("want 1 mark, got %d", len(marks))
		}
		if !marks[0].Atomic {
			t.Fatalf("DepositSafe must be atomic, diff: %s", marks[0].Diff)
		}
		if a.Balance != 1 {
			t.Fatal("failed method must not have committed")
		}
	})
}

func TestMarkOrderIsCalleeFirst(t *testing.T) {
	// Inject into log's own point while log has already mutated History:
	// log marks first (seq 1), Deposit second (seq 2).
	type wrapper struct {
		A *account
	}
	outer := func(w *wrapper) {
		defer Enter(w, "wrapper.outer")()
		w.A.Deposit(3)
	}
	// Points: outer(2 runtime), Deposit(2), log(2). Log's points are 5,6.
	// We need the exception to originate *below* log to see log marked, so
	// instead inject at Deposit's body via log's point and check order of
	// Deposit and outer marks.
	withSession(t, Config{Inject: true, InjectionPoint: 5, Detect: true}, func(s *Session) {
		w := &wrapper{A: &account{}}
		r := catchPanic(func() { outer(w) })
		if r == nil {
			t.Fatal("expected escape")
		}
		marks := s.Marks()
		if len(marks) != 2 {
			t.Fatalf("want marks for Deposit and outer, got %+v", marks)
		}
		if marks[0].Method != "account.Deposit" || marks[0].Seq != 1 {
			t.Fatalf("deepest method must mark first: %+v", marks[0])
		}
		if marks[1].Method != "wrapper.outer" || marks[1].Seq != 2 {
			t.Fatalf("caller must mark second: %+v", marks[1])
		}
		if marks[0].Atomic {
			t.Fatal("Deposit mutated Balance before log threw: non-atomic")
		}
		if marks[1].Atomic {
			t.Fatal("outer's receiver graph includes the account: non-atomic")
		}
	})
}

func TestOrganicExceptionsAreMarked(t *testing.T) {
	type thrower struct{ N int }
	boom := func(th *thrower) {
		defer Enter(th, "thrower.boom")()
		th.N++
		fault.Throw(fault.IllegalState, "thrower.boom", "organic failure")
	}
	withSession(t, Config{Detect: true}, func(s *Session) {
		th := &thrower{}
		r := catchPanic(func() { boom(th) })
		exc := fault.From(r)
		if exc.Kind != fault.IllegalState || exc.Injected {
			t.Fatalf("organic exception expected, got %+v", exc)
		}
		marks := s.Marks()
		if len(marks) != 1 || marks[0].Atomic {
			t.Fatalf("organic non-atomicity must be marked: %+v", marks)
		}
	})
}

func TestMaskingRollsBack(t *testing.T) {
	withSession(t, Config{
		Inject:         true,
		InjectionPoint: 4, // inside log
		Detect:         true,
		Mask:           true,
		MaskMethods:    map[string]bool{"account.Deposit": true},
	}, func(s *Session) {
		a := &account{Balance: 1}
		r := catchPanic(func() { a.Deposit(5) })
		if r == nil {
			t.Fatal("masking must re-throw the exception")
		}
		if a.Balance != 1 {
			t.Fatalf("masking must roll Balance back, got %d", a.Balance)
		}
		marks := s.Marks()
		if len(marks) != 1 || !marks[0].Atomic || !marks[0].Masked {
			t.Fatalf("masked method must observe as atomic: %+v", marks)
		}
		if s.MaskedCalls() != 1 || s.Rollbacks() != 1 {
			t.Fatalf("mask counters wrong: %d/%d", s.MaskedCalls(), s.Rollbacks())
		}
	})
}

func TestMaskingCommitsOnSuccess(t *testing.T) {
	withSession(t, Config{
		Mask:        true,
		MaskMethods: map[string]bool{"account.Deposit": true},
	}, func(s *Session) {
		a := &account{}
		a.Deposit(5)
		if a.Balance != 5 {
			t.Fatalf("successful masked call must keep its effect, got %d", a.Balance)
		}
		if s.Rollbacks() != 0 {
			t.Fatal("no rollback expected on success")
		}
	})
}

type uncheckpointable struct {
	Visible int
	secret  int
}

func (u *uncheckpointable) Touch() {
	defer Enter(u, "uncheckpointable.Touch")()
	u.Visible++
}

func TestMaskSkipRecorded(t *testing.T) {
	withSession(t, Config{
		Mask:        true,
		MaskMethods: map[string]bool{"uncheckpointable.Touch": true},
	}, func(s *Session) {
		u := &uncheckpointable{secret: 1}
		u.Touch()
		skips := s.MaskSkips()
		if len(skips) != 1 || skips[0].Method != "uncheckpointable.Touch" {
			t.Fatalf("mask skip must be recorded: %+v", skips)
		}
		if u.Visible != 1 {
			t.Fatal("method must still run unmasked")
		}
	})
}

func TestExceptionFreeSkipsInjection(t *testing.T) {
	withSession(t, Config{
		Inject:         true,
		InjectionPoint: 1,
		ExceptionFree:  map[string]bool{"account.Deposit": true, "account.log": true},
	}, func(s *Session) {
		a := &account{}
		a.Deposit(5)
		if s.Injected() != nil {
			t.Fatal("exception-free methods must get no injection points")
		}
		if s.Point() != 0 {
			t.Fatalf("no points expected, got %d", s.Point())
		}
	})
}

func TestConstructorInjection(t *testing.T) {
	reg := NewRegistry().Ctor("account", "NewAccount", fault.CapacityExceeded)
	newAccount := func() *account {
		defer Enter(nil, "NewAccount")()
		return &account{}
	}
	withSession(t, Config{Registry: reg, Inject: true, InjectionPoint: 1}, func(s *Session) {
		r := catchPanic(func() { newAccount() })
		exc := fault.From(r)
		if !exc.Injected || exc.Kind != fault.CapacityExceeded {
			t.Fatalf("constructor injection failed: %+v", exc)
		}
	})
	withSession(t, Config{Registry: reg, Inject: true, InjectionPoint: 0}, func(s *Session) {
		newAccount()
		if s.Calls()["NewAccount"] != 1 {
			t.Fatal("constructor calls must be counted")
		}
	})
}

func TestExtraRootsInComparison(t *testing.T) {
	type out struct{ Sum int }
	addInto := func(a *account, dst *out) {
		defer Enter(a, "account.AddInto", dst)()
		dst.Sum = a.Balance
		fault.Throw(fault.IllegalState, "account.AddInto", "after writing dst")
	}
	withSession(t, Config{Detect: true, Snapshot: SnapshotCapture}, func(s *Session) {
		a := &account{Balance: 3}
		dst := &out{}
		r := catchPanic(func() { addInto(a, dst) })
		if r == nil {
			t.Fatal("expected escape")
		}
		marks := s.Marks()
		if len(marks) != 1 || marks[0].Atomic {
			t.Fatalf("mutation of by-reference argument must be detected: %+v", marks)
		}
		if !strings.Contains(marks[0].Diff, "Sum") {
			t.Fatalf("diff should point at dst.Sum: %q", marks[0].Diff)
		}
	})
}

func TestUndoLogStrategyInSession(t *testing.T) {
	// A Journaled receiver masked with the undo-log strategy.
	withSession(t, Config{
		Inject:         true,
		InjectionPoint: 3, // first runtime point of jc.Bump's callee? see below
		Detect:         true,
		Mask:           true,
		MaskAll:        true,
		Strategy:       checkpoint.UndoLog(),
	}, func(s *Session) {
		jc := newJournaledThing()
		r := catchPanic(func() { jc.Bump() })
		if r == nil {
			t.Fatal("expected escape")
		}
		if jc.Value != 0 {
			t.Fatalf("undo log must roll back, Value=%d", jc.Value)
		}
	})
}

// journaledThing implements checkpoint.Journaled for the session test.
type journaledThing struct {
	Value int

	journal *checkpoint.Journal
}

func newJournaledThing() *journaledThing { return &journaledThing{} }

func (j *journaledThing) BeginJournal(jn *checkpoint.Journal) *checkpoint.Journal {
	prev := j.journal
	j.journal = jn
	return prev
}

func (j *journaledThing) EndJournal(prev *checkpoint.Journal) { j.journal = prev }

func (j *journaledThing) Bump() {
	defer Enter(j, "journaledThing.Bump")()
	old := j.Value
	j.journal.Record(8, func() { j.Value = old })
	j.Value++
	j.helper()
}

func (j *journaledThing) helper() {
	defer Enter(j, "journaledThing.helper")()
}

func TestRegistryValidate(t *testing.T) {
	good := NewRegistry().Method("C", "M", fault.IOError)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	dup := NewRegistry().Method("C", "M", fault.IOError, fault.IOError)
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate kinds must be rejected")
	}
}

func TestRegistryClassOf(t *testing.T) {
	reg := NewRegistry().Ctor("Account", "NewAccount")
	tests := []struct {
		give string
		want string
	}{
		{give: "NewAccount", want: "Account"},
		{give: "Foo.Bar", want: "Foo"},
		{give: "Loose", want: "Loose"},
	}
	for _, tt := range tests {
		if got := reg.ClassOf(tt.give); got != tt.want {
			t.Errorf("ClassOf(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestRegistryMerge(t *testing.T) {
	a := NewRegistry().Method("A", "M1")
	b := NewRegistry().Method("B", "M2")
	a.Merge(b).Merge(nil)
	if a.Len() != 2 || a.Info("B.M2") == nil {
		t.Fatalf("merge failed: %v", a.Names())
	}
}
