package core

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// reentrantLock serializes instrumented calls across goroutines while
// letting nested instrumented calls on the owning goroutine proceed (a
// wrapped method calling another wrapped method must not self-deadlock).
// The owner is identified by goroutine id; depth is only touched by the
// owner, so it needs no further synchronization.
type reentrantLock struct {
	mu    sync.Mutex
	owner atomic.Uint64
	depth int
}

// Lock acquires the lock, reentrantly for the owning goroutine.
func (l *reentrantLock) Lock() {
	id := gid()
	if l.owner.Load() == id {
		l.depth++
		return
	}
	l.mu.Lock()
	l.owner.Store(id)
	l.depth = 1
}

// Unlock releases one level of the lock.
func (l *reentrantLock) Unlock() {
	l.depth--
	if l.depth == 0 {
		l.owner.Store(0)
		l.mu.Unlock()
	}
}

// gid returns the current goroutine id by parsing the stack header
// ("goroutine N [running]: ..."). This is the standard stdlib-only way to
// get goroutine identity; it costs about a microsecond, which only the
// Serialize mode pays.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	header := buf[:n]
	header = bytes.TrimPrefix(header, []byte("goroutine "))
	if i := bytes.IndexByte(header, ' '); i > 0 {
		id, err := strconv.ParseUint(string(header[:i]), 10, 64)
		if err == nil {
			return id
		}
	}
	return 0
}
