//go:build failatomic_portable_gls

package core

// Portable goroutine-local binding keys: the goroutine id parsed from
// runtime.Stack (see gid in rlock.go). No runtime internals, but every
// bound-mode prologue pays the stack-header parse (~microseconds), and
// goroutines spawned while bound do NOT inherit the binding. The default
// build (gls_label.go) uses the profiler-label slot instead.

// glsKey returns the calling goroutine's binding key.
func glsKey() uintptr {
	return uintptr(gid())
}

// glsBind returns the goroutine id as the binding key; there is nothing
// to install or restore (nesting is handled by the registry's previous-
// entry bookkeeping, since nested binds share the goroutine's key).
func glsBind() (uintptr, func()) {
	return uintptr(gid()), func() {}
}
