//go:build !failatomic_portable_gls

package core

// Goroutine-local binding keys via profiler labels. Session.Bind must
// route every instrumented prologue on the bound goroutine to its session,
// which needs a per-call goroutine identity; parsing it out of
// runtime.Stack costs microseconds — more than the prologue's real work.
// Instead we ride the runtime's goroutine-label slot: pprof.WithLabels
// allocates a fresh label map, SetGoroutineLabels stores its pointer in
// the g struct, and the two runtime accessors below (stable linkname
// surface used by the pprof package itself since Go 1.9) read and write
// that slot in a few nanoseconds. The pointer doubles as a unique binding
// key, and — like an installed global session — is inherited by goroutines
// spawned while bound.
//
// Trade-off: a workload that calls pprof.SetGoroutineLabels itself
// replaces the key mid-bind, after which its instrumented calls miss the
// binding and fall back to the global session (or become no-ops). That
// errs on the side of missed observations, the same one-sided guarantee
// the detector gives everywhere else. Build with -tags
// failatomic_portable_gls to key bindings by goroutine id instead (slower,
// no runtime internals).

import (
	"context"
	"runtime"
	"runtime/pprof"
	"unsafe"
)

//go:linkname runtime_getProfLabel runtime/pprof.runtime_getProfLabel
func runtime_getProfLabel() unsafe.Pointer

//go:linkname runtime_setProfLabel runtime/pprof.runtime_setProfLabel
func runtime_setProfLabel(labels unsafe.Pointer)

// glsKey returns the calling goroutine's binding key (0 = definitely
// unbound). A non-zero key may also be an unrelated pprof label map; the
// registry lookup in bound() disambiguates.
func glsKey() uintptr {
	return uintptr(runtime_getProfLabel())
}

// glsBind installs a fresh unique key on the calling goroutine and
// returns it with a restore func that reinstates the previous key (and
// keeps the backing label map alive for the binding's whole lifetime, so
// the key cannot be recycled while it is in the registry).
func glsBind() (uintptr, func()) {
	prev := runtime_getProfLabel()
	ctx := pprof.WithLabels(context.Background(), pprof.Labels("failatomic.bind", "session"))
	pprof.SetGoroutineLabels(ctx)
	key := uintptr(runtime_getProfLabel())
	return key, func() {
		runtime_setProfLabel(prev)
		runtime.KeepAlive(ctx)
	}
}
