package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"failatomic/internal/checkpoint"
	"failatomic/internal/fault"
	"failatomic/internal/objgraph"
)

// Mark records one atomicity observation: a wrapped method returned with an
// exception and its before/after object graphs were compared (Listing 1,
// lines 10–14). Seq numbers are assigned callee-first as the exception
// unwinds, which implements §4.3's pure-vs-conditional ordering rule.
type Mark struct {
	// Method is the instrumentation name of the marked method.
	Method string
	// Seq is the callee-first order of this mark within the run (1 = the
	// first, i.e. deepest, method marked).
	Seq int
	// Atomic reports whether the before/after object graphs were equal.
	Atomic bool
	// Diff is the path to the first graph difference ("" when Atomic).
	Diff string
	// Exception is the exception that unwound through the method.
	Exception *fault.Exception
	// Masked reports whether the masking wrapper rolled the receiver back
	// before the comparison.
	Masked bool
}

// MaskSkip records a method whose checkpoint could not be captured or
// restored; the method then runs unmasked for that call.
type MaskSkip struct {
	Method string
	Err    error
}

// PointInfo describes one potential injection point of a run: the
// instrumentation name it belongs to and the candidate exception kind. A
// traced clean run (Config.TracePoints) records one PointInfo per global
// counter increment, which is the profile perturbation strategies plan
// their experiment grids from.
type PointInfo struct {
	Method string
	Kind   fault.Kind
}

// Trigger generalizes injection-point firing beyond the paper's exact
// global-counter threshold. When Config.Trigger is set, ShouldFire is
// consulted once per potential injection point — after the session's
// global counter has been incremented — with the counter value, the
// instrumentation name, the candidate exception kind, and the 1-based
// per-(method, kind) activation ordinal. Returning true raises the
// injected exception at that point; unlike the threshold rule, a trigger
// may fire more than once per run (the burst perturbation model).
type Trigger interface {
	ShouldFire(point int, method string, kind fault.Kind, activation int) bool
}

// siteKey identifies one static injection site: an instrumentation name
// paired with a candidate exception kind.
type siteKey struct {
	method string
	kind   fault.Kind
}

// MaskStat aggregates the masking overhead observed for one method: how
// many calls were checkpointed, the checkpoint bytes captured, and how
// many rollbacks fired. The repair report groups these by assigned
// strategy to extend the paper's Figure 3/4 overhead story.
type MaskStat struct {
	Calls     int64 `json:"calls"`
	Bytes     int64 `json:"bytes"`
	Rollbacks int64 `json:"rollbacks"`
}

// Config selects the behaviors of a Session.
type Config struct {
	// Registry supplies per-method declared exception kinds. May be nil:
	// unregistered methods get only the runtime kinds.
	Registry *Registry
	// Inject enables injection-point counting; an exception is raised when
	// the counter reaches InjectionPoint (0 = count but never fire).
	Inject bool
	// InjectionPoint is the threshold of Listing 1.
	InjectionPoint int
	// Trigger, when non-nil, replaces the InjectionPoint threshold rule:
	// every potential injection point is offered to the trigger instead
	// (perturbation models beyond inject-at-the-first-activation). The
	// trigger may fire multiply per run; every raised exception is
	// recorded, and Injected() reports the first.
	Trigger Trigger
	// ExitFire, when non-nil, is consulted in the deferred epilogue of
	// every receiver-bearing instrumented call that is about to return
	// normally; call is the 1-based per-method call ordinal. Returning a
	// kind with fire=true raises an injected exception *after* the method
	// body completed — the deferred-cleanup perturbation model: the
	// wrapper's epilogue is exactly where a method's deferred cleanup
	// runs, so the fault strikes with the body's effects already applied.
	ExitFire func(method string, call int64) (fault.Kind, bool)
	// Oblivious makes exit handlers swallow injected exceptions after
	// recording their atomicity mark, instead of re-panicking: the
	// failure-oblivious perturbation model. The swallowing boundary is the
	// nearest receiver-bearing wrapper the exception unwinds into (its
	// method returns zero values and execution continues); organic and
	// foreign panics keep propagating.
	Oblivious bool
	// TracePoints records one PointInfo per global counter increment,
	// retrievable via PointTrace — the clean-run profile perturbation
	// strategies plan from. Off by default (the trace allocates).
	TracePoints bool
	// Detect enables object-graph snapshots and marking (Listing 1).
	Detect bool
	// Snapshot selects how before-states are summarized when Detect is
	// on: SnapshotFingerprint (the zero value) compares streaming graph
	// hashes through a session-owned incremental cache and leaves
	// Mark.Diff empty; SnapshotFingerprintNoCache does the same with the
	// cache disabled (hash from scratch every call); SnapshotCapture
	// materializes full graphs and reports the first-difference path.
	Snapshot SnapshotMode
	// SnapshotCacheBudget caps the bytes of large-leaf content the
	// fingerprint cache may pin for reuse verification; 0 selects the
	// objgraph default (8 MiB). Only consulted when Detect is on and
	// Snapshot is SnapshotFingerprint.
	SnapshotCacheBudget int64
	// Mask enables checkpoint/rollback for the methods in MaskMethods (or
	// all methods when MaskAll).
	Mask bool
	// MaskAll masks every instrumented method with a receiver.
	MaskAll bool
	// MaskMethods lists methods to mask (Step 5's corrected program wraps
	// only the failure non-atomic methods).
	MaskMethods map[string]bool
	// Strategy is the checkpoint strategy; nil means checkpoint.DeepCopy.
	Strategy checkpoint.Strategy
	// MaskStrategies overrides Strategy per method (the repair pipeline's
	// strategy-aware masking assigns each wrapped method its own rung).
	MaskStrategies map[string]checkpoint.Strategy
	// ExceptionFree lists methods the programmer asserts never throw
	// (§4.3); the injector skips their injection points.
	ExceptionFree map[string]bool
	// RuntimeKinds overrides the generic undeclared kinds injected into
	// every method; nil means fault.RuntimeKinds().
	RuntimeKinds []fault.Kind
	// Serialize makes each instrumented call hold a session-global lock
	// for its whole duration — the paper's §4.4 mitigation for
	// multi-threaded programs ("restricting the amount of parallelism and
	// enforcing restrictive concurrency control policies"). Snapshots,
	// comparisons and rollbacks then never race with other instrumented
	// calls. Point numbering across goroutines still depends on the
	// scheduler, so campaigns over concurrent workloads may emit
	// nondeterminism warnings.
	Serialize bool
}

// Session is one configured run of an instrumented program. Sessions are
// exclusive (the paper's system is single-threaded, §4.4): Install fails if
// another session is active.
type Session struct {
	cfg          Config
	runtimeKinds []fault.Kind
	strategy     checkpoint.Strategy
	// serial is held for the duration of each instrumented call when
	// Serialize is set (reentrant, so nested wrapped calls on the owning
	// goroutine proceed).
	serial reentrantLock

	// perturbed caches "Trigger or TracePoints is set" so the per-point
	// hot loop pays one predictable branch for the legacy threshold rule.
	perturbed bool

	point       int
	injected    []*fault.Exception
	activations map[siteKey]int
	trace       []PointInfo
	seq         int
	marks       []Mark
	calls       map[string]int64
	maskSkips   []MaskSkip
	masked      int64
	restored    int64
	maskStats   map[string]*MaskStat

	// rootsFree is a LIFO free-list of roots scratch slices. Wrapped calls
	// nest (each exit handler is deferred), so the innermost call returns
	// its slice before the outer one finishes — a stack matches the
	// lifetime exactly and keeps the detect prologue allocation-free after
	// the first call at each nesting depth. Guarded by the same
	// single-goroutine (or Serialize-lock) discipline as s.calls.
	rootsFree [][]any

	// fpCache is the session's incremental fingerprint cache, non-nil
	// only in SnapshotFingerprint detect mode. Its generation is bumped
	// on every wrapped-call entry and before every after-fingerprint, so
	// a frame digest is only replayed when no wrapped mutation could
	// have touched the graph since it was computed (large-leaf replays
	// are additionally verified by exact content compare).
	fpCache *objgraph.FPCache
}

// NewSession returns a session with the given configuration.
func NewSession(cfg Config) *Session {
	kinds := cfg.RuntimeKinds
	if kinds == nil {
		kinds = fault.RuntimeKinds()
	}
	strategy := cfg.Strategy
	if strategy == nil {
		strategy = checkpoint.DeepCopy()
	}
	s := &Session{
		cfg:          cfg,
		runtimeKinds: kinds,
		strategy:     strategy,
		calls:        make(map[string]int64),
		perturbed:    cfg.Trigger != nil || cfg.TracePoints,
	}
	if cfg.Trigger != nil {
		s.activations = make(map[siteKey]int)
	}
	if cfg.Detect && cfg.Snapshot == SnapshotFingerprint {
		s.fpCache = objgraph.NewFPCache(cfg.SnapshotCacheBudget)
	}
	return s
}

// SnapshotCacheStats returns the fingerprint cache's counters, or zeros
// when the session has no cache (capture or fingerprint-nocache mode).
func (s *Session) SnapshotCacheStats() SnapshotCacheStats {
	if s.fpCache == nil {
		return SnapshotCacheStats{}
	}
	st := s.fpCache.Stats()
	return SnapshotCacheStats{Hits: st.Hits, Misses: st.Misses, Bytes: st.Bytes}
}

// fingerprint summarizes the roots as a 128-bit graph hash, through the
// session cache when one exists.
func (s *Session) fingerprint(roots []any) objgraph.FP {
	if s.fpCache != nil {
		return objgraph.FingerprintCached(s.fpCache, roots...)
	}
	return objgraph.Fingerprint(roots...)
}

// Point returns the current value of the global injection-point counter.
func (s *Session) Point() int { return s.point }

// Injected returns the first exception injected in this run, or nil.
func (s *Session) Injected() *fault.Exception {
	if len(s.injected) == 0 {
		return nil
	}
	return s.injected[0]
}

// InjectedAll returns every exception injected in this run, in firing
// order. Only multi-fire triggers (the burst perturbation model) produce
// more than one.
func (s *Session) InjectedAll() []*fault.Exception { return s.injected }

// PointTrace returns the per-point (method, kind) trace recorded when
// Config.TracePoints is set; nil otherwise.
func (s *Session) PointTrace() []PointInfo { return s.trace }

// Marks returns the atomicity observations recorded so far.
func (s *Session) Marks() []Mark { return s.marks }

// Calls returns the per-method call counts.
func (s *Session) Calls() map[string]int64 { return s.calls }

// MaskSkips returns methods whose checkpoints failed.
func (s *Session) MaskSkips() []MaskSkip { return s.maskSkips }

// MaskedCalls returns how many calls were checkpointed.
func (s *Session) MaskedCalls() int64 { return s.masked }

// Rollbacks returns how many checkpoints were rolled back.
func (s *Session) Rollbacks() int64 { return s.restored }

// MaskStats returns the per-method masking overhead, or nil when no call
// was masked.
func (s *Session) MaskStats() map[string]MaskStat {
	if len(s.maskStats) == 0 {
		return nil
	}
	out := make(map[string]MaskStat, len(s.maskStats))
	for name, st := range s.maskStats {
		out[name] = *st
	}
	return out
}

// noteMask records one masked call's overhead. Checkpoint bytes must be
// read before rollback (journals clear on restore).
func (s *Session) noteMask(name string, bytes int, rolledBack bool) {
	if s.maskStats == nil {
		s.maskStats = make(map[string]*MaskStat)
	}
	st := s.maskStats[name]
	if st == nil {
		st = &MaskStat{}
		s.maskStats[name] = st
	}
	st.Calls++
	st.Bytes += int64(bytes)
	if rolledBack {
		st.Rollbacks++
	}
}

// _active holds the installed global session. Instrumented prologues fall
// back to it when the calling goroutine has no scoped binding (see
// bind.go); nil means calls from unbound goroutines are no-ops. This is
// deliberate ambient state — the same role as the bytecode-woven wrappers'
// global Point counter in the paper — and is guarded for exclusive use.
var _active atomic.Pointer[Session]

// ErrSessionActive is returned by Install when a session is already
// installed.
var ErrSessionActive = errors.New("core: another session is already installed")

// Install makes s the active global session. It fails if another global
// session is installed; goroutine-scoped sessions (Session.Bind) are not
// subject to this exclusivity and may coexist with the global.
func Install(s *Session) error {
	if s == nil {
		return errors.New("core: cannot install nil session")
	}
	if !_active.CompareAndSwap(nil, s) {
		return ErrSessionActive
	}
	activity.Add(1)
	return nil
}

// Uninstall removes s if it is the active global session.
func Uninstall(s *Session) {
	if _active.CompareAndSwap(s, nil) {
		activity.Add(-1)
	}
}

// Active returns the installed global session, or nil. It ignores
// goroutine-scoped bindings; see Current for the session a call on this
// goroutine would actually use.
func Active() *Session { return _active.Load() }

// nop is the shared prologue epilogue for uninstrumented runs.
func nop() {}

// Enter is the woven prologue. recv is the method receiver (nil for
// constructors and free functions); name is the instrumentation name; extra
// lists by-reference arguments that belong to the compared object graph
// ("all arguments that are passed in as non-constant references", §4.1).
//
// The returned closure must be deferred by the caller:
//
//	defer core.Enter(l, "LinkedList.InsertAt")()
//
// Injection happens during Enter itself — before the closure is deferred —
// so an injected exception propagates to the *caller's* wrapper without
// executing the method body, exactly like Listing 1 where the injection
// points precede the try block.
func Enter(recv any, name string, extra ...any) func() {
	// Fast path: one atomic load covers "no global session and no scoped
	// binding anywhere", so uninstrumented production calls stay no-ops at
	// the pre-binding cost.
	if activity.Load() == 0 {
		return nop
	}
	s := Current()
	if s == nil {
		return nop
	}
	return s.enter(recv, name, extra)
}

// enter builds the method epilogue. Because recover only works when called
// directly from the deferred function, enterWork returns an exit handler
// taking the recovered value, and enter wraps it into the actual deferred
// closure (optionally bracketed by the serialization lock).
func (s *Session) enter(recv any, name string, extra []any) func() {
	if !s.cfg.Serialize {
		exit := s.enterWork(recv, name, extra)
		if exit == nil {
			return nop
		}
		return func() { exit(recover()) }
	}
	// Serialized mode: hold the (reentrant) session lock for the whole
	// instrumented call. An injected exception leaves enterWork before the
	// epilogue is deferred, so the guard releases the lock on that path;
	// otherwise the returned closure releases it after the exit handler,
	// even when the handler re-panics.
	s.serial.Lock()
	exit := func() func(any) {
		defer func() {
			if r := recover(); r != nil {
				s.serial.Unlock()
				panic(r)
			}
		}()
		return s.enterWork(recv, name, extra)
	}()
	return func() {
		defer s.serial.Unlock()
		r := recover()
		if exit != nil {
			exit(r)
		} else if r != nil {
			panic(r)
		}
	}
}

// enterWork performs the prologue work (counting, injection, checkpoint,
// snapshot) and returns the exit handler, or nil when nothing needs to
// happen at method exit. The handler re-panics when passed a non-nil
// recovered value.
func (s *Session) enterWork(recv any, name string, extra []any) func(any) {
	if s.fpCache != nil {
		// Any wrapped call may mutate the object graph; one atomic
		// generation bump conservatively invalidates root-frame reuse, so
		// the before-fingerprint below never replays a digest from before
		// this call's effects.
		s.fpCache.Bump()
	}
	call := s.calls[name] + 1
	s.calls[name] = call

	if s.cfg.Inject && !s.cfg.ExceptionFree[name] {
		info := s.cfg.Registry.Info(name)
		if info != nil {
			for _, kind := range info.Declared {
				s.point++
				if s.perturbed {
					s.advancePerturbed(kind, name)
				} else if s.point == s.cfg.InjectionPoint {
					s.inject(kind, name)
				}
			}
		}
		for _, kind := range s.runtimeKinds {
			s.point++
			if s.perturbed {
				s.advancePerturbed(kind, name)
			} else if s.point == s.cfg.InjectionPoint {
				s.inject(kind, name)
			}
		}
	}

	if recv == nil {
		return nil
	}

	maskWanted := s.cfg.Mask && (s.cfg.MaskAll || s.cfg.MaskMethods[name])
	if !maskWanted && !s.cfg.Detect {
		return nil
	}

	roots := s.getRoots(1 + len(extra))
	roots = append(roots, recv)
	roots = append(roots, extra...)

	var handle checkpoint.Handle
	if maskWanted {
		strat := s.strategy
		if override := s.cfg.MaskStrategies[name]; override != nil {
			strat = override
		}
		h, err := strat.Capture(roots...)
		if err != nil {
			s.maskSkips = append(s.maskSkips, MaskSkip{Method: name, Err: err})
		} else {
			handle = h
			s.masked++
		}
	}

	var before *objgraphSnapshot
	var beforeFP objgraph.FP
	fingerprinted := false
	if s.cfg.Detect {
		if s.cfg.Snapshot.Fingerprinted() {
			beforeFP = s.fingerprint(roots)
			fingerprinted = true
		} else {
			before = snapshot(roots)
		}
	}

	if handle == nil && before == nil && !fingerprinted && s.cfg.ExitFire == nil {
		s.putRoots(roots)
		return nil
	}

	return func(r any) {
		if r == nil && s.cfg.ExitFire != nil {
			// Deferred-cleanup injection: the body completed; the fault
			// strikes in the epilogue — the method's cleanup phase — and
			// takes the exceptional path below with the body's effects
			// already applied to the object graph.
			if kind, fire := s.cfg.ExitFire(name, call); fire {
				exc := fault.New(kind, name, s.point)
				s.injected = append(s.injected, exc)
				r = exc
			}
		}
		if r == nil {
			if handle != nil {
				s.noteMask(name, handle.Bytes(), false)
			}
			if c, ok := handle.(checkpoint.Committer); ok {
				c.Commit()
			}
			s.putRoots(roots)
			return
		}
		rolledBack := false
		if handle != nil {
			// Read the checkpoint size before rollback clears the journal.
			bytes := handle.Bytes()
			if err := handle.Rollback(); err != nil {
				s.maskSkips = append(s.maskSkips, MaskSkip{
					Method: name,
					Err:    fmt.Errorf("rollback: %w", err),
				})
			} else {
				s.restored++
				rolledBack = true
			}
			s.noteMask(name, bytes, rolledBack)
		}
		if fingerprinted {
			// Fingerprint mode records the verdict but no diff path; the
			// campaign driver recovers Diff for non-atomic marks by
			// re-running the run in capture mode (deterministic replay).
			if s.fpCache != nil {
				// The method body (and any handler code) ran since the
				// before-fingerprint; invalidate root-frame reuse so the
				// after-fingerprint re-examines the graph instead of
				// replaying the before digest.
				s.fpCache.Bump()
			}
			s.seq++
			s.marks = append(s.marks, Mark{
				Method:    name,
				Seq:       s.seq,
				Atomic:    s.fingerprint(roots) == beforeFP,
				Exception: fault.From(r),
				Masked:    rolledBack,
			})
		} else if before != nil {
			after := snapshot(roots)
			diff := before.diff(after)
			s.seq++
			s.marks = append(s.marks, Mark{
				Method:    name,
				Seq:       s.seq,
				Atomic:    diff == "",
				Diff:      diff,
				Exception: fault.From(r),
				Masked:    rolledBack,
			})
		}
		s.putRoots(roots)
		if s.cfg.Oblivious {
			// Failure-oblivious mode: the mark is recorded, then the
			// injected exception stops here — this wrapper is the handler
			// boundary; its method returns zero values and the workload
			// continues (organic and foreign panics still propagate).
			if exc, ok := r.(*fault.Exception); ok && exc.Injected {
				return
			}
		}
		panic(r)
	}
}

// advancePerturbed handles one potential injection point when a trigger
// or point tracing is active (the non-threshold slow path; s.point has
// already been incremented).
func (s *Session) advancePerturbed(kind fault.Kind, name string) {
	if s.cfg.TracePoints {
		s.trace = append(s.trace, PointInfo{Method: name, Kind: kind})
	}
	if s.cfg.Trigger == nil {
		if s.point == s.cfg.InjectionPoint {
			s.inject(kind, name)
		}
		return
	}
	site := siteKey{method: name, kind: kind}
	s.activations[site]++
	if s.cfg.Trigger.ShouldFire(s.point, name, kind, s.activations[site]) {
		s.inject(kind, name)
	}
}

// getRoots pops a scratch slice with capacity for n roots off the
// session free-list, or allocates one.
func (s *Session) getRoots(n int) []any {
	if k := len(s.rootsFree); k > 0 {
		r := s.rootsFree[k-1]
		s.rootsFree = s.rootsFree[:k-1]
		if cap(r) >= n {
			return r
		}
	}
	return make([]any, 0, n)
}

// putRoots clears a scratch slice (dropping its references) and pushes it
// back on the free-list.
func (s *Session) putRoots(r []any) {
	clear(r)
	s.rootsFree = append(s.rootsFree, r[:0])
}

// inject raises an injected exception at the current point (Listing 1,
// lines 2–5).
func (s *Session) inject(kind fault.Kind, name string) {
	exc := fault.New(kind, name, s.point)
	s.injected = append(s.injected, exc)
	panic(exc)
}
