// Package core is the runtime half of the paper's contribution: the
// injection-point counter, the woven method prologue (Listing 1's injection
// wrapper and Listing 2's atomicity wrapper, composed), mark records with
// callee-first sequence numbers, and per-method call counting.
//
// Instrumented methods carry a single prologue line:
//
//	func (l *LinkedList) InsertAt(i int, v Item) {
//		defer core.Enter(l, "LinkedList.InsertAt")()
//		...
//	}
//
// When no Session is installed the prologue is a cheap no-op, so woven code
// runs at (almost) full speed in production. A Session configures which of
// the three behaviors are active: exception injection (detection phase,
// Step 3), object-graph comparison and marking (Listing 1), and
// checkpoint/rollback masking (Listing 2).
package core

import (
	"fmt"
	"sort"
	"strings"

	"failatomic/internal/fault"
)

// MethodInfo describes one instrumented method or constructor.
type MethodInfo struct {
	// Name is the full instrumentation name, e.g. "LinkedList.InsertAt".
	Name string
	// Class is the class the method belongs to.
	Class string
	// Ctor marks constructor functions (injection points without a
	// receiver to compare).
	Ctor bool
	// Declared lists the exception kinds the method declares (the analog
	// of a Java throws clause); the injector raises these plus the generic
	// runtime kinds.
	Declared []fault.Kind
}

// Registry maps instrumentation names to method metadata. It plays the role
// of the paper's Analyzer output: which methods exist and which exceptions
// each may throw (Step 1).
type Registry struct {
	methods map[string]*MethodInfo
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{methods: make(map[string]*MethodInfo)}
}

// Method registers a method of class with its declared exception kinds and
// returns the registry for chaining.
func (r *Registry) Method(class, method string, declared ...fault.Kind) *Registry {
	name := class + "." + method
	r.methods[name] = &MethodInfo{Name: name, Class: class, Declared: declared}
	return r
}

// Ctor registers a constructor function for class (e.g. "NewLinkedList").
func (r *Registry) Ctor(class, fn string, declared ...fault.Kind) *Registry {
	r.methods[fn] = &MethodInfo{Name: fn, Class: class, Ctor: true, Declared: declared}
	return r
}

// Merge copies all entries of other into r and returns r.
func (r *Registry) Merge(other *Registry) *Registry {
	if other == nil {
		return r
	}
	for name, info := range other.methods {
		r.methods[name] = info
	}
	return r
}

// Info returns the metadata for name, or nil if unregistered.
func (r *Registry) Info(name string) *MethodInfo {
	if r == nil {
		return nil
	}
	return r.methods[name]
}

// Names returns all registered instrumentation names, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.methods))
	for name := range r.methods {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered entries.
func (r *Registry) Len() int { return len(r.methods) }

// ClassOf resolves the class of an instrumentation name: the registered
// class if known, otherwise the prefix before the first dot, otherwise the
// name itself (free functions / constructors).
func (r *Registry) ClassOf(name string) string {
	if info := r.Info(name); info != nil {
		return info.Class
	}
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

// Validate checks registry consistency (non-empty names, no duplicate kinds
// per method) and returns an error describing the first problem.
func (r *Registry) Validate() error {
	for name, info := range r.methods {
		if name == "" || info.Name != name {
			return fmt.Errorf("core: registry entry %q has mismatched name %q", name, info.Name)
		}
		seen := make(map[fault.Kind]bool, len(info.Declared))
		for _, k := range info.Declared {
			if k == "" {
				return fmt.Errorf("core: method %q declares an empty fault kind", name)
			}
			if seen[k] {
				return fmt.Errorf("core: method %q declares kind %q twice", name, k)
			}
			seen[k] = true
		}
	}
	return nil
}
