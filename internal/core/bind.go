package core

import (
	"sync"
	"sync/atomic"
)

// Goroutine-scoped session binding. The paper's system is single-threaded
// and the legacy Install/Uninstall global slot mirrors that; scoped
// bindings lift the restriction so independent injector runs (one fresh
// session each) can execute concurrently. A binding maps a goroutine-local
// key (see gls_label.go / gls_portable.go) to a session in a sharded
// registry; Enter consults the registry only when at least one binding
// exists and falls back to the legacy global, so every existing call site
// keeps working and the no-session fast path stays a single atomic load.

// nBindShards spreads bindings over independently locked maps so worker
// pools don't serialize on one mutex. Power of two for cheap masking.
const nBindShards = 64

type bindShard struct {
	mu sync.RWMutex
	m  map[uintptr]*Session
	// pad keeps adjacent shards on distinct cache lines; without it two
	// shards share a 64-byte line and concurrent RLocks false-share.
	pad [64 - 32]byte //nolint:structcheck // padding only
}

var bindShards [nBindShards]bindShard

func init() {
	for i := range bindShards {
		bindShards[i].m = make(map[uintptr]*Session)
	}
}

// shardFor picks the shard for a binding key (a pointer in the fast
// implementation, a goroutine id in the portable one); the Fibonacci
// multiplier spreads both well.
func shardFor(key uintptr) *bindShard {
	return &bindShards[(uint64(key)*0x9E3779B97F4A7C15)>>32&(nBindShards-1)]
}

// activity counts every reason a prologue must do work: one for an
// installed global session plus one per live goroutine binding. Enter
// loads only this counter on the no-session fast path, so uninstrumented
// production cost is unchanged by the binding registry.
var activity atomic.Int64

// boundCount counts live goroutine bindings. When zero, Enter skips the
// binding lookup entirely, which keeps the legacy sequential path (global
// session, no bindings) at its original cost.
var boundCount atomic.Int64

// Bind runs fn with s bound to the calling goroutine: every instrumented
// prologue fn executes routes to s, overriding an installed global
// session. Goroutines spawned inside fn inherit the binding (they carry
// the same goroutine-local key), so a bound session covers a concurrent
// workload exactly as an installed global would — including §4.4's
// caveats, mitigated by Config.Serialize. Bindings nest; the previous
// binding is restored when fn returns or panics. Distinct goroutines may
// bind distinct sessions concurrently — the basis of parallel campaigns.
func (s *Session) Bind(fn func()) {
	if fn == nil {
		return
	}
	key, restore := glsBind()
	sh := shardFor(key)
	sh.mu.Lock()
	prev, had := sh.m[key]
	sh.m[key] = s
	sh.mu.Unlock()
	boundCount.Add(1)
	activity.Add(1)
	defer func() {
		sh.mu.Lock()
		if had {
			sh.m[key] = prev
		} else {
			delete(sh.m, key)
		}
		sh.mu.Unlock()
		boundCount.Add(-1)
		activity.Add(-1)
		restore()
	}()
	fn()
}

// bound returns the session bound to the current goroutine, or nil. Only
// called when boundCount is nonzero.
func bound() *Session {
	key := glsKey()
	if key == 0 {
		return nil
	}
	sh := shardFor(key)
	sh.mu.RLock()
	s := sh.m[key]
	sh.mu.RUnlock()
	return s
}

// Current returns the session instrumented calls on this goroutine would
// route to: the goroutine's binding if one exists, else the installed
// global session, else nil.
func Current() *Session {
	if boundCount.Load() != 0 {
		if s := bound(); s != nil {
			return s
		}
	}
	return _active.Load()
}
