package core

import "testing"

// TestDetectFingerprintVerdictsMatchCapture runs the same exceptional
// workload under both snapshot engines and requires identical Atomic
// verdicts; fingerprint marks carry no diff (the campaign driver recovers
// it by replay), capture marks always do when non-atomic.
func TestDetectFingerprintVerdictsMatchCapture(t *testing.T) {
	type observed struct {
		method string
		atomic bool
	}
	runMode := func(mode SnapshotMode) ([]observed, []Mark) {
		var marks []Mark
		withSession(t, Config{Inject: true, InjectionPoint: 4, Detect: true, Snapshot: mode}, func(s *Session) {
			a := &account{Balance: 1}
			if r := catchPanic(func() { a.Deposit(5) }); r == nil {
				t.Fatal("expected the injected exception to escape")
			}
			marks = s.Marks()
		})
		var out []observed
		for _, m := range marks {
			out = append(out, observed{m.Method, m.Atomic})
		}
		return out, marks
	}

	fpVerdicts, fpMarks := runMode(SnapshotFingerprint)
	capVerdicts, _ := runMode(SnapshotCapture)
	if len(fpVerdicts) == 0 {
		t.Fatal("no marks recorded")
	}
	if len(fpVerdicts) != len(capVerdicts) {
		t.Fatalf("mark counts differ: %d vs %d", len(fpVerdicts), len(capVerdicts))
	}
	for i := range fpVerdicts {
		if fpVerdicts[i] != capVerdicts[i] {
			t.Fatalf("verdict %d differs: fingerprint %+v vs capture %+v", i, fpVerdicts[i], capVerdicts[i])
		}
	}
	for _, m := range fpMarks {
		if m.Diff != "" {
			t.Fatalf("fingerprint mark %q carries a diff %q; diffs are the replay's job", m.Method, m.Diff)
		}
	}
}

// TestDetectFingerprintAtomicMethod checks the no-mutation side: a method
// that mutates nothing before the exception stays Atomic under
// fingerprints.
func TestDetectFingerprintAtomicMethod(t *testing.T) {
	withSession(t, Config{Inject: true, InjectionPoint: 4, Detect: true}, func(s *Session) {
		a := &account{Balance: 1}
		if r := catchPanic(func() { a.DepositSafe(5) }); r == nil {
			t.Fatal("expected the injected exception to escape")
		}
		for _, m := range s.Marks() {
			if m.Method == "account.DepositSafe" && !m.Atomic {
				t.Fatalf("DepositSafe must be atomic under fingerprints: %+v", m)
			}
		}
	})
}

// TestParseSnapshotMode pins the knob spellings, including the empty
// default that zero-valued job specs round-trip through.
func TestParseSnapshotMode(t *testing.T) {
	for in, want := range map[string]SnapshotMode{
		"":                    SnapshotFingerprint,
		"fingerprint":         SnapshotFingerprint,
		"fingerprint-nocache": SnapshotFingerprintNoCache,
		"capture":             SnapshotCapture,
	} {
		got, err := ParseSnapshotMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSnapshotMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSnapshotMode("bogus"); err == nil {
		t.Fatal("ParseSnapshotMode must reject unknown modes")
	}
	if SnapshotFingerprint.String() != "fingerprint" || SnapshotCapture.String() != "capture" ||
		SnapshotFingerprintNoCache.String() != "fingerprint-nocache" {
		t.Fatal("String() must match the knob spellings")
	}
	if !SnapshotFingerprint.Fingerprinted() || !SnapshotFingerprintNoCache.Fingerprinted() ||
		SnapshotCapture.Fingerprinted() {
		t.Fatal("Fingerprinted() must cover exactly the two hashing modes")
	}
}

// TestSnapshotCacheStats: only the cached fingerprint mode wires a cache
// into the session; its counters move with wrapped-call traffic, and both
// escape hatches report zeros.
func TestSnapshotCacheStats(t *testing.T) {
	work := func(s *Session) {
		s.Bind(func() {
			a := &account{}
			for i := 0; i < 5; i++ {
				a.Deposit(10)
			}
		})
	}
	cached := NewSession(Config{Detect: true, Snapshot: SnapshotFingerprint})
	work(cached)
	if st := cached.SnapshotCacheStats(); st.Misses == 0 {
		t.Errorf("cached session recorded no misses: %+v", st)
	}
	for _, mode := range []SnapshotMode{SnapshotFingerprintNoCache, SnapshotCapture} {
		s := NewSession(Config{Detect: true, Snapshot: mode})
		work(s)
		if st := s.SnapshotCacheStats(); st != (SnapshotCacheStats{}) {
			t.Errorf("%v session reported cache stats %+v, want zeros", mode, st)
		}
	}
}

// TestRootsScratchReuseAcrossNestedCalls exercises the per-session roots
// free-list under nesting: the wrapper's own snapshot must not clobber a
// pending outer call's roots, across repeated exceptional returns.
func TestRootsScratchReuseAcrossNestedCalls(t *testing.T) {
	type holder struct{ A *account }
	outer := func(h *holder) {
		defer Enter(h, "holder.outer")()
		h.A.Deposit(2) // nested wrapped call that throws via injection
	}
	// Point 6 is inside account.log's prologue (2 runtime points each for
	// outer, Deposit, log), so the exception unwinds through both wrapped
	// frames after Deposit already mutated Balance.
	withSession(t, Config{Inject: true, InjectionPoint: 6, Detect: true, Snapshot: SnapshotCapture}, func(s *Session) {
		h := &holder{A: &account{Balance: 1}}
		if r := catchPanic(func() { outer(h) }); r == nil {
			t.Fatal("expected the injected exception to escape")
		}
		if len(s.Marks()) < 2 {
			t.Fatalf("want marks for the nested and outer call, got %+v", s.Marks())
		}
		for _, m := range s.Marks() {
			if !m.Atomic && m.Diff == "" {
				t.Fatalf("capture-mode non-atomic mark lost its diff: %+v", m)
			}
		}
	})
	// Fingerprint mode over repeated calls: the free-list must recycle
	// without corrupting verdicts run over run.
	withSession(t, Config{Detect: true}, func(s *Session) {
		a := &account{}
		for i := 0; i < 16; i++ {
			a.Deposit(1)
		}
		if got := s.Calls()["account.Deposit"]; got != 16 {
			t.Fatalf("calls = %d, want 16", got)
		}
		if len(s.Marks()) != 0 {
			t.Fatalf("clean calls must record no marks: %+v", s.Marks())
		}
	})
}
