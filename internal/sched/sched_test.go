package sched

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// admit is a test helper that fails on unexpected quota refusals.
func admit(t *testing.T, s *Scheduler, id, token string, pri Priority) Item {
	t.Helper()
	it, err := s.Admit(id, token, pri)
	if err != nil {
		t.Fatalf("Admit(%s): %v", id, err)
	}
	return it
}

// drain dequeues until nothing is eligible, marking each item done so
// MaxRunning never gates, and returns the dequeue order.
func drain(s *Scheduler) []string {
	var order []string
	for {
		it, ok := s.Dequeue()
		if !ok {
			return order
		}
		order = append(order, it.ID)
		s.Done(it.Token)
	}
}

func TestFIFOWithinOneToken(t *testing.T) {
	s := New(Config{})
	for _, id := range []string{"a", "b", "c"} {
		admit(t, s, id, "", Normal)
	}
	if got := strings.Join(drain(s), ","); got != "a,b,c" {
		t.Fatalf("order = %s, want a,b,c", got)
	}
}

func TestPriorityClassesAreStrict(t *testing.T) {
	s := New(Config{})
	admit(t, s, "low1", "t", Low)
	admit(t, s, "norm1", "t", Normal)
	admit(t, s, "high1", "t", High)
	admit(t, s, "norm2", "t", Normal)
	admit(t, s, "high2", "t", High)
	if got := strings.Join(drain(s), ","); got != "high1,high2,norm1,norm2,low1" {
		t.Fatalf("order = %s", got)
	}
}

// TestWeightedFairShare: with shares 2:1, the heavier token gets two
// dequeues for each of the lighter one's while both are backlogged.
func TestWeightedFairShare(t *testing.T) {
	cfg := Config{Tenants: []TenantQuota{
		{Name: "heavy", Token: "th", Shares: 2},
		{Name: "light", Token: "tl", Shares: 1},
	}}
	s := New(cfg)
	for i := 0; i < 4; i++ {
		admit(t, s, "h"+string(rune('1'+i)), "heavy", Normal)
	}
	for i := 0; i < 2; i++ {
		admit(t, s, "l"+string(rune('1'+i)), "light", Normal)
	}
	// Keys: h1=1/2, h2=2/2, h3=3/2, h4=4/2, l1=1/1, l2=2/1.
	// Order: h1(.5), h2(1)=l1(1) -> h2 first by seq, l1, h3(1.5), h4(2)=l2(2) -> h4 by seq, l2.
	if got := strings.Join(drain(s), ","); got != "h1,h2,l1,h3,h4,l2" {
		t.Fatalf("order = %s, want h1,h2,l1,h3,h4,l2", got)
	}
}

// TestArrivalInterleavingDoesNotMatter: the dequeue order is a pure
// function of the admission sequence, regardless of whether dequeues
// are interleaved with admissions.
func TestArrivalInterleavingDoesNotMatter(t *testing.T) {
	cfg := Config{Tenants: []TenantQuota{
		{Name: "a", Token: "ta", Shares: 3},
		{Name: "b", Token: "tb", Shares: 1},
	}}
	type arrival struct {
		id, token string
		pri       Priority
	}
	arrivals := []arrival{
		{"a1", "a", Normal}, {"b1", "b", High}, {"a2", "a", Low},
		{"b2", "b", Normal}, {"a3", "a", Normal}, {"b3", "b", Low},
		{"a4", "a", High}, {"b4", "b", Normal}, {"a5", "a", Normal},
	}

	allAtOnce := New(cfg)
	for _, ar := range arrivals {
		admit(t, allAtOnce, ar.id, ar.token, ar.pri)
	}
	want := drain(allAtOnce)

	// Interleave: admit three, dequeue one mid-stream, admit the rest,
	// drain. The mid-stream dequeue takes the head among items admitted
	// so far; the order of everything else must be untouched by when
	// that dequeue happened — keys are fixed at admission.
	inter := New(cfg)
	var early string
	for i, ar := range arrivals {
		admit(t, inter, ar.id, ar.token, ar.pri)
		if i == 2 {
			it, ok := inter.Dequeue()
			if !ok {
				t.Fatal("dequeue mid-stream failed")
			}
			early = it.ID
			inter.Done(it.Token)
		}
	}
	got := drain(inter)

	var wantRest []string
	for _, id := range want {
		if id != early {
			wantRest = append(wantRest, id)
		}
	}
	if strings.Join(got, ",") != strings.Join(wantRest, ",") {
		t.Fatalf("interleaved order %v != batch order minus %q %v", got, early, wantRest)
	}
}

func TestMaxQueuedRefusesAdmission(t *testing.T) {
	cfg := Config{Tenants: []TenantQuota{{Name: "a", Token: "ta", MaxQueued: 2}}}
	s := New(cfg)
	admit(t, s, "a1", "a", Normal)
	admit(t, s, "a2", "a", Normal)
	_, err := s.Admit("a3", "a", Normal)
	oq, ok := err.(*ErrOverQuota)
	if !ok {
		t.Fatalf("over-quota admit: %v, want *ErrOverQuota", err)
	}
	if oq.Token != "a" || oq.Queued != 2 || oq.MaxQueued != 2 {
		t.Fatalf("quota error = %+v", oq)
	}
	// Other tenants are unaffected...
	admit(t, s, "b1", "b", Normal)
	// ...and a dequeue frees the slot.
	if it, ok := s.Dequeue(); !ok || it.ID != "a1" {
		t.Fatalf("dequeue = %v, %v", it, ok)
	}
	admit(t, s, "a3", "a", Normal)
}

func TestMaxRunningGatesDequeueNotAdmission(t *testing.T) {
	cfg := Config{Tenants: []TenantQuota{{Name: "a", Token: "ta", MaxRunning: 1}}}
	s := New(cfg)
	admit(t, s, "a1", "a", Normal)
	admit(t, s, "a2", "a", Normal)
	admit(t, s, "b1", "b", Normal)

	it1, ok := s.Dequeue()
	if !ok || it1.ID != "a1" {
		t.Fatalf("first dequeue = %v, %v", it1, ok)
	}
	// a2 is gated by a's running cap; b1 dequeues around it.
	it2, ok := s.Dequeue()
	if !ok || it2.ID != "b1" {
		t.Fatalf("second dequeue = %v, %v (want b1 around the capped a2)", it2, ok)
	}
	if _, ok := s.Dequeue(); ok {
		t.Fatal("third dequeue must gate: only a2 remains and a is at MaxRunning")
	}
	s.Done("a")
	if it3, ok := s.Dequeue(); !ok || it3.ID != "a2" {
		t.Fatalf("post-Done dequeue = %v, %v", it3, ok)
	}
}

// TestRestoreReproducesOrder is the restart-determinism core: persist
// the items of a half-drained scheduler, rebuild a fresh one via
// Restore/NoteArrival, and require the remaining dequeue order — and
// the keys of post-restart admissions — to match the uninterrupted run.
func TestRestoreReproducesOrder(t *testing.T) {
	cfg := Config{Tenants: []TenantQuota{
		{Name: "a", Token: "ta", Shares: 2},
		{Name: "b", Token: "tb", Shares: 1},
		{Name: "c", Token: "tc", Shares: 1},
	}}
	build := func() (*Scheduler, []Item) {
		s := New(cfg)
		var items []Item
		for _, ar := range []struct {
			id, tok string
			pri     Priority
		}{
			{"a1", "a", Normal}, {"b1", "b", Low}, {"c1", "c", High},
			{"a2", "a", Normal}, {"b2", "b", Normal}, {"c2", "c", Normal},
			{"a3", "a", High}, {"b3", "b", Normal},
		} {
			items = append(items, admit(t, s, ar.id, ar.tok, ar.pri))
		}
		return s, items
	}

	// Uninterrupted reference: dequeue two, then admit one more, drain.
	ref, _ := build()
	var refOrder []string
	for i := 0; i < 2; i++ {
		it, _ := ref.Dequeue()
		refOrder = append(refOrder, it.ID)
		ref.Done(it.Token)
	}
	admit(t, ref, "late", "b", Normal)
	refOrder = append(refOrder, drain(ref)...)

	// Crashed run: dequeue the same two, "persist" the rest, rebuild.
	crash, items := build()
	var gotOrder []string
	done := map[string]bool{}
	for i := 0; i < 2; i++ {
		it, _ := crash.Dequeue()
		gotOrder = append(gotOrder, it.ID)
		crash.Done(it.Token)
		done[it.ID] = true
	}
	rebuilt := New(cfg)
	for _, it := range items {
		if done[it.ID] {
			rebuilt.NoteArrival(it) // terminal: counts, does not queue
		} else {
			rebuilt.Restore(it)
		}
	}
	admit(t, rebuilt, "late", "b", Normal)
	gotOrder = append(gotOrder, drain(rebuilt)...)

	if strings.Join(gotOrder, ",") != strings.Join(refOrder, ",") {
		t.Fatalf("restored order %v != uninterrupted order %v", gotOrder, refOrder)
	}
}

func TestRequeueKeepsPosition(t *testing.T) {
	s := New(Config{})
	admit(t, s, "a", "", Normal)
	admit(t, s, "b", "", Normal)
	it, _ := s.Dequeue()
	if it.ID != "a" {
		t.Fatalf("dequeue = %s", it.ID)
	}
	// Failover: a goes back and must dequeue before b again.
	s.Requeue(it)
	if got := strings.Join(drain(s), ","); got != "a,b" {
		t.Fatalf("order after requeue = %s, want a,b", got)
	}
}

// TestStartedItemsResumeFirst: a dequeued item returned to the queue
// (failover, drain park) resumes before every never-started item, even
// across priority classes — execution is non-preemptive, so an
// uninterrupted process would have run it to completion before touching
// the queue. The mark survives persistence: Restoring the dequeued
// item's value reproduces the boost in a rebuilt scheduler.
func TestStartedItemsResumeFirst(t *testing.T) {
	s := New(Config{Tenants: []TenantQuota{{Name: "heavy", Token: "th", Shares: 4}}})
	admit(t, s, "running", "", Normal)
	it, ok := s.Dequeue()
	if !ok || it.ID != "running" || !it.Started {
		t.Fatalf("dequeue = %+v, %v (want running, started)", it, ok)
	}
	// Arrivals that would all outrank a never-started "running": a high
	// class item and a heavy-shares item.
	admit(t, s, "urgent", "", High)
	admit(t, s, "heavy1", "heavy", Normal)

	// Failover path: the started item goes back and still dequeues first.
	s.Requeue(it)
	if got := strings.Join(drain(s), ","); got != "running,urgent,heavy1" {
		t.Fatalf("order after requeue = %s, want running,urgent,heavy1", got)
	}

	// Restart path: rebuild from persisted items; the started one keeps
	// its seniority because Started is part of the persisted key.
	s2 := New(Config{Tenants: []TenantQuota{{Name: "heavy", Token: "th", Shares: 4}}})
	s2.Restore(Item{ID: "urgent", Priority: High, Seq: 2, Ord: 1, Shares: 1})
	s2.Restore(Item{ID: "running", Priority: Normal, Seq: 1, Ord: 1, Shares: 1, Started: true})
	if got := strings.Join(drain(s2), ","); got != "running,urgent" {
		t.Fatalf("order after restore = %s, want running,urgent", got)
	}
}

func TestRemoveAndDepths(t *testing.T) {
	s := New(Config{})
	admit(t, s, "a", "t1", High)
	admit(t, s, "b", "t2", Normal)
	admit(t, s, "c", "t1", Low)
	if s.Depth() != 3 || s.QueuedFor("t1") != 2 {
		t.Fatalf("depth=%d queued(t1)=%d", s.Depth(), s.QueuedFor("t1"))
	}
	by := s.DepthByPriority()
	if by[High] != 1 || by[Normal] != 1 || by[Low] != 1 {
		t.Fatalf("by priority = %v", by)
	}
	if !s.Remove("b") || s.Remove("b") {
		t.Fatal("Remove must delete exactly once")
	}
	if got := strings.Join(drain(s), ","); got != "a,c" {
		t.Fatalf("order = %s", got)
	}
}

func TestParsePriority(t *testing.T) {
	for in, want := range map[string]Priority{"": Normal, "normal": Normal, "low": Low, "high": High} {
		got, err := ParsePriority(in)
		if err != nil || got != want {
			t.Errorf("ParsePriority(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Error("unknown priority must be refused")
	}
	for _, p := range []Priority{Low, Normal, High} {
		if rt, err := ParsePriority(p.String()); err != nil || rt != p {
			t.Errorf("round trip %v -> %q -> %v, %v", p, p.String(), rt, err)
		}
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "quotas.json")
	good := `{"default":{"shares":1},"tenants":[
		{"name":"alice","token":"s1","maxQueued":4,"maxRunning":1,"shares":2},
		{"name":"bob","token":"s2","maxQueued":8}]}`
	if err := os.WriteFile(path, []byte(good), 0o600); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if q := cfg.Quota("alice"); q.MaxQueued != 4 || q.Shares != 2 {
		t.Fatalf("alice quota = %+v", q)
	}
	if q := cfg.Quota("bob"); q.Shares != 1 {
		t.Fatalf("bob shares must normalize to 1, got %+v", q)
	}
	if q := cfg.Quota("stranger"); q.MaxQueued != 0 || q.Shares != 1 {
		t.Fatalf("unknown tenant must get the default quota, got %+v", q)
	}
	if got := cfg.TenantNames(); strings.Join(got, ",") != "alice,bob" {
		t.Fatalf("tenant names = %v", got)
	}

	for name, bad := range map[string]string{
		"dup name":  `{"tenants":[{"name":"a","token":"x"},{"name":"a","token":"y"}]}`,
		"dup token": `{"tenants":[{"name":"a","token":"x"},{"name":"b","token":"x"}]}`,
		"no token":  `{"tenants":[{"name":"a"}]}`,
		"no name":   `{"tenants":[{"token":"x"}]}`,
		"negative":  `{"tenants":[{"name":"a","token":"x","maxQueued":-1}]}`,
		"bad json":  `{`,
	} {
		if err := os.WriteFile(path, []byte(bad), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadConfig(path); err == nil {
			t.Errorf("%s: config must be refused", name)
		}
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must error")
	}
}

func TestParseEvery(t *testing.T) {
	d, err := ParseEvery("@every 90s")
	if err != nil || d != 90*time.Second {
		t.Fatalf("ParseEvery = %v, %v", d, err)
	}
	for _, bad := range []string{"", "@every", "@every ", "@every -1s", "@every 0s", "1h", "@daily", "@every x"} {
		if _, err := ParseEvery(bad); err == nil {
			t.Errorf("ParseEvery(%q) must be refused", bad)
		}
	}
}
