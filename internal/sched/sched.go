// Package sched is faserve's multi-tenant job scheduler: per-token
// admission quotas, three priority classes, and weighted fair-share
// dequeue across tokens.
//
// The load-bearing property is determinism. An item's dequeue key is
// assigned at admission as a pure function of (arrival order, the
// token's configured shares, the item's priority class) and never
// changes afterwards: the key is (priority rank, Ord/Shares, Seq), where
// Ord is the item's per-(token, priority) arrival ordinal. Because the
// key is fixed at admission — not computed from queue state at dequeue
// time — a scheduler rebuilt from persisted items produces exactly the
// dequeue order the original would have produced for the remaining
// items, which is what lets faserve's kill/restart recovery keep its
// byte-identity guarantee under multi-tenant scheduling.
//
// One bit is added to the key after admission, exactly once: Dequeue
// marks the item Started, and a started item re-entering the queue
// (lease failover, a drain park) sorts before everything that has never
// started, regardless of class. Execution is non-preemptive — in an
// uninterrupted process a running job finishes before any queued one
// starts — so restart recovery can only reproduce the uninterrupted
// completion order if interrupted jobs resume first.
//
// Fair share is start-time fair queueing with integer arithmetic: a
// token with Shares=2 is charged half as much virtual time per job as a
// token with Shares=1, so its items interleave at twice the rate within
// a priority class. The comparison Ord_a/Shares_a < Ord_b/Shares_b is
// evaluated by cross-multiplication, so no floats enter the order.
//
// Priority classes are strict: every queued high item is eligible
// before any normal item, and normal before low. Starvation of the
// lower classes by one tenant is bounded by that tenant's MaxQueued and
// MaxRunning quotas, and fair share still interleaves tenants inside
// the class.
//
// The scheduler is a pure data structure: no goroutines, no clock, no
// locks. Callers (internal/serve) serialize access under their own
// mutex.
package sched

import (
	"fmt"
	"sort"
)

// Priority is a job's scheduling class. The zero value of its wire form
// ("") parses as Normal.
type Priority int

const (
	// High items dequeue before every Normal and Low item.
	High Priority = iota
	// Normal is the default class.
	Normal
	// Low items dequeue only when no higher class has eligible items.
	Low
)

// ParsePriority maps the wire form to a Priority; "" is Normal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "high":
		return High, nil
	case "", "normal":
		return Normal, nil
	case "low":
		return Low, nil
	}
	return Normal, fmt.Errorf(`sched: unknown priority %q (have: "low", "normal", "high")`, s)
}

// String returns the wire form.
func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Low:
		return "low"
	}
	return "normal"
}

// ErrOverQuota reports an admission refused by the token's MaxQueued
// quota; faserve renders it as 429 with a Retry-After hint.
type ErrOverQuota struct {
	Token     string
	Queued    int
	MaxQueued int
}

func (e *ErrOverQuota) Error() string {
	name := e.Token
	if name == "" {
		name = "default"
	}
	return fmt.Sprintf("sched: token %q is over quota (%d of %d queued jobs)", name, e.Queued, e.MaxQueued)
}

// Item is one schedulable job. Every field except Started is assigned at
// admission and immutable afterwards, so persisting an Item and Restoring
// it into a fresh scheduler reproduces its position exactly.
type Item struct {
	// ID names the job.
	ID string `json:"id"`
	// Token is the tenant the job belongs to ("" = the default tenant).
	Token string `json:"token,omitempty"`
	// Priority is the scheduling class.
	Priority Priority `json:"priority"`
	// Seq is the global arrival ordinal (1-based): the final tie-break
	// and the pagination order of the job index.
	Seq uint64 `json:"seq"`
	// Ord is the per-(token, priority) arrival ordinal (1-based): the
	// numerator of the fair-share key Ord/Shares.
	Ord uint64 `json:"ord"`
	// Shares is the token's weight, captured at admission so a later
	// quota-file change cannot reorder already-admitted items.
	Shares int `json:"shares"`
	// Started records that the item was dequeued at least once. A started
	// item returned to the queue resumes before every never-started item:
	// execution is non-preemptive, so this is the only order under which
	// a restart reproduces the uninterrupted completion sequence.
	Started bool `json:"started,omitempty"`
}

// before is the scheduler's total order: resumed (started) items first,
// then priority class, then the weighted fair-share key Ord/Shares
// (cross-multiplied to stay in integers), then global arrival order. Seq
// is unique, so the order is total and deterministic.
func (a Item) before(b Item) bool {
	if a.Started != b.Started {
		return a.Started
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	av, bv := a.Ord*uint64(b.Shares), b.Ord*uint64(a.Shares)
	if av != bv {
		return av < bv
	}
	return a.Seq < b.Seq
}

// tokenClass keys the per-(token, priority) ordinal counters.
type tokenClass struct {
	token    string
	priority Priority
}

// Scheduler holds the queued items and the per-token accounting. Not
// safe for concurrent use; callers serialize.
type Scheduler struct {
	cfg Config

	// queue is kept sorted by Item.before; Dequeue scans it front to
	// back for the first item whose token is under its MaxRunning cap.
	queue []Item

	// nextSeq and ords assign admission ordinals. They only grow — a
	// token's history (including completed jobs) is part of its fair
	// share, so a tenant cannot reset its position by resubmitting.
	nextSeq uint64
	ords    map[tokenClass]uint64

	queued  map[string]int // token → queued items
	running map[string]int // token → dequeued-but-not-done items
}

// New builds a scheduler over the quota configuration.
func New(cfg Config) *Scheduler {
	return &Scheduler{
		cfg:     cfg,
		ords:    make(map[tokenClass]uint64),
		queued:  make(map[string]int),
		running: make(map[string]int),
	}
}

// Admit assigns the item's scheduling key and enqueues it, or refuses
// with *ErrOverQuota when the token is at its MaxQueued cap. The
// returned Item is what the caller persists: Restore of the same value
// reproduces the same position.
func (s *Scheduler) Admit(id, token string, pri Priority) (Item, error) {
	q := s.cfg.Quota(token)
	if q.MaxQueued > 0 && s.queued[token] >= q.MaxQueued {
		return Item{}, &ErrOverQuota{Token: token, Queued: s.queued[token], MaxQueued: q.MaxQueued}
	}
	s.nextSeq++
	key := tokenClass{token, pri}
	s.ords[key]++
	it := Item{
		ID:       id,
		Token:    token,
		Priority: pri,
		Seq:      s.nextSeq,
		Ord:      s.ords[key],
		Shares:   q.Shares,
	}
	s.insert(it)
	return it, nil
}

// Restore re-enqueues a persisted item at boot, advancing the ordinal
// counters past it so post-restart admissions sort after it exactly as
// they would have in the uninterrupted process. Quotas are not
// re-checked: the item was admitted once. Shares is floored at 1 so a
// hand-edited manifest cannot zero the fair-share denominator.
func (s *Scheduler) Restore(it Item) {
	if it.Shares <= 0 {
		it.Shares = 1
	}
	s.NoteArrival(it)
	s.insert(it)
}

// NoteArrival advances the ordinal counters past a historical item
// without queueing it. Boot recovery calls it for every terminal job so
// the counters — and therefore the fair-share keys of everything
// admitted after the restart — match the uninterrupted process.
func (s *Scheduler) NoteArrival(it Item) {
	if it.Seq > s.nextSeq {
		s.nextSeq = it.Seq
	}
	key := tokenClass{it.Token, it.Priority}
	if it.Ord > s.ords[key] {
		s.ords[key] = it.Ord
	}
}

// insert places it into the sorted queue.
func (s *Scheduler) insert(it Item) {
	i := sort.Search(len(s.queue), func(i int) bool { return it.before(s.queue[i]) })
	s.queue = append(s.queue, Item{})
	copy(s.queue[i+1:], s.queue[i:])
	s.queue[i] = it
	s.queued[it.Token]++
}

// Dequeue returns the first queued item whose token is under its
// MaxRunning cap and charges the token a running slot. ok is false when
// nothing is eligible (empty queue, or every queued token is at its
// running cap). Among eligible items the order is the pure admission
// order; MaxRunning eligibility is the only dequeue-time input.
func (s *Scheduler) Dequeue() (Item, bool) {
	for i, it := range s.queue {
		q := s.cfg.Quota(it.Token)
		if q.MaxRunning > 0 && s.running[it.Token] >= q.MaxRunning {
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.queued[it.Token]--
		s.running[it.Token]++
		it.Started = true
		return it, true
	}
	return Item{}, false
}

// Requeue returns a dequeued item to the queue — lease failover or a
// drain park. The Started mark it earned at dequeue puts it ahead of
// every never-started item: the job already won its slot once, and
// non-preemptive execution would have run it to completion.
func (s *Scheduler) Requeue(it Item) {
	it.Started = true
	s.decRunning(it.Token)
	s.insert(it)
}

// Done releases the running slot of a finished item (done, failed,
// cancelled or drifted).
func (s *Scheduler) Done(token string) {
	s.decRunning(token)
}

func (s *Scheduler) decRunning(token string) {
	if s.running[token] > 0 {
		s.running[token]--
	}
}

// Remove deletes a queued item by id (user cancellation before it
// started); it reports whether the item was queued.
func (s *Scheduler) Remove(id string) bool {
	for i, it := range s.queue {
		if it.ID == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.queued[it.Token]--
			return true
		}
	}
	return false
}

// Depth reports the total queued count.
func (s *Scheduler) Depth() int { return len(s.queue) }

// Items returns a copy of the queued items in dequeue order (ignoring
// MaxRunning gating, which is a dequeue-time concern).
func (s *Scheduler) Items() []Item {
	out := make([]Item, len(s.queue))
	copy(out, s.queue)
	return out
}

// DepthByPriority reports the queued count per priority class.
func (s *Scheduler) DepthByPriority() map[Priority]int {
	m := make(map[Priority]int, 3)
	for _, it := range s.queue {
		m[it.Priority]++
	}
	return m
}

// QueuedFor reports the queued count for one token (admission-quota
// accounting, surfaced for tests and metrics).
func (s *Scheduler) QueuedFor(token string) int { return s.queued[token] }

// RunningFor reports the running count for one token.
func (s *Scheduler) RunningFor(token string) int { return s.running[token] }
