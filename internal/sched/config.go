package sched

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// TenantQuota is one tenant's admission quota and fair-share weight.
// The zero value means unlimited admission with one share.
type TenantQuota struct {
	// Name identifies the tenant in job listings and quota errors; jobs
	// record it, never the token itself.
	Name string `json:"name"`
	// Token is the bearer credential that maps a request to this tenant.
	// On a token-gated server it also grants write scope, like the
	// global -token. It is never persisted outside the quotas file.
	Token string `json:"token"`
	// MaxQueued caps the tenant's queued-but-not-running jobs; a
	// submission past it is refused with 429 (0 = unlimited).
	MaxQueued int `json:"maxQueued,omitempty"`
	// MaxRunning caps the tenant's concurrently running jobs; jobs past
	// it stay queued and other tenants' jobs dequeue around them
	// (0 = unlimited).
	MaxRunning int `json:"maxRunning,omitempty"`
	// Shares is the tenant's fair-share weight within a priority class
	// (0 = 1). A tenant with twice the shares dequeues twice as often
	// when both are backlogged.
	Shares int `json:"shares,omitempty"`
}

// Config is the scheduler's quota table, the JSON form of the faserve
// -quotas file:
//
//	{
//	  "default": {"shares": 1},
//	  "tenants": [
//	    {"name": "alice", "token": "alice-secret", "maxQueued": 4, "maxRunning": 1, "shares": 2},
//	    {"name": "bob",   "token": "bob-secret",   "maxQueued": 8}
//	  ]
//	}
//
// Requests bearing a tenant's token are accounted against that tenant;
// everything else — the global -token, or unauthenticated requests on
// an open server — is the default tenant. The zero Config is a valid
// single-tenant table: unlimited, one share.
type Config struct {
	// Default governs requests that match no tenant token. Its Name and
	// Token fields are ignored.
	Default TenantQuota `json:"default"`
	// Tenants are the named tenants.
	Tenants []TenantQuota `json:"tenants,omitempty"`
}

// LoadConfig reads and validates a quotas file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("sched: quotas: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("sched: quotas %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("sched: quotas %s: %w", path, err)
	}
	return cfg, nil
}

// Validate rejects malformed quota tables: unnamed or credential-less
// tenants, duplicate names or tokens, negative limits.
func (c Config) Validate() error {
	names := make(map[string]bool, len(c.Tenants))
	tokens := make(map[string]bool, len(c.Tenants))
	for _, t := range c.Tenants {
		if t.Name == "" {
			return fmt.Errorf("tenant with empty name")
		}
		if t.Token == "" {
			return fmt.Errorf("tenant %q has no token", t.Name)
		}
		if names[t.Name] {
			return fmt.Errorf("duplicate tenant name %q", t.Name)
		}
		if tokens[t.Token] {
			return fmt.Errorf("tenant %q reuses another tenant's token", t.Name)
		}
		names[t.Name], tokens[t.Token] = true, true
		if err := t.validLimits(); err != nil {
			return fmt.Errorf("tenant %q: %w", t.Name, err)
		}
	}
	if err := c.Default.validLimits(); err != nil {
		return fmt.Errorf("default tenant: %w", err)
	}
	return nil
}

func (t TenantQuota) validLimits() error {
	if t.MaxQueued < 0 || t.MaxRunning < 0 || t.Shares < 0 {
		return fmt.Errorf("negative quota (maxQueued=%d maxRunning=%d shares=%d)", t.MaxQueued, t.MaxRunning, t.Shares)
	}
	return nil
}

// Quota resolves the effective quota for a tenant name: the named
// tenant's entry, or Default for everything else, with Shares
// normalized to at least 1 so the fair-share denominator is never zero.
func (c Config) Quota(name string) TenantQuota {
	q := c.Default
	if name != "" {
		for _, t := range c.Tenants {
			if t.Name == name {
				q = t
				break
			}
		}
	}
	if q.Shares <= 0 {
		q.Shares = 1
	}
	return q
}

// TenantNames lists the configured tenant names, in file order.
func (c Config) TenantNames() []string {
	names := make([]string, 0, len(c.Tenants))
	for _, t := range c.Tenants {
		names = append(names, t.Name)
	}
	return names
}

// ParseEvery parses a crontab schedule of the form "@every DURATION"
// (e.g. "@every 1h30m") and returns the period. It lives here because
// the schedule is part of the platform's admission surface: faserve
// validates it with the same function the wire docs point at.
func ParseEvery(schedule string) (time.Duration, error) {
	const prefix = "@every "
	if len(schedule) <= len(prefix) || schedule[:len(prefix)] != prefix {
		return 0, fmt.Errorf(`sched: schedule %q is not of the form "@every DURATION"`, schedule)
	}
	d, err := time.ParseDuration(schedule[len(prefix):])
	if err != nil {
		return 0, fmt.Errorf("sched: schedule %q: %w", schedule, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("sched: schedule %q: period must be positive", schedule)
	}
	return d, nil
}
