package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"time"

	"failatomic/internal/detect"
	"failatomic/internal/replog"
)

// The server-side drift gate: when a detect job completes, its fresh
// classification is compared against the last stored done run of the same
// spec. A divergence finalizes the job in StateDrifted (exit-code
// ExitDrift) with its log and report stored like a done job's — the
// regression tripped, but the evidence is retrievable. The gate is the
// service-side twin of fareport -diff-against: instead of a checked-in
// golden, the golden is whatever this server last accepted for the spec.
//
// Only clean StateDone runs advance the index, so a drifted run never
// becomes the new baseline; repair jobs are exempt (their report already
// embeds its own verification).

// doneRun is one drift-gate baseline: the stored log of the most recent
// clean done run of a spec.
type doneRun struct {
	logSHA string
	at     time.Time
}

// driftKey canonicalizes a spec: two jobs drift-compare only when their
// full spec (app, kind, every campaign knob) encodes identically. The
// kind is normalized so "" and "detect" share a baseline, and Priority is
// stripped — it chooses when a job runs, not what it computes, so a
// high-priority rerun must compare against the normal-priority baseline.
// Crontab stays: each recurring spec owns its own baseline series, which
// is what chains successive firings into a longitudinal regression gate.
func driftKey(spec JobSpec) string {
	spec.Kind = spec.JobKind()
	spec.Priority = ""
	b, _ := json.Marshal(spec)
	return string(b)
}

// noteLastDone advances the spec's baseline, keeping the newest.
func (s *Server) noteLastDone(spec JobSpec, logSHA string, at time.Time) {
	key := driftKey(spec)
	s.mu.Lock()
	if prev, ok := s.lastDone[key]; !ok || !at.Before(prev.at) {
		s.lastDone[key] = doneRun{logSHA: logSHA, at: at}
	}
	s.mu.Unlock()
}

// driftAgainstLast compares the fresh classification with the spec's
// baseline run, returning the divergences (nil when there is no baseline,
// the baseline's log is gone from the store, or nothing drifted).
func (s *Server) driftAgainstLast(spec JobSpec, fresh *detect.Classification) []string {
	s.mu.Lock()
	prev, ok := s.lastDone[driftKey(spec)]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	data, err := s.store.Get(prev.logSHA)
	if err != nil {
		// The baseline was GC'd out from under the index; the next clean
		// run re-establishes it.
		return nil
	}
	prevRes, err := replog.Read(bytes.NewReader(data))
	if err != nil {
		return nil
	}
	return detect.Drift(fresh, detect.Classify(prevRes, detect.Options{}))
}

// classifyLog derives a classification from a stored or uploaded replog,
// or nil if the log is unreadable.
func classifyLog(log []byte) *detect.Classification {
	res, err := replog.Read(bytes.NewReader(log))
	if err != nil {
		return nil
	}
	return detect.Classify(res, detect.Options{})
}

// driftMessage folds the divergence lines into the job's error field.
func driftMessage(lines []string) string {
	return "classification drifted from the last stored run of this spec: " + strings.Join(lines, "; ")
}
