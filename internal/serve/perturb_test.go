// Tests for multi-strategy (perturbed) jobs through the service: the
// strategy coordinate must survive admission, journaling, chunk shipping
// and rendering without costing byte-identity with local runs.
package serve_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"failatomic/internal/serve"
)

// perturbSpec is a multi-strategy adaptorChain campaign exercising every
// strategy family (site-relative, pair, epilogue, oblivious).
func perturbSpec() serve.JobSpec {
	return serve.JobSpec{App: "adaptorChain", Perturb: "nth=2,burst=32,defer,oblivious"}
}

// TestPerturbedJobByteIdentity: a multi-strategy campaign executed by the
// in-process worker pool stores the same report and log bytes a local
// fadetect run with the same -perturb options produces.
func TestPerturbedJobByteIdentity(t *testing.T) {
	_, c, _ := bootServer(t, t.TempDir(), 2, 16)
	ctx := context.Background()

	id, err := c.Submit(ctx, perturbSpec())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone {
		t.Fatalf("job = %+v, want done", st)
	}

	wantLog, wantReport, wantCode := localReference(t, perturbSpec())
	if st.ExitCode != wantCode {
		t.Fatalf("exit code %d, want %d", st.ExitCode, wantCode)
	}
	if !strings.Contains(wantReport, "perturbation models:") {
		t.Fatal("reference report carries no strategy section")
	}
	gotReport, err := c.Report(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotReport) != wantReport {
		t.Errorf("stored report differs from local render:\n--- server\n%s\n--- local\n%s", gotReport, wantReport)
	}
	gotLog, err := c.Log(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotLog) != string(wantLog) {
		t.Error("stored log differs from local replog.Write output")
	}
}

// TestPerturbAdmissionValidation: a spec whose Perturb fails the -perturb
// grammar is rejected at submit time, before a worker touches it.
func TestPerturbAdmissionValidation(t *testing.T) {
	_, c, _ := bootServer(t, t.TempDir(), 1, 4)
	ctx := context.Background()
	for _, bad := range []string{"warp", "nth=0", "nth,nth", "defer=2"} {
		_, err := c.Submit(ctx, serve.JobSpec{App: "HashedSet", Perturb: bad})
		if err == nil {
			t.Errorf("Perturb=%q admitted, want rejection", bad)
		}
	}
}

// TestRemoteWorkerRunsPerturbedJob: the distributed path — lease, execute,
// ship chunks keyed by strategy coordinate — stays byte-identical to a
// local multi-strategy run.
func TestRemoteWorkerRunsPerturbedJob(t *testing.T) {
	_, c, url, _ := bootConfigured(t, serve.Config{
		DataDir:         t.TempDir(),
		Workers:         1,
		QueueDepth:      16,
		CoordinatorOnly: true,
		WorkerPoll:      5 * time.Millisecond,
	})
	startWorker(t, url, "w1")
	ctx := context.Background()

	id, err := c.Submit(ctx, perturbSpec())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone {
		t.Fatalf("remote job: %+v", st)
	}

	wantLog, wantReport, wantCode := localReference(t, perturbSpec())
	if st.ExitCode != wantCode {
		t.Errorf("exit code %d, want %d", st.ExitCode, wantCode)
	}
	gotReport, err := c.Report(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotReport) != wantReport {
		t.Errorf("remote report differs from local render:\n--- server\n%s\n--- local\n%s", gotReport, wantReport)
	}
	gotLog, err := c.Log(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotLog) != string(wantLog) {
		t.Error("remote log differs from local replog.Write output")
	}
}
