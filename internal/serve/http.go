package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"failatomic/internal/cli"
	"failatomic/internal/sched"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs           submit a campaign job (202; 429 when full
//	                          or over the tenant's quota, with a
//	                          drain-rate-derived Retry-After)
//	GET    /v1/jobs           paginated, filterable job index
//	                          (?token=&kind=&state=&crontab=&limit=&cursor=)
//	GET    /v1/jobs/{id}      job status (state, progress, exit code)
//	GET    /v1/jobs/{id}/events   SSE progress stream while the job lives
//	GET    /v1/jobs/{id}/log      final injection log (replog JSON lines)
//	GET    /v1/jobs/{id}/report   rendered classification report
//	DELETE /v1/jobs/{id}      cancel a queued or running job
//	POST   /v1/crontabs       install a recurring spec (@every DURATION)
//	GET    /v1/crontabs       list installed crontabs
//	DELETE /v1/crontabs/{id}  uninstall a crontab
//	GET    /healthz           liveness (never authed)
//	GET    /metrics           expvar-style counters
//
// plus the dispatch protocol faworker processes speak (see
// internal/dispatch):
//
//	POST /v1/workers/register
//	POST /v1/workers/{worker}/lease
//	POST /v1/workers/{worker}/leases/{lease}/heartbeat
//	POST /v1/workers/{worker}/leases/{lease}/runs
//	POST /v1/workers/{worker}/leases/{lease}/complete
//
// With tokens configured (Config.AuthToken/ReadToken), mutating endpoints
// — submission, cancellation and every worker RPC — require the write
// token; the read endpoints accept either token.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.requireAuth(scopeWrite, s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.requireAuth(scopeRead, s.handleList))
	mux.HandleFunc("POST /v1/crontabs", s.requireAuth(scopeWrite, s.handleCrontabCreate))
	mux.HandleFunc("GET /v1/crontabs", s.requireAuth(scopeRead, s.handleCrontabList))
	mux.HandleFunc("DELETE /v1/crontabs/{id}", s.requireAuth(scopeWrite, s.handleCrontabDelete))
	mux.HandleFunc("GET /v1/jobs/{id}", s.requireAuth(scopeRead, s.handleStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.requireAuth(scopeRead, s.handleEvents))
	mux.HandleFunc("GET /v1/jobs/{id}/log", s.requireAuth(scopeRead, s.handleLog))
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.requireAuth(scopeRead, s.handleReport))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.requireAuth(scopeWrite, s.handleCancel))
	mux.HandleFunc("POST /v1/workers/register", s.requireAuth(scopeWrite, s.coord.HandleRegister))
	mux.HandleFunc("POST /v1/workers/{worker}/lease", s.requireAuth(scopeWrite, s.coord.HandleLease))
	mux.HandleFunc("POST /v1/workers/{worker}/leases/{lease}/heartbeat", s.requireAuth(scopeWrite, s.coord.HandleHeartbeat))
	mux.HandleFunc("POST /v1/workers/{worker}/leases/{lease}/runs", s.requireAuth(scopeWrite, s.coord.HandleShip))
	mux.HandleFunc("POST /v1/workers/{worker}/leases/{lease}/complete", s.requireAuth(scopeWrite, s.coord.HandleComplete))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.requireAuth(scopeRead, s.handleMetrics))
	return mux
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	j, err := s.submit(spec, s.tenantOf(r))
	var overQuota *sched.ErrOverQuota
	switch {
	case errors.Is(err, ErrQueueFull), errors.As(err, &overQuota):
		// Both refusals are back-pressure; the Retry-After hint is derived
		// from the observed queue drain rate, not a constant.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterHint()))
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusAccepted, j.status())
	}
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookupJob(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleEvents streams the job's full event history and then follows it
// live, SSE-framed, until the terminal event, the client disconnecting,
// or a server drain.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	cursor := 0
	for {
		batch, pulse, done := j.events.from(cursor)
		for _, e := range batch {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data); err != nil {
				return
			}
		}
		if len(batch) > 0 {
			fl.Flush()
			cursor += len(batch)
		}
		if done {
			return
		}
		select {
		case <-pulse:
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		}
	}
}

// result serves a stored artifact of a done job.
func (s *Server) result(w http.ResponseWriter, r *http.Request, contentType string, pick func(JobStatus) string) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	st := j.status()
	// Drifted jobs store their log and report too — the divergence is the
	// finding, and the artifacts are its evidence.
	if st.State != StateDone && st.State != StateDrifted {
		msg := fmt.Sprintf("job is %s, results exist only for states %q and %q", st.State, StateDone, StateDrifted)
		if st.Error != "" {
			msg += ": " + st.Error
		}
		writeJSON(w, http.StatusConflict, apiError{Error: msg})
		return
	}
	data, err := s.store.Get(pick(st))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Write(data)
}

func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	s.result(w, r, "application/x-ndjson", func(st JobStatus) string { return st.Log })
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.result(w, r, "text/plain; charset=utf-8", func(st JobStatus) string { return st.Report })
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	// A job still in the queue is cancelled synchronously; one leased to a
	// remote worker has its lease revoked and finalizes here; one running
	// in-process is cancelled through its context and finalizes on the
	// worker goroutine.
	if s.removePending(j) {
		j.mu.Lock()
		j.userCancelled = true
		j.mu.Unlock()
		s.metrics.jobsCancelled.Add(1)
		s.finalizeBestEffort(j, StateCancelled, cli.ExitFailure, "cancelled while queued")
	} else if !s.cancelRemote(j) {
		// requestCancel marks the job user-cancelled even when no context
		// exists yet, which closes the race with a concurrent claim: both
		// the in-process runner and the remote claim re-check the flag
		// right after taking the job.
		j.requestCancel()
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	started := s.started
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": started, "draining": draining})
}

// handleMetrics renders the counters as a flat JSON object with sorted
// keys, expvar-style.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot(s.queueGauges(), s.coord.Stats())
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, "{")
	for i, k := range keys {
		comma := ","
		if i == len(keys)-1 {
			comma = ""
		}
		fmt.Fprintf(w, "  %q: %d%s\n", k, snap[k], comma)
	}
	fmt.Fprintln(w, "}")
}
