package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// The job index: GET /v1/jobs lists every job the server knows, newest
// admission last, filterable by tenant token name, kind, state and
// crontab, paginated by a Seq cursor. The identity slice of the index
// (seq, id, token, kind, priority, crontab) is mirrored to an on-disk
// index.jsonl — appended on admission, rewritten from the recovered jobs
// at boot — so operators and offline tooling can walk a server's
// admission history without parsing every jobs/<id>/spec.json, and a
// half-written tail from a crash is healed by the boot rewrite.

// indexEntry is one line of index.jsonl: the immutable identity of one
// admitted job. Live state intentionally stays out — it would make the
// file a write-per-transition hot spot; state lives in done.json and the
// API.
type indexEntry struct {
	Seq      uint64 `json:"seq"`
	ID       string `json:"id"`
	Token    string `json:"token,omitempty"`
	Kind     string `json:"kind"`
	Priority string `json:"priority"`
	Crontab  string `json:"crontab,omitempty"`
}

func (s *Server) indexPath() string { return filepath.Join(s.cfg.DataDir, "index.jsonl") }

func entryOf(j *job) indexEntry {
	return indexEntry{
		Seq:      j.item.Seq,
		ID:       j.id,
		Token:    j.item.Token,
		Kind:     j.spec.JobKind(),
		Priority: j.item.Priority.String(),
		Crontab:  j.spec.Crontab,
	}
}

// appendIndexLocked appends the job's identity line to index.jsonl.
// Called under s.mu from submit. Best-effort: the index is derived data
// (the boot rewrite reconstructs it from the spec manifests), so an
// append failure must not fail the admission that already persisted its
// spec.
func (s *Server) appendIndexLocked(j *job) {
	f, err := os.OpenFile(s.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	data, err := json.Marshal(entryOf(j))
	if err != nil {
		return
	}
	f.Write(append(data, '\n'))
}

// rewriteIndex rebuilds index.jsonl from the recovered jobs at boot, in
// Seq order — healing torn tails and folding in manifests written by
// older servers that predate the index.
func (s *Server) rewriteIndex() error {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].item.Seq != jobs[k].item.Seq {
			return jobs[i].item.Seq < jobs[k].item.Seq
		}
		return jobs[i].id < jobs[k].id
	})
	tmp, err := os.CreateTemp(s.cfg.DataDir, ".index-*")
	if err != nil {
		return fmt.Errorf("serve: index: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, j := range jobs {
		data, err := json.Marshal(entryOf(j))
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("serve: index: %w", err)
		}
		w.Write(append(data, '\n'))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: index: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.indexPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: index: %w", err)
	}
	return nil
}

// List pagination bounds.
const (
	defaultListLimit = 50
	maxListLimit     = 500
)

// JobList is the wire form of GET /v1/jobs: one page of matching jobs in
// admission (Seq) order, plus the cursor for the next page ("" on the
// last page).
type JobList struct {
	Jobs       []JobStatus `json:"jobs"`
	NextCursor string      `json:"nextCursor,omitempty"`
}

// ListQuery are the GET /v1/jobs filters. Zero values mean "no filter".
type ListQuery struct {
	// Token filters by tenant name (not the credential).
	Token string
	// Kind filters by job kind (detect, repair, concur).
	Kind string
	// State filters by job state (queued, running, done, ...).
	State string
	// Crontab filters to the firings of one recurring spec.
	Crontab string
	// Limit caps the page size (0 = defaultListLimit, max maxListLimit).
	Limit int
	// Cursor resumes after the page that returned it.
	Cursor string
}

// listJobs evaluates one ListQuery against the in-memory job set.
func (s *Server) listJobs(q ListQuery) (JobList, error) {
	limit := q.Limit
	if limit <= 0 {
		limit = defaultListLimit
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}
	var cursor uint64
	if q.Cursor != "" {
		c, err := strconv.ParseUint(q.Cursor, 10, 64)
		if err != nil {
			return JobList{}, fmt.Errorf("serve: bad cursor %q", q.Cursor)
		}
		cursor = c
	}
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	statuses := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, j.status())
	}
	sort.Slice(statuses, func(i, k int) bool {
		if statuses[i].Seq != statuses[k].Seq {
			return statuses[i].Seq < statuses[k].Seq
		}
		return statuses[i].ID < statuses[k].ID
	})
	out := JobList{Jobs: []JobStatus{}}
	for _, st := range statuses {
		if q.Cursor != "" && st.Seq <= cursor {
			continue
		}
		if q.Token != "" && st.Token != q.Token {
			continue
		}
		if q.Kind != "" && st.Spec.JobKind() != q.Kind {
			continue
		}
		if q.State != "" && st.State != q.State {
			continue
		}
		if q.Crontab != "" && st.Spec.Crontab != q.Crontab {
			continue
		}
		if len(out.Jobs) == limit {
			// One past the page: there is a next page, anchored at the
			// last returned Seq.
			out.NextCursor = strconv.FormatUint(out.Jobs[limit-1].Seq, 10)
			return out, nil
		}
		out.Jobs = append(out.Jobs, st)
	}
	return out, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query()
	limit := 0
	if lv := v.Get("limit"); lv != "" {
		n, err := strconv.Atoi(lv)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad limit %q", lv)})
			return
		}
		limit = n
	}
	list, err := s.listJobs(ListQuery{
		Token:   v.Get("token"),
		Kind:    v.Get("kind"),
		State:   v.Get("state"),
		Crontab: v.Get("crontab"),
		Limit:   limit,
		Cursor:  v.Get("cursor"),
	})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, list)
}
