package serve

import (
	"sync/atomic"
	"time"

	"failatomic/internal/dispatch"
	"failatomic/internal/sched"
)

// metrics are the expvar-style counters behind GET /metrics: monotonic
// _total counters plus live gauges (jobs_running, the queue_depth family
// — computed at render time from the scheduler — and crontabs_active).
type metrics struct {
	jobsQueued        atomic.Int64 // jobs admitted (incl. boot-resumed)
	jobsRejected      atomic.Int64 // 429s from a full queue
	quotaRejections   atomic.Int64 // 429s from a tenant's MaxQueued quota
	jobsRunning       atomic.Int64 // gauge
	jobsDone          atomic.Int64
	jobsFailed        atomic.Int64
	jobsCancelled     atomic.Int64
	jobsDrifted       atomic.Int64 // completed jobs the drift gate tripped on
	jobsParked        atomic.Int64 // running jobs returned to the queue by a drain
	jobsConcur        atomic.Int64 // concur jobs admitted (incl. boot-resumed)
	runsExecuted      atomic.Int64 // freshly executed injector runs
	runsSpliced       atomic.Int64 // runs recovered from journals at resume
	pointsQuarantined atomic.Int64
	crontabFired      atomic.Int64 // jobs submitted by crontab firings
	crontabSkipped    atomic.Int64 // firings refused by admission (full/quota)
	queueWaitMax      atomic.Int64 // longest observed queue wait, nanoseconds

	// Fingerprint-cache effectiveness, summed over every campaign session
	// of in-process detect and repair jobs (zero under capture or
	// fingerprint-nocache snapshots).
	snapshotCacheHits   atomic.Int64
	snapshotCacheMisses atomic.Int64
	snapshotCacheBytes  atomic.Int64
}

// noteSnapshotCache folds one campaign's fingerprint-cache totals in.
func (m *metrics) noteSnapshotCache(hits, misses, bytes int64) {
	m.snapshotCacheHits.Add(hits)
	m.snapshotCacheMisses.Add(misses)
	m.snapshotCacheBytes.Add(bytes)
}

// noteQueueWait folds one observed admission→dequeue latency into the
// queue_wait_seconds_max high-water mark.
func (m *metrics) noteQueueWait(d time.Duration) {
	for {
		cur := m.queueWaitMax.Load()
		if int64(d) <= cur || m.queueWaitMax.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// queueGauges are the queue-shaped gauges the server (which owns the
// scheduler) supplies at render time.
type queueGauges struct {
	depth      int
	byKind     map[string]int
	byPriority map[sched.Priority]int
	crontabs   int
}

// snapshot renders the counters as a flat name→value map; g is supplied
// by the server and ds by the dispatch coordinator (which owns the
// worker fleet and its leases).
func (m *metrics) snapshot(g queueGauges, ds dispatch.Stats) map[string]int64 {
	return map[string]int64{
		"jobs_queued_total":        m.jobsQueued.Load(),
		"jobs_rejected_total":      m.jobsRejected.Load(),
		"quota_rejections_total":   m.quotaRejections.Load(),
		"jobs_running":             m.jobsRunning.Load(),
		"jobs_done_total":          m.jobsDone.Load(),
		"jobs_failed_total":        m.jobsFailed.Load(),
		"jobs_cancelled_total":     m.jobsCancelled.Load(),
		"jobs_drifted_total":       m.jobsDrifted.Load(),
		"jobs_parked_total":        m.jobsParked.Load(),
		"runs_executed_total":      m.runsExecuted.Load(),
		"runs_spliced_total":       m.runsSpliced.Load(),
		"points_quarantined_total": m.pointsQuarantined.Load(),
		"jobs_concur_total":        m.jobsConcur.Load(),
		"queue_depth":              int64(g.depth),
		"queue_depth_detect":       int64(g.byKind[KindDetect]),
		"queue_depth_repair":       int64(g.byKind[KindRepair]),
		"queue_depth_concur":       int64(g.byKind[KindConcur]),
		"queue_depth_high":         int64(g.byPriority[sched.High]),
		"queue_depth_normal":       int64(g.byPriority[sched.Normal]),
		"queue_depth_low":          int64(g.byPriority[sched.Low]),
		"queue_wait_seconds_max":   int64(time.Duration(m.queueWaitMax.Load()).Seconds()),
		"crontabs_active":          int64(g.crontabs),
		"crontab_fired_total":      m.crontabFired.Load(),
		"crontab_skipped_total":    m.crontabSkipped.Load(),

		// Fingerprint-cache effectiveness of in-process campaign jobs.
		"snapshot_cache_hits_total":   m.snapshotCacheHits.Load(),
		"snapshot_cache_misses_total": m.snapshotCacheMisses.Load(),
		"snapshot_cache_bytes":        m.snapshotCacheBytes.Load(),

		// Dispatch: the distributed-execution slice.
		"workers_registered_total": ds.WorkersRegisteredTotal,
		"workers_live":             ds.WorkersLive,
		"leases_held":              ds.LeasesHeld,
		"lease_expirations_total":  ds.LeaseExpirationsTotal,
		"runs_shipped_total":       ds.RunsShippedTotal,
		"jobs_failed_over_total":   ds.JobsFailedOverTotal,
	}
}
