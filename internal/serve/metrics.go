package serve

import (
	"sync/atomic"

	"failatomic/internal/dispatch"
)

// metrics are the expvar-style counters behind GET /metrics: monotonic
// _total counters plus two live gauges (jobs_running, queue_depth — the
// latter computed at render time from the pending queue).
type metrics struct {
	jobsQueued        atomic.Int64 // jobs admitted (incl. boot-resumed)
	jobsRejected      atomic.Int64 // 429s from a full queue
	jobsRunning       atomic.Int64 // gauge
	jobsDone          atomic.Int64
	jobsFailed        atomic.Int64
	jobsCancelled     atomic.Int64
	jobsDrifted       atomic.Int64 // completed jobs the drift gate tripped on
	jobsParked        atomic.Int64 // running jobs returned to the queue by a drain
	jobsConcur        atomic.Int64 // concur jobs admitted (incl. boot-resumed)
	runsExecuted      atomic.Int64 // freshly executed injector runs
	runsSpliced       atomic.Int64 // runs recovered from journals at resume
	pointsQuarantined atomic.Int64
}

// snapshot renders the counters as a flat name→value map; queueDepth and
// its per-kind breakdown are supplied by the server (which owns the
// pending queue) and ds by the dispatch coordinator (which owns the
// worker fleet and its leases).
func (m *metrics) snapshot(queueDepth int, byKind map[string]int, ds dispatch.Stats) map[string]int64 {
	return map[string]int64{
		"jobs_queued_total":        m.jobsQueued.Load(),
		"jobs_rejected_total":      m.jobsRejected.Load(),
		"jobs_running":             m.jobsRunning.Load(),
		"jobs_done_total":          m.jobsDone.Load(),
		"jobs_failed_total":        m.jobsFailed.Load(),
		"jobs_cancelled_total":     m.jobsCancelled.Load(),
		"jobs_drifted_total":       m.jobsDrifted.Load(),
		"jobs_parked_total":        m.jobsParked.Load(),
		"runs_executed_total":      m.runsExecuted.Load(),
		"runs_spliced_total":       m.runsSpliced.Load(),
		"points_quarantined_total": m.pointsQuarantined.Load(),
		"jobs_concur_total":        m.jobsConcur.Load(),
		"queue_depth":              int64(queueDepth),
		"queue_depth_detect":       int64(byKind[KindDetect]),
		"queue_depth_repair":       int64(byKind[KindRepair]),
		"queue_depth_concur":       int64(byKind[KindConcur]),

		// Dispatch: the distributed-execution slice.
		"workers_registered_total": ds.WorkersRegisteredTotal,
		"workers_live":             ds.WorkersLive,
		"leases_held":              ds.LeasesHeld,
		"lease_expirations_total":  ds.LeaseExpirationsTotal,
		"runs_shipped_total":       ds.RunsShippedTotal,
		"jobs_failed_over_total":   ds.JobsFailedOverTotal,
	}
}
