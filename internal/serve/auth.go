package serve

import (
	"crypto/subtle"
	"net/http"
	"strings"
)

// Endpoint scopes. Write covers every mutating endpoint — job submission
// and cancellation plus all worker RPCs; read covers status, events, log,
// report and metrics. /healthz stays open so load balancers and boot
// scripts can probe an authed server.
type scope int

const (
	scopeRead scope = iota
	scopeWrite
)

// requireAuth wraps h with the bearer-token check for sc. With no tokens
// configured the server is open (the pre-auth behavior, for localhost
// use). Otherwise: the write token grants everything, a quota-table
// tenant token grants everything for that tenant (a tenant exists to
// submit jobs), the read-only token grants read scope only (403 on a
// write), and anything else — including no token at all — is 401.
func (s *Server) requireAuth(sc scope, h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.AuthToken == "" && s.cfg.ReadToken == "" {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		tok := bearerToken(r)
		switch {
		case tok == "":
			w.Header().Set("WWW-Authenticate", `Bearer realm="faserve"`)
			writeJSON(w, http.StatusUnauthorized, apiError{Error: "missing bearer token"})
		case tokenMatches(tok, s.cfg.AuthToken) || s.isTenantToken(tok):
			h(w, r)
		case tokenMatches(tok, s.cfg.ReadToken):
			if sc == scopeWrite {
				writeJSON(w, http.StatusForbidden, apiError{Error: "read-only token cannot call a mutating endpoint"})
				return
			}
			h(w, r)
		default:
			w.Header().Set("WWW-Authenticate", `Bearer realm="faserve"`)
			writeJSON(w, http.StatusUnauthorized, apiError{Error: "unrecognized token"})
		}
	}
}

// isTenantToken reports whether tok is some quota-table tenant's
// credential. Every comparison is constant-time; the scan length leaks
// only the (public) size of the quota table.
func (s *Server) isTenantToken(tok string) bool {
	found := false
	for _, t := range s.cfg.Quotas.Tenants {
		if tokenMatches(tok, t.Token) {
			found = true
		}
	}
	return found
}

// tenantOf resolves the request's quota-table tenant name: the tenant
// whose token the request bears, or "" (the default tenant) for the
// global tokens, unauthenticated requests on an open server, and
// everything else. Jobs record this name, never the credential.
func (s *Server) tenantOf(r *http.Request) string {
	tok := bearerToken(r)
	if tok == "" {
		return ""
	}
	name := ""
	for _, t := range s.cfg.Quotas.Tenants {
		if tokenMatches(tok, t.Token) {
			name = t.Name
		}
	}
	return name
}

// bearerToken extracts the RFC 6750 bearer credential, or "".
func bearerToken(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
		return auth[len(prefix):]
	}
	return ""
}

// tokenMatches compares in constant time; an unconfigured (empty) token
// never matches.
func tokenMatches(got, want string) bool {
	return want != "" && subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1
}
