// Tests for the repair job kind and the server-side drift gate.
package serve_test

import (
	"context"
	"io"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"failatomic/internal/apps"
	"failatomic/internal/cli"
	"failatomic/internal/harness"
	"failatomic/internal/repair"
	"failatomic/internal/replog"
	"failatomic/internal/serve"
	"failatomic/internal/serve/store"
)

// TestRepairJobEndToEnd runs the repair workflow as a faserve job and
// requires its stored report and log to be byte-identical to the same
// workflow run locally — the server renders through repair.Report.Render
// and stores the phase-1 replog, exactly like farepair does.
func TestRepairJobEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs child Go programs")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	_, c, _ := bootServer(t, t.TempDir(), 2, 16)
	ctx := context.Background()

	spec := serve.JobSpec{App: "LinkedList", Kind: serve.KindRepair}
	id, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone || st.ExitCode != cli.ExitOK {
		t.Fatalf("repair job = %+v, want done/0", st)
	}

	rep, err := repair.Run(ctx, repair.Config{App: spec.App, Options: spec.Options()})
	if err != nil {
		t.Fatal(err)
	}
	gotReport, err := c.Report(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotReport) != rep.Render() {
		t.Errorf("stored repair report differs from local render:\n--- server\n%s\n--- local\n%s", gotReport, rep.Render())
	}
	var wantLog strings.Builder
	if err := replog.Write(&wantLog, rep.Campaign); err != nil {
		t.Fatal(err)
	}
	gotLog, err := c.Log(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotLog) != wantLog.String() {
		t.Error("stored phase-1 log differs from local replog.Write output")
	}
}

// TestRepairJobValidation pins the admission rules for the kind field.
func TestRepairJobValidation(t *testing.T) {
	_, c, _ := bootServer(t, t.TempDir(), 1, 16)
	ctx := context.Background()

	if _, err := c.Submit(ctx, serve.JobSpec{App: "RBMap", Kind: serve.KindRepair}); err == nil ||
		!strings.Contains(err.Error(), "no repair source tree") {
		t.Fatalf("repair of tree-less app = %v", err)
	}
	if _, err := c.Submit(ctx, serve.JobSpec{App: "LinkedList", Kind: "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "unknown job kind") {
		t.Fatalf("bogus kind = %v", err)
	}
}

// TestDriftGate pre-populates the data directory with a terminal done job
// whose stored log classifies differently (it was run with §4.3
// exception-free hints, which the spec does not encode), then submits the
// same spec fresh: the completed campaign must finalize drifted with
// cli.ExitDrift, keep its artifacts retrievable, leave the baseline
// unadvanced, and count in jobs_drifted_total. A spec with no baseline
// completes done, and a repeat of it matches its own baseline.
func TestDriftGate(t *testing.T) {
	dataDir := t.TempDir()
	ctx := context.Background()

	// The doctored baseline: same app, same spec key, different runs.
	app, ok := apps.ByName("LinkedList")
	if !ok {
		t.Fatal("LinkedList application missing")
	}
	spec := serve.JobSpec{App: "LinkedList"}
	hintedOpts := spec.Options()
	hintedOpts.ExceptionFree = map[string]bool{
		"LinkedList.checkIndex":          true,
		"LinkedList.checkIndexInclusive": true,
	}
	res, err := harness.RunApp(ctx, app, hintedOpts)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf strings.Builder
	if err := replog.Write(&logBuf, res.Result); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(filepath.Join(dataDir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	sha, err := st.Put([]byte(logBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	jobDir := filepath.Join(dataDir, "jobs", "j0000000000000001")
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	specJSON := `{"id":"j0000000000000001","spec":{"app":"LinkedList"}}`
	doneJSON := `{"id":"j0000000000000001","spec":{"app":"LinkedList"},"state":"done","exitCode":0,"log":"` +
		sha + `","completedAt":"2026-01-01T00:00:00Z"}`
	if err := os.WriteFile(filepath.Join(jobDir, "spec.json"), []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, "done.json"), []byte(doneJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, c, _ := bootServer(t, dataDir, 2, 16)

	// Fresh run of the baselined spec: the gate must trip.
	id, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != serve.StateDrifted || got.ExitCode != cli.ExitDrift {
		t.Fatalf("job = %+v, want drifted/%d", got, cli.ExitDrift)
	}
	if !strings.Contains(got.Error, "drifted") {
		t.Errorf("drift error = %q", got.Error)
	}
	if report, err := c.Report(ctx, id); err != nil || len(report) == 0 {
		t.Errorf("drifted job report: %v (%d bytes)", err, len(report))
	}
	if log, err := c.Log(ctx, id); err != nil || len(log) == 0 {
		t.Errorf("drifted job log: %v (%d bytes)", err, len(log))
	}

	// A drifted run never becomes the baseline: the same spec drifts again.
	id2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got2, err := c.Wait(ctx, id2); err != nil || got2.State != serve.StateDrifted {
		t.Fatalf("second run = %+v, %v, want drifted again", got2, err)
	}

	// A different spec has no baseline: done, and a repeat matches the
	// baseline it just established.
	other := serve.JobSpec{App: "LinkedList", Repeats: 2}
	for i := 0; i < 2; i++ {
		oid, err := c.Submit(ctx, other)
		if err != nil {
			t.Fatal(err)
		}
		if ost, err := c.Wait(ctx, oid); err != nil || ost.State != serve.StateDone {
			t.Fatalf("run %d of unbaselined spec = %+v, %v, want done", i, ost, err)
		}
	}

	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	resp, err := hts.Client().Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), `"jobs_drifted_total": 2`) {
		t.Errorf("metrics missing jobs_drifted_total=2:\n%s", metrics)
	}
}

// TestDriftGateSurvivesRestart proves the baseline index is rebuilt at
// boot: a clean done run on one server instance becomes the baseline a
// second instance gates against.
func TestDriftGateSurvivesRestart(t *testing.T) {
	dataDir := t.TempDir()
	ctx := context.Background()
	spec := serve.JobSpec{App: "HashedSet"}

	_, c, shutdown := bootServer(t, dataDir, 1, 16)
	id, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(ctx, id); err != nil || st.State != serve.StateDone {
		t.Fatalf("first run = %+v, %v", st, err)
	}
	shutdown()

	_, c2, _ := bootServer(t, dataDir, 1, 16)
	id2, err := c2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic workload, same spec: the rebuilt baseline must match.
	if st, err := c2.Wait(ctx, id2); err != nil || st.State != serve.StateDone {
		t.Fatalf("post-restart run = %+v, %v, want done (no drift)", st, err)
	}
}
