// Tests for the regression-platform surface: tenant quotas, priority
// classes, the paginated job index, recurring crontab specs, and the
// headline determinism property — a killed and restarted server completes
// a mixed-tenant, mixed-priority backlog in exactly the order an
// uninterrupted server would, with byte-identical artifacts.
package serve_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"failatomic/internal/sched"
	"failatomic/internal/serve"
	"failatomic/internal/serve/client"
)

// bootServerCfg is bootServer for tests that need a full Config (quotas,
// tokens). It also returns the base URL so tests can mint per-tenant
// clients and hit /metrics directly.
func bootServerCfg(t *testing.T, cfg serve.Config) (*serve.Server, string, func()) {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Drain(dctx); err != nil {
				t.Errorf("drain: %v", err)
			}
			hts.Close()
		})
	}
	t.Cleanup(shutdown)
	return srv, hts.URL, shutdown
}

// metricsBody fetches /metrics from a booted server's URL.
func metricsBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestTenantQuotaRefusesAdmission(t *testing.T) {
	cfg := serve.Config{
		DataDir: t.TempDir(), Workers: 1, QueueDepth: 16,
		Quotas: sched.Config{Tenants: []sched.TenantQuota{
			{Name: "alice", Token: "alice-secret", MaxQueued: 1},
		}},
	}
	_, url, _ := bootServerCfg(t, cfg)
	ctx := context.Background()
	cd := client.New(url)
	ca := client.New(url, client.WithToken("alice-secret"))

	// Occupy the single worker so alice's jobs pile up queued.
	blocker, err := cd.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cd, blocker, serve.StateRunning)

	queued, err := ca.Submit(ctx, fastSpec())
	if err != nil {
		t.Fatalf("alice's first submission must fit her quota: %v", err)
	}
	if st, err := ca.Status(ctx, queued); err != nil || st.Token != "alice" {
		t.Fatalf("queued job records tenant %q (err %v), want alice", st.Token, err)
	}

	// One queued job is alice's whole quota; the next is refused with a
	// drain-rate Retry-After, like a full queue.
	_, err = ca.Submit(ctx, fastSpec())
	var qf *client.QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("over-quota submit returned %v, want QueueFullError", err)
	}
	if qf.RetryAfter <= 0 {
		t.Errorf("over-quota 429 missing Retry-After: %+v", qf)
	}

	// The quota is alice's alone: the default tenant still gets in.
	other, err := cd.Submit(ctx, fastSpec())
	if err != nil {
		t.Fatalf("default tenant blocked by alice's quota: %v", err)
	}

	if m := metricsBody(t, url); !strings.Contains(m, `"quota_rejections_total": 1`) {
		t.Errorf("metrics missing quota rejection:\n%s", m)
	}

	for _, id := range []string{blocker, queued, other} {
		if st, err := cd.Wait(ctx, id); err != nil || st.State != serve.StateDone {
			t.Fatalf("job %s after quota refusal: %+v, %v", id, st, err)
		}
	}
}

func TestPriorityClassesJumpTheQueue(t *testing.T) {
	_, c, _ := bootServer(t, t.TempDir(), 1, 16)
	ctx := context.Background()

	blocker, err := c.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, c, blocker, serve.StateRunning)

	// Low first, high second: arrival order must lose to class.
	low, err := c.Submit(ctx, serve.JobSpec{App: "HashedSet", Priority: "low"})
	if err != nil {
		t.Fatal(err)
	}
	high, err := c.Submit(ctx, serve.JobSpec{App: "HashedSet", Priority: "high"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{blocker, low, high} {
		if st, err := c.Wait(ctx, id); err != nil || st.State != serve.StateDone {
			t.Fatalf("job %s: %+v, %v", id, st, err)
		}
	}
	stLow, _ := c.Status(ctx, low)
	stHigh, _ := c.Status(ctx, high)
	if !stHigh.CompletedAt.Before(stLow.CompletedAt) {
		t.Errorf("high finished %v, low %v — high must dequeue first", stHigh.CompletedAt, stLow.CompletedAt)
	}
	if stHigh.Spec.Priority != "high" || stLow.Spec.Priority != "low" {
		t.Errorf("priorities not recorded: high=%q low=%q", stHigh.Spec.Priority, stLow.Spec.Priority)
	}
}

func TestJobIndexPaginationAndFilters(t *testing.T) {
	_, c, _ := bootServer(t, t.TempDir(), 2, 16)
	ctx := context.Background()

	const n = 5
	for i := 0; i < n; i++ {
		id, err := c.Submit(ctx, fastSpec())
		if err != nil {
			t.Fatal(err)
		}
		if st, err := c.Wait(ctx, id); err != nil || st.State != serve.StateDone {
			t.Fatalf("job %d: %+v, %v", i, st, err)
		}
	}

	// Page through with limit 2: 2+2+1, Seq strictly increasing, every
	// job seen exactly once.
	var seen []serve.JobStatus
	q := serve.ListQuery{Limit: 2}
	pages := 0
	for {
		page, err := c.List(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		seen = append(seen, page.Jobs...)
		if page.NextCursor == "" {
			break
		}
		if len(page.Jobs) != 2 {
			t.Fatalf("non-final page has %d jobs, want 2", len(page.Jobs))
		}
		q.Cursor = page.NextCursor
	}
	if pages != 3 || len(seen) != n {
		t.Fatalf("walked %d jobs over %d pages, want %d over 3", len(seen), pages, n)
	}
	if !sort.SliceIsSorted(seen, func(i, k int) bool { return seen[i].Seq < seen[k].Seq }) {
		t.Error("index pages are not in admission (Seq) order")
	}
	ids := make(map[string]bool)
	for _, st := range seen {
		ids[st.ID] = true
	}
	if len(ids) != n {
		t.Errorf("pagination returned %d distinct jobs, want %d", len(ids), n)
	}

	// Filters.
	if page, err := c.List(ctx, serve.ListQuery{State: serve.StateDone}); err != nil || len(page.Jobs) != n {
		t.Errorf("state=done filter: %d jobs (%v), want %d", len(page.Jobs), err, n)
	}
	if page, err := c.List(ctx, serve.ListQuery{State: serve.StateQueued}); err != nil || len(page.Jobs) != 0 {
		t.Errorf("state=queued filter: %d jobs (%v), want 0", len(page.Jobs), err)
	}
	if page, err := c.List(ctx, serve.ListQuery{Kind: serve.KindConcur}); err != nil || len(page.Jobs) != 0 {
		t.Errorf("kind=concur filter: %d jobs (%v), want 0", len(page.Jobs), err)
	}
	if _, err := c.List(ctx, serve.ListQuery{Cursor: "not-a-seq"}); err == nil {
		t.Error("bad cursor accepted")
	}
}

func TestCrontabFiresRepeatedlyAndSurvivesRestart(t *testing.T) {
	dataDir := t.TempDir()
	_, url, shutdown := bootServerCfg(t, serve.Config{DataDir: dataDir, Workers: 1, QueueDepth: 16})
	c := client.New(url)
	ctx := context.Background()

	ct, err := c.CrontabCreate(ctx, serve.CrontabSpec{Schedule: "@every 100ms", Spec: fastSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if ct.ID == "" || ct.Schedule != "@every 100ms" {
		t.Fatalf("created crontab %+v", ct)
	}
	// A client may not pre-claim a crontab identity.
	if _, err := c.CrontabCreate(ctx, serve.CrontabSpec{
		Schedule: "@every 1h", Spec: serve.JobSpec{App: "HashedSet", Crontab: "c00000000"},
	}); err == nil {
		t.Error("spec with a pre-set crontab id accepted")
	}

	// Wait for at least two completed firings.
	var firings []serve.JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		page, err := c.List(ctx, serve.ListQuery{Crontab: ct.ID, State: serve.StateDone})
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Jobs) >= 2 {
			firings = page.Jobs
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(firings) < 2 {
		t.Fatal("crontab produced fewer than 2 completed firings in 30s")
	}
	if err := c.CrontabDelete(ctx, ct.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.CrontabDelete(ctx, ct.ID); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("second delete = %v, want 404", err)
	}

	// Every firing is stamped with the crontab id — the drift gate folds
	// it into the spec key, chaining the firings into one longitudinal
	// series — and consecutive firings are byte-identical (StateDone, not
	// drifted, proves the gate compared and passed them).
	for _, st := range firings[:2] {
		if st.Spec.Crontab != ct.ID {
			t.Errorf("firing %s stamped %q, want %q", st.ID, st.Spec.Crontab, ct.ID)
		}
	}
	rep0, err := c.Report(ctx, firings[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := c.Report(ctx, firings[1].ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep0) != string(rep1) {
		t.Error("consecutive firings of one crontab are not byte-identical")
	}

	if m := metricsBody(t, url); !strings.Contains(m, `"crontabs_active": 1`) &&
		!strings.Contains(m, `"crontab_fired_total"`) {
		t.Errorf("metrics missing crontab counters:\n%s", m)
	}

	// A long-period crontab survives a restart via crontab.json.
	keeper, err := c.CrontabCreate(ctx, serve.CrontabSpec{Schedule: "@every 1h", Spec: fastSpec()})
	if err != nil {
		t.Fatal(err)
	}
	shutdown()
	_, url2, _ := bootServerCfg(t, serve.Config{DataDir: dataDir, Workers: 1, QueueDepth: 16})
	c2 := client.New(url2)
	list, err := c2.Crontabs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, got := range list {
		if got.ID == keeper.ID && got.Schedule == keeper.Schedule {
			found = true
		}
		if got.ID == ct.ID {
			t.Error("deleted crontab resurrected by restart")
		}
	}
	if !found {
		t.Errorf("crontab %s lost across restart (have %+v)", keeper.ID, list)
	}
}

// TestRestartSchedulingDeterminism is the platform's headline: three
// tenants with different fair-share weights and mixed priorities fill a
// single-worker queue; one run is interrupted mid-backlog and restarted
// over the same data directory. The completion order and every stored
// report must match the uninterrupted run exactly — the dequeue order is
// a pure function of admission, not of process lifetime.
func TestRestartSchedulingDeterminism(t *testing.T) {
	quotas := sched.Config{Tenants: []sched.TenantQuota{
		{Name: "alpha", Token: "alpha-secret", Shares: 1},
		{Name: "beta", Token: "beta-secret", Shares: 2},
		{Name: "gamma", Token: "gamma-secret", Shares: 1},
	}}
	// Submission plan, in order, after the blocker: (tenant, spec).
	specs := []struct {
		token string
		spec  serve.JobSpec
	}{
		{"alpha-secret", serve.JobSpec{App: "HashedSet"}},
		{"beta-secret", serve.JobSpec{App: "HashedSet", Repeats: 2}},
		{"gamma-secret", serve.JobSpec{App: "HashedSet", Priority: "high"}},
		{"alpha-secret", serve.JobSpec{App: "HashedSet", Priority: "low"}},
		{"beta-secret", serve.JobSpec{App: "HashedSet", Priority: "high", Repeats: 2}},
		{"gamma-secret", serve.JobSpec{App: "HashedSet", Repeats: 2}},
	}

	// run executes the plan over dataDir; with interrupt it drains the
	// server mid-backlog (parking the running blocker, stranding the
	// queue) and reboots before letting anything else finish. It returns
	// the completion order as submission indices, plus each job's report.
	run := func(dataDir string, interrupt bool) ([]int, [][]byte) {
		cfg := serve.Config{DataDir: dataDir, Workers: 1, QueueDepth: 32, Quotas: quotas}
		_, url, shutdown := bootServerCfg(t, cfg)
		ctx := context.Background()

		// The blocker is an ordinary normal-priority job. After a restart
		// it must still finish first — it was running when the server
		// died, and execution is non-preemptive — even though high-priority
		// jobs are queued behind it. Its recovered journal is what carries
		// that seniority.
		cd := client.New(url)
		blocker, err := cd.Submit(ctx, serve.JobSpec{App: "HashedSet", Repeats: 8})
		if err != nil {
			t.Fatal(err)
		}
		waitForState(t, cd, blocker, serve.StateRunning)

		ids := []string{blocker}
		for _, sub := range specs {
			tc := client.New(url, client.WithToken(sub.token))
			id, err := tc.Submit(ctx, sub.spec)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}

		c := cd
		if interrupt {
			shutdown() // drain: parks the blocker, strands the queue
			_, url2, _ := bootServerCfg(t, cfg)
			c = client.New(url2)
		}

		statuses := make([]serve.JobStatus, len(ids))
		for i, id := range ids {
			st, err := c.Wait(ctx, id)
			if err != nil || st.State != serve.StateDone {
				t.Fatalf("job %d (%s): %+v, %v", i, id, st, err)
			}
			statuses[i] = st
		}
		order := make([]int, len(ids))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, k int) bool {
			a, b := statuses[order[i]], statuses[order[k]]
			if !a.CompletedAt.Equal(b.CompletedAt) {
				return a.CompletedAt.Before(b.CompletedAt)
			}
			return a.Seq < b.Seq
		})
		reports := make([][]byte, len(ids))
		for i, id := range ids {
			rep, err := c.Report(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			reports[i] = rep
		}
		return order, reports
	}

	orderA, reportsA := run(t.TempDir(), false)
	orderB, reportsB := run(t.TempDir(), true)

	if len(orderA) != len(orderB) {
		t.Fatalf("runs completed %d vs %d jobs", len(orderA), len(orderB))
	}
	for i := range orderA {
		if orderA[i] != orderB[i] {
			t.Fatalf("completion order diverged: uninterrupted %v, restarted %v", orderA, orderB)
		}
	}
	for i := range reportsA {
		if string(reportsA[i]) != string(reportsB[i]) {
			t.Errorf("job %d report differs between uninterrupted and restarted runs", i)
		}
	}
}
