// Package store is faserve's persistent result store: a content-addressed
// blob store under the server data directory. Completed jobs deposit their
// final injection log and rendered report here and reference them by
// SHA-256, so identical campaign outputs (the common case for repeated
// jobs over a deterministic workload) are stored once, results survive
// server restarts, and a corrupted object is detected on read instead of
// being served.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// Store is a content-addressed object store rooted at one directory.
// All methods are safe for concurrent use: objects are immutable once
// written, and writes go through a unique temp file plus an atomic rename.
type Store struct {
	dir string
}

// Open creates (if needed) and opens the store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Sum returns the content address of data: the lowercase hex SHA-256.
func Sum(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// objectPath fans objects out over 256 prefix directories to keep any one
// directory small.
func (s *Store) objectPath(sum string) (string, error) {
	if len(sum) != 2*sha256.Size {
		return "", fmt.Errorf("store: malformed address %q", sum)
	}
	return filepath.Join(s.dir, "objects", sum[:2], sum[2:]), nil
}

// Put stores data and returns its address. Storing bytes that are already
// present is a cheap no-op — the store is deduplicating by construction.
func (s *Store) Put(data []byte) (string, error) {
	sum := Sum(data)
	path, err := s.objectPath(sum)
	if err != nil {
		return "", err
	}
	if _, err := os.Stat(path); err == nil {
		return sum, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("store: %w", err)
	}
	// Concurrent Puts of the same bytes race benignly: both temp files
	// hold identical content and rename is atomic, so last-writer-wins
	// leaves the object intact.
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("store: %w", err)
	}
	return sum, nil
}

// Get returns the object at sum, verifying its content against the
// address so on-disk corruption surfaces as an error, never as wrong
// bytes.
func (s *Store) Get(sum string) ([]byte, error) {
	path, err := s.objectPath(sum)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: object %s: %w", sum, err)
	}
	if got := Sum(data); got != sum {
		return nil, fmt.Errorf("store: object %s is corrupt (content hashes to %s)", sum, got)
	}
	return data, nil
}

// Has reports whether the object at sum is present (without verifying it).
func (s *Store) Has(sum string) bool {
	path, err := s.objectPath(sum)
	if err != nil {
		return false
	}
	_, err = os.Stat(path)
	return err == nil
}

// Sweep walks every object and removes those keep rejects, returning the
// kept/removed counts and the bytes reclaimed. With dryRun set nothing is
// deleted: the counts and byte total report what a real sweep would
// reclaim. Stray temp files from interrupted Puts are skipped (an
// in-flight Put may still rename its temp file into place). The caller is
// responsible for quiescence: Sweep must not race new references being
// created.
func (s *Store) Sweep(keep func(sum string) bool, dryRun bool) (kept, removed int, reclaimed int64, err error) {
	objects := filepath.Join(s.dir, "objects")
	prefixes, err := os.ReadDir(objects)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("store: sweep: %w", err)
	}
	for _, p := range prefixes {
		if !p.IsDir() || len(p.Name()) != 2 {
			continue
		}
		dir := filepath.Join(objects, p.Name())
		entries, err := os.ReadDir(dir)
		if err != nil {
			return kept, removed, reclaimed, fmt.Errorf("store: sweep: %w", err)
		}
		for _, e := range entries {
			sum := p.Name() + e.Name()
			if len(sum) != 2*sha256.Size {
				continue // temp file or foreign debris
			}
			if keep(sum) {
				kept++
				continue
			}
			info, err := e.Info()
			if err != nil {
				return kept, removed, reclaimed, fmt.Errorf("store: sweep: %w", err)
			}
			if !dryRun {
				if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
					return kept, removed, reclaimed, fmt.Errorf("store: sweep: %w", err)
				}
			}
			removed++
			reclaimed += info.Size()
		}
	}
	return kept, removed, reclaimed, nil
}
