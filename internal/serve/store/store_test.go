package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("failatomic-log/1 payload\n")
	sum, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has(sum) {
		t.Fatal("Has must see a stored object")
	}
	got, err := s.Get(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestPutDeduplicates(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Put([]byte("same bytes"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Put([]byte("same bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical content must share an address: %s vs %s", a, b)
	}
	var objects int
	err = filepath.Walk(filepath.Join(dir, "objects"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			objects++
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if objects != 1 {
		t.Fatalf("want 1 stored object, found %d", objects)
	}
}

func TestGetUnknownAndMalformed(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(Sum([]byte("never stored"))); err == nil {
		t.Fatal("missing object must error")
	}
	if _, err := s.Get("not-a-hash"); err == nil {
		t.Fatal("malformed address must error")
	}
	if s.Has("not-a-hash") {
		t.Fatal("malformed address must not be present")
	}
}

func TestGetDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Put([]byte("pristine"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", sum[:2], sum[2:])
	if err := os.WriteFile(path, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(sum); err == nil {
		t.Fatal("corrupted object must error on read")
	}
}

func TestConcurrentPut(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the writers collide on the same bytes, half are unique.
			data := []byte(fmt.Sprintf("blob %d", i%8))
			sum, err := s.Put(data)
			if err == nil {
				_, err = s.Get(sum)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
}
