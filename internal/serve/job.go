package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"failatomic/internal/concur"
	"failatomic/internal/core"
	"failatomic/internal/inject"
	"failatomic/internal/sched"
)

// Job lifecycle states. A job is durable from the moment it is admitted:
// its spec is on disk before the POST returns, so every state except
// StateDone/StateFailed/StateCancelled is recoverable — a crashed or
// drained server re-queues queued and running jobs at the next boot and
// resumes them from their journals.
const (
	// StateQueued: admitted, waiting for a worker (also the state a
	// parked job returns to during a drain).
	StateQueued = "queued"
	// StateRunning: a worker is executing the campaign.
	StateRunning = "running"
	// StateDone: campaign and report complete; log and report are in the
	// result store.
	StateDone = "done"
	// StateFailed: the campaign failed (bad app, budget blown, journal
	// error, ...).
	StateFailed = "failed"
	// StateCancelled: cancelled via DELETE before completion.
	StateCancelled = "cancelled"
	// StateDrifted: the campaign completed and its results are stored, but
	// the fresh classification diverged from the last stored done run of
	// the same spec — the server-side regression gate tripped. Terminal,
	// with log and report retrievable like a done job.
	StateDrifted = "drifted"
)

// Job kinds. The zero value means detect.
const (
	// KindDetect is a detection campaign (the default).
	KindDetect = "detect"
	// KindRepair runs the full detect → mask → verify repair workflow
	// (internal/repair) and stores the repair report; the phase-1
	// detection log is the job's log artifact.
	KindRepair = "repair"
	// KindConcur runs a concurrent schedule campaign (internal/concur):
	// the app names a concurrent target, Workers/Schedules/Seed select the
	// schedule plan, and the stored report is the concurrent-detection
	// section — byte-identical to the same local fadetect -concur run.
	KindConcur = "concur"
)

// JobSpec is the wire form of one campaign job: the app selection plus
// the inject.Options knobs a client may set. RunTimeout is JSON-encoded
// as nanoseconds (Go's time.Duration encoding).
type JobSpec struct {
	// App names the application under test (a Table 1 row).
	App string `json:"app"`
	// Kind selects the workflow: "" or KindDetect for a detection
	// campaign, KindRepair for the repair workflow. Validated at admission.
	Kind string `json:"kind,omitempty"`
	// Repeats scales the injection space (inject.Options.Repeats).
	Repeats int `json:"repeats,omitempty"`
	// Parallelism fans the campaign out over worker goroutines.
	Parallelism int `json:"parallelism,omitempty"`
	// RunTimeout arms the per-run watchdog (nanoseconds).
	RunTimeout time.Duration `json:"runTimeout,omitempty"`
	// MaxRetries re-attempts hung/crashed runs before quarantine.
	MaxRetries int `json:"maxRetries,omitempty"`
	// MaxQuarantined fails the campaign past this many quarantined points.
	MaxQuarantined int `json:"maxQuarantined,omitempty"`
	// Snapshot selects the session snapshot engine: "" or "fingerprint"
	// (the default, with the incremental subgraph-hash cache),
	// "fingerprint-nocache" (hashing without the cache), or "capture"
	// (materialize every graph). Validated at admission; results are
	// byte-identical across all three, so it is a performance knob, not a
	// semantic one.
	Snapshot string `json:"snapshot,omitempty"`
	// Perturb selects extra fault strategies in fadetect's -perturb
	// grammar ("nth=3,burst,oblivious"). Validated at admission. It is a
	// semantic knob: it extends the experiment plan, so it participates in
	// the drift gate's spec identity — a spec with a different Perturb is
	// a different baseline.
	Perturb string `json:"perturb,omitempty"`
	// Workers/Schedules/Seed parameterize a KindConcur job (zero values
	// take the concur package defaults). Rejected at admission on other
	// kinds — they select a schedule plan, which only concur jobs have.
	Workers   int   `json:"workers,omitempty"`
	Schedules int   `json:"schedules,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	// Priority is the scheduling class: "low", "normal" (or "") or
	// "high". Validated at admission. It is a scheduling knob, not a
	// semantic one — it does not participate in the drift gate's spec
	// identity (see drift.go).
	Priority string `json:"priority,omitempty"`
	// Crontab is the id of the recurring spec that fired this job, set by
	// the server, empty on direct submissions. It participates in the
	// drift gate's spec identity, which chains successive firings of one
	// crontab into a longitudinal baseline series.
	Crontab string `json:"crontab,omitempty"`
}

// JobKind normalizes the spec's kind: the zero value is a detect job.
func (sp JobSpec) JobKind() string {
	if sp.Kind == "" {
		return KindDetect
	}
	return sp.Kind
}

// concurSpec resolves the schedule knobs of a concur job, zero values
// taking the concur defaults — the same resolution concur.Campaign
// applies, so admission validates exactly what will run.
func (sp JobSpec) concurSpec() concur.Spec {
	cs := concur.Spec{Workers: sp.Workers, Schedules: sp.Schedules}
	if cs.Workers == 0 {
		cs.Workers = concur.DefaultWorkers
	}
	if cs.Schedules == 0 {
		cs.Schedules = concur.DefaultSchedules
	}
	return cs
}

// Options converts the spec to campaign options (journal hooks are the
// server's, not the client's). Jobs always run scoped: the worker pool
// executes campaigns concurrently in one process, so none of them may
// claim the exclusive global session slot.
func (sp JobSpec) Options() inject.Options {
	// The mode and perturbation list were validated at admission; an
	// unparseable value in a hand-edited spec falls back to the defaults.
	mode, _ := core.ParseSnapshotMode(sp.Snapshot)
	perturbations, _ := inject.ParsePerturbations(sp.Perturb)
	return inject.Options{
		Repeats:        sp.Repeats,
		Parallelism:    sp.Parallelism,
		RunTimeout:     sp.RunTimeout,
		MaxRetries:     sp.MaxRetries,
		MaxQuarantined: sp.MaxQuarantined,
		Snapshot:       mode,
		Perturbations:  perturbations,
		Scoped:         true,
	}
}

// JobStatus is the wire form of GET /v1/jobs/{id}.
type JobStatus struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
	// State is one of the State* constants.
	State string `json:"state"`
	// RunsDone counts completed runs so far: journaled-and-spliced plus
	// freshly executed.
	RunsDone int `json:"runsDone"`
	// Spliced counts the runs recovered from the journal at resume.
	Spliced int `json:"spliced,omitempty"`
	// Quarantined counts quarantined points observed so far.
	Quarantined int `json:"quarantined"`
	// ExitCode is the exit-code-equivalent of a local fadetect run
	// (0 ok, 1 failure, 2 quarantined); meaningful once the job is
	// terminal.
	ExitCode int `json:"exitCode"`
	// Error describes a failed or cancelled job.
	Error string `json:"error,omitempty"`
	// Log and Report are result-store addresses, set when State is done.
	Log    string `json:"log,omitempty"`
	Report string `json:"report,omitempty"`
	// Token is the quota-table tenant name the job was admitted under
	// ("" = the default tenant). Never the bearer credential itself.
	Token string `json:"token,omitempty"`
	// Seq is the job's global admission ordinal — the order of the job
	// index and the currency of its pagination cursor.
	Seq uint64 `json:"seq,omitempty"`
	// CompletedAt stamps terminal jobs (from done.json).
	CompletedAt time.Time `json:"completedAt,omitempty"`
}

// Terminal reports whether the state is final.
func (st JobStatus) Terminal() bool {
	switch st.State {
	case StateDone, StateFailed, StateCancelled, StateDrifted:
		return true
	}
	return false
}

// Event is one SSE message on GET /v1/jobs/{id}/events. Seq increases by
// one per event within a server process; a resumed job starts a fresh
// sequence on the new server.
type Event struct {
	Seq int `json:"seq"`
	// Type: "state" (queue/run transitions and parking), "resumed"
	// (journal splice, Runs = recovered count), "run" (one completed
	// run), or "end" (terminal, carries State/ExitCode/Error).
	Type  string `json:"type"`
	State string `json:"state,omitempty"`
	// Point and Status describe a "run" event.
	Point  int    `json:"point,omitempty"`
	Status string `json:"status,omitempty"`
	// Runs is the cumulative completed-run count.
	Runs     int    `json:"runs,omitempty"`
	ExitCode int    `json:"exitCode,omitempty"`
	Error    string `json:"error,omitempty"`
}

// EventEnd is the terminal event type.
const EventEnd = "end"

// job is the server-side state of one campaign job.
type job struct {
	id   string
	spec JobSpec
	dir  string
	// item is the immutable scheduling key assigned at admission (or
	// restored from spec.json at boot); item.Token is the tenant name.
	item sched.Item
	// enqueuedAt feeds the queue_wait_seconds_max gauge; in-memory only,
	// reset at boot for recovered jobs.
	enqueuedAt time.Time

	events *broadcaster

	mu            sync.Mutex
	state         string
	cancel        context.CancelFunc // set while running
	userCancelled bool
	runsDone      int
	spliced       int
	quarantined   int
	exitCode      int
	errMsg        string
	logSHA        string
	reportSHA     string
	completedAt   time.Time
}

func (j *job) journalPath() string { return filepath.Join(j.dir, "log.journal") }
func (j *job) specPath() string    { return filepath.Join(j.dir, "spec.json") }
func (j *job) donePath() string    { return filepath.Join(j.dir, "done.json") }

// status snapshots the job for the API.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:          j.id,
		Spec:        j.spec,
		State:       j.state,
		RunsDone:    j.runsDone,
		Spliced:     j.spliced,
		Quarantined: j.quarantined,
		ExitCode:    j.exitCode,
		Error:       j.errMsg,
		Log:         j.logSHA,
		Report:      j.reportSHA,
		Token:       j.item.Token,
		Seq:         j.item.Seq,
		CompletedAt: j.completedAt,
	}
}

// setRunning transitions the job to running under a fresh cancel func.
func (j *job) setRunning(cancel context.CancelFunc) {
	j.mu.Lock()
	j.state = StateRunning
	j.cancel = cancel
	j.mu.Unlock()
	j.events.publish(Event{Type: "state", State: StateRunning})
}

// noteSpliced records the journal recovery at the start of a resumed run.
func (j *job) noteSpliced(n int) {
	j.mu.Lock()
	j.spliced = n
	// Floor rather than add: a job failing over in memory already counted
	// its shipped runs via noteRun; a job recovered from disk starts at 0.
	if j.runsDone < n {
		j.runsDone = n
	}
	j.mu.Unlock()
	if n > 0 {
		j.events.publish(Event{Type: "resumed", Runs: n})
	}
}

// noteRun records one freshly executed run. Under a parallel campaign it
// is called from worker goroutines concurrently.
func (j *job) noteRun(r inject.Run) {
	j.mu.Lock()
	j.runsDone++
	runs := j.runsDone
	if r.Status != inject.RunOK {
		j.quarantined++
	}
	j.mu.Unlock()
	j.events.publish(Event{Type: "run", Point: r.InjectionPoint, Status: r.Status.String(), Runs: runs})
}

// requestCancel marks the job user-cancelled and cancels its context if
// it is running. It reports whether there was anything left to cancel.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone, StateFailed, StateCancelled, StateDrifted:
		return false
	}
	j.userCancelled = true
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

func (j *job) isUserCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCancelled
}

// park returns a drained running job to the queued state without closing
// its journal trail: the next boot re-queues and resumes it.
func (j *job) park() {
	j.mu.Lock()
	j.state = StateQueued
	j.cancel = nil
	j.mu.Unlock()
	j.events.publish(Event{Type: "state", State: StateQueued})
}

// doneManifest is the terminal record written to done.json. Its presence
// is what marks a job non-resumable at boot, so it is written atomically
// (temp + rename) after the log and report are safely in the store.
type doneManifest struct {
	ID       string  `json:"id"`
	Spec     JobSpec `json:"spec"`
	State    string  `json:"state"`
	ExitCode int     `json:"exitCode"`
	Error    string  `json:"error,omitempty"`
	Log      string  `json:"log,omitempty"`
	Report   string  `json:"report,omitempty"`
	// CompletedAt orders terminal manifests of the same spec, so the boot
	// recovery can rebuild the drift gate's last-done index.
	CompletedAt time.Time `json:"completedAt,omitempty"`
}

// finalize transitions the job to a terminal state, persists done.json,
// publishes the terminal event and closes the event stream. The journal
// is removed once the manifest is durable — after this point a restart
// must not resume the job.
func (j *job) finalize(state string, exitCode int, errMsg, logSHA, reportSHA string) error {
	completedAt := time.Now().UTC()
	j.mu.Lock()
	j.state = state
	j.cancel = nil
	j.exitCode = exitCode
	j.errMsg = errMsg
	j.logSHA = logSHA
	j.reportSHA = reportSHA
	j.completedAt = completedAt
	j.mu.Unlock()

	err := writeFileAtomic(j.donePath(), doneManifest{
		ID:          j.id,
		Spec:        j.spec,
		State:       state,
		ExitCode:    exitCode,
		Error:       errMsg,
		Log:         logSHA,
		Report:      reportSHA,
		CompletedAt: completedAt,
	})
	if err == nil {
		os.Remove(j.journalPath())
	}
	j.events.publish(Event{Type: EventEnd, State: state, ExitCode: exitCode, Error: errMsg})
	j.events.close()
	return err
}

// writeFileAtomic marshals v and renames it into place so a crash leaves
// either the old file or the new one, never a torn manifest.
func writeFileAtomic(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}
