package serve

import "sync"

// broadcaster is the per-job event log behind the SSE endpoint: an
// append-only in-memory history plus a pulse channel. Subscribers read
// the history from a cursor and wait on the pulse for more, so every
// subscriber — however late it attaches and however slowly it drains —
// sees the complete event sequence in publish order, and a slow SSE
// client can never stall the campaign (publish never blocks on
// consumers).
//
// Memory: the history lives until the job is dropped. One event per
// injector run bounds it by the campaign's point space — the same order
// of magnitude as the Result the campaign holds anyway.
type broadcaster struct {
	mu     sync.Mutex
	events []Event
	pulse  chan struct{} // closed and replaced on every publish/close
	closed bool
}

func newBroadcaster() *broadcaster {
	return &broadcaster{pulse: make(chan struct{})}
}

// publish appends one event, stamping its sequence number. Publishing on
// a closed broadcaster is a no-op (a drain can race a final state event).
func (b *broadcaster) publish(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	e.Seq = len(b.events) + 1
	b.events = append(b.events, e)
	close(b.pulse)
	b.pulse = make(chan struct{})
}

// close marks the stream complete (after the terminal event) and wakes
// every waiter.
func (b *broadcaster) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	close(b.pulse)
	b.pulse = make(chan struct{})
}

// from returns the events at and after cursor, a channel that pulses when
// more arrive, and whether the stream is complete. A subscriber loops:
// deliver batch, advance cursor, and if !done wait on the pulse.
func (b *broadcaster) from(cursor int) ([]Event, <-chan struct{}, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var batch []Event
	if cursor < len(b.events) {
		batch = b.events[cursor:]
	}
	return batch, b.pulse, b.closed && cursor+len(batch) >= len(b.events)
}
