// Pins the 429 Retry-After estimate: a pure function of the observed
// completion timestamps, the current time and the backlog depth, so the
// hint the satellite promises — drain-rate-derived, not a constant — is
// locked down without a live server.
package serve

import (
	"testing"
	"time"
)

func TestRetryAfterSeconds(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	// Ten completions, one per second: a steady 1 job/s drain rate.
	steady := make([]time.Time, 10)
	for i := range steady {
		steady[i] = t0.Add(time.Duration(i) * time.Second)
	}

	tests := []struct {
		name        string
		completions []time.Time
		now         time.Time
		depth       int
		want        int
	}{
		{"no history falls back to the minimum", nil, t0, 10, minRetryAfter},
		{"one completion is not a rate", steady[:1], t0.Add(time.Minute), 10, minRetryAfter},
		{"non-positive span falls back", steady, t0, 3, minRetryAfter},
		// rate = 10 completions / 10s = 1/s; position depth+1 = 5 → 5s.
		{"steady rate drains the backlog position", steady, t0.Add(10 * time.Second), 4, 5},
		// Same history, empty queue: the next slot clears in 1s.
		{"empty queue still waits at least the minimum", steady, t0.Add(10 * time.Second), 0, 1},
		// Same history observed 100s later: the rate decays with the idle
		// span (10/100 = 0.1/s), so the hint grows — a stale burst must
		// not promise a fast drain forever.
		{"idle time decays the rate", steady, t0.Add(100 * time.Second), 4, 50},
		// Two completions 100s apart, deep backlog: ceil(101/0.02) blows
		// past the cap and clamps.
		{"slow drain clamps at the maximum", []time.Time{t0, t0.Add(50 * time.Second)}, t0.Add(100 * time.Second), 100, maxRetryAfter},
	}
	for _, tt := range tests {
		if got := retryAfterSeconds(tt.completions, tt.now, tt.depth); got != tt.want {
			t.Errorf("%s: retryAfterSeconds(..., depth=%d) = %d, want %d", tt.name, tt.depth, got, tt.want)
		}
	}
}

func TestDrainRateRingKeepsRecentWindow(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	var d drainRate
	// Overfill the ring: 40 completions, one per second. Only the newest
	// drainRateWindow survive, so the observed span starts at t0+8s.
	for i := 0; i < 40; i++ {
		d.note(t0.Add(time.Duration(i) * time.Second))
	}
	now := t0.Add(40 * time.Second)
	// 32 completions over the 32s from t0+8 to now → 1/s; depth 9 → 10s.
	if got := d.hint(now, 9); got != 10 {
		t.Errorf("hint over a wrapped ring = %d, want 10", got)
	}
}
