// Tests for concurrent schedule jobs through the service: kind-first
// admission, byte-identity with local campaigns across both the in-process
// pool and the distributed worker path, and the per-kind metrics.
package serve_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"failatomic/internal/cli"
	"failatomic/internal/concur"
	"failatomic/internal/replog"
	"failatomic/internal/serve"
)

// concurSpec is a small LinkedList schedule campaign.
func concurSpec() serve.JobSpec {
	return serve.JobSpec{App: "LinkedList", Kind: serve.KindConcur, Workers: 4, Schedules: 8, Seed: 1}
}

// localConcurReference renders the same schedule campaign the way a local
// fadetect -concur run would: same driver, same renderer.
func localConcurReference(t *testing.T, spec serve.JobSpec) (log []byte, report string) {
	t.Helper()
	target, ok := concur.ByName(spec.App)
	if !ok {
		t.Fatalf("unknown concurrent target %q", spec.App)
	}
	res, err := concur.Campaign(&target, concur.Options{
		Workers:   spec.Workers,
		Schedules: spec.Schedules,
		Seed:      concur.EffectiveSeed(spec.Seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := replog.Write(&buf, res.Inject); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res.Report
}

// TestConcurJobByteIdentity: a schedule campaign executed by the
// in-process worker pool stores the same report and log bytes a local
// fadetect -concur run produces.
func TestConcurJobByteIdentity(t *testing.T) {
	_, c, _ := bootServer(t, t.TempDir(), 2, 16)
	ctx := context.Background()

	id, err := c.Submit(ctx, concurSpec())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone || st.ExitCode != cli.ExitOK {
		t.Fatalf("job = %+v, want done/0", st)
	}

	wantLog, wantReport := localConcurReference(t, concurSpec())
	if !strings.Contains(wantReport, "concurrent detection:") {
		t.Fatal("reference report carries no concur banner")
	}
	gotReport, err := c.Report(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotReport) != wantReport {
		t.Errorf("stored report differs from local render:\n--- server\n%s\n--- local\n%s", gotReport, wantReport)
	}
	gotLog, err := c.Log(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotLog, wantLog) {
		t.Error("stored log differs from local replog.Write output")
	}
}

// TestConcurAdmissionValidation: bad schedule specs are rejected at
// submit time, before a worker touches them — and the concur-only fields
// are rejected on single-threaded jobs.
func TestConcurAdmissionValidation(t *testing.T) {
	_, c, _ := bootServer(t, t.TempDir(), 1, 4)
	ctx := context.Background()
	bad := []serve.JobSpec{
		{App: "NoSuchTarget", Kind: serve.KindConcur},                 // unknown target
		{App: "LinkedList", Kind: serve.KindConcur, Workers: 1},       // workers out of bounds
		{App: "LinkedList", Kind: serve.KindConcur, Schedules: 5000},  // schedules out of bounds
		{App: "LinkedList", Kind: serve.KindConcur, Perturb: "nth=2"}, // perturb on concur
		{App: "HashedSet", Workers: 4},                                // concur knob on a detect job
		{App: "HashedSet", Seed: 7},                                   // seed on a detect job
	}
	for _, spec := range bad {
		if _, err := c.Submit(ctx, spec); err == nil {
			t.Errorf("spec %+v admitted, want rejection", spec)
		}
	}
}

// TestConcurMetrics: the admission counter and the per-kind queue-depth
// gauges surface on /metrics.
func TestConcurMetrics(t *testing.T) {
	_, c, url, _ := bootConfigured(t, serve.Config{DataDir: t.TempDir(), Workers: 2, QueueDepth: 16})
	ctx := context.Background()

	id, err := c.Submit(ctx, concurSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}

	m := fetchMetrics(t, url)
	if m["jobs_concur_total"] < 1 {
		t.Errorf("jobs_concur_total = %d, want >= 1", m["jobs_concur_total"])
	}
	for _, key := range []string{"queue_depth_detect", "queue_depth_repair", "queue_depth_concur"} {
		if _, ok := m[key]; !ok {
			t.Errorf("/metrics lacks %s", key)
		}
	}
}

// TestRemoteWorkerRunsConcurJob: the distributed path — lease a concur
// job, run the schedule campaign in the worker, ship runs keyed by
// schedule coordinate — stays byte-identical to a local campaign.
func TestRemoteWorkerRunsConcurJob(t *testing.T) {
	_, c, url, _ := bootConfigured(t, serve.Config{
		DataDir:         t.TempDir(),
		Workers:         1,
		QueueDepth:      16,
		CoordinatorOnly: true,
		WorkerPoll:      5 * time.Millisecond,
	})
	startWorker(t, url, "w1")
	ctx := context.Background()

	id, err := c.Submit(ctx, concurSpec())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone || st.ExitCode != cli.ExitOK {
		t.Fatalf("remote job: %+v", st)
	}

	wantLog, wantReport := localConcurReference(t, concurSpec())
	gotReport, err := c.Report(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotReport) != wantReport {
		t.Errorf("remote report differs from local render:\n--- server\n%s\n--- local\n%s", gotReport, wantReport)
	}
	gotLog, err := c.Log(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotLog, wantLog) {
		t.Error("remote log differs from local replog.Write output")
	}
}
