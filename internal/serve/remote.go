package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"failatomic/internal/apps"
	"failatomic/internal/cli"
	"failatomic/internal/concur"
	"failatomic/internal/dispatch"
	"failatomic/internal/inject"
	"failatomic/internal/replog"
)

// Remote execution: the dispatch.Jobs adapter. A remotely leased job
// lives through the same states and emits the same event stream as an
// in-process one — claimed (running), runs spliced into its journal as
// the worker ships them, finalized from the worker's uploaded artifacts —
// so SSE subscribers and the durability contract cannot tell the modes
// apart. The coordinator's journal copy exists purely for failover: when
// a lease expires the job requeues and the next claimant receives the
// journaled runs as its resume prefix, exactly like a local -resume.

// remoteJob is the coordinator-side state of one leased job: the open
// journal shipped runs are spliced into, and the run keys already
// journaled (the dedupe set — a retried chunk or a failed-over worker's
// re-run of an already-shipped experiment is dropped, first occurrence
// wins).
type remoteJob struct {
	j       *job
	journal *replog.Journal
	seen    map[inject.RunKey]bool
}

// coordJobs implements dispatch.Jobs over the server's queue.
type coordJobs struct{ s *Server }

// failClaim finalizes a job whose lease grant failed before it reached a
// worker, releasing the running slot the dequeue charged.
func (s *Server) failClaim(j *job, msg string) {
	s.metrics.jobsFailed.Add(1)
	s.finalizeBestEffort(j, StateFailed, cli.ExitFailure, msg)
	s.schedDone(j)
}

// Claim pops the oldest queued job for a worker lease: it opens (and
// resumes) the job's journal, keeps it for run shipments, and grants the
// worker the spec plus the journaled-run prefix.
func (cj coordJobs) Claim() (dispatch.Grant, bool) {
	s := cj.s
	for {
		j := s.popPending(true)
		if j == nil {
			return dispatch.Grant{}, false
		}
		// A concur job's journal is seeded and its app names a concurrent
		// target; the other kinds resume the plain journal of a Table 1 app.
		var completed map[inject.RunKey]inject.Run
		var journal *replog.Journal
		var err error
		if j.spec.JobKind() == KindConcur {
			target, ok := concur.ByName(j.spec.App)
			if !ok {
				s.failClaim(j, fmt.Sprintf("serve: unknown concurrent target %q", j.spec.App))
				continue
			}
			completed, journal, err = replog.ResumeJournalSeeded(j.journalPath(), target.Name, target.Lang, concur.EffectiveSeed(j.spec.Seed))
		} else {
			app, ok := apps.ByName(j.spec.App)
			if !ok {
				// Admission validates the app, so only a stale on-disk job can
				// get here; it would fail identically in-process.
				s.failClaim(j, fmt.Sprintf("serve: unknown application %q", j.spec.App))
				continue
			}
			completed, journal, err = replog.ResumeJournal(j.journalPath(), app.Name, app.Lang)
		}
		if err != nil {
			s.failClaim(j, err.Error())
			continue
		}
		prefix, err := replog.EncodeChunkBytes(completed)
		if err != nil {
			journal.Close()
			s.failClaim(j, err.Error())
			continue
		}
		specRaw, err := json.Marshal(j.spec)
		if err != nil {
			journal.Close()
			s.failClaim(j, err.Error())
			continue
		}

		seen := make(map[inject.RunKey]bool, len(completed))
		for key := range completed {
			seen[key] = true
		}
		s.mu.Lock()
		s.remote[j.id] = &remoteJob{j: j, journal: journal, seen: seen}
		s.mu.Unlock()
		j.setRunning(nil)
		s.metrics.jobsRunning.Add(1)
		// Close the admission race exactly like runJob does: a DELETE that
		// landed between the queue pop and the lease grant.
		if j.isUserCancelled() {
			s.cancelRemote(j)
			return dispatch.Grant{}, false
		}
		j.noteSpliced(len(completed))
		s.metrics.runsSpliced.Add(int64(len(completed)))
		return dispatch.Grant{JobID: j.id, Spec: specRaw, Prefix: prefix}, true
	}
}

// lookupRemote fetches the leased-job state for jobID.
func (s *Server) lookupRemote(jobID string) (*remoteJob, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rj := s.remote[jobID]
	if rj == nil {
		return nil, fmt.Errorf("serve: job %s is not leased", jobID)
	}
	return rj, nil
}

// AppendRuns splices freshly shipped runs into the job's journal, event
// stream and progress counters. Already-seen points are dropped: a
// retried chunk after a lost response, or a failed-over worker re-running
// the clean run, must not double-journal or double-count.
func (cj coordJobs) AppendRuns(jobID string, runs []inject.Run) (int, error) {
	s := cj.s
	rj, err := s.lookupRemote(jobID)
	if err != nil {
		return 0, err
	}
	accepted := 0
	for _, run := range runs {
		s.mu.Lock()
		dup := rj.seen[run.Key()]
		if !dup {
			rj.seen[run.Key()] = true
		}
		s.mu.Unlock()
		if dup {
			continue
		}
		if err := rj.journal.Append(run); err != nil {
			return accepted, err
		}
		if run.Status != inject.RunOK {
			s.metrics.pointsQuarantined.Add(1)
		}
		// A shipped run was freshly executed, just on a worker; the executed
		// counter stays uniform across execution modes.
		s.metrics.runsExecuted.Add(1)
		rj.j.noteRun(run)
		accepted++
	}
	return accepted, nil
}

// Complete finalizes a leased job from the worker's terminal upload. Done
// jobs deposit the worker-rendered log and report — byte-identical to a
// local fadetect run by construction — in the content-addressed store.
func (cj coordJobs) Complete(jobID string, comp dispatch.Completion) error {
	s := cj.s
	rj, err := s.lookupRemote(jobID)
	if err != nil {
		return err
	}
	if comp.State == StateFailed {
		if s.detachRemote(jobID, rj) {
			s.metrics.jobsFailed.Add(1)
			s.finalizeBestEffort(rj.j, StateFailed, comp.ExitCode, comp.Error)
			s.schedDone(rj.j)
		}
		return nil
	}
	logSHA, err := s.store.Put(comp.Log)
	if err != nil {
		return err
	}
	reportSHA, err := s.store.Put(comp.Report)
	if err != nil {
		return err
	}
	// The drift gate runs on the coordinator even for worker-executed
	// jobs: the baseline index is server state, and the uploaded log is
	// the same replog a local run would have produced.
	state, exitCode, errMsg := StateDone, comp.ExitCode, ""
	if rj.j.spec.JobKind() == KindDetect {
		if fresh := classifyLog(comp.Log); fresh != nil {
			if drift := s.driftAgainstLast(rj.j.spec, fresh); len(drift) > 0 {
				state, exitCode, errMsg = StateDrifted, cli.ExitDrift, driftMessage(drift)
			}
		}
	}
	if !s.detachRemote(jobID, rj) {
		// Lost a finalization race (user cancel); the upload is dropped.
		return nil
	}
	if err := rj.j.finalize(state, exitCode, errMsg, logSHA, reportSHA); err != nil {
		return err
	}
	if state == StateDrifted {
		s.metrics.jobsDrifted.Add(1)
	} else {
		s.metrics.jobsDone.Add(1)
		if rj.j.spec.JobKind() == KindDetect {
			s.noteLastDone(rj.j.spec, logSHA, time.Now())
		}
	}
	s.schedDone(rj.j)
	return nil
}

// Requeue returns a leased job to the queue after its lease was lost —
// expiry (worker death) or coordinator shutdown. The journal holds every
// run shipped so far; the next claimant resumes from it.
func (cj coordJobs) Requeue(jobID string) {
	s := cj.s
	rj, err := s.lookupRemote(jobID)
	if err != nil {
		return
	}
	if !s.detachRemote(jobID, rj) {
		return
	}
	rj.j.park()
	// The admission-time scheduling key is unchanged, so the failed-over
	// job re-enters ahead of everything admitted after it — the seniority
	// the old front-of-queue requeue encoded, now per (class, fair share).
	s.schedRequeue(rj.j)
}

// detachRemote closes the coordinator's journal handle and drops the
// leased-job state, decrementing the running gauge. It reports whether
// this call was the one that detached — concurrent finalization paths
// (cancel vs. completion vs. expiry) race benignly and exactly one wins.
func (s *Server) detachRemote(jobID string, rj *remoteJob) bool {
	s.mu.Lock()
	if s.remote[jobID] != rj {
		s.mu.Unlock()
		return false
	}
	delete(s.remote, jobID)
	s.mu.Unlock()
	rj.journal.Close()
	s.metrics.jobsRunning.Add(-1)
	return true
}

// cancelRemote finalizes a user-cancelled leased job: the lease is
// revoked (the worker's next RPC gets 410 and it abandons the campaign)
// and the job finalizes cancelled. Reports whether the job was remote.
func (s *Server) cancelRemote(j *job) bool {
	s.mu.Lock()
	rj := s.remote[j.id]
	s.mu.Unlock()
	if rj == nil {
		return false
	}
	s.coord.RevokeJob(j.id)
	if !s.detachRemote(j.id, rj) {
		return false
	}
	s.metrics.jobsCancelled.Add(1)
	s.finalizeBestEffort(j, StateCancelled, cli.ExitFailure, "cancelled while running remotely")
	s.schedDone(j)
	return true
}
