package serve

import (
	"math"
	"sync"
	"time"
)

// The 429 Retry-After hint. Instead of a hard-coded constant, the server
// estimates how fast the queue is draining from the timestamps of recent
// job completions and tells the client how long the current backlog will
// take to clear at that rate. The estimate is deliberately a pure
// function (retryAfterSeconds) over the observed timestamps so it can be
// pinned by a unit test without a live server.

// drainRateWindow bounds how many recent completions feed the estimate —
// enough to smooth one bursty job, small enough to track rate changes.
const drainRateWindow = 32

// Retry-After clamp: never tell a client "0" (it would hot-loop), never
// more than five minutes (campaigns are minutes, not hours).
const (
	minRetryAfter = 1
	maxRetryAfter = 300
)

// drainRate is a ring buffer of recent job-completion times.
type drainRate struct {
	mu    sync.Mutex
	times [drainRateWindow]time.Time
	head  int // next write position
	n     int // filled entries
}

// note records one job completion.
func (d *drainRate) note(t time.Time) {
	d.mu.Lock()
	d.times[d.head] = t
	d.head = (d.head + 1) % drainRateWindow
	if d.n < drainRateWindow {
		d.n++
	}
	d.mu.Unlock()
}

// hint renders the Retry-After seconds for a queue currently depth deep.
func (d *drainRate) hint(now time.Time, depth int) int {
	d.mu.Lock()
	recent := make([]time.Time, 0, d.n)
	for i := 0; i < d.n; i++ {
		recent = append(recent, d.times[(d.head-d.n+i+drainRateWindow)%drainRateWindow])
	}
	d.mu.Unlock()
	return retryAfterSeconds(recent, now, depth)
}

// retryAfterSeconds derives the Retry-After hint from the completion
// history: the observed drain rate is completions-per-second over the
// span from the oldest recorded completion to now (using now, not the
// newest completion, lets the estimate decay when the server goes quiet —
// a stale burst must not promise a fast drain forever). The hint is the
// time the rejected client's position — one past the current backlog —
// takes to clear at that rate, clamped to [minRetryAfter, maxRetryAfter].
// With fewer than two observations there is no rate; fall back to the
// old constant.
func retryAfterSeconds(completions []time.Time, now time.Time, depth int) int {
	if len(completions) < 2 {
		return minRetryAfter
	}
	span := now.Sub(completions[0])
	if span <= 0 {
		return minRetryAfter
	}
	rate := float64(len(completions)) / span.Seconds()
	secs := int(math.Ceil(float64(depth+1) / rate))
	if secs < minRetryAfter {
		return minRetryAfter
	}
	if secs > maxRetryAfter {
		return maxRetryAfter
	}
	return secs
}

// retryAfterHint is the server-level wrapper: current queue depth at the
// observed drain rate.
func (s *Server) retryAfterHint() int {
	s.mu.Lock()
	depth := s.sched.Depth()
	s.mu.Unlock()
	return s.drain.hint(time.Now(), depth)
}
