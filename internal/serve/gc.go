package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"failatomic/internal/serve/store"
)

// Store garbage collection. The content-addressed store only grows:
// cancelled and superseded jobs can leave objects no terminal manifest
// references. GC refcounts from the done.json manifests and sweeps the
// rest. It must run against a quiescent data directory — a job that is
// queued or running (spec.json without done.json) holds journal state
// whose artifacts are not yet manifested, so GC refuses rather than
// racing a live server.

// ErrJobsActive reports a GC attempt while non-terminal jobs exist.
var ErrJobsActive = errors.New("serve: gc refused: jobs are queued or running (drain the server first)")

// GCReport summarizes one sweep.
type GCReport struct {
	// Jobs is the number of terminal job manifests whose references were
	// honored.
	Jobs int
	// Kept and Removed count store objects.
	Kept    int
	Removed int
	// Reclaimed totals the bytes of the removed objects.
	Reclaimed int64
}

// GC sweeps the store under dataDir, removing every object no terminal
// job manifest references, and reports what it reclaimed. With dryRun
// set nothing is deleted — the report counts what a real sweep would
// remove. It fails with ErrJobsActive if any job is non-terminal.
func GC(dataDir string, dryRun bool) (GCReport, error) {
	jobsDir := filepath.Join(dataDir, "jobs")
	entries, err := os.ReadDir(jobsDir)
	if err != nil && !os.IsNotExist(err) {
		return GCReport{}, fmt.Errorf("serve: gc: %w", err)
	}
	referenced := make(map[string]bool)
	report := GCReport{}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(jobsDir, e.Name())
		var sm specManifest
		if err := readJSONFile(filepath.Join(dir, "spec.json"), &sm); err != nil {
			// Half-created directory; recoverJobs skips it too.
			continue
		}
		var dm doneManifest
		if err := readJSONFile(filepath.Join(dir, "done.json"), &dm); err != nil {
			return GCReport{}, fmt.Errorf("%w (job %s)", ErrJobsActive, sm.ID)
		}
		report.Jobs++
		if dm.Log != "" {
			referenced[dm.Log] = true
		}
		if dm.Report != "" {
			referenced[dm.Report] = true
		}
	}

	st, err := store.Open(filepath.Join(dataDir, "store"))
	if err != nil {
		return GCReport{}, err
	}
	kept, removed, reclaimed, err := st.Sweep(func(sum string) bool { return referenced[sum] }, dryRun)
	if err != nil {
		return GCReport{}, err
	}
	report.Kept, report.Removed, report.Reclaimed = kept, removed, reclaimed
	return report, nil
}
